#!/usr/bin/env python3
"""Lint a Prometheus text-exposition file (as written by obs::to_prometheus).

Usage:
    check_prometheus.py FILE.prom [--require-node-label] [FILE2.prom ...]

Checks the subset of the exposition format the is2 exporters rely on — CI
runs this on the .prom snapshot bench_serve_throughput exports, so a
formatting regression in src/obs/export.cpp fails the build instead of
silently breaking a real scrape:

  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]* and carry the is2_ prefix;
  * every sample is preceded by `# HELP` and `# TYPE` lines for its family,
    each emitted exactly once, with TYPE in {counter, gauge, histogram};
  * counter family names end in `_total`;
  * label blocks parse as key="value" with the same charset for keys;
  * sample values parse as numbers; counters and bucket counts are >= 0;
  * histogram `_bucket` series are cumulative (non-decreasing in `le` order
    as emitted), end with an `le="+Inf"` bucket, and that bucket equals the
    family's `_count` for the same label set.

`--require-node-label` toggles a cluster-exposition mode for the files that
follow it: the file must contain at least one sample carrying a `node` label,
and every `node` value must match `node<digits>` — the bounded-cardinality
contract from docs/observability.md (node ids, never request ids or keys).
CI runs the merged fleet snapshot (BENCH_serve.cluster.prom) under this flag.

Exit status: 0 clean, 1 on any violation (every violation is printed), 2 on
usage/IO errors. The C++ mirror of these rules lives in tests/test_obs.cpp,
which lints a live registry snapshot in-process.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
NODE_VALUE_RE = re.compile(r"^node\d+$")
LABELS_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(name, typed):
    """Resolve a sample name to its declared family (histograms expose
    _bucket/_sum/_count under the family name)."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if typed.get(base) == "histogram":
                return base, suffix
    return name, ""


def lint(path, require_node_label=False):
    errors = []

    def err(line_no, msg):
        errors.append(f"{path}:{line_no}: {msg}")

    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        print(f"check_prometheus: cannot read {path}: {e}", file=sys.stderr)
        return None

    if not text:
        return [f"{path}: empty exposition"], 0, 0
    if not text.endswith("\n"):
        errors.append(f"{path}: missing trailing newline")

    helped = {}  # family -> line of # HELP
    typed = {}  # family -> declared type
    samples = 0
    node_samples = 0
    # (family, labels-without-le) -> (last cumulative count, last le, line)
    buckets = {}
    counts = {}  # (family, labels) -> _count value

    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            m = re.match(r"^# (HELP|TYPE) (\S+)(?: (.*))?$", line)
            if not m:
                err(line_no, f"malformed comment line: {line!r}")
                continue
            kind, name, rest = m.group(1), m.group(2), m.group(3) or ""
            if not NAME_RE.match(name):
                err(line_no, f"bad metric name in # {kind}: {name!r}")
            if kind == "HELP":
                if name in helped:
                    err(line_no, f"duplicate # HELP for {name}")
                helped[name] = line_no
            else:
                if name in typed:
                    err(line_no, f"duplicate # TYPE for {name}")
                if rest not in ("counter", "gauge", "histogram"):
                    err(line_no, f"unknown type {rest!r} for {name}")
                typed[name] = rest
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            err(line_no, f"unparseable sample line: {line!r}")
            continue
        name, label_block, value_str = m.group(1), m.group(2) or "", m.group(3)
        try:
            value = float(value_str)
        except ValueError:
            err(line_no, f"non-numeric value {value_str!r} for {name}")
            continue
        samples += 1

        labels = {}
        if label_block:
            body = label_block[1:-1]
            parsed = LABELS_RE.findall(body)
            reassembled = ",".join(f'{k}="{v}"' for k, v in parsed)
            if reassembled != body:
                err(line_no, f"malformed label block {label_block!r}")
            labels = dict(parsed)

        if "node" in labels:
            node_samples += 1
            # Bounded cardinality: node ids only, never request ids or keys.
            if not NODE_VALUE_RE.match(labels["node"]):
                err(line_no, f'node label value {labels["node"]!r} is not node<digits>')

        family, suffix = family_of(name, typed)
        if not family.startswith("is2_"):
            err(line_no, f"metric {name} outside the is2_ namespace")
        ftype = typed.get(family)
        if ftype is None:
            err(line_no, f"sample {name} has no preceding # TYPE")
            continue
        if family not in helped:
            err(line_no, f"sample {name} has no preceding # HELP")
        if ftype == "counter":
            if not family.endswith("_total"):
                err(line_no, f"counter {family} does not end in _total")
            if value < 0:
                err(line_no, f"negative counter value {value} for {name}")

        if suffix == "_bucket":
            le = labels.pop("le", None)
            if le is None:
                err(line_no, f"{name} bucket without an le label")
                continue
            series = (family, tuple(sorted(labels.items())))
            if value < 0:
                err(line_no, f"negative bucket count {value} for {name}")
            prev = buckets.get(series)
            if prev is not None:
                if prev[1] == "+Inf":
                    err(line_no, f"{family} bucket after le=\"+Inf\"")
                if value < prev[0]:
                    err(
                        line_no,
                        f"{family} buckets not cumulative: "
                        f'le="{le}" count {value} < le="{prev[1]}" count {prev[0]}',
                    )
            buckets[series] = (value, le, line_no)
        elif suffix == "_count":
            counts[(family, tuple(sorted(labels.items())))] = (value, line_no)

    for series, (value, le, line_no) in buckets.items():
        if le != "+Inf":
            err(line_no, f"{series[0]} bucket series does not end with le=\"+Inf\"")
            continue
        count = counts.get(series)
        if count is None:
            err(line_no, f"{series[0]} has buckets but no _count for the same labels")
        elif count[0] != value:
            err(line_no, f"{series[0]} le=\"+Inf\" bucket {value} != _count {count[0]}")

    if samples == 0:
        errors.append(f"{path}: no samples")
    if require_node_label and node_samples == 0:
        errors.append(f"{path}: no sample carries a node label (cluster exposition expected)")
    return errors, samples, len(typed)


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    status = 0
    require_node_label = False
    linted = 0
    for path in argv[1:]:
        if path == "--require-node-label":
            require_node_label = True
            continue
        linted += 1
        result = lint(path, require_node_label)
        if result is None:
            return 2
        errors, samples, families = result
        if errors:
            status = 1
            for e in errors:
                print(e, file=sys.stderr)
        else:
            print(f"{path}: OK ({samples} samples across {families} families)")
    if linted == 0:
        print(__doc__, file=sys.stderr)
        return 2
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
