#!/usr/bin/env python3
"""Repo-invariant linter: cross-cutting contracts the compiler cannot check.

Usage:
    lint_invariants.py [--root DIR]    # lint the tree (default: repo root)
    lint_invariants.py --self-test     # prove every rule actually fires

Four rules, each a contract stated in the docs that previously lived only
in review discipline:

  R1  obs metric names at Registry call sites are Prometheus-valid
      ([a-zA-Z_:][a-zA-Z0-9_:]*) and counter names end in `_total`.
      (tools/check_prometheus.py lints the *exported* text; this rule moves
      the check to the source call site so a bad name fails before any
      bench runs.)

  R2  every `fault::inject("<site>")` site string in src/ is documented in
      docs/robustness.md — chaos plans are written against that inventory,
      so an undocumented site is an untestable failure path.

  R3  every public header under src/serve/ and src/util/ states its
      threading contract: the leading comment block (before the first line
      of code) must mention threading (/thread/i). Concurrency is these
      layers' API surface; a header silent about it is underspecified.

  R4  no naked standard synchronization primitives (std::mutex,
      std::lock_guard, std::unique_lock, std::scoped_lock, std::shared_mutex,
      std::condition_variable[_any]) anywhere in src/ outside
      src/util/mutex.hpp — the annotated util::Mutex/MutexLock/CondVar
      wrappers are the only lockable types Clang's thread-safety analysis
      can see, so a naked primitive is an unanalyzed critical section
      (docs/static-analysis.md).

`--self-test` copies a minimal tree into a tempdir, seeds one violation per
rule, and asserts the linter exits nonzero having caught all four — CI runs
this before the real lint so a silently-broken rule cannot pass the tree.

Exit status: 0 clean, 1 on any violation (all violations are printed),
2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# Registry call sites: .counter("name" / .gauge("name" / .histogram("name".
REGISTRY_CALL_RE = re.compile(r"\.\s*(counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"")
FAULT_SITE_RE = re.compile(r"fault::inject\s*\(\s*\"([^\"]*)\"")
NAKED_SYNC_RE = re.compile(
    r"std::(mutex|lock_guard|unique_lock|scoped_lock|shared_mutex|"
    r"condition_variable(?:_any)?)\b"
)
THREAD_RE = re.compile(r"thread", re.IGNORECASE)

CPP_EXTS = (".cpp", ".hpp", ".h", ".cc")


def iter_files(root: str, subdirs, exts=CPP_EXTS):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def strip_comments_and_strings(text: str) -> str:
    """Blank out //-comments, /* */-comments and string/char literals,
    preserving line structure so reported line numbers stay true."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
            out.append(" ")
        else:
            out.append(c)
            i += 1
    return "".join(out)


def leading_comment_block(text: str) -> str:
    """The header's doc block: every line up to the first non-comment,
    non-blank line (the same region a human reads to learn the contract)."""
    lines = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped == "" or stripped.startswith("//"):
            lines.append(line)
        else:
            break
    return "\n".join(lines)


def rel(root: str, path: str) -> str:
    return os.path.relpath(path, root)


def check_r1_metric_names(root: str):
    """R1: Prometheus charset at every Registry call site; counters _total."""
    violations = []
    for path in iter_files(root, ("src", "bench", "examples")):
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        for lineno, line in enumerate(text.splitlines(), 1):
            for kind, name in REGISTRY_CALL_RE.findall(line):
                if not METRIC_NAME_RE.match(name):
                    violations.append(
                        f"R1 {rel(root, path)}:{lineno}: {kind} name '{name}' "
                        f"is not a valid Prometheus metric name"
                    )
                elif kind == "counter" and not name.endswith("_total"):
                    violations.append(
                        f"R1 {rel(root, path)}:{lineno}: counter name '{name}' "
                        f"must end in '_total'"
                    )
    return violations


def check_r2_fault_sites(root: str):
    """R2: every fault::inject site string in src/ appears in robustness.md."""
    violations = []
    doc_path = os.path.join(root, "docs", "robustness.md")
    try:
        with open(doc_path, encoding="utf-8", errors="replace") as f:
            doc = f.read()
    except OSError:
        return [f"R2 docs/robustness.md: missing (fault-site inventory lives here)"]
    for path in iter_files(root, ("src",)):
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        for lineno, line in enumerate(text.splitlines(), 1):
            for site in FAULT_SITE_RE.findall(line):
                if site not in doc:
                    violations.append(
                        f"R2 {rel(root, path)}:{lineno}: fault site '{site}' "
                        f"is not documented in docs/robustness.md"
                    )
    return violations


def check_r3_threading_contracts(root: str):
    """R3: serve/ and util/ public headers open with a threading contract."""
    violations = []
    for path in iter_files(root, (os.path.join("src", "serve"), os.path.join("src", "util")),
                           exts=(".hpp", ".h")):
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        if not THREAD_RE.search(leading_comment_block(text)):
            violations.append(
                f"R3 {rel(root, path)}:1: leading comment block states no "
                f"threading contract (must mention thread safety / affinity)"
            )
    return violations


def check_r4_naked_primitives(root: str):
    """R4: only src/util/mutex.hpp may name std synchronization primitives."""
    allowed = {os.path.join("src", "util", "mutex.hpp")}
    violations = []
    for path in iter_files(root, ("src",)):
        if rel(root, path) in allowed:
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            text = strip_comments_and_strings(f.read())
        for lineno, line in enumerate(text.splitlines(), 1):
            m = NAKED_SYNC_RE.search(line)
            if m:
                violations.append(
                    f"R4 {rel(root, path)}:{lineno}: naked std::{m.group(1)} — "
                    f"use util::Mutex/MutexLock/CondVar (src/util/mutex.hpp) so "
                    f"the thread-safety analysis sees the critical section"
                )
    return violations


def run_lint(root: str) -> int:
    violations = []
    violations += check_r1_metric_names(root)
    violations += check_r2_fault_sites(root)
    violations += check_r3_threading_contracts(root)
    violations += check_r4_naked_primitives(root)
    for v in violations:
        print(v)
    if violations:
        print(f"lint_invariants: {len(violations)} violation(s)")
        return 1
    print("lint_invariants: clean")
    return 0


def self_test() -> int:
    """Seed one violation per rule in a scratch tree; all four must fire."""
    with tempfile.TemporaryDirectory(prefix="lint_selftest_") as tmp:
        os.makedirs(os.path.join(tmp, "src", "serve"))
        os.makedirs(os.path.join(tmp, "src", "util"))
        os.makedirs(os.path.join(tmp, "docs"))
        with open(os.path.join(tmp, "docs", "robustness.md"), "w") as f:
            f.write("# Robustness\n\nFault sites: `disk.read`.\n")
        # R1: counter missing _total; R2: undocumented fault site.
        with open(os.path.join(tmp, "src", "serve", "bad_metrics.cpp"), "w") as f:
            f.write(
                'void wire(R& r) {\n'
                '  r.counter("is2_requests", {}, "no _total suffix");\n'
                '  util::fault::inject("cache.undocumented", 0);\n'
                '}\n'
            )
        # R3: header with no threading contract. R4 control: the std::mutex
        # here is inside a comment and a string, so it must NOT fire.
        with open(os.path.join(tmp, "src", "util", "silent.hpp"), "w") as f:
            f.write(
                "// A header that says nothing about its locking story.\n"
                "#pragma once\n"
                "// std::mutex in a comment is fine\n"
                'inline const char* kDoc = "std::lock_guard in a string is fine";\n'
            )
        # R4: a real naked primitive.
        with open(os.path.join(tmp, "src", "serve", "naked.cpp"), "w") as f:
            f.write("#include <mutex>\nstd::mutex g_lock;\n")

        found = []
        found += check_r1_metric_names(tmp)
        found += check_r2_fault_sites(tmp)
        found += check_r3_threading_contracts(tmp)
        found += check_r4_naked_primitives(tmp)
        for v in found:
            print(f"  seeded: {v}")

        fired = {v.split()[0] for v in found}
        missing = {"R1", "R2", "R3", "R4"} - fired
        if missing:
            print(f"self-test FAILED: rule(s) did not fire: {sorted(missing)}")
            return 1
        r4_hits = [v for v in found if v.startswith("R4")]
        if any("silent.hpp" in v for v in r4_hits):
            print("self-test FAILED: R4 fired on a comment/string occurrence")
            return 1
        if run_lint_exit_nonzero(tmp) != 1:
            print("self-test FAILED: lint on a seeded tree must exit 1")
            return 1
        print("self-test passed: every rule fires, comments/strings exempt")
        return 0


def run_lint_exit_nonzero(root: str) -> int:
    import contextlib
    import io

    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        code = run_lint(root)
    return code


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="tree to lint (default: the repo containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="seed one violation per rule and assert detection")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    root = args.root or os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"lint_invariants: no src/ under {root}", file=sys.stderr)
        return 2
    return run_lint(root)


if __name__ == "__main__":
    sys.exit(main())
