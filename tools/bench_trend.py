#!/usr/bin/env python3
"""Append one bench-summary row per CI run to a trend CSV.

Usage:
    bench_trend.py BENCH_serve.json BENCH_nn.json BENCH_dist.json bench_trend.csv

Reads the two bench artifacts, extracts the headline numbers, and appends a
row (creating the CSV with a header when absent). CI restores the CSV from
the Actions cache and re-uploads it as the `bench-trend` artifact, so the
perf trajectory across PRs accumulates as a single diffable file instead of
being scattered across per-run artifacts.

A missing input file contributes empty cells rather than failing the build:
the trend step must never mask a real bench failure (the benches themselves
gate with their own exit codes before this runs).
"""

import csv
import json
import os
import sys
from datetime import datetime, timezone

BUILDER_STAGES = [
    "preprocess",
    "resample",
    "fpb",
    "features",
    "classify",
    "seasurface",
    "freeboard",
]

COLUMNS = [
    "commit",
    "utc_time",
    "cold_qps_w4",
    "warm_qps_w4",
    "inference_mean_ms_w4",
    "build_total_mean_ms_w4",
    # Scheduled-job latency split (queue wait vs queue wait + execution)
    # from the obs registry's histograms — BENCH_serve.json top level.
    "queue_wait_p99_ms",
    "service_time_p99_ms",
    "disk_speedup",
    # Cluster SLO headline (top offered-QPS point of the open-loop sweep)
    # from BENCH_serve.json's `cluster` block.
    "cluster_p99_ms",
    "cluster_shed_rate",
    # Whole-sweep served/offered of the chaos run (3% injected disk faults,
    # mid-sweep quarantine + revive) from BENCH_serve.json's `chaos` block;
    # the bench itself gates at >= 0.99 (docs/robustness.md).
    "chaos_availability",
    "nn_aggregate_speedup",
    "nn_predict_windows_per_sec",
    # Distributed-training headlines from BENCH_dist.json: the 4-rank
    # trainer speedup (critical-path accounting) and ring all-reduce GB/s
    # at the model-gradient buffer size.
    "dist_speedup_4rank",
    "allreduce_gbps",
    # Per-stage ProductBuilder means (ms) from BENCH_serve.json's
    # `builder_stages` block — the stage-graph latency breakdown.
] + [f"builder_{stage}_mean_ms" for stage in BUILDER_STAGES]


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_trend: skipping {path}: {err}", file=sys.stderr)
        return None


def serve_fields(doc):
    if not doc:
        return {}
    out = {}
    workers = doc.get("workers", [])
    if workers:
        # Highest worker-count row: the configuration CI trends.
        top = max(workers, key=lambda row: row.get("workers", 0))
        out["cold_qps_w4"] = top.get("cold_qps")
        out["warm_qps_w4"] = top.get("warm_qps")
        stages = top.get("stages", {})
        out["inference_mean_ms_w4"] = stages.get("inference", {}).get("mean_ms")
        out["build_total_mean_ms_w4"] = stages.get("total", {}).get("mean_ms")
    out["queue_wait_p99_ms"] = doc.get("queue_wait_p99_ms")
    out["service_time_p99_ms"] = doc.get("service_time_p99_ms")
    out["disk_speedup"] = doc.get("cache_tiers", {}).get("disk_speedup")
    cluster = doc.get("cluster", {})
    out["cluster_p99_ms"] = cluster.get("cluster_p99_ms")
    out["cluster_shed_rate"] = cluster.get("cluster_shed_rate")
    out["chaos_availability"] = doc.get("chaos", {}).get("availability")
    builder = doc.get("builder_stages", {})
    for stage in BUILDER_STAGES:
        out[f"builder_{stage}_mean_ms"] = builder.get(stage, {}).get("mean_ms")
    return out


def nn_fields(doc):
    if not doc:
        return {}
    return {
        "nn_aggregate_speedup": doc.get("aggregate_speedup"),
        "nn_predict_windows_per_sec": doc.get("predict_windows_per_sec"),
    }


def dist_fields(doc):
    if not doc:
        return {}
    return {
        "dist_speedup_4rank": doc.get("dist_speedup_4rank"),
        "allreduce_gbps": doc.get("allreduce_gbps"),
    }


def main(argv):
    if len(argv) != 5:
        print(__doc__, file=sys.stderr)
        return 2
    serve_path, nn_path, dist_path, csv_path = argv[1:5]

    row = {
        "commit": os.environ.get("GITHUB_SHA", "local")[:12],
        "utc_time": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
    }
    row.update(serve_fields(load(serve_path)))
    row.update(nn_fields(load(nn_path)))
    row.update(dist_fields(load(dist_path)))

    # Schema migration: a cached CSV written before a column change would go
    # ragged on append. Rewrite it under the current header (dropped columns
    # are lost, added columns backfill empty) so the file stays rectangular.
    if os.path.exists(csv_path):
        with open(csv_path, newline="") as f:
            reader = csv.DictReader(f)
            if reader.fieldnames is not None and list(reader.fieldnames) != COLUMNS:
                old_rows = list(reader)
                with open(csv_path, "w", newline="") as out:
                    writer = csv.DictWriter(out, fieldnames=COLUMNS, extrasaction="ignore")
                    writer.writeheader()
                    for old in old_rows:
                        writer.writerow({k: old.get(k, "") for k in COLUMNS})
                print(f"bench_trend: migrated {csv_path} to the current column set")

    fresh = not os.path.exists(csv_path)
    with open(csv_path, "a", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=COLUMNS)
        if fresh:
            writer.writeheader()
        writer.writerow({k: ("" if row.get(k) is None else row.get(k)) for k in COLUMNS})

    with open(csv_path) as f:
        lines = f.read().splitlines()
    print(f"bench_trend: {csv_path} now has {len(lines) - 1} run(s); latest:")
    print(f"  {lines[0]}")
    print(f"  {lines[-1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
