// ATLAS photon simulator tests: rate physics, height fidelity, background,
// confidence flags, dead-time bias and granule assembly.
#include <gtest/gtest.h>

#include <cmath>

#include "atl03/photon_sim.hpp"
#include "geo/polar_stereo.hpp"
#include "util/stats.hpp"

namespace {

using namespace is2;
using atl03::BeamId;
using atl03::InstrumentConfig;
using atl03::PhotonSimulator;
using atl03::SignalConf;
using atl03::SurfaceClass;

struct Fixture {
  geo::GeoCorrections corrections{7};
  atl03::SurfaceConfig scfg;
  geo::GroundTrack track;
  atl03::SurfaceModel surface;

  explicit Fixture(double length = 8'000.0, std::uint64_t seed = 33)
      : track(geo::PolarStereo::epsg3976().forward({-168.0, -74.5}), 1.1),
        surface((scfg.length_m = length, scfg), track, corrections, seed) {}
};

TEST(PhotonSim, PhotonCountScalesWithArea) {
  Fixture fx;
  PhotonSimulator sim(InstrumentConfig{}, 5);
  const auto beam = sim.simulate_beam(fx.surface, BeamId::Gt2r, 0.0);
  // ~8000/0.7 shots x (few signal + background) photons.
  const double shots = 8'000.0 / 0.7;
  EXPECT_GT(beam.size(), static_cast<std::size_t>(shots * 1.5));
  EXPECT_LT(beam.size(), static_cast<std::size_t>(shots * 9.0));
  beam.check_consistent();
}

TEST(PhotonSim, WeakBeamHasFewerPhotons) {
  Fixture fx;
  PhotonSimulator sim(InstrumentConfig{}, 5);
  const auto strong = sim.simulate_beam(fx.surface, BeamId::Gt2r, 0.0);
  const auto weak = sim.simulate_beam(fx.surface, BeamId::Gt2l, 0.0);
  EXPECT_LT(weak.size() * 2, strong.size());
}

TEST(PhotonSim, HighConfidencePhotonsTrackTheSurface) {
  Fixture fx;
  PhotonSimulator sim(InstrumentConfig{}, 6);
  const auto beam = sim.simulate_beam(fx.surface, BeamId::Gt2r, 0.0);
  // High-confidence photon heights should be near the true surface height —
  // except for the small deliberate fraction of background photons the
  // simulated signal finder mis-flags (conf_noise).
  std::size_t checked = 0, near_surface = 0;
  for (std::size_t i = 0; i < beam.size(); i += 7) {
    if (beam.signal_conf[i] != static_cast<std::int8_t>(SignalConf::High)) continue;
    const double s = beam.along_track[i];
    if (s < 0.0 || s > fx.surface.length()) continue;
    const double t = beam.delta_time[i];
    const double h_true = fx.surface.surface_height(s, t);
    ++checked;
    if (std::abs(beam.h[i] - h_true) < 3.5) ++near_surface;
  }
  ASSERT_GT(checked, 500u);
  EXPECT_GT(static_cast<double>(near_surface) / static_cast<double>(checked), 0.99);
}

TEST(PhotonSim, BackgroundRateBinsPresent) {
  Fixture fx;
  PhotonSimulator sim(InstrumentConfig{}, 7);
  const auto beam = sim.simulate_beam(fx.surface, BeamId::Gt2r, 0.0);
  ASSERT_FALSE(beam.bckgrd_rate.empty());
  for (double r : beam.bckgrd_rate) {
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1e7);
  }
  // Bin times should be increasing.
  for (std::size_t i = 1; i < beam.bckgrd_delta_time.size(); ++i)
    EXPECT_GT(beam.bckgrd_delta_time[i], beam.bckgrd_delta_time[i - 1]);
}

TEST(PhotonSim, ConfidenceSeparatesSignalFromBackground) {
  Fixture fx;
  PhotonSimulator sim(InstrumentConfig{}, 8);
  const auto beam = sim.simulate_beam(fx.surface, BeamId::Gt2r, 0.0);
  std::size_t high = 0, noise = 0;
  for (auto c : beam.signal_conf) {
    if (c == static_cast<std::int8_t>(SignalConf::High)) ++high;
    if (c <= static_cast<std::int8_t>(SignalConf::Buffer)) ++noise;
  }
  EXPECT_GT(high, beam.size() / 2);  // signal dominates over ice
  EXPECT_GT(noise, 0u);              // background present
}

TEST(PhotonSim, LatLonRoundTripToTrackCorridor) {
  Fixture fx;
  PhotonSimulator sim(InstrumentConfig{}, 9);
  const auto beam = sim.simulate_beam(fx.surface, BeamId::Gt2r, 0.0);
  const auto proj = geo::PolarStereo::epsg3976();
  for (std::size_t i = 0; i < beam.size(); i += 101) {
    const auto xy = proj.forward({beam.lon[i], beam.lat[i]});
    const double cross = fx.track.cross_track(xy);
    EXPECT_LT(std::abs(cross), 30.0);  // footprint-scale corridor
  }
}

TEST(PhotonSim, DeadTimeBiasesBrightSurfacesHigh) {
  // A single-channel detector with a large dead time keeps only the first
  // (highest) photon of each return, so the mean height over thick ice is
  // biased high relative to a 16-channel detector with negligible dead time.
  Fixture fx(4'000.0);
  InstrumentConfig collapsed;
  collapsed.dead_time_m = 1.5;
  collapsed.strong_channels = 1;
  collapsed.background_rate_mhz = 0.0;  // isolate the effect
  InstrumentConfig clean = collapsed;
  clean.dead_time_m = 1e-6;
  clean.strong_channels = 16;
  const auto b1 = PhotonSimulator(collapsed, 10).simulate_beam(fx.surface, BeamId::Gt2r, 0.0);
  const auto b0 = PhotonSimulator(clean, 10).simulate_beam(fx.surface, BeamId::Gt2r, 0.0);
  auto thick_mean = [](const atl03::BeamData& b) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (b.truth_class[i] != static_cast<std::uint8_t>(SurfaceClass::ThickIce)) continue;
      sum += b.h[i];
      ++n;
    }
    return sum / static_cast<double>(n);
  };
  EXPECT_GT(thick_mean(b1), thick_mean(b0) + 0.02);  // biased high
  EXPECT_LT(b1.size(), b0.size());                   // photons swallowed
}

TEST(PhotonSim, GranuleHasRequestedBeams) {
  Fixture fx(3'000.0);
  PhotonSimulator sim(InstrumentConfig{}, 11);
  const auto g = sim.simulate_granule(fx.surface, "ATL03_TEST", 100.0);
  EXPECT_EQ(g.beams.size(), 3u);
  EXPECT_TRUE(g.has_beam(BeamId::Gt1r));
  EXPECT_TRUE(g.has_beam(BeamId::Gt2r));
  EXPECT_TRUE(g.has_beam(BeamId::Gt3r));
  EXPECT_FALSE(g.has_beam(BeamId::Gt1l));
  EXPECT_EQ(g.id, "ATL03_TEST");
  EXPECT_GT(g.total_photons(), 0u);
  EXPECT_THROW(g.beam(BeamId::Gt1l), std::out_of_range);
}

TEST(PhotonSim, DeterministicGivenSeed) {
  Fixture fx(2'000.0);
  PhotonSimulator a(InstrumentConfig{}, 123), b(InstrumentConfig{}, 123);
  const auto ba = a.simulate_beam(fx.surface, BeamId::Gt2r, 0.0);
  const auto bb = b.simulate_beam(fx.surface, BeamId::Gt2r, 0.0);
  ASSERT_EQ(ba.size(), bb.size());
  for (std::size_t i = 0; i < ba.size(); i += 17) EXPECT_DOUBLE_EQ(ba.h[i], bb.h[i]);
}

TEST(PhotonSim, TruthClassesCarried) {
  Fixture fx(5'000.0);
  PhotonSimulator sim(InstrumentConfig{}, 13);
  const auto beam = sim.simulate_beam(fx.surface, BeamId::Gt2r, 0.0);
  ASSERT_EQ(beam.truth_class.size(), beam.size());
  std::size_t counts[3] = {0, 0, 0};
  for (auto c : beam.truth_class) {
    ASSERT_LT(c, 3);
    ++counts[c];
  }
  EXPECT_GT(counts[0], counts[2]);  // thick ice photons dominate
}

TEST(PhotonSim, BeamOffsetsMatchSpec) {
  EXPECT_DOUBLE_EQ(atl03::beam_cross_track_offset(BeamId::Gt2r), 0.0);
  EXPECT_DOUBLE_EQ(atl03::beam_cross_track_offset(BeamId::Gt1r), -3'300.0);
  EXPECT_DOUBLE_EQ(atl03::beam_cross_track_offset(BeamId::Gt3r), 3'300.0);
  EXPECT_NEAR(std::abs(atl03::beam_cross_track_offset(BeamId::Gt2l) -
                       atl03::beam_cross_track_offset(BeamId::Gt2r)),
              90.0, 1e-12);
}

}  // namespace
