// Surface process tests: segment structure, class statistics, height
// physics, 1-D/2-D consistency and determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "atl03/surface_model.hpp"
#include "geo/polar_stereo.hpp"

namespace {

using namespace is2;
using atl03::SurfaceClass;
using atl03::SurfaceConfig;
using atl03::SurfaceModel;

geo::GroundTrack test_track() {
  const auto proj = geo::PolarStereo::epsg3976();
  return geo::GroundTrack(proj.forward({-170.0, -75.0}), 0.7);
}

SurfaceModel make_model(double length = 30'000.0, std::uint64_t seed = 42) {
  SurfaceConfig cfg;
  cfg.length_m = length;
  static const geo::GeoCorrections corrections(7);
  return SurfaceModel(cfg, test_track(), corrections, seed);
}

TEST(SurfaceModel, SegmentsTileTheTrack) {
  const auto model = make_model();
  const auto& segs = model.segments();
  ASSERT_FALSE(segs.empty());
  EXPECT_DOUBLE_EQ(segs.front().s_begin, 0.0);
  for (std::size_t i = 1; i < segs.size(); ++i)
    EXPECT_DOUBLE_EQ(segs[i].s_begin, segs[i - 1].s_end);
  EXPECT_DOUBLE_EQ(segs.back().s_end, 30'000.0);
}

TEST(SurfaceModel, AdjacentSegmentsChangeClass) {
  const auto model = make_model();
  const auto& segs = model.segments();
  for (std::size_t i = 1; i < segs.size(); ++i)
    EXPECT_NE(segs[i].cls, segs[i - 1].cls) << "at segment " << i;
}

TEST(SurfaceModel, ThickIceDominates) {
  const auto model = make_model(100'000.0);
  const auto frac = model.class_fractions();
  EXPECT_GT(frac[0], 0.55);           // thick ice majority (class imbalance)
  EXPECT_GT(frac[1], 0.01);           // thin ice present
  EXPECT_GT(frac[2], 0.005);          // open water present but rare
  EXPECT_NEAR(frac[0] + frac[1] + frac[2], 1.0, 1e-12);
  EXPECT_GT(frac[0], frac[1]);
  EXPECT_GT(frac[1], frac[2]);
}

TEST(SurfaceModel, FreeboardOrderingByClass) {
  const auto model = make_model(60'000.0);
  double sum[3] = {0, 0, 0};
  std::size_t n[3] = {0, 0, 0};
  for (double s = 10.0; s < model.length(); s += 10.0) {
    const auto sample = model.sample(s);
    const auto c = static_cast<std::size_t>(sample.cls);
    sum[c] += sample.freeboard;
    ++n[c];
  }
  ASSERT_GT(n[0], 0u);
  ASSERT_GT(n[1], 0u);
  ASSERT_GT(n[2], 0u);
  const double thick = sum[0] / n[0], thin = sum[1] / n[1], water = sum[2] / n[2];
  EXPECT_GT(thick, 0.2);
  EXPECT_GT(thick, thin);
  EXPECT_GT(thin, water);
  EXPECT_DOUBLE_EQ(water, 0.0);
}

TEST(SurfaceModel, ReflectanceOrderingByClass) {
  const auto model = make_model(60'000.0);
  double sum[3] = {0, 0, 0};
  std::size_t n[3] = {0, 0, 0};
  for (double s = 5.0; s < model.length(); s += 7.0) {
    const auto sample = model.sample(s);
    const auto c = static_cast<std::size_t>(sample.cls);
    sum[c] += sample.reflectance;
    ++n[c];
  }
  EXPECT_GT(sum[0] / n[0], sum[1] / n[1]);
  EXPECT_GT(sum[1] / n[1], sum[2] / n[2]);
}

TEST(SurfaceModel, OnTrackXyMatches1d) {
  const auto model = make_model();
  const auto& track = model.track();
  for (double s : {100.0, 5'000.0, 17'500.0, 29'000.0}) {
    EXPECT_EQ(model.class_at_xy(track.at(s)), model.class_at(s));
    const auto a = model.sample_xy(track.at(s));
    const auto b = model.sample(s);
    EXPECT_EQ(a.cls, b.cls);
    // Exactly on the track the meander vanishes; only floating-point dust in
    // the along-track projection separates the two paths.
    EXPECT_NEAR(a.freeboard, b.freeboard, 1e-6);
  }
}

TEST(SurfaceModel, OffSceneIsUnknown) {
  const auto model = make_model();
  const auto& track = model.track();
  EXPECT_EQ(model.class_at_xy(track.at(-500.0)), SurfaceClass::Unknown);
  EXPECT_EQ(model.class_at_xy(track.at(30'500.0)), SurfaceClass::Unknown);
  EXPECT_EQ(model.sample_xy(track.at(-500.0)).cls, SurfaceClass::Unknown);
}

TEST(SurfaceModel, SurfaceHeightIsSshPlusFreeboard) {
  const auto model = make_model();
  for (double s : {100.0, 1'000.0, 20'000.0}) {
    const double t = 3'600.0;
    EXPECT_NEAR(model.surface_height(s, t),
                model.sea_surface_height(s, t) + model.sample(s).freeboard, 1e-12);
  }
}

TEST(SurfaceModel, SshResidualSmall) {
  const auto model = make_model();
  for (double s = 0.0; s < model.length(); s += 500.0)
    EXPECT_LT(std::abs(model.ssh_residual(s)), 0.1);
}

TEST(SurfaceModel, DeterministicAcrossInstances) {
  const auto a = make_model(20'000.0, 99);
  const auto b = make_model(20'000.0, 99);
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (double s = 0.0; s < 20'000.0; s += 111.0) {
    EXPECT_EQ(a.class_at(s), b.class_at(s));
    EXPECT_DOUBLE_EQ(a.sample(s).freeboard, b.sample(s).freeboard);
  }
}

TEST(SurfaceModel, DifferentSeedsProduceDifferentScenes) {
  const auto a = make_model(20'000.0, 1);
  const auto b = make_model(20'000.0, 2);
  std::size_t differ = 0, total = 0;
  for (double s = 0.0; s < 20'000.0; s += 53.0) {
    if (a.class_at(s) != b.class_at(s)) ++differ;
    ++total;
  }
  EXPECT_GT(differ, total / 20);
}

TEST(SurfaceModel, RejectsNonPositiveLength) {
  SurfaceConfig cfg;
  cfg.length_m = 0.0;
  const geo::GeoCorrections corrections(7);
  EXPECT_THROW(SurfaceModel(cfg, test_track(), corrections, 1), std::invalid_argument);
}

class PolynyaSweep : public ::testing::TestWithParam<double> {};

TEST_P(PolynyaSweep, MoreOpenWaterWithHigherPolynyaProbability) {
  SurfaceConfig lo_cfg;
  lo_cfg.length_m = 80'000.0;
  lo_cfg.polynya_prob = 0.0;
  SurfaceConfig hi_cfg = lo_cfg;
  hi_cfg.polynya_prob = GetParam();
  const geo::GeoCorrections corrections(7);
  const SurfaceModel lo(lo_cfg, test_track(), corrections, 5);
  const SurfaceModel hi(hi_cfg, test_track(), corrections, 5);
  // Non-thick fraction should not shrink when polynya events are added.
  const auto fl = lo.class_fractions();
  const auto fh = hi.class_fractions();
  EXPECT_GE(fh[1] + fh[2], (fl[1] + fl[2]) * 0.9);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, PolynyaSweep, ::testing::Values(0.05, 0.15, 0.4));

}  // namespace
