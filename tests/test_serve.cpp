// Serving subsystem tests: LRU product cache eviction/counters, bounded
// queue semantics, request coalescing and backpressure in the scheduler,
// cache-hit serving without re-dispatch, bulk warm-up via mapred::Engine,
// concurrent mixed hit/miss traffic, and bit-identity of served products
// with the batch pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/campaign.hpp"
#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "h5lite/granule_io.hpp"
#include "serve/product_cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"

namespace {

using namespace is2;
using atl03::BeamId;
using atl03::SurfaceClass;
using serve::BoundedQueue;
using serve::GranuleProduct;
using serve::ProductCache;
using serve::ProductKey;
using serve::ProductRequest;
using serve::ProductResponse;

// ---------------------------------------------------------------------------
// ProductCache
// ---------------------------------------------------------------------------

std::shared_ptr<const GranuleProduct> make_product(const std::string& id,
                                                   std::size_t n_segments) {
  auto p = std::make_shared<GranuleProduct>();
  p->granule_id = id;
  p->segments.resize(n_segments);
  p->classes.resize(n_segments, SurfaceClass::ThickIce);
  return p;
}

ProductKey key_of(const std::string& id, std::uint64_t config_hash = 7) {
  return ProductKey{id, BeamId::Gt1r, config_hash};
}

TEST(ProductCache, LruEvictionOrder) {
  const std::size_t entry = make_product("x", 100)->approx_bytes();
  ProductCache cache(entry * 3 + entry / 2, /*num_shards=*/1);

  cache.put(key_of("a"), make_product("a", 100));
  cache.put(key_of("b"), make_product("b", 100));
  cache.put(key_of("c"), make_product("c", 100));
  ASSERT_EQ(cache.stats().entries, 3u);

  ASSERT_NE(cache.get(key_of("a")), nullptr);  // refresh "a" -> "b" is now LRU
  cache.put(key_of("d"), make_product("d", 100));

  EXPECT_TRUE(cache.contains(key_of("a")));
  EXPECT_FALSE(cache.contains(key_of("b")));
  EXPECT_TRUE(cache.contains(key_of("c")));
  EXPECT_TRUE(cache.contains(key_of("d")));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LE(stats.bytes, cache.byte_budget());
}

TEST(ProductCache, CountersAndReplacement) {
  ProductCache cache(10u << 20, 1);
  EXPECT_EQ(cache.get(key_of("a")), nullptr);  // miss
  cache.put(key_of("a"), make_product("a", 10));
  EXPECT_NE(cache.get(key_of("a")), nullptr);  // hit
  const std::size_t bytes_one = cache.stats().bytes;
  cache.put(key_of("a"), make_product("a", 10));  // replace, not accumulate
  EXPECT_EQ(cache.stats().bytes, bytes_one);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_NEAR(stats.hit_rate(), 0.5, 1e-12);
}

TEST(ProductCache, OversizedEntryStillServes) {
  auto big = make_product("big", 100'000);
  ProductCache cache(big->approx_bytes() / 4, 1);
  cache.put(key_of("small"), make_product("small", 10));
  cache.put(key_of("big"), big);
  // The oversized product evicted everything else but is itself resident, so
  // coalesced requesters still get an answer.
  EXPECT_TRUE(cache.contains(key_of("big")));
  EXPECT_FALSE(cache.contains(key_of("small")));
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ProductCache, DistinctConfigHashesAreDistinctEntries) {
  ProductCache cache(10u << 20, 4);
  cache.put(key_of("a", 1), make_product("a", 10));
  cache.put(key_of("a", 2), make_product("a", 10));
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_TRUE(cache.contains(key_of("a", 1)));
  EXPECT_TRUE(cache.contains(key_of("a", 2)));
  EXPECT_FALSE(cache.contains(key_of("a", 3)));
}

TEST(ConfigFingerprint, SensitiveToConfigAndMethod) {
  const core::PipelineConfig base = core::PipelineConfig::tiny();
  core::PipelineConfig changed = base;
  changed.sequence_window += 2;
  const auto nasa = seasurface::Method::NasaEquation;
  EXPECT_NE(serve::config_fingerprint(base, nasa),
            serve::config_fingerprint(changed, nasa));
  EXPECT_NE(serve::config_fingerprint(base, nasa),
            serve::config_fingerprint(base, seasurface::Method::MinElevation));
  EXPECT_EQ(serve::config_fingerprint(base, nasa),
            serve::config_fingerprint(core::PipelineConfig::tiny(), nasa));
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueue, FifoTryPushAndClose) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  EXPECT_EQ(q.size(), 2u);

  auto a = q.pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 1);
  EXPECT_TRUE(q.try_push(3));

  q.close();
  EXPECT_FALSE(q.try_push(4));
  EXPECT_FALSE(q.push(4));
  // Drains accepted items, then reports closed.
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_EQ(*q.pop(), 3);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, BlockingPushResumesAfterPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    q.push(2);  // blocks until the pop below
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.pop(), 1);
  t.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.pop(), 2);
}

// ---------------------------------------------------------------------------
// BatchScheduler (controlled builder: no campaign needed)
// ---------------------------------------------------------------------------

struct GatedBuilder {
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::atomic<int> builds{0};

  serve::BatchScheduler::Builder fn() {
    return [this](const ProductRequest&, const ProductKey& key) {
      open.wait();
      builds.fetch_add(1);
      auto p = std::make_shared<GranuleProduct>();
      p->granule_id = key.granule_id;
      return ProductResponse{p, false, 0.0};
    };
  }
};

ProductRequest req_named(const std::string& id) {
  ProductRequest r;
  r.granule_id = id;
  return r;
}

TEST(BatchScheduler, CoalescesConcurrentRequestsForOneKey) {
  GatedBuilder builder;
  serve::BatchScheduler sched({/*workers=*/2, /*queue_capacity=*/8}, builder.fn());

  auto f1 = sched.submit(req_named("k1"), key_of("k1"));
  auto f2 = sched.submit(req_named("k1"), key_of("k1"));
  auto f3 = sched.submit(req_named("k1"), key_of("k1"));
  {
    const auto stats = sched.stats();
    EXPECT_EQ(stats.dispatched, 1u);
    EXPECT_EQ(stats.coalesced, 2u);
  }

  builder.gate.set_value();
  const ProductResponse r1 = f1.get(), r2 = f2.get(), r3 = f3.get();
  EXPECT_EQ(r1.product.get(), r2.product.get());  // one build shared by all
  EXPECT_EQ(r1.product.get(), r3.product.get());
  EXPECT_EQ(builder.builds.load(), 1);
  EXPECT_GE(r1.service_ms, 0.0);

  sched.shutdown();
  EXPECT_EQ(sched.stats().completed, 1u);
  EXPECT_EQ(sched.stats().in_flight, 0u);
}

TEST(BatchScheduler, BackpressureRejectsAndBlocks) {
  GatedBuilder builder;
  serve::BatchScheduler sched({/*workers=*/1, /*queue_capacity=*/1}, builder.fn());

  // k1 gets popped by the (gated) worker; wait until it leaves the queue.
  auto f1 = sched.submit(req_named("k1"), key_of("k1"));
  while (sched.stats().queue_depth != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  auto f2 = sched.submit(req_named("k2"), key_of("k2"));  // fills the queue
  EXPECT_EQ(sched.stats().queue_depth, 1u);

  // Cold third key: shed.
  EXPECT_FALSE(sched.try_submit(req_named("k3"), key_of("k3")).has_value());
  EXPECT_EQ(sched.stats().rejected, 1u);
  // try_submit for an in-flight key still attaches for free.
  auto f2b = sched.try_submit(req_named("k2"), key_of("k2"));
  ASSERT_TRUE(f2b.has_value());
  EXPECT_EQ(sched.stats().coalesced, 1u);

  // Blocking submit parks on the full queue until the worker frees space.
  std::atomic<bool> accepted{false};
  std::thread t([&] {
    auto f4 = sched.submit(req_named("k4"), key_of("k4"));
    accepted = true;
    f4.wait();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(accepted.load());  // worker is gated, queue still full

  builder.gate.set_value();
  t.join();
  EXPECT_TRUE(accepted.load());
  EXPECT_EQ(f1.get().product->granule_id, "k1");
  EXPECT_EQ(f2.get().product.get(), f2b->get().product.get());
  sched.shutdown();
  EXPECT_EQ(sched.stats().completed, 3u);  // k1, k2, k4
}

TEST(BatchScheduler, ShutdownDrainsAcceptedWork) {
  GatedBuilder builder;
  builder.gate.set_value();  // builds run immediately
  std::vector<serve::ProductFuture> futures;
  {
    serve::BatchScheduler sched({2, 16}, builder.fn());
    for (int i = 0; i < 8; ++i) {
      const std::string id = "g" + std::to_string(i);
      futures.push_back(sched.submit(req_named(id), key_of(id)));
    }
    sched.shutdown();
  }
  for (auto& f : futures) EXPECT_NE(f.get().product, nullptr);
  EXPECT_EQ(builder.builds.load(), 8);
}

TEST(BatchScheduler, SubmitAfterShutdownIsBrokenNotRetryable) {
  GatedBuilder builder;
  builder.gate.set_value();
  serve::BatchScheduler sched({1, 4}, builder.fn());
  sched.shutdown();

  // Not nullopt: load-shedding clients must be able to tell "full, retry
  // later" apart from "down for good".
  auto maybe = sched.try_submit(req_named("k1"), key_of("k1"));
  ASSERT_TRUE(maybe.has_value());
  EXPECT_THROW(maybe->get(), std::runtime_error);
  EXPECT_THROW(sched.submit(req_named("k2"), key_of("k2")).get(), std::runtime_error);
  EXPECT_EQ(sched.stats().rejected, 0u);
  EXPECT_EQ(sched.stats().dispatched, 0u);
}

// ---------------------------------------------------------------------------
// GranuleService on a tiny campaign
// ---------------------------------------------------------------------------

class ServeCampaign : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new core::PipelineConfig(core::PipelineConfig::tiny());
    campaign_ = new core::Campaign(*config_);
    pair_ = new core::PairDataset(campaign_->generate(1));  // pair 2: zero drift

    dir_ = (std::filesystem::temp_directory_path() /
            ("is2_serve_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
    shards_ = new core::ShardSet();
    core::write_shards(pair_->granule, 0, /*chunks_per_beam=*/2, dir_, *shards_);
    index_ = new serve::ShardIndex(serve::ShardIndex::build(shards_->files));

    // Fit the scaler the way the batch pipeline would (on beam features).
    const auto* files = index_->find(pair_->granule.id, BeamId::Gt1r);
    ASSERT_NE(files, nullptr);
    const auto merged = serve::ShardIndex::load_merged(*files);
    const auto pre = atl03::preprocess_beam(merged, merged.beams[0],
                                            campaign_->corrections(), config_->preprocess);
    auto segments = resample::resample(pre, config_->segmenter);
    const resample::FirstPhotonBiasCorrector fpb(config_->instrument.dead_time_m,
                                                 config_->instrument.strong_channels);
    fpb.apply(segments);
    const auto features =
        resample::to_features(segments, resample::rolling_baseline(segments));
    scaler_ = new resample::FeatureScaler(resample::FeatureScaler::fit(features));
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    delete scaler_;
    delete index_;
    delete shards_;
    delete pair_;
    delete campaign_;
    delete config_;
    scaler_ = nullptr;
    index_ = nullptr;
    shards_ = nullptr;
    pair_ = nullptr;
    campaign_ = nullptr;
    config_ = nullptr;
  }

  /// Deterministic replica source: every call yields identical weights.
  static nn::Sequential make_model() {
    util::Rng rng(99);
    return nn::make_lstm_model(config_->sequence_window, resample::FeatureRow::kDim, rng);
  }

  static std::unique_ptr<serve::GranuleService> make_service(serve::ServiceConfig cfg) {
    return std::make_unique<serve::GranuleService>(cfg, *config_, campaign_->corrections(),
                                                   *index_, &ServeCampaign::make_model,
                                                   *scaler_);
  }

  static ProductRequest request(BeamId beam,
                                seasurface::Method method = seasurface::Method::NasaEquation) {
    ProductRequest r;
    r.granule_id = pair_->granule.id;
    r.beam = beam;
    r.method = method;
    return r;
  }

  /// The batch pipeline run by hand on the same shards: the ground truth the
  /// served product must match bit for bit.
  static GranuleProduct batch_reference(BeamId beam, seasurface::Method method) {
    const auto* files = index_->find(pair_->granule.id, beam);
    EXPECT_NE(files, nullptr);
    const auto merged = serve::ShardIndex::load_merged(*files);
    const auto pre = atl03::preprocess_beam(merged, merged.beams[0],
                                            campaign_->corrections(), config_->preprocess);
    auto segments = resample::resample(pre, config_->segmenter);
    const resample::FirstPhotonBiasCorrector fpb(config_->instrument.dead_time_m,
                                                 config_->instrument.strong_channels);
    fpb.apply(segments);
    const auto features =
        resample::to_features(segments, resample::rolling_baseline(segments));
    nn::Sequential model = make_model();
    GranuleProduct out;
    out.granule_id = pair_->granule.id;
    out.beam = beam;
    out.classes =
        core::classify_segments(model, *scaler_, features, config_->sequence_window);
    out.sea_surface =
        seasurface::detect_sea_surface(segments, out.classes, method, config_->seasurface);
    out.freeboard =
        freeboard::compute_freeboard(segments, out.classes, out.sea_surface,
                                     config_->freeboard);
    out.segments = std::move(segments);
    return out;
  }

  static void expect_bit_identical(const GranuleProduct& a, const GranuleProduct& b) {
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (std::size_t i = 0; i < a.segments.size(); ++i) {
      EXPECT_EQ(a.segments[i].s, b.segments[i].s);
      EXPECT_EQ(a.segments[i].h_mean, b.segments[i].h_mean);
      EXPECT_EQ(a.segments[i].h_std, b.segments[i].h_std);
      EXPECT_EQ(a.segments[i].photon_rate, b.segments[i].photon_rate);
    }
    ASSERT_EQ(a.classes, b.classes);
    ASSERT_EQ(a.sea_surface.points().size(), b.sea_surface.points().size());
    for (std::size_t i = 0; i < a.sea_surface.points().size(); ++i) {
      EXPECT_EQ(a.sea_surface.points()[i].s, b.sea_surface.points()[i].s);
      EXPECT_EQ(a.sea_surface.points()[i].h_ref, b.sea_surface.points()[i].h_ref);
    }
    ASSERT_EQ(a.freeboard.points.size(), b.freeboard.points.size());
    for (std::size_t i = 0; i < a.freeboard.points.size(); ++i) {
      EXPECT_EQ(a.freeboard.points[i].s, b.freeboard.points[i].s);
      EXPECT_EQ(a.freeboard.points[i].freeboard, b.freeboard.points[i].freeboard);
      EXPECT_EQ(a.freeboard.points[i].cls, b.freeboard.points[i].cls);
    }
  }

  static core::PipelineConfig* config_;
  static core::Campaign* campaign_;
  static core::PairDataset* pair_;
  static core::ShardSet* shards_;
  static serve::ShardIndex* index_;
  static resample::FeatureScaler* scaler_;
  static std::string dir_;
};

core::PipelineConfig* ServeCampaign::config_ = nullptr;
core::Campaign* ServeCampaign::campaign_ = nullptr;
core::PairDataset* ServeCampaign::pair_ = nullptr;
core::ShardSet* ServeCampaign::shards_ = nullptr;
serve::ShardIndex* ServeCampaign::index_ = nullptr;
resample::FeatureScaler* ServeCampaign::scaler_ = nullptr;
std::string ServeCampaign::dir_;

TEST_F(ServeCampaign, ShardIndexCoversStrongBeams) {
  // 3 strong beams x 2 chunks -> 3 servable (granule, beam) entries.
  EXPECT_EQ(index_->size(), 3u);
  for (const BeamId beam : {BeamId::Gt1r, BeamId::Gt2r, BeamId::Gt3r}) {
    const auto* files = index_->find(pair_->granule.id, beam);
    ASSERT_NE(files, nullptr);
    EXPECT_EQ(files->size(), 2u);
  }
  EXPECT_EQ(index_->find("nope", BeamId::Gt1r), nullptr);

  // Merging the chunks loses no photons vs the original full beam.
  const auto merged =
      serve::ShardIndex::load_merged(*index_->find(pair_->granule.id, BeamId::Gt1r));
  EXPECT_EQ(merged.beams[0].size(), pair_->granule.beam(BeamId::Gt1r).size());
  EXPECT_EQ(merged.id, pair_->granule.id);
}

TEST_F(ServeCampaign, ShardIndexBuildReadsMetadataOnly) {
  // Index construction must stay header-only: no full granule decode per
  // shard (h5::read_granule_meta, not h5::load_granule).
  const auto full_loads_before = h5::load_granule_call_count();
  const serve::ShardIndex rebuilt = serve::ShardIndex::build(shards_->files);
  EXPECT_EQ(h5::load_granule_call_count(), full_loads_before);

  // The metadata-built index matches the one the suite serves from.
  EXPECT_EQ(rebuilt.size(), index_->size());
  for (const auto& [granule, beam] : index_->entries()) {
    const auto* files = rebuilt.find(granule, beam);
    ASSERT_NE(files, nullptr);
    EXPECT_EQ(*files, *index_->find(granule, beam));
  }
}

TEST_F(ServeCampaign, ColdBuildLatencyRepresentableInStageHistograms) {
  // Regression: fixed 0-500 ms bins put every ~790 ms cold build in the edge
  // bin. With log-scale bins the whole build (and every stage) must land
  // strictly inside the histogram range.
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = make_service(cfg);
  ASSERT_NE(service->submit(request(BeamId::Gt1r)).get().product, nullptr);

  const auto m = service->metrics();
  for (const auto* stage :
       {&m.total, &m.load, &m.features, &m.inference, &m.seasurface, &m.freeboard}) {
    if (stage->stats.count() == 0) continue;
    // p99 (here: the max) is representable, and the edge bins did not
    // swallow the distribution.
    EXPECT_LT(stage->stats.max(), serve::StageLatency::kMaxMs);
    EXPECT_EQ(stage->histogram.count(stage->histogram.bins() - 1), 0u);
    EXPECT_EQ(stage->histogram.total(), stage->stats.count());
  }
  EXPECT_EQ(m.total.stats.count(), 1u);
}

TEST_F(ServeCampaign, ServedProductMatchesBatchPipelineBitIdentically) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  auto service = make_service(cfg);

  const auto response =
      service->submit(request(BeamId::Gt1r, seasurface::Method::NasaEquation)).get();
  ASSERT_NE(response.product, nullptr);
  EXPECT_FALSE(response.from_cache);
  EXPECT_GT(response.service_ms, 0.0);

  const GranuleProduct reference =
      batch_reference(BeamId::Gt1r, seasurface::Method::NasaEquation);
  expect_bit_identical(*response.product, reference);

  // Per-stage latency histograms saw exactly one build.
  const auto m = service->metrics();
  EXPECT_EQ(m.total.stats.count(), 1u);
  EXPECT_EQ(m.load.stats.count(), 1u);
  EXPECT_EQ(m.inference.stats.count(), 1u);
  EXPECT_GT(m.inference_windows, 0u);
  EXPECT_GT(m.inference_batches, 1u);  // windows split into multiple batches
  EXPECT_EQ(m.total.histogram.total(), 1u);
}

TEST_F(ServeCampaign, SecondRequestServedFromCacheWithoutDispatch) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  auto service = make_service(cfg);
  const ProductRequest r = request(BeamId::Gt2r);

  const auto first = service->submit(r).get();
  ASSERT_NE(first.product, nullptr);
  const auto m1 = service->metrics();
  EXPECT_EQ(m1.scheduler.dispatched, 1u);
  EXPECT_EQ(m1.fast_hits, 0u);

  const auto second = service->submit(r).get();
  EXPECT_TRUE(second.from_cache);
  // Same resident object: bit-identical by construction, no copy, and the
  // hit/miss counters prove no inference re-ran.
  EXPECT_EQ(second.product.get(), first.product.get());

  const auto m2 = service->metrics();
  EXPECT_EQ(m2.scheduler.dispatched, 1u);  // unchanged: no new job
  EXPECT_EQ(m2.fast_hits, 1u);
  EXPECT_GE(m2.cache.hits, 1u);
  EXPECT_EQ(m2.inference_windows, m1.inference_windows);  // no extra inference
}

TEST_F(ServeCampaign, DifferentMethodIsADifferentCacheEntry) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = make_service(cfg);
  const auto nasa = service->submit(request(BeamId::Gt1r, seasurface::Method::NasaEquation));
  const auto minimum =
      service->submit(request(BeamId::Gt1r, seasurface::Method::MinElevation));
  ASSERT_NE(nasa.get().product, nullptr);
  ASSERT_NE(minimum.get().product, nullptr);
  EXPECT_EQ(service->metrics().scheduler.dispatched, 2u);
  EXPECT_EQ(service->metrics().cache.entries, 2u);
}

TEST_F(ServeCampaign, WarmViaEngineThenEverythingHits) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  auto service = make_service(cfg);

  std::vector<ProductRequest> all;
  for (const auto& [granule, beam] : index_->entries()) {
    ProductRequest r;
    r.granule_id = granule;
    r.beam = beam;
    all.push_back(r);
  }
  mapred::Engine engine({1, 2});
  EXPECT_EQ(service->warm(all, engine), all.size());
  EXPECT_EQ(service->warm(all, engine), 0u);  // idempotent

  for (const auto& r : all) {
    const auto response = service->submit(r).get();
    EXPECT_TRUE(response.from_cache);
    EXPECT_EQ(response.product->granule_id, r.granule_id);
    EXPECT_EQ(response.product->beam, r.beam);
  }
  const auto m = service->metrics();
  EXPECT_EQ(m.scheduler.dispatched, 0u);  // warm bypasses the queue entirely
  EXPECT_EQ(m.fast_hits, all.size());
}

TEST_F(ServeCampaign, ConcurrentMixedTrafficUnderEvictionPressure) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 32;
  cfg.cache_shards = 1;
  // Budget ~one product: repeat traffic keeps missing, so hits, misses and
  // evictions all race against each other.
  {
    auto probe = make_service(cfg);
    const auto r = probe->submit(request(BeamId::Gt1r)).get();
    cfg.cache_bytes = r.product->approx_bytes() + r.product->approx_bytes() / 2;
  }
  auto service = make_service(cfg);

  const BeamId beams[] = {BeamId::Gt1r, BeamId::Gt2r, BeamId::Gt3r};
  const seasurface::Method methods[] = {seasurface::Method::NasaEquation,
                                        seasurface::Method::MinElevation};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(1000 + c);
      for (int i = 0; i < 8; ++i) {
        const auto r = request(beams[rng.next() % 3], methods[rng.next() % 2]);
        const auto response = service->submit(r).get();
        if (!response.product || response.product->beam != r.beam) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  const auto m = service->metrics();
  EXPECT_EQ(m.requests, 32u);
  EXPECT_GT(m.cache.evictions, 0u);  // the pressure was real
  EXPECT_LE(m.cache.bytes, cfg.cache_bytes);
  // Every request was answered by a fast hit, a coalesced attach, or a build.
  EXPECT_GE(m.fast_hits + m.scheduler.coalesced + m.scheduler.dispatched, 32u);
}

TEST_F(ServeCampaign, UnknownGranuleYieldsBrokenFuture) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = make_service(cfg);
  ProductRequest r;
  r.granule_id = "ATL03_does_not_exist";
  auto f = service->submit(r);
  EXPECT_THROW(f.get(), std::runtime_error);
}

}  // namespace
