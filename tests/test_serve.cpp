// Serving subsystem tests: LRU product cache eviction/counters, the disk
// cache tier (round-trip bit-identity, crash safety on corrupt/truncated/
// stale files, byte-budget eviction, manifest rebuild across restarts),
// bounded + priority queue semantics (weighted dequeue, class-aware
// displacement), request coalescing and backpressure in the scheduler,
// priority-ordered shedding under saturation, cache-hit serving without
// re-dispatch, bulk warm-up via mapred::Engine, concurrent mixed hit/miss
// traffic, and bit-identity of served products with the batch pipeline
// across all three serve paths (RAM hit / disk hit / rebuild).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <thread>
#include <unistd.h>
#include <vector>

#include "baseline/decision_tree.hpp"
#include "core/campaign.hpp"
#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "h5lite/granule_io.hpp"
#include "h5lite/h5file.hpp"
#include "pipeline/classifier.hpp"
#include "pipeline/product_builder.hpp"
#include "serve/disk_cache.hpp"
#include "serve/product_cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace is2;
using atl03::BeamId;
using atl03::SurfaceClass;
using serve::BoundedQueue;
using serve::DiskCache;
using serve::GranuleProduct;
using serve::Priority;
using serve::ProductCache;
using serve::ProductKey;
using serve::ProductRequest;
using serve::ProductResponse;
using serve::ServedFrom;

/// Field-exact comparison of two served products (the bit-identity bar every
/// serve path — RAM hit, disk hit, rebuild — must clear vs the batch
/// pipeline).
void expect_bit_identical(const GranuleProduct& a, const GranuleProduct& b) {
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].s, b.segments[i].s);
    EXPECT_EQ(a.segments[i].h_mean, b.segments[i].h_mean);
    EXPECT_EQ(a.segments[i].h_std, b.segments[i].h_std);
    EXPECT_EQ(a.segments[i].photon_rate, b.segments[i].photon_rate);
  }
  ASSERT_EQ(a.classes, b.classes);
  ASSERT_EQ(a.sea_surface.points().size(), b.sea_surface.points().size());
  for (std::size_t i = 0; i < a.sea_surface.points().size(); ++i) {
    EXPECT_EQ(a.sea_surface.points()[i].s, b.sea_surface.points()[i].s);
    EXPECT_EQ(a.sea_surface.points()[i].h_ref, b.sea_surface.points()[i].h_ref);
  }
  ASSERT_EQ(a.freeboard.points.size(), b.freeboard.points.size());
  for (std::size_t i = 0; i < a.freeboard.points.size(); ++i) {
    EXPECT_EQ(a.freeboard.points[i].s, b.freeboard.points[i].s);
    EXPECT_EQ(a.freeboard.points[i].freeboard, b.freeboard.points[i].freeboard);
    EXPECT_EQ(a.freeboard.points[i].cls, b.freeboard.points[i].cls);
  }
}

// ---------------------------------------------------------------------------
// ProductCache
// ---------------------------------------------------------------------------

std::shared_ptr<const GranuleProduct> make_product(const std::string& id,
                                                   std::size_t n_segments) {
  auto p = std::make_shared<GranuleProduct>();
  p->granule_id = id;
  p->segments.resize(n_segments);
  p->classes.resize(n_segments, SurfaceClass::ThickIce);
  return p;
}

ProductKey key_of(const std::string& id, std::uint64_t config_hash = 7) {
  return ProductKey{id, BeamId::Gt1r, config_hash};
}

TEST(ProductCache, LruEvictionOrder) {
  const std::size_t entry = make_product("x", 100)->approx_bytes();
  ProductCache cache(entry * 3 + entry / 2, /*num_shards=*/1);

  cache.put(key_of("a"), make_product("a", 100));
  cache.put(key_of("b"), make_product("b", 100));
  cache.put(key_of("c"), make_product("c", 100));
  ASSERT_EQ(cache.stats().entries, 3u);

  ASSERT_NE(cache.get(key_of("a")), nullptr);  // refresh "a" -> "b" is now LRU
  cache.put(key_of("d"), make_product("d", 100));

  EXPECT_TRUE(cache.contains(key_of("a")));
  EXPECT_FALSE(cache.contains(key_of("b")));
  EXPECT_TRUE(cache.contains(key_of("c")));
  EXPECT_TRUE(cache.contains(key_of("d")));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LE(stats.bytes, cache.byte_budget());
}

TEST(ProductCache, CountersAndReplacement) {
  ProductCache cache(10u << 20, 1);
  EXPECT_EQ(cache.get(key_of("a")), nullptr);  // miss
  cache.put(key_of("a"), make_product("a", 10));
  EXPECT_NE(cache.get(key_of("a")), nullptr);  // hit
  const std::size_t bytes_one = cache.stats().bytes;
  cache.put(key_of("a"), make_product("a", 10));  // replace, not accumulate
  EXPECT_EQ(cache.stats().bytes, bytes_one);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_NEAR(stats.hit_rate(), 0.5, 1e-12);
}

TEST(ProductCache, OversizedEntryStillServes) {
  auto big = make_product("big", 100'000);
  ProductCache cache(big->approx_bytes() / 4, 1);
  cache.put(key_of("small"), make_product("small", 10));
  cache.put(key_of("big"), big);
  // The oversized product evicted everything else but is itself resident, so
  // coalesced requesters still get an answer.
  EXPECT_TRUE(cache.contains(key_of("big")));
  EXPECT_FALSE(cache.contains(key_of("small")));
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ProductCache, DistinctConfigHashesAreDistinctEntries) {
  ProductCache cache(10u << 20, 4);
  cache.put(key_of("a", 1), make_product("a", 10));
  cache.put(key_of("a", 2), make_product("a", 10));
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_TRUE(cache.contains(key_of("a", 1)));
  EXPECT_TRUE(cache.contains(key_of("a", 2)));
  EXPECT_FALSE(cache.contains(key_of("a", 3)));
}

TEST(ConfigFingerprint, SensitiveToConfigAndMethod) {
  const core::PipelineConfig base = core::PipelineConfig::tiny();
  core::PipelineConfig changed = base;
  changed.sequence_window += 2;
  const auto nasa = seasurface::Method::NasaEquation;
  EXPECT_NE(serve::config_fingerprint(base, nasa),
            serve::config_fingerprint(changed, nasa));
  EXPECT_NE(serve::config_fingerprint(base, nasa),
            serve::config_fingerprint(base, seasurface::Method::MinElevation));
  EXPECT_EQ(serve::config_fingerprint(base, nasa),
            serve::config_fingerprint(core::PipelineConfig::tiny(), nasa));
}

// ---------------------------------------------------------------------------
// DiskCache (synthetic products: no campaign needed)
// ---------------------------------------------------------------------------

/// A product with non-trivial values in every serialized field, so a
/// round-trip that drops or reorders anything fails loudly.
GranuleProduct rich_product(std::uint64_t seed, std::size_t n = 64) {
  util::Rng rng(seed);
  GranuleProduct p;
  p.granule_id = "ATL03_rich_" + std::to_string(seed);
  p.beam = BeamId::Gt2r;
  p.segments.resize(n);
  p.classes.resize(n);
  std::vector<seasurface::SeaSurfacePoint> surface(n / 8 + 2);
  p.freeboard.points.resize(n / 2 + 1);
  for (std::size_t i = 0; i < n; ++i) {
    auto& s = p.segments[i];
    s.s = 2.0 * static_cast<double>(i) + rng.uniform();
    s.t = 1.0e8 + rng.uniform();
    s.x = rng.normal();
    s.y = rng.normal();
    s.h_mean = rng.normal() * 0.3;
    s.h_median = s.h_mean + rng.normal() * 0.01;
    s.h_std = std::abs(rng.normal()) * 0.1;
    s.h_min = s.h_mean - s.h_std;
    s.n_photons = static_cast<std::uint32_t>(rng.next() % 500);
    s.photon_rate = rng.uniform() * 3.0;
    s.bckgrd_rate = rng.uniform() * 1e6;
    s.truth = static_cast<SurfaceClass>(rng.next() % 3);
    p.classes[i] = static_cast<SurfaceClass>(rng.next() % 3);
  }
  for (std::size_t i = 0; i < surface.size(); ++i) {
    surface[i].s = 5000.0 * static_cast<double>(i);
    surface[i].h_ref = rng.normal() * 0.05;
    surface[i].sigma = rng.uniform() * 0.01;
    surface[i].n_leads = static_cast<std::uint32_t>(rng.next() % 5);
    surface[i].n_water_segments = static_cast<std::uint32_t>(rng.next() % 40);
    surface[i].interpolated = (rng.next() % 2) == 0;
  }
  p.sea_surface = seasurface::SeaSurfaceProfile(std::move(surface));
  for (std::size_t i = 0; i < p.freeboard.points.size(); ++i) {
    auto& f = p.freeboard.points[i];
    f.s = 2.0 * static_cast<double>(i);
    f.x = rng.normal();
    f.y = rng.normal();
    f.freeboard = rng.uniform() * 0.6 - 0.05;
    f.cls = static_cast<SurfaceClass>(rng.next() % 3);
    f.truth = static_cast<SurfaceClass>(rng.next() % 3);
  }
  return p;
}

/// Exhaustive field comparison for the synthetic round-trip tests (covers
/// the fields expect_bit_identical leaves to the pipeline tests).
void expect_product_equal(const GranuleProduct& a, const GranuleProduct& b) {
  EXPECT_EQ(a.granule_id, b.granule_id);
  EXPECT_EQ(a.beam, b.beam);
  expect_bit_identical(a, b);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].t, b.segments[i].t);
    EXPECT_EQ(a.segments[i].x, b.segments[i].x);
    EXPECT_EQ(a.segments[i].y, b.segments[i].y);
    EXPECT_EQ(a.segments[i].h_median, b.segments[i].h_median);
    EXPECT_EQ(a.segments[i].h_min, b.segments[i].h_min);
    EXPECT_EQ(a.segments[i].n_photons, b.segments[i].n_photons);
    EXPECT_EQ(a.segments[i].bckgrd_rate, b.segments[i].bckgrd_rate);
    EXPECT_EQ(a.segments[i].truth, b.segments[i].truth);
  }
  for (std::size_t i = 0; i < a.sea_surface.points().size(); ++i) {
    EXPECT_EQ(a.sea_surface.points()[i].sigma, b.sea_surface.points()[i].sigma);
    EXPECT_EQ(a.sea_surface.points()[i].n_leads, b.sea_surface.points()[i].n_leads);
    EXPECT_EQ(a.sea_surface.points()[i].n_water_segments,
              b.sea_surface.points()[i].n_water_segments);
    EXPECT_EQ(a.sea_surface.points()[i].interpolated, b.sea_surface.points()[i].interpolated);
  }
  for (std::size_t i = 0; i < a.freeboard.points.size(); ++i) {
    EXPECT_EQ(a.freeboard.points[i].x, b.freeboard.points[i].x);
    EXPECT_EQ(a.freeboard.points[i].y, b.freeboard.points[i].y);
    EXPECT_EQ(a.freeboard.points[i].truth, b.freeboard.points[i].truth);
  }
}

class DiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("is2_disk_cache_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  ProductKey rich_key(std::uint64_t seed) const {
    const GranuleProduct p = rich_product(seed);
    return ProductKey{p.granule_id, p.beam, 0xC0FFEE00u + seed};
  }

  std::string path_for(const ProductKey& key) const {
    return (std::filesystem::path(dir_) / DiskCache::filename_for(key)).string();
  }

  std::string dir_;
};

TEST_F(DiskCacheTest, SerializeRoundTripIsBitIdentical) {
  const GranuleProduct p = rich_product(7);
  const ProductKey key = rich_key(7);
  const auto bytes = DiskCache::serialize(key, p);
  const GranuleProduct back = DiskCache::deserialize(bytes, key);
  expect_product_equal(back, p);

  // A different expected key (e.g. filename collision) must not be served.
  ProductKey other = key;
  other.config_hash ^= 1;
  EXPECT_THROW(DiskCache::deserialize(bytes, other), h5::H5Error);
}

TEST_F(DiskCacheTest, PutGetAcrossRestartAndLruEviction) {
  const GranuleProduct p0 = rich_product(0), p1 = rich_product(1), p2 = rich_product(2);
  const std::size_t file_bytes = DiskCache::serialize(rich_key(0), p0).size();
  {
    DiskCache cache({dir_, file_bytes * 2 + file_bytes / 2});
    cache.put(rich_key(0), p0);
    cache.put(rich_key(1), p1);
    EXPECT_EQ(cache.stats().entries, 2u);
    auto got = cache.get(rich_key(0));  // refresh key 0 -> key 1 is LRU
    ASSERT_NE(got, nullptr);
    expect_product_equal(*got, p0);
    cache.put(rich_key(2), p2);  // evicts key 1
    EXPECT_TRUE(cache.contains(rich_key(0)));
    EXPECT_FALSE(cache.contains(rich_key(1)));
    EXPECT_TRUE(cache.contains(rich_key(2)));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_LE(cache.stats().bytes, cache.byte_budget());
  }
  // Restart: the manifest is rebuilt from the surviving files.
  DiskCache reopened({dir_, file_bytes * 4});
  EXPECT_EQ(reopened.stats().entries, 2u);
  auto got = reopened.get(rich_key(2));
  ASSERT_NE(got, nullptr);
  expect_product_equal(*got, p2);
  EXPECT_EQ(reopened.get(rich_key(1)), nullptr);  // evicted stays evicted
}

TEST_F(DiskCacheTest, CorruptFilesAreMissesAndDeleted) {
  const GranuleProduct p = rich_product(3);
  const ProductKey key = rich_key(3);
  const auto valid = DiskCache::serialize(key, p);

  struct Case {
    const char* name;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Case> cases;
  cases.push_back({"truncated_mid_payload",
                   {valid.begin(), valid.begin() + static_cast<long>(valid.size() / 2)}});
  cases.push_back({"empty", {}});
  Case bad_version{"wrong_format_version", valid};
  bad_version.bytes[4] ^= 0x40;  // u32 version field after the 4-byte magic
  cases.push_back(std::move(bad_version));
  Case bad_crc{"payload_bit_flip", valid};
  bad_crc.bytes[bad_crc.bytes.size() - 20] ^= 0x01;  // inside the payload
  cases.push_back(std::move(bad_crc));
  Case bad_magic{"foreign_file", valid};
  bad_magic.bytes[0] = 'X';
  cases.push_back(std::move(bad_magic));

  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    DiskCache cache({dir_, 64u << 20});
    cache.put(key, p);
    {  // overwrite the published file with the corrupt fixture
      std::ofstream out(path_for(key), std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(c.bytes.data()),
                static_cast<std::streamsize>(c.bytes.size()));
    }
    EXPECT_EQ(cache.get(key), nullptr);  // never served
    EXPECT_FALSE(std::filesystem::exists(path_for(key)));  // deleted
    EXPECT_FALSE(cache.contains(key));
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.corrupt_dropped, 1u);
    std::filesystem::remove_all(dir_);
  }
}

TEST_F(DiskCacheTest, StartupScanDropsPartialAndStaleFiles) {
  const GranuleProduct p = rich_product(4);
  const ProductKey key = rich_key(4);
  {
    DiskCache cache({dir_, 64u << 20});
    cache.put(key, p);
  }
  // A crashed writer's leftover temp file and a header-truncated cache file.
  const std::string tmp_leftover = path_for(key) + ".tmp.12345.0";
  {
    std::ofstream out(tmp_leftover, std::ios::binary);
    out << "partial";
  }
  const std::string truncated =
      (std::filesystem::path(dir_) / "short.is2p").string();
  {
    std::ofstream out(truncated, std::ios::binary);
    out << "IS";
  }

  DiskCache reopened({dir_, 64u << 20});
  EXPECT_FALSE(std::filesystem::exists(tmp_leftover));
  EXPECT_FALSE(std::filesystem::exists(truncated));
  EXPECT_EQ(reopened.stats().corrupt_dropped, 2u);
  EXPECT_EQ(reopened.stats().entries, 1u);  // the valid file survived
  auto got = reopened.get(key);
  ASSERT_NE(got, nullptr);
  expect_product_equal(*got, p);
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueue, FifoTryPushAndClose) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  EXPECT_EQ(q.size(), 2u);

  auto a = q.pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 1);
  EXPECT_TRUE(q.try_push(3));

  q.close();
  EXPECT_FALSE(q.try_push(4));
  EXPECT_FALSE(q.push(4));
  // Drains accepted items, then reports closed.
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_EQ(*q.pop(), 3);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, BlockingPushResumesAfterPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    q.push(2);  // blocks until the pop below
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.pop(), 1);
  t.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.pop(), 2);
}

// ---------------------------------------------------------------------------
// PriorityQueue
// ---------------------------------------------------------------------------

TEST(PriorityQueue, WeightedDequeueAndFifoWithinClass) {
  serve::PriorityQueue<int> q(16, {2, 1, 1});
  ASSERT_TRUE(q.try_push(100, Priority::background));
  ASSERT_TRUE(q.try_push(101, Priority::background));
  ASSERT_TRUE(q.try_push(10, Priority::batch));
  ASSERT_TRUE(q.try_push(11, Priority::batch));
  ASSERT_TRUE(q.try_push(1, Priority::interactive));
  ASSERT_TRUE(q.try_push(2, Priority::interactive));
  EXPECT_EQ(q.size(), 6u);
  EXPECT_EQ(q.size(Priority::background), 2u);

  // Weights (2,1,1): interactive twice, then batch, then background, then a
  // credit refill lets the remaining batch/background items through — FIFO
  // within each class throughout.
  std::vector<std::pair<int, Priority>> order;
  for (int i = 0; i < 6; ++i) order.push_back(*q.pop());
  const std::vector<std::pair<int, Priority>> expected = {
      {1, Priority::interactive}, {2, Priority::interactive}, {10, Priority::batch},
      {100, Priority::background}, {11, Priority::batch},     {101, Priority::background}};
  EXPECT_EQ(order, expected);

  q.close();
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.try_push(7, Priority::interactive));
}

TEST(PriorityQueue, DisplacementShedsBackgroundFirst) {
  serve::PriorityQueue<int> q(3);
  ASSERT_TRUE(q.try_push(1, Priority::batch));
  ASSERT_TRUE(q.try_push(2, Priority::background));
  ASSERT_TRUE(q.try_push(3, Priority::background));  // full

  std::optional<std::pair<int, Priority>> victim;
  // Interactive displaces the NEWEST background item first.
  ASSERT_TRUE(q.try_push(4, Priority::interactive, &victim));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->first, 3);
  EXPECT_EQ(victim->second, Priority::background);
  ASSERT_TRUE(q.try_push(5, Priority::interactive, &victim));
  EXPECT_EQ(victim->first, 2);
  // Background exhausted: batch is next in the shed order.
  ASSERT_TRUE(q.try_push(6, Priority::interactive, &victim));
  EXPECT_EQ(victim->first, 1);
  EXPECT_EQ(victim->second, Priority::batch);
  // Nothing strictly below interactive remains: the push itself is shed.
  EXPECT_FALSE(q.try_push(7, Priority::interactive, &victim));
  EXPECT_FALSE(victim.has_value());
  // A lower class never displaces its own or a higher class.
  EXPECT_FALSE(q.try_push(8, Priority::background, &victim));
  EXPECT_FALSE(victim.has_value());
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.size(Priority::interactive), 3u);
}

TEST(PriorityQueue, PromoteMovesQueuedItemToHigherClass) {
  serve::PriorityQueue<int> q(8);
  ASSERT_TRUE(q.try_push(1, Priority::background));
  ASSERT_TRUE(q.try_push(2, Priority::background));
  EXPECT_TRUE(q.promote(2, Priority::interactive));
  EXPECT_EQ(q.size(Priority::interactive), 1u);
  EXPECT_EQ(q.size(Priority::background), 1u);
  // Promoted item dequeues before the background one it used to trail.
  EXPECT_EQ(q.pop()->first, 2);
  EXPECT_EQ(q.pop()->first, 1);
  // Absent (already popped) items cannot be promoted.
  EXPECT_FALSE(q.promote(1, Priority::interactive));
}

// ---------------------------------------------------------------------------
// BatchScheduler (controlled builder: no campaign needed)
// ---------------------------------------------------------------------------

struct GatedBuilder {
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::atomic<int> builds{0};

  serve::BatchScheduler::Builder fn() {
    return [this](const ProductRequest&, const ProductKey& key) {
      open.wait();
      builds.fetch_add(1);
      auto p = std::make_shared<GranuleProduct>();
      p->granule_id = key.granule_id;
      return ProductResponse{p, false, 0.0};
    };
  }
};

ProductRequest req_named(const std::string& id) {
  ProductRequest r;
  r.granule_id = id;
  return r;
}

TEST(BatchScheduler, CoalescesConcurrentRequestsForOneKey) {
  GatedBuilder builder;
  serve::BatchScheduler sched({/*workers=*/2, /*queue_capacity=*/8}, builder.fn());

  auto f1 = sched.submit(req_named("k1"), key_of("k1"));
  auto f2 = sched.submit(req_named("k1"), key_of("k1"));
  auto f3 = sched.submit(req_named("k1"), key_of("k1"));
  {
    const auto stats = sched.stats();
    EXPECT_EQ(stats.dispatched, 1u);
    EXPECT_EQ(stats.coalesced, 2u);
  }

  builder.gate.set_value();
  const ProductResponse r1 = f1.get(), r2 = f2.get(), r3 = f3.get();
  EXPECT_EQ(r1.product.get(), r2.product.get());  // one build shared by all
  EXPECT_EQ(r1.product.get(), r3.product.get());
  EXPECT_EQ(builder.builds.load(), 1);
  EXPECT_GE(r1.service_ms, 0.0);

  sched.shutdown();
  EXPECT_EQ(sched.stats().completed, 1u);
  EXPECT_EQ(sched.stats().in_flight, 0u);
}

TEST(BatchScheduler, BackpressureRejectsAndBlocks) {
  GatedBuilder builder;
  serve::BatchScheduler sched({/*workers=*/1, /*queue_capacity=*/1}, builder.fn());

  // k1 gets popped by the (gated) worker; wait until it leaves the queue.
  auto f1 = sched.submit(req_named("k1"), key_of("k1"));
  while (sched.stats().queue_depth != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  auto f2 = sched.submit(req_named("k2"), key_of("k2"));  // fills the queue
  EXPECT_EQ(sched.stats().queue_depth, 1u);

  // Cold third key: shed.
  EXPECT_FALSE(sched.try_submit(req_named("k3"), key_of("k3")).has_value());
  EXPECT_EQ(sched.stats().rejected, 1u);
  // try_submit for an in-flight key still attaches for free.
  auto f2b = sched.try_submit(req_named("k2"), key_of("k2"));
  ASSERT_TRUE(f2b.has_value());
  EXPECT_EQ(sched.stats().coalesced, 1u);

  // Blocking submit parks on the full queue until the worker frees space.
  std::atomic<bool> accepted{false};
  std::thread t([&] {
    auto f4 = sched.submit(req_named("k4"), key_of("k4"));
    accepted = true;
    f4.wait();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(accepted.load());  // worker is gated, queue still full

  builder.gate.set_value();
  t.join();
  EXPECT_TRUE(accepted.load());
  EXPECT_EQ(f1.get().product->granule_id, "k1");
  EXPECT_EQ(f2.get().product.get(), f2b->get().product.get());
  sched.shutdown();
  EXPECT_EQ(sched.stats().completed, 3u);  // k1, k2, k4
}

TEST(BatchScheduler, ShutdownDrainsAcceptedWork) {
  GatedBuilder builder;
  builder.gate.set_value();  // builds run immediately
  std::vector<serve::ProductFuture> futures;
  {
    serve::BatchScheduler sched({2, 16}, builder.fn());
    for (int i = 0; i < 8; ++i) {
      const std::string id = "g" + std::to_string(i);
      futures.push_back(sched.submit(req_named(id), key_of(id)));
    }
    sched.shutdown();
  }
  for (auto& f : futures) EXPECT_NE(f.get().product, nullptr);
  EXPECT_EQ(builder.builds.load(), 8);
}

TEST(BatchScheduler, PrioritySheddingIsClassOrderedUnderSaturation) {
  GatedBuilder builder;
  serve::BatchScheduler sched({/*workers=*/1, /*queue_capacity=*/2}, builder.fn());

  auto bg_req = [](const std::string& id) {
    ProductRequest r = req_named(id);
    r.priority = Priority::background;
    return r;
  };
  auto fg_req = [](const std::string& id) {
    ProductRequest r = req_named(id);
    r.priority = Priority::interactive;
    return r;
  };

  // k0 occupies the (gated) worker; wait until it leaves the queue, then
  // saturate the queue with background work.
  auto f0 = sched.submit(bg_req("k0"), key_of("k0"));
  while (sched.stats().queue_depth != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto f1 = sched.submit(bg_req("k1"), key_of("k1"));
  auto f2 = sched.submit(bg_req("k2"), key_of("k2"));
  EXPECT_EQ(sched.stats().queue_depth_by_class[2], 2u);

  // Interactive admission displaces the newest background job (k2); its
  // waiters see ShedError, and the shed class is reported to the caller.
  std::optional<Priority> shed;
  auto fi1 = sched.try_submit(fg_req("k3"), key_of("k3"), &shed);
  ASSERT_TRUE(fi1.has_value());
  EXPECT_EQ(shed, Priority::background);
  EXPECT_THROW(f2.get(), serve::ShedError);
  auto fi2 = sched.try_submit(fg_req("k4"), key_of("k4"), &shed);
  ASSERT_TRUE(fi2.has_value());
  EXPECT_EQ(shed, Priority::background);
  EXPECT_THROW(f1.get(), serve::ShedError);

  // Queue now holds only interactive work: an incoming background (or equal
  // interactive) request is shed itself instead of displacing anything.
  EXPECT_FALSE(sched.try_submit(bg_req("k5"), key_of("k5"), &shed).has_value());
  EXPECT_EQ(shed, Priority::background);
  EXPECT_FALSE(sched.try_submit(fg_req("k6"), key_of("k6"), &shed).has_value());
  EXPECT_EQ(shed, Priority::interactive);

  builder.gate.set_value();
  ASSERT_NE(f0.get().product, nullptr);
  ASSERT_NE(fi1->get().product, nullptr);
  ASSERT_NE(fi2->get().product, nullptr);
  sched.shutdown();

  const auto stats = sched.stats();
  EXPECT_EQ(stats.displaced, 2u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.shed_by_class[static_cast<std::size_t>(Priority::background)], 3u);
  EXPECT_EQ(stats.shed_by_class[static_cast<std::size_t>(Priority::interactive)], 1u);
  EXPECT_EQ(stats.completed, 3u);  // k0, k3, k4 built; k1/k2 shed pre-build
}

TEST(BatchScheduler, CoalescingPromotesQueuedJobClass) {
  GatedBuilder builder;
  serve::BatchScheduler sched({/*workers=*/1, /*queue_capacity=*/4}, builder.fn());

  ProductRequest bg = req_named("k0");
  bg.priority = Priority::background;
  auto f0 = sched.submit(bg, key_of("k0"));  // occupies the gated worker
  while (sched.stats().queue_depth != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  ProductRequest queued_bg = req_named("k1");
  queued_bg.priority = Priority::background;
  auto f1 = sched.submit(queued_bg, key_of("k1"));
  EXPECT_EQ(sched.stats().queue_depth_by_class[2], 1u);

  // An interactive requester coalescing onto the queued background job
  // drags it into the interactive lane (it now outranks later batch work
  // and cannot be displaced by interactive admissions).
  ProductRequest fg = queued_bg;
  fg.priority = Priority::interactive;
  auto f1b = sched.submit(fg, key_of("k1"));
  EXPECT_EQ(sched.stats().coalesced, 1u);
  EXPECT_EQ(sched.stats().queue_depth_by_class[0], 1u);
  EXPECT_EQ(sched.stats().queue_depth_by_class[2], 0u);

  builder.gate.set_value();
  EXPECT_EQ(f1.get().product.get(), f1b.get().product.get());  // still one build
  ASSERT_NE(f0.get().product, nullptr);
  sched.shutdown();
  EXPECT_EQ(sched.stats().completed, 2u);
}

TEST(BatchScheduler, SubmitAfterShutdownIsBrokenNotRetryable) {
  GatedBuilder builder;
  builder.gate.set_value();
  serve::BatchScheduler sched({1, 4}, builder.fn());
  sched.shutdown();

  // Not nullopt: load-shedding clients must be able to tell "full, retry
  // later" apart from "down for good".
  auto maybe = sched.try_submit(req_named("k1"), key_of("k1"));
  ASSERT_TRUE(maybe.has_value());
  EXPECT_THROW(maybe->get(), std::runtime_error);
  EXPECT_THROW(sched.submit(req_named("k2"), key_of("k2")).get(), std::runtime_error);
  EXPECT_EQ(sched.stats().rejected, 0u);
  EXPECT_EQ(sched.stats().dispatched, 0u);
}

TEST(BatchScheduler, SubmitRacingShutdownIsShedDeterministically) {
  // The one shutdown window: a submit that passed the shut_down_ check and
  // is blocked in the queue push when close() lands. It must fail as *shed*
  // work (ShedError, retryable, counted) — not hang, not a generic error —
  // while everything accepted before the close still drains.
  GatedBuilder builder;
  serve::BatchScheduler sched({/*workers=*/1, /*queue_capacity=*/1}, builder.fn());

  auto f1 = sched.submit(req_named("k1"), key_of("k1"));  // held by gated worker
  while (sched.stats().queue_depth != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto f2 = sched.submit(req_named("k2"), key_of("k2"));  // fills the queue

  // k3 registers as in-flight, then parks inside the blocking push.
  serve::ProductFuture f3;
  std::thread submitter([&] { f3 = sched.submit(req_named("k3"), key_of("k3")); });
  while (sched.stats().in_flight != 3)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(sched.stats().dispatched, 2u);  // k3 never landed in the queue

  // shutdown() closes the queue (failing k3's push) and then blocks on the
  // drain, which the gate still holds — so it needs its own thread.
  std::thread closer([&] { sched.shutdown(); });
  submitter.join();
  EXPECT_THROW(f3.get(), serve::ShedError);
  EXPECT_EQ(sched.stats().rejected, 1u);

  builder.gate.set_value();
  closer.join();
  EXPECT_NE(f1.get().product, nullptr);  // accepted work drained
  EXPECT_NE(f2.get().product, nullptr);
  const auto stats = sched.stats();
  EXPECT_EQ(stats.dispatched, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST(BatchScheduler, ShutdownUnderSubmitLoadResolvesEveryFuture) {
  // Hammer the same race nondeterministically: submitters racing shutdown
  // must each get exactly one of (product, ShedError, "shut down" error) —
  // no hangs, no lost futures — and accepted == completed after the drain.
  GatedBuilder builder;
  builder.gate.set_value();
  serve::BatchScheduler sched({/*workers=*/2, /*queue_capacity=*/2}, builder.fn());

  std::mutex mu;
  std::vector<serve::ProductFuture> futures;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string id = "g" + std::to_string(t) + "_" + std::to_string(i);
        auto f = sched.submit(req_named(id), key_of(id));
        std::lock_guard lock(mu);
        futures.push_back(std::move(f));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sched.shutdown();
  for (auto& t : threads) t.join();

  std::uint64_t served = 0, shed = 0, refused = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(10)), std::future_status::ready);
    try {
      ASSERT_NE(f.get().product, nullptr);
      ++served;
    } catch (const serve::ShedError&) {
      ++shed;  // lost the push-vs-close race
    } catch (const std::runtime_error&) {
      ++refused;  // saw shut_down_ up front
    }
  }
  EXPECT_EQ(served + shed + refused, futures.size());
  const auto stats = sched.stats();
  EXPECT_EQ(stats.dispatched, served);   // every accepted job was drained...
  EXPECT_EQ(stats.completed, served);    // ...to completion
  EXPECT_EQ(stats.rejected, shed);
  EXPECT_EQ(stats.in_flight, 0u);
}

// ---------------------------------------------------------------------------
// GranuleService on a tiny campaign
// ---------------------------------------------------------------------------

class ServeCampaign : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new core::PipelineConfig(core::PipelineConfig::tiny());
    campaign_ = new core::Campaign(*config_);
    pair_ = new core::PairDataset(campaign_->generate(1));  // pair 2: zero drift

    dir_ = (std::filesystem::temp_directory_path() /
            ("is2_serve_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
    shards_ = new core::ShardSet();
    core::write_shards(pair_->granule, 0, /*chunks_per_beam=*/2, dir_, *shards_);
    index_ = new serve::ShardIndex(serve::ShardIndex::build(shards_->files));

    // Fit the scaler the way the batch pipeline would (on beam features).
    const auto* files = index_->find(pair_->granule.id, BeamId::Gt1r);
    ASSERT_NE(files, nullptr);
    const auto merged = serve::ShardIndex::load_merged(*files);
    const auto pre = atl03::preprocess_beam(merged, merged.beams[0],
                                            campaign_->corrections(), config_->preprocess);
    auto segments = resample::resample(pre, config_->segmenter);
    const resample::FirstPhotonBiasCorrector fpb(config_->instrument.dead_time_m,
                                                 config_->instrument.strong_channels);
    fpb.apply(segments);
    const auto features =
        resample::to_features(segments, resample::rolling_baseline(segments));
    scaler_ = new resample::FeatureScaler(resample::FeatureScaler::fit(features));

    // A fitted decision tree for the second classifier backend (trained on
    // feature rows vs photon truth; quality is irrelevant to these tests,
    // identity and determinism are).
    std::vector<float> x;
    std::vector<std::uint8_t> y;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      if (segments[i].truth == SurfaceClass::Unknown) continue;
      for (int d = 0; d < resample::FeatureRow::kDim; ++d) x.push_back(features[i].v[d]);
      y.push_back(static_cast<std::uint8_t>(segments[i].truth));
    }
    tree_ = new baseline::DecisionTree();
    tree_->fit(x, resample::FeatureRow::kDim, y, atl03::kNumClasses);
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    delete tree_;
    tree_ = nullptr;
    delete scaler_;
    delete index_;
    delete shards_;
    delete pair_;
    delete campaign_;
    delete config_;
    scaler_ = nullptr;
    index_ = nullptr;
    shards_ = nullptr;
    pair_ = nullptr;
    campaign_ = nullptr;
    config_ = nullptr;
  }

  /// Deterministic replica source: every call yields identical weights.
  static nn::Sequential make_model() {
    util::Rng rng(99);
    return nn::make_lstm_model(config_->sequence_window, resample::FeatureRow::kDim, rng);
  }

  static std::unique_ptr<serve::GranuleService> make_service(serve::ServiceConfig cfg) {
    return std::make_unique<serve::GranuleService>(cfg, *config_, campaign_->corrections(),
                                                   *index_, &ServeCampaign::make_model,
                                                   *scaler_);
  }

  /// Service with both classifier backends configured.
  static std::unique_ptr<serve::GranuleService> make_service_with_tree(
      serve::ServiceConfig cfg) {
    return std::make_unique<serve::GranuleService>(
        cfg, *config_, campaign_->corrections(), *index_, &ServeCampaign::make_model,
        *scaler_, [] { return *tree_; });
  }

  static ProductRequest request(BeamId beam,
                                seasurface::Method method = seasurface::Method::NasaEquation) {
    ProductRequest r;
    r.granule_id = pair_->granule.id;
    r.beam = beam;
    r.method = method;
    return r;
  }

  /// The batch pipeline run by hand on the same shards: the ground truth the
  /// served product must match bit for bit.
  static GranuleProduct batch_reference(BeamId beam, seasurface::Method method) {
    const auto* files = index_->find(pair_->granule.id, beam);
    EXPECT_NE(files, nullptr);
    const auto merged = serve::ShardIndex::load_merged(*files);
    const auto pre = atl03::preprocess_beam(merged, merged.beams[0],
                                            campaign_->corrections(), config_->preprocess);
    auto segments = resample::resample(pre, config_->segmenter);
    const resample::FirstPhotonBiasCorrector fpb(config_->instrument.dead_time_m,
                                                 config_->instrument.strong_channels);
    fpb.apply(segments);
    const auto features =
        resample::to_features(segments, resample::rolling_baseline(segments));
    nn::Sequential model = make_model();
    GranuleProduct out;
    out.granule_id = pair_->granule.id;
    out.beam = beam;
    out.classes =
        core::classify_segments(model, *scaler_, features, config_->sequence_window);
    out.sea_surface =
        seasurface::detect_sea_surface(segments, out.classes, method, config_->seasurface);
    out.freeboard =
        freeboard::compute_freeboard(segments, out.classes, out.sea_surface,
                                     config_->freeboard);
    out.segments = std::move(segments);
    return out;
  }

  static core::PipelineConfig* config_;
  static core::Campaign* campaign_;
  static core::PairDataset* pair_;
  static core::ShardSet* shards_;
  static serve::ShardIndex* index_;
  static resample::FeatureScaler* scaler_;
  static baseline::DecisionTree* tree_;
  static std::string dir_;
};

core::PipelineConfig* ServeCampaign::config_ = nullptr;
core::Campaign* ServeCampaign::campaign_ = nullptr;
core::PairDataset* ServeCampaign::pair_ = nullptr;
core::ShardSet* ServeCampaign::shards_ = nullptr;
serve::ShardIndex* ServeCampaign::index_ = nullptr;
resample::FeatureScaler* ServeCampaign::scaler_ = nullptr;
baseline::DecisionTree* ServeCampaign::tree_ = nullptr;
std::string ServeCampaign::dir_;

TEST_F(ServeCampaign, ShardIndexCoversStrongBeams) {
  // 3 strong beams x 2 chunks -> 3 servable (granule, beam) entries.
  EXPECT_EQ(index_->size(), 3u);
  for (const BeamId beam : {BeamId::Gt1r, BeamId::Gt2r, BeamId::Gt3r}) {
    const auto* files = index_->find(pair_->granule.id, beam);
    ASSERT_NE(files, nullptr);
    EXPECT_EQ(files->size(), 2u);
  }
  EXPECT_EQ(index_->find("nope", BeamId::Gt1r), nullptr);

  // Merging the chunks loses no photons vs the original full beam.
  const auto merged =
      serve::ShardIndex::load_merged(*index_->find(pair_->granule.id, BeamId::Gt1r));
  EXPECT_EQ(merged.beams[0].size(), pair_->granule.beam(BeamId::Gt1r).size());
  EXPECT_EQ(merged.id, pair_->granule.id);
}

TEST_F(ServeCampaign, ShardIndexBuildReadsMetadataOnly) {
  // Index construction must stay header-only: no full granule decode per
  // shard (h5::read_granule_meta, not h5::load_granule).
  const auto full_loads_before = h5::load_granule_call_count();
  const serve::ShardIndex rebuilt = serve::ShardIndex::build(shards_->files);
  EXPECT_EQ(h5::load_granule_call_count(), full_loads_before);

  // The metadata-built index matches the one the suite serves from.
  EXPECT_EQ(rebuilt.size(), index_->size());
  for (const auto& [granule, beam] : index_->entries()) {
    const auto* files = rebuilt.find(granule, beam);
    ASSERT_NE(files, nullptr);
    EXPECT_EQ(*files, *index_->find(granule, beam));
  }
}

TEST_F(ServeCampaign, ColdBuildLatencyRepresentableInStageHistograms) {
  // Regression: fixed 0-500 ms bins put every ~790 ms cold build in the edge
  // bin. With log-scale bins the whole build (and every stage) must land
  // strictly inside the histogram range.
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = make_service(cfg);
  ASSERT_NE(service->submit(request(BeamId::Gt1r)).get().product, nullptr);

  const auto m = service->metrics();
  for (const auto* stage :
       {&m.total, &m.load, &m.features, &m.inference, &m.seasurface, &m.freeboard}) {
    if (stage->stats.count() == 0) continue;
    // p99 (here: the max) is representable, and the edge bins did not
    // swallow the distribution.
    EXPECT_LT(stage->stats.max(), serve::StageLatency::kMaxMs);
    EXPECT_EQ(stage->histogram.count(stage->histogram.bins() - 1), 0u);
    EXPECT_EQ(stage->histogram.total(), stage->stats.count());
  }
  EXPECT_EQ(m.total.stats.count(), 1u);
}

TEST_F(ServeCampaign, ServedProductMatchesBatchPipelineBitIdentically) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  auto service = make_service(cfg);

  const auto response =
      service->submit(request(BeamId::Gt1r, seasurface::Method::NasaEquation)).get();
  ASSERT_NE(response.product, nullptr);
  EXPECT_FALSE(response.from_cache);
  EXPECT_GT(response.service_ms, 0.0);

  const GranuleProduct reference =
      batch_reference(BeamId::Gt1r, seasurface::Method::NasaEquation);
  expect_bit_identical(*response.product, reference);

  // Per-stage latency histograms saw exactly one build.
  const auto m = service->metrics();
  EXPECT_EQ(m.total.stats.count(), 1u);
  EXPECT_EQ(m.load.stats.count(), 1u);
  EXPECT_EQ(m.inference.stats.count(), 1u);
  EXPECT_GT(m.inference_windows, 0u);
  EXPECT_GT(m.inference_batches, 1u);  // windows split into multiple batches
  EXPECT_EQ(m.total.histogram.total(), 1u);
}

TEST_F(ServeCampaign, SecondRequestServedFromCacheWithoutDispatch) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  auto service = make_service(cfg);
  const ProductRequest r = request(BeamId::Gt2r);

  const auto first = service->submit(r).get();
  ASSERT_NE(first.product, nullptr);
  const auto m1 = service->metrics();
  EXPECT_EQ(m1.scheduler.dispatched, 1u);
  EXPECT_EQ(m1.fast_hits, 0u);

  const auto second = service->submit(r).get();
  EXPECT_TRUE(second.from_cache);
  // Same resident object: bit-identical by construction, no copy, and the
  // hit/miss counters prove no inference re-ran.
  EXPECT_EQ(second.product.get(), first.product.get());

  const auto m2 = service->metrics();
  EXPECT_EQ(m2.scheduler.dispatched, 1u);  // unchanged: no new job
  EXPECT_EQ(m2.fast_hits, 1u);
  EXPECT_GE(m2.cache.hits, 1u);
  EXPECT_EQ(m2.inference_windows, m1.inference_windows);  // no extra inference
}

TEST_F(ServeCampaign, DifferentMethodIsADifferentCacheEntry) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = make_service(cfg);
  const auto nasa = service->submit(request(BeamId::Gt1r, seasurface::Method::NasaEquation));
  const auto minimum =
      service->submit(request(BeamId::Gt1r, seasurface::Method::MinElevation));
  ASSERT_NE(nasa.get().product, nullptr);
  ASSERT_NE(minimum.get().product, nullptr);
  EXPECT_EQ(service->metrics().scheduler.dispatched, 2u);
  EXPECT_EQ(service->metrics().cache.entries, 2u);
}

TEST_F(ServeCampaign, WarmViaEngineThenEverythingHits) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  auto service = make_service(cfg);

  std::vector<ProductRequest> all;
  for (const auto& [granule, beam] : index_->entries()) {
    ProductRequest r;
    r.granule_id = granule;
    r.beam = beam;
    all.push_back(r);
  }
  mapred::Engine engine({1, 2});
  EXPECT_EQ(service->warm(all, engine), all.size());
  EXPECT_EQ(service->warm(all, engine), 0u);  // idempotent

  for (const auto& r : all) {
    const auto response = service->submit(r).get();
    EXPECT_TRUE(response.from_cache);
    EXPECT_EQ(response.product->granule_id, r.granule_id);
    EXPECT_EQ(response.product->beam, r.beam);
  }
  const auto m = service->metrics();
  EXPECT_EQ(m.scheduler.dispatched, 0u);  // warm bypasses the queue entirely
  EXPECT_EQ(m.fast_hits, all.size());
}

TEST_F(ServeCampaign, ConcurrentMixedTrafficUnderEvictionPressure) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 32;
  cfg.cache_shards = 1;
  // Budget ~one product: repeat traffic keeps missing, so hits, misses and
  // evictions all race against each other.
  {
    auto probe = make_service(cfg);
    const auto r = probe->submit(request(BeamId::Gt1r)).get();
    cfg.cache_bytes = r.product->approx_bytes() + r.product->approx_bytes() / 2;
  }
  auto service = make_service(cfg);

  const BeamId beams[] = {BeamId::Gt1r, BeamId::Gt2r, BeamId::Gt3r};
  const seasurface::Method methods[] = {seasurface::Method::NasaEquation,
                                        seasurface::Method::MinElevation};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(1000 + c);
      for (int i = 0; i < 8; ++i) {
        const auto r = request(beams[rng.next() % 3], methods[rng.next() % 2]);
        const auto response = service->submit(r).get();
        if (!response.product || response.product->beam != r.beam) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  const auto m = service->metrics();
  EXPECT_EQ(m.requests, 32u);
  EXPECT_GT(m.cache.evictions, 0u);  // the pressure was real
  EXPECT_LE(m.cache.bytes, cfg.cache_bytes);
  // Every request was answered by a fast hit, a coalesced attach, or a build.
  EXPECT_GE(m.fast_hits + m.scheduler.coalesced + m.scheduler.dispatched, 32u);
}

TEST_F(ServeCampaign, DiskTierBitIdenticalAcrossRamHitDiskHitAndRebuild) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.disk_cache_dir = dir_ + "/disk_tier";
  ProductRequest r = request(BeamId::Gt1r);
  r.priority = Priority::interactive;

  GranuleProduct rebuilt;
  {
    auto service = make_service(cfg);
    const auto cold = service->submit(r).get();
    ASSERT_NE(cold.product, nullptr);
    EXPECT_EQ(cold.source, ServedFrom::build);
    EXPECT_FALSE(cold.from_cache);
    rebuilt = *cold.product;

    const auto ram = service->submit(r).get();  // RAM tier
    EXPECT_EQ(ram.source, ServedFrom::ram);
    EXPECT_TRUE(ram.from_cache);
    expect_bit_identical(*ram.product, rebuilt);

    service->wait_disk_writebacks();
    const auto m = service->metrics();
    EXPECT_EQ(m.disk.writes, 1u);
    EXPECT_EQ(m.writeback_failures, 0u);
    EXPECT_EQ(m.by_class[static_cast<std::size_t>(Priority::interactive)].requests, 2u);
    EXPECT_EQ(m.by_class[static_cast<std::size_t>(Priority::interactive)].latency.stats.count(),
              2u);
  }

  // "Restart": a fresh service over the same directory, RAM tier cold. The
  // disk hit must not touch the shards (no full granule decode) and must be
  // bit-identical to both the rebuild and the batch pipeline.
  {
    auto service = make_service(cfg);
    const auto full_loads_before = h5::load_granule_call_count();
    const auto disk = service->submit(r).get();
    ASSERT_NE(disk.product, nullptr);
    EXPECT_EQ(disk.source, ServedFrom::disk);
    EXPECT_TRUE(disk.from_cache);
    EXPECT_EQ(h5::load_granule_call_count(), full_loads_before);  // no shard IO
    expect_bit_identical(*disk.product, rebuilt);
    expect_bit_identical(*disk.product,
                         batch_reference(BeamId::Gt1r, seasurface::Method::NasaEquation));

    // The disk hit promoted the product into RAM: the next hit is tier 1.
    const auto ram = service->submit(r).get();
    EXPECT_EQ(ram.source, ServedFrom::ram);
    EXPECT_EQ(ram.product.get(), disk.product.get());

    const auto m = service->metrics();
    EXPECT_EQ(m.disk.hits, 1u);
    EXPECT_EQ(m.disk_load.stats.count(), 1u);
    EXPECT_EQ(m.total.stats.count(), 0u);  // no cold build ever ran here
  }
}

TEST_F(ServeCampaign, DiskTierConfigChangeIsColdNotStale) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.disk_cache_dir = dir_ + "/disk_stale";
  const ProductRequest r = request(BeamId::Gt2r);
  {
    auto service = make_service(cfg);
    ASSERT_NE(service->submit(r).get().product, nullptr);
    service->wait_disk_writebacks();
  }
  // Same directory, bumped model version: the persisted product's key no
  // longer matches, so the service must rebuild rather than serve stale.
  cfg.model_version = 1;
  auto service = make_service(cfg);
  const auto response = service->submit(r).get();
  ASSERT_NE(response.product, nullptr);
  EXPECT_EQ(response.source, ServedFrom::build);
  const auto m = service->metrics();
  EXPECT_EQ(m.disk.hits, 0u);
  EXPECT_GE(m.disk.misses, 1u);
  EXPECT_EQ(m.total.stats.count(), 1u);
}

TEST_F(ServeCampaign, KindAndBackendAreDistinctCacheEntries) {
  // All three ProductKinds and both backends flow through the same submit
  // API; every (kind, backend) combination is its own cache identity.
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  auto service = make_service_with_tree(cfg);

  ProductRequest fb_nn = request(BeamId::Gt1r);
  ProductRequest cls_nn = fb_nn;
  cls_nn.kind = pipeline::ProductKind::classification;
  ProductRequest ss_nn = fb_nn;
  ss_nn.kind = pipeline::ProductKind::seasurface;
  ProductRequest fb_tree = fb_nn;
  fb_tree.backend = pipeline::Backend::decision_tree;

  const auto k_fb = service->key_for(fb_nn);
  const auto k_cls = service->key_for(cls_nn);
  const auto k_tree = service->key_for(fb_tree);
  EXPECT_FALSE(k_fb == k_cls);
  EXPECT_FALSE(k_fb == k_tree);
  EXPECT_EQ(k_fb.kind, pipeline::ProductKind::freeboard);
  EXPECT_EQ(k_cls.kind, pipeline::ProductKind::classification);
  EXPECT_EQ(k_tree.backend, pipeline::Backend::decision_tree);
  EXPECT_NE(k_fb.config_hash, k_tree.config_hash);  // backend identity in the hash
  // Prefix-scoped fingerprints: the classification key ignores the
  // seasurface/freeboard config *and* the method entirely, so one cached
  // classification product serves resume for every method.
  EXPECT_NE(k_fb.config_hash, k_cls.config_hash);
  ProductRequest cls_other_method = cls_nn;
  cls_other_method.method = seasurface::Method::MinElevation;
  EXPECT_TRUE(service->key_for(cls_other_method) == k_cls);

  const auto cls = service->submit(cls_nn).get();
  ASSERT_NE(cls.product, nullptr);
  EXPECT_EQ(cls.product->kind, pipeline::ProductKind::classification);
  EXPECT_GT(cls.product->classes.size(), 0u);
  EXPECT_EQ(cls.product->freeboard.points.size(), 0u);  // shallow kind stops early
  EXPECT_EQ(cls.product->sea_surface.points().size(), 0u);

  const auto ss = service->submit(ss_nn).get();
  ASSERT_NE(ss.product, nullptr);
  EXPECT_EQ(ss.product->kind, pipeline::ProductKind::seasurface);
  EXPECT_GT(ss.product->sea_surface.points().size(), 0u);
  EXPECT_EQ(ss.product->freeboard.points.size(), 0u);

  const auto fb = service->submit(fb_nn).get();
  ASSERT_NE(fb.product, nullptr);
  EXPECT_GT(fb.product->freeboard.points.size(), 0u);

  const auto tree_fb = service->submit(fb_tree).get();
  ASSERT_NE(tree_fb.product, nullptr);
  EXPECT_GT(tree_fb.product->freeboard.points.size(), 0u);
  // Different classifier, different classes on this beam.
  EXPECT_NE(tree_fb.product->classes, fb.product->classes);

  const auto m = service->metrics();
  EXPECT_EQ(m.cache.entries, 4u);  // four distinct products resident
  // The nn classify stage ran for cls (the deeper nn kinds resumed from it);
  // the tree build never touched the nn backend.
  EXPECT_GT(m.inference_windows, 0u);
}

TEST_F(ServeCampaign, TreeBackendWithoutFactoryIsRejected) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = make_service(cfg);  // no TreeFactory
  ProductRequest r = request(BeamId::Gt1r);
  r.backend = pipeline::Backend::decision_tree;
  EXPECT_THROW(service->submit(r), std::invalid_argument);
}

TEST_F(ServeCampaign, DeeperKindResumesFromShallowerRamEntry) {
  // A freeboard request over a cached classification product must not
  // re-run load/features/inference — only seasurface + freeboard.
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = make_service(cfg);

  ProductRequest cls = request(BeamId::Gt1r);
  cls.kind = pipeline::ProductKind::classification;
  ASSERT_NE(service->submit(cls).get().product, nullptr);
  const auto m1 = service->metrics();
  EXPECT_EQ(m1.resumed_builds, 0u);
  const auto windows_after_cls = m1.inference_windows;
  EXPECT_GT(windows_after_cls, 0u);

  const auto full_loads_before = h5::load_granule_call_count();
  const auto fb = service->submit(request(BeamId::Gt1r)).get();
  ASSERT_NE(fb.product, nullptr);
  EXPECT_EQ(fb.source, ServedFrom::build);  // a build, but a resumed one
  EXPECT_EQ(h5::load_granule_call_count(), full_loads_before);  // no shard IO

  const auto m2 = service->metrics();
  EXPECT_EQ(m2.resumed_builds, 1u);
  EXPECT_EQ(m2.inference_windows, windows_after_cls);  // no inference re-ran
  EXPECT_EQ(m2.load.stats.count(), 1u);                // only the cls build loaded

  // Bit-identical to the batch pipeline's full freeboard product.
  expect_bit_identical(*fb.product,
                       batch_reference(BeamId::Gt1r, seasurface::Method::NasaEquation));
}

TEST_F(ServeCampaign, ResumeFiresAcrossSeaSurfaceMethods) {
  // The classification prefix consumes no sea-surface input, so a freeboard
  // request with a *different* method must still resume from the cached
  // classification product instead of re-running shard IO + inference.
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = make_service(cfg);

  ProductRequest cls = request(BeamId::Gt1r, seasurface::Method::NasaEquation);
  cls.kind = pipeline::ProductKind::classification;
  ASSERT_NE(service->submit(cls).get().product, nullptr);
  const auto windows_after_cls = service->metrics().inference_windows;

  const auto full_loads_before = h5::load_granule_call_count();
  const auto fb =
      service->submit(request(BeamId::Gt1r, seasurface::Method::MinElevation)).get();
  ASSERT_NE(fb.product, nullptr);
  EXPECT_EQ(h5::load_granule_call_count(), full_loads_before);  // no shard IO

  const auto m = service->metrics();
  EXPECT_EQ(m.resumed_builds, 1u);
  EXPECT_EQ(m.inference_windows, windows_after_cls);  // no inference re-ran
  expect_bit_identical(*fb.product,
                       batch_reference(BeamId::Gt1r, seasurface::Method::MinElevation));
}

TEST_F(ServeCampaign, ClassificationDiskHitSeedsFreeboardBuildAcrossRestart) {
  // The acceptance path: a classification-kind disk hit without shard IO,
  // and a freeboard-kind build that resumes from it.
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.disk_cache_dir = dir_ + "/disk_kinds";
  ProductRequest cls = request(BeamId::Gt2r);
  cls.kind = pipeline::ProductKind::classification;
  {
    auto service = make_service(cfg);
    ASSERT_NE(service->submit(cls).get().product, nullptr);
    service->wait_disk_writebacks();
    EXPECT_EQ(service->metrics().disk.writes, 1u);
  }

  // Fresh service over the same directory: RAM empty, disk warm with the
  // classification product only.
  auto service = make_service(cfg);
  const auto full_loads_before = h5::load_granule_call_count();

  const auto disk_hit = service->submit(cls).get();
  ASSERT_NE(disk_hit.product, nullptr);
  EXPECT_EQ(disk_hit.source, ServedFrom::disk);
  EXPECT_EQ(disk_hit.product->kind, pipeline::ProductKind::classification);
  EXPECT_EQ(h5::load_granule_call_count(), full_loads_before);  // no shard IO

  const auto fb = service->submit(request(BeamId::Gt2r)).get();
  ASSERT_NE(fb.product, nullptr);
  EXPECT_EQ(fb.source, ServedFrom::build);
  EXPECT_EQ(h5::load_granule_call_count(), full_loads_before);  // resumed: still none

  const auto m = service->metrics();
  EXPECT_EQ(m.resumed_builds, 1u);
  EXPECT_EQ(m.inference_windows, 0u);  // this service never ran the classifier
  expect_bit_identical(*fb.product,
                       batch_reference(BeamId::Gt2r, seasurface::Method::NasaEquation));
}

TEST_F(ServeCampaign, OldKeyLayoutDiskFileIsRejectedAfterFormatBump) {
  // A v1-era cache file (key block without kind/backend) must never be
  // served: the startup scan deletes it as stale and the first request
  // rebuilds from shards.
  const std::string disk_dir = dir_ + "/disk_v1";
  std::filesystem::create_directories(disk_dir);

  serve::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.disk_cache_dir = disk_dir;
  ProductRequest r = request(BeamId::Gt3r);
  const ProductKey key = [&] {
    auto probe = make_service(cfg);
    return probe->key_for(r);
  }();
  std::filesystem::remove_all(disk_dir);  // drop anything the probe wrote
  std::filesystem::create_directories(disk_dir);

  // Hand-craft the old (v1) layout at the key's deterministic path:
  //   magic | u32 version=1 | u64 config_hash | u8 beam | str granule_id
  //   | u64 payload_bytes | payload | u32 crc32(payload)
  h5::ByteWriter payload;
  payload.raw(std::uint64_t{0});  // 0 segments
  payload.raw(std::uint64_t{0});  // 0 classes
  payload.raw(std::uint64_t{0});  // 0 surface points
  payload.raw(std::uint64_t{0});  // 0 freeboard points
  h5::ByteWriter v1;
  const char magic[4] = {'I', 'S', '2', 'P'};
  v1.bytes(reinterpret_cast<const std::uint8_t*>(magic), 4);
  v1.raw(std::uint32_t{1});  // the pre-stage-graph format version
  v1.raw(key.config_hash);
  v1.raw(static_cast<std::uint8_t>(key.beam));
  v1.str(key.granule_id);
  v1.raw(static_cast<std::uint64_t>(payload.buf.size()));
  v1.bytes(payload.buf.data(), payload.buf.size());
  v1.raw(h5::crc32(payload.buf));
  const std::string path =
      (std::filesystem::path(disk_dir) / DiskCache::filename_for(key)).string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(v1.buf.data()),
              static_cast<std::streamsize>(v1.buf.size()));
  }
  ASSERT_TRUE(std::filesystem::exists(path));

  auto service = make_service(cfg);
  EXPECT_FALSE(std::filesystem::exists(path));  // dropped at startup scan
  EXPECT_GE(service->metrics().disk.corrupt_dropped, 1u);

  const auto response = service->submit(r).get();
  ASSERT_NE(response.product, nullptr);
  EXPECT_EQ(response.source, ServedFrom::build);  // rebuilt, never served stale
  expect_bit_identical(*response.product,
                       batch_reference(BeamId::Gt3r, seasurface::Method::NasaEquation));
}

TEST_F(ServeCampaign, UnknownGranuleYieldsBrokenFuture) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = make_service(cfg);
  ProductRequest r;
  r.granule_id = "ATL03_does_not_exist";
  auto f = service->submit(r);
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(ServeCampaign, ParallelInferenceIsBitIdenticalToSerial) {
  // Batch-level inference parallelism (inference_threads > 0) fans one
  // granule's windows over a ThreadPool in batch-aligned spans; windows are
  // row-independent, so the partition must not change a single prediction.
  serve::ServiceConfig serial_cfg;
  serial_cfg.workers = 1;
  serve::ServiceConfig par_cfg;
  par_cfg.workers = 1;
  par_cfg.inference_threads = 3;
  par_cfg.inference_batch_windows = 64;  // several spans even on tiny beams
  auto serial_svc = make_service(serial_cfg);
  auto par_svc = make_service(par_cfg);
  for (const BeamId beam : {BeamId::Gt1r, BeamId::Gt2r}) {
    const auto a = serial_svc->submit(request(beam)).get();
    const auto b = par_svc->submit(request(beam)).get();
    ASSERT_NE(a.product, nullptr);
    ASSERT_NE(b.product, nullptr);
    expect_bit_identical(*a.product, *b.product);
  }
  const auto m = par_svc->metrics();
  EXPECT_GT(m.inference_batches, 2u);  // really did run multiple spans' batches
}

// ---------------------------------------------------------------------------
// DiskCache concurrency (the mutex-held-across-file-IO fix)
// ---------------------------------------------------------------------------

TEST_F(DiskCacheTest, SlowReadDoesNotSerializeOtherKeys) {
  DiskCache cache({dir_, 64u << 20});
  const GranuleProduct p1 = rich_product(1), p2 = rich_product(2);
  const ProductKey k1 = rich_key(1), k2 = rich_key(2);
  cache.put(k1, p1);
  cache.put(k2, p2);

  // Reader A parks inside get(k1) between the unlocked file read and the
  // manifest re-lock; reader B's get(k2) must complete while A is parked —
  // impossible before the snapshot-then-read fix, which held the manifest
  // mutex across the whole read.
  std::promise<void> entered;
  auto entered_f = entered.get_future();
  std::promise<void> release;
  auto release_f = release.get_future().share();
  std::atomic<bool> k1_seen{false};
  cache.set_read_hook_for_tests([&](const ProductKey& key) {
    if (key == k1 && !k1_seen.exchange(true)) {
      entered.set_value();
      release_f.wait();
    }
  });

  std::thread reader_a([&] {
    const auto got = cache.get(k1);
    ASSERT_NE(got, nullptr);
    expect_product_equal(*got, p1);
  });
  ASSERT_EQ(entered_f.wait_for(std::chrono::seconds(10)), std::future_status::ready);

  // A is parked mid-get(k1). This get(k2) must finish on its own.
  const auto got2 = cache.get(k2);
  ASSERT_NE(got2, nullptr);
  expect_product_equal(*got2, p2);

  release.set_value();
  reader_a.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST_F(DiskCacheTest, ConcurrentGetPutStressServesOnlyValidProducts) {
  DiskCache cache({dir_, 64u << 20});
  constexpr int kKeys = 6;
  std::vector<GranuleProduct> products;
  std::vector<ProductKey> keys;
  for (int k = 0; k < kKeys; ++k) {
    products.push_back(rich_product(static_cast<std::uint64_t>(k)));
    keys.push_back(rich_key(static_cast<std::uint64_t>(k)));
  }
  // Seed half the keys so early gets see a mix of hits and misses.
  for (int k = 0; k < kKeys; k += 2) cache.put(keys[static_cast<std::size_t>(k)],
                                               products[static_cast<std::size_t>(k)]);

  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(100 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 60; ++i) {
        const auto k = static_cast<std::size_t>(rng.next() % kKeys);
        if (rng.uniform() < 0.3) {
          cache.put(keys[k], products[k]);
        } else if (auto got = cache.get(keys[k])) {
          // Whatever was served must be the product for that key, intact.
          EXPECT_EQ(got->segments.size(), products[k].segments.size());
          EXPECT_EQ(got->classes, products[k].classes);
          served.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(served.load(), 0u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.corrupt_dropped, 0u);
  EXPECT_EQ(stats.entries, static_cast<std::size_t>(kKeys));
}

}  // namespace
