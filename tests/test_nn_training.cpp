// Training-loop tests: both paper architectures learn synthetic sequence
// tasks; window assembly; dataset plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/model.hpp"

namespace {

using namespace is2::nn;
using is2::util::Rng;

/// Three-class sequence task with temporal structure: class depends on the
/// trend of feature 0 across the window (rising / flat / falling), which a
/// recurrent model can read off cleanly.
Dataset make_sequence_task(std::size_t n, std::uint64_t seed, double noise = 0.25) {
  Rng rng(seed);
  Dataset d;
  d.x = Tensor3(n, 5, 6);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
    const double slope = cls == 0 ? 0.5 : cls == 1 ? 0.0 : -0.5;
    const double base = rng.normal(0.0, 0.4);
    for (std::size_t t = 0; t < 5; ++t) {
      float* row = d.x.at(i, t);
      row[0] = static_cast<float>(base + slope * static_cast<double>(t) + rng.normal(0.0, noise));
      for (int f = 1; f < 6; ++f) row[f] = static_cast<float>(rng.normal(0.0, 1.0));
    }
    d.y[i] = cls;
  }
  return d;
}

TEST(Training, LstmLearnsTemporalTask) {
  const Dataset train = make_sequence_task(3'000, 1);
  const Dataset test = make_sequence_task(600, 2);
  Rng rng(3);
  Sequential model = make_lstm_model(5, 6, rng);
  Adam adam(0.003);
  FocalLoss loss(2.0);
  FitConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  const auto history = model.fit(train, loss, adam, cfg);
  ASSERT_EQ(history.size(), 8u);
  EXPECT_LT(history.back().loss, history.front().loss);
  const Metrics m = model.evaluate(test);
  EXPECT_GT(m.accuracy, 0.9);
}

TEST(Training, MlpLearnsSameTask) {
  const Dataset train = make_sequence_task(3'000, 4);
  const Dataset test = make_sequence_task(600, 5);
  Rng rng(6);
  Sequential model = make_mlp_model(5, 6, rng);
  Adam adam(0.003);
  CrossEntropyLoss loss;
  FitConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = 32;
  model.fit(train, loss, adam, cfg);
  EXPECT_GT(model.evaluate(test).accuracy, 0.85);
}

TEST(Training, LossDecreasesMonotonicallyOnAverage) {
  const Dataset train = make_sequence_task(1'500, 7);
  Rng rng(8);
  Sequential model = make_mlp_model(5, 6, rng);
  Adam adam(0.003);
  CrossEntropyLoss loss;
  FitConfig cfg;
  cfg.epochs = 6;
  const auto history = model.fit(train, loss, adam, cfg);
  double first_half = 0.0, second_half = 0.0;
  for (std::size_t i = 0; i < 3; ++i) first_half += history[i].loss;
  for (std::size_t i = 3; i < 6; ++i) second_half += history[i].loss;
  EXPECT_LT(second_half, first_half);
}

TEST(Training, GradHookCalledPerBatch) {
  const Dataset train = make_sequence_task(320, 9);
  Rng rng(10);
  Sequential model = make_mlp_model(5, 6, rng);
  Adam adam(0.003);
  CrossEntropyLoss loss;
  FitConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 32;
  std::size_t calls = 0;
  cfg.grad_hook = [&](const std::vector<Param>&) { ++calls; };
  model.fit(train, loss, adam, cfg);
  EXPECT_EQ(calls, 2u * (320 / 32));
}

TEST(Training, DeterministicWithSameSeeds) {
  const Dataset train = make_sequence_task(800, 11);
  const Dataset test = make_sequence_task(200, 12);
  auto run = [&] {
    Rng rng(13);
    Sequential model = make_lstm_model(5, 6, rng);
    Adam adam(0.003);
    FocalLoss loss(2.0);
    FitConfig cfg;
    cfg.epochs = 2;
    cfg.shuffle_seed = 5;
    model.fit(train, loss, adam, cfg);
    return model.predict(test.x);
  };
  EXPECT_EQ(run(), run());
}

TEST(Dataset, SplitAndSubset) {
  Dataset d = make_sequence_task(100, 14);
  const auto [a, b] = d.split(0.8);
  EXPECT_EQ(a.size(), 80u);
  EXPECT_EQ(b.size(), 20u);
  EXPECT_EQ(a.x.v[0], d.x.v[0]);
  EXPECT_EQ(b.y[0], d.y[80]);

  const Dataset sub = d.subset({5, 7});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.y[0], d.y[5]);
  EXPECT_EQ(sub.y[1], d.y[7]);
  for (std::size_t j = 0; j < d.x.sample_size(); ++j)
    EXPECT_EQ(sub.x.v[j], d.x.v[5 * d.x.sample_size() + j]);
}

TEST(Windows, CenterLabelAndSkipUnknown) {
  // One beam, 7 segments, feature = index; window 3.
  std::vector<std::vector<float>> feats(1);
  std::vector<std::vector<std::uint8_t>> labels(1);
  for (int i = 0; i < 7; ++i) {
    feats[0].push_back(static_cast<float>(i));
    labels[0].push_back(i == 3 ? 255 : static_cast<std::uint8_t>(i % 3));
  }
  const auto w = make_windows(feats, labels, 1, 3, /*keep_unknown=*/false);
  // Centers 1,2,4,5 are usable (0 and 6 are edges, 3 is Unknown).
  ASSERT_EQ(w.data.size(), 4u);
  EXPECT_EQ(w.source_index[0], 1u);
  EXPECT_EQ(w.data.y[0], 1);
  // Window content around center 1 is [0,1,2].
  EXPECT_FLOAT_EQ(w.data.x.at(0, 0)[0], 0.0f);
  EXPECT_FLOAT_EQ(w.data.x.at(0, 2)[0], 2.0f);

  const auto all = make_windows(feats, labels, 1, 3, /*keep_unknown=*/true);
  EXPECT_EQ(all.data.size(), 5u);
}

TEST(Windows, NeverStraddleBeams) {
  std::vector<std::vector<float>> feats{{0, 1, 2}, {10, 11, 12}};
  std::vector<std::vector<std::uint8_t>> labels{{0, 0, 0}, {1, 1, 1}};
  const auto w = make_windows(feats, labels, 1, 3, false);
  ASSERT_EQ(w.data.size(), 2u);  // one center per beam
  EXPECT_FLOAT_EQ(w.data.x.at(0, 0)[0], 0.0f);
  EXPECT_FLOAT_EQ(w.data.x.at(1, 0)[0], 10.0f);
  EXPECT_EQ(w.data.y[0], 0);
  EXPECT_EQ(w.data.y[1], 1);
}

TEST(Windows, RejectsEvenWindow) {
  std::vector<std::vector<float>> feats{{0, 1}};
  std::vector<std::vector<std::uint8_t>> labels{{0, 0}};
  EXPECT_THROW(make_windows(feats, labels, 1, 4, false), std::invalid_argument);
}

}  // namespace
