// Sentinel-2 substrate tests: raster georeferencing, scene rendering
// physics, k-means behavior and segmentation quality incl. cloud handling.
#include <gtest/gtest.h>

#include <cmath>

#include "atl03/surface_model.hpp"
#include "geo/polar_stereo.hpp"
#include "sentinel2/image.hpp"
#include "sentinel2/kmeans.hpp"
#include "sentinel2/scene_sim.hpp"
#include "sentinel2/segmentation.hpp"

namespace {

using namespace is2;
using atl03::SurfaceClass;

TEST(GeoTransform, PixelWorldRoundTrip) {
  s2::GeoTransform gt{1000.0, 2000.0, 10.0};
  const geo::Xy c = gt.pixel_center(3, 7);
  EXPECT_DOUBLE_EQ(c.x, 1075.0);
  EXPECT_DOUBLE_EQ(c.y, 1965.0);
  std::size_t row, col;
  ASSERT_TRUE(gt.world_to_pixel(c, 10, 10, row, col));
  EXPECT_EQ(row, 3u);
  EXPECT_EQ(col, 7u);
  EXPECT_FALSE(gt.world_to_pixel({0.0, 0.0}, 10, 10, row, col));
  EXPECT_FALSE(gt.world_to_pixel({1075.0, 5000.0}, 10, 10, row, col));
}

TEST(ClassRaster, WorldLookupAndFractions) {
  s2::GeoTransform gt{0.0, 100.0, 10.0};
  s2::ClassRaster r(10, 10, gt);
  r.set(0, 0, SurfaceClass::ThickIce);
  r.set(9, 9, SurfaceClass::OpenWater);
  EXPECT_EQ(r.at_world(gt.pixel_center(0, 0)), SurfaceClass::ThickIce);
  EXPECT_EQ(r.at_world({-50.0, 0.0}), SurfaceClass::Unknown);
  const auto frac = r.class_fractions();
  EXPECT_NEAR(frac[0], 0.01, 1e-12);
  EXPECT_NEAR(frac[2], 0.01, 1e-12);
  EXPECT_NEAR(frac[3], 0.98, 1e-12);
}

struct SceneFixture {
  geo::GeoCorrections corrections{7};
  atl03::SurfaceConfig scfg;
  geo::GroundTrack track;
  atl03::SurfaceModel surface;

  explicit SceneFixture(double length = 5'000.0)
      : track(geo::PolarStereo::epsg3976().forward({-160.0, -76.0}), 0.9),
        surface((scfg.length_m = length, scfg), track, corrections, 77) {}
};

s2::SceneConfig small_scene_config(double cloud_cover = 0.0) {
  s2::SceneConfig cfg;
  cfg.cross_track_halfwidth_m = 600.0;
  cfg.margin_m = 200.0;
  cfg.cloud_cover = cloud_cover;
  return cfg;
}

TEST(SceneSim, TruthMatchesSurfaceModelWithoutDrift) {
  SceneFixture fx;
  s2::SceneSimulator sim(small_scene_config(), 31);
  const auto scene = sim.render(fx.surface, {0.0, 0.0}, 500.0);
  // Sample truth raster against the surface model directly.
  std::size_t checked = 0, agree = 0;
  for (std::size_t r = 0; r < scene.truth_class.rows(); r += 13) {
    for (std::size_t c = 0; c < scene.truth_class.cols(); c += 11) {
      const geo::Xy p = scene.truth_class.transform().pixel_center(r, c);
      const SurfaceClass want = fx.surface.class_at_xy(p);
      if (want == SurfaceClass::Unknown) continue;
      ++checked;
      if (scene.truth_class.at(r, c) == want) ++agree;
    }
  }
  ASSERT_GT(checked, 200u);
  EXPECT_EQ(agree, checked);
}

TEST(SceneSim, DriftDisplacesFeatures) {
  SceneFixture fx;
  s2::SceneSimulator sim(small_scene_config(), 31);
  const geo::Xy drift{400.0, 0.0};
  const auto moved = sim.render(fx.surface, drift, 500.0);
  // truth at pixel p must equal the surface class at p - drift.
  std::size_t checked = 0, agree = 0;
  for (std::size_t r = 0; r < moved.truth_class.rows(); r += 17) {
    for (std::size_t c = 0; c < moved.truth_class.cols(); c += 13) {
      const geo::Xy p = moved.truth_class.transform().pixel_center(r, c);
      const SurfaceClass want = fx.surface.class_at_xy({p.x - drift.x, p.y - drift.y});
      if (want == SurfaceClass::Unknown) continue;
      ++checked;
      if (moved.truth_class.at(r, c) == want) ++agree;
    }
  }
  ASSERT_GT(checked, 100u);
  EXPECT_EQ(agree, checked);
}

TEST(SceneSim, CloudCoverApproximatesTarget) {
  SceneFixture fx(8'000.0);
  s2::SceneSimulator sim(small_scene_config(0.3), 37);
  const auto scene = sim.render(fx.surface, {0.0, 0.0}, 100.0);
  std::size_t cloudy = 0;
  for (float tau : scene.cloud_tau)
    if (tau > 0.0f) ++cloudy;
  const double frac = static_cast<double>(cloudy) / static_cast<double>(scene.cloud_tau.size());
  EXPECT_GT(frac, 0.08);
  EXPECT_LT(frac, 0.6);
}

TEST(SceneSim, BandsOrderedByClassBrightness) {
  SceneFixture fx(15'000.0);
  s2::SceneSimulator sim(small_scene_config(), 41);
  const auto scene = sim.render(fx.surface, {0.0, 0.0}, 100.0);
  double vis_sum[3] = {0, 0, 0};
  std::size_t n[3] = {0, 0, 0};
  for (std::size_t r = 0; r < scene.image.rows(); r += 3) {
    for (std::size_t c = 0; c < scene.image.cols(); c += 3) {
      const SurfaceClass cls = scene.truth_class.at(r, c);
      if (cls == SurfaceClass::Unknown) continue;
      vis_sum[static_cast<int>(cls)] +=
          scene.image.at(s2::Band::B04, r, c) + scene.image.at(s2::Band::B03, r, c);
      ++n[static_cast<int>(cls)];
    }
  }
  ASSERT_GT(n[0], 0u);
  ASSERT_GT(n[1], 0u);
  ASSERT_GT(n[2], 0u);
  EXPECT_GT(vis_sum[0] / n[0], vis_sum[1] / n[1]);
  EXPECT_GT(vis_sum[1] / n[1], vis_sum[2] / n[2]);
}

TEST(KMeans, SeparatesObviousClusters) {
  util::Rng rng(5);
  std::vector<float> pts;
  for (int i = 0; i < 300; ++i) {
    const int c = i % 3;
    pts.push_back(static_cast<float>(c * 10.0 + rng.normal(0.0, 0.3)));
    pts.push_back(static_cast<float>(c * -5.0 + rng.normal(0.0, 0.3)));
  }
  const auto result = s2::kmeans(pts, 2, 3, util::Rng(9));
  // All points of the same generating cluster share a k-means label.
  for (int c = 0; c < 3; ++c) {
    const auto want = result.labels[static_cast<std::size_t>(c)];
    for (std::size_t i = static_cast<std::size_t>(c); i < 300; i += 3)
      EXPECT_EQ(result.labels[i], want);
  }
  EXPECT_GT(result.iterations, 0);
}

TEST(KMeans, AssignMatchesTraining) {
  util::Rng rng(6);
  std::vector<float> pts;
  for (int i = 0; i < 200; ++i) pts.push_back(static_cast<float>(rng.uniform(0, 1)));
  const auto result = s2::kmeans(pts, 1, 4, util::Rng(10));
  const auto labels = s2::kmeans_assign(pts, 1, result.centroids);
  EXPECT_EQ(labels, result.labels);
}

TEST(KMeans, RejectsBadInput) {
  EXPECT_THROW(s2::kmeans({1.0f, 2.0f, 3.0f}, 2, 1, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(s2::kmeans({1.0f, 2.0f}, 1, 5, util::Rng(1)), std::invalid_argument);
}

TEST(Segmentation, HighAccuracyOnClearScene) {
  SceneFixture fx(10'000.0);
  s2::SceneSimulator sim(small_scene_config(0.0), 51);
  const auto scene = sim.render(fx.surface, {0.0, 0.0}, 100.0);
  const auto result = s2::segment(scene.image);
  const auto score = s2::score_segmentation(result.labels, scene.truth_class);
  EXPECT_GT(score.accuracy, 0.85);
  EXPECT_GT(score.evaluated, 10'000u);
}

TEST(Segmentation, CloudyScene_MasksAndStaysUsable) {
  SceneFixture fx(10'000.0);
  s2::SceneSimulator sim(small_scene_config(0.25), 52);
  const auto scene = sim.render(fx.surface, {0.0, 0.0}, 100.0);
  const auto result = s2::segment(scene.image);
  EXPECT_GT(result.thick_cloud_pixels, 0u);
  EXPECT_GT(result.thin_cloud_corrected, 0u);
  const auto score = s2::score_segmentation(result.labels, scene.truth_class);
  EXPECT_GT(score.accuracy, 0.75);  // degraded but usable (paper: mislabeling happens)
}

TEST(Segmentation, AllCloudSceneDegradesGracefully) {
  SceneFixture fx(3'000.0);
  s2::SceneConfig cfg = small_scene_config(1.0);
  cfg.thin_cloud_fraction = 0.0;  // everything is opaque cloud
  s2::SceneSimulator sim(cfg, 53);
  const auto scene = sim.render(fx.surface, {0.0, 0.0}, 100.0);
  const auto result = s2::segment(scene.image);
  const auto frac = result.labels.class_fractions();
  EXPECT_GT(frac[3], 0.5);  // mostly Unknown
}

}  // namespace
