// h5lite container tests: typed round-trips, attributes, error paths and
// corruption detection (checksum / truncation / bad magic).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "h5lite/h5file.hpp"

namespace {

using namespace is2::h5;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(H5Lite, RoundTripAllDtypes) {
  File f;
  f.put<double>("/g/d_f64", std::vector<double>{1.5, -2.5, 3.25});
  f.put<float>("/g/d_f32", std::vector<float>{0.5f, 1.5f});
  f.put<std::int64_t>("/g/d_i64", std::vector<std::int64_t>{-7, 9});
  f.put<std::int32_t>("/g/d_i32", std::vector<std::int32_t>{1, 2, 3, 4});
  f.put<std::uint8_t>("/g/d_u8", std::vector<std::uint8_t>{0, 255});
  f.put<std::int8_t>("/g/d_i8", std::vector<std::int8_t>{-4, 4});

  const auto buf = f.serialize();
  const File g = File::deserialize(buf);
  EXPECT_EQ(g.get<double>("/g/d_f64"), (std::vector<double>{1.5, -2.5, 3.25}));
  EXPECT_EQ(g.get<float>("/g/d_f32"), (std::vector<float>{0.5f, 1.5f}));
  EXPECT_EQ(g.get<std::int64_t>("/g/d_i64"), (std::vector<std::int64_t>{-7, 9}));
  EXPECT_EQ(g.get<std::int32_t>("/g/d_i32"), (std::vector<std::int32_t>{1, 2, 3, 4}));
  EXPECT_EQ(g.get<std::uint8_t>("/g/d_u8"), (std::vector<std::uint8_t>{0, 255}));
  EXPECT_EQ(g.get<std::int8_t>("/g/d_i8"), (std::vector<std::int8_t>{-4, 4}));
}

TEST(H5Lite, ShapeRoundTrip) {
  File f;
  std::vector<double> data(12);
  f.put<double>("/m", data, {3, 4});
  const auto buf = f.serialize();
  const File g = File::deserialize(buf);
  EXPECT_EQ(g.shape("/m"), (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(g.dtype("/m"), DType::F64);
}

TEST(H5Lite, ShapeMismatchThrows) {
  File f;
  std::vector<double> data(5);
  EXPECT_THROW(f.put<double>("/m", data, {3, 4}), H5Error);
}

TEST(H5Lite, PathMustBeAbsolute) {
  File f;
  EXPECT_THROW(f.put<double>("relative/path", std::vector<double>{1.0}), H5Error);
}

TEST(H5Lite, AttributesRoundTrip) {
  File f;
  f.set_attr("/a/pi", 3.14);
  f.set_attr("/a/n", std::int64_t{42});
  f.set_attr("/a/name", std::string("granule-x"));
  const File g = File::deserialize(f.serialize());
  EXPECT_DOUBLE_EQ(g.attr_double("/a/pi"), 3.14);
  EXPECT_EQ(g.attr_int("/a/n"), 42);
  EXPECT_EQ(g.attr_string("/a/name"), "granule-x");
  EXPECT_DOUBLE_EQ(g.attr_double("/a/n"), 42.0);  // int readable as double
  EXPECT_THROW(g.attr_int("/a/pi"), H5Error);
  EXPECT_THROW(g.attr("/missing"), H5Error);
}

TEST(H5Lite, MissingDatasetAndDtypeMismatch) {
  File f;
  f.put<double>("/x", std::vector<double>{1.0});
  EXPECT_THROW(f.get<double>("/y"), H5Error);
  EXPECT_THROW(f.get<float>("/x"), H5Error);
}

TEST(H5Lite, ListWithPrefix) {
  File f;
  f.put<double>("/gt1r/heights/h_ph", std::vector<double>{1.0});
  f.put<double>("/gt1r/heights/lat_ph", std::vector<double>{1.0});
  f.put<double>("/gt2r/heights/h_ph", std::vector<double>{1.0});
  EXPECT_EQ(f.list("/gt1r").size(), 2u);
  EXPECT_EQ(f.list().size(), 3u);
}

TEST(H5Lite, CorruptionDetectedByChecksum) {
  File f;
  f.put<double>("/data", std::vector<double>(64, 1.0));
  auto buf = f.serialize();
  buf[buf.size() / 2] ^= 0xFF;  // flip a payload byte
  EXPECT_THROW(File::deserialize(buf), H5Error);
}

TEST(H5Lite, TruncationDetected) {
  File f;
  f.put<double>("/data", std::vector<double>(64, 1.0));
  auto buf = f.serialize();
  buf.resize(buf.size() / 2);
  EXPECT_THROW(File::deserialize(buf), H5Error);
}

TEST(H5Lite, BadMagicRejected) {
  File f;
  f.put<double>("/data", std::vector<double>{1.0});
  auto buf = f.serialize();
  buf[0] = 'X';
  EXPECT_THROW(File::deserialize(buf), H5Error);
}

TEST(H5Lite, DiskRoundTrip) {
  const std::string path = temp_path("is2_h5lite_test.h5l");
  File f;
  f.put<double>("/d", std::vector<double>{9.0, 8.0});
  f.set_attr("/id", std::string("t"));
  f.save(path);
  const File g = File::load(path);
  EXPECT_EQ(g.get<double>("/d"), (std::vector<double>{9.0, 8.0}));
  std::remove(path.c_str());
  EXPECT_THROW(File::load(path), H5Error);  // gone now
}

TEST(H5Lite, PayloadBytesCounts) {
  File f;
  f.put<double>("/a", std::vector<double>(10));
  f.put<std::uint8_t>("/b", std::vector<std::uint8_t>(3));
  EXPECT_EQ(f.payload_bytes(), 83u);
  EXPECT_EQ(f.dataset_count(), 2u);
}

TEST(H5Lite, ScanReadsMetadataWithoutPayload) {
  const std::string path = temp_path("is2_h5lite_scan.h5l");
  File f;
  std::vector<double> m(12);
  f.put<double>("/g/matrix", m, {3, 4});
  f.put<std::int8_t>("/g/conf", std::vector<std::int8_t>(7));
  f.set_attr("/id", std::string("scan-me"));
  f.set_attr("/pi", 3.25);
  f.set_attr("/n", std::int64_t{42});
  f.save(path);

  const FileMeta meta = File::scan(path);
  EXPECT_EQ(meta.datasets.size(), 2u);
  ASSERT_TRUE(meta.contains("/g/matrix"));
  EXPECT_EQ(meta.datasets.at("/g/matrix").dtype, DType::F64);
  EXPECT_EQ(meta.datasets.at("/g/matrix").shape, (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(meta.datasets.at("/g/matrix").count(), 12u);
  EXPECT_EQ(meta.datasets.at("/g/matrix").nbytes, 96u);
  EXPECT_EQ(meta.datasets.at("/g/conf").dtype, DType::I8);
  EXPECT_EQ(std::get<std::string>(meta.attrs.at("/id")), "scan-me");
  EXPECT_EQ(std::get<double>(meta.attrs.at("/pi")), 3.25);
  EXPECT_EQ(std::get<std::int64_t>(meta.attrs.at("/n")), 42);
  EXPECT_EQ(meta.payload_bytes, f.serialize().size() - 16 - 4);  // body bytes

  std::remove(path.c_str());
  EXPECT_THROW(File::scan(path), H5Error);
}

TEST(H5Lite, ScanRejectsTruncationAndBadMagic) {
  const std::string path = temp_path("is2_h5lite_scan_bad.h5l");
  File f;
  f.put<double>("/data", std::vector<double>(64, 1.0));
  {
    auto buf = f.serialize();
    buf.resize(buf.size() / 2);  // cut inside the dataset payload
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
  }
  EXPECT_THROW(File::scan(path), H5Error);
  {
    auto buf = f.serialize();
    buf[0] = 'X';
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
  }
  EXPECT_THROW(File::scan(path), H5Error);
  {
    // Corrupt the first dataset's path-length field to ~4 GiB: scan must
    // raise H5Error without attempting the allocation.
    auto buf = f.serialize();
    buf[20] = buf[21] = buf[22] = buf[23] = 0xFF;  // header(16) + n_datasets(4)
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
  }
  EXPECT_THROW(File::scan(path), H5Error);
  std::remove(path.c_str());
}

}  // namespace
