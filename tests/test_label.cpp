// Overlay sampling, drift estimation and auto-labeling tests.
#include <gtest/gtest.h>

#include <cmath>

#include "label/autolabel.hpp"
#include "label/drift.hpp"
#include "label/overlay.hpp"

namespace {

using namespace is2;
using atl03::SurfaceClass;
using resample::Segment;

/// Raster with three vertical stripes: water | thin | thick (x in meters).
s2::ClassRaster striped_raster(double stripe_m = 400.0, double pixel = 10.0) {
  s2::GeoTransform gt{0.0, 1'000.0, pixel};
  const std::size_t cols = static_cast<std::size_t>(3.0 * stripe_m / pixel);
  const std::size_t rows = 100;
  s2::ClassRaster r(rows, cols, gt);
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t col = 0; col < cols; ++col) {
      const double x = gt.pixel_center(row, col).x;
      SurfaceClass c = x < stripe_m              ? SurfaceClass::OpenWater
                       : x < 2.0 * stripe_m      ? SurfaceClass::ThinIce
                                                 : SurfaceClass::ThickIce;
      r.set(row, col, c);
    }
  }
  return r;
}

/// Segments along y=500 with elevations consistent with the stripes.
std::vector<Segment> striped_segments(double stripe_m = 400.0, double shift_x = 0.0) {
  std::vector<Segment> segs;
  for (double x = 1.0; x < 3.0 * stripe_m; x += 2.0) {
    Segment s;
    s.s = x;
    s.x = x + shift_x;  // IS2 positions offset from the raster by -shift
    s.y = 500.0;
    const double true_x = x;
    s.h_mean = true_x < stripe_m ? 0.0 : true_x < 2 * stripe_m ? 0.06 : 0.45;
    s.h_std = 0.02;
    s.n_photons = 10;
    s.photon_rate = true_x < stripe_m ? 1.0 : 4.0;
    s.truth = true_x < stripe_m              ? SurfaceClass::OpenWater
              : true_x < 2 * stripe_m        ? SurfaceClass::ThinIce
                                             : SurfaceClass::ThickIce;
    segs.push_back(s);
  }
  return segs;
}

TEST(Overlay, ExactSamplingWithoutShift) {
  const auto raster = striped_raster();
  label::OverlayConfig cfg;
  cfg.vote_radius_px = 0;
  EXPECT_EQ(label::sample_label(raster, {200.0, 500.0}, cfg), SurfaceClass::OpenWater);
  EXPECT_EQ(label::sample_label(raster, {600.0, 500.0}, cfg), SurfaceClass::ThinIce);
  EXPECT_EQ(label::sample_label(raster, {1'000.0, 500.0}, cfg), SurfaceClass::ThickIce);
  EXPECT_EQ(label::sample_label(raster, {-50.0, 500.0}, cfg), SurfaceClass::Unknown);
  EXPECT_EQ(label::sample_label(raster, {200.0, 5'000.0}, cfg), SurfaceClass::Unknown);
}

TEST(Overlay, ShiftMovesSampling) {
  const auto raster = striped_raster();
  label::OverlayConfig cfg;
  cfg.vote_radius_px = 0;
  cfg.shift = {450.0, 0.0};
  // Position 200 (water stripe) + shift 450 lands in the thin stripe.
  EXPECT_EQ(label::sample_label(raster, {200.0, 500.0}, cfg), SurfaceClass::ThinIce);
}

TEST(Overlay, MajorityVoteSuppressesSpeckle) {
  auto raster = striped_raster();
  // Poke a single wrong pixel deep inside the thick stripe.
  std::size_t row, col;
  ASSERT_TRUE(raster.transform().world_to_pixel({1'000.0, 500.0}, raster.rows(), raster.cols(),
                                                row, col));
  raster.set(row, col, SurfaceClass::OpenWater);
  label::OverlayConfig voted;
  voted.vote_radius_px = 1;
  label::OverlayConfig raw;
  raw.vote_radius_px = 0;
  EXPECT_EQ(label::sample_label(raster, {1'000.0, 500.0}, raw), SurfaceClass::OpenWater);
  EXPECT_EQ(label::sample_label(raster, {1'000.0, 500.0}, voted), SurfaceClass::ThickIce);
}

TEST(Overlay, CloudMaskedCenterStaysUnknown) {
  auto raster = striped_raster();
  std::size_t row, col;
  ASSERT_TRUE(raster.transform().world_to_pixel({1'000.0, 500.0}, raster.rows(), raster.cols(),
                                                row, col));
  raster.set(row, col, SurfaceClass::Unknown);
  label::OverlayConfig voted;
  voted.vote_radius_px = 1;
  EXPECT_EQ(label::sample_label(raster, {1'000.0, 500.0}, voted), SurfaceClass::Unknown);
}

TEST(Drift, RecoversInjectedShift) {
  const auto raster = striped_raster();
  // IS2 segments are displaced by -shift relative to the raster, i.e. the
  // sampler must *add* `shift` to IS2 positions to land on the right pixels.
  const geo::Xy injected{-150.0, 0.0};
  auto segs = striped_segments(400.0, injected.x);
  const auto baseline = resample::rolling_baseline(segs, 2'000.0, 5.0);
  label::DriftConfig cfg;
  cfg.max_shift_m = 300.0;
  cfg.step_m = 25.0;
  const auto est = label::estimate_drift(raster, segs, baseline, cfg);
  EXPECT_NEAR(est.shift.x, 150.0, 30.0);
  EXPECT_NEAR(est.shift.y, 0.0, 60.0);
  EXPECT_GT(est.score, est.score_unshifted);
}

TEST(Drift, ZeroShiftWhenAligned) {
  const auto raster = striped_raster();
  auto segs = striped_segments();
  const auto baseline = resample::rolling_baseline(segs, 2'000.0, 5.0);
  label::DriftConfig cfg;
  cfg.max_shift_m = 200.0;
  const auto est = label::estimate_drift(raster, segs, baseline, cfg);
  EXPECT_LT(std::hypot(est.shift.x, est.shift.y), 60.0);
}

TEST(Drift, DescribeShiftMatchesTableFormat) {
  EXPECT_EQ(label::describe_shift({0.0, 0.0}), "0 m");
  EXPECT_EQ(label::describe_shift({100.0, 0.0}), "100 m / E");
  EXPECT_EQ(label::describe_shift({0.0, -200.0}), "200 m / S");
  const double d = 550.0 / std::sqrt(2.0);
  EXPECT_EQ(label::describe_shift({-d, d}), "550 m / NW");
}

TEST(AutoLabel, PerfectRasterGivesAccurateLabels) {
  const auto raster = striped_raster();
  auto segs = striped_segments();
  label::AutoLabelConfig cfg;
  cfg.manual_fix_rate = 0.0;  // no human help needed here
  const auto lb = label::auto_label(raster, std::move(segs), cfg);
  EXPECT_GT(lb.label_accuracy(), 0.97);
  EXPECT_EQ(lb.features.size(), lb.segments.size());
  EXPECT_EQ(lb.labels.size(), lb.segments.size());
}

TEST(AutoLabel, ManualFixRepairsMisalignedLabels) {
  const auto raster = striped_raster();
  // Misalign by 60 m without telling the overlay: labels near stripe borders
  // will be wrong, and the elevation-consistency flags should catch many.
  auto segs_noisy = striped_segments(400.0, -60.0);
  label::AutoLabelConfig no_fix;
  no_fix.manual_fix_rate = 0.0;
  label::AutoLabelConfig with_fix;
  with_fix.manual_fix_rate = 1.0;
  const auto lb0 = label::auto_label(raster, segs_noisy, no_fix);
  const auto lb1 = label::auto_label(raster, segs_noisy, with_fix);
  EXPECT_GT(lb1.label_accuracy(), lb0.label_accuracy());
  EXPECT_GT(lb1.n_manual_fixed, 0u);
}

TEST(AutoLabel, CloudMaskedSegmentsStayUnlabeled) {
  auto raster = striped_raster();
  // Mask a block of the thick stripe.
  for (std::size_t r = 0; r < raster.rows(); ++r)
    for (std::size_t c = raster.cols() - 20; c < raster.cols(); ++c)
      raster.set(r, c, SurfaceClass::Unknown);
  const auto lb = label::auto_label(raster, striped_segments(), {});
  EXPECT_GT(lb.n_unknown, 0u);
  std::size_t unknown_labels = 0;
  for (auto l : lb.labels)
    if (l == SurfaceClass::Unknown) ++unknown_labels;
  EXPECT_EQ(unknown_labels, lb.n_unknown);
}

}  // namespace
