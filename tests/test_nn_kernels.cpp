// Property tests for the tiled/vectorized NN kernels against the retained
// reference kernels: odd shapes, accumulate on/off, fused-epilogue
// consistency, batch-partition invariance of predict, softmax bit-
// stability, and threads-on vs threads-off determinism of the OpenMP
// threshold path.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cmath>
#include <vector>

#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/model.hpp"
#include "nn/tensor.hpp"

namespace {

using namespace is2::nn;
using is2::util::Rng;

Mat random_mat(std::size_t r, std::size_t c, Rng& rng, double scale = 1.0) {
  Mat m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.normal(0.0, scale));
  return m;
}

const std::size_t kShapes[] = {1, 3, 7, 17, 64, 129};

/// |a - b| <= tol * max(1, |a|, |b|) elementwise.
void expect_near_rel(const Mat& a, const Mat& b, double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double av = a.data()[i], bv = b.data()[i];
    const double scale = std::max({1.0, std::abs(av), std::abs(bv)});
    EXPECT_NEAR(av, bv, tol * scale) << "element " << i;
  }
}

void expect_bitwise_equal(const Mat& a, const Mat& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.data()[i], b.data()[i]) << "element " << i;
}

// gemm_nt's lane decomposition legitimately reorders the k-summation, so it
// gets a tolerance; gemm_nn / gemm_tn preserve the reference per-element
// order exactly and must match bit for bit.

TEST(KernelProperty, GemmNtMatchesReferenceAcrossShapes) {
  Rng rng(1);
  for (std::size_t m : kShapes)
    for (std::size_t n : kShapes)
      for (std::size_t k : kShapes)
        for (bool accumulate : {false, true}) {
          const Mat a = random_mat(m, k, rng);
          const Mat b = random_mat(n, k, rng);
          Mat c = random_mat(m, n, rng);  // nonzero: exercises accumulate
          Mat c_ref = c;
          gemm_nt(a, b, c, accumulate);
          gemm_nt_reference(a, b, c_ref, accumulate);
          // Rounding of the reordered k-summation grows with the
          // accumulation length; sqrt(k) matches the random-walk error
          // model.
          expect_near_rel(c, c_ref, 1e-5 * (1.0 + std::sqrt(static_cast<double>(k))));
        }
}

TEST(KernelProperty, GemmNnBitIdenticalToReferenceAcrossShapes) {
  Rng rng(2);
  for (std::size_t m : kShapes)
    for (std::size_t n : kShapes)
      for (std::size_t k : kShapes)
        for (bool accumulate : {false, true}) {
          const Mat a = random_mat(m, k, rng);
          const Mat b = random_mat(k, n, rng);
          Mat c = random_mat(m, n, rng);
          Mat c_ref = c;
          gemm_nn(a, b, c, accumulate);
          gemm_nn_reference(a, b, c_ref, accumulate);
          expect_bitwise_equal(c, c_ref);
        }
}

TEST(KernelProperty, GemmTnBitIdenticalToReferenceAcrossShapes) {
  Rng rng(3);
  for (std::size_t m : kShapes)
    for (std::size_t n : kShapes)
      for (std::size_t k : kShapes)
        for (bool accumulate : {false, true}) {
          const Mat a = random_mat(k, m, rng);
          const Mat b = random_mat(k, n, rng);
          Mat c = random_mat(m, n, rng);
          Mat c_ref = c;
          gemm_tn(a, b, c, accumulate);
          gemm_tn_reference(a, b, c_ref, accumulate);
          expect_bitwise_equal(c, c_ref);
        }
}

TEST(KernelProperty, FusedDenseMatchesUnfusedComposition) {
  Rng rng(4);
  for (std::size_t m : {1u, 7u, 64u, 256u})
    for (std::size_t n : {1u, 3u, 17u, 96u})
      for (std::size_t k : {1u, 6u, 32u, 112u})
        for (Activation act :
             {Activation::Linear, Activation::Relu, Activation::Elu, Activation::Sigmoid}) {
          const Mat x = random_mat(m, k, rng);
          const Mat w = random_mat(n, k, rng);
          const Mat b = random_mat(1, n, rng);
          Mat y;
          dense_forward_fused(x, w, b, act, y);
          // Unfused composition through the reference kernel.
          Mat z_ref(m, n);
          gemm_nt_reference(x, w, z_ref, false);
          for (std::size_t r = 0; r < m; ++r)
            for (std::size_t c = 0; c < n; ++c)
              z_ref.at(r, c) = activate(act, z_ref.at(r, c) + b.at(0, c));
          expect_near_rel(y, z_ref, 1e-5);

          // Train variant: z must be the pre-activation, y = act(z) exactly.
          Mat z, y2;
          dense_forward_train(x, w, b, act, z, y2);
          expect_bitwise_equal(y2, y);
          for (std::size_t i = 0; i < z.size(); ++i)
            EXPECT_EQ(activate(act, z.data()[i]), y2.data()[i]) << "element " << i;
        }
}

TEST(KernelProperty, TransposeRoundTrip) {
  Rng rng(5);
  const Mat a = random_mat(17, 29, rng);
  Mat at, back;
  transpose(a, at);
  transpose(at, back);
  ASSERT_EQ(at.rows(), 29u);
  ASSERT_EQ(at.cols(), 17u);
  expect_bitwise_equal(a, back);
}

TEST(Softmax, OnlineBitIdenticalToReference) {
  Rng rng(6);
  // Random rows plus adversarial max placements (front, back, middle,
  // ties, large spread) — the online recompute must stay bit-identical.
  std::vector<Mat> cases;
  cases.push_back(random_mat(64, 3, rng, 4.0));
  cases.push_back(random_mat(16, 129, rng, 2.0));
  Mat sorted_desc(4, 9), sorted_asc(4, 9), ties(4, 9);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 9; ++c) {
      sorted_desc.at(r, c) = 10.0f - static_cast<float>(c);
      sorted_asc.at(r, c) = static_cast<float>(c) - 4.0f;
      ties.at(r, c) = static_cast<float>(c % 3);
    }
  cases.push_back(sorted_desc);
  cases.push_back(sorted_asc);
  cases.push_back(ties);
  Mat spread = random_mat(8, 5, rng, 30.0);  // exercises the zmax guard
  cases.push_back(spread);

  for (const Mat& logits : cases) {
    Mat p, p_ref;
    softmax_rows(logits, p);
    softmax_rows_reference(logits, p_ref);
    expect_bitwise_equal(p, p_ref);
  }
}

TEST(Predict, BatchPartitionInvariance) {
  Rng rng(7);
  Sequential model = make_lstm_model(5, 6, rng);
  Tensor3 x(101, 5, 6);
  Rng xr(8);
  for (auto& v : x.v) v = static_cast<float>(xr.normal(0.0, 1.0));
  const auto full = model.predict(x, 256);
  EXPECT_EQ(model.predict(x, 1), full);
  EXPECT_EQ(model.predict(x, 7), full);
  EXPECT_EQ(model.predict(x, 100), full);
  EXPECT_EQ(model.predict(x, 101), full);
}

TEST(Predict, InferenceMatchesTrainingForwardWithoutDropout) {
  // The inference fast path (rolling LSTM buffers, fused epilogues, no
  // caches) must produce the same logits as the training path when no
  // dropout is active — both run the same kernel sequence.
  Rng rng(9);
  Sequential model;
  model.set_front(std::make_unique<Lstm>(6, 16, Activation::Elu, /*dropout=*/0.0, rng));
  model.add(std::make_unique<Dense>(16, 32, Activation::Elu, rng));
  model.add(std::make_unique<Dense>(32, 3, Activation::Linear, rng));
  Tensor3 x(33, 5, 6);
  Rng xr(10);
  for (auto& v : x.v) v = static_cast<float>(xr.normal(0.0, 1.0));
  Mat train_logits = model.forward(x, /*training=*/true);  // copy
  const Mat& infer_logits = model.forward(x, /*training=*/false);
  expect_bitwise_equal(train_logits, infer_logits);
}

TEST(Backward, ThrowsAfterInferenceForward) {
  Rng rng(11);
  Sequential model = make_mlp_model(5, 6, rng);
  Tensor3 x(4, 5, 6);
  model.forward(x, /*training=*/false);
  Mat grad(4, 3, 0.1f);
  EXPECT_THROW(model.backward(grad), std::logic_error);
}

TEST(Determinism, GemmThresholdPathThreadCountInvariant) {
  // 160x160x160 > the OpenMP threshold: the parallel path must produce the
  // same bits as the serial path for any thread count (row partitioning,
  // fixed reduction schedule). Without OpenMP this still checks repeat
  // determinism.
  Rng rng(12);
  const Mat a = random_mat(160, 160, rng);
  const Mat b = random_mat(160, 160, rng);
  ASSERT_GT(a.rows() * a.cols() * b.rows(), std::size_t{1} << 20);

  Mat c1(160, 160), c4(160, 160);
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  gemm_nt(a, b, c1);
#ifdef _OPENMP
  omp_set_num_threads(4);
#endif
  gemm_nt(a, b, c4);
  expect_bitwise_equal(c1, c4);

  Mat n1(160, 160), n4(160, 160);
#ifdef _OPENMP
  omp_set_num_threads(1);
#endif
  gemm_nn(a, b, n1);
#ifdef _OPENMP
  omp_set_num_threads(4);
#endif
  gemm_nn(a, b, n4);
  expect_bitwise_equal(n1, n4);
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
}

TEST(Determinism, ActivationRowsMatchScalarActivate) {
  // Row helpers (possibly SIMD-vectorized) and the scalar activate() must
  // agree bit for bit — the LSTM cell uses the rows, tests and backward
  // paths use the scalar form.
  Rng rng(13);
  const Mat x = random_mat(3, 257, rng, 3.0);
  for (Activation act : {Activation::Relu, Activation::Elu, Activation::Tanh,
                         Activation::Sigmoid, Activation::Linear}) {
    Mat y(3, 257);
    for (std::size_t r = 0; r < x.rows(); ++r)
      activate_row_copy(act, x.row(r), y.row(r), x.cols());
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_EQ(y.data()[i], activate(act, x.data()[i])) << "element " << i;
  }
}

TEST(Activations, PolynomialExpAccuracy) {
  // The polynomial exp behind sigmoid/ELU carries a documented tolerance
  // vs libm: |rel err| < 1e-6 across the active range.
  for (float x = -30.0f; x <= 30.0f; x += 0.0137f) {
    const double sig_ref = 1.0 / (1.0 + std::exp(-static_cast<double>(x)));
    EXPECT_NEAR(activate(Activation::Sigmoid, x), sig_ref, 1e-6 * std::max(1.0, sig_ref))
        << "x=" << x;
    const double elu_ref =
        x > 0.0f ? static_cast<double>(x) : std::expm1(static_cast<double>(x));
    EXPECT_NEAR(activate(Activation::Elu, x), elu_ref,
                1e-6 * std::max(1.0, std::abs(elu_ref)))
        << "x=" << x;
  }
  // Saturation limits stay sane.
  EXPECT_NEAR(activate(Activation::Sigmoid, 100.0f), 1.0f, 1e-6);
  EXPECT_NEAR(activate(Activation::Sigmoid, -100.0f), 0.0f, 1e-6);
  EXPECT_NEAR(activate(Activation::Elu, -100.0f), -1.0f, 1e-6);
}

TEST(Activations, NanPropagatesLikeLibm) {
  // NaN features must stay visible in the logits (as with libm exp), not
  // silently become finite — and the int cast inside the polynomial exp
  // must never see NaN (UB).
  const float nan = std::nanf("");
  EXPECT_TRUE(std::isnan(activate(Activation::Sigmoid, nan)));
  EXPECT_TRUE(std::isnan(activate(Activation::Elu, nan)));
  EXPECT_TRUE(std::isnan(activate(Activation::Tanh, nan)));
  float row[3] = {1.0f, nan, -1.0f};
  float out[3];
  activate_row_copy(Activation::Sigmoid, row, out, 3);
  EXPECT_FALSE(std::isnan(out[0]));
  EXPECT_TRUE(std::isnan(out[1]));
  EXPECT_FALSE(std::isnan(out[2]));
  activate_row_copy(Activation::Elu, row, out, 3);
  EXPECT_TRUE(std::isnan(out[1]));
}

TEST(Predict, WeightTransposeCacheBitIdenticalAcrossCalls) {
  // Dense/LSTM cache their pre-transposed weight panels across forward
  // calls (the ROADMAP-named inference lever). Repeated predicts on a warm
  // cache must be bit-identical to a never-cached fresh model.
  Rng rng(21);
  Sequential cached = make_lstm_model(5, 6, rng);
  Tensor3 x(67, 5, 6);
  Rng xr(22);
  for (auto& v : x.v) v = static_cast<float>(xr.normal(0.0, 1.0));

  const auto first = cached.predict(x);   // builds the transpose caches
  const auto second = cached.predict(x);  // served from the caches
  const auto third = cached.predict(x);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, third);

  Rng rng_fresh(21);
  Sequential fresh = make_lstm_model(5, 6, rng_fresh);
  EXPECT_EQ(fresh.predict(x), first);
}

TEST(Predict, WeightTransposeCacheInvalidatesOnWeightMutation) {
  // The dangerous scenario for a weight-transpose cache: predict (cache
  // warm), then mutate the weights through the params() views, then predict
  // again. A stale cache would reuse the old transposes; predictions must
  // instead match a fresh model carrying the mutated weights.
  Rng rng(23);
  Sequential model = make_lstm_model(5, 6, rng);
  Tensor3 x(41, 5, 6);
  Rng xr(24);
  for (auto& v : x.v) v = static_cast<float>(xr.normal(0.0, 1.0));
  const auto before = model.predict(x);  // warms every layer's cache

  auto perturb = [](Sequential& m) {
    for (const auto& p : m.params())
      for (std::size_t i = 0; i < p.value->size(); ++i)
        p.value->data()[i] += 0.05f * static_cast<float>((i % 7) + 1);
  };
  perturb(model);
  const auto after = model.predict(x);

  Rng rng_fresh(23);
  Sequential fresh = make_lstm_model(5, 6, rng_fresh);
  perturb(fresh);
  EXPECT_EQ(after, fresh.predict(x));  // cache invalidated, not stale
  EXPECT_NE(after, before);            // and the mutation really changed logits
}

TEST(Predict, WeightTransposeCacheInvalidatesAcrossTraining) {
  // Same property through the real mutation path: warm the cache, train
  // (backward marks the caches dirty; the optimizer then mutates weights),
  // and compare against an identically-trained never-predicted control.
  Rng rng(25);
  Sequential model = make_lstm_model(5, 6, rng);
  Rng rng_ctrl(25);
  Sequential control = make_lstm_model(5, 6, rng_ctrl);

  Dataset data;
  data.x = Tensor3(48, 5, 6);
  Rng xr(26);
  for (auto& v : data.x.v) v = static_cast<float>(xr.normal(0.0, 1.0));
  data.y.resize(48);
  for (std::size_t i = 0; i < data.y.size(); ++i) data.y[i] = i % 3;

  (void)model.predict(data.x);  // warm caches before training

  FitConfig fit;
  fit.epochs = 2;
  fit.batch_size = 16;
  CrossEntropyLoss loss;
  Adam opt_a(0.01), opt_b(0.01);
  model.fit(data, loss, opt_a, fit);
  control.fit(data, loss, opt_b, fit);

  EXPECT_EQ(model.predict(data.x), control.predict(data.x));
}

}  // namespace
