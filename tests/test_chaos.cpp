// Chaos-layer tests: the deterministic fault-injection plan (triggers,
// seeded replay, instance filters, obs mirror), the seeded Backoff schedule
// and Deadline budget, disk-read retry vs corrupt-drop under injected
// faults, async write-back retry/exhaustion, queue-deadline expiry as a
// failure mode distinct from load shedding, transport liveness (tag
// mismatch leaves the channel head intact; recv timeout poisons the group;
// an injected send fault aborts every rank; the trainer surfaces
// CollectiveAbort), and the cluster's self-healing loop — consecutive
// failures quarantine with live failover, hot keys re-replicate off the
// quarantined node, revive restores the ring bit-identically, dead nodes
// are never probed.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <exception>
#include <filesystem>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <unistd.h>
#include <vector>

#include "core/campaign.hpp"
#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "dist/comm.hpp"
#include "dist/trainer.hpp"
#include "dist/transport.hpp"
#include "nn/model.hpp"
#include "obs/registry.hpp"
#include "serve/cluster.hpp"
#include "serve/disk_cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"
#include "util/backoff.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace {

using namespace is2;
using atl03::BeamId;
using serve::Cluster;
using serve::ClusterConfig;
using serve::GranuleProduct;
using serve::ProductKey;
using serve::ProductRequest;
using util::fault::InjectedFault;
using util::fault::SiteConfig;

// The failure taxonomy call sites dispatch on: a deadline expiry is not a
// shed, an injected fault is an ordinary runtime_error (call sites treat it
// as the IO error it stands in for), and a collective abort is its own
// liveness error — none is a subtype of another.
static_assert(!std::is_base_of_v<serve::ShedError, serve::DeadlineError>);
static_assert(!std::is_base_of_v<serve::DeadlineError, serve::ShedError>);
static_assert(std::is_base_of_v<std::runtime_error, InjectedFault>);
static_assert(!std::is_base_of_v<dist::CollectiveAbort, InjectedFault>);
static_assert(!std::is_base_of_v<InjectedFault, dist::CollectiveAbort>);

// ---------------------------------------------------------------------------
// fault::Plan (pure)
// ---------------------------------------------------------------------------

TEST(FaultPlan, UnarmedInjectIsANoOp) {
  // No plan armed: the site hook must be a silent pass-through.
  for (int i = 0; i < 100; ++i) EXPECT_NO_THROW(util::fault::inject("disk.read", i));
}

TEST(FaultPlan, NthEveryAndCapTriggersFireExactly) {
  util::fault::Plan plan(1);
  plan.on("nth", [] { SiteConfig c; c.fail_nth = 2; return c; }());
  plan.on("every", [] { SiteConfig c; c.fail_every = 3; return c; }());
  plan.on("capped", [] {
    SiteConfig c;
    c.fail_every = 1;
    c.max_failures = 2;
    return c;
  }());
  util::fault::Armed armed(plan);

  std::vector<bool> nth, every, capped;
  for (int i = 0; i < 9; ++i) {
    auto fired = [](const char* site) {
      try {
        util::fault::inject(site);
        return false;
      } catch (const InjectedFault&) {
        return true;
      }
    };
    nth.push_back(fired("nth"));
    every.push_back(fired("every"));
    capped.push_back(fired("capped"));
  }
  EXPECT_EQ(nth, (std::vector<bool>{false, true, false, false, false, false, false, false, false}));
  EXPECT_EQ(every,
            (std::vector<bool>{false, false, true, false, false, true, false, false, true}));
  EXPECT_EQ(capped,
            (std::vector<bool>{true, true, false, false, false, false, false, false, false}));
  EXPECT_EQ(plan.hits("nth"), 9u);
  EXPECT_EQ(plan.failures("nth"), 1u);
  EXPECT_EQ(plan.failures("every"), 3u);
  EXPECT_EQ(plan.failures("capped"), 2u);
}

TEST(FaultPlan, SeededRateReplaysBitIdentically) {
  auto pattern_for = [](std::uint64_t seed) {
    util::fault::Plan plan(seed);
    SiteConfig c;
    c.fail_rate = 0.3;
    plan.on("p", c);
    util::fault::Armed armed(plan);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      try {
        util::fault::inject("p");
        pattern.push_back(false);
      } catch (const InjectedFault&) {
        pattern.push_back(true);
      }
    }
    return pattern;
  };
  const auto a = pattern_for(42), b = pattern_for(42), c = pattern_for(43);
  EXPECT_EQ(a, b);  // same seed, same traffic -> the same chaos, bit for bit
  EXPECT_NE(a, c);
  const auto failures = static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(failures, 200u * 3 / 20);  // ~0.3 of 200, loose statistical bounds
  EXPECT_LT(failures, 200u * 9 / 20);
}

TEST(FaultPlan, InstanceFilterAndRegistryMirror) {
  obs::Registry reg;
  util::fault::Plan plan(7, &reg);
  SiteConfig only2;
  only2.instance = 2;
  only2.fail_every = 1;
  plan.on("peer", only2);
  util::fault::Armed armed(plan);

  EXPECT_NO_THROW(util::fault::inject("peer", 0));
  EXPECT_NO_THROW(util::fault::inject("peer", 1));
  EXPECT_THROW(util::fault::inject("peer", 2), InjectedFault);
  EXPECT_EQ(plan.hits("peer"), 1u);  // only the matching instance counts
  EXPECT_EQ(plan.failures("peer"), 1u);

  double hits = -1.0, injected = -1.0;
  for (const auto& p : reg.snapshot().points) {
    const bool site_labeled =
        std::find(p.labels.begin(), p.labels.end(),
                  std::pair<std::string, std::string>{"site", "peer"}) != p.labels.end();
    if (p.name == "is2_fault_hits_total" && site_labeled) hits = p.value;
    if (p.name == "is2_fault_injected_total" && site_labeled) injected = p.value;
  }
  EXPECT_DOUBLE_EQ(hits, 1.0);
  EXPECT_DOUBLE_EQ(injected, 1.0);
}

// ---------------------------------------------------------------------------
// Backoff / Deadline (pure)
// ---------------------------------------------------------------------------

TEST(Backoff, ExponentialScheduleIsExactAndCapped) {
  util::BackoffConfig cfg;
  cfg.base_ms = 1.0;
  cfg.max_ms = 8.0;
  cfg.multiplier = 2.0;
  cfg.decorrelated = false;
  util::Backoff b(cfg, 0);
  EXPECT_DOUBLE_EQ(b.next_ms(), 1.0);
  EXPECT_DOUBLE_EQ(b.next_ms(), 2.0);
  EXPECT_DOUBLE_EQ(b.next_ms(), 4.0);
  EXPECT_DOUBLE_EQ(b.next_ms(), 8.0);
  EXPECT_DOUBLE_EQ(b.next_ms(), 8.0);  // capped, stays capped
  EXPECT_EQ(b.attempts(), 5u);
  b.reset();
  EXPECT_EQ(b.attempts(), 0u);
  EXPECT_DOUBLE_EQ(b.next_ms(), 1.0);  // schedule restarts from base
}

TEST(Backoff, DecorrelatedJitterIsSeededAndBounded) {
  util::BackoffConfig cfg;
  cfg.base_ms = 0.5;
  cfg.max_ms = 20.0;
  util::Backoff a(cfg, 7), b(cfg, 7), c(cfg, 8);
  std::vector<double> sa, sb, sc;
  for (int i = 0; i < 20; ++i) {
    sa.push_back(a.next_ms());
    sb.push_back(b.next_ms());
    sc.push_back(c.next_ms());
  }
  EXPECT_EQ(sa, sb);  // a retry schedule replays bit-identically per seed
  EXPECT_NE(sa, sc);
  for (const double v : sa) {
    EXPECT_GE(v, cfg.base_ms);
    EXPECT_LE(v, cfg.max_ms);
  }
}

TEST(DeadlineBudget, UnlimitedNeverExpiresAndLimitedSpendsDown) {
  const util::Deadline unlimited;
  EXPECT_FALSE(unlimited.limited());
  EXPECT_FALSE(unlimited.expired());
  EXPECT_GT(unlimited.remaining_ms(), 1e9);

  const util::Deadline d(30.0);
  EXPECT_TRUE(d.limited());
  EXPECT_FALSE(d.expired());
  EXPECT_LE(d.remaining_ms(), 30.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(45));
  EXPECT_TRUE(d.expired());
  EXPECT_DOUBLE_EQ(d.remaining_ms(), 0.0);
}

// ---------------------------------------------------------------------------
// DiskCache under injected read faults (synthetic products, no campaign)
// ---------------------------------------------------------------------------

GranuleProduct tiny_product(const std::string& id) {
  GranuleProduct p;
  p.granule_id = id;
  p.beam = BeamId::Gt1r;
  p.segments.resize(8);
  p.classes.assign(8, static_cast<atl03::SurfaceClass>(1));
  for (std::size_t i = 0; i < p.segments.size(); ++i) {
    p.segments[i].s = 2.0 * static_cast<double>(i);
    p.segments[i].h_mean = 0.1 * static_cast<double>(i);
  }
  return p;
}

class DiskCacheChaos : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("is2_chaos_disk_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(DiskCacheChaos, TransientReadFaultIsRetriedAndServed) {
  obs::Registry reg;
  serve::DiskCacheConfig dcfg;
  dcfg.dir = dir_;
  dcfg.registry = &reg;
  serve::DiskCache cache(dcfg);
  const ProductKey key{"chaos_granule", BeamId::Gt1r, 0xD15C};
  cache.put(key, tiny_product(key.granule_id));

  util::fault::Plan plan(11);
  SiteConfig once;
  once.fail_nth = 1;
  plan.on("disk.read", once);
  util::fault::Armed armed(plan);

  // The first read attempt throws; one backoff'd retry serves the healthy
  // file instead of rebuilding the product.
  const auto hit = cache.get(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->segments.size(), 8u);
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 0u);
  EXPECT_EQ(st.disk_read_retries, 1u);
  EXPECT_EQ(st.corrupt_dropped, 0u);
  EXPECT_EQ(st.entries, 1u);

  double mirrored = -1.0;
  for (const auto& p : reg.snapshot().points)
    if (p.name == "is2_cache_read_retries_total") mirrored = p.value;
  EXPECT_DOUBLE_EQ(mirrored, 1.0);
}

TEST_F(DiskCacheChaos, PersistentReadFaultExhaustsRetriesAndDropsAsCorrupt) {
  serve::DiskCacheConfig dcfg;
  dcfg.dir = dir_;
  serve::DiskCache cache(dcfg);
  const ProductKey key{"chaos_granule", BeamId::Gt1r, 0xD15C};
  cache.put(key, tiny_product(key.granule_id));
  const auto path = std::filesystem::path(dir_) / serve::DiskCache::filename_for(key);
  ASSERT_TRUE(std::filesystem::exists(path));

  util::fault::Plan plan(12);
  SiteConfig always;
  always.fail_every = 1;
  plan.on("disk.read", always);
  util::fault::Armed armed(plan);

  // Both attempts fail: indistinguishable from a corrupt file, so the
  // delete-as-corrupt path runs and the probe reports a miss.
  EXPECT_EQ(cache.get(key), nullptr);
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.disk_read_retries, 1u);
  EXPECT_EQ(st.corrupt_dropped, 1u);
  EXPECT_EQ(st.entries, 0u);
  EXPECT_FALSE(std::filesystem::exists(path));
}

// ---------------------------------------------------------------------------
// Transport / collectives under chaos
// ---------------------------------------------------------------------------

/// Run fn(rank) on `n` threads and join.
void on_ranks(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) threads.emplace_back([&, r] { fn(r); });
  for (auto& t : threads) t.join();
}

TEST(TransportChaos, TagMismatchLeavesTheMessageAtTheChannelHead) {
  dist::InProcessTransport t(2);
  const std::vector<float> payload{1.0f, 2.0f, 3.0f};
  t.send(0, 1, /*tag=*/7, payload.data(), payload.size());

  // A protocol divergence throws without consuming: the diverged state
  // stays inspectable, and it is NOT a liveness abort.
  std::vector<float> out(3, 0.0f);
  EXPECT_THROW(t.recv(0, 1, /*tag=*/8, out.data(), out.size()), std::runtime_error);
  EXPECT_FALSE(t.aborted());
  EXPECT_EQ(t.pending(0, 1), 1u);
  EXPECT_THROW(t.recv(0, 1, /*tag=*/7, out.data(), 2), std::runtime_error);  // length too
  EXPECT_EQ(t.pending(0, 1), 1u);

  // The matching receive then consumes exactly that message.
  t.recv(0, 1, /*tag=*/7, out.data(), out.size());
  EXPECT_EQ(out, payload);
  EXPECT_EQ(t.pending(0, 1), 0u);
}

TEST(TransportChaos, RecvTimeoutPoisonsTheWholeGroup) {
  dist::InProcessTransport t(2, /*recv_timeout_ms=*/50.0);
  std::vector<float> out(1, 0.0f);
  EXPECT_THROW(t.recv(0, 1, 0, out.data(), 1), dist::CollectiveAbort);
  EXPECT_TRUE(t.aborted());
  // Poisoned transport: sends and further recvs fail fast instead of
  // queueing into a dead group.
  EXPECT_THROW(t.send(0, 1, 0, out.data(), 1), dist::CollectiveAbort);
  EXPECT_THROW(t.recv(1, 0, 0, out.data(), 1), dist::CollectiveAbort);
}

TEST(CommChaos, InjectedSendFaultAbortsEveryRank) {
  // Rank 1 dies mid-collective (its first ring send throws); the liveness
  // machinery must fail ranks 0 and 2 with CollectiveAbort instead of
  // leaving them blocked in recv forever. The timeout is a backstop — the
  // abort propagates by poisoning, far faster.
  dist::Communicator comm(3, /*recv_timeout_ms=*/5000.0);
  util::fault::Plan plan(3);
  SiteConfig die;
  die.instance = 1;
  die.fail_nth = 1;
  plan.on("dist.send", die);
  util::fault::Armed armed(plan);

  std::array<std::exception_ptr, 3> errors{};
  on_ranks(3, [&](int r) {
    std::vector<float> buf(64, static_cast<float>(r));
    try {
      comm.allreduce_sum(r, buf);
    } catch (...) {
      errors[static_cast<std::size_t>(r)] = std::current_exception();
    }
  });
  EXPECT_TRUE(comm.aborted());
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(errors[static_cast<std::size_t>(r)]) << "rank " << r << " did not fail";
    EXPECT_THROW(std::rethrow_exception(errors[static_cast<std::size_t>(r)]),
                 dist::CollectiveAbort)
        << "rank " << r;
  }
  EXPECT_EQ(plan.failures("dist.send"), 1u);  // one fault took down the group
}

nn::Dataset toy_task(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Dataset d;
  d.x = nn::Tensor3(n, 5, 6);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
    for (std::size_t t = 0; t < 5; ++t) {
      float* row = d.x.at(i, t);
      for (int f = 0; f < 6; ++f) row[f] = static_cast<float>(rng.normal(cls * 1.0, 0.5));
    }
    d.y[i] = cls;
  }
  return d;
}

TEST(TrainerChaos, SurfacesCollectiveAbortInsteadOfHanging) {
  const auto train = toy_task(64, 1);
  const auto test = toy_task(16, 2);
  dist::TrainerConfig cfg;
  cfg.ranks = 2;
  cfg.epochs = 1;
  cfg.recv_timeout_ms = 5000.0;  // backstop only; the abort poisons first

  util::fault::Plan plan(4);
  SiteConfig die;
  die.fail_nth = 1;
  plan.on("dist.recv", die);
  util::fault::Armed armed(plan);

  EXPECT_THROW(dist::train_distributed(
                   [] {
                     util::Rng rng(3);
                     return nn::make_mlp_model(5, 6, rng);
                   },
                   train, test, cfg),
               dist::CollectiveAbort);
}

// ---------------------------------------------------------------------------
// ClusterMetrics::imbalance (pure)
// ---------------------------------------------------------------------------

TEST(ClusterMetricsUnit, ImbalanceAveragesOverLiveNodesOnly) {
  serve::ClusterMetrics m;
  EXPECT_DOUBLE_EQ(m.imbalance(), 0.0);  // nothing routed yet

  m.live = {true, true, true};
  m.routed = {4, 2, 0};
  EXPECT_DOUBLE_EQ(m.imbalance(), 2.0);  // max 4 / mean 2

  m.routed = {2, 2, 2};
  EXPECT_DOUBLE_EQ(m.imbalance(), 1.0);  // perfectly even

  // A dead node drops out of the denominator: its zero must not flatter
  // (or damn) the survivors' balance.
  m.live = {true, false, true};
  m.routed = {4, 0, 2};
  EXPECT_DOUBLE_EQ(m.imbalance(), 4.0 / 3.0);
}

// ---------------------------------------------------------------------------
// Campaign-backed chaos: deadlines, write-back retry, cluster self-healing
// ---------------------------------------------------------------------------

/// Field-exact comparison (same bar as test_cluster: every healed or
/// failed-over path must serve the same bits as a healthy single node).
void expect_bit_identical(const GranuleProduct& a, const GranuleProduct& b) {
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].s, b.segments[i].s);
    EXPECT_EQ(a.segments[i].h_mean, b.segments[i].h_mean);
    EXPECT_EQ(a.segments[i].h_std, b.segments[i].h_std);
  }
  ASSERT_EQ(a.classes, b.classes);
  ASSERT_EQ(a.freeboard.points.size(), b.freeboard.points.size());
  for (std::size_t i = 0; i < a.freeboard.points.size(); ++i) {
    EXPECT_EQ(a.freeboard.points[i].s, b.freeboard.points[i].s);
    EXPECT_EQ(a.freeboard.points[i].freeboard, b.freeboard.points[i].freeboard);
    EXPECT_EQ(a.freeboard.points[i].cls, b.freeboard.points[i].cls);
  }
}

class ChaosCampaign : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new core::PipelineConfig(core::PipelineConfig::tiny());
    campaign_ = new core::Campaign(*config_);
    pair_ = new core::PairDataset(campaign_->generate(1));

    dir_ = (std::filesystem::temp_directory_path() /
            ("is2_chaos_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
    shards_ = new core::ShardSet();
    core::write_shards(pair_->granule, 0, /*chunks_per_beam=*/2, dir_, *shards_);
    index_ = new serve::ShardIndex(serve::ShardIndex::build(shards_->files));

    const auto* files = index_->find(pair_->granule.id, BeamId::Gt1r);
    ASSERT_NE(files, nullptr);
    const auto merged = serve::ShardIndex::load_merged(*files);
    const auto pre = atl03::preprocess_beam(merged, merged.beams[0], campaign_->corrections(),
                                            config_->preprocess);
    auto segments = resample::resample(pre, config_->segmenter);
    const resample::FirstPhotonBiasCorrector fpb(config_->instrument.dead_time_m,
                                                 config_->instrument.strong_channels);
    fpb.apply(segments);
    const auto features = resample::to_features(segments, resample::rolling_baseline(segments));
    scaler_ = new resample::FeatureScaler(resample::FeatureScaler::fit(features));
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    delete scaler_;
    delete index_;
    delete shards_;
    delete pair_;
    delete campaign_;
    delete config_;
    scaler_ = nullptr;
    index_ = nullptr;
    shards_ = nullptr;
    pair_ = nullptr;
    campaign_ = nullptr;
    config_ = nullptr;
  }

  static nn::Sequential make_model() {
    util::Rng rng(99);
    return nn::make_lstm_model(config_->sequence_window, resample::FeatureRow::kDim, rng);
  }

  static std::unique_ptr<Cluster> make_cluster(ClusterConfig cfg) {
    return std::make_unique<Cluster>(cfg, *config_, campaign_->corrections(), *index_,
                                     &ChaosCampaign::make_model, *scaler_);
  }

  static std::unique_ptr<serve::GranuleService> make_single_node(serve::ServiceConfig cfg) {
    return std::make_unique<serve::GranuleService>(cfg, *config_, campaign_->corrections(),
                                                   *index_, &ChaosCampaign::make_model,
                                                   *scaler_);
  }

  static ProductRequest request(BeamId beam) {
    ProductRequest r;
    r.granule_id = pair_->granule.id;
    r.beam = beam;
    return r;
  }

  static core::PipelineConfig* config_;
  static core::Campaign* campaign_;
  static core::PairDataset* pair_;
  static core::ShardSet* shards_;
  static serve::ShardIndex* index_;
  static resample::FeatureScaler* scaler_;
  static std::string dir_;
};

core::PipelineConfig* ChaosCampaign::config_ = nullptr;
core::Campaign* ChaosCampaign::campaign_ = nullptr;
core::PairDataset* ChaosCampaign::pair_ = nullptr;
core::ShardSet* ChaosCampaign::shards_ = nullptr;
serve::ShardIndex* ChaosCampaign::index_ = nullptr;
resample::FeatureScaler* ChaosCampaign::scaler_ = nullptr;
std::string ChaosCampaign::dir_;

TEST_F(ChaosCampaign, QueueDeadlineExpiryIsDistinctFromShedding) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  auto service = make_single_node(cfg);

  // One cold build occupies the only worker; a second request with a
  // sub-millisecond budget queues behind it and must be dropped at dequeue
  // with DeadlineError — a budget failure, not a capacity (Shed) failure.
  auto slow = service->submit(request(BeamId::Gt1r));
  // Same (default) class as the in-flight build: the weighted dequeue is
  // FIFO within a class, so the doomed request must wait out the build.
  ProductRequest doomed = request(BeamId::Gt2r);
  doomed.deadline_ms = 0.5;
  auto expired = service->submit(doomed);
  EXPECT_THROW(expired.get(), serve::DeadlineError);
  ASSERT_NE(slow.get().product, nullptr);

  const auto stats = service->metrics().scheduler;
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.deadline_expired_by_class[static_cast<std::size_t>(serve::Priority::batch)],
            1u);
  // A deadline drop still completes its job slot: the dispatched==completed
  // invariant (what shutdown drains on) must hold afterwards.
  EXPECT_EQ(stats.dispatched, stats.completed);

  // The same request WITH budget to spare is served normally.
  ProductRequest relaxed = request(BeamId::Gt2r);
  relaxed.deadline_ms = 60'000.0;
  ASSERT_NE(service->submit(relaxed).get().product, nullptr);
  EXPECT_EQ(service->metrics().scheduler.deadline_expired, 1u);
}

TEST_F(ChaosCampaign, WritebackRetriesATransientDiskFault) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.disk_cache_dir = dir_ + "/wb_transient";
  auto service = make_single_node(cfg);

  util::fault::Plan plan(21);
  SiteConfig once;
  once.fail_nth = 1;
  plan.on("disk.write", once);

  std::mutex mu;
  std::vector<std::string> lines;
  util::set_log_sink([&](util::LogLevel, std::string_view line) {
    std::lock_guard lock(mu);
    lines.emplace_back(line);
  });
  {
    util::fault::Armed armed(plan);
    ASSERT_NE(service->submit(request(BeamId::Gt1r)).get().product, nullptr);
    service->wait_disk_writebacks();
  }
  util::set_log_sink(nullptr);

  // First attempt threw, the backoff'd retry published: the disk tier holds
  // the product, nothing was logged, no failure recorded.
  EXPECT_EQ(plan.failures("disk.write"), 1u);
  ASSERT_NE(service->disk_cache(), nullptr);
  EXPECT_EQ(service->disk_cache()->stats().writes, 1u);
  EXPECT_EQ(service->metrics().writeback_failures, 0u);
  EXPECT_TRUE(lines.empty());
}

TEST_F(ChaosCampaign, WritebackExhaustionWarnsWithTheKey) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.disk_cache_dir = dir_ + "/wb_exhausted";
  auto service = make_single_node(cfg);

  util::fault::Plan plan(22);
  SiteConfig always;
  always.fail_every = 1;
  plan.on("disk.write", always);

  std::mutex mu;
  std::vector<std::string> lines;
  util::set_log_sink([&](util::LogLevel level, std::string_view line) {
    std::lock_guard lock(mu);
    if (level == util::LogLevel::Warn) lines.emplace_back(line);
  });
  {
    util::fault::Armed armed(plan);
    ASSERT_NE(service->submit(request(BeamId::Gt1r)).get().product, nullptr);
    service->wait_disk_writebacks();
  }
  util::set_log_sink(nullptr);

  // Every attempt failed: the product is served (write-back is async and
  // best-effort) but the tier stays empty, the failure is counted, and the
  // warning names the key an operator would need.
  EXPECT_GE(plan.failures("disk.write"), 3u);  // all bounded attempts
  EXPECT_EQ(service->disk_cache()->stats().writes, 0u);
  EXPECT_EQ(service->metrics().writeback_failures, 1u);
  bool named = false;
  {
    std::lock_guard lock(mu);
    for (const auto& line : lines)
      if (line.find("write-back failed") != std::string::npos &&
          line.find(pair_->granule.id) != std::string::npos)
        named = true;
  }
  EXPECT_TRUE(named);
}

TEST_F(ChaosCampaign, ConsecutiveSubmitFaultsQuarantineWithLiveFailover) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.replication_factor = 2;
  cfg.quarantine_after = 3;
  cfg.node.workers = 1;
  auto cluster = make_cluster(cfg);

  const ProductRequest r = request(BeamId::Gt1r);
  const std::uint32_t owner = cluster->owner_of(cluster->key_for(r));

  // A genuinely dead node fails every surface: submits AND peer probes.
  // (Failing only node.submit would let a successful peer.peek against the
  // owner reset its streak — a live probe is liveness evidence.)
  util::fault::Plan plan(5);
  SiteConfig die;
  die.instance = static_cast<int>(owner);
  die.fail_every = 1;
  plan.on("node.submit", die);
  plan.on("peer.peek", die);
  {
    util::fault::Armed armed(plan);
    // Every submit hits the faulty owner, fails, and fails over to a live
    // replica — the client sees three served requests, zero errors.
    for (int i = 0; i < 3; ++i)
      ASSERT_NE(cluster->submit(r).get().product, nullptr) << "submit " << i;

    // The third consecutive failure crossed the threshold: the owner is out
    // of the ring (so the rule stops matching) but not drained.
    EXPECT_TRUE(cluster->is_quarantined(owner));
    EXPECT_FALSE(cluster->is_live(owner));
    ASSERT_NE(cluster->submit(r).get().product, nullptr);  // routed around it
  }
  auto m = cluster->metrics();
  EXPECT_EQ(m.quarantines, 1u);
  EXPECT_GE(m.node_failures, 3u);
  EXPECT_TRUE(m.quarantined[owner]);
  EXPECT_FALSE(m.live[owner]);

  // Revive rejoins; a full quarantine/revive cycle only ever increments the
  // transition counters (monotonic, no double counting on no-op calls).
  cluster->revive_node(owner);
  EXPECT_TRUE(cluster->is_live(owner));
  cluster->revive_node(owner);  // no-op: already live
  cluster->quarantine_node(owner);
  cluster->quarantine_node(owner);  // no-op: already out
  cluster->revive_node(owner);
  m = cluster->metrics();
  EXPECT_EQ(m.quarantines, 2u);
  EXPECT_EQ(m.revives, 2u);
  EXPECT_EQ(cluster->live_count(), 3u);
}

TEST_F(ChaosCampaign, QuarantineRereplicatesHotKeysAndReviveKeepsRamWarm) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.replication_factor = 2;
  cfg.hot_key_threshold = 2;
  cfg.node.workers = 1;
  auto cluster = make_cluster(cfg);

  const ProductRequest r = request(BeamId::Gt2r);
  GranuleProduct reference;
  {
    serve::ServiceConfig single;
    single.workers = 1;
    reference = *make_single_node(single)->submit(r).get().product;
  }

  // Build once, then cross the hot threshold so the key is (a) in the hot
  // slice of the popularity ledger and (b) promoted onto its replica set.
  const std::uint32_t owner = cluster->owner_of(cluster->key_for(r));
  for (int i = 0; i < 4; ++i) ASSERT_NE(cluster->submit(r).get().product, nullptr);
  auto windows_across_fleet = [&] {
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < cluster->num_nodes(); ++i)
      n += cluster->node(i).metrics().inference_windows;
    return n;
  };
  const std::uint64_t windows_before = windows_across_fleet();

  // Quarantine the owner: its RAM is intact, so the healing pass copies the
  // hot key to its new owner before any traffic can miss there.
  cluster->quarantine_node(owner);
  EXPECT_GE(cluster->metrics().rereplicated_keys, 1u);

  const auto healed = cluster->submit(r).get();
  ASSERT_NE(healed.product, nullptr);
  EXPECT_TRUE(healed.from_cache);
  expect_bit_identical(*healed.product, reference);
  EXPECT_EQ(windows_across_fleet(), windows_before);  // healed, not rebuilt

  // Revive: the node kept its RAM through quarantine, so traffic routed
  // back to it fast-hits immediately — no cold restart.
  cluster->revive_node(owner);
  const auto back = cluster->submit(r).get();
  ASSERT_NE(back.product, nullptr);
  EXPECT_TRUE(back.from_cache);
  expect_bit_identical(*back.product, reference);
  EXPECT_EQ(windows_across_fleet(), windows_before);
}

TEST_F(ChaosCampaign, ReviveRestoresThePreQuarantineRingExactly) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.node.workers = 1;
  auto cluster = make_cluster(cfg);

  std::vector<ProductKey> keys;
  for (int i = 0; i < 200; ++i) {
    ProductKey k;
    k.granule_id = "synthetic_" + std::to_string(i);
    k.beam = BeamId::Gt1r;
    keys.push_back(k);
  }
  std::vector<std::uint32_t> before;
  for (const auto& k : keys) before.push_back(cluster->owner_of(k));

  // Quarantine moves only the quarantined node's ranges (minimal churn)...
  cluster->quarantine_node(2);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint32_t now = cluster->owner_of(keys[i]);
    EXPECT_NE(now, 2u) << "key " << i << " routed to a quarantined node";
    if (now != before[i]) {
      ++moved;
      EXPECT_EQ(before[i], 2u) << "key " << i << " churned between healthy nodes";
    }
  }
  EXPECT_GT(moved, 0u);

  // ...and revive is its exact inverse: every key routes as if the node had
  // never flapped.
  cluster->revive_node(2);
  for (std::size_t i = 0; i < keys.size(); ++i)
    ASSERT_EQ(cluster->owner_of(keys[i]), before[i]) << "key " << i;
}

TEST_F(ChaosCampaign, HealthProbesSkipDeadNodesAndFeedTheQuarantineLedger) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.quarantine_after = 2;
  cfg.node.workers = 1;
  auto cluster = make_cluster(cfg);

  cluster->kill_node(0);
  cluster->quarantine_node(1);

  util::fault::Plan plan(9);
  SiteConfig w0, w1;
  w0.instance = 0;
  w0.fail_every = 1;
  w1.instance = 1;
  w1.fail_every = 1;
  plan.on("peer.peek", w0);
  plan.on("peer.peek", w1);
  util::fault::Armed armed(plan);

  // Only the one live node is probed: rules watching the dead and the
  // quarantined node never even see a hit.
  EXPECT_EQ(cluster->probe_health(), 1u);
  EXPECT_EQ(plan.hits("peer.peek"), 0u);

  // A probe that throws feeds the same consecutive-failure ledger as a
  // failed submit: two failing sweeps quarantine the last live node.
  SiteConfig w2;
  w2.instance = 2;
  w2.fail_every = 1;
  plan.on("peer.peek", w2);
  EXPECT_EQ(cluster->probe_health(), 0u);
  EXPECT_FALSE(cluster->is_quarantined(2));  // one strike, not two
  EXPECT_EQ(cluster->probe_health(), 0u);
  EXPECT_TRUE(cluster->is_quarantined(2));
  EXPECT_EQ(cluster->live_count(), 0u);  // fleet dark, reported — not crashed

  const auto m = cluster->metrics();
  EXPECT_EQ(m.quarantines, 2u);
  EXPECT_GE(m.node_failures, 2u);
  // A killed node is terminal: revive only applies to quarantine.
  cluster->revive_node(0);
  EXPECT_FALSE(cluster->is_live(0));
  cluster->revive_node(2);
  EXPECT_TRUE(cluster->is_live(2));
}

}  // namespace
