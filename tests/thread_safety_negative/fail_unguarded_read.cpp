// MUST NOT compile under `clang -Werror=thread-safety`: reads a
// GUARDED_BY field without holding its mutex. If this TU ever compiles
// under the analysis, the annotation pipeline is broken (macro shim inert,
// flags dropped) and the ctest WILL_FAIL registration catches it.
#include <cstdint>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void inc() {
    is2::util::MutexLock lock(mutex_);
    ++value_;
  }

  // VIOLATION: guarded read with no lock held.
  std::uint64_t value() const { return value_; }

 private:
  mutable is2::util::Mutex mutex_;
  std::uint64_t value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.inc();
  return static_cast<int>(c.value());
}
