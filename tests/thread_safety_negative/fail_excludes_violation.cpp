// MUST NOT compile under `clang -Werror=thread-safety`: calls an
// EXCLUDES(mutex_) function while holding that mutex. This is the
// self-deadlock shape Cluster::routing_hash documents ("takes mutex_ —
// never call while holding it"); the annotation turns the comment into a
// compile-time contract.
#include <cstdint>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Router {
 public:
  std::uint64_t rebalance() EXCLUDES(mutex_) {
    is2::util::MutexLock lock(mutex_);
    return ++epoch_;
  }

  void on_failure() {
    is2::util::MutexLock lock(mutex_);
    // VIOLATION: rebalance() re-acquires mutex_ — deadlock at runtime,
    // compile error under the analysis.
    (void)rebalance();
  }

 private:
  mutable is2::util::Mutex mutex_;
  std::uint64_t epoch_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Router r;
  r.on_failure();
  return 0;
}
