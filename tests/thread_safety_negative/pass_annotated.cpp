// Positive control for the thread-safety negative-compile suite: correctly
// locked code over the annotated util wrappers. Must compile with ZERO
// diagnostics under `clang -Wthread-safety -Werror=thread-safety` (proving
// the fail_*.cpp rejections are the analysis rejecting the *violations*,
// not the harness rejecting everything) and under any non-Clang compiler
// (proving the macro shim is a true no-op there). Registered by the root
// CMakeLists.txt; see docs/static-analysis.md.
#include <cstdint>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(std::int64_t amount) {
    is2::util::MutexLock lock(mutex_);
    balance_ += amount;
  }

  std::int64_t balance() const {
    is2::util::MutexLock lock(mutex_);
    return balance_;
  }

  // REQUIRES contract: the caller holds the lock; the analysis checks both
  // sides — this body may touch balance_, and callers must lock first.
  void apply_fee_locked(std::int64_t fee) REQUIRES(mutex_) { balance_ -= fee; }

  void apply_fee(std::int64_t fee) {
    is2::util::MutexLock lock(mutex_);
    apply_fee_locked(fee);
  }

  // EXCLUDES contract: documented lock-free entry point (it locks inside).
  void settle() EXCLUDES(mutex_) {
    is2::util::MutexLock lock(mutex_);
    balance_ = 0;
  }

 private:
  mutable is2::util::Mutex mutex_;
  std::int64_t balance_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.deposit(10);
  a.apply_fee(1);
  a.settle();
  return a.balance() == 0 ? 0 : 1;
}
