// MUST NOT compile under `clang -Werror=thread-safety`: releases a scoped
// lock mid-scope and then touches the guarded field anyway — the
// unlock()/relock() escape hatch on util::MutexLock is tracked by the
// analysis, so "forgot to re-lock" is a compile error, not a data race.
#include <cstdint>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Queue {
 public:
  void drain() {
    is2::util::MutexLock lock(mutex_);
    pending_ = 0;
    lock.unlock();
    // VIOLATION: guarded write after the mid-scope unlock, never re-locked.
    pending_ = 1;
  }

 private:
  is2::util::Mutex mutex_;
  std::uint64_t pending_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.drain();
  return 0;
}
