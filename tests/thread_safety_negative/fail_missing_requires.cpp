// MUST NOT compile under `clang -Werror=thread-safety`: calls a
// REQUIRES(mutex_) helper without holding the mutex — the exact bug class
// the `_locked()` suffix convention in src/serve/ exists to prevent.
#include <cstdint>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Ledger {
 public:
  void reset_locked() REQUIRES(mutex_) { total_ = 0; }

  // VIOLATION: locked-suffix helper called without the lock.
  void reset() { reset_locked(); }

 private:
  mutable is2::util::Mutex mutex_;
  std::uint64_t total_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Ledger l;
  l.reset();
  return 0;
}
