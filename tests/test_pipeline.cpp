// End-to-end integration tests on a tiny campaign: Table I metadata, scene
// generation, auto-labeling quality, training-data assembly, model training
// round trip, staged map-reduce jobs (incl. topology invariance) and
// determinism.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/campaign.hpp"
#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "h5lite/granule_io.hpp"
#include "label/drift.hpp"

namespace {

using namespace is2;
using atl03::SurfaceClass;

TEST(Campaign, TableOneMetadata) {
  const auto pairs = core::ross_sea_november_2019();
  ASSERT_EQ(pairs.size(), 8u);
  EXPECT_EQ(pairs[1].granule_id, "ATL03_20191104195311_05940510");
  EXPECT_EQ(pairs[7].granule_id, "ATL03_20191126182014_09290510");
  EXPECT_NEAR(pairs[0].dt_minutes, 9.55, 1e-9);
  EXPECT_NEAR(pairs[4].dt_minutes, 47.57, 1e-9);
  // All within the paper's < 2h window.
  for (const auto& p : pairs) {
    EXPECT_LT(p.dt_minutes, 120.0);
    EXPECT_NEAR(std::abs(p.s2_epoch_s - p.is2_epoch_s) / 60.0, p.dt_minutes, 1.0);
  }
  // Table I shift strings should render back to the paper's notation.
  EXPECT_EQ(label::describe_shift(pairs[0].s2_shift_applied), "550 m / NW");
  EXPECT_EQ(label::describe_shift(pairs[1].s2_shift_applied), "0 m");
  EXPECT_EQ(label::describe_shift(pairs[6].s2_shift_applied), "150 m / E");
  EXPECT_EQ(label::describe_shift(pairs[7].s2_shift_applied), "350 m / SW");
}

class TinyCampaign : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new core::PipelineConfig(core::PipelineConfig::tiny());
    campaign_ = new core::Campaign(*config_);
    pair_ = new core::PairDataset(campaign_->generate(1));  // pair 2: zero drift
  }
  static void TearDownTestSuite() {
    delete pair_;
    delete campaign_;
    delete config_;
    pair_ = nullptr;
    campaign_ = nullptr;
    config_ = nullptr;
  }

  static core::PipelineConfig* config_;
  static core::Campaign* campaign_;
  static core::PairDataset* pair_;
};

core::PipelineConfig* TinyCampaign::config_ = nullptr;
core::Campaign* TinyCampaign::campaign_ = nullptr;
core::PairDataset* TinyCampaign::pair_ = nullptr;

TEST_F(TinyCampaign, SceneGenerationSane) {
  EXPECT_GT(pair_->granule.total_photons(), 10'000u);
  EXPECT_EQ(pair_->granule.beams.size(), 3u);
  EXPECT_GT(pair_->segmentation_accuracy, 0.7);
  const auto frac = pair_->s2_labels.class_fractions();
  EXPECT_GT(frac[0], 0.3);  // thick ice majority on the usable raster
}

TEST_F(TinyCampaign, AutoLabelingBeatsNoise) {
  const auto labeled = core::label_pair(*pair_, campaign_->corrections(), *config_);
  ASSERT_EQ(labeled.labeled.size(), 3u);
  for (const auto& lb : labeled.labeled) {
    EXPECT_GT(lb.segments.size(), 1'000u);
    EXPECT_GT(lb.label_accuracy(), 0.80) << "beam label accuracy too low";
  }
}

TEST_F(TinyCampaign, DriftEstimationRecoversInjectedDrift) {
  // Pair 0 has a 550 m NW shift in Table I; regenerate it and estimate.
  const auto drifted = campaign_->generate(0);
  const auto labeled_est =
      core::label_pair(drifted, campaign_->corrections(), *config_, /*estimate=*/true);
  const auto labeled_true = core::label_pair(drifted, campaign_->corrections(), *config_);
  // Estimated-drift labeling should be close to true-drift labeling quality.
  double acc_est = 0.0, acc_true = 0.0;
  for (std::size_t b = 0; b < 3; ++b) {
    acc_est += labeled_est.labeled[b].label_accuracy();
    acc_true += labeled_true.labeled[b].label_accuracy();
  }
  EXPECT_GT(acc_est / 3.0, acc_true / 3.0 - 0.08);
}

TEST_F(TinyCampaign, TrainingDataAssemblyShapes) {
  const auto labeled = core::label_pair(*pair_, campaign_->corrections(), *config_);
  const auto data = core::assemble_training_data({labeled}, *config_);
  EXPECT_GT(data.train.size(), 1'000u);
  EXPECT_NEAR(static_cast<double>(data.train.size()) /
                  static_cast<double>(data.train.size() + data.test.size()),
              0.8, 0.01);
  EXPECT_EQ(data.train.x.t, config_->sequence_window);
  EXPECT_EQ(data.train.x.d, static_cast<std::size_t>(resample::FeatureRow::kDim));
  // Class imbalance: thick ice dominates.
  EXPECT_GT(data.class_counts[0], data.class_counts[1]);
  EXPECT_GT(data.class_counts[0], data.class_counts[2]);
}

TEST_F(TinyCampaign, TrainClassifyRoundTrip) {
  const auto labeled = core::label_pair(*pair_, campaign_->corrections(), *config_);
  const auto data = core::assemble_training_data({labeled}, *config_);

  util::Rng rng(1);
  nn::Sequential model = nn::make_mlp_model(config_->sequence_window, 6, rng);
  nn::Adam adam(0.003);
  nn::FocalLoss loss(2.0, nn::FocalLoss::balanced_alpha(data.train.y));
  nn::FitConfig fit;
  fit.epochs = 6;
  model.fit(data.train, loss, adam, fit);
  const auto metrics = model.evaluate(data.test);
  EXPECT_GT(metrics.accuracy, 0.85);

  // classify_segments end-to-end on one beam.
  const auto labels = core::classify_segments(model, data.scaler, labeled.labeled[0].features,
                                              config_->sequence_window);
  ASSERT_EQ(labels.size(), labeled.labeled[0].segments.size());
  std::size_t agree = 0, known = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labeled.labeled[0].segments[i].truth == SurfaceClass::Unknown) continue;
    ++known;
    if (labels[i] == labeled.labeled[0].segments[i].truth) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(known), 0.8);
}

TEST_F(TinyCampaign, ShardsRoundTripAndJobsAgreeAcrossTopologies) {
  const auto dir = std::filesystem::temp_directory_path() / "is2_shards_test";
  std::filesystem::create_directories(dir);
  core::ShardSet shards;
  core::write_shards(pair_->granule, 0, config_->chunks_per_beam, dir.string(), shards);
  ASSERT_EQ(shards.files.size(), 3u * config_->chunks_per_beam);

  // Shard photons together must equal the granule's photons.
  std::size_t shard_photons = 0;
  for (const auto& f : shards.files) shard_photons += h5::load_granule(f).total_photons();
  EXPECT_EQ(shard_photons, pair_->granule.total_photons());

  const std::vector<s2::ClassRaster> rasters{pair_->s2_labels};
  const std::vector<geo::Xy> drifts{pair_->pair.true_drift()};

  mapred::Engine serial({1, 1});
  mapred::Engine parallel({2, 2});
  const auto a = core::run_autolabel_job(serial, shards, rasters, drifts,
                                         campaign_->corrections(), *config_);
  const auto b = core::run_autolabel_job(parallel, shards, rasters, drifts,
                                         campaign_->corrections(), *config_);
  EXPECT_GT(a.segments, 5'000u);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.labeled, b.labeled);
  EXPECT_NEAR(a.label_accuracy, b.label_accuracy, 1e-12);
  EXPECT_GT(a.label_accuracy, 0.8);

  const auto fa = core::run_freeboard_job(serial, shards, rasters, drifts,
                                          campaign_->corrections(), *config_);
  const auto fb = core::run_freeboard_job(parallel, shards, rasters, drifts,
                                          campaign_->corrections(), *config_);
  EXPECT_EQ(fa.points, fb.points);
  EXPECT_GT(fa.points, 1'000u);
  EXPECT_NEAR(fa.mean_freeboard, fb.mean_freeboard, 1e-9);
  EXPECT_GT(fa.mean_freeboard, 0.05);
  EXPECT_LT(fa.mean_freeboard, 0.8);

  std::filesystem::remove_all(dir);
}

TEST_F(TinyCampaign, GenerationIsDeterministic) {
  const auto again = campaign_->generate(1);
  EXPECT_EQ(again.granule.total_photons(), pair_->granule.total_photons());
  const auto& a = again.granule.beam(atl03::BeamId::Gt2r);
  const auto& b = pair_->granule.beam(atl03::BeamId::Gt2r);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 997) EXPECT_DOUBLE_EQ(a.h[i], b.h[i]);
  EXPECT_EQ(again.s2_labels.data(), pair_->s2_labels.data());
}

}  // namespace
