// Threads-on vs threads-off determinism for every pipeline stage that runs
// under an OpenMP pragma (activated by IS2_ENABLE_OPENMP): label overlay,
// drift estimation, sentinel2 scene render, k-means and segmentation. Each
// test runs the same computation at 1 and 4 OpenMP threads and requires
// bit-identical results — the policy docs/performance.md documents (row-
// partitioned work, fixed-order reductions, no `reduction(+:float)`).
// Without OpenMP the pairs still guard run-to-run determinism.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <vector>

#include "atl03/surface_model.hpp"
#include "geo/polar_stereo.hpp"
#include "label/drift.hpp"
#include "label/overlay.hpp"
#include "sentinel2/kmeans.hpp"
#include "sentinel2/scene_sim.hpp"
#include "sentinel2/segmentation.hpp"
#include "util/rng.hpp"

namespace {

using namespace is2;
using atl03::SurfaceClass;

void set_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

int saved_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Striped raster + consistent segments (mirrors test_label's fixture).
s2::ClassRaster striped_raster(double stripe_m = 400.0, double pixel = 10.0) {
  s2::GeoTransform gt{0.0, 1'000.0, pixel};
  const auto cols = static_cast<std::size_t>(3.0 * stripe_m / pixel);
  s2::ClassRaster r(100, cols, gt);
  for (std::size_t row = 0; row < 100; ++row)
    for (std::size_t col = 0; col < cols; ++col) {
      const double x = gt.pixel_center(row, col).x;
      r.set(row, col,
            x < stripe_m         ? SurfaceClass::OpenWater
            : x < 2.0 * stripe_m ? SurfaceClass::ThinIce
                                 : SurfaceClass::ThickIce);
    }
  return r;
}

std::vector<resample::Segment> striped_segments(double stripe_m = 400.0, double shift_x = 0.0) {
  std::vector<resample::Segment> segs;
  for (double x = 1.0; x < 3.0 * stripe_m; x += 2.0) {
    resample::Segment s;
    s.s = x;
    s.x = x + shift_x;
    s.y = 500.0;
    s.h_mean = x < stripe_m ? 0.0 : x < 2 * stripe_m ? 0.06 : 0.45;
    s.h_std = 0.02;
    s.n_photons = 10;
    segs.push_back(s);
  }
  return segs;
}

struct SceneFixture {
  geo::GeoCorrections corrections{7};
  atl03::SurfaceConfig scfg;
  geo::GroundTrack track;
  atl03::SurfaceModel surface;

  SceneFixture()
      : track(geo::PolarStereo::epsg3976().forward({-160.0, -76.0}), 0.9),
        surface((scfg.length_m = 5'000.0, scfg), track, corrections, 77) {}
};

s2::Scene render_scene(const SceneFixture& fx, double cloud_cover) {
  s2::SceneConfig cfg;
  cfg.cross_track_halfwidth_m = 600.0;
  cfg.margin_m = 200.0;
  cfg.cloud_cover = cloud_cover;
  s2::SceneSimulator sim(cfg, 31);
  return sim.render(fx.surface, {120.0, -60.0}, 500.0);
}

TEST(ParallelDeterminism, OverlayLabels) {
  const auto raster = striped_raster();
  const auto segs = striped_segments();
  label::OverlayConfig cfg;
  cfg.vote_radius_px = 1;
  const int saved = saved_threads();
  set_threads(1);
  const auto a = label::overlay_labels(raster, segs, cfg);
  set_threads(4);
  const auto b = label::overlay_labels(raster, segs, cfg);
  set_threads(saved);
  EXPECT_EQ(a, b);
}

TEST(ParallelDeterminism, DriftEstimate) {
  const auto raster = striped_raster();
  const auto segs = striped_segments(400.0, -150.0);
  std::vector<double> baseline(segs.size(), 0.0);
  label::DriftConfig cfg;
  const int saved = saved_threads();
  set_threads(1);
  const auto a = label::estimate_drift(raster, segs, baseline, cfg);
  set_threads(4);
  const auto b = label::estimate_drift(raster, segs, baseline, cfg);
  set_threads(saved);
  EXPECT_EQ(a.shift.x, b.shift.x);
  EXPECT_EQ(a.shift.y, b.shift.y);
  EXPECT_EQ(a.score, b.score);
  EXPECT_EQ(a.score_unshifted, b.score_unshifted);
}

TEST(ParallelDeterminism, SceneRender) {
  SceneFixture fx;
  const int saved = saved_threads();
  set_threads(1);
  const auto a = render_scene(fx, 0.25);
  set_threads(4);
  const auto b = render_scene(fx, 0.25);
  set_threads(saved);
  ASSERT_EQ(a.image.rows(), b.image.rows());
  ASSERT_EQ(a.image.cols(), b.image.cols());
  for (int band = 0; band < s2::kNumBands; ++band) {
    const float* ab = a.image.band_data(static_cast<s2::Band>(band));
    const float* bb = b.image.band_data(static_cast<s2::Band>(band));
    for (std::size_t i = 0; i < a.image.pixel_count(); ++i)
      ASSERT_EQ(ab[i], bb[i]) << "band " << band << " px " << i;
  }
  EXPECT_EQ(a.cloud_tau, b.cloud_tau);
  for (std::size_t r = 0; r < a.truth_class.rows(); ++r)
    for (std::size_t c = 0; c < a.truth_class.cols(); ++c)
      ASSERT_EQ(a.truth_class.at(r, c), b.truth_class.at(r, c));
}

TEST(ParallelDeterminism, KMeansInertiaAndLabels) {
  // The inertia reduction is the one float reduction among the parallel
  // sites; it must be bit-identical across thread counts (fixed-order sum).
  util::Rng rng(5);
  std::vector<float> points(3 * 4000);
  for (auto& v : points) v = static_cast<float>(rng.uniform(0.0, 1.0));
  const int saved = saved_threads();
  set_threads(1);
  const auto a = s2::kmeans(points, 3, 5, util::Rng(11), 25);
  set_threads(4);
  const auto b = s2::kmeans(points, 3, 5, util::Rng(11), 25);
  set_threads(saved);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_EQ(a.inertia, b.inertia);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(ParallelDeterminism, Segmentation) {
  SceneFixture fx;
  const auto scene = render_scene(fx, 0.3);
  s2::SegmentationConfig cfg;
  const int saved = saved_threads();
  set_threads(1);
  const auto a = s2::segment(scene.image, cfg);
  set_threads(4);
  const auto b = s2::segment(scene.image, cfg);
  set_threads(saved);
  EXPECT_EQ(a.thick_cloud_pixels, b.thick_cloud_pixels);
  EXPECT_EQ(a.thin_cloud_corrected, b.thin_cloud_corrected);
  EXPECT_EQ(a.shadow_corrected, b.shadow_corrected);
  ASSERT_EQ(a.labels.rows(), b.labels.rows());
  ASSERT_EQ(a.labels.cols(), b.labels.cols());
  for (std::size_t r = 0; r < a.labels.rows(); ++r)
    for (std::size_t c = 0; c < a.labels.cols(); ++c)
      ASSERT_EQ(a.labels.at(r, c), b.labels.at(r, c));
}

}  // namespace
