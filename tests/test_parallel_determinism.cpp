// Threads-on vs threads-off determinism for every pipeline stage that runs
// under an OpenMP pragma (activated by IS2_ENABLE_OPENMP): label overlay,
// drift estimation, sentinel2 scene render, k-means and segmentation. Each
// test runs the same computation at 1 and 4 OpenMP threads and requires
// bit-identical results — the policy docs/performance.md documents (row-
// partitioned work, fixed-order reductions, no `reduction(+:float)`).
// Without OpenMP the pairs still guard run-to-run determinism.
//
// The dist tests extend the same policy to the rank-threaded training
// substrate: ring all-reduce results must not depend on rank arrival order,
// and a full 4-rank training run must be bit-reproducible.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "atl03/surface_model.hpp"
#include "dist/comm.hpp"
#include "dist/trainer.hpp"
#include "geo/polar_stereo.hpp"
#include "label/drift.hpp"
#include "label/overlay.hpp"
#include "nn/model.hpp"
#include "sentinel2/kmeans.hpp"
#include "sentinel2/scene_sim.hpp"
#include "sentinel2/segmentation.hpp"
#include "util/rng.hpp"

namespace {

using namespace is2;
using atl03::SurfaceClass;

void set_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

int saved_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Striped raster + consistent segments (mirrors test_label's fixture).
s2::ClassRaster striped_raster(double stripe_m = 400.0, double pixel = 10.0) {
  s2::GeoTransform gt{0.0, 1'000.0, pixel};
  const auto cols = static_cast<std::size_t>(3.0 * stripe_m / pixel);
  s2::ClassRaster r(100, cols, gt);
  for (std::size_t row = 0; row < 100; ++row)
    for (std::size_t col = 0; col < cols; ++col) {
      const double x = gt.pixel_center(row, col).x;
      r.set(row, col,
            x < stripe_m         ? SurfaceClass::OpenWater
            : x < 2.0 * stripe_m ? SurfaceClass::ThinIce
                                 : SurfaceClass::ThickIce);
    }
  return r;
}

std::vector<resample::Segment> striped_segments(double stripe_m = 400.0, double shift_x = 0.0) {
  std::vector<resample::Segment> segs;
  for (double x = 1.0; x < 3.0 * stripe_m; x += 2.0) {
    resample::Segment s;
    s.s = x;
    s.x = x + shift_x;
    s.y = 500.0;
    s.h_mean = x < stripe_m ? 0.0 : x < 2 * stripe_m ? 0.06 : 0.45;
    s.h_std = 0.02;
    s.n_photons = 10;
    segs.push_back(s);
  }
  return segs;
}

struct SceneFixture {
  geo::GeoCorrections corrections{7};
  atl03::SurfaceConfig scfg;
  geo::GroundTrack track;
  atl03::SurfaceModel surface;

  SceneFixture()
      : track(geo::PolarStereo::epsg3976().forward({-160.0, -76.0}), 0.9),
        surface((scfg.length_m = 5'000.0, scfg), track, corrections, 77) {}
};

s2::Scene render_scene(const SceneFixture& fx, double cloud_cover) {
  s2::SceneConfig cfg;
  cfg.cross_track_halfwidth_m = 600.0;
  cfg.margin_m = 200.0;
  cfg.cloud_cover = cloud_cover;
  s2::SceneSimulator sim(cfg, 31);
  return sim.render(fx.surface, {120.0, -60.0}, 500.0);
}

TEST(ParallelDeterminism, OverlayLabels) {
  const auto raster = striped_raster();
  const auto segs = striped_segments();
  label::OverlayConfig cfg;
  cfg.vote_radius_px = 1;
  const int saved = saved_threads();
  set_threads(1);
  const auto a = label::overlay_labels(raster, segs, cfg);
  set_threads(4);
  const auto b = label::overlay_labels(raster, segs, cfg);
  set_threads(saved);
  EXPECT_EQ(a, b);
}

TEST(ParallelDeterminism, DriftEstimate) {
  const auto raster = striped_raster();
  const auto segs = striped_segments(400.0, -150.0);
  std::vector<double> baseline(segs.size(), 0.0);
  label::DriftConfig cfg;
  const int saved = saved_threads();
  set_threads(1);
  const auto a = label::estimate_drift(raster, segs, baseline, cfg);
  set_threads(4);
  const auto b = label::estimate_drift(raster, segs, baseline, cfg);
  set_threads(saved);
  EXPECT_EQ(a.shift.x, b.shift.x);
  EXPECT_EQ(a.shift.y, b.shift.y);
  EXPECT_EQ(a.score, b.score);
  EXPECT_EQ(a.score_unshifted, b.score_unshifted);
}

TEST(ParallelDeterminism, SceneRender) {
  SceneFixture fx;
  const int saved = saved_threads();
  set_threads(1);
  const auto a = render_scene(fx, 0.25);
  set_threads(4);
  const auto b = render_scene(fx, 0.25);
  set_threads(saved);
  ASSERT_EQ(a.image.rows(), b.image.rows());
  ASSERT_EQ(a.image.cols(), b.image.cols());
  for (int band = 0; band < s2::kNumBands; ++band) {
    const float* ab = a.image.band_data(static_cast<s2::Band>(band));
    const float* bb = b.image.band_data(static_cast<s2::Band>(band));
    for (std::size_t i = 0; i < a.image.pixel_count(); ++i)
      ASSERT_EQ(ab[i], bb[i]) << "band " << band << " px " << i;
  }
  EXPECT_EQ(a.cloud_tau, b.cloud_tau);
  for (std::size_t r = 0; r < a.truth_class.rows(); ++r)
    for (std::size_t c = 0; c < a.truth_class.cols(); ++c)
      ASSERT_EQ(a.truth_class.at(r, c), b.truth_class.at(r, c));
}

TEST(ParallelDeterminism, KMeansInertiaAndLabels) {
  // The inertia reduction is the one float reduction among the parallel
  // sites; it must be bit-identical across thread counts (fixed-order sum).
  util::Rng rng(5);
  std::vector<float> points(3 * 4000);
  for (auto& v : points) v = static_cast<float>(rng.uniform(0.0, 1.0));
  const int saved = saved_threads();
  set_threads(1);
  const auto a = s2::kmeans(points, 3, 5, util::Rng(11), 25);
  set_threads(4);
  const auto b = s2::kmeans(points, 3, 5, util::Rng(11), 25);
  set_threads(saved);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_EQ(a.inertia, b.inertia);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(ParallelDeterminism, Segmentation) {
  SceneFixture fx;
  const auto scene = render_scene(fx, 0.3);
  s2::SegmentationConfig cfg;
  const int saved = saved_threads();
  set_threads(1);
  const auto a = s2::segment(scene.image, cfg);
  set_threads(4);
  const auto b = s2::segment(scene.image, cfg);
  set_threads(saved);
  EXPECT_EQ(a.thick_cloud_pixels, b.thick_cloud_pixels);
  EXPECT_EQ(a.thin_cloud_corrected, b.thin_cloud_corrected);
  EXPECT_EQ(a.shadow_corrected, b.shadow_corrected);
  ASSERT_EQ(a.labels.rows(), b.labels.rows());
  ASSERT_EQ(a.labels.cols(), b.labels.cols());
  for (std::size_t r = 0; r < a.labels.rows(); ++r)
    for (std::size_t c = 0; c < a.labels.cols(); ++c)
      ASSERT_EQ(a.labels.at(r, c), b.labels.at(r, c));
}

TEST(ParallelDeterminism, AllreduceArrivalOrderIndependent) {
  // The ring parenthesizes each chunk's sum by topology, not by arrival:
  // staggering rank start times must not change a single bit, and all
  // ranks must end byte-identical.
  const int ranks = 4;
  const std::size_t len = 1'000;
  auto run = [&](bool staggered) {
    dist::Communicator comm(ranks);
    std::vector<std::vector<float>> bufs(ranks);
    for (int r = 0; r < ranks; ++r) {
      util::Rng rng(200 + static_cast<std::uint64_t>(r));
      bufs[static_cast<std::size_t>(r)].resize(len);
      for (auto& v : bufs[static_cast<std::size_t>(r)])
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    std::vector<std::thread> threads;
    for (int r = 0; r < ranks; ++r)
      threads.emplace_back([&, r] {
        if (staggered) std::this_thread::sleep_for(std::chrono::milliseconds(3 * r));
        comm.allreduce_sum(r, bufs[static_cast<std::size_t>(r)]);
      });
    for (auto& t : threads) t.join();
    return bufs;
  };
  const auto together = run(false);
  const auto staggered = run(true);
  for (int r = 0; r < ranks; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    ASSERT_EQ(0, std::memcmp(together[ur].data(), staggered[ur].data(), len * sizeof(float)))
        << "rank " << r << " differs between simultaneous and staggered starts";
    ASSERT_EQ(0, std::memcmp(together[0].data(), together[ur].data(), len * sizeof(float)))
        << "rank " << r << " diverged from rank 0";
  }
}

TEST(ParallelDeterminism, DistTrainFourRanksBitIdentical) {
  // Two full 4-rank training runs must produce bit-identical final weights:
  // shared shuffle streams, fixed bucket boundaries and ring-ordered
  // reductions leave no scheduling-dependent float op anywhere.
  util::Rng drng(31);
  nn::Dataset train;
  train.x = nn::Tensor3(600, 5, 6);
  train.y.resize(600);
  for (std::size_t i = 0; i < 600; ++i) {
    const auto cls = static_cast<std::uint8_t>(drng.uniform_int(0, 2));
    for (std::size_t t = 0; t < 5; ++t) {
      float* row = train.x.at(i, t);
      for (int f = 0; f < 6; ++f) row[f] = static_cast<float>(drng.normal(cls * 1.0, 0.5));
    }
    train.y[i] = cls;
  }
  const auto test = train;  // evaluation set is irrelevant to the weights

  auto run = [&] {
    dist::TrainerConfig cfg;
    cfg.ranks = 4;
    cfg.epochs = 3;
    return dist::train_distributed(
        [] {
          util::Rng rng(33);
          return nn::make_mlp_model(5, 6, rng);
        },
        train, test, cfg);
  };
  auto a = run();
  auto b = run();
  auto pa = a.model.params();
  auto pb = b.model.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].value->size(), pb[i].value->size());
    ASSERT_EQ(0, std::memcmp(pa[i].value->data(), pb[i].value->data(),
                             pa[i].value->size() * sizeof(float)))
        << "parameter " << pa[i].name << " differs between identical runs";
  }
  EXPECT_EQ(a.test_metrics.accuracy, b.test_metrics.accuracy);
}

}  // namespace
