// Baseline tests: CART decision tree, ATL07 150-photon aggregation and
// classification, ATL10 reference surface and freeboard.
#include <gtest/gtest.h>

#include <cmath>

#include "atl03/photon_sim.hpp"
#include "atl03/preprocess.hpp"
#include "baseline/atl07.hpp"
#include "baseline/atl10.hpp"
#include "baseline/decision_tree.hpp"
#include "geo/polar_stereo.hpp"
#include "util/rng.hpp"

namespace {

using namespace is2;
using atl03::SurfaceClass;
using baseline::DecisionTree;

TEST(DecisionTree, LearnsAxisAlignedRule) {
  // y = (x0 > 0.5) + (x1 > 0.5), 3 classes; fully learnable by a depth-2 tree.
  util::Rng rng(1);
  std::vector<float> x;
  std::vector<std::uint8_t> y;
  for (int i = 0; i < 2'000; ++i) {
    const float a = static_cast<float>(rng.uniform());
    const float b = static_cast<float>(rng.uniform());
    x.push_back(a);
    x.push_back(b);
    y.push_back(static_cast<std::uint8_t>((a > 0.5f) + (b > 0.5f)));
  }
  DecisionTree tree;
  tree.fit(x, 2, y, 3);
  const auto pred = tree.predict_batch(x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    if (pred[i] == y[i]) ++correct;
  EXPECT_GT(static_cast<double>(correct) / y.size(), 0.97);
  EXPECT_GT(tree.node_count(), 3u);
  EXPECT_TRUE(tree.trained());
}

TEST(DecisionTree, RespectsMaxDepth) {
  util::Rng rng(2);
  std::vector<float> x;
  std::vector<std::uint8_t> y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(static_cast<float>(rng.uniform()));
    y.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 2)));
  }
  baseline::TreeConfig cfg;
  cfg.max_depth = 2;
  DecisionTree tree;
  tree.fit(x, 1, y, 3, cfg);
  EXPECT_LE(tree.depth(), 2);
}

TEST(DecisionTree, ErrorPaths) {
  DecisionTree tree;
  EXPECT_THROW(tree.predict_batch({1.0f}), std::invalid_argument);
  EXPECT_THROW(tree.fit({1.0f, 2.0f}, 2, {0, 1}, 2), std::invalid_argument);
  std::vector<std::uint8_t> empty_y;
  EXPECT_THROW(tree.fit({}, 1, empty_y, 2), std::invalid_argument);
}

struct Atl07Fixture {
  geo::GeoCorrections corrections{7};
  atl03::SurfaceConfig scfg;
  geo::GroundTrack track;
  atl03::SurfaceModel surface;
  atl03::Granule granule;
  atl03::PreprocessedBeam pre;

  explicit Atl07Fixture(double length = 30'000.0)
      : track(geo::PolarStereo::epsg3976().forward({-172.0, -74.0}), 2.0),
        surface((scfg.length_m = length, scfg), track, corrections, 61),
        granule(atl03::PhotonSimulator(atl03::InstrumentConfig{}, 62)
                    .simulate_granule(surface, "ATL03_BASE", 0.0, {atl03::BeamId::Gt2r})),
        pre(atl03::preprocess_beam(granule, granule.beam(atl03::BeamId::Gt2r), corrections)) {}
};

TEST(Atl07, AggregatesFixedPhotonCounts) {
  Atl07Fixture fx;
  const auto product = baseline::build_atl07(fx.pre);
  ASSERT_FALSE(product.segments.empty());
  for (const auto& seg : product.segments) EXPECT_EQ(seg.n_photons, 150u);
  // Expected segment count = photons / 150.
  EXPECT_EQ(product.segments.size(), fx.pre.size() / 150);
}

TEST(Atl07, SegmentsMuchCoarserThan2m) {
  Atl07Fixture fx;
  const auto product = baseline::build_atl07(fx.pre);
  const double mean_len = product.mean_segment_length();
  EXPECT_GT(mean_len, 10.0);   // the paper's resolution argument:
  EXPECT_LT(mean_len, 400.0);  // 150-photon segments are 10-200+ m
}

TEST(Atl07, SegmentLengthInverseToBrightness) {
  // Bright (thick ice) segments need less distance to accumulate 150
  // photons than dark (open water) ones.
  Atl07Fixture fx(60'000.0);
  const auto product = baseline::build_atl07(fx.pre);
  double len_thick = 0.0, len_water = 0.0;
  std::size_t n_thick = 0, n_water = 0;
  for (const auto& seg : product.segments) {
    if (seg.truth == SurfaceClass::ThickIce) {
      len_thick += seg.length;
      ++n_thick;
    } else if (seg.truth == SurfaceClass::OpenWater) {
      len_water += seg.length;
      ++n_water;
    }
  }
  ASSERT_GT(n_thick, 10u);
  ASSERT_GT(n_water, 0u);
  EXPECT_LT(len_thick / n_thick, len_water / n_water);
}

TEST(Atl07, RuleClassifierBeatsChance) {
  Atl07Fixture fx(60'000.0);
  const auto product = baseline::build_atl07(fx.pre);
  EXPECT_GT(product.classification_accuracy(), 0.75);
}

TEST(Atl10, ReferenceSurfaceNearTruth) {
  Atl07Fixture fx(60'000.0);
  const auto atl07 = baseline::build_atl07(fx.pre);
  const auto atl10 = baseline::build_atl10(atl07);
  ASSERT_FALSE(atl10.section_ref_height.empty());
  // Reference heights should sit near the corrected sea level (~0 after
  // geophysical correction, within the residual SSH scale).
  for (double h : atl10.section_ref_height) EXPECT_LT(std::abs(h), 0.5);
}

TEST(Atl10, FreeboardsMostlyPositiveAndBounded) {
  Atl07Fixture fx(60'000.0);
  const auto atl10 = baseline::build_atl10(baseline::build_atl07(fx.pre));
  ASSERT_FALSE(atl10.freeboards.empty());
  std::size_t positive = 0;
  for (const auto& fb : atl10.freeboards) {
    EXPECT_GT(fb.freeboard, -1.0);
    EXPECT_LT(fb.freeboard, 10.0);
    if (fb.freeboard > -0.05) ++positive;
  }
  EXPECT_GT(static_cast<double>(positive) / atl10.freeboards.size(), 0.9);
}

TEST(Atl10, ThickIceFreeboardExceedsWater) {
  Atl07Fixture fx(60'000.0);
  const auto atl10 = baseline::build_atl10(baseline::build_atl07(fx.pre));
  double fb_thick = 0.0, fb_water = 0.0;
  std::size_t n_thick = 0, n_water = 0;
  for (const auto& fb : atl10.freeboards) {
    if (fb.type == SurfaceClass::ThickIce) {
      fb_thick += fb.freeboard;
      ++n_thick;
    } else if (fb.type == SurfaceClass::OpenWater) {
      fb_water += fb.freeboard;
      ++n_water;
    }
  }
  ASSERT_GT(n_thick, 0u);
  ASSERT_GT(n_water, 0u);
  EXPECT_GT(fb_thick / n_thick, fb_water / n_water + 0.1);
}

TEST(Atl10, EmptyInputHandled) {
  const baseline::Atl07Product empty;
  const auto atl10 = baseline::build_atl10(empty);
  EXPECT_TRUE(atl10.freeboards.empty());
}

}  // namespace
