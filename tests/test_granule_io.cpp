// Granule <-> h5lite container round-trip tests (the ATL03 product schema).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "atl03/photon_sim.hpp"
#include "geo/polar_stereo.hpp"
#include "h5lite/granule_io.hpp"

namespace {

using namespace is2;
using atl03::BeamId;

atl03::Granule make_granule(double length = 2'000.0) {
  static const geo::GeoCorrections corrections(7);
  atl03::SurfaceConfig scfg;
  scfg.length_m = length;
  const geo::GroundTrack track(geo::PolarStereo::epsg3976().forward({-166.0, -74.2}), 0.8);
  const atl03::SurfaceModel surface(scfg, track, corrections, 3);
  return atl03::PhotonSimulator(atl03::InstrumentConfig{}, 4)
      .simulate_granule(surface, "ATL03_20191104195311_05940510", 123.0);
}

TEST(GranuleIo, InMemoryRoundTripExact) {
  const auto g = make_granule();
  const auto g2 = h5::from_file(h5::to_file(g));
  EXPECT_EQ(g2.id, g.id);
  EXPECT_DOUBLE_EQ(g2.epoch_time, g.epoch_time);
  EXPECT_DOUBLE_EQ(g2.track_origin.x, g.track_origin.x);
  EXPECT_DOUBLE_EQ(g2.track_heading, g.track_heading);
  EXPECT_DOUBLE_EQ(g2.track_length, g.track_length);
  EXPECT_EQ(g2.seed, g.seed);
  ASSERT_EQ(g2.beams.size(), g.beams.size());
  for (std::size_t b = 0; b < g.beams.size(); ++b) {
    const auto& x = g.beams[b];
    const auto& y = g2.beams[b];
    EXPECT_EQ(x.beam, y.beam);
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t i = 0; i < x.size(); i += 53) {
      EXPECT_DOUBLE_EQ(x.h[i], y.h[i]);
      EXPECT_DOUBLE_EQ(x.lat[i], y.lat[i]);
      EXPECT_DOUBLE_EQ(x.lon[i], y.lon[i]);
      EXPECT_DOUBLE_EQ(x.delta_time[i], y.delta_time[i]);
      EXPECT_DOUBLE_EQ(x.along_track[i], y.along_track[i]);
      EXPECT_EQ(x.signal_conf[i], y.signal_conf[i]);
      EXPECT_EQ(x.truth_class[i], y.truth_class[i]);
    }
    EXPECT_EQ(x.bckgrd_rate, y.bckgrd_rate);
  }
}

TEST(GranuleIo, DiskRoundTrip) {
  const auto g = make_granule(1'000.0);
  const std::string path =
      (std::filesystem::temp_directory_path() / "is2_granule_io.h5l").string();
  h5::save_granule(g, path);
  const auto g2 = h5::load_granule(path);
  EXPECT_EQ(g2.id, g.id);
  EXPECT_EQ(g2.total_photons(), g.total_photons());
  std::remove(path.c_str());
}

TEST(GranuleIo, ReadGranuleMetaMatchesFullLoadWithoutDecoding) {
  const auto g = make_granule(1'000.0);
  const std::string path =
      (std::filesystem::temp_directory_path() / "is2_granule_meta.h5l").string();
  h5::save_granule(g, path);

  const auto full_loads_before = h5::load_granule_call_count();
  const h5::GranuleMeta meta = h5::read_granule_meta(path);
  EXPECT_EQ(h5::load_granule_call_count(), full_loads_before);  // header scan only

  EXPECT_EQ(meta.id, g.id);
  ASSERT_EQ(meta.beams.size(), g.beams.size());
  for (std::size_t b = 0; b < g.beams.size(); ++b) {
    EXPECT_EQ(meta.beams[b].beam, g.beams[b].beam);
    EXPECT_EQ(meta.beams[b].n_photons, g.beams[b].size());
    const auto* found = meta.find(g.beams[b].beam);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->n_photons, g.beams[b].size());
  }
  EXPECT_EQ(meta.payload_bytes, h5::to_file(g).payload_bytes());
  EXPECT_EQ(meta.find(BeamId::Gt1l), nullptr);  // weak beams not simulated

  std::remove(path.c_str());
  EXPECT_THROW(h5::read_granule_meta(path), h5::H5Error);
}

TEST(GranuleIo, ReadGranuleMetaRejectsBeamlessFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "is2_granule_meta_empty.h5l").string();
  h5::File f;
  f.set_attr("/ancillary_data/granule_id", std::string("empty"));
  f.save(path);
  EXPECT_THROW(h5::read_granule_meta(path), h5::H5Error);
  std::remove(path.c_str());
}

TEST(GranuleIo, SchemaUsesAtl03Paths) {
  const auto f = h5::to_file(make_granule(500.0));
  EXPECT_TRUE(f.contains("/gt2r/heights/h_ph"));
  EXPECT_TRUE(f.contains("/gt2r/heights/lat_ph"));
  EXPECT_TRUE(f.contains("/gt2r/heights/signal_conf_ph"));
  EXPECT_TRUE(f.contains("/gt2r/bckgrd_atlas/bckgrd_rate"));
  EXPECT_TRUE(f.contains("/gt1r/heights/h_ph"));
  EXPECT_TRUE(f.has_attr("/ancillary_data/granule_id"));
}

TEST(GranuleIo, TruthlessGranuleSupported) {
  auto g = make_granule(500.0);
  for (auto& b : g.beams) b.truth_class.clear();  // as real ATL03 would be
  const auto g2 = h5::from_file(h5::to_file(g));
  for (const auto& b : g2.beams) EXPECT_TRUE(b.truth_class.empty());
}

TEST(GranuleIo, FileWithoutBeamsRejected) {
  h5::File f;
  f.set_attr("/ancillary_data/granule_id", std::string("x"));
  f.set_attr("/ancillary_data/epoch_time", 0.0);
  f.set_attr("/ancillary_data/track_origin_x", 0.0);
  f.set_attr("/ancillary_data/track_origin_y", 0.0);
  f.set_attr("/ancillary_data/track_heading", 0.0);
  f.set_attr("/ancillary_data/track_length", 0.0);
  f.set_attr("/ancillary_data/scene_seed", std::int64_t{0});
  EXPECT_THROW(h5::from_file(f), h5::H5Error);
}

TEST(GranuleIo, InconsistentBeamRejectedOnSave) {
  auto g = make_granule(500.0);
  g.beams[0].h.pop_back();  // break array-length invariant
  EXPECT_THROW(h5::to_file(g), std::invalid_argument);
}

}  // namespace
