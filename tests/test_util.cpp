// Unit tests for util: RNG determinism/distributions, statistics, the
// rolling-percentile engine, the thread pool and the table renderer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <set>

#include "util/rng.hpp"
#include "util/rolling_percentile.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace is2::util;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIndependentAndReproducible) {
  Rng parent(7);
  Rng f1 = parent.fork(1);
  Rng f1_again = Rng(7).fork(1);
  Rng f2 = parent.fork(2);
  EXPECT_EQ(f1.next(), f1_again.next());
  EXPECT_NE(f1.next(), f2.next());
}

TEST(Rng, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveRangeCoversAll) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 200'000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(12);
  for (double mean : {0.3, 2.0, 10.0, 100.0}) {
    RunningStats s;
    for (int i = 0; i < 50'000; ++i) s.add(rng.poisson(mean));
    EXPECT_NEAR(s.mean(), mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 100'000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(14);
  std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / 100'000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 100'000.0, 0.6, 0.02);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(15);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({1.0, -0.5}), std::invalid_argument);
}

TEST(RunningStats, MatchesBatchFormulas) {
  Rng rng(21);
  RunningStats rs;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    rs.add(x);
    xs.push_back(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-9);
  EXPECT_EQ(rs.count(), xs.size());
}

TEST(RunningStats, MergeEqualsConcatenation) {
  Rng rng(22);
  RunningStats a, b, whole;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1, 1);
    a.add(x);
    whole.add(x);
  }
  for (int i = 0; i < 700; ++i) {
    const double x = rng.normal(3, 1);
    b.add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(Stats, MedianAndPercentile) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, PercentileMatchesSortedReference) {
  // Regression for the nth_element-based percentile: must stay bit-identical
  // to the full-sort + linear-interpolation definition.
  Rng rng(41);
  for (const int n : {1, 2, 3, 5, 10, 101, 256}) {
    std::vector<double> xs(static_cast<std::size_t>(n));
    for (auto& x : xs) x = rng.normal(0.0, 5.0);
    if (n > 2) xs[1] = xs[static_cast<std::size_t>(n) - 1];  // exercise ties
    for (const double p : {0.0, 1.0, 25.0, 50.0, 66.6, 99.0, 100.0}) {
      std::vector<double> v = xs;
      std::sort(v.begin(), v.end());
      const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
      const auto lo = static_cast<std::size_t>(rank);
      const auto hi = std::min(lo + 1, v.size() - 1);
      const double frac = rank - static_cast<double>(lo);
      const double want = v[lo] * (1.0 - frac) + v[hi] * frac;
      EXPECT_EQ(percentile(xs, p), want) << "n=" << n << " p=" << p;
    }
  }
}

TEST(RollingPercentile, MatchesBatchPercentileUnderSlidingWindow) {
  // Property test: under a random grow/shrink window over a random series
  // (with exact duplicates), every query must be bit-identical to
  // util::percentile over the same window contents.
  Rng rng(31);
  for (const double p : {0.0, 5.0, 37.5, 50.0, 93.0, 100.0}) {
    RollingPercentile rp(p);
    std::deque<double> window;
    std::vector<double> series;
    for (int i = 0; i < 800; ++i)
      series.push_back(rng.uniform() < 0.15 ? -1.25 : rng.normal(0.0, 1.0));
    std::size_t lo = 0;
    for (std::size_t hi = 0; hi < series.size(); ++hi) {
      rp.insert(series[hi]);
      window.push_back(series[hi]);
      while (lo < hi && rng.uniform() < 0.4) {
        rp.erase(series[lo]);
        window.pop_front();
        ++lo;
      }
      ASSERT_EQ(rp.size(), window.size());
      const std::vector<double> contents(window.begin(), window.end());
      ASSERT_EQ(rp.query(), percentile(contents, p)) << "p=" << p << " step=" << hi;
    }
  }
}

TEST(RollingPercentile, EdgeCasesAndErrors) {
  EXPECT_THROW(RollingPercentile(-1.0), std::invalid_argument);
  EXPECT_THROW(RollingPercentile(100.5), std::invalid_argument);

  RollingPercentile rp(50.0);
  EXPECT_TRUE(rp.empty());
  EXPECT_EQ(rp.query(), 0.0);  // mirrors util::percentile on an empty span
  EXPECT_THROW(rp.erase(1.0), std::invalid_argument);

  rp.insert(3.5);
  EXPECT_EQ(rp.size(), 1u);
  EXPECT_EQ(rp.query(), 3.5);
  EXPECT_THROW(rp.erase(3.4999), std::invalid_argument);  // value must match

  rp.insert(3.5);  // duplicate values coexist
  rp.erase(3.5);
  EXPECT_EQ(rp.query(), 3.5);
  rp.clear();
  EXPECT_TRUE(rp.empty());
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4}, y{2, 4, 6, 8}, z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.05);   // bin 0
  h.add(0.95);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(99.0);   // clamps to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_NEAR(h.bin_center(0), 0.05, 1e-12);
}

TEST(Histogram, ModeAndDensity) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 10; ++i) h.add(0.6);
  h.add(0.1);
  EXPECT_NEAR(h.mode(), 0.625, 1e-12);
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) integral += h.density(b) * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, NanSamplesCountedNotBinned) {
  // Regression: std::floor(NaN) used to flow through clamp (all comparisons
  // false) into an undefined float -> ptrdiff_t cast.
  Histogram h(0.0, 1.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(0.5);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.nan_count(), 1u);
  std::size_t binned = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) binned += h.count(b);
  EXPECT_EQ(binned, 1u);

  Histogram other(0.0, 1.0, 4);
  other.add(std::nan(""));
  h.merge(other);
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.total(), 1u);

  // +/-inf are ordinary out-of-range samples: clamp to the edge bins.
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.nan_count(), 2u);
}

TEST(Histogram, MergeRequiresSameBinning) {
  Histogram a(0, 1, 4), b(0, 1, 4), c(0, 2, 4);
  a.add(0.5);
  b.add(0.7);
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 41; });
  auto f2 = pool.submit([] { return 1; });
  EXPECT_EQ(f1.get() + f2.get(), 42);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10, [](std::size_t i) {
        if (i == 5) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(ThreadPool, ThrowingTaskDoesNotLeaveDanglingWorkers) {
  // Regression: parallel_for used to rethrow a task exception from the first
  // future while sibling workers still referenced the call frame's shared
  // counter, leaving them spinning on (or crashing over) dangling stack
  // memory. Repeat to give the race room to show up.
  for (int rep = 0; rep < 100; ++rep) {
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallel_for(64,
                                   [&](std::size_t i) {
                                     ran.fetch_add(1);
                                     if (i == 3) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    EXPECT_GE(ran.load(), 1);
  }
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  // Regression: a zero-thread pool used to be constructible in callers that
  // sized pools from hardware_concurrency() (which may report 0), and every
  // submit()/parallel_for() on it would then hang forever.
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);

  auto f = pool.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);

  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(Table, RendersHeaderAndRows) {
  Table t("Demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row_numeric({3.14159, 2.71828}, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("a,bb"), std::string::npos);
}

}  // namespace
