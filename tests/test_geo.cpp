// Projection, correction-model and track-geometry tests, including the
// round-trip property sweep over the Ross Sea (and wider Antarctic) grid.
#include <gtest/gtest.h>

#include <cmath>

#include "geo/corrections.hpp"
#include "geo/polar_stereo.hpp"
#include "geo/track.hpp"
#include "geo/wgs84.hpp"

namespace {

using namespace is2::geo;

TEST(PolarStereo, ScaleIsUnityAtStandardParallel) {
  const PolarStereo p = PolarStereo::epsg3976();
  EXPECT_NEAR(p.scale_factor(-70.0), 1.0, 1e-12);
  // Scale grows away from the standard parallel toward the equator side and
  // shrinks slightly toward the pole.
  EXPECT_GT(p.scale_factor(-60.0), 1.0);
  EXPECT_LT(p.scale_factor(-85.0), 1.0);
}

TEST(PolarStereo, PoleMapsToOrigin) {
  const PolarStereo p = PolarStereo::epsg3976();
  const Xy xy = p.forward({0.0, -90.0});
  EXPECT_NEAR(xy.x, 0.0, 1e-6);
  EXPECT_NEAR(xy.y, 0.0, 1e-6);
}

TEST(PolarStereo, KnownDistanceFromPole) {
  // At lat -70 the distance from the pole is ~2,215 km for this projection
  // family (sanity envelope, not an authoritative test vector).
  const PolarStereo p = PolarStereo::epsg3976();
  const Xy xy = p.forward({0.0, -70.0});
  const double rho = std::hypot(xy.x, xy.y);
  EXPECT_GT(rho, 2.10e6);
  EXPECT_LT(rho, 2.30e6);
}

TEST(PolarStereo, LongitudeRotatesPosition) {
  const PolarStereo p = PolarStereo::epsg3976();
  const Xy a = p.forward({0.0, -75.0});
  const Xy b = p.forward({90.0, -75.0});
  EXPECT_NEAR(std::hypot(a.x, a.y), std::hypot(b.x, b.y), 1e-6);
  const double dot = a.x * b.x + a.y * b.y;
  EXPECT_NEAR(dot, 0.0, 1.0);  // 90 degrees apart
}

TEST(PolarStereo, RejectsWrongHemisphere) {
  const PolarStereo south = PolarStereo::epsg3976();
  EXPECT_THROW(south.forward({0.0, 45.0}), std::invalid_argument);
  const PolarStereo north = PolarStereo::epsg3413();
  EXPECT_THROW(north.forward({0.0, -45.0}), std::invalid_argument);
}

struct RoundTripCase {
  double lon;
  double lat;
};

class ProjectionRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(ProjectionRoundTrip, ForwardInverseIdentity) {
  const auto [lon, lat] = GetParam();
  const PolarStereo p = PolarStereo::epsg3976();
  const Xy xy = p.forward({lon, lat});
  const LonLat back = p.inverse(xy);
  EXPECT_NEAR(back.lat, lat, 1e-9) << "lon=" << lon << " lat=" << lat;
  // Longitude is undefined at the exact pole.
  if (lat > -89.999) {
    double dlon = back.lon - lon;
    while (dlon > 180.0) dlon -= 360.0;
    while (dlon < -180.0) dlon += 360.0;
    EXPECT_NEAR(dlon, 0.0, 1e-9) << "lon=" << lon << " lat=" << lat;
  }
}

std::vector<RoundTripCase> round_trip_grid() {
  std::vector<RoundTripCase> cases;
  // Ross Sea box (the paper's region) plus the wider hemisphere.
  for (double lon : {-180.0, -170.0, -155.0, -140.0, -60.0, 0.0, 45.0, 135.0, 179.5})
    for (double lat : {-89.9, -78.0, -74.0, -70.0, -55.0, -30.0, -5.0})
      cases.push_back({lon, lat});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, ProjectionRoundTrip, ::testing::ValuesIn(round_trip_grid()));

TEST(PolarStereo, NorthVariantRoundTrips) {
  const PolarStereo p = PolarStereo::epsg3413();
  const Xy xy = p.forward({-45.0, 75.0});
  const LonLat back = p.inverse(xy);
  EXPECT_NEAR(back.lat, 75.0, 1e-9);
  EXPECT_NEAR(back.lon, -45.0, 1e-9);
}

TEST(Corrections, GeoidHasLargeOffsetAndSmallWaves) {
  const GeoidModel geoid(1);
  const double u0 = geoid.undulation(0.0, 0.0);
  EXPECT_LT(u0, -50.0);
  EXPECT_GT(u0, -60.0);
  // Variation over 100 km is sub-meter.
  const double u1 = geoid.undulation(100'000.0, 50'000.0);
  EXPECT_LT(std::abs(u1 - u0), 2.0);
}

TEST(Corrections, TideBoundedAndTimeVarying) {
  const TideModel tide(2);
  double tmax = -1e9, tmin = 1e9;
  for (double t = 0.0; t < 48.0 * 3600.0; t += 600.0) {
    const double h = tide.tide(t, 0.0, 0.0);
    tmax = std::max(tmax, h);
    tmin = std::min(tmin, h);
  }
  EXPECT_LT(tmax, 1.5);
  EXPECT_GT(tmin, -1.5);
  EXPECT_GT(tmax - tmin, 0.1);  // actually oscillates
}

TEST(Corrections, InvertedBarometerCentimeterScale) {
  const InvertedBarometerModel ib(3);
  for (double t : {0.0, 43'200.0, 86'400.0}) {
    const double c = ib.correction(t, 1e5, -2e5);
    EXPECT_LT(std::abs(c), 0.25);
  }
}

TEST(Corrections, TotalIsSumOfParts) {
  const GeoCorrections gc(7);
  const double t = 12'345.0, x = 5e4, y = -1e5;
  const double total = gc.total(t, x, y);
  const double sum = gc.geoid().undulation(x, y) + gc.tide().tide(t, x, y) +
                     gc.inverted_barometer().correction(t, x, y);
  EXPECT_DOUBLE_EQ(total, sum);
}

TEST(GroundTrack, AlongAndCrossTrackDecomposition) {
  const GroundTrack track({100.0, 200.0}, 0.5);
  const Xy p = track.at(1234.0);
  EXPECT_NEAR(track.along_track(p), 1234.0, 1e-9);
  EXPECT_NEAR(track.cross_track(p), 0.0, 1e-9);
}

TEST(GroundTrack, OffsetMovesLeftOfTravel) {
  const GroundTrack track({0.0, 0.0}, 0.0);  // heading +x
  const GroundTrack left = track.offset(100.0);
  EXPECT_NEAR(left.origin().x, 0.0, 1e-12);
  EXPECT_NEAR(left.origin().y, 100.0, 1e-12);
  // A point on the original track is at cross-track -100 from the offset one.
  EXPECT_NEAR(left.cross_track(track.at(500.0)), -100.0, 1e-9);
}

TEST(GroundTrack, CumulativeDistance) {
  std::vector<Xy> pts{{0, 0}, {3, 4}, {3, 4}, {6, 8}};
  const auto d = cumulative_distance(pts);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
  EXPECT_DOUBLE_EQ(d[2], 5.0);
  EXPECT_DOUBLE_EQ(d[3], 10.0);
}

}  // namespace
