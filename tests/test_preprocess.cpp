// Preprocessing tests: confidence filtering, geophysical correction,
// outlier rejection and along-track ordering.
#include <gtest/gtest.h>

#include <cmath>

#include "atl03/photon_sim.hpp"
#include "atl03/preprocess.hpp"
#include "geo/polar_stereo.hpp"
#include "util/stats.hpp"

namespace {

using namespace is2;
using atl03::BeamId;
using atl03::PreprocessConfig;
using atl03::SignalConf;

struct FixtureImpl {
  geo::GeoCorrections corrections{7};
  atl03::SurfaceConfig scfg;
  geo::GroundTrack track;
  atl03::SurfaceModel surface;
  atl03::Granule granule;

  explicit FixtureImpl(double length = 6'000.0)
      : track(geo::PolarStereo::epsg3976().forward({-165.0, -75.5}), 0.3),
        surface((scfg.length_m = length, scfg), track, corrections, 21),
        granule(atl03::PhotonSimulator(atl03::InstrumentConfig{}, 22)
                    .simulate_granule(surface, "ATL03_PRE", 50.0)) {}
};

/// The granule simulation is the slow part; all tests here only read it, so
/// one shared instance serves the whole suite.
struct Fixture {
  static FixtureImpl& get() {
    static FixtureImpl instance;
    return instance;
  }
  geo::GeoCorrections& corrections = get().corrections;
  atl03::Granule& granule = get().granule;
};

TEST(Preprocess, KeepsOnlyHighConfidenceByDefault) {
  Fixture fx;
  const auto& raw = fx.granule.beam(BeamId::Gt2r);
  const auto pre = atl03::preprocess_beam(fx.granule, raw, fx.corrections);
  std::size_t high = 0;
  for (auto c : raw.signal_conf)
    if (c == static_cast<std::int8_t>(SignalConf::High)) ++high;
  EXPECT_LE(pre.size(), high);           // outlier filter can drop a few more
  EXPECT_GT(pre.size(), high * 9 / 10);  // but not many
}

TEST(Preprocess, LowerThresholdKeepsMore) {
  Fixture fx;
  const auto& raw = fx.granule.beam(BeamId::Gt2r);
  PreprocessConfig strict;
  strict.min_conf = SignalConf::High;
  PreprocessConfig loose;
  loose.min_conf = SignalConf::Low;
  const auto a = atl03::preprocess_beam(fx.granule, raw, fx.corrections, strict);
  const auto b = atl03::preprocess_beam(fx.granule, raw, fx.corrections, loose);
  EXPECT_GT(b.size(), a.size());
}

TEST(Preprocess, OutputSortedAlongTrack) {
  Fixture fx;
  const auto pre =
      atl03::preprocess_beam(fx.granule, fx.granule.beam(BeamId::Gt2r), fx.corrections);
  for (std::size_t i = 1; i < pre.size(); ++i) EXPECT_GE(pre.s[i], pre.s[i - 1]);
}

TEST(Preprocess, GeoCorrectionRemovesGeoidOffset) {
  Fixture fx;
  const auto& raw = fx.granule.beam(BeamId::Gt2r);
  PreprocessConfig with;
  PreprocessConfig without;
  without.apply_geo_correction = false;
  const auto corrected = atl03::preprocess_beam(fx.granule, raw, fx.corrections, with);
  const auto uncorrected = atl03::preprocess_beam(fx.granule, raw, fx.corrections, without);
  // Uncorrected heights sit ~-55 m (geoid); corrected heights near zero.
  EXPECT_LT(util::mean(uncorrected.h), -40.0);
  EXPECT_LT(std::abs(util::mean(corrected.h)), 2.0);
}

TEST(Preprocess, OutlierRejectionRemovesPlantedSpike) {
  Fixture fx;
  auto raw = fx.granule.beam(BeamId::Gt2r);  // copy
  // Plant obvious outliers tagged high-confidence.
  for (int k = 0; k < 20; ++k) {
    const std::size_t i = 100 + static_cast<std::size_t>(k) * 50;
    raw.h[i] += 200.0;
  }
  const auto pre = atl03::preprocess_beam(fx.granule, raw, fx.corrections);
  for (std::size_t i = 0; i < pre.size(); ++i)
    EXPECT_LT(std::abs(pre.h[i] - util::median(pre.h)), 50.0);
}

TEST(Preprocess, BackgroundRatesInterpolatedPerPhoton) {
  Fixture fx;
  const auto pre =
      atl03::preprocess_beam(fx.granule, fx.granule.beam(BeamId::Gt2r), fx.corrections);
  ASSERT_EQ(pre.bckgrd_rate.size(), pre.size());
  for (double r : pre.bckgrd_rate) EXPECT_GE(r, 0.0);
  // Rates should vary along the track (albedo-dependent background).
  EXPECT_GT(util::stddev(pre.bckgrd_rate), 1.0);
}

TEST(Preprocess, StrongBeamsOnlyHelper) {
  Fixture fx;
  const auto beams = atl03::preprocess_strong_beams(fx.granule, fx.corrections);
  EXPECT_EQ(beams.size(), 3u);
  for (const auto& b : beams) EXPECT_TRUE(atl03::is_strong(b.beam));
}

TEST(Preprocess, TruthCarriedThrough) {
  Fixture fx;
  const auto pre =
      atl03::preprocess_beam(fx.granule, fx.granule.beam(BeamId::Gt2r), fx.corrections);
  ASSERT_EQ(pre.truth_class.size(), pre.size());
}

TEST(Preprocess, EmptyBeamYieldsEmptyResult) {
  Fixture fx;
  atl03::BeamData empty;
  empty.beam = BeamId::Gt1r;
  const auto pre = atl03::preprocess_beam(fx.granule, empty, fx.corrections);
  EXPECT_EQ(pre.size(), 0u);
}

}  // namespace
