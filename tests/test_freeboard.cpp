// Freeboard product tests: the h_f = h_s - h_ref identity, filtering,
// density/distribution statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "freeboard/freeboard.hpp"
#include "util/rng.hpp"

namespace {

using namespace is2;
using atl03::SurfaceClass;
using resample::Segment;

struct Scene {
  std::vector<Segment> segments;
  std::vector<SurfaceClass> labels;
  seasurface::SeaSurfaceProfile profile;
};

Scene flat_scene(double level, double ice_height, std::size_t n = 500) {
  Scene sc;
  for (std::size_t i = 0; i < n; ++i) {
    Segment s;
    s.s = static_cast<double>(i) * 2.0;
    const bool water = i % 25 == 0;
    s.h_mean = water ? level : level + ice_height;
    s.truth = water ? SurfaceClass::OpenWater : SurfaceClass::ThickIce;
    sc.segments.push_back(s);
    sc.labels.push_back(s.truth);
  }
  std::vector<seasurface::SeaSurfacePoint> pts(2);
  pts[0].s = 0.0;
  pts[0].h_ref = level;
  pts[1].s = static_cast<double>(n) * 2.0;
  pts[1].h_ref = level;
  sc.profile = seasurface::SeaSurfaceProfile(pts);
  return sc;
}

TEST(Freeboard, IdentityOnNoiselessScene) {
  const Scene sc = flat_scene(-0.3, 0.42);
  const auto product = freeboard::compute_freeboard(sc.segments, sc.labels, sc.profile);
  ASSERT_EQ(product.points.size(), sc.segments.size());
  for (const auto& p : product.points) {
    if (p.cls == SurfaceClass::OpenWater)
      EXPECT_NEAR(p.freeboard, 0.0, 1e-12);
    else
      EXPECT_NEAR(p.freeboard, 0.42, 1e-12);
  }
}

TEST(Freeboard, ExcludeOpenWaterOption) {
  const Scene sc = flat_scene(0.0, 0.3);
  freeboard::FreeboardConfig cfg;
  cfg.include_open_water = false;
  const auto product = freeboard::compute_freeboard(sc.segments, sc.labels, sc.profile, cfg);
  for (const auto& p : product.points) EXPECT_NE(p.cls, SurfaceClass::OpenWater);
  EXPECT_LT(product.points.size(), sc.segments.size());
}

TEST(Freeboard, SanityCapsFilterOutliers) {
  Scene sc = flat_scene(0.0, 0.3, 100);
  sc.segments[10].h_mean = 50.0;   // absurd high
  sc.segments[20].h_mean = -30.0;  // absurd low
  const auto product = freeboard::compute_freeboard(sc.segments, sc.labels, sc.profile);
  EXPECT_EQ(product.points.size(), sc.segments.size() - 2);
}

TEST(Freeboard, UnknownLabelsSkipped) {
  Scene sc = flat_scene(0.0, 0.3, 100);
  sc.labels[5] = SurfaceClass::Unknown;
  sc.labels[6] = SurfaceClass::Unknown;
  const auto product = freeboard::compute_freeboard(sc.segments, sc.labels, sc.profile);
  EXPECT_EQ(product.points.size(), 98u);
}

TEST(Freeboard, PointDensityPerKm) {
  const Scene sc = flat_scene(0.0, 0.3, 501);  // 2m spacing over 1 km
  const auto product = freeboard::compute_freeboard(sc.segments, sc.labels, sc.profile);
  EXPECT_NEAR(product.points_per_km(), 501.0, 2.0);
}

TEST(Freeboard, DistributionPeaksAtIceFreeboard) {
  const Scene sc = flat_scene(-0.1, 0.35, 2'000);
  const auto product = freeboard::compute_freeboard(sc.segments, sc.labels, sc.profile);
  const auto hist = product.distribution();
  EXPECT_NEAR(hist.mode(), 0.35, 0.05);
  const auto stats = product.stats();
  EXPECT_GT(stats.mean(), 0.25);
  EXPECT_LT(stats.mean(), 0.40);
}

TEST(Freeboard, RmsVsTruthOnCorrectLabels) {
  const Scene sc = flat_scene(0.0, 0.30, 200);
  const auto product = freeboard::compute_freeboard(sc.segments, sc.labels, sc.profile);
  std::vector<double> truth(product.points.size());
  for (std::size_t i = 0; i < product.points.size(); ++i)
    truth[i] = product.points[i].cls == SurfaceClass::OpenWater ? 0.0 : 0.30;
  EXPECT_NEAR(freeboard::freeboard_rms_vs_truth(product, truth), 0.0, 1e-12);
  EXPECT_THROW(freeboard::freeboard_rms_vs_truth(product, {1.0}), std::invalid_argument);
}

TEST(Freeboard, TiltedSeaSurfaceFollowed) {
  // Sea surface rises 0.1 m over the track; freeboard must stay constant
  // because the profile is subtracted pointwise.
  Scene sc = flat_scene(0.0, 0.4, 1'000);
  std::vector<seasurface::SeaSurfacePoint> pts(2);
  pts[0].s = 0.0;
  pts[0].h_ref = 0.0;
  pts[1].s = 2'000.0;
  pts[1].h_ref = 0.1;
  sc.profile = seasurface::SeaSurfaceProfile(pts);
  for (auto& seg : sc.segments) {
    const double tilt = 0.1 * seg.s / 2'000.0;
    seg.h_mean += tilt;
  }
  const auto product = freeboard::compute_freeboard(sc.segments, sc.labels, sc.profile);
  for (const auto& p : product.points) {
    if (p.cls == SurfaceClass::ThickIce) EXPECT_NEAR(p.freeboard, 0.4, 1e-9);
  }
}

TEST(Freeboard, EmptyProfileYieldsEmptyProduct) {
  const Scene sc = flat_scene(0.0, 0.3, 10);
  const auto product =
      freeboard::compute_freeboard(sc.segments, sc.labels, seasurface::SeaSurfaceProfile{});
  EXPECT_TRUE(product.points.empty());
  EXPECT_DOUBLE_EQ(product.points_per_km(), 0.0);
}

}  // namespace
