// 2m resampler, feature construction, scaler and first-photon-bias tests.
#include <gtest/gtest.h>

#include <cmath>

#include "atl03/photon_sim.hpp"
#include "atl03/preprocess.hpp"
#include "geo/polar_stereo.hpp"
#include "resample/fpb.hpp"
#include "resample/segmenter.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace is2;
using atl03::PreprocessedBeam;
using resample::FeatureRow;
using resample::Segment;
using resample::SegmenterConfig;

/// Hand-built beam: photons at known positions/heights.
PreprocessedBeam synthetic_beam() {
  PreprocessedBeam b;
  auto add = [&](double s, double h, double bg = 1e5) {
    b.s.push_back(s);
    b.h.push_back(h);
    b.t.push_back(s / 7000.0);
    b.x.push_back(s);
    b.y.push_back(0.0);
    b.bckgrd_rate.push_back(bg);
    b.truth_class.push_back(0);
  };
  // Window [0,2): three photons; window [2,4): one photon; [4,6): empty;
  // [6,8): two photons.
  add(0.5, 1.0);
  add(1.0, 2.0);
  add(1.5, 3.0);
  add(2.5, 5.0);
  add(6.5, 10.0);
  add(7.5, 12.0);
  return b;
}

TEST(Resample, WindowStatistics) {
  const auto segs = resample::resample(synthetic_beam());
  ASSERT_EQ(segs.size(), 3u);  // empty window dropped
  EXPECT_DOUBLE_EQ(segs[0].s, 1.0);
  EXPECT_DOUBLE_EQ(segs[0].h_mean, 2.0);
  EXPECT_DOUBLE_EQ(segs[0].h_median, 2.0);
  EXPECT_DOUBLE_EQ(segs[0].h_min, 1.0);
  EXPECT_EQ(segs[0].n_photons, 3u);
  EXPECT_NEAR(segs[0].h_std, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(segs[1].h_mean, 5.0);
  EXPECT_EQ(segs[1].n_photons, 1u);
  EXPECT_DOUBLE_EQ(segs[2].h_mean, 11.0);
  // photon rate = photons per shot = n / (2m / 0.7m).
  EXPECT_NEAR(segs[0].photon_rate, 3.0 / (2.0 / 0.7), 1e-12);
}

TEST(Resample, MinPhotonThreshold) {
  SegmenterConfig cfg;
  cfg.min_photons = 2;
  const auto segs = resample::resample(synthetic_beam(), cfg);
  ASSERT_EQ(segs.size(), 2u);  // single-photon window dropped too
  EXPECT_DOUBLE_EQ(segs[0].h_mean, 2.0);
  EXPECT_DOUBLE_EQ(segs[1].h_mean, 11.0);
}

TEST(Resample, EmptyBeam) {
  PreprocessedBeam empty;
  EXPECT_TRUE(resample::resample(empty).empty());
}

TEST(Resample, TruthMajorityVote) {
  PreprocessedBeam b = synthetic_beam();
  b.truth_class = {0, 1, 1, 2, 0, 0};
  const auto segs = resample::resample(b);
  EXPECT_EQ(segs[0].truth, atl03::SurfaceClass::ThinIce);   // 2 of 3
  EXPECT_EQ(segs[1].truth, atl03::SurfaceClass::OpenWater);
  EXPECT_EQ(segs[2].truth, atl03::SurfaceClass::ThickIce);
}

TEST(Resample, RollingBaselineTracksLowPercentile) {
  // Segments alternating between 0 (water) and 0.5 (ice): the 5th-percentile
  // baseline should hug the water level.
  std::vector<Segment> segs;
  for (int i = 0; i < 1000; ++i) {
    Segment s;
    s.s = i * 2.0;
    s.h_mean = (i % 10 == 0) ? 0.0 : 0.5;
    segs.push_back(s);
  }
  const auto baseline = resample::rolling_baseline(segs, 500.0, 5.0);
  ASSERT_EQ(baseline.size(), segs.size());
  for (std::size_t i = 50; i < 950; ++i) EXPECT_LT(baseline[i], 0.2) << i;
}

TEST(Resample, RollingBaselineMatchesReferenceOracle) {
  // Property test: the O(n log w) incremental baseline must be bit-identical
  // to the gather-and-sort reference over randomized tracks with duplicate
  // along-track coordinates, duplicate heights and large gaps.
  util::Rng rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<Segment> segs;
    double s = 0.0;
    const int n = 1 + static_cast<int>(rng.next() % 300);
    for (int i = 0; i < n; ++i) {
      const double r = rng.uniform();
      if (r < 0.15) {
        // duplicate s: two windows can legitimately share a center
      } else if (r < 0.9) {
        s += 2.0;
      } else {
        s += 2.0 * static_cast<double>(1 + rng.next() % 50);  // min_photons gap
      }
      Segment seg;
      seg.s = s;
      seg.h_mean = (!segs.empty() && rng.uniform() < 0.1) ? segs.back().h_mean
                                                          : rng.normal(0.0, 1.0);
      segs.push_back(seg);
    }
    for (const double window_m : {6.0, 100.0, 1e9}) {
      for (const double p : {0.0, 5.0, 50.0, 100.0}) {
        const auto fast = resample::rolling_baseline(segs, window_m, p);
        const auto oracle = resample::rolling_baseline_reference(segs, window_m, p);
        ASSERT_EQ(fast.size(), oracle.size());
        for (std::size_t i = 0; i < fast.size(); ++i)
          ASSERT_EQ(fast[i], oracle[i])
              << "trial=" << trial << " w=" << window_m << " p=" << p << " i=" << i;
      }
    }
  }

  // Degenerate inputs: empty and size-1 tracks.
  EXPECT_TRUE(resample::rolling_baseline({}, 100.0, 5.0).empty());
  std::vector<Segment> one(1);
  one[0].s = 3.0;
  one[0].h_mean = -1.5;
  EXPECT_EQ(resample::rolling_baseline(one)[0], -1.5);
  EXPECT_EQ(resample::rolling_baseline_reference(one)[0], -1.5);
}

TEST(Resample, FeatureDeltasZeroedAcrossGaps) {
  // Windows dropped by min_photons leave along-track gaps; differencing
  // across them compares physically non-adjacent surface. Deltas reset to 0
  // there, like at a track start.
  std::vector<Segment> segs(4);
  const double s_values[] = {0.0, 2.0, 8.0, 10.0};  // 6 m gap after segment 1
  for (int i = 0; i < 4; ++i) {
    segs[i].s = s_values[i];
    segs[i].photon_rate = 1.0 + i;
    segs[i].bckgrd_rate = (1.0 + i) * 1e6;
  }
  const auto rows = resample::to_features(segs, {});  // default 3 m gap limit
  EXPECT_FLOAT_EQ(rows[1].v[3], 1.0f);  // 2 m spacing: normal delta
  EXPECT_FLOAT_EQ(rows[2].v[3], 0.0f);  // across the gap: zeroed
  EXPECT_FLOAT_EQ(rows[2].v[5], 0.0f);
  EXPECT_FLOAT_EQ(rows[3].v[3], 1.0f);  // chain restarts after the gap
  EXPECT_FLOAT_EQ(rows[3].v[5], 1.0f);  // MHz

  // max_gap_m <= 0 restores unconditional differencing (legacy behavior).
  const auto legacy = resample::to_features(segs, {}, 0.0);
  EXPECT_FLOAT_EQ(legacy[2].v[3], 1.0f);
  EXPECT_FLOAT_EQ(legacy[2].v[5], 1.0f);
}

TEST(Resample, FeatureDeltasAgainstPreviousSegment) {
  std::vector<Segment> segs(3);
  segs[0].photon_rate = 1.0;
  segs[0].bckgrd_rate = 1e6;
  segs[1].photon_rate = 3.0;
  segs[1].bckgrd_rate = 2e6;
  segs[2].photon_rate = 2.0;
  segs[2].bckgrd_rate = 1.5e6;
  for (int i = 0; i < 3; ++i) {
    segs[i].s = i * 2.0;
    segs[i].h_mean = 0.1 * i;
  }
  const auto rows = resample::to_features(segs, {});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_FLOAT_EQ(rows[0].v[3], 0.0f);
  EXPECT_FLOAT_EQ(rows[1].v[3], 2.0f);
  EXPECT_FLOAT_EQ(rows[2].v[3], -1.0f);
  EXPECT_FLOAT_EQ(rows[1].v[4], 2.0f);   // MHz
  EXPECT_FLOAT_EQ(rows[2].v[5], -0.5f);  // MHz delta
}

TEST(Resample, BaselineMakesElevationRelative) {
  std::vector<Segment> segs(2);
  segs[0].h_mean = -54.0;
  segs[1].h_mean = -53.7;
  segs[0].s = 0.0;
  segs[1].s = 2.0;
  const std::vector<double> baseline{-54.1, -54.1};
  const auto rows = resample::to_features(segs, baseline);
  EXPECT_NEAR(rows[0].v[0], 0.1f, 1e-6);
  EXPECT_NEAR(rows[1].v[0], 0.4f, 1e-6);
}

TEST(Resample, ScalerNormalizesToZeroMeanUnitVar) {
  util::Rng rng(3);
  std::vector<FeatureRow> rows(500);
  for (auto& r : rows)
    for (int d = 0; d < FeatureRow::kDim; ++d)
      r.v[d] = static_cast<float>(rng.normal(5.0 * d, d + 1.0));
  const auto scaler = resample::FeatureScaler::fit(rows);
  resample::FeatureScaler{scaler}.apply(rows);
  for (int d = 0; d < FeatureRow::kDim; ++d) {
    double mean = 0.0, var = 0.0;
    for (const auto& r : rows) mean += r.v[d];
    mean /= rows.size();
    for (const auto& r : rows) var += (r.v[d] - mean) * (r.v[d] - mean);
    var /= rows.size();
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(Fpb, BiasPositiveAndIncreasingWithRate) {
  const resample::FirstPhotonBiasCorrector fpb(0.45, 16);
  const double b_low = fpb.bias(1.0, 0.1);
  const double b_high = fpb.bias(8.0, 0.1);
  EXPECT_GE(b_low, 0.0);
  EXPECT_GT(b_high, b_low);
  EXPECT_LT(b_high, 0.05);  // 16-channel detector keeps the bias small
}

TEST(Fpb, BiasIncreasesWithSurfaceSpread) {
  const resample::FirstPhotonBiasCorrector fpb(0.45, 16);
  EXPECT_GT(fpb.bias(5.0, 0.2), fpb.bias(5.0, 0.02));
}

TEST(Fpb, SingleChannelBiasMuchLarger) {
  const resample::FirstPhotonBiasCorrector multi(0.45, 16);
  const resample::FirstPhotonBiasCorrector single(0.45, 1);
  EXPECT_GT(single.bias(5.0, 0.1), 4.0 * multi.bias(5.0, 0.1));
}

TEST(Fpb, ApplyShiftsSegmentHeightsDown) {
  const resample::FirstPhotonBiasCorrector fpb(0.45, 16);
  std::vector<Segment> segs(1);
  segs[0].h_mean = 1.0;
  segs[0].h_median = 1.0;
  segs[0].photon_rate = 6.0;
  segs[0].h_std = 0.1;
  resample::FirstPhotonBiasCorrector{fpb}.apply(segs);
  EXPECT_LT(segs[0].h_mean, 1.0);
  EXPECT_DOUBLE_EQ(segs[0].h_mean, segs[0].h_median);
}

TEST(Fpb, EndToEndBiasReduction) {
  // Simulate a bright flat scene, resample with and without correction; the
  // corrected mean must sit closer to the true surface height.
  geo::GeoCorrections corrections(7);
  atl03::SurfaceConfig scfg;
  scfg.length_m = 4'000.0;
  scfg.mean_floe_m = 1e9;  // all thick ice
  scfg.ridge_density = 0.0;
  const geo::GroundTrack track(geo::PolarStereo::epsg3976().forward({-167.0, -75.0}), 0.2);
  const atl03::SurfaceModel surface(scfg, track, corrections, 5);

  atl03::InstrumentConfig icfg;
  icfg.strong_channels = 2;  // exaggerate the dead-time effect
  icfg.background_rate_mhz = 0.0;
  const auto granule = atl03::PhotonSimulator(icfg, 6).simulate_granule(surface, "FPB", 0.0);
  const auto pre = atl03::preprocess_beam(granule, granule.beam(atl03::BeamId::Gt2r), corrections);
  auto segs = resample::resample(pre);

  double true_mean = 0.0;
  for (const auto& s : segs) true_mean += surface.surface_height(s.s, s.t) -
                                          corrections.total(s.t, s.x, s.y);
  true_mean /= static_cast<double>(segs.size());

  auto mean_h = [](const std::vector<Segment>& v) {
    double m = 0.0;
    for (const auto& s : v) m += s.h_mean;
    return m / static_cast<double>(v.size());
  };
  const double before = mean_h(segs);
  resample::FirstPhotonBiasCorrector(icfg.dead_time_m, icfg.strong_channels).apply(segs);
  const double after = mean_h(segs);
  EXPECT_LT(std::abs(after - true_mean), std::abs(before - true_mean));
}

}  // namespace
