// Tests for the `is2::pipeline` stage-graph API: PipelineConfig::validate
// at the builder boundary, stage-by-stage equivalence with the hand-wired
// reference pipeline, prefix consistency between ProductKinds (a
// classification build's artifacts are bit-identical to the first stages of
// a freeboard build, for both classifier backends), resume-from-shallower
// correctness, classifier backend fingerprints, and per-stage
// instrumentation.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "baseline/decision_tree.hpp"
#include "core/campaign.hpp"
#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "pipeline/classifier.hpp"
#include "pipeline/product_builder.hpp"
#include "util/rng.hpp"

namespace {

using namespace is2;
using atl03::BeamId;
using atl03::SurfaceClass;
using pipeline::Artifacts;
using pipeline::Backend;
using pipeline::ProductBuilder;
using pipeline::ProductKind;
using pipeline::StageId;

// ---------------------------------------------------------------------------
// PipelineConfig::validate
// ---------------------------------------------------------------------------

TEST(PipelineConfigValidate, AcceptsAllPresets) {
  EXPECT_NO_THROW(core::PipelineConfig::tiny().validate());
  EXPECT_NO_THROW(core::PipelineConfig::small().validate());
  EXPECT_NO_THROW(core::PipelineConfig::standard().validate());
}

TEST(PipelineConfigValidate, RejectsInconsistentSettings) {
  const core::PipelineConfig base = core::PipelineConfig::tiny();

  core::PipelineConfig even = base;
  even.sequence_window = 4;  // no center segment
  EXPECT_THROW(even.validate(), std::invalid_argument);

  core::PipelineConfig zero_window = base;
  zero_window.sequence_window = 0;
  EXPECT_THROW(zero_window.validate(), std::invalid_argument);

  core::PipelineConfig no_chunks = base;
  no_chunks.chunks_per_beam = 0;
  EXPECT_THROW(no_chunks.validate(), std::invalid_argument);

  core::PipelineConfig bad_surface = base;
  bad_surface.surface.length_m = base.track_length_m + 1000.0;  // disagrees
  EXPECT_THROW(bad_surface.validate(), std::invalid_argument);

  core::PipelineConfig matching_surface = base;
  matching_surface.surface.length_m = base.track_length_m;  // explicit but consistent
  EXPECT_NO_THROW(matching_surface.validate());

  core::PipelineConfig bad_segmenter = base;
  bad_segmenter.segmenter.window_m = 0.0;
  EXPECT_THROW(bad_segmenter.validate(), std::invalid_argument);

  core::PipelineConfig bad_track = base;
  bad_track.track_length_m = -5.0;
  EXPECT_THROW(bad_track.validate(), std::invalid_argument);

  core::PipelineConfig bad_fb = base;
  bad_fb.freeboard.max_freeboard_m = bad_fb.freeboard.min_freeboard_m - 1.0;
  EXPECT_THROW(bad_fb.validate(), std::invalid_argument);
}

TEST(PipelineConfigValidate, BuilderConstructionValidates) {
  core::PipelineConfig bad = core::PipelineConfig::tiny();
  bad.sequence_window = 6;
  const geo::GeoCorrections corrections;
  EXPECT_THROW(ProductBuilder(bad, corrections), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Stage graph on a tiny campaign beam
// ---------------------------------------------------------------------------

class BuilderCampaign : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new core::PipelineConfig(core::PipelineConfig::tiny());
    campaign_ = new core::Campaign(*config_);
    pair_ = new core::PairDataset(campaign_->generate(1));
    builder_ = new ProductBuilder(*config_, campaign_->corrections());

    // Reference feature set for scaler/tree fitting (via the builder's own
    // feature stage on gt1r).
    Artifacts art = gt1r_artifacts();
    builder_->run_until(art, StageId::features);
    scaler_ = new resample::FeatureScaler(resample::FeatureScaler::fit(art.features_out()));

    // A small fitted tree: trained on the feature rows against photon truth
    // (Unknown filtered) — enough signal to exercise the backend.
    std::vector<float> x;
    std::vector<std::uint8_t> y;
    const auto& segments = art.segments_out();
    const auto& features = art.features_out();
    for (std::size_t i = 0; i < segments.size(); ++i) {
      if (segments[i].truth == SurfaceClass::Unknown) continue;
      for (int d = 0; d < resample::FeatureRow::kDim; ++d) x.push_back(features[i].v[d]);
      y.push_back(static_cast<std::uint8_t>(segments[i].truth));
    }
    tree_ = new baseline::DecisionTree();
    tree_->fit(x, resample::FeatureRow::kDim, y, atl03::kNumClasses);
  }

  static void TearDownTestSuite() {
    delete tree_;
    delete scaler_;
    delete builder_;
    delete pair_;
    delete campaign_;
    delete config_;
    tree_ = nullptr;
    scaler_ = nullptr;
    builder_ = nullptr;
    pair_ = nullptr;
    campaign_ = nullptr;
    config_ = nullptr;
  }

  static Artifacts gt1r_artifacts() {
    return Artifacts::from_beam(pair_->granule, pair_->granule.beam(BeamId::Gt1r));
  }

  static pipeline::NnBackend make_nn_backend() {
    return pipeline::NnBackend(
        [] {
          util::Rng rng(99);
          return nn::make_lstm_model(config_->sequence_window, resample::FeatureRow::kDim,
                                     rng);
        },
        *scaler_, config_->sequence_window);
  }

  static core::PipelineConfig* config_;
  static core::Campaign* campaign_;
  static core::PairDataset* pair_;
  static ProductBuilder* builder_;
  static resample::FeatureScaler* scaler_;
  static baseline::DecisionTree* tree_;
};

core::PipelineConfig* BuilderCampaign::config_ = nullptr;
core::Campaign* BuilderCampaign::campaign_ = nullptr;
core::PairDataset* BuilderCampaign::pair_ = nullptr;
ProductBuilder* BuilderCampaign::builder_ = nullptr;
resample::FeatureScaler* BuilderCampaign::scaler_ = nullptr;
baseline::DecisionTree* BuilderCampaign::tree_ = nullptr;

void expect_segments_bit_identical(const std::vector<resample::Segment>& a,
                                   const std::vector<resample::Segment>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].s, b[i].s);
    EXPECT_EQ(a[i].h_mean, b[i].h_mean);
    EXPECT_EQ(a[i].h_std, b[i].h_std);
    EXPECT_EQ(a[i].h_min, b[i].h_min);
    EXPECT_EQ(a[i].n_photons, b[i].n_photons);
    EXPECT_EQ(a[i].photon_rate, b[i].photon_rate);
    EXPECT_EQ(a[i].bckgrd_rate, b[i].bckgrd_rate);
  }
}

TEST_F(BuilderCampaign, StagesMatchHandWiredReference) {
  // The builder's prefix must reproduce the hand-wired pipeline bit for bit.
  Artifacts art = gt1r_artifacts();
  pipeline::StageTrace trace;
  builder_->run_until(art, StageId::features, &trace);

  const auto pre = atl03::preprocess_beam(pair_->granule, pair_->granule.beam(BeamId::Gt1r),
                                          campaign_->corrections(), config_->preprocess);
  auto segments = resample::resample(pre, config_->segmenter);
  const resample::FirstPhotonBiasCorrector fpb(config_->instrument.dead_time_m,
                                               config_->instrument.strong_channels);
  fpb.apply(segments);
  const auto baseline_ref = resample::rolling_baseline(segments);
  const auto features = resample::to_features(segments, baseline_ref,
                                              config_->segmenter.window_m * 1.5);

  expect_segments_bit_identical(art.segments_out(), segments);
  ASSERT_EQ(art.features_out().size(), features.size());
  for (std::size_t i = 0; i < features.size(); ++i)
    for (int d = 0; d < resample::FeatureRow::kDim; ++d)
      EXPECT_EQ(art.features_out()[i].v[d], features[i].v[d]);

  // Every prefix stage ran exactly once and was traced.
  for (const StageId id :
       {StageId::preprocess, StageId::resample, StageId::fpb, StageId::features})
    EXPECT_TRUE(trace.did(id)) << pipeline::stage_name(id);
  EXPECT_FALSE(trace.did(StageId::classify));

  // Accessors for stages that have not run fail loudly.
  EXPECT_THROW(art.classes_out(), std::logic_error);
  EXPECT_THROW(art.sea_surface_out(), std::logic_error);
  EXPECT_THROW(art.freeboard_out(), std::logic_error);
}

TEST_F(BuilderCampaign, ClassificationIsBitIdenticalPrefixOfFreeboardNnBackend) {
  // ProductKinds are strict prefixes: the classification-kind build's
  // artifacts must equal the first stages of the freeboard-kind build.
  pipeline::NnBackend backend = make_nn_backend();

  Artifacts cls = gt1r_artifacts();
  builder_->build(cls, ProductKind::classification, &backend, seasurface::Method::NasaEquation);
  EXPECT_FALSE(cls.done(StageId::seasurface));
  EXPECT_THROW(cls.freeboard_out(), std::logic_error);

  Artifacts fb = gt1r_artifacts();
  builder_->build(fb, ProductKind::freeboard, &backend, seasurface::Method::NasaEquation);

  expect_segments_bit_identical(cls.segments_out(), fb.segments_out());
  EXPECT_EQ(cls.classes_out(), fb.classes_out());
  EXPECT_GT(fb.freeboard_out().points.size(), 0u);
}

TEST_F(BuilderCampaign, ClassificationIsBitIdenticalPrefixOfFreeboardTreeBackend) {
  pipeline::DecisionTreeBackend backend(*tree_);

  Artifacts cls = gt1r_artifacts();
  builder_->build(cls, ProductKind::classification, &backend, seasurface::Method::NasaEquation);

  Artifacts fb = gt1r_artifacts();
  builder_->build(fb, ProductKind::freeboard, &backend, seasurface::Method::NasaEquation);

  expect_segments_bit_identical(cls.segments_out(), fb.segments_out());
  EXPECT_EQ(cls.classes_out(), fb.classes_out());

  // And the two backends really are different classifiers on this beam.
  pipeline::NnBackend nn_backend = make_nn_backend();
  Artifacts nn_cls = gt1r_artifacts();
  builder_->build(nn_cls, ProductKind::classification, &nn_backend,
                  seasurface::Method::NasaEquation);
  EXPECT_NE(nn_cls.classes_out(), cls.classes_out());
}

TEST_F(BuilderCampaign, ResumeFromClassificationMatchesFullBuild) {
  // Seeding a freeboard build from a classification product's artifacts
  // must reproduce the full build bit for bit while skipping the expensive
  // prefix (no preprocess/resample/features/classify in the trace).
  pipeline::NnBackend backend = make_nn_backend();

  Artifacts full = gt1r_artifacts();
  builder_->build(full, ProductKind::freeboard, &backend, seasurface::Method::NasaEquation);

  Artifacts cls = gt1r_artifacts();
  builder_->build(cls, ProductKind::classification, &backend, seasurface::Method::NasaEquation);

  Artifacts resumed = Artifacts::resume(cls.segments, cls.classes);
  pipeline::StageTrace trace;
  builder_->build(resumed, ProductKind::freeboard, /*backend=*/nullptr,
                  seasurface::Method::NasaEquation, &trace);

  for (const StageId id : {StageId::preprocess, StageId::resample, StageId::fpb,
                           StageId::features, StageId::classify})
    EXPECT_FALSE(trace.did(id)) << pipeline::stage_name(id);
  EXPECT_TRUE(trace.did(StageId::seasurface));
  EXPECT_TRUE(trace.did(StageId::freeboard));

  ASSERT_EQ(resumed.freeboard_out().points.size(), full.freeboard_out().points.size());
  for (std::size_t i = 0; i < full.freeboard_out().points.size(); ++i) {
    EXPECT_EQ(resumed.freeboard_out().points[i].s, full.freeboard_out().points[i].s);
    EXPECT_EQ(resumed.freeboard_out().points[i].freeboard,
              full.freeboard_out().points[i].freeboard);
    EXPECT_EQ(resumed.freeboard_out().points[i].cls, full.freeboard_out().points[i].cls);
  }
  const auto& sa = resumed.sea_surface_out().points();
  const auto& sb = full.sea_surface_out().points();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].s, sb[i].s);
    EXPECT_EQ(sa[i].h_ref, sb[i].h_ref);
  }
}

TEST_F(BuilderCampaign, ClassifyWithoutBackendOnFreshArtifactsThrows) {
  Artifacts art = gt1r_artifacts();
  EXPECT_THROW(builder_->build(art, ProductKind::classification, /*backend=*/nullptr,
                               seasurface::Method::NasaEquation),
               std::logic_error);
}

TEST_F(BuilderCampaign, NnBackendMatchesDeprecatedClassifySegments) {
  // The replica-pool backend and the deprecated free function are the same
  // algorithm; predictions must agree exactly.
  pipeline::NnBackend backend = make_nn_backend();
  Artifacts art = gt1r_artifacts();
  builder_->run_until(art, StageId::features);

  util::Rng rng(99);
  nn::Sequential model =
      nn::make_lstm_model(config_->sequence_window, resample::FeatureRow::kDim, rng);
  const auto reference = core::classify_segments(model, *scaler_, art.features_out(),
                                                 config_->sequence_window);
  EXPECT_EQ(backend.classify(art.features_out()), reference);
  EXPECT_GT(backend.windows(), 0u);
  EXPECT_GT(backend.batches(), 0u);
}

TEST_F(BuilderCampaign, BackendFingerprintsDistinguishIdentity) {
  pipeline::NnBackend nn_a = make_nn_backend();
  pipeline::NnBackend nn_b = make_nn_backend();
  EXPECT_EQ(nn_a.fingerprint(), nn_b.fingerprint());  // same weights version

  pipeline::NnBackend nn_v1(
      [] {
        util::Rng rng(99);
        return nn::make_lstm_model(config_->sequence_window, resample::FeatureRow::kDim, rng);
      },
      *scaler_, config_->sequence_window, 1, 256, 0, /*weights_version=*/1);
  EXPECT_NE(nn_a.fingerprint(), nn_v1.fingerprint());

  // A refit scaler changes predictions, so it must change identity too —
  // even when the weights version is unchanged.
  resample::FeatureScaler refit = *scaler_;
  refit.mean[0] += 0.25f;
  pipeline::NnBackend nn_rescaled(
      [] {
        util::Rng rng(99);
        return nn::make_lstm_model(config_->sequence_window, resample::FeatureRow::kDim, rng);
      },
      refit, config_->sequence_window);
  EXPECT_NE(nn_a.fingerprint(), nn_rescaled.fingerprint());

  pipeline::DecisionTreeBackend tree_backend(*tree_);
  EXPECT_NE(tree_backend.fingerprint(), nn_a.fingerprint());
  EXPECT_EQ(tree_backend.fingerprint(), pipeline::DecisionTreeBackend(*tree_).fingerprint());

  // A structurally different tree fingerprints differently.
  baseline::DecisionTree other;
  std::vector<float> x;
  std::vector<std::uint8_t> y;
  util::Rng rng(3);
  for (int i = 0; i < 256; ++i) {
    for (int d = 0; d < resample::FeatureRow::kDim; ++d)
      x.push_back(static_cast<float>(rng.normal(0.0, 1.0)));
    y.push_back(static_cast<std::uint8_t>(i % 3));
  }
  other.fit(x, resample::FeatureRow::kDim, y, atl03::kNumClasses);
  EXPECT_NE(pipeline::DecisionTreeBackend(other).fingerprint(), tree_backend.fingerprint());

  // product_fingerprint separates config, method and backend identity.
  const auto nasa = seasurface::Method::NasaEquation;
  const auto min_el = seasurface::Method::MinElevation;
  const auto fb = ProductKind::freeboard;
  EXPECT_NE(pipeline::product_fingerprint(*config_, nasa, nn_a, fb),
            pipeline::product_fingerprint(*config_, nasa, tree_backend, fb));
  EXPECT_NE(pipeline::product_fingerprint(*config_, nasa, nn_a, fb),
            pipeline::product_fingerprint(*config_, min_el, nn_a, fb));

  // Prefix scoping: the classification prefix reads neither the sea-surface
  // method nor the seasurface/freeboard config, so its fingerprint is
  // method-agnostic (one cached classification product serves every
  // method's resume) while deeper prefixes are method-sensitive.
  EXPECT_EQ(pipeline::prefix_fingerprint(*config_, nasa, ProductKind::classification),
            pipeline::prefix_fingerprint(*config_, min_el, ProductKind::classification));
  EXPECT_NE(pipeline::prefix_fingerprint(*config_, nasa, ProductKind::seasurface),
            pipeline::prefix_fingerprint(*config_, min_el, ProductKind::seasurface));
  core::PipelineConfig fb_cfg = *config_;
  fb_cfg.freeboard.max_freeboard_m += 1.0;
  EXPECT_EQ(pipeline::prefix_fingerprint(fb_cfg, nasa, ProductKind::seasurface),
            pipeline::prefix_fingerprint(*config_, nasa, ProductKind::seasurface));
  EXPECT_NE(pipeline::prefix_fingerprint(fb_cfg, nasa, fb),
            pipeline::prefix_fingerprint(*config_, nasa, fb));
  // The full-depth prefix is the (deprecated-wrapper-visible) config hash.
  EXPECT_EQ(pipeline::prefix_fingerprint(*config_, nasa, fb),
            pipeline::config_fingerprint(*config_, nasa));
}

TEST_F(BuilderCampaign, ResumeRejectsNonParallelClasses) {
  Artifacts art = gt1r_artifacts();
  builder_->run_until(art, StageId::features);
  auto segments = art.take_segments();
  std::vector<SurfaceClass> short_classes(segments.size() / 2, SurfaceClass::ThickIce);
  EXPECT_THROW(Artifacts::resume(segments, short_classes), std::invalid_argument);
  // Empty classes = "not classified yet" stays legal.
  EXPECT_NO_THROW(Artifacts::resume(segments));
}

TEST_F(BuilderCampaign, BuilderMetricsAggregateTraces) {
  // A fresh builder (metrics isolated from the shared fixture one).
  ProductBuilder builder(*config_, campaign_->corrections());
  pipeline::NnBackend backend = make_nn_backend();

  Artifacts a = gt1r_artifacts();
  builder.build(a, ProductKind::freeboard, &backend, seasurface::Method::NasaEquation);
  Artifacts b = Artifacts::resume(a.segments, a.classes);
  builder.build(b, ProductKind::freeboard, nullptr, seasurface::Method::NasaEquation);

  EXPECT_EQ(builder.metrics().builds(), 2u);
  const pipeline::StageSnapshot stages = builder.metrics().stages();
  EXPECT_EQ(stages[static_cast<std::size_t>(StageId::preprocess)].stats.count(), 1u);
  EXPECT_EQ(stages[static_cast<std::size_t>(StageId::classify)].stats.count(), 1u);
  EXPECT_EQ(stages[static_cast<std::size_t>(StageId::seasurface)].stats.count(), 2u);
  EXPECT_EQ(stages[static_cast<std::size_t>(StageId::freeboard)].stats.count(), 2u);
  EXPECT_EQ(builder.metrics().build().stats.count(), 2u);
}

}  // namespace
