// Cluster-layer tests: HashRing balance and minimal-churn properties,
// consistent-hash routing determinism, hot-key replica spreading, the peer
// RAM fetch (counter-asserted to skip shard IO and inference), node kill +
// re-route through the shared disk tier, warm() shallow prefetch feeding
// the cross-tier resume on the owning node, merged per-node observability
// snapshots, and bit-identity of cluster-served products with a single
// GranuleService across every path (route, peer fetch, rebuild after a
// kill).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <tuple>
#include <unistd.h>
#include <vector>

#include "core/campaign.hpp"
#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "h5lite/granule_io.hpp"
#include "mapred/engine.hpp"
#include "obs/export.hpp"
#include "serve/cluster.hpp"
#include "serve/hash_ring.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace is2;
using atl03::BeamId;
using serve::Cluster;
using serve::ClusterConfig;
using serve::GranuleProduct;
using serve::HashRing;
using serve::ProductKey;
using serve::ProductRequest;
using serve::ServedFrom;

/// Field-exact comparison — the bit-identity bar cluster serving must clear
/// against a single-node service on every path.
void expect_bit_identical(const GranuleProduct& a, const GranuleProduct& b) {
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].s, b.segments[i].s);
    EXPECT_EQ(a.segments[i].h_mean, b.segments[i].h_mean);
    EXPECT_EQ(a.segments[i].h_std, b.segments[i].h_std);
    EXPECT_EQ(a.segments[i].photon_rate, b.segments[i].photon_rate);
  }
  ASSERT_EQ(a.classes, b.classes);
  ASSERT_EQ(a.sea_surface.points().size(), b.sea_surface.points().size());
  for (std::size_t i = 0; i < a.sea_surface.points().size(); ++i) {
    EXPECT_EQ(a.sea_surface.points()[i].s, b.sea_surface.points()[i].s);
    EXPECT_EQ(a.sea_surface.points()[i].h_ref, b.sea_surface.points()[i].h_ref);
  }
  ASSERT_EQ(a.freeboard.points.size(), b.freeboard.points.size());
  for (std::size_t i = 0; i < a.freeboard.points.size(); ++i) {
    EXPECT_EQ(a.freeboard.points[i].s, b.freeboard.points[i].s);
    EXPECT_EQ(a.freeboard.points[i].freeboard, b.freeboard.points[i].freeboard);
    EXPECT_EQ(a.freeboard.points[i].cls, b.freeboard.points[i].cls);
  }
}

// ---------------------------------------------------------------------------
// HashRing (pure, no campaign)
// ---------------------------------------------------------------------------

TEST(HashRing, MembershipAndEmptyRing) {
  HashRing ring(8);
  EXPECT_EQ(ring.num_nodes(), 0u);
  EXPECT_THROW(ring.owner(123), std::runtime_error);
  EXPECT_TRUE(ring.replicas(123, 2).empty());

  ring.add(0);
  ring.add(0);  // idempotent
  EXPECT_EQ(ring.num_nodes(), 1u);
  EXPECT_TRUE(ring.contains(0));
  EXPECT_FALSE(ring.contains(1));
  EXPECT_EQ(ring.owner(123), 0u);  // single node owns everything

  ring.remove(0);
  ring.remove(0);  // idempotent
  EXPECT_EQ(ring.num_nodes(), 0u);
}

TEST(HashRing, ReplicasAreDistinctOwnerFirstAndCapped) {
  HashRing ring(64);
  for (std::uint32_t n = 0; n < 4; ++n) ring.add(n);

  for (std::uint64_t i = 0; i < 200; ++i) {
    const std::uint64_t h = util::hash64(i);
    const auto reps = ring.replicas(h, 3);
    ASSERT_EQ(reps.size(), 3u);
    EXPECT_EQ(reps.front(), ring.owner(h));
    std::vector<std::uint32_t> sorted = reps;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end()) << "key " << i;
  }
  // Asking for more replicas than nodes returns all nodes, once each.
  auto all = ring.replicas(util::hash64(7), 10);
  EXPECT_EQ(all.size(), 4u);
}

TEST(HashRing, BalanceBoundAcrossSyntheticKeys) {
  // The balance property the cluster leans on: at the default 128 vnodes
  // per node, no node owns much more than its fair share of a synthetic
  // keyspace, at any plausible fleet size. (A node's share spreads as
  // ~1/sqrt(vnodes), so this is a real design constraint: 64 vnodes
  // measurably breaks the 1.25 bound.)
  constexpr std::size_t kKeys = 1000;
  for (const std::size_t nodes : {2u, 3u, 4u, 5u, 8u}) {
    HashRing ring;  // default vnodes
    for (std::uint32_t n = 0; n < nodes; ++n) ring.add(n);

    std::vector<std::size_t> load(nodes, 0);
    for (std::uint64_t i = 0; i < kKeys; ++i) ++load[ring.owner(util::hash64(i))];

    const std::size_t max = *std::max_element(load.begin(), load.end());
    const double mean = static_cast<double>(kKeys) / static_cast<double>(nodes);
    EXPECT_GT(*std::min_element(load.begin(), load.end()), 0u);
    EXPECT_LE(static_cast<double>(max) / mean, 1.25) << "fleet of " << nodes;
  }
}

TEST(HashRing, AddingANodeRemapsOnlyItsShare) {
  // Minimal churn: growing N -> N+1 moves ~K/(N+1) keys, all TO the new
  // node; removing it restores the original assignment exactly.
  constexpr std::size_t kNodes = 4;
  constexpr std::size_t kKeys = 1000;
  HashRing ring;
  for (std::uint32_t n = 0; n < kNodes; ++n) ring.add(n);

  std::vector<std::uint32_t> before(kKeys);
  for (std::uint64_t i = 0; i < kKeys; ++i) before[i] = ring.owner(util::hash64(i));

  ring.add(kNodes);
  std::size_t remapped = 0;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const std::uint32_t now = ring.owner(util::hash64(i));
    if (now != before[i]) {
      ++remapped;
      EXPECT_EQ(now, kNodes) << "churned key moved between old nodes";
    }
  }
  // Expected share is K/(N+1) = 200; allow generous statistical slack but
  // stay far below the ~K remaps naive modulo hashing would cost.
  EXPECT_GT(remapped, 0u);
  EXPECT_LE(remapped, 2 * kKeys / (kNodes + 1));

  ring.remove(kNodes);
  for (std::uint64_t i = 0; i < kKeys; ++i)
    ASSERT_EQ(ring.owner(util::hash64(i)), before[i]) << "key " << i;
}

// ---------------------------------------------------------------------------
// Cluster on a tiny campaign
// ---------------------------------------------------------------------------

class ClusterCampaign : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new core::PipelineConfig(core::PipelineConfig::tiny());
    campaign_ = new core::Campaign(*config_);
    pair_ = new core::PairDataset(campaign_->generate(1));

    dir_ = (std::filesystem::temp_directory_path() /
            ("is2_cluster_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
    shards_ = new core::ShardSet();
    core::write_shards(pair_->granule, 0, /*chunks_per_beam=*/2, dir_, *shards_);
    index_ = new serve::ShardIndex(serve::ShardIndex::build(shards_->files));

    const auto* files = index_->find(pair_->granule.id, BeamId::Gt1r);
    ASSERT_NE(files, nullptr);
    const auto merged = serve::ShardIndex::load_merged(*files);
    const auto pre = atl03::preprocess_beam(merged, merged.beams[0],
                                            campaign_->corrections(), config_->preprocess);
    auto segments = resample::resample(pre, config_->segmenter);
    const resample::FirstPhotonBiasCorrector fpb(config_->instrument.dead_time_m,
                                                 config_->instrument.strong_channels);
    fpb.apply(segments);
    const auto features =
        resample::to_features(segments, resample::rolling_baseline(segments));
    scaler_ = new resample::FeatureScaler(resample::FeatureScaler::fit(features));
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    delete scaler_;
    delete index_;
    delete shards_;
    delete pair_;
    delete campaign_;
    delete config_;
    scaler_ = nullptr;
    index_ = nullptr;
    shards_ = nullptr;
    pair_ = nullptr;
    campaign_ = nullptr;
    config_ = nullptr;
  }

  /// Deterministic model: every node (and the single-node reference) gets
  /// identical weights, the property that makes products fleet-portable.
  static nn::Sequential make_model() {
    util::Rng rng(99);
    return nn::make_lstm_model(config_->sequence_window, resample::FeatureRow::kDim, rng);
  }

  static std::unique_ptr<Cluster> make_cluster(ClusterConfig cfg) {
    return std::make_unique<Cluster>(cfg, *config_, campaign_->corrections(), *index_,
                                     &ClusterCampaign::make_model, *scaler_);
  }

  static std::unique_ptr<serve::GranuleService> make_single_node(serve::ServiceConfig cfg) {
    return std::make_unique<serve::GranuleService>(cfg, *config_, campaign_->corrections(),
                                                   *index_, &ClusterCampaign::make_model,
                                                   *scaler_);
  }

  static ProductRequest request(BeamId beam) {
    ProductRequest r;
    r.granule_id = pair_->granule.id;
    r.beam = beam;
    return r;
  }

  static core::PipelineConfig* config_;
  static core::Campaign* campaign_;
  static core::PairDataset* pair_;
  static core::ShardSet* shards_;
  static serve::ShardIndex* index_;
  static resample::FeatureScaler* scaler_;
  static std::string dir_;
};

core::PipelineConfig* ClusterCampaign::config_ = nullptr;
core::Campaign* ClusterCampaign::campaign_ = nullptr;
core::PairDataset* ClusterCampaign::pair_ = nullptr;
core::ShardSet* ClusterCampaign::shards_ = nullptr;
serve::ShardIndex* ClusterCampaign::index_ = nullptr;
resample::FeatureScaler* ClusterCampaign::scaler_ = nullptr;
std::string ClusterCampaign::dir_;

TEST_F(ClusterCampaign, RoutingIsDeterministicAndKeysAreFleetPortable) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.node.workers = 1;
  auto cluster = make_cluster(cfg);

  const ProductRequest r = request(BeamId::Gt1r);
  const ProductKey key = cluster->key_for(r);
  // Identical config + model on every node -> identical keys everywhere
  // (what makes route-by-key and peer fetch sound).
  for (std::size_t i = 0; i < cluster->num_nodes(); ++i)
    EXPECT_EQ(cluster->node(i).key_for(r), key);

  const std::uint32_t owner = cluster->owner_of(key);
  const auto reps = cluster->replica_set_of(key);
  ASSERT_EQ(reps.size(), cfg.replication_factor);
  EXPECT_EQ(reps.front(), owner);
  EXPECT_NE(reps[0], reps[1]);

  // All stage-graph depths of one granule co-locate (the ring hash is
  // kind-normalized), so a warmed shallow prefix can seed deeper requests.
  ProductRequest shallow = r;
  shallow.kind = pipeline::ProductKind::classification;
  EXPECT_EQ(cluster->owner_of(cluster->key_for(shallow)), owner);

  // Cold keys are owner-routed: both requests land on the same node.
  ASSERT_NE(cluster->submit(r).get().product, nullptr);
  ASSERT_NE(cluster->submit(r).get().product, nullptr);
  const auto m = cluster->metrics();
  EXPECT_EQ(m.requests, 2u);
  EXPECT_EQ(m.routed[owner], 2u);
  EXPECT_EQ(m.nodes[owner].fast_hits, 1u);  // second request RAM-hit there
  EXPECT_EQ(m.replica_routes, 0u);          // never crossed the hot threshold
  EXPECT_DOUBLE_EQ(m.imbalance(), 3.0);     // all load on 1 of 3 live nodes
}

TEST_F(ClusterCampaign, PeerFetchSkipsShardIoAndInference) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.replication_factor = 2;
  cfg.hot_key_threshold = 1;  // every request is hot: replica round-robin
  cfg.node.workers = 1;
  auto cluster = make_cluster(cfg);

  const ProductRequest r = request(BeamId::Gt1r);
  const auto reps = cluster->replica_set_of(cluster->key_for(r));
  ASSERT_EQ(reps.size(), 2u);

  // Request 1 round-robins to reps[0] (the owner) and cold-builds there.
  const auto first = cluster->submit(r).get();
  ASSERT_NE(first.product, nullptr);
  EXPECT_EQ(first.source, ServedFrom::build);
  EXPECT_GT(cluster->metrics().hot_keys, 0u);

  // Request 2 lands on reps[1], whose RAM is cold — the router probes the
  // replica set, finds the product on reps[0], and promotes it across.
  const auto loads_before = h5::load_granule_call_count();
  const auto second = cluster->submit(r).get();
  ASSERT_NE(second.product, nullptr);
  EXPECT_TRUE(second.from_cache);
  // The resident object itself moved across nodes: pointer-equal, hence
  // bit-identical by construction.
  EXPECT_EQ(second.product.get(), first.product.get());
  EXPECT_EQ(h5::load_granule_call_count(), loads_before);  // no shard IO

  const auto m = cluster->metrics();
  EXPECT_EQ(m.peer_fetches, 1u);
  EXPECT_GE(m.peer_probes, 1u);
  EXPECT_EQ(m.routed[reps[1]], 1u);
  EXPECT_EQ(m.replica_routes, 1u);
  // The fetching node served from RAM without ever running the pipeline.
  EXPECT_EQ(m.nodes[reps[1]].inference_windows, 0u);
  EXPECT_EQ(m.nodes[reps[1]].scheduler.dispatched, 0u);
  EXPECT_EQ(m.nodes[reps[1]].fast_hits, 1u);
  EXPECT_GT(m.nodes[reps[0]].inference_windows, 0u);
}

TEST_F(ClusterCampaign, NodeKillReRoutesThroughSharedDiskBitIdentically) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.replication_factor = 1;  // owner-only: the kill must do the re-route
  cfg.node.workers = 1;
  cfg.shared_disk_dir = dir_ + "/cluster_disk_kill";
  auto cluster = make_cluster(cfg);
  ASSERT_NE(cluster->shared_disk(), nullptr);

  // Single-node reference: the ground truth every cluster path must match.
  GranuleProduct reference;
  {
    serve::ServiceConfig single;
    single.workers = 1;
    auto service = make_single_node(single);
    reference = *service->submit(request(BeamId::Gt2r)).get().product;
  }

  const ProductRequest r = request(BeamId::Gt2r);
  const std::uint32_t owner = cluster->owner_of(cluster->key_for(r));
  const auto cold = cluster->submit(r).get();
  ASSERT_NE(cold.product, nullptr);
  EXPECT_EQ(cold.source, ServedFrom::build);
  expect_bit_identical(*cold.product, reference);
  cluster->wait_disk_writebacks();
  EXPECT_EQ(cluster->metrics().shared_disk.writes, 1u);

  cluster->kill_node(owner);
  cluster->kill_node(owner);  // idempotent
  EXPECT_FALSE(cluster->is_live(owner));
  EXPECT_EQ(cluster->live_count(), 2u);

  // The key re-routes to a surviving node (minimal churn moved only the dead
  // node's ranges) and recovers from the shared cold tier without shard IO.
  const std::uint32_t new_owner = cluster->owner_of(cluster->key_for(r));
  EXPECT_NE(new_owner, owner);
  const auto loads_before = h5::load_granule_call_count();
  const auto rerouted = cluster->submit(r).get();
  ASSERT_NE(rerouted.product, nullptr);
  EXPECT_EQ(rerouted.source, ServedFrom::disk);
  EXPECT_EQ(h5::load_granule_call_count(), loads_before);  // no shard IO
  expect_bit_identical(*rerouted.product, reference);

  const auto m = cluster->metrics();
  EXPECT_GE(m.shared_disk.hits, 1u);
  EXPECT_EQ(m.routed[new_owner], 1u);
  EXPECT_EQ(m.nodes[new_owner].inference_windows, 0u);  // disk hit, no build
}

TEST_F(ClusterCampaign, WarmPrefetchesShallowKindAndSeedsDeepening) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node.workers = 1;
  auto cluster = make_cluster(cfg);

  std::vector<ProductRequest> all;
  for (const auto& [granule, beam] : index_->entries()) {
    ProductRequest r;
    r.granule_id = granule;
    r.beam = beam;
    all.push_back(r);  // full freeboard kind: warm must shallow it
  }
  ASSERT_FALSE(all.empty());
  mapred::Engine engine({1, 2});
  EXPECT_EQ(cluster->warm(all, engine), all.size());
  EXPECT_EQ(cluster->warm(all, engine), 0u);  // idempotent

  // Warm never deepens: every node holds classification-kind products only,
  // and warm traffic stayed out of the scheduler queues and the popularity
  // ledger (nothing is hot, nothing replica-routed).
  std::size_t warmed_entries = 0;
  for (std::size_t i = 0; i < cluster->num_nodes(); ++i) {
    const auto nm = cluster->node(i).metrics();
    warmed_entries += nm.cache.entries;
    EXPECT_EQ(nm.scheduler.dispatched, 0u);
  }
  EXPECT_EQ(warmed_entries, all.size());
  EXPECT_EQ(cluster->metrics().hot_keys, 0u);

  // A deep request now resumes from the warmed prefix on its owner: no
  // shard IO, no inference, only the seasurface + freeboard suffix.
  const ProductRequest r = request(BeamId::Gt1r);
  const std::uint32_t owner = cluster->owner_of(cluster->key_for(r));
  const auto windows_before = cluster->node(owner).metrics().inference_windows;
  const auto loads_before = h5::load_granule_call_count();
  const auto deep = cluster->submit(r).get();
  ASSERT_NE(deep.product, nullptr);
  EXPECT_EQ(deep.source, ServedFrom::build);  // a build, but a resumed one
  EXPECT_EQ(h5::load_granule_call_count(), loads_before);

  const auto nm = cluster->node(owner).metrics();
  EXPECT_EQ(nm.resumed_builds, 1u);
  EXPECT_EQ(nm.inference_windows, windows_before);

  // Bit-identical to a single node running the same warm-then-deepen flow.
  serve::ServiceConfig single;
  single.workers = 1;
  auto service = make_single_node(single);
  expect_bit_identical(*deep.product, *service->submit(r).get().product);
}

TEST_F(ClusterCampaign, MergedSnapshotLabelsNodePointsAndStaysSorted) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node.workers = 1;
  auto cluster = make_cluster(cfg);
  ASSERT_NE(cluster->submit(request(BeamId::Gt1r)).get().product, nullptr);

  const obs::RegistrySnapshot snap = cluster->obs_snapshot();
  ASSERT_FALSE(snap.points.empty());
  // The exporter contract: points sorted by (name, labels) so each family
  // is contiguous and HELP/TYPE are emitted once.
  EXPECT_TRUE(std::is_sorted(snap.points.begin(), snap.points.end(),
                             [](const obs::MetricPoint& a, const obs::MetricPoint& b) {
                               return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
                             }));

  auto node_label_of = [](const obs::MetricPoint& p) -> std::string {
    for (const auto& [k, v] : p.labels)
      if (k == "node") return v;
    return "";
  };
  std::size_t node_labeled = 0;
  for (const obs::MetricPoint& p : snap.points) {
    const std::string node = node_label_of(p);
    if (p.name.rfind("is2_cluster_", 0) == 0 && p.name != "is2_cluster_routed_total") {
      // Router-level instruments are fleet-scoped, not per node.
      EXPECT_EQ(node, "") << p.name;
    } else if (p.name.rfind("is2_sched_", 0) == 0 || p.name.rfind("is2_serve_", 0) == 0) {
      // Node-local instruments carry the bounded-cardinality node label.
      ASSERT_NE(node, "") << p.name;
      EXPECT_TRUE(node == "node0" || node == "node1") << node;
    }
    if (!node.empty()) ++node_labeled;
    // Label sets stay sorted after the node-label insert.
    EXPECT_TRUE(std::is_sorted(p.labels.begin(), p.labels.end())) << p.name;
  }
  EXPECT_GT(node_labeled, 0u);

  // And the whole thing renders as one valid exposition.
  const std::string prom = obs::to_prometheus(snap);
  EXPECT_NE(prom.find("# HELP is2_cluster_peer_probe_total"), std::string::npos);
  EXPECT_NE(prom.find("node=\"node1\""), std::string::npos);
}

TEST_F(ClusterCampaign, ShutdownIsIdempotentAndRefusesNewTraffic) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node.workers = 1;
  auto cluster = make_cluster(cfg);
  ASSERT_NE(cluster->submit(request(BeamId::Gt1r)).get().product, nullptr);
  cluster->shutdown();
  cluster->shutdown();
  EXPECT_THROW(cluster->submit(request(BeamId::Gt1r)), std::runtime_error);
  EXPECT_THROW(cluster->try_submit(request(BeamId::Gt1r)), std::runtime_error);
}

}  // namespace
