// Map-reduce engine tests: task coverage, topology grids, exception
// propagation and the staged LOAD/MAP/REDUCE driver.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "mapred/engine.hpp"

namespace {

using namespace is2::mapred;

TEST(Engine, RunsEveryTaskExactlyOnce) {
  Engine engine({2, 3});
  std::vector<std::atomic<int>> hits(100);
  engine.run_stage(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Engine, ResultsInTaskOrder) {
  Engine engine({4, 2});
  const auto results = engine.run_stage<std::size_t>(64, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(Engine, ZeroTasksIsNoop) {
  Engine engine({1, 1});
  const auto results = engine.run_stage<int>(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(Engine, RejectsEmptyTopology) {
  EXPECT_THROW(Engine({0, 4}), std::invalid_argument);
  EXPECT_THROW(Engine({4, 0}), std::invalid_argument);
}

TEST(Engine, ExceptionInTaskPropagates) {
  Engine engine({2, 2});
  EXPECT_THROW(engine.run_stage(16,
                                [](std::size_t i) {
                                  if (i == 7) throw std::runtime_error("task failure");
                                }),
               std::runtime_error);
}

TEST(Engine, FewerTasksThanWorkers) {
  Engine engine({4, 4});
  const auto results = engine.run_stage<int>(3, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(results, (std::vector<int>{0, 1, 2}));
}

class TopologyGrid : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(TopologyGrid, SameResultsOnAnyTopology) {
  const auto [execs, cores] = GetParam();
  Engine engine({execs, cores});
  const auto results =
      engine.run_stage<double>(97, [](std::size_t i) { return static_cast<double>(i) * 0.5; });
  double sum = std::accumulate(results.begin(), results.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 0.5 * 97.0 * 96.0 / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, TopologyGrid,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{1, 4},
                                           std::pair<std::size_t, std::size_t>{2, 2},
                                           std::pair<std::size_t, std::size_t>{4, 1},
                                           std::pair<std::size_t, std::size_t>{4, 4}));

TEST(MapReduce, StagedJobProducesResultsAndTimings) {
  Engine engine({2, 2});
  std::atomic<int> map_calls{0};
  auto result = run_map_reduce<int, int>(
      engine, 20,
      /*load=*/[](std::size_t i) { return static_cast<int>(i); },
      /*map=*/
      [&](std::vector<int>& parts) {
        ++map_calls;
        for (auto& p : parts) p += 1;  // key assignment may annotate partitions
      },
      /*reduce=*/[](int& part, std::size_t) { return part * 10; });
  ASSERT_EQ(result.results.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(result.results[i], static_cast<int>(i + 1) * 10);
  EXPECT_EQ(map_calls.load(), 1);
  EXPECT_GE(result.timing.load_s, 0.0);
  EXPECT_GE(result.timing.map_s, 0.0);
  EXPECT_GE(result.timing.reduce_s, 0.0);
}

TEST(MapReduce, ParallelReduceIsFasterOnCpuBoundWork) {
  // Coarse sanity: 16 workers should beat 1 worker on an embarrassingly
  // parallel compute load (not a precise benchmark, generous margin).
  auto work = [](int& seed, std::size_t) {
    volatile double acc = 0.0;
    for (int i = 0; i < 2'000'000; ++i) acc = acc + static_cast<double>((seed + i) % 97) * 1e-9;
    return acc;
  };
  auto run = [&](ClusterTopology topo) {
    Engine engine(topo);
    is2::util::Timer t;
    run_map_reduce<int, double>(
        engine, 32, [](std::size_t i) { return static_cast<int>(i); },
        [](std::vector<int>&) {}, work);
    return t.seconds();
  };
  const double serial = run({1, 1});
  const double parallel = run({4, 4});
  EXPECT_LT(parallel, serial * 0.5);
}

}  // namespace
