// Map-reduce engine tests: task coverage, topology grids, exception
// propagation and the staged LOAD/MAP/REDUCE driver.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "mapred/engine.hpp"

namespace {

using namespace is2::mapred;

TEST(Engine, RunsEveryTaskExactlyOnce) {
  Engine engine({2, 3});
  std::vector<std::atomic<int>> hits(100);
  engine.run_stage(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Engine, ResultsInTaskOrder) {
  Engine engine({4, 2});
  const auto results = engine.run_stage<std::size_t>(64, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(Engine, ZeroTasksIsNoop) {
  Engine engine({1, 1});
  const auto results = engine.run_stage<int>(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(Engine, RejectsEmptyTopology) {
  EXPECT_THROW(Engine({0, 4}), std::invalid_argument);
  EXPECT_THROW(Engine({4, 0}), std::invalid_argument);
}

TEST(Engine, ExceptionInTaskPropagates) {
  Engine engine({2, 2});
  EXPECT_THROW(engine.run_stage(16,
                                [](std::size_t i) {
                                  if (i == 7) throw std::runtime_error("task failure");
                                }),
               std::runtime_error);
}

TEST(Engine, FewerTasksThanWorkers) {
  Engine engine({4, 4});
  const auto results = engine.run_stage<int>(3, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(results, (std::vector<int>{0, 1, 2}));
}

class TopologyGrid : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(TopologyGrid, SameResultsOnAnyTopology) {
  const auto [execs, cores] = GetParam();
  Engine engine({execs, cores});
  const auto results =
      engine.run_stage<double>(97, [](std::size_t i) { return static_cast<double>(i) * 0.5; });
  double sum = std::accumulate(results.begin(), results.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 0.5 * 97.0 * 96.0 / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, TopologyGrid,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{1, 4},
                                           std::pair<std::size_t, std::size_t>{2, 2},
                                           std::pair<std::size_t, std::size_t>{4, 1},
                                           std::pair<std::size_t, std::size_t>{4, 4}));

TEST(MapReduce, StagedJobProducesResultsAndTimings) {
  Engine engine({2, 2});
  std::atomic<int> map_calls{0};
  auto result = run_map_reduce<int, int>(
      engine, 20,
      /*load=*/[](std::size_t i) { return static_cast<int>(i); },
      /*map=*/
      [&](std::vector<int>& parts) {
        ++map_calls;
        for (auto& p : parts) p += 1;  // key assignment may annotate partitions
      },
      /*reduce=*/[](int& part, std::size_t) { return part * 10; });
  ASSERT_EQ(result.results.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(result.results[i], static_cast<int>(i + 1) * 10);
  EXPECT_EQ(map_calls.load(), 1);
  EXPECT_GE(result.timing.load_s, 0.0);
  EXPECT_GE(result.timing.map_s, 0.0);
  EXPECT_GE(result.timing.reduce_s, 0.0);
}

TEST(MapReduce, ParallelReduceIsFasterOnCpuBoundWork) {
  // Coarse sanity: 16 workers should beat 1 worker on an embarrassingly
  // parallel compute load (not a precise benchmark, generous margin).
  if (std::thread::hardware_concurrency() < 4)
    GTEST_SKIP() << "wall-clock speedup needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  auto work = [](int& seed, std::size_t) {
    volatile double acc = 0.0;
    for (int i = 0; i < 2'000'000; ++i) acc = acc + static_cast<double>((seed + i) % 97) * 1e-9;
    return acc;
  };
  auto run = [&](ClusterTopology topo) {
    Engine engine(topo);
    is2::util::Timer t;
    run_map_reduce<int, double>(
        engine, 32, [](std::size_t i) { return static_cast<int>(i); },
        [](std::vector<int>&) {}, work);
    return t.seconds();
  };
  const double serial = run({1, 1});
  const double parallel = run({4, 4});
  EXPECT_LT(parallel, serial * 0.5);
}

TEST(Engine, UnevenTaskDurationsPreserveResultOrder) {
  // Straggler-heavy load: durations vary ~10x across tasks, so fast cores
  // overtake slow ones. Results must still land in task order, exactly once.
  Engine engine({2, 2});
  std::vector<std::atomic<int>> runs(48);
  const auto results = engine.run_stage<std::size_t>(48, [&](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::microseconds((i % 7) * 300));
    runs[i].fetch_add(1);
    return i * 3 + 1;
  });
  ASSERT_EQ(results.size(), 48u);
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_EQ(results[i], i * 3 + 1);
    EXPECT_EQ(runs[i].load(), 1);
  }
}

TEST(Engine, WideVsDeepTopologiesAgree) {
  // executors=1,cores=N (one big machine) vs executors=N,cores=1 (N small
  // machines): same tasks, same results, same order.
  auto run = [](ClusterTopology topo) {
    Engine engine(topo);
    return engine.run_stage<double>(
        64, [](std::size_t i) { return static_cast<double>(i * i) + 0.25; });
  };
  const auto wide = run({1, 4});
  const auto deep = run({4, 1});
  ASSERT_EQ(wide.size(), deep.size());
  for (std::size_t i = 0; i < wide.size(); ++i) EXPECT_EQ(wide[i], deep[i]);
}

TEST(Engine, RoundRobinPlacementWithoutCrossExecutorStealing) {
  // With single-core executors, every task assigned to executor e (tasks
  // with i % executors == e) must run on that executor's one thread — even
  // when the other executor idles. Uneven durations make stealing tempting:
  // executor 0 gets all the slow tasks, executor 1 finishes early.
  Engine engine({2, 1});
  std::vector<std::thread::id> ran_on(30);
  engine.run_stage(30, [&](std::size_t i) {
    if (i % 2 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ran_on[i] = std::this_thread::get_id();
  });
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(ran_on[i], ran_on[i % 2]) << "task " << i << " migrated executors";
  }
  EXPECT_NE(ran_on[0], ran_on[1]);  // the two executors are distinct threads
}

TEST(Engine, ThrowingTaskDoesNotLeaveDanglingWorkers) {
  // Regression (same race as ThreadPool::parallel_for): a task exception
  // must not unwind run_stage while other cores still use its stack state.
  for (int rep = 0; rep < 50; ++rep) {
    Engine engine({2, 2});
    EXPECT_THROW(engine.run_stage(32,
                                  [](std::size_t i) {
                                    if (i == 1) throw std::runtime_error("partition lost");
                                  }),
                 std::runtime_error);
  }
}

TEST(Engine, StageBarrierCompletesBeforeReturn) {
  // run_stage is a barrier: when it returns, every task's side effect is
  // visible, even under a straggler distribution.
  Engine engine({3, 2});
  std::atomic<int> done{0};
  engine.run_stage(25, [&](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::microseconds(i * 50));
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 25);
}

}  // namespace
