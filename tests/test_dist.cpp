// Distributed-training substrate tests: ring all-reduce correctness across
// rank counts and buffer sizes, broadcast, distributed optimizer equivalence
// and the synchronous data-parallel trainer — including the sharding edge
// cases (uneven tails, dataset smaller than one global batch), the
// bit-exact ranks=1 fast path and divergent-factory re-alignment.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <mutex>
#include <thread>

#include "dist/comm.hpp"
#include "dist/hvd.hpp"
#include "dist/trainer.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"

namespace {

using namespace is2;
using dist::Communicator;
using is2::util::Rng;

/// Run fn(rank) on `n` threads and join.
void on_ranks(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) threads.emplace_back([&, r] { fn(r); });
  for (auto& t : threads) t.join();
}

struct AllreduceCase {
  int ranks;
  std::size_t len;
};

class AllreduceSweep : public ::testing::TestWithParam<AllreduceCase> {};

TEST_P(AllreduceSweep, SumMatchesSerialReference) {
  const auto [ranks, len] = GetParam();
  Communicator comm(ranks);
  // Each rank's buffer: deterministic pseudo-random values.
  std::vector<std::vector<float>> bufs(ranks);
  std::vector<float> want(len, 0.0f);
  for (int r = 0; r < ranks; ++r) {
    Rng rng(100 + r);
    bufs[r].resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      bufs[r][i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      want[i] += bufs[r][i];
    }
  }
  on_ranks(ranks, [&](int r) { comm.allreduce_sum(r, bufs[static_cast<std::size_t>(r)]); });
  for (int r = 0; r < ranks; ++r)
    for (std::size_t i = 0; i < len; ++i)
      ASSERT_NEAR(bufs[r][i], want[i], 1e-4) << "rank " << r << " index " << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllreduceSweep,
                         ::testing::Values(AllreduceCase{1, 16}, AllreduceCase{2, 1},
                                           AllreduceCase{2, 1024}, AllreduceCase{3, 7},
                                           AllreduceCase{4, 64}, AllreduceCase{6, 1000},
                                           AllreduceCase{8, 333}, AllreduceCase{8, 4096}));

TEST(Comm, AllreduceMeanDividesBySize) {
  const int ranks = 4;
  Communicator comm(ranks);
  std::vector<std::vector<float>> bufs(ranks, std::vector<float>(10, 0.0f));
  for (int r = 0; r < ranks; ++r)
    for (auto& v : bufs[r]) v = static_cast<float>(r + 1);  // 1,2,3,4 -> mean 2.5
  on_ranks(ranks, [&](int r) { comm.allreduce_mean(r, bufs[static_cast<std::size_t>(r)]); });
  for (int r = 0; r < ranks; ++r)
    for (auto v : bufs[r]) EXPECT_FLOAT_EQ(v, 2.5f);
}

TEST(Comm, BroadcastCopiesRoot) {
  const int ranks = 5;
  Communicator comm(ranks);
  std::vector<std::vector<float>> bufs(ranks, std::vector<float>(8, -1.0f));
  for (std::size_t i = 0; i < 8; ++i) bufs[2][i] = static_cast<float>(i);
  on_ranks(ranks, [&](int r) { comm.broadcast(r, bufs[static_cast<std::size_t>(r)], 2); });
  for (int r = 0; r < ranks; ++r)
    for (std::size_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(bufs[r][i], static_cast<float>(i));
}

TEST(Comm, SequentialCollectivesDoNotInterfere) {
  const int ranks = 4;
  Communicator comm(ranks);
  std::vector<std::vector<float>> a(ranks, std::vector<float>(33, 1.0f));
  std::vector<std::vector<float>> b(ranks, std::vector<float>(17, 2.0f));
  on_ranks(ranks, [&](int r) {
    comm.allreduce_sum(r, a[static_cast<std::size_t>(r)]);
    comm.allreduce_sum(r, b[static_cast<std::size_t>(r)]);
  });
  for (int r = 0; r < ranks; ++r) {
    for (auto v : a[r]) EXPECT_FLOAT_EQ(v, 4.0f);
    for (auto v : b[r]) EXPECT_FLOAT_EQ(v, 8.0f);
  }
}

TEST(Comm, BytesPerRankFormula) {
  EXPECT_EQ(Communicator::allreduce_bytes_per_rank(1, 100), 0u);
  // 2*(N-1)/N * n floats * 4 bytes with n=100, N=4 -> 2*3*25*4 = 600.
  EXPECT_EQ(Communicator::allreduce_bytes_per_rank(4, 100), 600u);
}

TEST(Hvd, DistributedOptimizerAveragesGradients) {
  // Two ranks with different gradients: after the distributed step both
  // replicas must have applied the *average* gradient.
  auto ctx = dist::init(2);
  std::vector<nn::Mat> w(2, nn::Mat(1, 4, 1.0f));
  std::vector<nn::Mat> g(2, nn::Mat(1, 4));
  on_ranks(2, [&](int r) {
    for (int i = 0; i < 4; ++i) g[r].at(0, static_cast<std::size_t>(i)) = r == 0 ? 1.0f : 3.0f;
    dist::DistributedOptimizer opt(std::make_unique<nn::Sgd>(0.5), ctx, r);
    std::vector<nn::Param> params{{"w", &w[r], &g[r]}};
    opt.step(params);
  });
  // Average gradient = 2.0, lr 0.5 -> w = 1 - 1 = 0 on both ranks.
  for (int r = 0; r < 2; ++r)
    for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(w[r].at(0, static_cast<std::size_t>(i)), 0.0f);
}

nn::Dataset toy_task(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  nn::Dataset d;
  d.x = nn::Tensor3(n, 5, 6);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
    for (std::size_t t = 0; t < 5; ++t) {
      float* row = d.x.at(i, t);
      for (int f = 0; f < 6; ++f)
        row[f] = static_cast<float>(rng.normal(cls * 1.0, 0.5));
    }
    d.y[i] = cls;
  }
  return d;
}

TEST(Trainer, SingleRankTrainsToHighAccuracy) {
  const auto train = toy_task(2'000, 1);
  const auto test = toy_task(400, 2);
  dist::TrainerConfig cfg;
  cfg.ranks = 1;
  cfg.epochs = 5;
  const auto result = dist::train_distributed(
      [] {
        Rng rng(3);
        return nn::make_mlp_model(5, 6, rng);
      },
      train, test, cfg);
  EXPECT_GT(result.test_metrics.accuracy, 0.9);
  EXPECT_EQ(result.epoch_times_s.size(), 5u);
  EXPECT_GT(result.samples_per_s, 0.0);
}

TEST(Trainer, MultiRankKeepsAccuracy) {
  const auto train = toy_task(2'000, 4);
  const auto test = toy_task(400, 5);
  auto run = [&](int ranks) {
    dist::TrainerConfig cfg;
    cfg.ranks = ranks;
    cfg.epochs = 10;
    return dist::train_distributed(
        [] {
          Rng rng(6);
          return nn::make_mlp_model(5, 6, rng);
        },
        train, test, cfg);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  // Synchronous data parallelism quadruples the effective batch, so a small
  // accuracy drop at equal epochs is expected; it must stay small.
  EXPECT_GT(parallel.test_metrics.accuracy, serial.test_metrics.accuracy - 0.06);
  EXPECT_GT(parallel.floats_reduced, 0u);
}

/// Bitwise equality over two models' full parameter lists.
::testing::AssertionResult weights_identical(nn::Sequential& a, nn::Sequential& b) {
  auto pa = a.params();
  auto pb = b.params();
  if (pa.size() != pb.size())
    return ::testing::AssertionFailure() << "parameter count " << pa.size() << " vs " << pb.size();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i].value->size() != pb[i].value->size())
      return ::testing::AssertionFailure() << pa[i].name << " size mismatch";
    if (std::memcmp(pa[i].value->data(), pb[i].value->data(),
                    pa[i].value->size() * sizeof(float)) != 0)
      return ::testing::AssertionFailure() << pa[i].name << " differs bitwise";
  }
  return ::testing::AssertionSuccess();
}

TEST(Hvd, BroadcastParametersAlignsDivergentReplicas) {
  // Three replicas built from different seeds; after the broadcast all must
  // be bitwise copies of rank 0's.
  auto ctx = dist::init(3);
  std::vector<nn::Sequential> models;
  for (int r = 0; r < 3; ++r) {
    Rng rng(50 + static_cast<std::uint64_t>(r));
    models.push_back(nn::make_mlp_model(5, 6, rng));
  }
  EXPECT_FALSE(weights_identical(models[0], models[1]));
  on_ranks(3, [&](int r) {
    auto params = models[static_cast<std::size_t>(r)].params();
    dist::broadcast_parameters(params, *ctx, r, /*root=*/0);
  });
  EXPECT_TRUE(weights_identical(models[0], models[1]));
  EXPECT_TRUE(weights_identical(models[0], models[2]));
}

TEST(Trainer, SingleRankMatchesPlainFitBitExact) {
  // ranks = 1 must be the plain Sequential::fit loop in disguise: same
  // shuffle stream, batch assembly, loss, optimizer and step sequence.
  const auto train = toy_task(500, 20);
  const auto test = toy_task(100, 21);

  dist::TrainerConfig cfg;
  cfg.ranks = 1;
  cfg.epochs = 3;
  cfg.batch_per_rank = 32;
  auto result = dist::train_distributed(
      [] {
        Rng rng(22);
        return nn::make_mlp_model(5, 6, rng);
      },
      train, test, cfg);

  Rng rng(22);
  auto reference = nn::make_mlp_model(5, 6, rng);
  nn::FocalLoss loss(2.0);
  nn::Adam adam(0.003);
  nn::FitConfig fit_cfg;
  fit_cfg.epochs = 3;
  fit_cfg.batch_size = 32;
  reference.fit(train, loss, adam, fit_cfg);

  EXPECT_TRUE(weights_identical(result.model, reference));
}

TEST(Trainer, DatasetSmallerThanGlobalBatch) {
  // 10 samples across 4 ranks × batch 8: one global batch of 10, ranks 0/1
  // get 8/2, ranks 2/3 run empty but stay in the collective sequence.
  const auto train = toy_task(10, 23);
  const auto test = toy_task(50, 24);
  dist::TrainerConfig cfg;
  cfg.ranks = 4;
  cfg.epochs = 2;
  cfg.batch_per_rank = 8;
  std::mutex mu;
  std::vector<std::vector<int>> seen(cfg.epochs, std::vector<int>(train.size(), 0));
  cfg.sample_hook = [&](int, std::size_t epoch, std::size_t sample) {
    std::lock_guard lock(mu);
    ++seen[epoch][sample];
  };
  const auto result = dist::train_distributed(
      [] {
        Rng rng(25);
        return nn::make_mlp_model(5, 6, rng);
      },
      train, test, cfg);
  EXPECT_EQ(result.epoch_times_s.size(), 2u);
  EXPECT_GT(result.floats_reduced, 0u);
  for (std::size_t e = 0; e < cfg.epochs; ++e)
    for (std::size_t i = 0; i < train.size(); ++i)
      EXPECT_EQ(seen[e][i], 1) << "epoch " << e << " sample " << i;
}

TEST(Trainer, UnevenShardTailsConsumeEachSampleOnce) {
  // 135 = 4×32 + 7: the last global batch leaves rank 0 with 7 samples and
  // ranks 1–3 empty. Every sample must be consumed exactly once per epoch.
  const auto train = toy_task(135, 26);
  const auto test = toy_task(50, 27);
  dist::TrainerConfig cfg;
  cfg.ranks = 4;
  cfg.epochs = 3;
  cfg.batch_per_rank = 32;
  std::mutex mu;
  std::vector<std::vector<int>> seen(cfg.epochs, std::vector<int>(train.size(), 0));
  cfg.sample_hook = [&](int, std::size_t epoch, std::size_t sample) {
    std::lock_guard lock(mu);
    ++seen[epoch][sample];
  };
  (void)dist::train_distributed(
      [] {
        Rng rng(28);
        return nn::make_mlp_model(5, 6, rng);
      },
      train, test, cfg);
  for (std::size_t e = 0; e < cfg.epochs; ++e)
    for (std::size_t i = 0; i < train.size(); ++i)
      ASSERT_EQ(seen[e][i], 1) << "epoch " << e << " sample " << i;
}

TEST(Trainer, DivergentFactoryEndsBitIdenticalToRoot) {
  // A factory with hidden state hands every rank a different replica; the
  // trainer's broadcast_parameters must align them to rank 0 (factories run
  // sequentially, rank 0 first), making the run equivalent to a factory
  // that always returns rank 0's model.
  const auto train = toy_task(400, 29);
  const auto test = toy_task(100, 30);
  dist::TrainerConfig cfg;
  cfg.ranks = 4;
  cfg.epochs = 2;

  int calls = 0;
  auto divergent = dist::train_distributed(
      [&] {
        Rng rng(100 + static_cast<std::uint64_t>(calls++));
        return nn::make_mlp_model(5, 6, rng);
      },
      train, test, cfg);
  auto aligned = dist::train_distributed(
      [] {
        Rng rng(100);  // what the divergent factory gave rank 0
        return nn::make_mlp_model(5, 6, rng);
      },
      train, test, cfg);
  EXPECT_TRUE(weights_identical(divergent.model, aligned.model));
}

TEST(Trainer, EpochTimeDropsWithRanks) {
  // Strong-scaling smoke test on a compute-heavy enough workload.
  const auto train = toy_task(4'096, 7);
  const auto test = toy_task(128, 8);
  auto time_for = [&](int ranks) {
    dist::TrainerConfig cfg;
    cfg.ranks = ranks;
    cfg.epochs = 2;
    return dist::train_distributed(
        [] {
          Rng rng(9);
          return nn::make_lstm_model(5, 6, rng);
        },
        train, test, cfg).time_per_epoch_s;
  };
  const double t1 = time_for(1);
  const double t4 = time_for(4);
  EXPECT_LT(t4, t1 * 0.6);
}

}  // namespace
