// Distributed-training substrate tests: ring all-reduce correctness across
// rank counts and buffer sizes, broadcast, distributed optimizer equivalence
// and the synchronous data-parallel trainer.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "dist/comm.hpp"
#include "dist/hvd.hpp"
#include "dist/trainer.hpp"
#include "nn/model.hpp"

namespace {

using namespace is2;
using dist::Communicator;
using is2::util::Rng;

/// Run fn(rank) on `n` threads and join.
void on_ranks(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) threads.emplace_back([&, r] { fn(r); });
  for (auto& t : threads) t.join();
}

struct AllreduceCase {
  int ranks;
  std::size_t len;
};

class AllreduceSweep : public ::testing::TestWithParam<AllreduceCase> {};

TEST_P(AllreduceSweep, SumMatchesSerialReference) {
  const auto [ranks, len] = GetParam();
  Communicator comm(ranks);
  // Each rank's buffer: deterministic pseudo-random values.
  std::vector<std::vector<float>> bufs(ranks);
  std::vector<float> want(len, 0.0f);
  for (int r = 0; r < ranks; ++r) {
    Rng rng(100 + r);
    bufs[r].resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      bufs[r][i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      want[i] += bufs[r][i];
    }
  }
  on_ranks(ranks, [&](int r) { comm.allreduce_sum(r, bufs[static_cast<std::size_t>(r)]); });
  for (int r = 0; r < ranks; ++r)
    for (std::size_t i = 0; i < len; ++i)
      ASSERT_NEAR(bufs[r][i], want[i], 1e-4) << "rank " << r << " index " << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllreduceSweep,
                         ::testing::Values(AllreduceCase{1, 16}, AllreduceCase{2, 1},
                                           AllreduceCase{2, 1024}, AllreduceCase{3, 7},
                                           AllreduceCase{4, 64}, AllreduceCase{6, 1000},
                                           AllreduceCase{8, 333}, AllreduceCase{8, 4096}));

TEST(Comm, AllreduceMeanDividesBySize) {
  const int ranks = 4;
  Communicator comm(ranks);
  std::vector<std::vector<float>> bufs(ranks, std::vector<float>(10, 0.0f));
  for (int r = 0; r < ranks; ++r)
    for (auto& v : bufs[r]) v = static_cast<float>(r + 1);  // 1,2,3,4 -> mean 2.5
  on_ranks(ranks, [&](int r) { comm.allreduce_mean(r, bufs[static_cast<std::size_t>(r)]); });
  for (int r = 0; r < ranks; ++r)
    for (auto v : bufs[r]) EXPECT_FLOAT_EQ(v, 2.5f);
}

TEST(Comm, BroadcastCopiesRoot) {
  const int ranks = 5;
  Communicator comm(ranks);
  std::vector<std::vector<float>> bufs(ranks, std::vector<float>(8, -1.0f));
  for (std::size_t i = 0; i < 8; ++i) bufs[2][i] = static_cast<float>(i);
  on_ranks(ranks, [&](int r) { comm.broadcast(r, bufs[static_cast<std::size_t>(r)], 2); });
  for (int r = 0; r < ranks; ++r)
    for (std::size_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(bufs[r][i], static_cast<float>(i));
}

TEST(Comm, SequentialCollectivesDoNotInterfere) {
  const int ranks = 4;
  Communicator comm(ranks);
  std::vector<std::vector<float>> a(ranks, std::vector<float>(33, 1.0f));
  std::vector<std::vector<float>> b(ranks, std::vector<float>(17, 2.0f));
  on_ranks(ranks, [&](int r) {
    comm.allreduce_sum(r, a[static_cast<std::size_t>(r)]);
    comm.allreduce_sum(r, b[static_cast<std::size_t>(r)]);
  });
  for (int r = 0; r < ranks; ++r) {
    for (auto v : a[r]) EXPECT_FLOAT_EQ(v, 4.0f);
    for (auto v : b[r]) EXPECT_FLOAT_EQ(v, 8.0f);
  }
}

TEST(Comm, BytesPerRankFormula) {
  EXPECT_EQ(Communicator::allreduce_bytes_per_rank(1, 100), 0u);
  // 2*(N-1)/N * n floats * 4 bytes with n=100, N=4 -> 2*3*25*4 = 600.
  EXPECT_EQ(Communicator::allreduce_bytes_per_rank(4, 100), 600u);
}

TEST(Hvd, DistributedOptimizerAveragesGradients) {
  // Two ranks with different gradients: after the distributed step both
  // replicas must have applied the *average* gradient.
  auto ctx = dist::init(2);
  std::vector<nn::Mat> w(2, nn::Mat(1, 4, 1.0f));
  std::vector<nn::Mat> g(2, nn::Mat(1, 4));
  on_ranks(2, [&](int r) {
    for (int i = 0; i < 4; ++i) g[r].at(0, static_cast<std::size_t>(i)) = r == 0 ? 1.0f : 3.0f;
    dist::DistributedOptimizer opt(std::make_unique<nn::Sgd>(0.5), ctx, r);
    std::vector<nn::Param> params{{"w", &w[r], &g[r]}};
    opt.step(params);
  });
  // Average gradient = 2.0, lr 0.5 -> w = 1 - 1 = 0 on both ranks.
  for (int r = 0; r < 2; ++r)
    for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(w[r].at(0, static_cast<std::size_t>(i)), 0.0f);
}

nn::Dataset toy_task(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  nn::Dataset d;
  d.x = nn::Tensor3(n, 5, 6);
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
    for (std::size_t t = 0; t < 5; ++t) {
      float* row = d.x.at(i, t);
      for (int f = 0; f < 6; ++f)
        row[f] = static_cast<float>(rng.normal(cls * 1.0, 0.5));
    }
    d.y[i] = cls;
  }
  return d;
}

TEST(Trainer, SingleRankTrainsToHighAccuracy) {
  const auto train = toy_task(2'000, 1);
  const auto test = toy_task(400, 2);
  dist::TrainerConfig cfg;
  cfg.ranks = 1;
  cfg.epochs = 5;
  const auto result = dist::train_distributed(
      [] {
        Rng rng(3);
        return nn::make_mlp_model(5, 6, rng);
      },
      train, test, cfg);
  EXPECT_GT(result.test_metrics.accuracy, 0.9);
  EXPECT_EQ(result.epoch_times_s.size(), 5u);
  EXPECT_GT(result.samples_per_s, 0.0);
}

TEST(Trainer, MultiRankKeepsAccuracy) {
  const auto train = toy_task(2'000, 4);
  const auto test = toy_task(400, 5);
  auto run = [&](int ranks) {
    dist::TrainerConfig cfg;
    cfg.ranks = ranks;
    cfg.epochs = 10;
    return dist::train_distributed(
        [] {
          Rng rng(6);
          return nn::make_mlp_model(5, 6, rng);
        },
        train, test, cfg);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  // Synchronous data parallelism quadruples the effective batch, so a small
  // accuracy drop at equal epochs is expected; it must stay small.
  EXPECT_GT(parallel.test_metrics.accuracy, serial.test_metrics.accuracy - 0.06);
  EXPECT_GT(parallel.floats_reduced, 0u);
}

TEST(Trainer, EpochTimeDropsWithRanks) {
  // Strong-scaling smoke test on a compute-heavy enough workload.
  const auto train = toy_task(4'096, 7);
  const auto test = toy_task(128, 8);
  auto time_for = [&](int ranks) {
    dist::TrainerConfig cfg;
    cfg.ranks = ranks;
    cfg.epochs = 2;
    return dist::train_distributed(
        [] {
          Rng rng(9);
          return nn::make_lstm_model(5, 6, rng);
        },
        train, test, cfg).time_per_epoch_s;
  };
  const double t1 = time_for(1);
  const double t4 = time_for(4);
  EXPECT_LT(t4, t1 * 0.6);
}

}  // namespace
