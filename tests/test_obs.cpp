// Observability subsystem tests: registry instrument exactness under
// concurrency, HistogramMetric/StageLatency bit-identity, trace-ring
// overflow and seqlock tearing resistance, tail-based sampling, coalesced
// requests sharing one trace id, the Prometheus exposition format (linted
// in-process, the same rules tools/check_prometheus.py enforces in CI), a
// structural check of the Perfetto export for one cold freeboard build
// (root + queue_wait + all seven pipeline stage spans, correctly nested),
// StageLatency percentile estimates vs exact order statistics, and the
// util::logf sink/prefix contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/campaign.hpp"
#include "core/config.hpp"
#include "obs/export.hpp"
#include "obs/instruments.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pipeline/stage.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace {

using namespace is2;
using atl03::BeamId;
using obs::HistogramMetric;
using obs::Registry;
using obs::Span;
using obs::TraceConfig;
using obs::TraceContext;
using obs::Tracer;
using serve::GranuleProduct;
using serve::Priority;
using serve::ProductKey;
using serve::ProductRequest;
using serve::ProductResponse;

// ---------------------------------------------------------------------------
// Instruments + Registry
// ---------------------------------------------------------------------------

// The bit-identity contract between HistogramMetric and StageLatency starts
// with identical binning constants; a drift here is a compile error.
static_assert(HistogramMetric::kMinMs == pipeline::StageLatency::kMinMs);
static_assert(HistogramMetric::kMaxMs == pipeline::StageLatency::kMaxMs);
static_assert(HistogramMetric::kBinsPerDecade == pipeline::StageLatency::kBinsPerDecade);

TEST(ObsRegistry, ConcurrentCounterIncrementsAreExact) {
  Registry reg;
  obs::Counter& a = reg.counter("is2_test_a_total");
  obs::Counter& b = reg.counter("is2_test_b_total", {{"class", "x"}});
  constexpr int kThreads = 8, kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        a.inc();
        if (i % 2 == 0) b.inc(3);
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(a.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(b.value(), static_cast<std::uint64_t>(kThreads) * (kIters / 2) * 3);
}

TEST(ObsRegistry, GetOrCreateIsStableAndTypeChecked) {
  Registry reg;
  obs::Counter& c1 = reg.counter("is2_test_x_total", {{"class", "interactive"}});
  obs::Counter& c2 = reg.counter("is2_test_x_total", {{"class", "interactive"}});
  EXPECT_EQ(&c1, &c2);  // one instrument per (name, labels)
  obs::Counter& other = reg.counter("is2_test_x_total", {{"class", "batch"}});
  EXPECT_NE(&c1, &other);

  EXPECT_THROW(reg.counter("is2_test_no_suffix"), std::invalid_argument);
  EXPECT_THROW(reg.counter("bad name_total"), std::invalid_argument);
  EXPECT_THROW(reg.counter("1leading_total"), std::invalid_argument);
  EXPECT_THROW(reg.gauge("is2_test_x_total", {{"class", "interactive"}}),
               std::invalid_argument);  // type conflict
  EXPECT_THROW(reg.counter("is2_test_y_total", {{"bad-label", "v"}}), std::invalid_argument);
}

TEST(ObsRegistry, SnapshotIsSortedByNameThenLabels) {
  Registry reg;
  reg.gauge("is2_zz");
  reg.counter("is2_aa_total", {{"class", "interactive"}});
  reg.counter("is2_aa_total", {{"class", "batch"}});
  reg.histogram("is2_mm_ms");
  const obs::RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.points.size(), 4u);
  for (std::size_t i = 1; i < snap.points.size(); ++i) {
    const auto& a = snap.points[i - 1];
    const auto& b = snap.points[i];
    EXPECT_TRUE(std::pair(a.name, a.labels) < std::pair(b.name, b.labels));
  }
}

TEST(ObsInstruments, HistogramMatchesStageLatencyBitForBit) {
  HistogramMetric metric;
  pipeline::StageLatency lat;
  util::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    // Cover both clamp edges and five decades in between.
    const double ms = std::pow(10.0, rng.uniform(-3.0, 6.0));
    metric.observe(ms);
    lat.add(ms);
  }
  const HistogramMetric::Snapshot snap = metric.snapshot();
  EXPECT_EQ(snap.stats.count(), lat.stats.count());
  EXPECT_EQ(snap.stats.sum(), lat.stats.sum());    // bitwise: same add order
  EXPECT_EQ(snap.stats.mean(), lat.stats.mean());
  EXPECT_EQ(snap.stats.min(), lat.stats.min());
  EXPECT_EQ(snap.stats.max(), lat.stats.max());
  ASSERT_EQ(snap.histogram.bins(), lat.histogram.bins());
  for (std::size_t b = 0; b < lat.histogram.bins(); ++b)
    EXPECT_EQ(snap.histogram.count(b), lat.histogram.count(b)) << "bin " << b;
}

TEST(ObsInstruments, HistogramSnapshotIsInternallyConsistent) {
  HistogramMetric metric;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&] {
      util::Rng rng(1234);
      while (!stop.load(std::memory_order_relaxed)) metric.observe(rng.uniform(0.1, 10.0));
    });
  // A snapshot must never observe the stats and the histogram out of step,
  // no matter when it lands relative to the writers.
  for (int i = 0; i < 200; ++i) {
    const HistogramMetric::Snapshot snap = metric.snapshot();
    EXPECT_EQ(snap.stats.count(), snap.histogram.total());
  }
  stop = true;
  for (auto& w : writers) w.join();
}

// ---------------------------------------------------------------------------
// Tracer ring
// ---------------------------------------------------------------------------

TEST(ObsTracer, RingOverflowKeepsNewestSpans) {
  Tracer tracer(TraceConfig{64, 1.0, 1e9});
  for (std::uint32_t i = 0; i < 200; ++i) {
    Span s;
    s.trace_id = 1;
    s.span_id = i;
    s.set_name("seq");
    tracer.publish(&s, 1);
  }
  EXPECT_EQ(tracer.published(), 200u);
  const std::vector<Span> got = tracer.spans();
  ASSERT_EQ(got.size(), 64u);  // capacity bounds retention, newest win
  for (std::size_t j = 0; j < got.size(); ++j) EXPECT_EQ(got[j].span_id, 136u + j);
}

TEST(ObsTracer, ConcurrentPublishNeverBlocksOrTears) {
  Tracer tracer(TraceConfig{128, 1.0, 1e9});
  constexpr int kWriters = 4, kSpansEach = 20000;
  std::atomic<bool> stop_reader{false};
  // Reader hammers spans() while writers overflow the ring many times over;
  // the seqlock must only ever hand back internally consistent spans.
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      for (const Span& s : tracer.spans()) {
        const std::uint64_t writer = s.trace_id >> 32;
        const std::uint64_t seq = s.trace_id & 0xffffffffu;
        EXPECT_LT(writer, static_cast<std::uint64_t>(kWriters));
        EXPECT_EQ(s.span_id, static_cast<std::uint32_t>(seq));  // fields agree
        EXPECT_STREQ(s.name, ("w" + std::to_string(writer)).c_str());
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t)
    writers.emplace_back([&tracer, t] {
      const std::string name = "w" + std::to_string(t);
      for (std::uint32_t i = 0; i < kSpansEach; ++i) {
        Span s;
        s.trace_id = (static_cast<std::uint64_t>(t) << 32) | i;
        s.span_id = i;
        s.set_name(name.c_str());
        tracer.publish(&s, 1);  // must never block, full ring or not
      }
    });
  for (auto& w : writers) w.join();
  stop_reader = true;
  reader.join();
  EXPECT_EQ(tracer.published(), static_cast<std::uint64_t>(kWriters) * kSpansEach);
  EXPECT_LE(tracer.spans().size(), 128u);
}

TEST(ObsTracer, TailSamplingDropsUnsampledKeepsForcedAndInstants) {
  Tracer tracer(TraceConfig{256, 0.0, 1e9});  // sampling off, nothing "slow"
  {
    TraceContext ctx(tracer);
    const std::size_t h = ctx.open("work");
    ctx.close(h);
    ctx.finish("request");  // not sampled, not forced, not slow -> dropped
  }
  EXPECT_TRUE(tracer.spans().empty());

  TraceContext forced(tracer);
  const std::size_t h = forced.open("work");
  forced.close(h);
  forced.finish("request", /*force=*/true);  // error/shed path: always kept
  std::vector<Span> got = tracer.spans();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_STREQ(got[0].name, "request");
  EXPECT_EQ(got[0].span_id, TraceContext::kRootSpanId);
  EXPECT_STREQ(got[1].name, "work");
  EXPECT_EQ(got[1].parent_id, TraceContext::kRootSpanId);

  tracer.record_instant("coalesce", 42);  // instants bypass sampling entirely
  got = tracer.spans();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(got[2].instant);
  EXPECT_EQ(got[2].trace_id, 42u);
}

// ---------------------------------------------------------------------------
// Scheduler integration: coalesced requests share one trace
// ---------------------------------------------------------------------------

TEST(ObsScheduler, CoalescedRequestsShareTraceId) {
  Tracer tracer(TraceConfig{1024, 1.0, 1000.0});
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  serve::BatchScheduler::Config cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  cfg.tracer = &tracer;
  serve::BatchScheduler sched(cfg, [open](const ProductRequest&, const ProductKey& key) {
    open.wait();
    auto p = std::make_shared<GranuleProduct>();
    p->granule_id = key.granule_id;
    return ProductResponse{p, false, 0.0};
  });

  ProductRequest req;
  req.granule_id = "k1";
  const ProductKey key{"k1", BeamId::Gt1r, 7};
  auto f1 = sched.submit(req, key);
  auto f2 = sched.submit(req, key);  // coalesces onto the in-flight build
  EXPECT_EQ(sched.stats().coalesced, 1u);
  gate.set_value();
  const ProductResponse r1 = f1.get(), r2 = f2.get();
  EXPECT_NE(r1.trace_id, 0u);
  EXPECT_EQ(r1.trace_id, r2.trace_id);  // one build, one trace, shared by all
  sched.shutdown();

  const std::vector<Span> spans = tracer.spans();
  bool saw_root = false, saw_coalesce = false, saw_queue_wait = false;
  for (const Span& s : spans) {
    if (s.trace_id != r1.trace_id) continue;
    if (!s.instant && std::string(s.name) == "request") saw_root = true;
    if (!s.instant && std::string(s.name) == "queue_wait") saw_queue_wait = true;
    if (s.instant && std::string(s.name) == "coalesce") saw_coalesce = true;
  }
  EXPECT_TRUE(saw_root);
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_coalesce);  // the coalesced waiter left an instant marker
}

// ---------------------------------------------------------------------------
// StageLatency percentiles
// ---------------------------------------------------------------------------

TEST(StageLatencyPercentiles, DegenerateDistributionIsExact) {
  pipeline::StageLatency lat;
  for (int i = 0; i < 100; ++i) lat.add(5.0);
  // The min/max clamp collapses the bin-resolution error entirely here.
  EXPECT_DOUBLE_EQ(lat.p50_ms(), 5.0);
  EXPECT_DOUBLE_EQ(lat.p99_ms(), 5.0);
  EXPECT_EQ(pipeline::StageLatency{}.p99_ms(), 0.0);  // no samples
}

TEST(StageLatencyPercentiles, TracksExactOrderStatisticsWithinBinResolution) {
  pipeline::StageLatency lat;
  std::vector<double> values;
  util::Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const double ms = std::pow(10.0, rng.uniform(-1.0, 3.0));  // 0.1ms .. 1s
    values.push_back(ms);
    lat.add(ms);
  }
  std::sort(values.begin(), values.end());
  // 10 bins per decade bounds the estimate within a factor of 10^0.1 (~26%)
  // of the exact order statistic; allow a whisker more for interpolation.
  const double kFactor = std::pow(10.0, 0.12);
  for (const double p : {50.0, 99.0}) {
    const double exact =
        values[static_cast<std::size_t>(p / 100.0 * (values.size() - 1))];
    const double est = lat.percentile_ms(p);
    EXPECT_LE(est, exact * kFactor) << "p" << p;
    EXPECT_GE(est, exact / kFactor) << "p" << p;
  }
}

// ---------------------------------------------------------------------------
// util::logf sink + prefix contract
// ---------------------------------------------------------------------------

TEST(Logging, SinkCapturesLevelLabelAndTraceId) {
  std::vector<std::pair<util::LogLevel, std::string>> lines;
  util::set_log_sink([&lines](util::LogLevel level, std::string_view line) {
    lines.emplace_back(level, std::string(line));
  });
  util::set_thread_label("obs-test/0");
  Tracer tracer(TraceConfig{16, 1.0, 1e9});
  TraceContext ctx(tracer);
  {
    obs::TraceBinding bind(&ctx);
    IS2_LOG_WARN("hello %d", 7);
  }
  IS2_LOG_ERROR("after unbind");
  util::set_log_sink(nullptr);  // restore stderr for later tests
  util::set_thread_label("");

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].first, util::LogLevel::Warn);
  const std::string& l0 = lines[0].second;
  EXPECT_NE(l0.find("[WARN +"), std::string::npos);         // level + uptime
  EXPECT_NE(l0.find("obs-test/0"), std::string::npos);      // thread label
  EXPECT_NE(l0.find("trace=" + std::to_string(ctx.trace_id())), std::string::npos);
  EXPECT_NE(l0.find("] hello 7"), std::string::npos);
  EXPECT_EQ(l0.find('\n'), std::string::npos);  // sink gets no trailing newline
  // Outside the binding the trace tag disappears.
  EXPECT_EQ(lines[1].second.find("trace="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Mini JSON validator (structural: quoting, nesting, no trailing garbage)
// ---------------------------------------------------------------------------

bool json_well_formed(const std::string& text) {
  int depth = 0;
  bool in_string = false, escape = false;
  for (const char c : text) {
    if (in_string) {
      if (escape) escape = false;
      else if (c == '\\') escape = true;
      else if (c == '"') in_string = false;
      else if (c == '\n') return false;  // raw newline inside a string
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

// ---------------------------------------------------------------------------
// Prometheus exposition lint (the same rules tools/check_prometheus.py
// enforces on the bench's exported snapshot in CI)
// ---------------------------------------------------------------------------

void lint_prometheus(const std::string& text) {
  std::map<std::string, std::string> typed;  // base name -> TYPE
  std::map<std::string, std::size_t> last_bucket;  // series (sans le) -> cum
  std::size_t samples = 0;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "missing trailing newline";
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    SCOPED_TRACE("line " + std::to_string(line_no) + ": " + line);
    if (line.empty()) continue;
    if (line[0] == '#') {
      ASSERT_TRUE(line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0);
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        ASSERT_NE(sp, std::string::npos);
        const std::string type = rest.substr(sp + 1);
        ASSERT_TRUE(type == "counter" || type == "gauge" || type == "histogram");
        typed[rest.substr(0, sp)] = type;
      }
      continue;
    }
    // Sample line: name[{labels}] value
    std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos);
    const std::string name = line.substr(0, name_end);
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool alpha =
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
      ASSERT_TRUE(alpha || (i > 0 && c >= '0' && c <= '9')) << "bad name char";
    }
    std::string labels;
    std::size_t value_at = name_end;
    if (line[name_end] == '{') {
      const std::size_t close = line.find('}', name_end);
      ASSERT_NE(close, std::string::npos);
      labels = line.substr(name_end, close - name_end + 1);
      value_at = close + 1;
    }
    ASSERT_EQ(line[value_at], ' ');
    const std::string value_str = line.substr(value_at + 1);
    ASSERT_FALSE(value_str.empty());
    std::size_t pos = 0;
    const double value = std::stod(value_str, &pos);  // throws on garbage
    ASSERT_EQ(pos, value_str.size()) << "trailing junk after value";
    ++samples;

    // Resolve the base family: histograms expose _bucket/_sum/_count.
    std::string base = name;
    bool is_bucket = false;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        const std::string candidate = name.substr(0, name.size() - s.size());
        if (typed.count(candidate) && typed[candidate] == "histogram") {
          base = candidate;
          is_bucket = (s == "_bucket");
        }
      }
    }
    ASSERT_TRUE(typed.count(base)) << "sample before its # TYPE";
    if (typed[base] == "counter") {
      EXPECT_TRUE(base.size() > 6 && base.compare(base.size() - 6, 6, "_total") == 0)
          << "counter without _total";
      EXPECT_GE(value, 0.0);
    }
    if (is_bucket) {
      // Cumulative buckets must be non-decreasing within one series.
      std::string series = base + labels;
      const std::size_t le = series.find("le=\"");
      ASSERT_NE(le, std::string::npos) << "_bucket without le";
      const std::size_t le_end = series.find('"', le + 4);
      series.erase(le, le_end - le + 1);
      const auto cum = static_cast<std::size_t>(value);
      auto it = last_bucket.find(series);
      if (it != last_bucket.end()) EXPECT_GE(cum, it->second) << "bucket not cumulative";
      last_bucket[series] = cum;
    }
  }
  EXPECT_GT(samples, 0u);
}

TEST(ObsExport, PrometheusOutputPassesLint) {
  Registry reg;
  reg.counter("is2_test_requests_total", {{"class", "interactive"}}, "requests").inc(5);
  reg.counter("is2_test_requests_total", {{"class", "batch"}}, "requests").inc(2);
  reg.gauge("is2_test_depth", {}, "queue depth").set(3.5);
  HistogramMetric& h = reg.histogram("is2_test_latency_ms", {{"stage", "load"}}, "latency");
  h.observe(0.5);
  h.observe(12.0);
  h.observe(250.0);
  const std::string text = obs::to_prometheus(reg.snapshot());
  lint_prometheus(text);
  // Spot checks: exposition carries the exact values and the +Inf bucket.
  EXPECT_NE(text.find("is2_test_requests_total{class=\"batch\"} 2"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("is2_test_latency_ms_count{stage=\"load\"} 3"), std::string::npos);
  EXPECT_TRUE(json_well_formed(obs::to_json(reg.snapshot())));
}

// ---------------------------------------------------------------------------
// GranuleService end-to-end: one cold freeboard build's trace + exposition
// ---------------------------------------------------------------------------

/// Slim port of test_serve's campaign fixture: one simulated granule written
/// as chunk shards, a scaler fitted the way the batch pipeline would.
class ObsCampaign : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new core::PipelineConfig(core::PipelineConfig::tiny());
    campaign_ = new core::Campaign(*config_);
    pair_ = new core::PairDataset(campaign_->generate(1));

    dir_ = (std::filesystem::temp_directory_path() /
            ("is2_obs_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
    shards_ = new core::ShardSet();
    core::write_shards(pair_->granule, 0, /*chunks_per_beam=*/2, dir_, *shards_);
    index_ = new serve::ShardIndex(serve::ShardIndex::build(shards_->files));

    const auto* files = index_->find(pair_->granule.id, BeamId::Gt1r);
    ASSERT_NE(files, nullptr);
    const auto merged = serve::ShardIndex::load_merged(*files);
    const auto pre = atl03::preprocess_beam(merged, merged.beams[0],
                                            campaign_->corrections(), config_->preprocess);
    auto segments = resample::resample(pre, config_->segmenter);
    const resample::FirstPhotonBiasCorrector fpb(config_->instrument.dead_time_m,
                                                 config_->instrument.strong_channels);
    fpb.apply(segments);
    const auto features =
        resample::to_features(segments, resample::rolling_baseline(segments));
    scaler_ = new resample::FeatureScaler(resample::FeatureScaler::fit(features));
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    delete scaler_;
    delete index_;
    delete shards_;
    delete pair_;
    delete campaign_;
    delete config_;
    scaler_ = nullptr;
    index_ = nullptr;
    shards_ = nullptr;
    pair_ = nullptr;
    campaign_ = nullptr;
    config_ = nullptr;
  }

  static nn::Sequential make_model() {
    util::Rng rng(99);
    return nn::make_lstm_model(config_->sequence_window, resample::FeatureRow::kDim, rng);
  }

  static std::unique_ptr<serve::GranuleService> make_service(serve::ServiceConfig cfg) {
    return std::make_unique<serve::GranuleService>(cfg, *config_, campaign_->corrections(),
                                                   *index_, &ObsCampaign::make_model,
                                                   *scaler_);
  }

  static ProductRequest request(BeamId beam) {
    ProductRequest r;
    r.granule_id = pair_->granule.id;
    r.beam = beam;
    return r;
  }

  static core::PipelineConfig* config_;
  static core::Campaign* campaign_;
  static core::PairDataset* pair_;
  static core::ShardSet* shards_;
  static serve::ShardIndex* index_;
  static resample::FeatureScaler* scaler_;
  static std::string dir_;
};

core::PipelineConfig* ObsCampaign::config_ = nullptr;
core::Campaign* ObsCampaign::campaign_ = nullptr;
core::PairDataset* ObsCampaign::pair_ = nullptr;
core::ShardSet* ObsCampaign::shards_ = nullptr;
serve::ShardIndex* ObsCampaign::index_ = nullptr;
resample::FeatureScaler* ObsCampaign::scaler_ = nullptr;
std::string ObsCampaign::dir_;

TEST_F(ObsCampaign, ColdFreeboardBuildEmitsNestedTrace) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.trace_sample_rate = 1.0;
  auto service = make_service(cfg);

  const ProductResponse r = service->submit(request(BeamId::Gt1r)).get();
  ASSERT_NE(r.product, nullptr);
  EXPECT_FALSE(r.from_cache);
  ASSERT_NE(r.trace_id, 0u);
  EXPECT_GE(r.queue_wait_ms, 0.0);
  EXPECT_GE(r.service_ms, r.queue_wait_ms);

  std::vector<Span> mine;
  for (const Span& s : service->trace_spans())
    if (s.trace_id == r.trace_id && !s.instant) mine.push_back(s);

  // Exactly one root, named "request", parent 0.
  const Span* root = nullptr;
  for (const Span& s : mine)
    if (s.parent_id == 0) {
      EXPECT_EQ(root, nullptr) << "two roots";
      root = &s;
    }
  ASSERT_NE(root, nullptr);
  EXPECT_STREQ(root->name, "request");
  EXPECT_EQ(root->span_id, TraceContext::kRootSpanId);

  // queue_wait + shard_load + all seven pipeline stages, each a direct child
  // of the root and fully contained in the root's interval.
  const char* expected[] = {"queue_wait", "shard_load",  "preprocess",
                            "resample",   "fpb",         "features",
                            "classify",   "seasurface",  "freeboard"};
  std::map<std::string, const Span*> by_name;
  for (const Span& s : mine) by_name[s.name] = &s;
  for (const char* name : expected) {
    ASSERT_TRUE(by_name.count(name)) << "missing span: " << name;
    const Span& s = *by_name[name];
    EXPECT_EQ(s.parent_id, root->span_id) << name;
    EXPECT_NE(s.span_id, root->span_id) << name;
    EXPECT_GE(s.start_ms, root->start_ms) << name;
    EXPECT_LE(s.start_ms + s.dur_ms, root->start_ms + root->dur_ms) << name;
  }
  // The stage spans run in dependency order after the queue wait.
  const char* stages[] = {"preprocess", "resample", "fpb",      "features",
                          "classify",   "seasurface", "freeboard"};
  double prev_end = by_name["queue_wait"]->start_ms + by_name["queue_wait"]->dur_ms;
  for (const char* name : stages) {
    const Span& s = *by_name[name];
    EXPECT_GE(s.start_ms + 1e-9, prev_end) << name << " overlaps its predecessor";
    prev_end = s.start_ms + s.dur_ms;
  }

  // The Perfetto render of the same spans is structurally sound JSON with
  // the trace_event fields Perfetto needs.
  const std::string perfetto = obs::to_perfetto(service->trace_spans(), obs::thread_labels());
  EXPECT_TRUE(json_well_formed(perfetto));
  EXPECT_NE(perfetto.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(perfetto.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(perfetto.find("\"name\":\"freeboard\""), std::string::npos);
  EXPECT_NE(perfetto.find("\"name\":\"thread_name\""), std::string::npos);
}

TEST_F(ObsCampaign, ServiceSnapshotPassesLintAndMatchesLegacyMetrics) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  auto service = make_service(cfg);

  (void)service->submit(request(BeamId::Gt1r)).get();  // cold build
  (void)service->submit(request(BeamId::Gt1r)).get();  // RAM fast hit

  const std::string text = obs::to_prometheus(service->obs_snapshot());
  lint_prometheus(text);
  EXPECT_TRUE(json_well_formed(obs::to_json(service->obs_snapshot())));

  // The registry-read ServiceMetrics and the exposition agree on counts.
  const serve::ServiceMetrics m = service->metrics();
  EXPECT_EQ(m.requests, 2u);
  EXPECT_EQ(m.fast_hits, 1u);
  EXPECT_EQ(m.scheduler.dispatched, 1u);
  EXPECT_EQ(m.service_time.stats.count(), 1u);   // one scheduled job
  EXPECT_EQ(m.queue_wait.stats.count(), 1u);
  EXPECT_GE(m.service_time.stats.min(), m.queue_wait.stats.min());
  EXPECT_NE(text.find("is2_serve_fast_hits_total 1"), std::string::npos);
  EXPECT_NE(text.find("is2_sched_dispatched_total{class=\"batch\"} 1"), std::string::npos);
  EXPECT_NE(text.find("is2_cache_hits_total{tier=\"ram\"} 1"), std::string::npos);
  // The per-stage view survives the registry migration: the builder stages
  // each saw exactly the one cold build.
  EXPECT_EQ(m.inference.stats.count(), 1u);
  EXPECT_EQ(m.total.stats.count(), 1u);
}

}  // namespace
