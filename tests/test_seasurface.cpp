// Local sea-surface detector tests: the four methods on segments with a
// known water level, lead grouping, gap interpolation and profile lookup.
#include <gtest/gtest.h>

#include <cmath>

#include "seasurface/detector.hpp"
#include "util/rng.hpp"

namespace {

using namespace is2;
using atl03::SurfaceClass;
using resample::Segment;
using seasurface::Method;
using seasurface::SeaSurfaceConfig;

/// Track with leads every `lead_every` meters; water sits at `level` with
/// sigma noise, ice well above. Returns segments + labels.
struct Scene {
  std::vector<Segment> segments;
  std::vector<SurfaceClass> labels;
};

Scene make_scene(double length, double level, double lead_every = 2'000.0,
                 double lead_width = 60.0, double noise = 0.01, std::uint64_t seed = 5) {
  util::Rng rng(seed);
  Scene sc;
  for (double s = 0.0; s < length; s += 2.0) {
    Segment seg;
    seg.s = s;
    seg.n_photons = 8;
    const double in_lead = std::fmod(s, lead_every);
    const bool water = in_lead < lead_width;
    if (water) {
      seg.h_mean = level + rng.normal(0.0, noise);
      seg.h_std = 0.02;
      sc.labels.push_back(SurfaceClass::OpenWater);
    } else {
      seg.h_mean = level + 0.35 + rng.normal(0.0, 0.05);
      seg.h_std = 0.08;
      sc.labels.push_back(SurfaceClass::ThickIce);
    }
    sc.segments.push_back(seg);
  }
  return sc;
}

class MethodSweep : public ::testing::TestWithParam<Method> {};

TEST_P(MethodSweep, RecoversKnownWaterLevel) {
  const double level = -0.12;
  const Scene sc = make_scene(30'000.0, level);
  const auto profile = seasurface::detect_sea_surface(sc.segments, sc.labels, GetParam());
  ASSERT_FALSE(profile.empty());
  for (const auto& pt : profile.points()) {
    EXPECT_NEAR(pt.h_ref, level, 0.06) << seasurface::method_name(GetParam()) << " s=" << pt.s;
    EXPECT_FALSE(pt.interpolated);
    EXPECT_GT(pt.n_leads, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodSweep,
                         ::testing::Values(Method::MinElevation, Method::AverageElevation,
                                           Method::NearestMinElevation, Method::NasaEquation));

TEST(SeaSurface, MinBelowAverage) {
  const Scene sc = make_scene(20'000.0, 0.0, 2'000.0, 80.0, 0.02);
  const auto min_p =
      seasurface::detect_sea_surface(sc.segments, sc.labels, Method::MinElevation);
  const auto avg_p =
      seasurface::detect_sea_surface(sc.segments, sc.labels, Method::AverageElevation);
  ASSERT_EQ(min_p.points().size(), avg_p.points().size());
  for (std::size_t i = 0; i < min_p.points().size(); ++i)
    EXPECT_LE(min_p.points()[i].h_ref, avg_p.points()[i].h_ref + 1e-12);
}

TEST(SeaSurface, NasaEstimateBoundedByWaterHeights) {
  const Scene sc = make_scene(20'000.0, 0.05);
  const auto profile =
      seasurface::detect_sea_surface(sc.segments, sc.labels, Method::NasaEquation);
  double wmin = 1e9, wmax = -1e9;
  for (std::size_t i = 0; i < sc.segments.size(); ++i) {
    if (sc.labels[i] != SurfaceClass::OpenWater) continue;
    wmin = std::min(wmin, sc.segments[i].h_mean);
    wmax = std::max(wmax, sc.segments[i].h_mean);
  }
  for (const auto& pt : profile.points()) {
    EXPECT_GE(pt.h_ref, wmin - 1e-9);
    EXPECT_LE(pt.h_ref, wmax + 1e-9);
    EXPECT_GT(pt.sigma, 0.0);  // method iv reports uncertainty
  }
}

TEST(SeaSurface, NasaSmootherThanMin) {
  // With asymmetric noise (subsurface tail), the window minimum is noisier
  // than the inverse-variance estimate across windows.
  util::Rng rng(9);
  Scene sc = make_scene(60'000.0, 0.0, 1'500.0, 60.0, 0.02, 7);
  // Add occasional low outliers to water segments (subsurface photons).
  for (std::size_t i = 0; i < sc.segments.size(); ++i)
    if (sc.labels[i] == SurfaceClass::OpenWater && rng.bernoulli(0.1))
      sc.segments[i].h_mean -= rng.exponential(1.0 / 0.15);
  const auto nasa = seasurface::detect_sea_surface(sc.segments, sc.labels, Method::NasaEquation);
  const auto minm = seasurface::detect_sea_surface(sc.segments, sc.labels, Method::MinElevation);
  auto roughness = [](const seasurface::SeaSurfaceProfile& p) {
    double acc = 0.0;
    for (std::size_t i = 1; i < p.points().size(); ++i)
      acc += std::abs(p.points()[i].h_ref - p.points()[i - 1].h_ref);
    return acc;
  };
  EXPECT_LT(roughness(nasa), roughness(minm));
}

TEST(SeaSurface, InterpolatesWindowsWithoutLeads) {
  // Leads only in the first and last 5 km of a 40 km track.
  Scene sc = make_scene(40'000.0, -0.2, 2'000.0, 60.0);
  for (std::size_t i = 0; i < sc.segments.size(); ++i) {
    const double s = sc.segments[i].s;
    if (s > 5'000.0 && s < 35'000.0 && sc.labels[i] == SurfaceClass::OpenWater) {
      sc.labels[i] = SurfaceClass::ThickIce;  // freeze the mid-track leads
      sc.segments[i].h_mean = -0.2 + 0.35;
    }
  }
  const auto profile =
      seasurface::detect_sea_surface(sc.segments, sc.labels, Method::NasaEquation);
  EXPECT_GT(profile.interpolated_fraction(), 0.3);
  for (const auto& pt : profile.points()) EXPECT_NEAR(pt.h_ref, -0.2, 0.08);
}

TEST(SeaSurface, NoLeadsAnywhereDegradesToZero) {
  Scene sc = make_scene(10'000.0, 0.0);
  for (auto& l : sc.labels) l = SurfaceClass::ThickIce;
  const auto profile =
      seasurface::detect_sea_surface(sc.segments, sc.labels, Method::NasaEquation);
  for (const auto& pt : profile.points()) {
    EXPECT_TRUE(pt.interpolated);
    EXPECT_DOUBLE_EQ(pt.h_ref, 0.0);
  }
}

TEST(SeaSurface, MinLeadSegmentsFiltersSpeckle) {
  // Single isolated water segments (1 segment each) are noise, not leads.
  Scene sc = make_scene(10'000.0, 0.0, 1'000.0, 2.0);  // 1-segment "leads"
  SeaSurfaceConfig cfg;
  cfg.min_lead_segments = 2;
  const auto profile =
      seasurface::detect_sea_surface(sc.segments, sc.labels, Method::NasaEquation, cfg);
  for (const auto& pt : profile.points()) EXPECT_EQ(pt.n_leads, 0u);
}

TEST(SeaSurfaceProfile, LinearInterpolationBetweenPoints) {
  std::vector<seasurface::SeaSurfacePoint> pts(2);
  pts[0].s = 0.0;
  pts[0].h_ref = 1.0;
  pts[1].s = 10.0;
  pts[1].h_ref = 2.0;
  const seasurface::SeaSurfaceProfile profile(pts);
  EXPECT_DOUBLE_EQ(profile.at(-5.0), 1.0);   // clamped
  EXPECT_DOUBLE_EQ(profile.at(5.0), 1.5);    // midpoint
  EXPECT_DOUBLE_EQ(profile.at(15.0), 2.0);   // clamped
}

TEST(SeaSurfaceProfile, EmptyProfileThrows) {
  const seasurface::SeaSurfaceProfile profile;
  EXPECT_THROW(profile.at(0.0), std::logic_error);
}

TEST(SeaSurface, LabelMismatchThrows) {
  Scene sc = make_scene(5'000.0, 0.0);
  sc.labels.pop_back();
  EXPECT_THROW(
      seasurface::detect_sea_surface(sc.segments, sc.labels, Method::NasaEquation),
      std::invalid_argument);
}

}  // namespace
