// NN numerical core tests: GEMM correctness, activation math, finite-
// difference gradient checks for Dense / LSTM / losses, optimizers,
// metrics and weight serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "nn/tensor.hpp"

namespace {

using namespace is2::nn;
using is2::util::Rng;

Mat random_mat(std::size_t r, std::size_t c, Rng& rng, double scale = 1.0) {
  Mat m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.normal(0.0, scale));
  return m;
}

TEST(Tensor, GemmNtMatchesNaive) {
  Rng rng(1);
  const Mat a = random_mat(5, 7, rng);
  const Mat b = random_mat(4, 7, rng);
  Mat c(5, 4);
  gemm_nt(a, b, c);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      float want = 0.0f;
      for (std::size_t k = 0; k < 7; ++k) want += a.at(i, k) * b.at(j, k);
      EXPECT_NEAR(c.at(i, j), want, 1e-5);
    }
}

TEST(Tensor, GemmNnMatchesNaive) {
  Rng rng(2);
  const Mat a = random_mat(3, 6, rng);
  const Mat b = random_mat(6, 5, rng);
  Mat c(3, 5);
  gemm_nn(a, b, c);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) {
      float want = 0.0f;
      for (std::size_t k = 0; k < 6; ++k) want += a.at(i, k) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), want, 1e-5);
    }
}

TEST(Tensor, GemmTnMatchesNaiveAndAccumulates) {
  Rng rng(3);
  const Mat a = random_mat(6, 3, rng);
  const Mat b = random_mat(6, 4, rng);
  Mat c(3, 4, 1.0f);
  gemm_tn(a, b, c, /*accumulate=*/true);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      float want = 1.0f;
      for (std::size_t k = 0; k < 6; ++k) want += a.at(k, i) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), want, 1e-5);
    }
}

TEST(Tensor, GemmShapeChecks) {
  Mat a(2, 3), b(2, 4), c(2, 2);
  EXPECT_THROW(gemm_nt(a, b, c), std::invalid_argument);
  EXPECT_THROW(gemm_nn(a, b, c), std::invalid_argument);
}

TEST(Activations, ValuesAndGrads) {
  EXPECT_FLOAT_EQ(activate(Activation::Relu, -1.0f), 0.0f);
  EXPECT_FLOAT_EQ(activate(Activation::Relu, 2.0f), 2.0f);
  EXPECT_NEAR(activate(Activation::Elu, -1.0f), std::expm1(-1.0f), 1e-6);
  EXPECT_FLOAT_EQ(activate(Activation::Elu, 3.0f), 3.0f);
  EXPECT_NEAR(activate(Activation::Sigmoid, 0.0f), 0.5f, 1e-6);
  // grad-from-y consistency with grad-from-x.
  for (float x : {-2.0f, -0.5f, 0.1f, 1.5f}) {
    for (auto a : {Activation::Elu, Activation::Tanh, Activation::Sigmoid, Activation::Relu}) {
      const float y = activate(a, x);
      EXPECT_NEAR(activate_grad(a, x, y), activate_grad_from_y(a, y), 1e-5);
    }
  }
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(4);
  const Mat logits = random_mat(6, 3, rng, 3.0);
  Mat probs;
  softmax_rows(logits, probs);
  for (std::size_t r = 0; r < 6; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_GT(probs.at(r, c), 0.0f);
      sum += probs.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

/// Finite-difference gradient check of a loss wrt logits.
void check_loss_gradient(const Loss& loss) {
  Rng rng(5);
  Mat logits = random_mat(4, 3, rng, 2.0);
  const std::vector<std::uint8_t> labels{0, 2, 1, 2};
  Mat grad;
  loss.compute(logits, labels, grad);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float orig = logits.data()[i];
    Mat tmp;
    logits.data()[i] = orig + eps;
    const double up = loss.compute(logits, labels, tmp);
    logits.data()[i] = orig - eps;
    const double down = loss.compute(logits, labels, tmp);
    logits.data()[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad.data()[i], numeric, 5e-3) << "logit " << i;
  }
}

TEST(Loss, CrossEntropyGradientCheck) { check_loss_gradient(CrossEntropyLoss{}); }

TEST(Loss, FocalGradientCheck) { check_loss_gradient(FocalLoss{2.0, {1.0, 2.0, 0.5}}); }

TEST(Loss, FocalReducesToWeightedCeAtGammaZero) {
  Rng rng(6);
  const Mat logits = random_mat(8, 3, rng, 1.0);
  const std::vector<std::uint8_t> labels{0, 1, 2, 0, 1, 2, 0, 1};
  Mat g1, g2;
  const double fl = FocalLoss(0.0, {1.0, 1.0, 1.0}).compute(logits, labels, g1);
  const double ce = CrossEntropyLoss{}.compute(logits, labels, g2);
  EXPECT_NEAR(fl, ce, 1e-5);
  for (std::size_t i = 0; i < g1.size(); ++i) EXPECT_NEAR(g1.data()[i], g2.data()[i], 1e-5);
}

TEST(Loss, BalancedAlphaInverseFrequency) {
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 80; ++i) labels.push_back(0);
  for (int i = 0; i < 15; ++i) labels.push_back(1);
  for (int i = 0; i < 5; ++i) labels.push_back(2);
  const auto alpha = FocalLoss::balanced_alpha(labels);
  EXPECT_LT(alpha[0], alpha[1]);
  EXPECT_LT(alpha[1], alpha[2]);
  EXPECT_NEAR((alpha[0] + alpha[1] + alpha[2]) / 3.0, 1.0, 1e-9);
}

/// Full-model gradient check (front end + dense stack) on a tiny model.
void check_model_gradients(Sequential& model, const Tensor3& x,
                           const std::vector<std::uint8_t>& labels, double tol) {
  CrossEntropyLoss loss;
  auto params = model.params();
  for (auto& p : params) p.grad->fill(0.0f);
  Mat grad;
  // backward() requires a training-mode forward (the inference path skips
  // gradient caches). The finite-difference probes below use the inference
  // path, which for dropout-free models is numerically identical.
  loss.compute(model.forward(x, /*training=*/true), labels, grad);
  model.backward(grad);

  Rng pick(7);
  for (const auto& p : params) {
    // Sample a handful of coordinates per parameter tensor.
    for (int trial = 0; trial < 6; ++trial) {
      const auto i = static_cast<std::size_t>(
          pick.uniform_int(0, static_cast<std::int64_t>(p.value->size()) - 1));
      const float orig = p.value->data()[i];
      const float eps = 3e-3f;
      Mat tmp;
      p.value->data()[i] = orig + eps;
      const double up = loss.compute(model.forward(x, false), labels, tmp);
      p.value->data()[i] = orig - eps;
      const double down = loss.compute(model.forward(x, false), labels, tmp);
      p.value->data()[i] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(p.grad->data()[i], numeric, tol) << p.name << "[" << i << "]";
    }
  }
}

TEST(Gradients, DenseStackMatchesFiniteDifferences) {
  Rng rng(8);
  Sequential model;
  model.set_front(std::make_unique<Flatten>());
  model.add(std::make_unique<Dense>(10, 8, Activation::Elu, rng));
  model.add(std::make_unique<Dense>(8, 3, Activation::Linear, rng));

  Tensor3 x(4, 5, 2);
  for (auto& v : x.v) v = static_cast<float>(rng.normal(0.0, 1.0));
  check_model_gradients(model, x, {0, 1, 2, 1}, 2e-2);
}

TEST(Gradients, LstmMatchesFiniteDifferences) {
  Rng rng(9);
  Sequential model;
  model.set_front(std::make_unique<Lstm>(3, 6, Activation::Tanh, /*dropout=*/0.0, rng));
  model.add(std::make_unique<Dense>(6, 3, Activation::Linear, rng));

  Tensor3 x(3, 4, 3);
  for (auto& v : x.v) v = static_cast<float>(rng.normal(0.0, 1.0));
  check_model_gradients(model, x, {2, 0, 1}, 2e-2);
}

TEST(Gradients, LstmWithEluCellMatchesFiniteDifferences) {
  Rng rng(10);
  Sequential model;
  model.set_front(std::make_unique<Lstm>(2, 5, Activation::Elu, 0.0, rng));
  model.add(std::make_unique<Dense>(5, 3, Activation::Linear, rng));
  Tensor3 x(2, 5, 2);
  for (auto& v : x.v) v = static_cast<float>(rng.normal(0.0, 0.8));
  check_model_gradients(model, x, {1, 2}, 2e-2);
}

TEST(Dropout, InferenceIsIdentityTrainingScales) {
  Rng rng(11);
  Dropout layer(0.5, Rng(3));
  Mat x(64, 32, 1.0f);
  const Mat& y_inf = layer.forward(x, /*training=*/false);
  for (std::size_t i = 0; i < y_inf.size(); ++i) EXPECT_FLOAT_EQ(y_inf.data()[i], 1.0f);

  const Mat& y_train = layer.forward(x, /*training=*/true);
  double mean = 0.0;
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y_train.size(); ++i) {
    mean += y_train.data()[i];
    if (y_train.data()[i] == 0.0f) ++zeros;
  }
  mean /= static_cast<double>(y_train.size());
  EXPECT_NEAR(mean, 1.0, 0.1);  // inverted dropout keeps expectation
  EXPECT_GT(zeros, y_train.size() / 3);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  // Minimize ||w - target||^2 through the Param interface.
  Mat w(1, 4, 0.0f), g(1, 4);
  const float target[4] = {1.0f, -2.0f, 0.5f, 3.0f};
  Adam adam(0.05);
  std::vector<Param> params{{"w", &w, &g}};
  for (int step = 0; step < 500; ++step) {
    for (int i = 0; i < 4; ++i) g.at(0, i) = 2.0f * (w.at(0, i) - target[i]);
    adam.step(params);
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(w.at(0, i), target[i], 1e-2);
}

TEST(Optimizer, SgdStepAndZeroing) {
  Mat w(1, 2, 1.0f), g(1, 2, 0.5f);
  Sgd sgd(0.1);
  sgd.step({{"w", &w, &g}});
  EXPECT_NEAR(w.at(0, 0), 0.95f, 1e-6);
  EXPECT_FLOAT_EQ(g.at(0, 0), 0.0f);  // gradients consumed
}

TEST(Metrics, ConfusionMathManual) {
  ConfusionMatrix cm;
  // truth 0: 8 correct, 2 as class 1; truth 1: 3 correct, 1 as 2; truth 2: 2 correct.
  for (int i = 0; i < 8; ++i) cm.add(0, 0);
  cm.add(0, 1);
  cm.add(0, 1);
  for (int i = 0; i < 3; ++i) cm.add(1, 1);
  cm.add(1, 2);
  cm.add(2, 2);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 16u);
  EXPECT_NEAR(cm.accuracy(), 13.0 / 16.0, 1e-12);
  EXPECT_NEAR(cm.recall(0), 0.8, 1e-12);
  EXPECT_NEAR(cm.precision(1), 3.0 / 5.0, 1e-12);
  EXPECT_NEAR(cm.recall(2), 1.0, 1e-12);
  EXPECT_NEAR(cm.precision(2), 2.0 / 3.0, 1e-12);
  const auto r = cm.per_class_recall();
  EXPECT_NEAR(r[1], 0.75, 1e-12);
  EXPECT_FALSE(cm.render().empty());
}

TEST(Metrics, ComputeMetricsEndToEnd) {
  const std::vector<std::uint8_t> truth{0, 0, 1, 1, 2, 2};
  const std::vector<std::uint8_t> pred{0, 1, 1, 1, 2, 0};
  const Metrics m = compute_metrics(truth, pred);
  EXPECT_NEAR(m.accuracy, 4.0 / 6.0, 1e-12);
  EXPECT_GT(m.f1, 0.0);
  EXPECT_THROW(compute_metrics(truth, {0, 1}), std::invalid_argument);
}

TEST(Serialize, WeightRoundTripPreservesPredictions) {
  Rng rng(12);
  Sequential model = make_mlp_model(5, 6, rng);
  Tensor3 x(8, 5, 6);
  Rng xr(13);
  for (auto& v : x.v) v = static_cast<float>(xr.normal(0.0, 1.0));
  const auto pred_before = model.predict(x);

  const std::string path =
      (std::filesystem::temp_directory_path() / "is2_weights.h5l").string();
  save_weights(model, path);

  Rng rng2(999);  // different init
  Sequential model2 = make_mlp_model(5, 6, rng2);
  load_weights(model2, path);
  EXPECT_EQ(model2.predict(x), pred_before);
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchRejected) {
  Rng rng(14);
  Sequential mlp = make_mlp_model(5, 6, rng);
  Sequential lstm = make_lstm_model(5, 6, rng);
  const auto file = weights_to_file(mlp);
  EXPECT_THROW(weights_from_file(lstm, file), is2::h5::H5Error);
}

TEST(Model, ParamCountsMatchArchitectures) {
  Rng rng(15);
  Sequential mlp = make_mlp_model(5, 6, rng);
  // Flatten(30) -> Dense(32) -> Dense(3): 30*32+32 + 32*3+3 = 1091.
  EXPECT_EQ(mlp.param_count(), 1091u);
  Sequential lstm = make_lstm_model(5, 6, rng);
  // LSTM(16): 4*16*(6+16)+4*16 = 1472; dense stack 32,96,32,16,112,48,64,3.
  const std::size_t dense = (16 * 32 + 32) + (32 * 96 + 96) + (96 * 32 + 32) + (32 * 16 + 16) +
                            (16 * 112 + 112) + (112 * 48 + 48) + (48 * 64 + 64) + (64 * 3 + 3);
  EXPECT_EQ(lstm.param_count(), 1472u + dense);
}

}  // namespace
