// ATL10 emulator: NASA's sea-ice freeboard product. Builds the reference
// sea surface from ATL07 lead segments over 10 km swath sections using the
// ATBD's inverse-variance lead combination (the same equations the paper's
// method (iv) adopts for 2m data), then freeboard = segment height - local
// reference. Baseline for Figs 10-11.
#pragma once

#include <vector>

#include "baseline/atl07.hpp"

namespace is2::baseline {

struct Atl10Config {
  double swath_length_m = 10'000.0;  ///< nominal ATL10 section length
  double max_freeboard_m = 10.0;     ///< ATBD sanity cap
  double lead_sigma_floor = 0.005;   ///< minimum lead height sigma [m]
};

struct Atl10Freeboard {
  double s_center = 0.0;
  double length = 0.0;
  double freeboard = 0.0;
  atl03::SurfaceClass type = atl03::SurfaceClass::Unknown;
};

struct Atl10Product {
  std::vector<Atl10Freeboard> freeboards;  ///< ice segments with freeboard
  std::vector<double> section_ref_height;  ///< reference SSH per 10km section
  std::vector<double> section_center_s;
  std::size_t sections_without_leads = 0;
};

Atl10Product build_atl10(const Atl07Product& atl07, const Atl10Config& config = {});

}  // namespace is2::baseline
