// ATL07 emulator: NASA's sea-ice height product, built by aggregating 150
// signal photons per segment (so segment length varies inversely with
// surface brightness — 10-200 m for strong beams), with a decision-tree
// style surface-type classification (ATBD [2]). This is the baseline whose
// resolution the paper's 2m product beats in Figs 6-11.
#pragma once

#include <cstdint>
#include <vector>

#include "atl03/preprocess.hpp"
#include "atl03/types.hpp"

namespace is2::baseline {

struct Atl07Config {
  std::size_t photons_per_segment = 150;  ///< ATBD aggregation count
  // Rule thresholds for the surface-type decision tree (relative heights
  // are against the product's own rolling sea-level proxy).
  double lead_rate_max = 1.6;    ///< photons/shot at/below which a dark lead is suspected
  double lead_std_max = 0.06;    ///< specular lead: tight return
  double water_h_max = 0.06;     ///< near sea level
  double thin_h_max = 0.16;      ///< thin ice cap
  double baseline_window_m = 10'000.0;
  double baseline_percentile = 5.0;
};

/// One ATL07-style segment.
struct Atl07Segment {
  double s_center = 0.0;     ///< along-track center [m]
  double length = 0.0;       ///< along-track extent (varies with rate)
  double t = 0.0;
  double x = 0.0, y = 0.0;
  double h = 0.0;            ///< surface height (mean of aggregated photons)
  double h_std = 0.0;
  double photon_rate = 0.0;  ///< photons per shot
  double bckgrd_rate = 0.0;
  std::uint32_t n_photons = 0;
  atl03::SurfaceClass type = atl03::SurfaceClass::Unknown;
  atl03::SurfaceClass truth = atl03::SurfaceClass::Unknown;  ///< majority photon truth
};

struct Atl07Product {
  std::vector<Atl07Segment> segments;
  /// Mean segment length — shows the resolution loss vs 2 m (paper Fig 6/7).
  double mean_segment_length() const;
  /// Agreement of `type` with simulator truth.
  double classification_accuracy() const;
};

/// Build the ATL07 product from preprocessed photons: aggregate, compute
/// heights, then classify each segment with the rule tree.
Atl07Product build_atl07(const atl03::PreprocessedBeam& beam, const Atl07Config& config = {});

}  // namespace is2::baseline
