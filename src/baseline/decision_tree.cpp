#include "baseline/decision_tree.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace is2::baseline {

namespace {

double gini(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

}  // namespace

void DecisionTree::fit(const std::vector<float>& x, std::size_t dim,
                       const std::vector<std::uint8_t>& y, int n_classes,
                       const TreeConfig& config) {
  if (dim == 0 || x.size() != y.size() * dim)
    throw std::invalid_argument("DecisionTree::fit: shape mismatch");
  if (y.empty()) throw std::invalid_argument("DecisionTree::fit: empty dataset");
  dim_ = dim;
  n_classes_ = n_classes;
  depth_ = 0;
  nodes_.clear();
  std::vector<std::size_t> indices(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) indices[i] = i;
  build(x, y, indices, 0, y.size(), 0, config);
}

std::int32_t DecisionTree::build(const std::vector<float>& x, const std::vector<std::uint8_t>& y,
                                 std::vector<std::size_t>& indices, std::size_t begin,
                                 std::size_t end, int depth, const TreeConfig& config) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = end - begin;

  std::vector<std::size_t> counts(static_cast<std::size_t>(n_classes_), 0);
  for (std::size_t i = begin; i < end; ++i) ++counts[y[indices[i]]];
  std::uint8_t majority = 0;
  for (std::size_t c = 1; c < counts.size(); ++c)
    if (counts[c] > counts[majority]) majority = static_cast<std::uint8_t>(c);

  const auto make_leaf = [&] {
    Node leaf;
    leaf.label = majority;
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const double parent_gini = gini(counts, n);
  if (depth >= config.max_depth || n < config.min_samples_split || parent_gini == 0.0)
    return make_leaf();

  // Best split over a quantile threshold grid per feature.
  int best_feature = -1;
  float best_threshold = 0.0f;
  double best_score = parent_gini;
  std::vector<float> values(n);
  for (std::size_t f = 0; f < dim_; ++f) {
    for (std::size_t i = 0; i < n; ++i) values[i] = x[indices[begin + i] * dim_ + f];
    std::sort(values.begin(), values.end());
    if (values.front() == values.back()) continue;
    for (std::size_t t = 1; t <= config.n_thresholds; ++t) {
      const std::size_t q = t * n / (config.n_thresholds + 1);
      const float thr = values[std::min(q, n - 1)];
      if (thr >= values.back()) continue;
      std::vector<std::size_t> lc(static_cast<std::size_t>(n_classes_), 0);
      std::size_t ln = 0;
      for (std::size_t i = begin; i < end; ++i) {
        if (x[indices[i] * dim_ + f] <= thr) {
          ++lc[y[indices[i]]];
          ++ln;
        }
      }
      const std::size_t rn = n - ln;
      if (ln < config.min_samples_leaf || rn < config.min_samples_leaf) continue;
      std::vector<std::size_t> rc(static_cast<std::size_t>(n_classes_), 0);
      for (std::size_t c = 0; c < counts.size(); ++c) rc[c] = counts[c] - lc[c];
      const double score = (static_cast<double>(ln) * gini(lc, ln) +
                            static_cast<double>(rn) * gini(rc, rn)) /
                           static_cast<double>(n);
      if (score + 1e-9 < best_score) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = thr;
      }
    }
  }
  if (best_feature < 0) return make_leaf();

  // Partition indices in place.
  const auto mid_it = std::stable_partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t idx) {
        return x[idx * dim_ + static_cast<std::size_t>(best_feature)] <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());

  const auto node_idx = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_idx)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_idx)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(node_idx)].label = majority;

  const std::int32_t left = build(x, y, indices, begin, mid, depth + 1, config);
  const std::int32_t right = build(x, y, indices, mid, end, depth + 1, config);
  nodes_[static_cast<std::size_t>(node_idx)].left = left;
  nodes_[static_cast<std::size_t>(node_idx)].right = right;
  return node_idx;
}

std::uint8_t DecisionTree::predict(const float* x) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree::predict: not trained");
  std::int32_t node = 0;
  for (;;) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    if (nd.feature < 0) return nd.label;
    node = x[nd.feature] <= nd.threshold ? nd.left : nd.right;
  }
}

std::vector<std::uint8_t> DecisionTree::predict_batch(const std::vector<float>& x) const {
  if (dim_ == 0 || x.size() % dim_ != 0)
    throw std::invalid_argument("DecisionTree::predict_batch: shape mismatch");
  const std::size_t n = x.size() / dim_;
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = predict(&x[i * dim_]);
  return out;
}

std::uint64_t DecisionTree::structure_hash() const {
  // FNV-1a over the fields that determine predictions. Thresholds hash by
  // bit pattern, so any retraining that moves a split changes the hash.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(dim_));
  mix(static_cast<std::uint64_t>(n_classes_));
  mix(nodes_.size());
  for (const Node& nd : nodes_) {
    std::uint32_t tbits = 0;
    static_assert(sizeof(tbits) == sizeof(nd.threshold));
    std::memcpy(&tbits, &nd.threshold, sizeof(tbits));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(nd.feature)) << 32 | tbits);
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(nd.left)) << 32 |
        static_cast<std::uint32_t>(nd.right));
    mix(nd.label);
  }
  return h;
}

}  // namespace is2::baseline
