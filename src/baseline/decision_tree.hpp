// CART decision tree (Gini impurity, axis-aligned splits) — the class of
// model NASA's ATL07 surface classification uses and the paper argues
// against. Serves as the classical baseline for the deep models and as the
// trainable surface-type classifier inside the ATL07 emulator.
#pragma once

#include <cstdint>
#include <vector>

namespace is2::baseline {

struct TreeConfig {
  int max_depth = 8;
  std::size_t min_samples_leaf = 16;
  std::size_t min_samples_split = 32;
  /// Candidate thresholds per feature per node (quantile grid).
  std::size_t n_thresholds = 24;
};

class DecisionTree {
 public:
  /// Fit on row-major features [n * dim] with labels in [0, n_classes).
  void fit(const std::vector<float>& x, std::size_t dim, const std::vector<std::uint8_t>& y,
           int n_classes, const TreeConfig& config = {});

  std::uint8_t predict(const float* x) const;
  std::vector<std::uint8_t> predict_batch(const std::vector<float>& x) const;

  std::size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }
  bool trained() const { return !nodes_.empty(); }

  /// Stable 64-bit hash of the fitted tree (dims, classes, every node's
  /// split/threshold/children/label). Two trees predict identically iff
  /// structurally equal, so this is the tree's cache-identity fingerprint
  /// (pipeline::DecisionTreeBackend mixes it into product keys).
  std::uint64_t structure_hash() const;

 private:
  struct Node {
    int feature = -1;        ///< -1 for leaves
    float threshold = 0.0f;  ///< go left if x[feature] <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint8_t label = 0;  ///< majority class (used at leaves)
  };

  std::int32_t build(const std::vector<float>& x, const std::vector<std::uint8_t>& y,
                     std::vector<std::size_t>& indices, std::size_t begin, std::size_t end,
                     int depth, const TreeConfig& config);

  std::vector<Node> nodes_;
  std::size_t dim_ = 0;
  int n_classes_ = 0;
  int depth_ = 0;
};

}  // namespace is2::baseline
