#include "baseline/atl07.hpp"

#include <algorithm>
#include <cmath>

#include "util/rolling_percentile.hpp"
#include "util/stats.hpp"

namespace is2::baseline {

using atl03::SurfaceClass;

double Atl07Product::mean_segment_length() const {
  if (segments.empty()) return 0.0;
  double s = 0.0;
  for (const auto& seg : segments) s += seg.length;
  return s / static_cast<double>(segments.size());
}

double Atl07Product::classification_accuracy() const {
  std::size_t n = 0, ok = 0;
  for (const auto& seg : segments) {
    if (seg.type == SurfaceClass::Unknown || seg.truth == SurfaceClass::Unknown) continue;
    ++n;
    if (seg.type == seg.truth) ++ok;
  }
  return n ? static_cast<double>(ok) / static_cast<double>(n) : 0.0;
}

Atl07Product build_atl07(const atl03::PreprocessedBeam& beam, const Atl07Config& cfg) {
  Atl07Product product;
  const std::size_t n = beam.size();
  if (n == 0) return product;

  // Aggregate fixed photon counts (the ATBD's 150-photon rule).
  std::vector<double> h;
  h.reserve(cfg.photons_per_segment);
  for (std::size_t begin = 0; begin + cfg.photons_per_segment <= n;
       begin += cfg.photons_per_segment) {
    const std::size_t end = begin + cfg.photons_per_segment;
    Atl07Segment seg;
    h.clear();
    double t_sum = 0.0, x_sum = 0.0, y_sum = 0.0, bg_sum = 0.0;
    std::uint32_t counts[3] = {0, 0, 0};
    for (std::size_t i = begin; i < end; ++i) {
      h.push_back(beam.h[i]);
      t_sum += beam.t[i];
      x_sum += beam.x[i];
      y_sum += beam.y[i];
      bg_sum += beam.bckgrd_rate[i];
      if (!beam.truth_class.empty() && beam.truth_class[i] < 3) ++counts[beam.truth_class[i]];
    }
    const auto m = static_cast<double>(cfg.photons_per_segment);
    seg.s_center = 0.5 * (beam.s[begin] + beam.s[end - 1]);
    seg.length = std::max(beam.s[end - 1] - beam.s[begin], 1e-6);
    seg.t = t_sum / m;
    seg.x = x_sum / m;
    seg.y = y_sum / m;
    seg.h = util::mean(h);
    seg.h_std = util::stddev(h);
    seg.bckgrd_rate = bg_sum / m;
    seg.n_photons = static_cast<std::uint32_t>(cfg.photons_per_segment);
    seg.photon_rate = m / (seg.length / 0.7);  // photons per shot
    if (!beam.truth_class.empty()) {
      std::uint32_t best = 0;
      for (std::uint32_t c = 1; c < 3; ++c)
        if (counts[c] > counts[best]) best = c;
      seg.truth = counts[best] > 0 ? static_cast<SurfaceClass>(best) : SurfaceClass::Unknown;
    }
    product.segments.push_back(seg);
  }

  // Rolling sea-level proxy over segment heights (the product classifies on
  // heights relative to its own local sea surface estimate). Incremental
  // order statistics: bit-identical to the old per-step percentile recompute.
  std::vector<double> baseline(product.segments.size(), 0.0);
  {
    util::RollingPercentile window(cfg.baseline_percentile);
    std::size_t lo = 0, hi = 0;
    for (std::size_t k = 0; k < product.segments.size(); ++k) {
      const double s = product.segments[k].s_center;
      while (hi < product.segments.size() &&
             product.segments[hi].s_center <= s + cfg.baseline_window_m / 2.0) {
        window.insert(product.segments[hi].h);
        ++hi;
      }
      while (lo < hi && product.segments[lo].s_center < s - cfg.baseline_window_m / 2.0) {
        window.erase(product.segments[lo].h);
        ++lo;
      }
      baseline[k] = window.query();
    }
  }

  // ATBD-style surface-type decision tree.
  for (std::size_t k = 0; k < product.segments.size(); ++k) {
    Atl07Segment& seg = product.segments[k];
    const double h_rel = seg.h - baseline[k];
    if (seg.photon_rate <= cfg.lead_rate_max && seg.h_std <= cfg.lead_std_max &&
        h_rel <= cfg.water_h_max) {
      seg.type = SurfaceClass::OpenWater;  // dark, quiet, at sea level: lead
    } else if (h_rel <= cfg.water_h_max) {
      seg.type = seg.photon_rate <= cfg.lead_rate_max ? SurfaceClass::OpenWater
                                                      : SurfaceClass::ThinIce;
    } else if (h_rel <= cfg.thin_h_max) {
      seg.type = SurfaceClass::ThinIce;
    } else {
      seg.type = SurfaceClass::ThickIce;
    }
  }
  return product;
}

}  // namespace is2::baseline
