#include "baseline/atl10.hpp"

#include <algorithm>
#include <cmath>

namespace is2::baseline {

using atl03::SurfaceClass;

Atl10Product build_atl10(const Atl07Product& atl07, const Atl10Config& cfg) {
  Atl10Product out;
  if (atl07.segments.empty()) return out;

  const double s_begin = atl07.segments.front().s_center;
  const double s_end = atl07.segments.back().s_center;
  const auto n_sections =
      static_cast<std::size_t>((s_end - s_begin) / cfg.swath_length_m) + 1;

  out.section_ref_height.assign(n_sections, std::numeric_limits<double>::quiet_NaN());
  out.section_center_s.resize(n_sections);
  for (std::size_t sec = 0; sec < n_sections; ++sec)
    out.section_center_s[sec] = s_begin + (static_cast<double>(sec) + 0.5) * cfg.swath_length_m;

  // Reference surface per section: inverse-variance combination of lead
  // (open-water segment) heights — ATBD eq. set reproduced in the paper's
  // method (iv).
  for (std::size_t sec = 0; sec < n_sections; ++sec) {
    const double lo = s_begin + static_cast<double>(sec) * cfg.swath_length_m;
    const double hi = lo + cfg.swath_length_m;
    double num = 0.0, den = 0.0;
    for (const auto& seg : atl07.segments) {
      if (seg.s_center < lo || seg.s_center >= hi) continue;
      if (seg.type != SurfaceClass::OpenWater) continue;
      const double sigma =
          std::max(seg.h_std / std::sqrt(static_cast<double>(seg.n_photons)),
                   cfg.lead_sigma_floor);
      const double w = 1.0 / (sigma * sigma);
      num += w * seg.h;
      den += w;
    }
    if (den > 0.0) out.section_ref_height[sec] = num / den;
  }

  // Interpolate sections without leads from the nearest resolved sections.
  for (std::size_t sec = 0; sec < n_sections; ++sec) {
    if (!std::isnan(out.section_ref_height[sec])) continue;
    ++out.sections_without_leads;
    double left = std::numeric_limits<double>::quiet_NaN(), right = left;
    std::size_t dl = 0, dr = 0;
    for (std::size_t d = 1; d < n_sections; ++d) {
      if (std::isnan(left) && sec >= d && !std::isnan(out.section_ref_height[sec - d])) {
        left = out.section_ref_height[sec - d];
        dl = d;
      }
      if (std::isnan(right) && sec + d < n_sections &&
          !std::isnan(out.section_ref_height[sec + d])) {
        right = out.section_ref_height[sec + d];
        dr = d;
      }
    }
    if (!std::isnan(left) && !std::isnan(right)) {
      const double w = static_cast<double>(dl) / static_cast<double>(dl + dr);
      out.section_ref_height[sec] = left * (1.0 - w) + right * w;
    } else if (!std::isnan(left)) {
      out.section_ref_height[sec] = left;
    } else if (!std::isnan(right)) {
      out.section_ref_height[sec] = right;
    } else {
      out.section_ref_height[sec] = 0.0;  // no leads anywhere: degenerate track
    }
  }

  // Freeboard for ice segments.
  for (const auto& seg : atl07.segments) {
    if (seg.type == SurfaceClass::Unknown) continue;
    auto sec = static_cast<std::size_t>((seg.s_center - s_begin) / cfg.swath_length_m);
    sec = std::min(sec, n_sections - 1);
    const double fb = seg.h - out.section_ref_height[sec];
    if (fb < -1.0 || fb > cfg.max_freeboard_m) continue;  // ATBD sanity filter
    out.freeboards.push_back({seg.s_center, seg.length, fb, seg.type});
  }
  return out;
}

}  // namespace is2::baseline
