// Shared ATL03 / sea-ice domain types.
#pragma once

#include <cstdint>
#include <string>

namespace is2::atl03 {

/// Surface classes used throughout the pipeline (paper's three targets).
/// Values are stable: they appear in serialized granules and label files.
enum class SurfaceClass : std::uint8_t {
  ThickIce = 0,   // thick / snow-covered sea ice
  ThinIce = 1,    // nilas, grey ice, newly frozen leads
  OpenWater = 2,  // leads and polynya open water
  Unknown = 255,  // unlabeled (cloud-masked or outside S2 coverage)
};

inline const char* to_string(SurfaceClass c) {
  switch (c) {
    case SurfaceClass::ThickIce: return "thick_ice";
    case SurfaceClass::ThinIce: return "thin_ice";
    case SurfaceClass::OpenWater: return "open_water";
    case SurfaceClass::Unknown: return "unknown";
  }
  return "?";
}

/// Number of trainable surface classes (Unknown excluded).
inline constexpr int kNumClasses = 3;

/// ATL03 photon signal classification confidence (ATBD signal_conf_ph):
/// 0 noise, 1 buffer, 2 low, 3 medium, 4 high.
enum class SignalConf : std::int8_t {
  Noise = 0,
  Buffer = 1,
  Low = 2,
  Medium = 3,
  High = 4,
};

/// The six ICESat-2 beams; the paper uses only the three strong beams.
enum class BeamId : std::uint8_t { Gt1l = 0, Gt1r = 1, Gt2l = 2, Gt2r = 3, Gt3l = 4, Gt3r = 5 };

inline const char* beam_name(BeamId b) {
  switch (b) {
    case BeamId::Gt1l: return "gt1l";
    case BeamId::Gt1r: return "gt1r";
    case BeamId::Gt2l: return "gt2l";
    case BeamId::Gt2r: return "gt2r";
    case BeamId::Gt3l: return "gt3l";
    case BeamId::Gt3r: return "gt3r";
  }
  return "?";
}

/// In the nominal configuration the right beams of each pair are strong.
inline bool is_strong(BeamId b) {
  return b == BeamId::Gt1r || b == BeamId::Gt2r || b == BeamId::Gt3r;
}

}  // namespace is2::atl03
