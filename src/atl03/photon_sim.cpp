#include "atl03/photon_sim.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "atl03/noise.hpp"
#include "geo/polar_stereo.hpp"

namespace is2::atl03 {

double beam_cross_track_offset(BeamId beam) {
  switch (beam) {
    case BeamId::Gt1l: return -3390.0;
    case BeamId::Gt1r: return -3300.0;
    case BeamId::Gt2l: return -90.0;
    case BeamId::Gt2r: return 0.0;
    case BeamId::Gt3l: return 3210.0;
    case BeamId::Gt3r: return 3300.0;
  }
  return 0.0;
}

PhotonSimulator::PhotonSimulator(const InstrumentConfig& config, std::uint64_t seed)
    : config_(config), seed_(seed) {}

BeamData PhotonSimulator::simulate_beam(const SurfaceModel& surface, BeamId beam,
                                        double epoch_time) const {
  const auto& cfg = config_;
  util::Rng rng = util::Rng(seed_).fork(static_cast<std::uint64_t>(beam) ^
                                        util::hash64(static_cast<std::uint64_t>(epoch_time * 1e3)));

  const geo::GroundTrack beam_track = surface.track().offset(beam_cross_track_offset(beam));
  const geo::PolarStereo proj = geo::PolarStereo::epsg3976();
  const double strength = is_strong(beam) ? 1.0 : cfg.weak_beam_factor;

  BeamData out;
  out.beam = beam;

  const auto n_shots = static_cast<std::size_t>(surface.length() / cfg.shot_spacing_m);
  out.delta_time.reserve(n_shots * 5);
  out.h.reserve(n_shots * 5);

  // Scratch per-shot photon buffer: height + is-signal + truth class.
  struct ShotPhoton {
    double h;
    bool signal;
    SurfaceClass cls;
  };
  std::vector<ShotPhoton> shot;

  // Background-rate accumulation state.
  int bin_shot_count = 0;
  std::size_t bin_background_photons = 0;
  double bin_start_time = epoch_time;

  for (std::size_t i = 0; i < n_shots; ++i) {
    const double s = (static_cast<double>(i) + 0.5) * cfg.shot_spacing_m;
    const double t = epoch_time + s / cfg.ground_speed_mps;
    const geo::Xy shot_center = beam_track.at(s);

    const SurfaceSample surf = surface.sample_xy(shot_center);
    if (surf.cls == SurfaceClass::Unknown) continue;
    const double s_eff = surface.effective_s(shot_center);
    const double ssh = surface.sea_surface_height(s_eff, t);
    const double surface_h = ssh + surf.freeboard;

    shot.clear();

    // --- Signal photons ------------------------------------------------
    double rate = 0.0, sigma = 0.0;
    switch (surf.cls) {
      case SurfaceClass::ThickIce:
        rate = cfg.rate_thick;
        sigma = cfg.height_noise_thick;
        break;
      case SurfaceClass::ThinIce:
        rate = cfg.rate_thin;
        sigma = cfg.height_noise_thin;
        break;
      case SurfaceClass::OpenWater:
        rate = cfg.rate_water;
        sigma = std::hypot(cfg.height_noise_water,
                           cfg.wave_coupling * surface.config().wave_sigma);
        break;
      default:
        break;
    }
    // Reflectance modulates return strength around the class mean, widening
    // the per-class rate distributions so they overlap at the class edges.
    rate *= strength * (0.6 + 0.8 * surf.reflectance);
    const int n_signal = rng.poisson(rate);
    for (int k = 0; k < n_signal; ++k) {
      double h = surface_h + sigma * rng.normal();
      if (surf.cls == SurfaceClass::OpenWater && rng.bernoulli(cfg.subsurface_prob_water))
        h -= rng.exponential(1.0 / cfg.subsurface_tau_m);
      shot.push_back({h, true, surf.cls});
    }

    // --- Background photons ---------------------------------------------
    // Window time = 2*halfwidth converted through the two-way travel time.
    constexpr double c_mps = 299'792'458.0;
    const double window_s = 2.0 * (2.0 * cfg.window_halfwidth_m) / c_mps;
    // Solar background scales with surface albedo, but weakly relative to the
    // class reflectance contrast (most of the background is sky-scattered).
    const double bg_rate_hz =
        cfg.background_rate_mhz * 1e6 * (0.75 + 0.5 * surf.reflectance) * strength;
    const int n_bg = rng.poisson(bg_rate_hz * window_s);
    for (int k = 0; k < n_bg; ++k) {
      const double h = surface_h + rng.uniform(-cfg.window_halfwidth_m, cfg.window_halfwidth_m);
      shot.push_back({h, false, surf.cls});
    }
    bin_background_photons += static_cast<std::size_t>(n_bg);

    // --- Detector dead time (first-photon bias source) -------------------
    // The return fans out over the beam's detector channels; each channel
    // goes blind for dead_time_m of range after a trigger. Multi-photon
    // returns mostly survive (different channels), but same-channel
    // collisions preferentially drop the *later* (lower) photon — the
    // first-photon bias the resampling stage corrects.
    std::sort(shot.begin(), shot.end(),
              [](const ShotPhoton& a, const ShotPhoton& b) { return a.h > b.h; });
    const int n_channels = is_strong(beam) ? cfg.strong_channels : cfg.weak_channels;
    std::array<double, 32> blind_until;
    blind_until.fill(std::numeric_limits<double>::infinity());
    std::array<bool, 32> blind_active{};
    for (const ShotPhoton& ph : shot) {
      const auto ch = static_cast<std::size_t>(
          rng.uniform_int(0, std::min(n_channels, 32) - 1));
      if (blind_active[ch] && ph.h > blind_until[ch]) continue;  // swallowed
      blind_active[ch] = true;
      blind_until[ch] = ph.h - cfg.dead_time_m;

      // Geolocate with footprint scatter.
      const double jitter_along = cfg.footprint_sigma_m * rng.normal();
      const double jitter_cross = cfg.footprint_sigma_m * rng.normal();
      const geo::Xy p = {shot_center.x +
                             jitter_along * std::cos(beam_track.heading()) -
                             jitter_cross * std::sin(beam_track.heading()),
                         shot_center.y + jitter_along * std::sin(beam_track.heading()) +
                             jitter_cross * std::cos(beam_track.heading())};
      const geo::LonLat ll = proj.inverse(p);

      // Confidence flag with signal-finder error rates.
      SignalConf conf;
      if (ph.signal) {
        conf = rng.bernoulli(cfg.conf_drop)
                   ? (rng.bernoulli(0.5) ? SignalConf::Low : SignalConf::Medium)
                   : SignalConf::High;
      } else {
        if (rng.bernoulli(cfg.conf_noise))
          conf = rng.bernoulli(0.5) ? SignalConf::Medium : SignalConf::High;
        else
          conf = rng.bernoulli(0.3) ? SignalConf::Buffer : SignalConf::Noise;
      }

      out.delta_time.push_back(t - epoch_time);
      out.lat.push_back(ll.lat);
      out.lon.push_back(ll.lon);
      out.h.push_back(ph.h);
      out.along_track.push_back(s + jitter_along);
      out.signal_conf.push_back(static_cast<std::int8_t>(conf));
      out.truth_class.push_back(static_cast<std::uint8_t>(ph.cls));
    }

    // --- Background-rate bins (bckgrd_atlas group) ------------------------
    if (++bin_shot_count == cfg.bckgrd_bin_shots || i + 1 == n_shots) {
      const double t_end = t;
      const double dt = std::max(t_end - bin_start_time, 1e-9);
      out.bckgrd_delta_time.push_back(0.5 * (bin_start_time + t_end) - epoch_time);
      out.bckgrd_rate.push_back(static_cast<double>(bin_background_photons) / dt);
      bin_shot_count = 0;
      bin_background_photons = 0;
      bin_start_time = t_end;
    }
  }

  out.check_consistent();
  return out;
}

Granule PhotonSimulator::simulate_granule(const SurfaceModel& surface,
                                          const std::string& granule_id, double epoch_time,
                                          const std::vector<BeamId>& beams) const {
  Granule g;
  g.id = granule_id;
  g.epoch_time = epoch_time;
  g.track_origin = surface.track().origin();
  g.track_heading = surface.track().heading();
  g.track_length = surface.length();
  g.seed = seed_;
  g.beams.reserve(beams.size());
  for (BeamId b : beams) g.beams.push_back(simulate_beam(surface, b, epoch_time));
  return g;
}

}  // namespace is2::atl03
