// ATL03 granule data model: per-beam photon arrays (struct-of-arrays, the
// layout the real HDF5 product uses) plus acquisition metadata. Ground-truth
// per-photon classes from the simulator ride along in a `truth` group — the
// real product has no truth; it exists here for evaluation only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atl03/types.hpp"
#include "geo/track.hpp"

namespace is2::atl03 {

/// Photon arrays for one beam (mirrors /gtXX/heights in real ATL03).
struct BeamData {
  BeamId beam = BeamId::Gt1r;

  // Per photon:
  std::vector<double> delta_time;   ///< seconds since granule epoch
  std::vector<double> lat;          ///< degrees
  std::vector<double> lon;          ///< degrees
  std::vector<double> h;            ///< ellipsoidal height [m]
  std::vector<double> along_track;  ///< meters from track start (dist_ph_along)
  std::vector<std::int8_t> signal_conf;  ///< SignalConf for sea-ice surface type

  // Per 200-shot background bin (mirrors /gtXX/bckgrd_atlas):
  std::vector<double> bckgrd_delta_time;
  std::vector<double> bckgrd_rate;  ///< background photons / second

  // Simulator ground truth (evaluation only):
  std::vector<std::uint8_t> truth_class;  ///< SurfaceClass per photon

  std::size_t size() const { return h.size(); }
  /// All per-photon arrays share one length; throws if inconsistent.
  void check_consistent() const;
};

/// One simulated ATL03 granule: a single reference ground track pass.
struct Granule {
  std::string id;           ///< e.g. "ATL03_20191104195311_05940510"
  double epoch_time = 0.0;  ///< campaign-relative acquisition time [s]
  geo::Xy track_origin;     ///< projected start of the reference track
  double track_heading = 0.0;
  double track_length = 0.0;
  std::uint64_t seed = 0;   ///< scene seed (reproducibility metadata)
  std::vector<BeamData> beams;

  const BeamData& beam(BeamId id) const;
  BeamData& beam(BeamId id);
  bool has_beam(BeamId id) const;

  /// Reconstruct the reference ground track geometry.
  geo::GroundTrack track() const { return geo::GroundTrack(track_origin, track_heading); }

  /// Total photon count across beams.
  std::size_t total_photons() const;
};

}  // namespace is2::atl03
