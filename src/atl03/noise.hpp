// Deterministic lattice value-noise: smooth pseudo-random fields queryable at
// arbitrary coordinates without storing state. Used for ice roughness, snow
// depth variation, reflectance texture, lead-edge meander and cloud fields.
// Determinism matters: the surface model and the Sentinel-2 renderer must
// agree on the scene exactly, and reruns must reproduce bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/rng.hpp"

namespace is2::atl03 {

namespace detail {
inline double lattice_value(std::int64_t i, std::uint64_t seed) {
  // Hash lattice index to [-1, 1].
  const std::uint64_t h = util::hash64(static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ull ^ seed);
  return static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

inline double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }
}  // namespace detail

/// 1-D value noise in [-1, 1], feature size = `wavelength`.
inline double noise1d(double x, double wavelength, std::uint64_t seed) {
  const double u = x / wavelength;
  const double fl = std::floor(u);
  const auto i = static_cast<std::int64_t>(fl);
  const double t = detail::smoothstep(u - fl);
  const double a = detail::lattice_value(i, seed);
  const double b = detail::lattice_value(i + 1, seed);
  return a + (b - a) * t;
}

/// Fractal (3-octave) 1-D noise in roughly [-1, 1].
inline double fbm1d(double x, double wavelength, std::uint64_t seed) {
  double v = 0.0, amp = 0.5333, wl = wavelength;
  for (int o = 0; o < 3; ++o) {
    v += amp * noise1d(x, wl, seed + static_cast<std::uint64_t>(o) * 0x51ull);
    amp *= 0.5;
    wl *= 0.5;
  }
  return v;
}

/// 2-D value noise in [-1, 1].
inline double noise2d(double x, double y, double wavelength, std::uint64_t seed) {
  const double u = x / wavelength;
  const double v = y / wavelength;
  const double fu = std::floor(u);
  const double fv = std::floor(v);
  const auto i = static_cast<std::int64_t>(fu);
  const auto j = static_cast<std::int64_t>(fv);
  const double tu = detail::smoothstep(u - fu);
  const double tv = detail::smoothstep(v - fv);
  auto corner = [&](std::int64_t a, std::int64_t b) {
    return detail::lattice_value(a * 0x1F123BB5ll + b, seed);
  };
  const double v00 = corner(i, j);
  const double v10 = corner(i + 1, j);
  const double v01 = corner(i, j + 1);
  const double v11 = corner(i + 1, j + 1);
  const double top = v00 + (v10 - v00) * tu;
  const double bot = v01 + (v11 - v01) * tu;
  return top + (bot - top) * tv;
}

/// Fractal (3-octave) 2-D noise in roughly [-1, 1].
inline double fbm2d(double x, double y, double wavelength, std::uint64_t seed) {
  double acc = 0.0, amp = 0.5333, wl = wavelength;
  for (int o = 0; o < 3; ++o) {
    acc += amp * noise2d(x, y, wl, seed + static_cast<std::uint64_t>(o) * 0x51ull);
    amp *= 0.5;
    wl *= 0.5;
  }
  return acc;
}

}  // namespace is2::atl03
