// ATLAS instrument model: turns a SurfaceModel scene into ATL03-style
// geolocated photon clouds.
//
// Per 0.7m shot it draws Poisson signal photons whose count scales with
// surface reflectance (bright snow ice returns several photons, dark leads
// near one), adds solar background photons across the telemetry window, adds
// per-photon ranging noise and open-water wave/subsurface effects, and
// applies a single-channel detector dead time which produces the first-photon
// bias that the resampling stage later corrects. Confidence flags are
// assigned with a small error rate to mimic the ATL03 signal finder.
#pragma once

#include <cstdint>
#include <vector>

#include "atl03/granule.hpp"
#include "atl03/surface_model.hpp"
#include "atl03/types.hpp"

namespace is2::atl03 {

struct InstrumentConfig {
  double shot_spacing_m = 0.7;      ///< along-track shot pitch
  double footprint_sigma_m = 2.6;   ///< geolocation scatter within footprint
  double ground_speed_mps = 6900.0; ///< along-track ground speed

  // Mean signal photons per strong-beam shot by class (reflectance-modulated).
  double rate_thick = 4.0;
  double rate_thin = 2.8;
  double rate_water = 1.7;
  double weak_beam_factor = 0.25;   ///< weak beams get 1/4 of the energy

  // Per-photon height noise by class [m].
  double height_noise_thick = 0.20;
  double height_noise_thin = 0.14;
  double height_noise_water = 0.08;
  double wave_coupling = 1.0;       ///< scales surface wave sigma into water noise

  double subsurface_prob_water = 0.06;  ///< photon scattered below water surface
  double subsurface_tau_m = 0.25;       ///< exponential depth scale (calm leads are specular)

  double dead_time_m = 0.45;        ///< detector dead time in range units
  int strong_channels = 16;         ///< ATLAS strong beams fan out over 16 channels
  int weak_channels = 4;            ///< weak beams over 4

  double background_rate_mhz = 1.8; ///< solar background at reflectance 0.5
  double window_halfwidth_m = 15.0; ///< telemetry band half-width around surface

  double conf_drop = 0.03;          ///< signal photon flagged < High
  double conf_noise = 0.015;        ///< background photon flagged Medium/High
  int bckgrd_bin_shots = 200;       ///< shots per background-rate report
};

/// Across-track beam offsets from the reference ground track (meters);
/// strong/weak pairs 90 m apart, pairs 3.3 km apart.
double beam_cross_track_offset(BeamId beam);

class PhotonSimulator {
 public:
  PhotonSimulator(const InstrumentConfig& config, std::uint64_t seed);

  /// Simulate one beam over the full scene.
  BeamData simulate_beam(const SurfaceModel& surface, BeamId beam, double epoch_time) const;

  /// Simulate a granule with the given beams (default: three strong beams).
  Granule simulate_granule(const SurfaceModel& surface, const std::string& granule_id,
                           double epoch_time,
                           const std::vector<BeamId>& beams = {BeamId::Gt1r, BeamId::Gt2r,
                                                               BeamId::Gt3r}) const;

  const InstrumentConfig& config() const { return config_; }

 private:
  InstrumentConfig config_;
  std::uint64_t seed_;
};

}  // namespace is2::atl03
