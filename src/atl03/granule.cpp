#include "atl03/granule.hpp"

#include <stdexcept>

namespace is2::atl03 {

void BeamData::check_consistent() const {
  const std::size_t n = h.size();
  if (delta_time.size() != n || lat.size() != n || lon.size() != n ||
      along_track.size() != n || signal_conf.size() != n ||
      (!truth_class.empty() && truth_class.size() != n))
    throw std::invalid_argument("BeamData: per-photon arrays have inconsistent lengths");
  if (bckgrd_delta_time.size() != bckgrd_rate.size())
    throw std::invalid_argument("BeamData: background arrays have inconsistent lengths");
}

const BeamData& Granule::beam(BeamId id) const {
  for (const auto& b : beams)
    if (b.beam == id) return b;
  throw std::out_of_range(std::string("Granule: no beam ") + beam_name(id));
}

BeamData& Granule::beam(BeamId id) {
  for (auto& b : beams)
    if (b.beam == id) return b;
  throw std::out_of_range(std::string("Granule: no beam ") + beam_name(id));
}

bool Granule::has_beam(BeamId id) const {
  for (const auto& b : beams)
    if (b.beam == id) return true;
  return false;
}

std::size_t Granule::total_photons() const {
  std::size_t n = 0;
  for (const auto& b : beams) n += b.size();
  return n;
}

}  // namespace is2::atl03
