// Synthetic Ross Sea sea-ice surface process.
//
// The ground-truth scene both the ATL03 photon simulator and the Sentinel-2
// renderer sample. It is a 1-D semi-Markov process along the reference track
// (floes of thick ice / patches of thin ice / open-water leads, plus polynya
// events mimicking katabatic-wind lead openings), extended to 2-D through a
// smooth cross-track meander of class boundaries. Heights are ellipsoidal:
// sea surface height (geoid + tide + inverted barometer + mesoscale residual)
// plus class-dependent freeboard, ridges, snow and roughness.
//
// Everything is a deterministic function of (seed, coordinates) so the two
// instruments observe a consistent scene and experiments reproduce exactly.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "atl03/types.hpp"
#include "geo/corrections.hpp"
#include "geo/track.hpp"

namespace is2::atl03 {

struct SurfaceConfig {
  double length_m = 50'000.0;       ///< along-track extent of the scene
  double mean_floe_m = 1'800.0;     ///< mean thick-ice floe length
  double mean_thin_m = 350.0;       ///< mean thin-ice patch length
  double mean_lead_m = 80.0;        ///< mean open-water lead width
  double polynya_prob = 0.04;       ///< chance a water/thin segment is a polynya
  double polynya_scale = 12.0;      ///< polynya length multiplier
  double thick_freeboard_mu = 0.30; ///< mean thick-ice freeboard [m]
  double thick_freeboard_sigma = 0.12;
  double thin_freeboard_lo = 0.0;   ///< thin-ice freeboard range [m] (nilas ~ sea level)
  double thin_freeboard_hi = 0.12;  ///< upper thin ice blends into young thick ice
  double snow_depth_mean = 0.08;    ///< mean snow depth on thick ice [m]
  double ridge_density = 1.0 / 400.0;  ///< ridges per meter of thick ice
  double ridge_height_mean = 0.6;   ///< mean sail height above floe [m]
  double wave_sigma = 0.03;         ///< open-water surface roughness [m]
  double ssh_residual_amp = 0.03;   ///< mesoscale SSH left after corrections [m]
  double meander_amp_m = 60.0;      ///< cross-track wobble of class boundaries
  double meander_wavelength_m = 900.0;
};

/// One ground-truth along-track segment of uniform surface class.
struct SurfaceSegment {
  double s_begin = 0.0;
  double s_end = 0.0;
  SurfaceClass cls = SurfaceClass::ThickIce;
  double base_freeboard = 0.0;  ///< segment-level freeboard before texture
  double reflectance = 0.0;     ///< nominal top-of-atmosphere reflectance
  double snow_depth = 0.0;      ///< thick ice only
};

/// Point sample of the surface at a given along-track coordinate.
struct SurfaceSample {
  SurfaceClass cls = SurfaceClass::OpenWater;
  double freeboard = 0.0;      ///< ice+snow surface above local sea surface [m]
  double reflectance = 0.0;    ///< optical reflectance for the S2 renderer
};

class SurfaceModel {
 public:
  SurfaceModel(const SurfaceConfig& config, const geo::GroundTrack& track,
               const geo::GeoCorrections& corrections, std::uint64_t seed);

  /// Surface class at along-track coordinate s (1-D truth on the track).
  SurfaceClass class_at(double s) const;

  /// Surface class at an arbitrary projected point, applying the cross-track
  /// boundary meander (what the Sentinel-2 renderer sees).
  SurfaceClass class_at_xy(const geo::Xy& p) const;

  /// Freeboard + reflectance sample; deterministic in s.
  SurfaceSample sample(double s) const;

  /// Sample at an arbitrary projected point (class + texture via the
  /// meandered effective along-track coordinate). Off-scene points return
  /// Unknown with zero freeboard.
  SurfaceSample sample_xy(const geo::Xy& p) const;

  /// Effective along-track coordinate of a projected point (meander applied).
  double effective_s(const geo::Xy& p) const;

  /// True local sea surface height (ellipsoidal) at (s, t): corrections field
  /// plus the mesoscale residual the freeboard stage must recover.
  double sea_surface_height(double s, double t_s) const;

  /// Residual sea surface after perfect geophysical correction — the target
  /// of the local sea-surface detectors.
  double ssh_residual(double s) const;

  /// Ellipsoidal height of the (snow) surface at (s, t), without sensor
  /// noise: SSH + freeboard.
  double surface_height(double s, double t_s) const;

  const std::vector<SurfaceSegment>& segments() const { return segments_; }
  const geo::GroundTrack& track() const { return track_; }
  const SurfaceConfig& config() const { return config_; }
  double length() const { return config_.length_m; }

  /// Ground-truth class fractions (thick, thin, water) by length.
  std::array<double, 3> class_fractions() const;

 private:
  const SurfaceSegment& segment_at(double s) const;
  double meander(const geo::Xy& p) const;

  SurfaceConfig config_;
  geo::GroundTrack track_;
  const geo::GeoCorrections* corrections_;
  std::uint64_t seed_;
  std::vector<SurfaceSegment> segments_;
  std::vector<double> ridge_positions_;  // along-track ridge centers
  std::vector<double> ridge_heights_;
  std::vector<double> ridge_widths_;
};

}  // namespace is2::atl03
