#include "atl03/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "geo/polar_stereo.hpp"
#include "util/stats.hpp"

namespace is2::atl03 {

namespace {

/// Interpolate background-rate bins to an arbitrary time.
double interp_background(const std::vector<double>& bin_t, const std::vector<double>& bin_rate,
                         double t) {
  if (bin_t.empty()) return 0.0;
  if (t <= bin_t.front()) return bin_rate.front();
  if (t >= bin_t.back()) return bin_rate.back();
  const auto it = std::lower_bound(bin_t.begin(), bin_t.end(), t);
  const auto i = static_cast<std::size_t>(it - bin_t.begin());
  const double t0 = bin_t[i - 1], t1 = bin_t[i];
  const double w = (t - t0) / (t1 - t0);
  return bin_rate[i - 1] * (1.0 - w) + bin_rate[i] * w;
}

}  // namespace

PreprocessedBeam preprocess_beam(const Granule& granule, const BeamData& beam,
                                 const geo::GeoCorrections& corrections,
                                 const PreprocessConfig& config) {
  beam.check_consistent();
  const geo::PolarStereo proj = geo::PolarStereo::epsg3976();

  PreprocessedBeam out;
  out.beam = beam.beam;
  out.track_origin = granule.track_origin;
  out.track_heading = granule.track_heading;
  out.epoch_time = granule.epoch_time;

  // Confidence filter + projection + geophysical correction.
  const auto n = beam.size();
  std::vector<std::size_t> keep;
  keep.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (beam.signal_conf[i] >= static_cast<std::int8_t>(config.min_conf)) keep.push_back(i);

  // Sort by along-track distance (footprint jitter makes raw order ragged).
  std::sort(keep.begin(), keep.end(),
            [&](std::size_t a, std::size_t b) { return beam.along_track[a] < beam.along_track[b]; });

  out.s.reserve(keep.size());
  for (std::size_t i : keep) {
    const geo::Xy p = proj.forward({beam.lon[i], beam.lat[i]});
    double h = beam.h[i];
    if (config.apply_geo_correction)
      h -= corrections.total(granule.epoch_time + beam.delta_time[i], p.x, p.y);
    out.s.push_back(beam.along_track[i]);
    out.h.push_back(h);
    out.t.push_back(beam.delta_time[i]);
    out.x.push_back(p.x);
    out.y.push_back(p.y);
    out.bckgrd_rate.push_back(
        interp_background(beam.bckgrd_delta_time, beam.bckgrd_rate, beam.delta_time[i]));
    if (!beam.truth_class.empty()) out.truth_class.push_back(beam.truth_class[i]);
  }

  if (out.s.empty()) return out;

  // Reject ineffective reference photons: compare each photon to the median
  // height of its along-track bin (binned median = robust local surface).
  const double s0 = out.s.front();
  const auto n_bins =
      static_cast<std::size_t>((out.s.back() - s0) / config.outlier_bin_m) + 1;
  std::vector<std::vector<double>> bins(n_bins);
  for (std::size_t i = 0; i < out.s.size(); ++i)
    bins[static_cast<std::size_t>((out.s[i] - s0) / config.outlier_bin_m)].push_back(out.h[i]);
  std::vector<double> bin_median(n_bins, 0.0);
  for (std::size_t b = 0; b < n_bins; ++b)
    bin_median[b] = bins[b].empty() ? std::numeric_limits<double>::quiet_NaN()
                                    : util::median(bins[b]);
  // Fill empty bins from the nearest non-empty neighbour.
  for (std::size_t b = 0; b < n_bins; ++b) {
    if (!std::isnan(bin_median[b])) continue;
    for (std::size_t d = 1; d < n_bins; ++d) {
      if (b >= d && !std::isnan(bin_median[b - d])) { bin_median[b] = bin_median[b - d]; break; }
      if (b + d < n_bins && !std::isnan(bin_median[b + d])) { bin_median[b] = bin_median[b + d]; break; }
    }
  }

  PreprocessedBeam filtered;
  filtered.beam = out.beam;
  filtered.track_origin = out.track_origin;
  filtered.track_heading = out.track_heading;
  filtered.epoch_time = out.epoch_time;
  for (std::size_t i = 0; i < out.s.size(); ++i) {
    const auto b = static_cast<std::size_t>((out.s[i] - s0) / config.outlier_bin_m);
    if (std::abs(out.h[i] - bin_median[b]) > config.outlier_threshold_m) continue;
    filtered.s.push_back(out.s[i]);
    filtered.h.push_back(out.h[i]);
    filtered.t.push_back(out.t[i]);
    filtered.x.push_back(out.x[i]);
    filtered.y.push_back(out.y[i]);
    filtered.bckgrd_rate.push_back(out.bckgrd_rate[i]);
    if (!out.truth_class.empty()) filtered.truth_class.push_back(out.truth_class[i]);
  }
  return filtered;
}

std::vector<PreprocessedBeam> preprocess_strong_beams(const Granule& granule,
                                                      const geo::GeoCorrections& corrections,
                                                      const PreprocessConfig& config) {
  std::vector<PreprocessedBeam> out;
  for (const auto& b : granule.beams)
    if (is_strong(b.beam)) out.push_back(preprocess_beam(granule, b, corrections, config));
  return out;
}

}  // namespace is2::atl03
