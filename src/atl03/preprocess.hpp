// ATL03 preprocessing (paper §III.A.2): select strong beams, keep photons at
// or above a signal-confidence threshold, project to EPSG:3976, apply the
// geophysical height correction, interpolate per-photon background rates from
// the bckgrd_atlas bins, and reject "ineffective reference photons" (outliers
// far from the local surface) with a rolling-median filter.
#pragma once

#include <cstdint>
#include <vector>

#include "atl03/granule.hpp"
#include "atl03/types.hpp"
#include "geo/corrections.hpp"
#include "geo/track.hpp"

namespace is2::atl03 {

struct PreprocessConfig {
  SignalConf min_conf = SignalConf::High;  ///< paper keeps high-confidence photons
  bool apply_geo_correction = true;
  double outlier_bin_m = 25.0;        ///< bin size for the local median surface
  double outlier_threshold_m = 5.0;   ///< reject photons this far from local median
};

/// Clean per-beam photon series in along-track order, heights corrected.
struct PreprocessedBeam {
  BeamId beam = BeamId::Gt1r;
  geo::Xy track_origin;
  double track_heading = 0.0;
  double epoch_time = 0.0;

  std::vector<double> s;            ///< along-track [m], ascending
  std::vector<double> h;            ///< corrected height [m]
  std::vector<double> t;            ///< seconds since granule epoch
  std::vector<double> x;            ///< EPSG:3976 easting [m]
  std::vector<double> y;            ///< EPSG:3976 northing [m]
  std::vector<double> bckgrd_rate;  ///< interpolated background rate [Hz]
  std::vector<std::uint8_t> truth_class;  ///< evaluation only

  std::size_t size() const { return s.size(); }
  geo::GroundTrack track() const { return geo::GroundTrack(track_origin, track_heading); }
};

/// Preprocess a single beam.
PreprocessedBeam preprocess_beam(const Granule& granule, const BeamData& beam,
                                 const geo::GeoCorrections& corrections,
                                 const PreprocessConfig& config = {});

/// Preprocess all strong beams of a granule.
std::vector<PreprocessedBeam> preprocess_strong_beams(const Granule& granule,
                                                      const geo::GeoCorrections& corrections,
                                                      const PreprocessConfig& config = {});

}  // namespace is2::atl03
