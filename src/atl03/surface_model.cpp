#include "atl03/surface_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "atl03/noise.hpp"

namespace is2::atl03 {

namespace {

// Nominal top-of-atmosphere reflectances for the visible bands; thin ice is
// intermediate between bright snow-covered ice and dark water, which is what
// makes it the hard class for both S2 segmentation and IS2 classification.
constexpr double kReflectanceThick = 0.80;
constexpr double kReflectanceThin = 0.35;
constexpr double kReflectanceWater = 0.08;

}  // namespace

SurfaceModel::SurfaceModel(const SurfaceConfig& config, const geo::GroundTrack& track,
                           const geo::GeoCorrections& corrections, std::uint64_t seed)
    : config_(config), track_(track), corrections_(&corrections), seed_(seed) {
  if (config_.length_m <= 0.0)
    throw std::invalid_argument("SurfaceModel: length must be positive");

  util::Rng rng(util::hash64(seed ^ 0x5EA1CEull));

  // Semi-Markov class sequence. Durations are exponential around the class
  // mean; polynya events stretch water/thin segments by polynya_scale.
  double s = 0.0;
  SurfaceClass cls = SurfaceClass::ThickIce;
  while (s < config_.length_m) {
    double mean_len = 0.0;
    switch (cls) {
      case SurfaceClass::ThickIce: mean_len = config_.mean_floe_m; break;
      case SurfaceClass::ThinIce: mean_len = config_.mean_thin_m; break;
      case SurfaceClass::OpenWater: mean_len = config_.mean_lead_m; break;
      default: throw std::logic_error("SurfaceModel: bad class in generator");
    }
    double len = rng.exponential(1.0 / mean_len) + 4.0;  // floor keeps segments resolvable
    if (cls != SurfaceClass::ThickIce && rng.bernoulli(config_.polynya_prob))
      len *= config_.polynya_scale;

    SurfaceSegment seg;
    seg.s_begin = s;
    seg.s_end = std::min(s + len, config_.length_m);
    seg.cls = cls;
    switch (cls) {
      case SurfaceClass::ThickIce: {
        // Lognormal-ish floe freeboard, truncated to physical range.
        const double fb = rng.normal(config_.thick_freeboard_mu, config_.thick_freeboard_sigma);
        seg.base_freeboard = std::clamp(fb, 0.09, 1.2);
        seg.snow_depth = std::max(0.0, rng.normal(config_.snow_depth_mean, 0.04));
        seg.reflectance = std::clamp(kReflectanceThick + rng.normal(0.0, 0.05), 0.55, 0.98);
        break;
      }
      case SurfaceClass::ThinIce: {
        seg.base_freeboard = rng.uniform(config_.thin_freeboard_lo, config_.thin_freeboard_hi);
        seg.snow_depth = 0.0;
        seg.reflectance = std::clamp(kReflectanceThin + rng.normal(0.0, 0.08), 0.15, 0.55);
        break;
      }
      case SurfaceClass::OpenWater: {
        seg.base_freeboard = 0.0;
        seg.snow_depth = 0.0;
        seg.reflectance = std::clamp(kReflectanceWater + rng.normal(0.0, 0.02), 0.02, 0.15);
        break;
      }
      default: break;
    }
    segments_.push_back(seg);
    s = seg.s_end;

    // Transition kernel: thick ice borders either thin ice (refrozen lead
    // margin) or open water; thin ice usually closes back to thick ice.
    switch (cls) {
      case SurfaceClass::ThickIce:
        cls = rng.bernoulli(0.6) ? SurfaceClass::ThinIce : SurfaceClass::OpenWater;
        break;
      case SurfaceClass::ThinIce:
        cls = rng.bernoulli(0.72) ? SurfaceClass::ThickIce : SurfaceClass::OpenWater;
        break;
      case SurfaceClass::OpenWater:
        cls = rng.bernoulli(0.5) ? SurfaceClass::ThickIce : SurfaceClass::ThinIce;
        break;
      default: break;
    }
  }

  // Pressure ridges: Poisson-distributed along thick ice.
  for (const auto& seg : segments_) {
    if (seg.cls != SurfaceClass::ThickIce) continue;
    const double len = seg.s_end - seg.s_begin;
    const int n = rng.poisson(len * config_.ridge_density);
    for (int i = 0; i < n; ++i) {
      ridge_positions_.push_back(rng.uniform(seg.s_begin, seg.s_end));
      ridge_heights_.push_back(rng.exponential(1.0 / config_.ridge_height_mean));
      ridge_widths_.push_back(rng.uniform(8.0, 40.0));
    }
  }
  // Sort ridges so queries can binary-search a local window.
  std::vector<std::size_t> order(ridge_positions_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ridge_positions_[a] < ridge_positions_[b]; });
  auto permute = [&](std::vector<double>& v) {
    std::vector<double> out(v.size());
    for (std::size_t i = 0; i < order.size(); ++i) out[i] = v[order[i]];
    v = std::move(out);
  };
  permute(ridge_positions_);
  permute(ridge_heights_);
  permute(ridge_widths_);
}

const SurfaceSegment& SurfaceModel::segment_at(double s) const {
  const double q = std::clamp(s, 0.0, config_.length_m - 1e-9);
  auto it = std::upper_bound(segments_.begin(), segments_.end(), q,
                             [](double v, const SurfaceSegment& seg) { return v < seg.s_end; });
  if (it == segments_.end()) return segments_.back();
  return *it;
}

SurfaceClass SurfaceModel::class_at(double s) const { return segment_at(s).cls; }

double SurfaceModel::meander(const geo::Xy& p) const {
  const double u = track_.cross_track(p);
  // Boundary wobble grows away from the track but stays bounded; exactly on
  // the track (u == 0) the 2-D field matches the 1-D process by construction.
  return config_.meander_amp_m * std::tanh(u / 500.0) *
         fbm1d(track_.along_track(p), config_.meander_wavelength_m, seed_ ^ 0x3EA2ull);
}

SurfaceClass SurfaceModel::class_at_xy(const geo::Xy& p) const {
  const double s = effective_s(p);
  if (s < 0.0 || s > config_.length_m) return SurfaceClass::Unknown;
  return class_at(s);
}

double SurfaceModel::effective_s(const geo::Xy& p) const {
  return track_.along_track(p) + meander(p);
}

SurfaceSample SurfaceModel::sample_xy(const geo::Xy& p) const {
  const double s = effective_s(p);
  if (s < 0.0 || s > config_.length_m) return SurfaceSample{SurfaceClass::Unknown, 0.0, 0.0};
  return sample(s);
}

SurfaceSample SurfaceModel::sample(double s) const {
  const SurfaceSegment& seg = segment_at(s);
  SurfaceSample out;
  out.cls = seg.cls;

  switch (seg.cls) {
    case SurfaceClass::ThickIce: {
      // Floe-scale texture + snow + ridge sails.
      double h = seg.base_freeboard + seg.snow_depth;
      h += 0.05 * fbm1d(s, 35.0, seed_ ^ 0x0F10Eull);
      h += 0.02 * noise1d(s, 6.0, seed_ ^ 0x0F11Full);
      // Ridges within ±60 m.
      auto lo = std::lower_bound(ridge_positions_.begin(), ridge_positions_.end(), s - 60.0);
      for (auto it = lo; it != ridge_positions_.end() && *it < s + 60.0; ++it) {
        const auto i = static_cast<std::size_t>(it - ridge_positions_.begin());
        const double d = (s - ridge_positions_[i]) / ridge_widths_[i];
        h += ridge_heights_[i] * std::exp(-0.5 * d * d);
      }
      out.freeboard = std::max(h, 0.05);
      out.reflectance =
          std::clamp(seg.reflectance + 0.04 * noise1d(s, 120.0, seed_ ^ 0xAB1Dull), 0.4, 1.0);
      break;
    }
    case SurfaceClass::ThinIce: {
      double h = seg.base_freeboard + 0.008 * noise1d(s, 20.0, seed_ ^ 0x7711Cull);
      out.freeboard = std::max(h, 0.0);
      // Thin-ice darkness tracks its thickness: thinner = darker.
      out.reflectance = std::clamp(
          seg.reflectance + 0.06 * noise1d(s, 150.0, seed_ ^ 0xAB2Dull), 0.12, 0.6);
      break;
    }
    case SurfaceClass::OpenWater: {
      out.freeboard = 0.0;  // waves enter via the photon simulator's noise
      out.reflectance =
          std::clamp(seg.reflectance + 0.015 * noise1d(s, 80.0, seed_ ^ 0xAB3Dull), 0.01, 0.2);
      break;
    }
    default:
      break;
  }
  return out;
}

double SurfaceModel::ssh_residual(double s) const {
  // Mesoscale oceanography the geophysical corrections cannot remove; the
  // sliding-window sea-surface detectors have to track this.
  return config_.ssh_residual_amp * fbm1d(s, 18'000.0, seed_ ^ 0x55Dull);
}

double SurfaceModel::sea_surface_height(double s, double t_s) const {
  const geo::Xy p = track_.at(s);
  return corrections_->total(t_s, p.x, p.y) + ssh_residual(s);
}

double SurfaceModel::surface_height(double s, double t_s) const {
  return sea_surface_height(s, t_s) + sample(s).freeboard;
}

std::array<double, 3> SurfaceModel::class_fractions() const {
  std::array<double, 3> len{0.0, 0.0, 0.0};
  for (const auto& seg : segments_)
    len[static_cast<std::size_t>(seg.cls)] += seg.s_end - seg.s_begin;
  const double total = len[0] + len[1] + len[2];
  for (auto& v : len) v /= total;
  return len;
}

}  // namespace is2::atl03
