#include "util/fault.hpp"

#include <chrono>
#include <thread>

#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace is2::util::fault {

namespace detail {
std::atomic<Plan*> g_armed{nullptr};
}  // namespace detail

void arm(Plan* plan) { detail::g_armed.store(plan, std::memory_order_release); }

Plan::Plan(std::uint64_t seed, obs::Registry* registry) : seed_(seed), registry_(registry) {}

Plan& Plan::on(const std::string& site, SiteConfig cfg) {
  MutexLock lock(mutex_);
  Rule rule;
  rule.site = site;
  rule.cfg = cfg;
  // Per-rule stream: plan seed x site name x rule index, so adding a rule
  // never perturbs the decisions of the ones already registered.
  std::uint64_t salt = seed_;
  for (const char c : site) salt = salt * 31 + static_cast<unsigned char>(c);
  rule.rng_state = hash64(salt + rules_.size());
  if (registry_) {
    rule.hits_total = &registry_->counter("is2_fault_hits_total", {{"site", site}},
                                          "Armed fault-site hits (matching rule visits)");
    rule.injected_total = &registry_->counter("is2_fault_injected_total", {{"site", site}},
                                              "Failures injected by the armed fault plan");
  }
  rules_.push_back(std::move(rule));
  return *this;
}

std::uint64_t Plan::hits(const std::string& site) const {
  MutexLock lock(mutex_);
  std::uint64_t n = 0;
  for (const Rule& r : rules_)
    if (r.site == site) n += r.hits;
  return n;
}

std::uint64_t Plan::failures(const std::string& site) const {
  MutexLock lock(mutex_);
  std::uint64_t n = 0;
  for (const Rule& r : rules_)
    if (r.site == site) n += r.failures;
  return n;
}

void Plan::visit(const char* site, int instance) {
  double latency_ms = 0.0;
  bool fail = false;
  std::uint64_t fail_hit = 0;
  {
    MutexLock lock(mutex_);
    for (Rule& r : rules_) {
      if (r.site != site) continue;
      if (r.cfg.instance >= 0 && r.cfg.instance != instance) continue;
      ++r.hits;
      if (r.hits_total) r.hits_total->inc();
      latency_ms += r.cfg.latency_ms;
      if (fail || r.failures >= r.cfg.max_failures) continue;
      bool fire = (r.cfg.fail_nth != 0 && r.hits == r.cfg.fail_nth) ||
                  (r.cfg.fail_every != 0 && r.hits % r.cfg.fail_every == 0);
      if (!fire && r.cfg.fail_rate > 0.0) {
        // 53-bit uniform from the rule's splitmix64 stream; consumed only
        // on rate rules so deterministic rules never shift the stream.
        const double u = static_cast<double>(splitmix64(r.rng_state) >> 11) * 0x1.0p-53;
        fire = u < r.cfg.fail_rate;
      }
      if (fire) {
        ++r.failures;
        if (r.injected_total) r.injected_total->inc();
        fail = true;
        fail_hit = r.hits;
      }
    }
  }
  // Latency and the throw happen outside the plan lock so a slow site
  // never serializes unrelated sites through the plan.
  if (latency_ms > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(latency_ms));
  if (fail)
    throw InjectedFault(std::string("injected fault at ") + site + "[" +
                        std::to_string(instance) + "] (hit " + std::to_string(fail_hit) + ")");
}

}  // namespace is2::util::fault
