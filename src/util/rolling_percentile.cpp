#include "util/rolling_percentile.hpp"

#include <stdexcept>

namespace is2::util {

RollingPercentile::RollingPercentile(double p) : p_(p) {
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("RollingPercentile: p outside [0,100]");
}

void RollingPercentile::insert(double x) {
  if (low_.empty() || x <= *low_.rbegin())
    low_.insert(x);
  else
    high_.insert(x);
  rebalance();
}

void RollingPercentile::erase(double x) {
  if (auto it = low_.find(x); it != low_.end()) {
    low_.erase(it);
  } else if (auto jt = high_.find(x); jt != high_.end()) {
    high_.erase(jt);
  } else {
    throw std::invalid_argument("RollingPercentile::erase: value not in window");
  }
  rebalance();
}

void RollingPercentile::clear() {
  low_.clear();
  high_.clear();
}

void RollingPercentile::rebalance() {
  const std::size_t n = size();
  if (n == 0) return;
  // Same rank split as util::percentile: rank = p/100*(n-1), low_ holds the
  // floor(rank)+1 smallest values. The target moves by at most one per
  // insert/erase, so each rebalance is O(log w) amortized.
  const double rank = p_ / 100.0 * static_cast<double>(n - 1);
  const std::size_t target_low = static_cast<std::size_t>(rank) + 1;
  while (low_.size() < target_low) {
    const auto it = high_.begin();
    low_.insert(*it);
    high_.erase(it);
  }
  while (low_.size() > target_low) {
    const auto it = std::prev(low_.end());
    high_.insert(*it);
    low_.erase(it);
  }
}

double RollingPercentile::query() const {
  const std::size_t n = size();
  if (n == 0) return 0.0;
  const double rank = p_ / 100.0 * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  const double v_lo = *low_.rbegin();
  const double v_hi = high_.empty() ? v_lo : *high_.begin();
  return v_lo * (1.0 - frac) + v_hi * frac;
}

}  // namespace is2::util
