// Minimal fixed-size thread pool used by the map-reduce engine and the
// distributed-training harness for auxiliary work. Tasks are type-erased
// void() callables; submit() returns a future for result plumbing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace is2::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace is2::util
