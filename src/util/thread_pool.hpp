// Minimal fixed-size thread pool used by the map-reduce engine, the serving
// subsystem and the distributed-training harness for auxiliary work. Tasks
// are type-erased void() callables; submit() returns a future for result
// plumbing.
//
// Ownership / threading contract: the pool owns its worker threads; the
// destructor stops intake, *drains every task already queued*, then joins —
// so work accepted before destruction always runs. submit() is thread-safe,
// never blocks (it only enqueues) and throws after shutdown has begun;
// parallel_for() blocks the caller until every index has run (or rethrows
// the first task exception after all workers have left the loop). Task
// exceptions surface through the returned future, never to the worker.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace is2::util {

class ThreadPool {
 public:
  /// `name`, when non-empty, labels each worker "<name>/<i>" via
  /// set_thread_label — the label shows up in log-line prefixes and names
  /// the thread's row in obs Perfetto exports.
  explicit ThreadPool(std::size_t num_threads, std::string name = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }
  const std::string& name() const { return name_; }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t ordinal);

  std::string name_;
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;
};

}  // namespace is2::util
