// Streaming order-statistics engine for sliding-window percentiles.
//
// The 2 m resampler's rolling sea-level baseline slides a ~10 km window over
// along-track segments and asks for a low percentile at every step; doing
// that with a copy + sort per step is O(n·w log w) and dominated serve
// cold-build latency. RollingPercentile keeps the window as two multisets
// split at the percentile rank (the classic dual-heap median design,
// generalized to any p), giving amortized O(log w) insert/erase and O(1)
// query, while producing output bit-identical to util::percentile on the
// same window contents: both select the same two order statistics and apply
// the same linear interpolation, and IEEE arithmetic on identical inputs is
// deterministic.
//
// Contract: one RollingPercentile is one thread's streaming state — no
// internal synchronization, and insert()/erase() mutate both multisets.
// erase() of a value not present throws rather than silently corrupting
// the window.
#pragma once

#include <cstddef>
#include <set>

namespace is2::util {

/// Sliding-window percentile with amortized O(log w) updates and O(1) query.
/// The percentile `p` is fixed at construction (in [0,100]); query() matches
/// util::percentile(window_contents, p) bit for bit.
class RollingPercentile {
 public:
  /// Throws std::invalid_argument when p is outside [0,100].
  explicit RollingPercentile(double p);

  void insert(double x);
  /// Removes one instance of x; throws std::invalid_argument when absent.
  void erase(double x);
  void clear();

  std::size_t size() const { return low_.size() + high_.size(); }
  bool empty() const { return low_.empty() && high_.empty(); }

  /// Linear-interpolated percentile of the current window; 0.0 when empty
  /// (mirroring util::percentile on an empty span).
  double query() const;

 private:
  void rebalance();

  double p_;
  // low_ holds the smallest floor(rank)+1 values (its max is the lower
  // interpolation endpoint), high_ the rest (its min is the upper endpoint).
  std::multiset<double> low_;
  std::multiset<double> high_;
};

}  // namespace is2::util
