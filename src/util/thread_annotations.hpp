// Clang thread-safety-analysis attribute shim (docs/static-analysis.md).
//
// These macros attach Clang's `-Wthread-safety` capability attributes to
// declarations; under any other compiler (gcc builds this repo locally and in
// the main CI job) every macro expands to nothing, so the annotations are
// pure documentation there and carry zero runtime or ABI cost everywhere.
// The dedicated clang CI job compiles with `-Werror=thread-safety`, turning
// each annotation into an enforced contract, and
// tests/thread_safety_negative/ proves the analysis is actually live (the
// shim can never silently rot into no-ops on clang).
//
// Conventions used across the repo:
//   - Fields:           `T x_ GUARDED_BY(mutex_);`
//   - `_locked` helpers: `void f_locked() REQUIRES(mutex_);`
//   - "never call with the lock held" entry points: `EXCLUDES(mutex_)`
//   - Lock wrappers (util/mutex.hpp) carry CAPABILITY / SCOPED_CAPABILITY /
//     ACQUIRE / RELEASE / TRY_ACQUIRE so user code rarely needs more than
//     GUARDED_BY + REQUIRES + EXCLUDES.
//
// Threading: this header defines macros only; it has no state.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define IS2_TSA_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef IS2_TSA_ATTR
#define IS2_TSA_ATTR(x)  // not clang (or too old): annotations are comments
#endif

#define CAPABILITY(x) IS2_TSA_ATTR(capability(x))
#define SCOPED_CAPABILITY IS2_TSA_ATTR(scoped_lockable)
#define GUARDED_BY(x) IS2_TSA_ATTR(guarded_by(x))
#define PT_GUARDED_BY(x) IS2_TSA_ATTR(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) IS2_TSA_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) IS2_TSA_ATTR(acquired_after(__VA_ARGS__))
#define REQUIRES(...) IS2_TSA_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) IS2_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) IS2_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) IS2_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) IS2_TSA_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) IS2_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) IS2_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) IS2_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) IS2_TSA_ATTR(assert_capability(x))
#define RETURN_CAPABILITY(x) IS2_TSA_ATTR(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS IS2_TSA_ATTR(no_thread_safety_analysis)

// Escape hatch for deliberate, documented data races (the obs trace ring's
// seqlock payload — docs/static-analysis.md#suppressions). Supported by both
// gcc and clang, so the TSan job sees it regardless of toolchain.
#if defined(__clang__) || defined(__GNUC__)
#define IS2_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#else
#define IS2_NO_SANITIZE_THREAD
#endif
