#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace is2::util {

void Table::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void Table::add_row_numeric(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::to_string() const {
  // Column widths over header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) width[c] = std::max(width[c], cells[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  auto rule = [&] {
    out << '+';
    for (std::size_t c = 0; c < ncols; ++c) out << std::string(width[c] + 2, '-') << '+';
    out << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << ' ' << cell << std::string(width[c] - cell.size() + 1, ' ') << '|';
    }
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) emit(r);
  rule();
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

}  // namespace is2::util
