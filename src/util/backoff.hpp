// Seeded retry backoff and deadline budgets for the robustness layer.
//
// `Backoff` produces the sleep schedule for bounded retries: exponential
// growth from `base_ms` capped at `max_ms`, with decorrelated jitter
// (AWS-style: next = uniform(base, prev * 3), capped) by default so
// synchronized retry storms spread out. All draws come from a util::Rng
// seeded at construction, so a retry schedule replays bit-identically.
//
// `Deadline` is the remaining-budget token a request carries through
// layered retries (cluster failover -> peer fetch -> disk read): one
// monotonic start point plus a budget; every layer checks `expired()`
// before spending another attempt. A zero budget means unlimited.
//
// Contract: both are plain mutable values with no synchronization — one
// per request / per retry loop, never shared across threads.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace is2::util {

struct BackoffConfig {
  double base_ms = 1.0;    ///< first sleep (and jitter floor)
  double max_ms = 100.0;   ///< cap on any single sleep
  double multiplier = 2.0; ///< growth when jitter is off
  bool decorrelated = true;
};

class Backoff {
 public:
  explicit Backoff(BackoffConfig cfg = {}, std::uint64_t seed = 0);

  /// The next sleep in milliseconds; advances the schedule.
  double next_ms();

  /// Sleeps for next_ms() (convenience for retry loops).
  void sleep();

  void reset();
  std::uint64_t attempts() const { return attempts_; }

 private:
  BackoffConfig cfg_;
  Rng rng_;
  double prev_ms_ = 0.0;
  std::uint64_t attempts_ = 0;
};

/// Remaining-budget clock: constructed where the budget is granted,
/// passed down by value through the layers that spend it.
class Deadline {
 public:
  /// `budget_ms <= 0` means unlimited (never expires).
  explicit Deadline(double budget_ms = 0.0) : budget_ms_(budget_ms) {}

  static Deadline unlimited() { return Deadline(0.0); }

  bool limited() const { return budget_ms_ > 0.0; }
  double budget_ms() const { return budget_ms_; }

  /// Milliseconds left; a large sentinel when unlimited, 0 when spent.
  double remaining_ms() const;
  bool expired() const { return limited() && timer_.millis() >= budget_ms_; }

 private:
  double budget_ms_;
  Timer timer_;
};

}  // namespace is2::util
