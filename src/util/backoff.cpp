#include "util/backoff.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

namespace is2::util {

Backoff::Backoff(BackoffConfig cfg, std::uint64_t seed) : cfg_(cfg), rng_(seed) {}

double Backoff::next_ms() {
  ++attempts_;
  double next;
  if (cfg_.decorrelated) {
    const double hi = std::max(cfg_.base_ms, prev_ms_ * 3.0);
    next = rng_.uniform(cfg_.base_ms, std::max(cfg_.base_ms, hi));
  } else {
    next = prev_ms_ <= 0.0 ? cfg_.base_ms : prev_ms_ * cfg_.multiplier;
  }
  next = std::min(next, cfg_.max_ms);
  prev_ms_ = next;
  return next;
}

void Backoff::sleep() {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(next_ms()));
}

void Backoff::reset() {
  prev_ms_ = 0.0;
  attempts_ = 0;
}

double Deadline::remaining_ms() const {
  if (!limited()) return std::numeric_limits<double>::max();
  return std::max(0.0, budget_ms_ - timer_.millis());
}

}  // namespace is2::util
