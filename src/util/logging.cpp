#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace is2::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

// Sink swap is rare (tests); logf checks the atomic flag first so the
// stderr path never touches the mutex-guarded std::function.
std::atomic<bool> g_has_sink{false};
Mutex g_sink_mutex;
LogSink& sink_storage() REQUIRES(g_sink_mutex) {
  static LogSink* sink = new LogSink();  // leaked: usable during static dtors
  return *sink;
}

thread_local char t_label[32] = {0};
thread_local std::uint64_t t_trace_id = 0;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

double uptime_ms() {
  static const Timer* epoch = new Timer();  // first log call anchors t=0
  return epoch->millis();
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  MutexLock lock(g_sink_mutex);
  const bool has = static_cast<bool>(sink);
  sink_storage() = std::move(sink);
  g_has_sink.store(has, std::memory_order_release);
}

void set_thread_label(const char* label) {
  if (!label) label = "";
  std::strncpy(t_label, label, sizeof t_label - 1);
  t_label[sizeof t_label - 1] = '\0';
}

const char* thread_label() { return t_label; }

void set_thread_trace_id(std::uint64_t trace_id) { t_trace_id = trace_id; }

std::uint64_t thread_trace_id() { return t_trace_id; }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;

  // One buffer, one write: lines from concurrent threads cannot interleave
  // mid-line. Overlong messages are truncated (with the newline preserved),
  // never split across writes.
  char buf[1024];
  int n = std::snprintf(buf, sizeof buf, "[%s +%.3f", level_name(level), uptime_ms());
  if (t_label[0] != '\0')
    n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n), " %s", t_label);
  if (t_trace_id != 0)
    n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n), " trace=%llu",
                       static_cast<unsigned long long>(t_trace_id));
  n += std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n), "] ");

  std::va_list args;
  va_start(args, fmt);
  const int m =
      std::vsnprintf(buf + n, sizeof buf - static_cast<std::size_t>(n), fmt, args);
  va_end(args);
  if (m > 0) n = std::min(n + m, static_cast<int>(sizeof buf) - 1);

  if (g_has_sink.load(std::memory_order_acquire)) {
    MutexLock lock(g_sink_mutex);
    if (sink_storage()) {
      sink_storage()(level, std::string_view(buf, static_cast<std::size_t>(n)));
      return;
    }
  }
  buf[n] = '\n';
  std::fwrite(buf, 1, static_cast<std::size_t>(n) + 1, stderr);
}

}  // namespace is2::util
