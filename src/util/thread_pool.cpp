#include "util/thread_pool.hpp"

#include <atomic>
#include <stdexcept>

namespace is2::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) throw std::invalid_argument("ThreadPool: need at least one thread");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t num_workers = std::min(n, workers_.size());
  std::vector<std::future<void>> futures;
  futures.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    futures.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  for (auto& f : futures) f.get();  // rethrows the first worker exception
}

}  // namespace is2::util
