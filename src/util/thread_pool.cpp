#include "util/thread_pool.hpp"

#include <atomic>
#include <stdexcept>

#include "util/logging.hpp"

namespace is2::util {

ThreadPool::ThreadPool(std::size_t num_threads, std::string name) : name_(std::move(name)) {
  // Clamp rather than throw: a zero-thread pool would make submit() /
  // parallel_for() block forever, and callers routinely size pools from
  // hardware_concurrency(), which may legitimately report 0.
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t ordinal) {
  if (!name_.empty()) set_thread_label((name_ + "/" + std::to_string(ordinal)).c_str());
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Explicit loop, not a predicate lambda: the thread-safety analysis
      // can only see guarded reads spelled where the lock is held.
      while (!stopping_ && tasks_.empty()) cv_.wait(lock);
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  // Exceptions are collected, not rethrown from get(): an early rethrow
  // would unwind this frame while other workers still hold references to
  // `next`/`fn` on it (observed as segfaults and as workers spinning on the
  // dangling counter forever, hanging the pool destructor's join).
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  Mutex error_mutex;
  const std::size_t num_workers = std::min(n, workers_.size());
  std::vector<std::future<void>> futures;
  futures.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    futures.push_back(submit([&] {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          {
            MutexLock lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
        }
      }
    }));
  }
  for (auto& f : futures) f.get();  // barrier: every worker has left the lambda
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace is2::util
