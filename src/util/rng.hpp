// Deterministic random number generation for reproducible simulation runs.
//
// All stochastic components of the library (surface process, photon
// simulator, scene renderer, NN weight init, data shuffling) draw from
// is2::util::Rng so a single seed reproduces an entire campaign bit-for-bit.
// The generator is xoshiro256++ seeded via splitmix64, which passes BigCrush
// and is cheap enough to sit inside per-photon loops.
//
// Contract: an Rng is mutable state with NO internal synchronization — give
// each thread its own instance (seeded distinctly) rather than sharing one;
// concurrent next() calls are a data race and would break reproducibility
// anyway. hash64() is a pure function and safe from any thread.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace is2::util {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix of a key — handy for deriving per-object substream
/// seeds (e.g. one stream per granule) from a master seed.
std::uint64_t hash64(std::uint64_t key);

/// xoshiro256++ pseudo-random generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random> adaptors,
/// but the built-in distributions below avoid libstdc++'s non-portable
/// streams and keep results identical across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Derive an independent substream keyed by `key` (granule id, rank, ...).
  Rng fork(std::uint64_t key) const;

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (cached spare value).
  double normal();
  /// Normal with mean/stddev.
  double normal(double mean, double stddev);
  /// Exponential with given rate (lambda).
  double exponential(double rate);
  /// Poisson sample; Knuth for small means, normal approximation above 64.
  int poisson(double mean);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Sample an index from unnormalized non-negative weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of an index-addressable container.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace is2::util
