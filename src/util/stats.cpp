#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace is2::util {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p outside [0,100]");
  std::vector<double> v(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  // Two order-statistic selections instead of a full sort: after the first,
  // everything past position lo is >= v[lo], so the second selection over
  // the tail yields the hi-th order statistic.
  const auto mid = v.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(v.begin(), mid, v.end());
  const double v_lo = v[lo];
  double v_hi = v_lo;
  if (hi != lo) {
    std::nth_element(mid + 1, v.begin() + static_cast<std::ptrdiff_t>(hi), v.end());
    v_hi = v[hi];
  }
  return v_lo * (1.0 - frac) + v_hi * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
}

void Histogram::add(double x) {
  // NaN must never reach a float->integer cast: std::floor(NaN) is NaN and
  // converting it is undefined behavior. Count such samples separately.
  if (std::isnan(x)) {
    ++nan_;
    return;
  }
  // Clamp in floating point BEFORE the integer cast so +/-inf (and anything
  // past ptrdiff_t range) lands in an edge bin instead of hitting the same
  // undefined cast.
  const double idx = std::floor((x - lo_) / width_);
  const double last = static_cast<double>(counts_.size() - 1);
  const auto bin = static_cast<std::size_t>(std::clamp(idx, 0.0, last));
  ++counts_[bin];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ || other.hi_ != hi_)
    throw std::invalid_argument("Histogram::merge: incompatible binning");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  nan_ += other.nan_;
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::mode() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < counts_.size(); ++i)
    if (counts_[i] > counts_[best]) best = i;
  return bin_center(best);
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / (static_cast<double>(total_) * width_);
}

std::string Histogram::render(std::size_t max_width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%+9.3f | ", bin_center(i));
    out += buf;
    const auto w = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * static_cast<double>(max_width));
    out.append(w, '#');
    std::snprintf(buf, sizeof buf, " %zu\n", counts_[i]);
    out += buf;
  }
  return out;
}

double histogram_quantile(const Histogram& hist, double q) {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("histogram_quantile: q outside [0,1]");
  if (hist.total() == 0) return hist.lo();
  const double target = q * static_cast<double>(hist.total());
  std::size_t cum = 0;
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const std::size_t c = hist.count(b);
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      const double frac =
          std::clamp((target - static_cast<double>(cum)) / static_cast<double>(c), 0.0, 1.0);
      return hist.lo() + (static_cast<double>(b) + frac) * hist.bin_width();
    }
    cum += c;
  }
  return hist.hi();
}

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double rms_diff(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("rms_diff: size mismatch");
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(x.size()));
}

}  // namespace is2::util
