// Tiny leveled logger. Benchmarks keep it at Warn so table output stays
// clean; examples raise it to Info to narrate pipeline stages.
//
// Contract: the level is one process-wide atomic — set_log_level()/logf()
// are safe from any thread and never block on anything but stderr itself.
// Lines from concurrent logf() calls may interleave at the stream level
// (each call is a few fprintf's, not one atomic write).
#pragma once

#include <cstdarg>
#include <string>

namespace is2::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; drops messages below the global level.
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define IS2_LOG_DEBUG(...) ::is2::util::logf(::is2::util::LogLevel::Debug, __VA_ARGS__)
#define IS2_LOG_INFO(...) ::is2::util::logf(::is2::util::LogLevel::Info, __VA_ARGS__)
#define IS2_LOG_WARN(...) ::is2::util::logf(::is2::util::LogLevel::Warn, __VA_ARGS__)
#define IS2_LOG_ERROR(...) ::is2::util::logf(::is2::util::LogLevel::Error, __VA_ARGS__)

}  // namespace is2::util
