// Tiny leveled logger. Benchmarks keep it at Warn so table output stays
// clean; examples raise it to Info to narrate pipeline stages.
//
// Contract: the level is one process-wide atomic — set_log_level()/logf()
// are safe from any thread. Each logf() call formats its whole line
// (prefix + message + newline) into one buffer and emits it with a single
// fwrite, so concurrent lines never interleave mid-line. Lines carry a
// `[LEVEL +<monotonic ms>]` prefix, the calling thread's label when set
// (`serve::BatchScheduler` workers are "sched/<i>", etc.) and the thread's
// active trace id when one is bound (obs::TraceBinding sets it), e.g.:
//
//   [WARN +1234.567 sched/0 trace=42] disk write-back failed: ...
//
// set_log_sink() replaces stderr with a callback (tests capture output this
// way); the sink receives the formatted line without the trailing newline
// and must be thread-safe (it is called under the logger's sink mutex, so
// sink bodies are serialized but must not log recursively).
#pragma once

#include <cstdarg>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace is2::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Replace stderr with `sink` for every subsequent logf(); pass nullptr (or
/// an empty function) to restore stderr. Lines arrive fully formatted,
/// without the trailing newline.
using LogSink = std::function<void(LogLevel, std::string_view)>;
void set_log_sink(LogSink sink);

/// Label of the calling thread, shown in log prefixes (and captured by the
/// obs layer for trace exports). Empty by default; thread pools set
/// "<pool>/<ordinal>" on their workers. The pointer is copied into
/// thread-local storage (bounded length), so temporaries are fine.
void set_thread_label(const char* label);
const char* thread_label();

/// Trace id tagged onto the calling thread's log lines; 0 = none. Managed
/// by obs::TraceBinding — application code rarely calls this directly.
void set_thread_trace_id(std::uint64_t trace_id);
std::uint64_t thread_trace_id();

/// printf-style logging; drops messages below the global level.
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define IS2_LOG_DEBUG(...) ::is2::util::logf(::is2::util::LogLevel::Debug, __VA_ARGS__)
#define IS2_LOG_INFO(...) ::is2::util::logf(::is2::util::LogLevel::Info, __VA_ARGS__)
#define IS2_LOG_WARN(...) ::is2::util::logf(::is2::util::LogLevel::Warn, __VA_ARGS__)
#define IS2_LOG_ERROR(...) ::is2::util::logf(::is2::util::LogLevel::Error, __VA_ARGS__)

}  // namespace is2::util
