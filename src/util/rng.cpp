#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace is2::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::uint64_t key) {
  std::uint64_t s = key;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t key) const {
  // Mix the current state with the key so forks from the same parent but
  // different keys are independent, and forks with the same key reproduce.
  const std::uint64_t mixed =
      hash64(state_[0] ^ rotl(state_[2], 13) ^ hash64(key ^ 0xA5A5A5A5A5A5A5A5ull));
  return Rng(mixed);
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform_int: hi < lo");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~0ull) - (~0ull) % span;
  std::uint64_t r;
  do {
    r = next();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_normal_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate must be > 0");
  double u;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

int Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Rng::poisson: mean must be >= 0");
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's product-of-uniforms method.
    const double threshold = std::exp(-mean);
    int k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > threshold);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // background-count regime where mean is large and per-count detail washes out.
  const double s = std::sqrt(mean);
  const int k = static_cast<int>(std::floor(mean + s * normal() + 0.5));
  return k < 0 ? 0 : k;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::categorical: all-zero weights");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace is2::util
