// ASCII table / CSV emission used by every bench binary to print the rows
// the paper's tables report.
//
// Contract: a Table is a single-threaded value type (no synchronization);
// build it on one thread, then to_string()/to_csv() are const renders.
#pragma once

#include <string>
#include <vector>

namespace is2::util {

/// Column-aligned ASCII table with an optional title, matching the visual
/// structure of the paper's Tables I–V.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience for numeric rows; formats with the given precision.
  void add_row_numeric(const std::vector<double>& row, int precision = 2);

  std::size_t rows() const { return rows_.size(); }

  std::string to_string() const;
  std::string to_csv() const;
  /// Print to stdout.
  void print() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace is2::util
