// Wall-clock timing for the staged benchmarks (LOAD / MAP / REDUCE phases,
// per-epoch training times) and the serve latency metrics, plus a per-thread
// CPU ("busy") timer for the distributed trainer's critical-path accounting.
//
// Contract: a Timer is a trivially copyable value type over
// std::chrono::steady_clock (monotonic — immune to wall-clock steps).
// Concurrent seconds()/millis() reads are safe; reset() is not synchronized
// with concurrent readers, so share a Timer read-only or not at all.
// A ThreadCpuTimer is valid only on the thread that constructed it.
#pragma once

#include <chrono>
#include <ctime>

namespace is2::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU time consumed by the calling thread since construction or reset().
///
/// Unlike Timer, this does not advance while the thread is descheduled or
/// blocked (cv/recv waits), so it measures the thread's own compute. The
/// distributed trainer reports epoch times as the max per-rank busy time —
/// the data-parallel critical path, i.e. what wall clock would show with one
/// core per rank — so scaling results stay honest and reproducible even when
/// rank threads share cores (single-core CI runners oversubscribe ranks).
/// Falls back to wall time where no per-thread CPU clock exists.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  void reset() { start_ = now(); }

  /// Seconds of CPU time this thread burned since construction/reset().
  double seconds() const { return now() - start_; }

 private:
  static double now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
      return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_;
};

}  // namespace is2::util
