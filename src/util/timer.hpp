// Wall-clock timing for the staged benchmarks (LOAD / MAP / REDUCE phases,
// per-epoch training times) and the serve latency metrics.
//
// Contract: a Timer is a trivially copyable value type over
// std::chrono::steady_clock (monotonic — immune to wall-clock steps).
// Concurrent seconds()/millis() reads are safe; reset() is not synchronized
// with concurrent readers, so share a Timer read-only or not at all.
#pragma once

#include <chrono>

namespace is2::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace is2::util
