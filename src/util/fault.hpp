// Deterministic fault injection for the chaos tests and benches.
//
// A seeded `fault::Plan` maps named sites — the IO and messaging choke
// points of the serve fleet and the dist substrate — to fault rules:
//
//   site          | injected into
//   --------------|------------------------------------------------------
//   disk.read     | DiskCache::get (the unlocked file read)
//   disk.write    | DiskCache::put (serialize + temp-file publish)
//   peer.peek     | Cluster peer RAM probe (per peer node)
//   node.submit   | Cluster -> node dispatch (per target node)
//   dist.send     | InProcessTransport::send (per source rank)
//   dist.recv     | InProcessTransport::recv (per destination rank)
//
// Each rule can fail the nth matching hit (1-based), every k-th hit, or
// each hit with a seeded probability, optionally bounded by max_failures,
// and can add latency to every matching hit. All decisions derive from the
// plan seed via per-rule splitmix64 streams, so a chaos run replays
// bit-identically from (seed, traffic order).
//
// The sites are always compiled in. `inject()` is a single relaxed atomic
// load when no plan is armed — zero cost on the production paths — and
// only takes the plan mutex once armed. Arm at most one plan per process
// at a time (tests use the `Armed` RAII guard); the armed plan must
// outlive its arming window. `Plan::visit` is thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace is2::obs {
class Registry;
class Counter;
}  // namespace is2::obs

namespace is2::util::fault {

/// The error an armed fault rule throws at its site. Call sites treat it
/// like the real failure it stands in for (an IO error, a dead peer), so
/// retries / failover / quarantine machinery is exercised for real.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

/// One fault rule. Triggers combine with OR; `max_failures` bounds the
/// total failures this rule ever injects (latency keeps applying).
struct SiteConfig {
  int instance = -1;  ///< only hits with this instance id match; -1 = any
  std::uint64_t fail_nth = 0;    ///< fail exactly the nth matching hit (1-based)
  std::uint64_t fail_every = 0;  ///< fail every k-th matching hit
  double fail_rate = 0.0;        ///< per-hit failure probability (seeded)
  std::uint64_t max_failures = ~0ull;  ///< cap on injected failures
  double latency_ms = 0.0;       ///< added to every matching hit
};

/// A seeded registry of site -> rules. Fully deterministic: the k-th
/// matching hit of a rule sees the same decision in every run with the
/// same seed. With a `registry`, injections are mirrored under
/// `is2_fault_hits_total` / `is2_fault_injected_total` `{site}` counters.
class Plan {
 public:
  explicit Plan(std::uint64_t seed, obs::Registry* registry = nullptr);

  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  /// Add a rule for `site`. Multiple rules per site are allowed; each
  /// keeps its own hit counter and random stream.
  Plan& on(const std::string& site, SiteConfig cfg);

  /// Matching hits / injected failures summed over the site's rules.
  std::uint64_t hits(const std::string& site) const;
  std::uint64_t failures(const std::string& site) const;

  /// Called by inject() when this plan is armed. Applies latency, then
  /// throws InjectedFault when a rule fires.
  void visit(const char* site, int instance);

 private:
  struct Rule {
    std::string site;
    SiteConfig cfg;
    std::uint64_t hits = 0;
    std::uint64_t failures = 0;
    std::uint64_t rng_state = 0;  ///< splitmix64 stream, seeded per rule
    obs::Counter* hits_total = nullptr;
    obs::Counter* injected_total = nullptr;
  };

  std::uint64_t seed_;
  obs::Registry* registry_;
  mutable Mutex mutex_;
  std::vector<Rule> rules_ GUARDED_BY(mutex_);
};

namespace detail {
extern std::atomic<Plan*> g_armed;
}  // namespace detail

/// Arm `plan` process-wide (nullptr disarms). The plan must outlive its
/// arming window; arming is not itself synchronized against in-flight
/// visit() calls, so disarm only after injected traffic has drained.
void arm(Plan* plan);

/// RAII arming guard for tests and benches.
class Armed {
 public:
  explicit Armed(Plan& plan) { arm(&plan); }
  ~Armed() { arm(nullptr); }
  Armed(const Armed&) = delete;
  Armed& operator=(const Armed&) = delete;
};

/// The site hook. `instance` distinguishes peers of one site class (node
/// index, rank); rules with `instance = -1` match any. Unarmed: one
/// relaxed atomic load, no branches taken.
inline void inject(const char* site, int instance = 0) {
  Plan* plan = detail::g_armed.load(std::memory_order_relaxed);
  if (plan) plan->visit(site, instance);
}

}  // namespace is2::util::fault
