// Streaming and batch statistics shared across the pipeline: per-segment
// photon statistics, sea-surface error aggregation, benchmark summaries and
// freeboard distributions.
//
// Contract: RunningStats and Histogram are plain accumulators with NO
// internal synchronization — concurrent add() is a data race. Callers that
// aggregate from several threads either hold their own lock (serve's
// metrics mutex does this) or keep one accumulator per thread and combine
// with merge(). The free functions (mean/percentile/...) are pure, copy
// their input and never mutate it.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace is2::util {

/// Welford single-pass mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch helpers (copy + nth_element based; inputs untouched).
double mean(std::span<const double> xs);
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0,100].
double percentile(std::span<const double> xs, double p);

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so freeboard tails remain visible in distribution plots. NaN
/// samples are counted separately (nan_count) and never binned.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void merge(const Histogram& other);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  /// NaN samples seen by add(); excluded from total() and every bin.
  std::size_t nan_count() const { return nan_; }
  double bin_center(std::size_t bin) const;
  double bin_width() const { return width_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  /// Center of the fullest bin (distribution peak / mode estimate).
  double mode() const;
  /// Normalized density value for a bin (integrates to ~1 over range).
  double density(std::size_t bin) const;
  /// Render a unicode sparkline-style bar chart, one row per bin.
  std::string render(std::size_t max_width = 60) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_ = 0;
};

/// Quantile estimate from binned counts, in the histogram's own x-domain
/// (linear interpolation within the covering bin; q in [0,1]). Returns lo()
/// for an empty histogram. Callers binning a transformed variable (e.g. the
/// serve latency histograms bin log10(ms)) invert the transform on the
/// result themselves.
double histogram_quantile(const Histogram& hist, double q);

/// Pearson correlation; returns 0 for degenerate inputs.
double pearson(std::span<const double> x, std::span<const double> y);

/// Root-mean-square difference of two equal-length series.
double rms_diff(std::span<const double> x, std::span<const double> y);

}  // namespace is2::util
