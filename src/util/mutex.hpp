// Annotated lock primitives: the only place in the repo allowed to name
// std::mutex / std::condition_variable (tools/lint_invariants.py rule R4).
//
// util::Mutex, util::MutexLock and util::CondVar wrap the std primitives
// 1:1 — same semantics, same cost (everything inlines to the underlying
// std calls) — but carry the Clang thread-safety capability attributes from
// util/thread_annotations.hpp, so `-Werror=thread-safety` can prove that
// every GUARDED_BY field is only touched with its mutex held and every
// REQUIRES helper is only called from under the right lock.
//
// Threading contract: Mutex and CondVar are thread-safe by construction;
// MutexLock is a single-thread RAII guard (never share one across threads).
// CondVar::wait takes the MutexLock by reference and, like
// std::condition_variable, must be called with that lock held; callers are
// expected to re-check their predicate in a `while` loop around the wait —
// the analysis cannot see through predicate lambdas, so the repo spells
// every wait as an explicit loop (docs/static-analysis.md#condvars).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace is2::util {

class CondVar;

/// A std::mutex declared as a thread-safety capability. Prefer MutexLock;
/// bare lock()/unlock() is for the rare hand-over-hand or adopt cases.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// Scoped lock over a Mutex (RAII std::unique_lock underneath). Supports
/// mid-scope unlock()/lock() — the analysis tracks both — and is what
/// CondVar waits on.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.m_) {}
  ~MutexLock() RELEASE() {}  // unique_lock unlocks iff still owned
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() RELEASE() { lock_.unlock(); }
  void lock() ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable over util::Mutex. No capability attributes of its
/// own: wait() atomically releases and reacquires the caller's MutexLock, so
/// from the analysis' point of view the lock is held across the call — which
/// is exactly the contract guarded predicates rely on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(MutexLock& lock,
                            const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lock.lock_, tp);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace is2::util
