// Freeboard computation (paper §III.D): h_f = h_s - h_ref per 2m segment,
// against the interpolated local sea surface profile, plus the product
// statistics the paper's Figs 10-11 compare (distributions, point density
// vs the ATL07/ATL10 baselines).
#pragma once

#include <vector>

#include "atl03/types.hpp"
#include "resample/segmenter.hpp"
#include "seasurface/detector.hpp"
#include "util/stats.hpp"

namespace is2::freeboard {

struct FreeboardPoint {
  double s = 0.0;
  double x = 0.0, y = 0.0;
  double freeboard = 0.0;
  atl03::SurfaceClass cls = atl03::SurfaceClass::Unknown;
  atl03::SurfaceClass truth = atl03::SurfaceClass::Unknown;
};

struct FreeboardConfig {
  double max_freeboard_m = 10.0;   ///< sanity cap (matches ATL10 emulator)
  double min_freeboard_m = -1.0;
  bool include_open_water = true;  ///< water points carry ~0 freeboard
};

struct FreeboardProduct {
  std::vector<FreeboardPoint> points;

  /// Track length covered [m] (for point-density comparisons).
  double track_length() const;
  /// Points per kilometer of track (Fig 10d/11d density comparison).
  double points_per_km() const;
  /// Histogram of freeboard values over [lo, hi).
  util::Histogram distribution(double lo = -0.2, double hi = 1.2, std::size_t bins = 56) const;
  util::RunningStats stats() const;
};

/// Compute the 2m freeboard product from classified segments and a sea
/// surface profile.
FreeboardProduct compute_freeboard(const std::vector<resample::Segment>& segments,
                                   const std::vector<atl03::SurfaceClass>& labels,
                                   const seasurface::SeaSurfaceProfile& sea_surface,
                                   const FreeboardConfig& config = {});

/// RMS error of computed freeboard against simulator ground truth
/// (true surface height minus true local sea surface), evaluated on ice
/// segments whose labels were correct.
double freeboard_rms_vs_truth(const FreeboardProduct& product,
                              const std::vector<double>& true_freeboard);

}  // namespace is2::freeboard
