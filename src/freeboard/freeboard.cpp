#include "freeboard/freeboard.hpp"

#include <cmath>
#include <stdexcept>

namespace is2::freeboard {

using atl03::SurfaceClass;

double FreeboardProduct::track_length() const {
  if (points.size() < 2) return 0.0;
  return points.back().s - points.front().s;
}

double FreeboardProduct::points_per_km() const {
  const double len = track_length();
  return len > 0.0 ? static_cast<double>(points.size()) / (len / 1000.0) : 0.0;
}

util::Histogram FreeboardProduct::distribution(double lo, double hi, std::size_t bins) const {
  util::Histogram h(lo, hi, bins);
  for (const auto& p : points) h.add(p.freeboard);
  return h;
}

util::RunningStats FreeboardProduct::stats() const {
  util::RunningStats s;
  for (const auto& p : points) s.add(p.freeboard);
  return s;
}

FreeboardProduct compute_freeboard(const std::vector<resample::Segment>& segments,
                                   const std::vector<atl03::SurfaceClass>& labels,
                                   const seasurface::SeaSurfaceProfile& sea_surface,
                                   const FreeboardConfig& cfg) {
  if (labels.size() != segments.size())
    throw std::invalid_argument("compute_freeboard: label count mismatch");
  FreeboardProduct out;
  if (sea_surface.empty()) return out;
  out.points.reserve(segments.size());
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const SurfaceClass cls = labels[i];
    if (cls == SurfaceClass::Unknown) continue;
    if (!cfg.include_open_water && cls == SurfaceClass::OpenWater) continue;
    const double fb = segments[i].h_mean - sea_surface.at(segments[i].s);
    if (fb < cfg.min_freeboard_m || fb > cfg.max_freeboard_m) continue;
    out.points.push_back(
        {segments[i].s, segments[i].x, segments[i].y, fb, cls, segments[i].truth});
  }
  return out;
}

double freeboard_rms_vs_truth(const FreeboardProduct& product,
                              const std::vector<double>& true_freeboard) {
  if (true_freeboard.size() != product.points.size())
    throw std::invalid_argument("freeboard_rms_vs_truth: size mismatch");
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < product.points.size(); ++i) {
    const auto& p = product.points[i];
    if (p.cls != p.truth) continue;  // evaluate height error, not label error
    const double d = p.freeboard - true_freeboard[i];
    s += d * d;
    ++n;
  }
  return n ? std::sqrt(s / static_cast<double>(n)) : 0.0;
}

}  // namespace is2::freeboard
