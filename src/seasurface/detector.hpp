// Local sea surface detection from classified 2m segments (paper §III.D.1).
//
// Sliding windows of 10 km with 5 km overlap collect the open-water
// segments; four methods estimate the window's sea surface height:
//   (i)   MinElevation       — minimum open-water elevation,
//   (ii)  AverageElevation   — mean open-water elevation,
//   (iii) NearestMinElevation— minimum of the lead group nearest the window
//                              center,
//   (iv)  NasaEquation       — the ATL10 ATBD estimator: per-lead weighted
//         heights (eq. 2: w_i = exp(-((h_i - h_min)/sigma_i)^2)) combined
//         across leads by inverse variance (eq. 3).
// Windows without open water are linearly interpolated from the nearest
// resolved windows. The per-window points interpolate into a continuous
// profile h_ref(s) used by the freeboard stage.
#pragma once

#include <cstdint>
#include <vector>

#include "atl03/types.hpp"
#include "resample/segmenter.hpp"

namespace is2::seasurface {

enum class Method : std::uint8_t {
  MinElevation = 0,
  AverageElevation = 1,
  NearestMinElevation = 2,
  NasaEquation = 3,
};

const char* method_name(Method m);

struct SeaSurfaceConfig {
  double window_m = 10'000.0;   ///< full window length (5 km radius)
  double stride_m = 5'000.0;    ///< window overlap = window - stride
  double lead_gap_m = 20.0;     ///< water segments closer than this join a lead
  double sigma_floor = 0.005;   ///< minimum per-segment height sigma [m]
  std::size_t min_lead_segments = 2;  ///< smaller water runs are noise
  /// Candidate screening (ATBD-style): water segments whose height sits more
  /// than `outlier_mad_k` robust sigmas from the window's water median are
  /// excluded — they are subsurface-scattering artifacts or mislabels, and
  /// the min-anchored estimators would otherwise latch onto them.
  double outlier_mad_k = 3.0;
};

struct SeaSurfacePoint {
  double s = 0.0;        ///< window center
  double h_ref = 0.0;    ///< estimated local sea surface height
  double sigma = 0.0;    ///< estimator uncertainty (method iv), else 0
  std::uint32_t n_leads = 0;
  std::uint32_t n_water_segments = 0;
  bool interpolated = false;  ///< no open water in window
};

/// Piecewise-linear sea surface profile h_ref(s).
class SeaSurfaceProfile {
 public:
  SeaSurfaceProfile() = default;
  explicit SeaSurfaceProfile(std::vector<SeaSurfacePoint> points);

  double at(double s) const;
  const std::vector<SeaSurfacePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  /// Fraction of windows that had to be interpolated.
  double interpolated_fraction() const;

 private:
  std::vector<SeaSurfacePoint> points_;
};

/// Detect the local sea surface over segments with per-segment class labels
/// (same length as segments; only OpenWater entries are used).
SeaSurfaceProfile detect_sea_surface(const std::vector<resample::Segment>& segments,
                                     const std::vector<atl03::SurfaceClass>& labels,
                                     Method method, const SeaSurfaceConfig& config = {});

}  // namespace is2::seasurface
