#include "seasurface/detector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/stats.hpp"

namespace is2::seasurface {

using atl03::SurfaceClass;

const char* method_name(Method m) {
  switch (m) {
    case Method::MinElevation: return "min_elevation";
    case Method::AverageElevation: return "average_elevation";
    case Method::NearestMinElevation: return "nearest_min_elevation";
    case Method::NasaEquation: return "nasa_equation";
  }
  return "?";
}

SeaSurfaceProfile::SeaSurfaceProfile(std::vector<SeaSurfacePoint> points)
    : points_(std::move(points)) {}

double SeaSurfaceProfile::at(double s) const {
  if (points_.empty()) throw std::logic_error("SeaSurfaceProfile::at: empty profile");
  if (s <= points_.front().s) return points_.front().h_ref;
  if (s >= points_.back().s) return points_.back().h_ref;
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), s,
      [](const SeaSurfacePoint& p, double v) { return p.s < v; });
  const auto hi = static_cast<std::size_t>(it - points_.begin());
  const auto lo = hi - 1;
  const double w = (s - points_[lo].s) / (points_[hi].s - points_[lo].s);
  return points_[lo].h_ref * (1.0 - w) + points_[hi].h_ref * w;
}

double SeaSurfaceProfile::interpolated_fraction() const {
  if (points_.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& p : points_)
    if (p.interpolated) ++n;
  return static_cast<double>(n) / static_cast<double>(points_.size());
}

namespace {

/// A lead: a contiguous run of open-water segment indices.
struct Lead {
  std::size_t begin = 0;  ///< index into the window's water list
  std::size_t end = 0;
  double s_center = 0.0;
};

/// ATBD eq. 2: single-lead height from its segments.
void lead_estimate(const std::vector<resample::Segment>& segments,
                   const std::vector<std::size_t>& water, const Lead& lead, double sigma_floor,
                   double& h_lead, double& var_lead) {
  double h_min = std::numeric_limits<double>::infinity();
  for (std::size_t k = lead.begin; k < lead.end; ++k)
    h_min = std::min(h_min, segments[water[k]].h_mean);

  double wsum = 0.0;
  for (std::size_t k = lead.begin; k < lead.end; ++k) {
    const auto& seg = segments[water[k]];
    const double sigma =
        std::max(seg.h_std / std::sqrt(static_cast<double>(std::max<std::uint32_t>(seg.n_photons, 1))),
                 sigma_floor);
    const double z = (seg.h_mean - h_min) / sigma;
    wsum += std::exp(-z * z);
  }
  h_lead = 0.0;
  var_lead = 0.0;
  for (std::size_t k = lead.begin; k < lead.end; ++k) {
    const auto& seg = segments[water[k]];
    const double sigma =
        std::max(seg.h_std / std::sqrt(static_cast<double>(std::max<std::uint32_t>(seg.n_photons, 1))),
                 sigma_floor);
    const double z = (seg.h_mean - h_min) / sigma;
    const double a = std::exp(-z * z) / wsum;
    h_lead += a * seg.h_mean;
    var_lead += a * a * sigma * sigma;
  }
}

}  // namespace

SeaSurfaceProfile detect_sea_surface(const std::vector<resample::Segment>& segments,
                                     const std::vector<atl03::SurfaceClass>& labels,
                                     Method method, const SeaSurfaceConfig& cfg) {
  if (labels.size() != segments.size())
    throw std::invalid_argument("detect_sea_surface: label count mismatch");
  std::vector<SeaSurfacePoint> points;
  if (segments.empty()) return SeaSurfaceProfile{};

  const double s_begin = segments.front().s;
  const double s_end = segments.back().s;
  const double half = cfg.window_m / 2.0;

  for (double c = s_begin; c <= s_end + cfg.stride_m * 0.5; c += cfg.stride_m) {
    SeaSurfacePoint pt;
    pt.s = c;

    // Window's open-water segment indices (segments are s-sorted).
    const auto lo_it = std::lower_bound(
        segments.begin(), segments.end(), c - half,
        [](const resample::Segment& seg, double v) { return seg.s < v; });
    std::vector<std::size_t> water;
    for (auto it = lo_it; it != segments.end() && it->s <= c + half; ++it) {
      const auto idx = static_cast<std::size_t>(it - segments.begin());
      if (labels[idx] == SurfaceClass::OpenWater) water.push_back(idx);
    }

    // Candidate screening: drop water segments far from the window's water
    // median (robust MAD scale). Subsurface-scattering tails otherwise feed
    // meter-deep artifacts straight into the min-anchored estimators.
    if (water.size() >= 4 && cfg.outlier_mad_k > 0.0) {
      std::vector<double> hs;
      hs.reserve(water.size());
      for (std::size_t idx : water) hs.push_back(segments[idx].h_mean);
      const double med = util::median(hs);
      std::vector<double> dev;
      dev.reserve(hs.size());
      for (double h : hs) dev.push_back(std::abs(h - med));
      const double mad = util::median(dev);
      const double scale = std::max(1.4826 * mad, 0.01);
      std::vector<std::size_t> kept;
      kept.reserve(water.size());
      for (std::size_t idx : water)
        if (std::abs(segments[idx].h_mean - med) <= cfg.outlier_mad_k * scale)
          kept.push_back(idx);
      water = std::move(kept);
    }
    pt.n_water_segments = static_cast<std::uint32_t>(water.size());

    // Group into leads.
    std::vector<Lead> leads;
    for (std::size_t k = 0; k < water.size();) {
      Lead lead;
      lead.begin = k;
      std::size_t j = k + 1;
      while (j < water.size() &&
             segments[water[j]].s - segments[water[j - 1]].s <= cfg.lead_gap_m)
        ++j;
      lead.end = j;
      if (j - k >= cfg.min_lead_segments) {
        lead.s_center = 0.5 * (segments[water[k]].s + segments[water[j - 1]].s);
        leads.push_back(lead);
      }
      k = j;
    }
    pt.n_leads = static_cast<std::uint32_t>(leads.size());

    if (leads.empty()) {
      pt.interpolated = true;  // filled in the interpolation pass below
      points.push_back(pt);
      continue;
    }

    switch (method) {
      case Method::MinElevation: {
        double h = std::numeric_limits<double>::infinity();
        for (const auto& lead : leads)
          for (std::size_t k = lead.begin; k < lead.end; ++k)
            h = std::min(h, segments[water[k]].h_mean);
        pt.h_ref = h;
        break;
      }
      case Method::AverageElevation: {
        double sum = 0.0;
        std::size_t n = 0;
        for (const auto& lead : leads)
          for (std::size_t k = lead.begin; k < lead.end; ++k) {
            sum += segments[water[k]].h_mean;
            ++n;
          }
        pt.h_ref = sum / static_cast<double>(n);
        break;
      }
      case Method::NearestMinElevation: {
        const Lead* nearest = &leads.front();
        for (const auto& lead : leads)
          if (std::abs(lead.s_center - c) < std::abs(nearest->s_center - c)) nearest = &lead;
        double h = std::numeric_limits<double>::infinity();
        for (std::size_t k = nearest->begin; k < nearest->end; ++k)
          h = std::min(h, segments[water[k]].h_mean);
        pt.h_ref = h;
        break;
      }
      case Method::NasaEquation: {
        // eq. 2 per lead, eq. 3 across leads (inverse-variance weights).
        double num = 0.0, den = 0.0, var_num = 0.0;
        for (const auto& lead : leads) {
          double h_lead = 0.0, var_lead = 0.0;
          lead_estimate(segments, water, lead, cfg.sigma_floor, h_lead, var_lead);
          var_lead = std::max(var_lead, cfg.sigma_floor * cfg.sigma_floor);
          const double w = 1.0 / var_lead;
          num += w * h_lead;
          den += w;
        }
        pt.h_ref = num / den;
        for (const auto& lead : leads) {
          double h_lead = 0.0, var_lead = 0.0;
          lead_estimate(segments, water, lead, cfg.sigma_floor, h_lead, var_lead);
          var_lead = std::max(var_lead, cfg.sigma_floor * cfg.sigma_floor);
          const double a = (1.0 / var_lead) / den;
          var_num += a * a * var_lead;
        }
        pt.sigma = std::sqrt(var_num);
        break;
      }
    }
    points.push_back(pt);
  }

  // Linear interpolation for windows without leads.
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].interpolated) continue;
    std::size_t l = i, r = i;
    while (l-- > 0 && points[l].interpolated) {
    }
    while (++r < points.size() && points[r].interpolated) {
    }
    const bool has_l = l < points.size();  // l wrapped if none found
    const bool has_r = r < points.size();
    if (has_l && has_r) {
      const double w = (points[i].s - points[l].s) / (points[r].s - points[l].s);
      points[i].h_ref = points[l].h_ref * (1.0 - w) + points[r].h_ref * w;
    } else if (has_l) {
      points[i].h_ref = points[l].h_ref;
    } else if (has_r) {
      points[i].h_ref = points[r].h_ref;
    }  // else: no leads on the whole track; h_ref stays 0
  }
  return SeaSurfaceProfile(std::move(points));
}

}  // namespace is2::seasurface
