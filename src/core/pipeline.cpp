#include "core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "h5lite/granule_io.hpp"
#include "label/drift.hpp"
#include "pipeline/product_builder.hpp"
#include "util/rng.hpp"

namespace is2::core {

using atl03::SurfaceClass;

LabeledPair label_pair(const PairDataset& pair, const geo::GeoCorrections& corrections,
                       const PipelineConfig& config, bool estimate_drift_instead) {
  LabeledPair out;
  const pipeline::ProductBuilder builder(config, corrections);  // validates config
  out.beams = atl03::preprocess_strong_beams(pair.granule, corrections, config.preprocess);

  for (auto& beam : out.beams) {
    // Resample + FPB through the shared stage graph (preprocess is seeded).
    pipeline::Artifacts art = pipeline::Artifacts::from_preprocessed(beam);
    builder.run_until(art, pipeline::StageId::fpb);
    auto segments = art.take_segments();

    label::AutoLabelConfig al = config.autolabel;
    if (al.feature_gap_m < 0.0) al.feature_gap_m = config.segmenter.window_m * 1.5;
    al.seed = config.seed ^ util::hash64(static_cast<std::uint64_t>(beam.beam) + 11);
    if (estimate_drift_instead) {
      const auto baseline = resample::rolling_baseline(segments);
      const auto est = label::estimate_drift(pair.s2_labels, segments, baseline);
      al.overlay.shift = est.shift;
    } else {
      al.overlay.shift = pair.pair.true_drift();
    }
    out.labeled.push_back(label::auto_label(pair.s2_labels, std::move(segments), al));
  }
  return out;
}

TrainingData assemble_training_data(const std::vector<LabeledPair>& pairs,
                                    const PipelineConfig& config, double train_fraction,
                                    std::uint64_t seed) {
  // Flatten per-beam features/labels (windows never straddle beams).
  std::vector<std::vector<float>> feat;
  std::vector<std::vector<std::uint8_t>> labels;
  std::vector<resample::FeatureRow> all_rows;
  for (const auto& p : pairs) {
    for (const auto& lb : p.labeled) {
      std::vector<float> f;
      f.reserve(lb.features.size() * resample::FeatureRow::kDim);
      std::vector<std::uint8_t> y;
      y.reserve(lb.labels.size());
      for (std::size_t i = 0; i < lb.features.size(); ++i) {
        for (int d = 0; d < resample::FeatureRow::kDim; ++d) f.push_back(lb.features[i].v[d]);
        y.push_back(static_cast<std::uint8_t>(lb.labels[i]));
        all_rows.push_back(lb.features[i]);
      }
      feat.push_back(std::move(f));
      labels.push_back(std::move(y));
    }
  }

  TrainingData out;
  out.scaler = resample::FeatureScaler::fit(all_rows);
  for (auto& f : feat) {
    for (std::size_t i = 0; i < f.size(); i += resample::FeatureRow::kDim)
      for (int d = 0; d < resample::FeatureRow::kDim; ++d)
        f[i + d] = (f[i + d] - out.scaler.mean[d]) / out.scaler.std[d];
  }

  nn::WindowedData windows = nn::make_windows(feat, labels, resample::FeatureRow::kDim,
                                              config.sequence_window, /*keep_unknown=*/false);

  // Shuffle then split 80/20 (the paper's protocol).
  std::vector<std::size_t> order(windows.data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  util::Rng rng(seed);
  rng.shuffle(order);
  nn::Dataset shuffled = windows.data.subset(order);
  auto [train, test] = shuffled.split(train_fraction);
  out.train = std::move(train);
  out.test = std::move(test);
  for (auto y : out.train.y) ++out.class_counts[y];
  return out;
}

std::vector<SurfaceClass> classify_segments(nn::Sequential& model,
                                            const resample::FeatureScaler& scaler,
                                            const std::vector<resample::FeatureRow>& features,
                                            std::size_t window) {
  // Deprecated wrapper: the algorithm moved to pipeline::classify_windows.
  return pipeline::classify_windows(model, scaler, features, window);
}

namespace {

/// Shared per-partition heavy path through the stage graph:
/// preprocess -> 2m resample -> FPB on a single-beam shard.
std::vector<resample::Segment> partition_segments(const atl03::Granule& shard,
                                                  const pipeline::ProductBuilder& builder) {
  if (shard.beams.size() != 1)
    throw std::invalid_argument("partition_segments: shard must hold exactly one beam");
  pipeline::Artifacts art = pipeline::Artifacts::from_beam(shard, shard.beams[0]);
  builder.run_until(art, pipeline::StageId::fpb);
  return art.take_segments();
}

}  // namespace

AutoLabelJobStats run_autolabel_job(mapred::Engine& engine, const ShardSet& shards,
                                    const std::vector<s2::ClassRaster>& rasters,
                                    const std::vector<geo::Xy>& drifts,
                                    const geo::GeoCorrections& corrections,
                                    const PipelineConfig& config) {
  if (shards.files.size() != shards.pair_of_file.size())
    throw std::invalid_argument("run_autolabel_job: malformed shard set");
  const pipeline::ProductBuilder builder(config, corrections);  // validates config

  struct PartitionOut {
    std::size_t segments = 0;
    std::size_t labeled = 0;
    std::size_t correct = 0;
    std::size_t truth_known = 0;
  };

  auto result = mapred::run_map_reduce<atl03::Granule, PartitionOut>(
      engine, shards.files.size(),
      /*load=*/[&](std::size_t i) { return h5::load_granule(shards.files[i]); },
      /*map=*/
      [&](std::vector<atl03::Granule>& parts) {
        // Key assignment: stable ordering by (pair, id) — Spark's cheap
        // narrow transformation before the shuffle.
        std::vector<std::size_t> keys(parts.size());
        for (std::size_t i = 0; i < parts.size(); ++i)
          keys[i] = shards.pair_of_file[i] * 131 + i;
        (void)keys;
      },
      /*reduce=*/
      [&](atl03::Granule& shard, std::size_t i) {
        const std::size_t pair = shards.pair_of_file[i];
        auto segments = partition_segments(shard, builder);

        label::AutoLabelConfig al = config.autolabel;
        if (al.feature_gap_m < 0.0) al.feature_gap_m = config.segmenter.window_m * 1.5;
        al.seed = config.seed ^ util::hash64(i * 31 + 5);
        al.overlay.shift = drifts[pair];
        const label::LabeledBeam lb =
            label::auto_label(rasters[pair], std::move(segments), al);

        PartitionOut out;
        out.segments = lb.segments.size();
        for (std::size_t k = 0; k < lb.labels.size(); ++k) {
          if (lb.labels[k] == SurfaceClass::Unknown) continue;
          ++out.labeled;
          if (lb.segments[k].truth == SurfaceClass::Unknown) continue;
          ++out.truth_known;
          if (lb.labels[k] == lb.segments[k].truth) ++out.correct;
        }
        return out;
      });

  AutoLabelJobStats stats;
  stats.timing = result.timing;
  std::size_t correct = 0, known = 0;
  for (const auto& p : result.results) {
    stats.segments += p.segments;
    stats.labeled += p.labeled;
    correct += p.correct;
    known += p.truth_known;
  }
  stats.label_accuracy = known ? static_cast<double>(correct) / static_cast<double>(known) : 0.0;
  return stats;
}

FreeboardJobStats run_freeboard_job(mapred::Engine& engine, const ShardSet& shards,
                                    const std::vector<s2::ClassRaster>& rasters,
                                    const std::vector<geo::Xy>& drifts,
                                    const geo::GeoCorrections& corrections,
                                    const PipelineConfig& config) {
  if (shards.files.size() != shards.pair_of_file.size())
    throw std::invalid_argument("run_freeboard_job: malformed shard set");
  const pipeline::ProductBuilder builder(config, corrections);  // validates config

  struct PartitionOut {
    std::size_t points = 0;
    double fb_sum = 0.0;
    util::Histogram dist{-0.2, 1.2, 56};
  };

  auto result = mapred::run_map_reduce<atl03::Granule, PartitionOut>(
      engine, shards.files.size(),
      /*load=*/[&](std::size_t i) { return h5::load_granule(shards.files[i]); },
      /*map=*/
      [&](std::vector<atl03::Granule>& parts) {
        std::vector<std::size_t> keys(parts.size());
        for (std::size_t i = 0; i < parts.size(); ++i)
          keys[i] = shards.pair_of_file[i] * 131 + i;
        (void)keys;
      },
      /*reduce=*/
      [&](atl03::Granule& shard, std::size_t i) {
        const std::size_t pair = shards.pair_of_file[i];
        auto segments = partition_segments(shard, builder);

        // Classification stage output: the labeled classes along the chunk
        // (the scaling experiment measures the freeboard computation, so the
        // classifier here is the fast overlay+rules path).
        label::AutoLabelConfig al = config.autolabel;
        if (al.feature_gap_m < 0.0) al.feature_gap_m = config.segmenter.window_m * 1.5;
        al.seed = config.seed ^ util::hash64(i * 67 + 9);
        al.overlay.shift = drifts[pair];
        label::LabeledBeam lb = label::auto_label(rasters[pair], std::move(segments), al);

        // Sea surface + freeboard through the stage graph, resuming from the
        // auto-label classes (no ClassifierBackend needed).
        pipeline::Artifacts tail =
            pipeline::Artifacts::resume(std::move(lb.segments), std::move(lb.labels));
        builder.build(tail, pipeline::ProductKind::freeboard, /*backend=*/nullptr,
                      seasurface::Method::NasaEquation);
        const freeboard::FreeboardProduct& product = tail.freeboard_out();

        PartitionOut out;
        out.points = product.points.size();
        for (const auto& p : product.points) {
          out.fb_sum += p.freeboard;
          out.dist.add(p.freeboard);
        }
        return out;
      });

  FreeboardJobStats stats;
  stats.timing = result.timing;
  double fb_sum = 0.0;
  for (const auto& p : result.results) {
    stats.points += p.points;
    fb_sum += p.fb_sum;
    stats.distribution.merge(p.dist);
  }
  stats.mean_freeboard = stats.points ? fb_sum / static_cast<double>(stats.points) : 0.0;
  return stats;
}

}  // namespace is2::core
