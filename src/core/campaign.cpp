#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "geo/polar_stereo.hpp"
#include "geo/wgs84.hpp"
#include "h5lite/granule_io.hpp"
#include "util/rng.hpp"

namespace is2::core {

namespace {

/// Seconds since 2019-11-01 00:00 UTC for a November 2019 timestamp.
double epoch_s(int day, int hour, int minute, int second) {
  return ((static_cast<double>(day - 1) * 24.0 + hour) * 60.0 + minute) * 60.0 + second;
}

/// Shift vector from Table I's "distance / direction" notation; directions
/// are compass bearings mapped onto the projected grid (+x east, +y north).
geo::Xy compass_shift(double dist_m, const char* dir) {
  const std::string d(dir);
  double ux = 0.0, uy = 0.0;
  if (d == "N") { ux = 0; uy = 1; }
  else if (d == "S") { ux = 0; uy = -1; }
  else if (d == "E") { ux = 1; uy = 0; }
  else if (d == "W") { ux = -1; uy = 0; }
  else if (d == "NE") { ux = M_SQRT1_2; uy = M_SQRT1_2; }
  else if (d == "NW") { ux = -M_SQRT1_2; uy = M_SQRT1_2; }
  else if (d == "SE") { ux = M_SQRT1_2; uy = -M_SQRT1_2; }
  else if (d == "SW") { ux = -M_SQRT1_2; uy = -M_SQRT1_2; }
  return {dist_m * ux, dist_m * uy};
}

std::string make_granule_id(int day, int hour, int minute, int second, int rgt) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "ATL03_201911%02d%02d%02d%02d_%04d0510", day, hour, minute,
                second, rgt);
  return buf;
}

}  // namespace

std::vector<CoincidentPair> ross_sea_november_2019() {
  // Table I verbatim: IS2 time, S2 time, dt [min], S2 shift (distance/dir).
  struct Row {
    int day, h1, m1, s1;   // IS2
    int d2, h2, m2, s2;    // S2
    double dt_min;
    double shift_m;
    const char* shift_dir;
    int rgt;
  };
  const Row rows[] = {
      {3, 18, 44, 32, 3, 18, 34, 59, 9.55, 550.0, "NW", 580},
      {4, 19, 53, 11, 4, 19, 45, 29, 7.70, 0.0, "N", 594},
      {13, 19, 10, 53, 13, 18, 34, 59, 35.90, 200.0, "W", 731},
      {16, 19, 28, 13, 16, 18, 44, 59, 43.23, 0.0, "N", 777},
      {17, 19, 2, 34, 17, 18, 15, 9, 47.57, 530.0, "NW", 792},
      {20, 19, 19, 52, 20, 20, 5, 29, 45.62, 400.0, "NW", 838},
      {23, 18, 2, 55, 23, 18, 34, 59, 32.07, 150.0, "E", 883},
      {26, 18, 20, 14, 26, 18, 44, 59, 24.75, 350.0, "SW", 929},
  };

  std::vector<CoincidentPair> pairs;
  int idx = 1;
  for (const Row& r : rows) {
    CoincidentPair p;
    p.index = idx++;
    p.granule_id = make_granule_id(r.day, r.h1, r.m1, r.s1, r.rgt);
    char t1[40], t2[40];
    std::snprintf(t1, sizeof t1, "2019/11/%02d %02d:%02d:%02d", r.day, r.h1, r.m1, r.s1);
    std::snprintf(t2, sizeof t2, "2019/11/%02d %02d:%02d:%02d", r.d2, r.h2, r.m2, r.s2);
    p.is2_time_utc = t1;
    p.s2_time_utc = t2;
    p.is2_epoch_s = epoch_s(r.day, r.h1, r.m1, r.s1);
    p.s2_epoch_s = epoch_s(r.d2, r.h2, r.m2, r.s2);
    p.dt_minutes = r.dt_min;
    p.s2_shift_applied = compass_shift(r.shift_m, r.shift_dir);
    pairs.push_back(p);
  }
  return pairs;
}

Campaign::Campaign(const PipelineConfig& config)
    : config_(config), corrections_(config.seed ^ 0xC044ull), pairs_(ross_sea_november_2019()) {}

geo::GroundTrack Campaign::track(std::size_t k) const {
  // Spread the eight tracks across the Ross Sea box; near-meridional
  // headings with per-pair variation, as polar-orbiting passes have.
  const geo::PolarStereo proj = geo::PolarStereo::epsg3976();
  util::Rng rng = util::Rng(config_.seed).fork(0x72ACull + k);
  const double lon = rng.uniform(-178.0, -150.0);
  const double lat = rng.uniform(-77.0, -73.5);
  const geo::Xy origin = proj.forward({lon, lat});
  const double heading = rng.uniform(0.0, 2.0 * geo::pi);
  return geo::GroundTrack(origin, heading);
}

atl03::SurfaceModel Campaign::surface(std::size_t k) const {
  atl03::SurfaceConfig sc = config_.surface;
  sc.length_m = config_.track_length_m;
  return atl03::SurfaceModel(sc, track(k), corrections_,
                             util::hash64(config_.seed * 131 + k + 7));
}

PairDataset Campaign::generate(std::size_t k) const {
  const CoincidentPair& pair = pairs_.at(k);
  const atl03::SurfaceModel surf = surface(k);

  atl03::PhotonSimulator sim(config_.instrument, util::hash64(config_.seed * 977 + k));
  atl03::Granule granule = sim.simulate_granule(surf, pair.granule_id, pair.is2_epoch_s);

  s2::SceneSimulator scene_sim(config_.scene, util::hash64(config_.seed * 499 + k + 3));
  s2::Scene scene = scene_sim.render(surf, pair.true_drift(), pair.s2_epoch_s);

  s2::SegmentationConfig seg_cfg = config_.segmentation;
  seg_cfg.seed = util::hash64(config_.seed * 263 + k);
  s2::SegmentationResult seg = s2::segment(scene.image, seg_cfg);
  const s2::SegmentationScore score = s2::score_segmentation(seg.labels, scene.truth_class);

  return PairDataset{pair,
                     std::move(granule),
                     std::move(seg.labels),
                     std::move(scene.truth_class),
                     score.accuracy,
                     seg.thick_cloud_pixels};
}

std::vector<PairDataset> Campaign::generate_all() const {
  std::vector<PairDataset> out;
  out.reserve(pairs_.size());
  for (std::size_t k = 0; k < pairs_.size(); ++k) out.push_back(generate(k));
  return out;
}

void write_shards(const atl03::Granule& granule, std::size_t pair_index,
                  std::size_t chunks_per_beam, const std::string& dir, ShardSet& shards) {
  const double chunk_len = granule.track_length / static_cast<double>(chunks_per_beam);
  for (const auto& beam : granule.beams) {
    for (std::size_t c = 0; c < chunks_per_beam; ++c) {
      // First/last chunks are open-ended: footprint jitter can push photons
      // slightly outside [0, track_length) and every photon must land in
      // exactly one shard.
      const double lo = c == 0 ? -std::numeric_limits<double>::infinity()
                               : static_cast<double>(c) * chunk_len;
      const double hi = (c + 1 == chunks_per_beam) ? std::numeric_limits<double>::infinity()
                                                   : static_cast<double>(c + 1) * chunk_len;
      atl03::Granule shard;
      shard.id = granule.id + "#" + atl03::beam_name(beam.beam) + "c" + std::to_string(c);
      shard.epoch_time = granule.epoch_time;
      shard.track_origin = granule.track_origin;
      shard.track_heading = granule.track_heading;
      shard.track_length = granule.track_length;
      shard.seed = granule.seed;

      atl03::BeamData bd;
      bd.beam = beam.beam;
      double t_lo = 1e30, t_hi = -1e30;
      for (std::size_t i = 0; i < beam.size(); ++i) {
        if (beam.along_track[i] < lo || beam.along_track[i] >= hi) continue;
        bd.delta_time.push_back(beam.delta_time[i]);
        bd.lat.push_back(beam.lat[i]);
        bd.lon.push_back(beam.lon[i]);
        bd.h.push_back(beam.h[i]);
        bd.along_track.push_back(beam.along_track[i]);
        bd.signal_conf.push_back(beam.signal_conf[i]);
        if (!beam.truth_class.empty()) bd.truth_class.push_back(beam.truth_class[i]);
        t_lo = std::min(t_lo, beam.delta_time[i]);
        t_hi = std::max(t_hi, beam.delta_time[i]);
      }
      // Background bins overlapping the chunk's time range (1-bin margin).
      for (std::size_t b = 0; b < beam.bckgrd_delta_time.size(); ++b) {
        const double t = beam.bckgrd_delta_time[b];
        if (t < t_lo - 1.0 || t > t_hi + 1.0) continue;
        bd.bckgrd_delta_time.push_back(t);
        bd.bckgrd_rate.push_back(beam.bckgrd_rate[b]);
      }
      if (bd.h.empty()) continue;
      shard.beams.push_back(std::move(bd));

      char fname[512];
      std::snprintf(fname, sizeof fname, "%s/pair%zu_%s_c%zu.h5l", dir.c_str(), pair_index,
                    atl03::beam_name(beam.beam), c);
      h5::save_granule(shard, fname);
      shards.files.emplace_back(fname);
      shards.pair_of_file.push_back(pair_index);
    }
  }
}

}  // namespace is2::core
