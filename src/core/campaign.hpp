// The Ross Sea November 2019 campaign: the paper's Table I — eight IS2/S2
// coincident pairs (< 2 h apart) with the S2 alignment shifts the authors
// applied. Each pair becomes a simulated scene: a surface model seeded per
// pair, an ATL03 granule at the IS2 time, and a Sentinel-2 scene rendered at
// the S2 time with the ice drifted by the pair's true drift (the negative of
// Table I's S2 shift). Shard writing splits granules into per-beam chunk
// files, the partition unit of the map-reduce scaling experiments.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "atl03/granule.hpp"
#include "atl03/photon_sim.hpp"
#include "atl03/surface_model.hpp"
#include "core/config.hpp"
#include "geo/corrections.hpp"
#include "sentinel2/scene_sim.hpp"
#include "sentinel2/segmentation.hpp"

namespace is2::core {

/// One Table I row.
struct CoincidentPair {
  int index = 0;                  ///< 1-based row number
  std::string granule_id;         ///< ATL03-style id
  std::string is2_time_utc;       ///< human-readable acquisition times
  std::string s2_time_utc;
  double is2_epoch_s = 0.0;       ///< seconds since 2019-11-01 00:00 UTC
  double s2_epoch_s = 0.0;
  double dt_minutes = 0.0;        ///< Table I time difference
  geo::Xy s2_shift_applied;       ///< Table I "shift of S2 images" (to align)

  /// True feature displacement IS2 -> S2 (what the renderer applies and the
  /// drift estimator must recover): the opposite of the alignment shift.
  geo::Xy true_drift() const { return {-s2_shift_applied.x, -s2_shift_applied.y}; }
};

/// The eight Table I pairs.
std::vector<CoincidentPair> ross_sea_november_2019();

/// Fully generated data for one pair.
struct PairDataset {
  CoincidentPair pair;
  atl03::Granule granule;
  s2::ClassRaster s2_labels;  ///< color-based segmentation output
  s2::ClassRaster s2_truth;   ///< scene truth at S2 time (evaluation only)
  double segmentation_accuracy = 0.0;
  std::size_t cloud_pixels = 0;
};

class Campaign {
 public:
  explicit Campaign(const PipelineConfig& config);

  const PipelineConfig& config() const { return config_; }
  const geo::GeoCorrections& corrections() const { return corrections_; }
  const std::vector<CoincidentPair>& pairs() const { return pairs_; }

  /// Reference ground track of pair k (tracks are spread across the region).
  geo::GroundTrack track(std::size_t k) const;
  /// The pair's surface model (deterministic per campaign seed and k).
  atl03::SurfaceModel surface(std::size_t k) const;

  /// Generate granule + rendered/segmented S2 scene for pair k. Heavy; the
  /// multispectral image is dropped after segmentation to bound memory.
  PairDataset generate(std::size_t k) const;

  /// Generate all pairs (sequentially).
  std::vector<PairDataset> generate_all() const;

 private:
  PipelineConfig config_;
  geo::GeoCorrections corrections_;
  std::vector<CoincidentPair> pairs_;
};

/// Shard files for the map-reduce jobs: one file per (pair, beam, chunk).
struct ShardSet {
  std::vector<std::string> files;
  std::vector<std::size_t> pair_of_file;  ///< campaign pair index per file
};

/// Split a granule into per-beam along-track chunks and write each as an
/// h5lite file under `dir`. Appends to `shards`.
void write_shards(const atl03::Granule& granule, std::size_t pair_index,
                  std::size_t chunks_per_beam, const std::string& dir, ShardSet& shards);

}  // namespace is2::core
