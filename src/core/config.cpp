#include "core/config.hpp"

#include <stdexcept>
#include <string>

namespace is2::core {

void PipelineConfig::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("PipelineConfig::validate: " + what);
  };
  // The classifier windows are centered on one segment: the window must be
  // odd so "n-2..n+2 context" has a center, and non-zero so windows exist.
  if (sequence_window == 0 || sequence_window % 2 == 0)
    fail("sequence_window must be odd and non-zero (got " + std::to_string(sequence_window) +
         ")");
  if (chunks_per_beam == 0) fail("chunks_per_beam must be >= 1");
  if (track_length_m <= 0.0) fail("track_length_m must be positive");
  // surface.length_m is overridden to track_length_m when the scene is
  // generated (Campaign); an explicit override that disagrees would silently
  // simulate a different scene than the pipeline expects.
  if (surface.length_m != atl03::SurfaceConfig{}.length_m && surface.length_m != track_length_m)
    fail("surface.length_m (" + std::to_string(surface.length_m) +
         ") disagrees with track_length_m (" + std::to_string(track_length_m) +
         "); leave it at the default to inherit track_length_m");
  if (segmenter.window_m <= 0.0) fail("segmenter.window_m must be positive");
  if (segmenter.shot_spacing_m <= 0.0) fail("segmenter.shot_spacing_m must be positive");
  if (seasurface.window_m <= 0.0) fail("seasurface.window_m must be positive");
  if (seasurface.stride_m <= 0.0) fail("seasurface.stride_m must be positive");
  if (instrument.dead_time_m < 0.0) fail("instrument.dead_time_m must be >= 0");
  if (instrument.strong_channels == 0) fail("instrument.strong_channels must be >= 1");
  if (freeboard.max_freeboard_m < freeboard.min_freeboard_m)
    fail("freeboard.max_freeboard_m below min_freeboard_m");
}

PipelineConfig PipelineConfig::tiny() {
  PipelineConfig cfg;
  cfg.track_length_m = 6'000.0;
  cfg.chunks_per_beam = 2;
  cfg.scene.cross_track_halfwidth_m = 4'200.0;
  cfg.scene.margin_m = 400.0;
  cfg.segmentation.kmeans_subsample = 40'000;
  return cfg;
}

PipelineConfig PipelineConfig::small() {
  PipelineConfig cfg;
  cfg.track_length_m = 20'000.0;
  cfg.chunks_per_beam = 3;
  return cfg;
}

PipelineConfig PipelineConfig::standard() {
  PipelineConfig cfg;
  cfg.track_length_m = 50'000.0;
  cfg.chunks_per_beam = 4;
  return cfg;
}

}  // namespace is2::core
