#include "core/config.hpp"

namespace is2::core {

PipelineConfig PipelineConfig::tiny() {
  PipelineConfig cfg;
  cfg.track_length_m = 6'000.0;
  cfg.chunks_per_beam = 2;
  cfg.scene.cross_track_halfwidth_m = 4'200.0;
  cfg.scene.margin_m = 400.0;
  cfg.segmentation.kmeans_subsample = 40'000;
  return cfg;
}

PipelineConfig PipelineConfig::small() {
  PipelineConfig cfg;
  cfg.track_length_m = 20'000.0;
  cfg.chunks_per_beam = 3;
  return cfg;
}

PipelineConfig PipelineConfig::standard() {
  PipelineConfig cfg;
  cfg.track_length_m = 50'000.0;
  cfg.chunks_per_beam = 4;
  return cfg;
}

}  // namespace is2::core
