// Pipeline-wide configuration. Defaults reproduce the paper's setup
// (Ross Sea, November 2019, 2m windows, 5-segment sequences); scale presets
// trade scene size for runtime so tests stay fast while benches run at a
// volume where the parallel stages have something to chew on.
#pragma once

#include <cstdint>

#include "atl03/photon_sim.hpp"
#include "atl03/preprocess.hpp"
#include "atl03/surface_model.hpp"
#include "freeboard/freeboard.hpp"
#include "label/autolabel.hpp"
#include "resample/segmenter.hpp"
#include "seasurface/detector.hpp"
#include "sentinel2/scene_sim.hpp"
#include "sentinel2/segmentation.hpp"

namespace is2::core {

/// Ross Sea region bounds used by the paper (lon -180..-140, lat -78..-70).
struct RossSeaRegion {
  static constexpr double lon_min = -180.0;
  static constexpr double lon_max = -140.0;
  static constexpr double lat_min = -78.0;
  static constexpr double lat_max = -70.0;
};

struct PipelineConfig {
  double track_length_m = 50'000.0;
  std::size_t chunks_per_beam = 4;   ///< shard granularity for map-reduce jobs
  std::size_t sequence_window = 5;   ///< paper: n-2..n+2 context
  std::uint64_t seed = 20191101;

  atl03::SurfaceConfig surface;      ///< length_m overridden by track_length_m
  atl03::InstrumentConfig instrument;
  atl03::PreprocessConfig preprocess;
  s2::SceneConfig scene;
  s2::SegmentationConfig segmentation;
  resample::SegmenterConfig segmenter;
  label::AutoLabelConfig autolabel;
  seasurface::SeaSurfaceConfig seasurface;
  freeboard::FreeboardConfig freeboard;

  /// ~6 km scenes for unit/integration tests.
  static PipelineConfig tiny();
  /// ~20 km scenes for quick experiments.
  static PipelineConfig small();
  /// ~50 km scenes — the bench scale.
  static PipelineConfig standard();

  /// Reject inconsistent settings with std::invalid_argument (e.g. an even
  /// or zero sequence_window, zero chunks_per_beam, a surface.length_m
  /// override that disagrees with track_length_m, non-positive resampling
  /// windows). Called at pipeline::ProductBuilder construction so a bad
  /// config fails at the API boundary instead of deep inside a stage.
  void validate() const;
};

}  // namespace is2::core
