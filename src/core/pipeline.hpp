// End-to-end pipeline orchestration (paper Fig. 1): preprocessing ->
// 2m resampling -> auto-labeling -> model training -> inference -> local sea
// surface -> freeboard, plus the two staged map-reduce jobs behind the
// scaling experiments (Tables II and V).
//
// Since the `is2::pipeline` stage-graph redesign, everything here is a thin
// composition over `pipeline::ProductBuilder` — the per-stage wiring lives
// in exactly one place. `label_pair` and the jobs remain the stable batch
// entry points; `classify_segments` is a DEPRECATED thin wrapper over
// `pipeline::classify_windows` (kept for one release).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/config.hpp"
#include "freeboard/freeboard.hpp"
#include "label/autolabel.hpp"
#include "mapred/engine.hpp"
#include "nn/model.hpp"
#include "resample/fpb.hpp"
#include "seasurface/detector.hpp"

namespace is2::core {

/// Auto-labeled products for all strong beams of one coincident pair.
struct LabeledPair {
  std::vector<atl03::PreprocessedBeam> beams;
  std::vector<label::LabeledBeam> labeled;  ///< parallel to `beams`
};

/// Preprocess, resample (2m + first-photon-bias correction) and auto-label
/// one pair. The overlay shift is the pair's true drift, i.e. the Table I
/// alignment (pass `estimate_drift_instead = true` to use the estimator, as
/// the ablation bench does).
LabeledPair label_pair(const PairDataset& pair, const geo::GeoCorrections& corrections,
                       const PipelineConfig& config, bool estimate_drift_instead = false);

/// Train/test tensors assembled from labeled pairs: windows of
/// `config.sequence_window` segments, features standardized with a scaler
/// fit on the training split.
struct TrainingData {
  nn::Dataset train;
  nn::Dataset test;
  resample::FeatureScaler scaler;
  std::array<std::size_t, atl03::kNumClasses> class_counts{};
};

TrainingData assemble_training_data(const std::vector<LabeledPair>& pairs,
                                    const PipelineConfig& config, double train_fraction = 0.8,
                                    std::uint64_t seed = 4242);

/// Classify every segment of a beam with a trained model: sliding windows
/// over standardized features; edge segments inherit the nearest interior
/// prediction. DEPRECATED thin wrapper over `pipeline::classify_windows`
/// (identical algorithm; new code should use a `pipeline::ClassifierBackend`
/// or call classify_windows directly).
std::vector<atl03::SurfaceClass> classify_segments(
    nn::Sequential& model, const resample::FeatureScaler& scaler,
    const std::vector<resample::FeatureRow>& features, std::size_t window);

// ---------------------------------------------------------------------------
// Staged map-reduce jobs (Tables II and V). Partitions are shard files; LOAD
// reads and decodes them, MAP does the per-partition key/plan assignment,
// REDUCE runs the heavy per-partition computation.
// ---------------------------------------------------------------------------

struct AutoLabelJobStats {
  mapred::StageTiming timing;
  std::size_t segments = 0;
  std::size_t labeled = 0;       ///< segments with a usable (non-Unknown) label
  double label_accuracy = 0.0;   ///< photon-truth agreement, partition-weighted
};

AutoLabelJobStats run_autolabel_job(mapred::Engine& engine, const ShardSet& shards,
                                    const std::vector<s2::ClassRaster>& rasters,
                                    const std::vector<geo::Xy>& drifts,
                                    const geo::GeoCorrections& corrections,
                                    const PipelineConfig& config);

struct FreeboardJobStats {
  mapred::StageTiming timing;
  std::size_t points = 0;
  double mean_freeboard = 0.0;
  util::Histogram distribution{-0.2, 1.2, 56};
};

FreeboardJobStats run_freeboard_job(mapred::Engine& engine, const ShardSet& shards,
                                    const std::vector<s2::ClassRaster>& rasters,
                                    const std::vector<geo::Xy>& drifts,
                                    const geo::GeoCorrections& corrections,
                                    const PipelineConfig& config);

}  // namespace is2::core
