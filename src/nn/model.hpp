// Sequential model: a sequence front end (Flatten or LSTM) followed by a
// 2-D layer stack, with Keras-like fit/evaluate/predict, plus factory
// functions for the paper's two exact architectures.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/metrics.hpp"
#include "nn/optimizer.hpp"

namespace is2::nn {

/// Training/evaluation dataset: sequence windows + center labels.
struct Dataset {
  Tensor3 x;                         ///< [n, time, features]
  std::vector<std::uint8_t> y;       ///< class per window

  std::size_t size() const { return y.size(); }
  /// Split into [0, n*frac) and [n*frac, n); caller shuffles beforehand.
  std::pair<Dataset, Dataset> split(double frac) const;
  /// Row subset by index list.
  Dataset subset(const std::vector<std::size_t>& indices) const;
};

struct EpochStats {
  double loss = 0.0;
  double wall_s = 0.0;
  std::size_t samples = 0;
};

struct FitConfig {
  std::size_t epochs = 20;
  std::size_t batch_size = 32;
  std::uint64_t shuffle_seed = 17;
  bool verbose = false;
  /// Called after each batch's backward pass, before the optimizer step —
  /// the hook the distributed trainer uses to all-reduce gradients.
  std::function<void(const std::vector<Param>&)> grad_hook;
  /// Called after each epoch.
  std::function<void(std::size_t epoch, const EpochStats&)> epoch_hook;
};

class Sequential {
 public:
  Sequential() = default;

  void set_front(std::unique_ptr<FrontEnd> front) { front_ = std::move(front); }
  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  /// Per-layer parameter group callback used by the gradient-ready hooks.
  using ParamGroupFn = std::function<void(const std::vector<Param>&)>;

  /// Forward through front end + stack; returns logits [batch, classes].
  const Mat& forward(const Tensor3& x, bool training);
  /// Backward from dL/dlogits; accumulates all parameter grads.
  void backward(const Mat& grad_logits);
  /// As backward(), additionally invoking `on_params_ready` with each
  /// parameterized layer's params the moment that layer's gradients are
  /// final (reverse layer order, front end last). The seam the distributed
  /// trainer's bucketed all-reduce overlaps on: gradients of layers near
  /// the loss start reducing while backpropagation is still descending.
  void backward(const Mat& grad_logits, const ParamGroupFn& on_params_ready);
  /// Invoke `fn` with each parameterized layer's params in exactly the
  /// order backward() reports them ready — what a rank with an empty shard
  /// tail uses to keep its collective sequence aligned with the others.
  void visit_params_backward(const ParamGroupFn& fn);

  std::vector<Param> params();
  /// Total scalar parameter count.
  std::size_t param_count();

  /// Mini-batch training loop.
  std::vector<EpochStats> fit(const Dataset& train, const Loss& loss, Optimizer& optimizer,
                              const FitConfig& config);

  /// Argmax predictions.
  std::vector<std::uint8_t> predict(const Tensor3& x, std::size_t batch_size = 256);
  /// Allocation-free variant: writes one class per window into out[0, x.n).
  /// Each window's logits depend only on its own row, so predictions are
  /// identical for any batch_size (and any contiguous partition of x).
  void predict_into(const Tensor3& x, std::uint8_t* out, std::size_t batch_size = 256);
  /// Metrics on a labeled dataset.
  Metrics evaluate(const Dataset& data, std::size_t batch_size = 256);

  FrontEnd* front() { return front_.get(); }
  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }

 private:
  std::unique_ptr<FrontEnd> front_;
  std::vector<std::unique_ptr<Layer>> layers_;
  Tensor3 predict_scratch_;  ///< batch staging buffer reused by predict_into
};

/// The paper's LSTM model: LSTM(16, ELU, dropout 0.2) followed by Dense
/// layers of 32, 96, 32, 16, 112, 48, 64 units (ELU) and a softmax(3) head
/// (softmax itself lives in the loss; the head outputs logits).
Sequential make_lstm_model(std::size_t time_steps, std::size_t features, util::Rng& rng);

/// The paper's MLP: flattened input, Dense(32, ReLU), logits(3).
Sequential make_mlp_model(std::size_t time_steps, std::size_t features, util::Rng& rng);

/// Build sequence windows of length `window` (odd) around each segment from
/// per-beam feature rows; label = center segment's label. Segments labeled
/// Unknown are skipped. `beams` is a list of (features, labels) per beam so
/// windows never straddle beam boundaries.
struct WindowedData {
  Dataset data;
  std::vector<std::size_t> source_index;  ///< center row index per window
};

WindowedData make_windows(
    const std::vector<std::vector<float>>& beam_features,  // per beam: n*kDim floats
    const std::vector<std::vector<std::uint8_t>>& beam_labels, std::size_t feature_dim,
    std::size_t window, bool keep_unknown = false);

}  // namespace is2::nn
