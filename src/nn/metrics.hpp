// Classification metrics: confusion matrix, accuracy, per-class and
// macro-averaged precision/recall/F1 (the paper's Table III and Fig. 4).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "atl03/types.hpp"

namespace is2::nn {

class ConfusionMatrix {
 public:
  void add(std::uint8_t truth, std::uint8_t predicted);
  void merge(const ConfusionMatrix& other);

  std::uint64_t count(int truth, int predicted) const { return m_[truth][predicted]; }
  std::uint64_t total() const;
  std::uint64_t row_total(int truth) const;
  std::uint64_t col_total(int predicted) const;

  double accuracy() const;
  double precision(int cls) const;  ///< TP / (TP + FP)
  double recall(int cls) const;     ///< TP / (TP + FN)
  double f1(int cls) const;
  double macro_precision() const;
  double macro_recall() const;
  double macro_f1() const;
  /// Per-class recall as percentages (Fig. 4's diagonal).
  std::array<double, atl03::kNumClasses> per_class_recall() const;

  /// Row-normalized percentage matrix rendered as ASCII (Fig. 4).
  std::string render() const;

 private:
  std::uint64_t m_[atl03::kNumClasses][atl03::kNumClasses] = {};
};

struct Metrics {
  double accuracy = 0.0;
  double precision = 0.0;  ///< macro
  double recall = 0.0;     ///< macro
  double f1 = 0.0;         ///< macro
  ConfusionMatrix confusion;
};

Metrics compute_metrics(const std::vector<std::uint8_t>& truth,
                        const std::vector<std::uint8_t>& predicted);

}  // namespace is2::nn
