// Layer abstractions for the classifier stack.
//
// A model is a front end (Flatten for the MLP, LSTM for the recurrent model)
// that maps a [batch, time, features] sequence tensor to a [batch, width]
// matrix, followed by a stack of 2-D layers (Dense / Activation / Dropout).
// Layers own their parameters and gradient buffers; optimizers consume the
// Param views. All randomness flows through an explicit Rng so replicated
// models in the distributed trainer stay bit-identical across ranks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace is2::nn {

/// View of one parameter tensor and its gradient accumulator.
struct Param {
  std::string name;
  Mat* value = nullptr;
  Mat* grad = nullptr;
};

enum class Activation { Linear, Relu, Elu, Tanh, Sigmoid };

float activate(Activation a, float x);
/// Derivative given pre-activation x and activated value y.
float activate_grad(Activation a, float x, float y);
/// Derivative recovered from the activated value alone (valid for the
/// monotone activations used here; what BPTT uses when z isn't cached).
float activate_grad_from_y(Activation a, float y);

/// 2-D layer interface: [batch, in] -> [batch, out].
class Layer {
 public:
  virtual ~Layer() = default;
  virtual const Mat& forward(const Mat& x, bool training) = 0;
  /// Returns grad wrt input; accumulates parameter grads.
  virtual const Mat& backward(const Mat& grad_out) = 0;
  virtual std::vector<Param> params() { return {}; }
  virtual std::string name() const = 0;
  virtual std::size_t output_dim(std::size_t input_dim) const = 0;
};

/// Fully connected y = x W^T + b with fused activation.
class Dense : public Layer {
 public:
  Dense(std::size_t in_dim, std::size_t out_dim, Activation act, util::Rng& rng);

  const Mat& forward(const Mat& x, bool training) override;
  const Mat& backward(const Mat& grad_out) override;
  std::vector<Param> params() override;
  std::string name() const override { return "dense"; }
  std::size_t output_dim(std::size_t) const override { return w_.rows(); }

  Mat& weights() { return w_; }
  Mat& bias() { return b_; }

 private:
  Mat w_;   // [out, in]
  Mat b_;   // [1, out]
  Mat dw_;
  Mat db_;
  Activation act_;
  // caches
  Mat x_;       // input
  Mat z_;       // pre-activation
  Mat y_;       // output
  Mat dx_;
};

/// Inverted dropout; identity at inference.
class Dropout : public Layer {
 public:
  Dropout(double rate, util::Rng rng);

  const Mat& forward(const Mat& x, bool training) override;
  const Mat& backward(const Mat& grad_out) override;
  std::string name() const override { return "dropout"; }
  std::size_t output_dim(std::size_t input_dim) const override { return input_dim; }

 private:
  double rate_;
  util::Rng rng_;
  Mat mask_;
  Mat y_;
  Mat dx_;
};

/// Sequence front end: [batch, time, feat] -> [batch, width].
class FrontEnd {
 public:
  virtual ~FrontEnd() = default;
  virtual const Mat& forward(const Tensor3& x, bool training) = 0;
  virtual void backward(const Mat& grad_out) = 0;
  virtual std::vector<Param> params() { return {}; }
  virtual std::string name() const = 0;
  virtual std::size_t output_dim(std::size_t time, std::size_t feat) const = 0;
};

/// Flatten front end (the MLP path): concatenates the time steps.
class Flatten : public FrontEnd {
 public:
  const Mat& forward(const Tensor3& x, bool training) override;
  void backward(const Mat& /*grad_out*/) override {}  // no trainable inputs upstream
  std::string name() const override { return "flatten"; }
  std::size_t output_dim(std::size_t time, std::size_t feat) const override {
    return time * feat;
  }

 private:
  Mat y_;
};

/// He/Xavier-style uniform init bound used across layers.
float init_bound(std::size_t fan_in, std::size_t fan_out);

}  // namespace is2::nn
