// Layer abstractions for the classifier stack.
//
// A model is a front end (Flatten for the MLP, LSTM for the recurrent model)
// that maps a [batch, time, features] sequence tensor to a [batch, width]
// matrix, followed by a stack of 2-D layers (Dense / Activation / Dropout).
// Layers own their parameters and gradient buffers; optimizers consume the
// Param views. All randomness flows through an explicit Rng so replicated
// models in the distributed trainer stay bit-identical across ranks.
//
// Forward contract: forward(x, training=true) caches everything backward()
// needs; forward(x, training=false) is the inference fast path — it runs the
// fused kernels, skips gradient caches and input copies, and reuses its
// output buffers across calls (zero allocation at steady batch shape).
// backward() after an inference-mode forward throws.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace is2::nn {

/// View of one parameter tensor and its gradient accumulator.
struct Param {
  std::string name;
  Mat* value = nullptr;
  Mat* grad = nullptr;
};

// Activation, activate(), activate_grad(), activate_grad_from_y() live in
// tensor.hpp (included above) so the fused GEMM epilogues can use them; the
// names are unchanged under is2::nn.

/// 2-D layer interface: [batch, in] -> [batch, out].
class Layer {
 public:
  virtual ~Layer() = default;
  virtual const Mat& forward(const Mat& x, bool training) = 0;
  /// Returns grad wrt input; accumulates parameter grads. Requires the
  /// preceding forward to have run with training=true.
  virtual const Mat& backward(const Mat& grad_out) = 0;
  virtual std::vector<Param> params() { return {}; }
  virtual std::string name() const = 0;
  virtual std::size_t output_dim(std::size_t input_dim) const = 0;
};

/// Fully connected y = x W^T + b with fused activation.
///
/// The inference forward runs on a cached pre-transposed weight panel
/// (`wt_`), rebuilt only when the weights actually changed. Staleness is
/// detected soundly, not by convention: a dirty flag (set when a mutable
/// weight handle escapes via params()/weights() or a backward pass runs)
/// forces a rebuild, and on the flag-clean path a sequential memcmp against
/// the snapshot the cache was built from catches mutations made through
/// retained Param views (optimizers, finite-difference probes). The memcmp
/// is a linear streaming pass — far cheaper than the strided transpose it
/// avoids — and predictions are bit-identical to the transpose-per-call
/// path (same packed kernel, same panel values).
class Dense : public Layer {
 public:
  Dense(std::size_t in_dim, std::size_t out_dim, Activation act, util::Rng& rng);

  const Mat& forward(const Mat& x, bool training) override;
  const Mat& backward(const Mat& grad_out) override;
  std::vector<Param> params() override;
  std::string name() const override { return "dense"; }
  std::size_t output_dim(std::size_t) const override { return w_.rows(); }

  Mat& weights() {
    wt_dirty_ = true;  // mutable handle escapes: assume mutation
    return w_;
  }
  Mat& bias() { return b_; }  // bias is read directly, never cached

 private:
  Mat w_;   // [out, in]
  Mat b_;   // [1, out]
  Mat dw_;
  Mat db_;
  Activation act_;
  // caches (x_/z_ filled only by training-mode forward)
  Mat x_;       // input
  Mat z_;       // pre-activation
  Mat y_;       // output
  Mat dx_;
  // Pre-transposed weights cached across forward calls (wide layers only;
  // the narrow logits head never transposes), plus the weight snapshot the
  // cache was built from (memcmp'd to detect out-of-band mutation).
  Mat wt_;      // [in, out] = w_^T
  Mat wt_src_;  // copy of w_ at cache build time
  bool wt_dirty_ = true;
};

/// Inverted dropout; identity at inference.
class Dropout : public Layer {
 public:
  Dropout(double rate, util::Rng rng);

  const Mat& forward(const Mat& x, bool training) override;
  const Mat& backward(const Mat& grad_out) override;
  std::string name() const override { return "dropout"; }
  std::size_t output_dim(std::size_t input_dim) const override { return input_dim; }

 private:
  double rate_;
  util::Rng rng_;
  Mat mask_;
  Mat y_;
  Mat dx_;
};

/// Sequence front end: [batch, time, feat] -> [batch, width].
class FrontEnd {
 public:
  virtual ~FrontEnd() = default;
  virtual const Mat& forward(const Tensor3& x, bool training) = 0;
  virtual void backward(const Mat& grad_out) = 0;
  virtual std::vector<Param> params() { return {}; }
  virtual std::string name() const = 0;
  virtual std::size_t output_dim(std::size_t time, std::size_t feat) const = 0;
};

/// Flatten front end (the MLP path): concatenates the time steps.
class Flatten : public FrontEnd {
 public:
  const Mat& forward(const Tensor3& x, bool training) override;
  void backward(const Mat& /*grad_out*/) override {}  // no trainable inputs upstream
  std::string name() const override { return "flatten"; }
  std::size_t output_dim(std::size_t time, std::size_t feat) const override {
    return time * feat;
  }

 private:
  Mat y_;
};

/// He/Xavier-style uniform init bound used across layers.
float init_bound(std::size_t fan_in, std::size_t fan_out);

}  // namespace is2::nn
