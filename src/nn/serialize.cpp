#include "nn/serialize.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

namespace is2::nn {

h5::File weights_to_file(Sequential& model) {
  h5::File f;
  const auto params = model.params();
  f.set_attr("/model/n_params", static_cast<std::int64_t>(params.size()));
  char path[64];
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::snprintf(path, sizeof path, "/model/param_%03zu", i);
    std::vector<std::uint64_t> shape{params[i].value->rows(), params[i].value->cols()};
    f.put<float>(path, std::span<const float>(params[i].value->data(), params[i].value->size()),
                 shape);
  }
  return f;
}

void weights_from_file(Sequential& model, const h5::File& f) {
  const auto params = model.params();
  const auto n = static_cast<std::size_t>(f.attr_int("/model/n_params"));
  if (n != params.size())
    throw h5::H5Error("weights_from_file: parameter count mismatch");
  char path[64];
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::snprintf(path, sizeof path, "/model/param_%03zu", i);
    const auto shape = f.shape(path);
    if (shape.size() != 2 || shape[0] != params[i].value->rows() ||
        shape[1] != params[i].value->cols())
      throw h5::H5Error("weights_from_file: shape mismatch at param " + std::to_string(i));
    const auto data = f.get<float>(path);
    std::copy(data.begin(), data.end(), params[i].value->data());
  }
}

void save_weights(Sequential& model, const std::string& filename) {
  weights_to_file(model).save(filename);
}

void load_weights(Sequential& model, const std::string& filename) {
  weights_from_file(model, h5::File::load(filename));
}

}  // namespace is2::nn
