#include "nn/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "util/timer.hpp"

namespace is2::nn {

std::pair<Dataset, Dataset> Dataset::split(double frac) const {
  if (frac < 0.0 || frac > 1.0) throw std::invalid_argument("Dataset::split: bad fraction");
  const auto n1 = static_cast<std::size_t>(static_cast<double>(size()) * frac);
  Dataset a, b;
  a.x = Tensor3(n1, x.t, x.d);
  b.x = Tensor3(size() - n1, x.t, x.d);
  std::copy(x.v.begin(), x.v.begin() + static_cast<std::ptrdiff_t>(n1 * x.sample_size()),
            a.x.v.begin());
  std::copy(x.v.begin() + static_cast<std::ptrdiff_t>(n1 * x.sample_size()), x.v.end(),
            b.x.v.begin());
  a.y.assign(y.begin(), y.begin() + static_cast<std::ptrdiff_t>(n1));
  b.y.assign(y.begin() + static_cast<std::ptrdiff_t>(n1), y.end());
  return {std::move(a), std::move(b)};
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.x = Tensor3(indices.size(), x.t, x.d);
  out.y.resize(indices.size());
  const std::size_t ss = x.sample_size();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    std::copy(x.v.begin() + static_cast<std::ptrdiff_t>(indices[i] * ss),
              x.v.begin() + static_cast<std::ptrdiff_t>((indices[i] + 1) * ss),
              out.x.v.begin() + static_cast<std::ptrdiff_t>(i * ss));
    out.y[i] = y[indices[i]];
  }
  return out;
}

const Mat& Sequential::forward(const Tensor3& x, bool training) {
  if (!front_) throw std::logic_error("Sequential: no front end set");
  const Mat* h = &front_->forward(x, training);
  for (auto& layer : layers_) h = &layer->forward(*h, training);
  return *h;
}

void Sequential::backward(const Mat& grad_logits) {
  backward(grad_logits, ParamGroupFn{});
}

void Sequential::backward(const Mat& grad_logits, const ParamGroupFn& on_params_ready) {
  const Mat* g = &grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = &(*it)->backward(*g);
    if (on_params_ready) {
      const auto p = (*it)->params();
      if (!p.empty()) on_params_ready(p);
    }
  }
  front_->backward(*g);
  if (on_params_ready) {
    const auto p = front_->params();
    if (!p.empty()) on_params_ready(p);
  }
}

void Sequential::visit_params_backward(const ParamGroupFn& fn) {
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    const auto p = (*it)->params();
    if (!p.empty()) fn(p);
  }
  const auto p = front_->params();
  if (!p.empty()) fn(p);
}

std::vector<Param> Sequential::params() {
  std::vector<Param> out;
  auto fp = front_->params();
  out.insert(out.end(), fp.begin(), fp.end());
  for (auto& layer : layers_) {
    auto lp = layer->params();
    out.insert(out.end(), lp.begin(), lp.end());
  }
  return out;
}

std::size_t Sequential::param_count() {
  std::size_t n = 0;
  for (const auto& p : params()) n += p.value->size();
  return n;
}

std::vector<EpochStats> Sequential::fit(const Dataset& train, const Loss& loss,
                                        Optimizer& optimizer, const FitConfig& cfg) {
  const std::size_t n = train.size();
  if (n == 0) throw std::invalid_argument("Sequential::fit: empty dataset");
  auto param_list = params();
  optimizer.zero_grad(param_list);

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  util::Rng shuffle_rng(cfg.shuffle_seed);

  std::vector<EpochStats> history;
  Tensor3 xb;
  std::vector<std::uint8_t> yb;
  Mat grad;

  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    util::Timer timer;
    shuffle_rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t batches = 0;

    for (std::size_t start = 0; start < n; start += cfg.batch_size) {
      const std::size_t bsz = std::min(cfg.batch_size, n - start);
      xb = Tensor3(bsz, train.x.t, train.x.d);
      yb.resize(bsz);
      const std::size_t ss = train.x.sample_size();
      for (std::size_t i = 0; i < bsz; ++i) {
        const std::size_t src = order[start + i];
        std::copy(train.x.v.begin() + static_cast<std::ptrdiff_t>(src * ss),
                  train.x.v.begin() + static_cast<std::ptrdiff_t>((src + 1) * ss),
                  xb.v.begin() + static_cast<std::ptrdiff_t>(i * ss));
        yb[i] = train.y[src];
      }

      const Mat& logits = forward(xb, /*training=*/true);
      loss_sum += loss.compute(logits, yb, grad);
      backward(grad);
      if (cfg.grad_hook) cfg.grad_hook(param_list);
      optimizer.step(param_list);
      ++batches;
    }

    EpochStats stats;
    stats.loss = batches ? loss_sum / static_cast<double>(batches) : 0.0;
    stats.wall_s = timer.seconds();
    stats.samples = n;
    history.push_back(stats);
    if (cfg.epoch_hook) cfg.epoch_hook(epoch, stats);
    if (cfg.verbose)
      std::fprintf(stderr, "epoch %zu/%zu  loss %.4f  %.2fs\n", epoch + 1, cfg.epochs, stats.loss,
                   stats.wall_s);
  }
  return history;
}

void Sequential::predict_into(const Tensor3& x, std::uint8_t* out, std::size_t batch_size) {
  if (batch_size == 0) throw std::invalid_argument("Sequential::predict: zero batch size");
  const std::size_t ss = x.sample_size();
  // One scratch batch reused across iterations (a member, so repeated calls
  // at the same shape allocate nothing). Each window's logits depend only on
  // its own row, so the batch partition never changes the predictions. A
  // batch that spans all of x skips the staging copy entirely — the serve
  // path assembles exactly-one-batch tensors, which would otherwise pay a
  // second full copy here.
  Tensor3& xb = predict_scratch_;
  for (std::size_t start = 0; start < x.n; start += batch_size) {
    const std::size_t bsz = std::min(batch_size, x.n - start);
    const Mat* logits;
    if (bsz == x.n) {
      logits = &forward(x, /*training=*/false);
    } else {
      xb.resize(bsz, x.t, x.d);
      std::copy(x.v.begin() + static_cast<std::ptrdiff_t>(start * ss),
                x.v.begin() + static_cast<std::ptrdiff_t>((start + bsz) * ss), xb.v.begin());
      logits = &forward(xb, /*training=*/false);
    }
    for (std::size_t i = 0; i < bsz; ++i) {
      const float* row = logits->row(i);
      std::size_t best = 0;
      for (std::size_t c = 1; c < logits->cols(); ++c)
        if (row[c] > row[best]) best = c;
      out[start + i] = static_cast<std::uint8_t>(best);
    }
  }
}

std::vector<std::uint8_t> Sequential::predict(const Tensor3& x, std::size_t batch_size) {
  std::vector<std::uint8_t> out(x.n);
  predict_into(x, out.data(), batch_size);
  return out;
}

Metrics Sequential::evaluate(const Dataset& data, std::size_t batch_size) {
  const auto pred = predict(data.x, batch_size);
  return compute_metrics(data.y, pred);
}

Sequential make_lstm_model(std::size_t time_steps, std::size_t features, util::Rng& rng) {
  (void)time_steps;
  Sequential model;
  model.set_front(std::make_unique<Lstm>(features, 16, Activation::Elu, 0.2, rng));
  const std::size_t widths[] = {32, 96, 32, 16, 112, 48, 64};
  std::size_t prev = 16;
  for (std::size_t w : widths) {
    model.add(std::make_unique<Dense>(prev, w, Activation::Elu, rng));
    prev = w;
  }
  model.add(std::make_unique<Dense>(prev, atl03::kNumClasses, Activation::Linear, rng));
  return model;
}

Sequential make_mlp_model(std::size_t time_steps, std::size_t features, util::Rng& rng) {
  Sequential model;
  model.set_front(std::make_unique<Flatten>());
  model.add(std::make_unique<Dense>(time_steps * features, 32, Activation::Relu, rng));
  model.add(std::make_unique<Dense>(32, atl03::kNumClasses, Activation::Linear, rng));
  return model;
}

WindowedData make_windows(const std::vector<std::vector<float>>& beam_features,
                          const std::vector<std::vector<std::uint8_t>>& beam_labels,
                          std::size_t feature_dim, std::size_t window, bool keep_unknown) {
  if (beam_features.size() != beam_labels.size())
    throw std::invalid_argument("make_windows: beam count mismatch");
  if (window % 2 == 0) throw std::invalid_argument("make_windows: window must be odd");
  const std::size_t half = window / 2;

  // First pass: count windows.
  std::size_t count = 0;
  for (std::size_t b = 0; b < beam_features.size(); ++b) {
    const std::size_t n = beam_labels[b].size();
    if (beam_features[b].size() != n * feature_dim)
      throw std::invalid_argument("make_windows: feature/label size mismatch");
    if (n < window) continue;
    for (std::size_t i = half; i + half < n; ++i)
      if (keep_unknown || beam_labels[b][i] < atl03::kNumClasses) ++count;
  }

  WindowedData out;
  out.data.x = Tensor3(count, window, feature_dim);
  out.data.y.resize(count);
  out.source_index.resize(count);

  std::size_t w = 0;
  for (std::size_t b = 0; b < beam_features.size(); ++b) {
    const std::size_t n = beam_labels[b].size();
    if (n < window) continue;
    for (std::size_t i = half; i + half < n; ++i) {
      if (!keep_unknown && beam_labels[b][i] >= atl03::kNumClasses) continue;
      float* dst = out.data.x.at(w, 0);
      const float* src = beam_features[b].data() + (i - half) * feature_dim;
      std::copy(src, src + window * feature_dim, dst);
      out.data.y[w] = beam_labels[b][i];
      out.source_index[w] = i;
      ++w;
    }
  }
  return out;
}

}  // namespace is2::nn
