// Optimizers over Param views. Step order is deterministic (parameter list
// order), which the distributed trainer relies on for replica consistency.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layers.hpp"

namespace is2::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply accumulated gradients and zero them.
  virtual void step(const std::vector<Param>& params) = 0;
  virtual void zero_grad(const std::vector<Param>& params);
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr) : lr_(lr) {}
  void step(const std::vector<Param>& params) override;

 private:
  double lr_;
};

/// Adam (Kingma & Ba 2015); the paper uses lr = 0.003.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr = 0.003, double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-7);
  void step(const std::vector<Param>& params) override;

 private:
  double lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  // Moment buffers keyed by position in the param list (stable across steps).
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace is2::nn
