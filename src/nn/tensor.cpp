#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#if defined(__GNUC__) || defined(__clang__)
#define IS2_RESTRICT __restrict__
#else
#define IS2_RESTRICT
#endif

namespace is2::nn {

namespace {

// Polynomial expf (Cody–Waite range reduction + the Cephes degree-6
// minimax on [-ln2/2, ln2/2], ~3 ulp): the sigmoid/ELU gate activations
// are the classifier's hottest transcendentals, and libm expf's
// special-case handling costs several times this. Pure float arithmetic —
// no table lookups, no FMA contraction sensitivity that matters at this
// accuracy — so results are identical across ISAs, OpenMP on/off and
// thread counts. Used only by the activation helpers below; the losses and
// softmax keep libm exp (their bit-stability oracle predates this kernel).
inline float poly_exp_tail(float r) {
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  return p;
}

/// Safety clamp to the exponent-trick domain, written as |.|-arithmetic
/// rather than ternaries: GCC 12 refuses to if-convert a ternary clamp
/// whose result feeds further arithmetic, which silently kept these loops
/// scalar. The correction-term form `v - relu(v-87) + relu(-87-v)` is
/// EXACTLY v for in-range inputs — relu(y) = (y+|y|)/2 is a true zero for
/// negative y, so no rounding from the bound ever contaminates small
/// inputs (the naive (v+87+|v-87|)/2 form cost ~3e-6 of absolute error
/// near zero). Out of range the result is ~±87, where e^x saturated long
/// ago and rounding is irrelevant.
inline float clamp87(float v) {
  const float over = v - 87.0f;                       // > 0 only when v > 87
  const float under = -87.0f - v;                     // > 0 only when v < -87
  return v - 0.5f * (over + std::fabs(over)) + 0.5f * (under + std::fabs(under));
}

inline float fast_expf(float x) {
  constexpr float kLog2e = 1.44269504088896341f;
  constexpr float kC1 = 0.693359375f;      // ln2 split, high part
  constexpr float kC2 = -2.12194440e-4f;   // ln2 split, low part
  constexpr float kMagic = 12582912.0f;    // 1.5 * 2^23: branch-free rounding
  const float xc = clamp87(x);             // NaN passes through untouched
  const float z = xc * kLog2e;
  const float t = z + kMagic;              // low mantissa bits now hold round(z)
  const float nf = t - kMagic;             // round-to-nearest, no cvt branch
  const float r = (xc - nf * kC1) - nf * kC2;
  const float e = poly_exp_tail(r) * r * r + r + 1.0f;
  // Scale by 2^n (n within [-126, 126] after the clamp, so the result
  // stays normal). n is recovered from t's bit pattern with unsigned
  // arithmetic — adding an integer n to kMagic leaves the exponent field
  // alone and adds n to the mantissa exactly, so the pattern difference IS
  // n — and crucially there is no float->int conversion anywhere: a NaN
  // input (t = NaN) just yields some garbage finite scale, and e — already
  // NaN through r — propagates NaN to the product, exactly like libm expf,
  // with no UB on any path.
  std::uint32_t t_bits, magic_bits;
  std::memcpy(&t_bits, &t, sizeof t_bits);
  std::memcpy(&magic_bits, &kMagic, sizeof magic_bits);
  const std::uint32_t bits = (t_bits - magic_bits + 127u) << 23;
  float s;
  std::memcpy(&s, &bits, sizeof s);
  return e * s;
}

/// Select-free ELU: elu(x) = max(x,0) + (e^min(x,0) - 1), with the max/min
/// as exact |.|-arithmetic (x+|x| and x-|x| are exact in float). No
/// data-dependent branch, no blend the if-converter can refuse — the loops
/// over this vectorize end to end, where the earlier sign-branch version
/// mispredicted on ~every other element of sign-mixed activations. For
/// x > 0 the exp term is exactly e^0 - 1 = 0. The e^x - 1 subtraction
/// costs up to ~1e-7 absolute near 0 (where ELU ~ x); the documented
/// activation tolerance covers it.
inline float fast_eluf(float x) {
  const float pos = 0.5f * (x + std::fabs(x));  // max(x, 0), exact
  const float neg = 0.5f * (x - std::fabs(x));  // min(x, 0), exact
  return pos + (fast_expf(neg) - 1.0f);
}

}  // namespace

float activate(Activation a, float x) {
  switch (a) {
    case Activation::Linear: return x;
    case Activation::Relu: return x > 0.0f ? x : 0.0f;
    case Activation::Elu: return fast_eluf(x);
    case Activation::Tanh: return std::tanh(x);
    case Activation::Sigmoid: return 1.0f / (1.0f + fast_expf(-x));
  }
  return x;
}

float activate_grad(Activation a, float x, float y) {
  switch (a) {
    case Activation::Linear: return 1.0f;
    case Activation::Relu: return x > 0.0f ? 1.0f : 0.0f;
    case Activation::Elu: return x > 0.0f ? 1.0f : y + 1.0f;  // d/dx e^x - 1 = y + 1
    case Activation::Tanh: return 1.0f - y * y;
    case Activation::Sigmoid: return y * (1.0f - y);
  }
  return 1.0f;
}

float activate_grad_from_y(Activation a, float y) {
  switch (a) {
    case Activation::Linear: return 1.0f;
    case Activation::Relu: return y > 0.0f ? 1.0f : 0.0f;
    case Activation::Elu: return y > 0.0f ? 1.0f : y + 1.0f;
    case Activation::Tanh: return 1.0f - y * y;
    case Activation::Sigmoid: return y * (1.0f - y);
  }
  return 1.0f;
}

namespace {

// Below this many multiply-adds the OpenMP fork overhead dominates; the
// classifier's matrices are tiny so the serial path is the common case.
constexpr std::size_t kParallelThreshold = 1u << 20;

// Number of independent partial sums each gemm_nt dot product is split
// into. Fixed in code (not tied to any SIMD width) so the summation order
// — and therefore the result, bit for bit — is identical whether the
// compiler emits SSE, AVX2, AVX-512 or scalar code, and whether OpenMP is
// on or off. 8 lanes break the scalar add-latency chain that bounds the
// reference kernel while a 4-column tile still fits 16 SSE registers.
constexpr std::size_t kLanes = 8;

// Register tile over output columns in gemm_nt: 4 B-rows share each A-row
// load, quadrupling the arithmetic per byte of A traffic. Also the fused
// dense forward's narrow/packed dispatch boundary — published in tensor.hpp
// (kDenseFusedColTile) so external cached-transpose paths dispatch on the
// same line.
constexpr std::size_t kColTile = kDenseFusedColTile;

// Panel blocking over k: bounds the column tile's live B working set
// (kColTile * kPanelK floats = 16 KiB, half an L1) so an A row streams
// against L1-resident B panels. The classifier's k never exceeds 112, so a
// single panel is the common case; the blocking exists so large shapes
// don't fall off a cache cliff.
constexpr std::size_t kPanelK = 1024;

/// One gemm_nt output row: ci[j] (+)= dot(ai, b.row(j)) + bias[j] for j in
/// [0, n). Dot products accumulate in kLanes fixed partial sums, combined
/// in lane order, then the scalar tail in index order — a deterministic
/// schedule. `bias` (nullable) is added in the register epilogue, after the
/// full dot product, i.e. in exactly the order the unfused
/// gemm-then-bias-pass sequence would produce.
void gemm_nt_row(const float* IS2_RESTRICT ai, const Mat& b, float* IS2_RESTRICT ci,
                 std::size_t n, std::size_t k, bool accumulate,
                 const float* IS2_RESTRICT bias = nullptr) {
  const std::size_t k_lanes = k - k % kLanes;
  std::size_t j = 0;
  for (; j + kColTile <= n; j += kColTile) {
    const float* IS2_RESTRICT b0 = b.row(j);
    const float* IS2_RESTRICT b1 = b.row(j + 1);
    const float* IS2_RESTRICT b2 = b.row(j + 2);
    const float* IS2_RESTRICT b3 = b.row(j + 3);
    float acc0[kLanes] = {}, acc1[kLanes] = {}, acc2[kLanes] = {}, acc3[kLanes] = {};
    for (std::size_t p0 = 0; p0 < k_lanes; p0 += kPanelK) {
      const std::size_t pe = std::min(p0 + kPanelK, k_lanes);
      for (std::size_t p = p0; p < pe; p += kLanes) {
#pragma omp simd
        for (std::size_t l = 0; l < kLanes; ++l) {
          const float av = ai[p + l];
          acc0[l] += av * b0[p + l];
          acc1[l] += av * b1[p + l];
          acc2[l] += av * b2[p + l];
          acc3[l] += av * b3[p + l];
        }
      }
    }
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
    for (std::size_t l = 0; l < kLanes; ++l) {
      s0 += acc0[l];
      s1 += acc1[l];
      s2 += acc2[l];
      s3 += acc3[l];
    }
    for (std::size_t p = k_lanes; p < k; ++p) {
      const float av = ai[p];
      s0 += av * b0[p];
      s1 += av * b1[p];
      s2 += av * b2[p];
      s3 += av * b3[p];
    }
    if (bias) {
      s0 += bias[j];
      s1 += bias[j + 1];
      s2 += bias[j + 2];
      s3 += bias[j + 3];
    }
    if (accumulate) {
      ci[j] += s0;
      ci[j + 1] += s1;
      ci[j + 2] += s2;
      ci[j + 3] += s3;
    } else {
      ci[j] = s0;
      ci[j + 1] = s1;
      ci[j + 2] = s2;
      ci[j + 3] = s3;
    }
  }
  for (; j < n; ++j) {
    const float* IS2_RESTRICT bj = b.row(j);
    float acc[kLanes] = {};
    for (std::size_t p = 0; p < k_lanes; p += kLanes)
#pragma omp simd
      for (std::size_t l = 0; l < kLanes; ++l) acc[l] += ai[p + l] * bj[p + l];
    float s = 0.0f;
    for (std::size_t l = 0; l < kLanes; ++l) s += acc[l];
    for (std::size_t p = k_lanes; p < k; ++p) s += ai[p] * bj[p];
    if (bias) s += bias[j];
    ci[j] = accumulate ? ci[j] + s : s;
  }
}

/// In-place activation over one (L1-hot) output row. Linear is a no-op.
void activate_row(Activation act, float* y, std::size_t n) {
  if (act != Activation::Linear) activate_row_copy(act, y, y, n);
}

/// Row-tile body shared by the gemm_nn row blocks. Each output element's
/// additions happen in increasing-p order exactly as in the reference
/// kernel, so this path is bit-identical to gemm_nn_reference.
template <std::size_t RT>
void gemm_nn_rows(const Mat& a, const Mat& b, Mat& c, std::size_t i0, std::size_t k,
                  std::size_t n) {
  const float* IS2_RESTRICT a0 = a.row(i0);
  const float* IS2_RESTRICT a1 = a.row(i0 + (RT > 1 ? 1 : 0));
  const float* IS2_RESTRICT a2 = a.row(i0 + (RT > 2 ? 2 : 0));
  const float* IS2_RESTRICT a3 = a.row(i0 + (RT > 3 ? 3 : 0));
  float* IS2_RESTRICT c0 = c.row(i0);
  float* IS2_RESTRICT c1 = c.row(i0 + (RT > 1 ? 1 : 0));
  float* IS2_RESTRICT c2 = c.row(i0 + (RT > 2 ? 2 : 0));
  float* IS2_RESTRICT c3 = c.row(i0 + (RT > 3 ? 3 : 0));
  for (std::size_t p = 0; p < k; ++p) {
    const float* IS2_RESTRICT bp = b.row(p);
    const float av0 = a0[p];
    const float av1 = RT > 1 ? a1[p] : 0.0f;
    const float av2 = RT > 2 ? a2[p] : 0.0f;
    const float av3 = RT > 3 ? a3[p] : 0.0f;
#pragma omp simd
    for (std::size_t jj = 0; jj < n; ++jj) {
      c0[jj] += av0 * bp[jj];
      if (RT > 1) c1[jj] += av1 * bp[jj];
      if (RT > 2) c2[jj] += av2 * bp[jj];
      if (RT > 3) c3[jj] += av3 * bp[jj];
    }
  }
}

}  // namespace

void gemm_nt(const Mat& a, const Mat& b, Mat& c, bool accumulate) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (b.cols() != k || c.rows() != m || c.cols() != n)
    throw std::invalid_argument("gemm_nt: shape mismatch");
  const bool parallel = m * n * k > kParallelThreshold;
  // Parallel over output rows only: each element is produced by exactly one
  // thread with a fixed reduction schedule, so the result is independent of
  // the thread count.
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(m); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    gemm_nt_row(a.row(i), b, c.row(i), n, k, accumulate);
  }
}

void gemm_nn(const Mat& a, const Mat& b, Mat& c, bool accumulate) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k || c.rows() != m || c.cols() != n)
    throw std::invalid_argument("gemm_nn: shape mismatch");
  const bool parallel = m * n * k > kParallelThreshold;
  const std::size_t row_blocks = (m + 3) / 4;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t bb = 0; bb < static_cast<std::ptrdiff_t>(row_blocks); ++bb) {
    const std::size_t i0 = static_cast<std::size_t>(bb) * 4;
    const std::size_t rt = std::min<std::size_t>(4, m - i0);
    if (!accumulate)
      for (std::size_t r = 0; r < rt; ++r) std::fill(c.row(i0 + r), c.row(i0 + r) + n, 0.0f);
    switch (rt) {
      case 4: gemm_nn_rows<4>(a, b, c, i0, k, n); break;
      case 3: gemm_nn_rows<3>(a, b, c, i0, k, n); break;
      case 2: gemm_nn_rows<2>(a, b, c, i0, k, n); break;
      default: gemm_nn_rows<1>(a, b, c, i0, k, n); break;
    }
  }
}

void gemm_tn(const Mat& a, const Mat& b, Mat& c, bool accumulate) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (b.rows() != k || c.rows() != m || c.cols() != n)
    throw std::invalid_argument("gemm_tn: shape mismatch");
  // Output-row blocks of 4 reuse each B-row load four times; A supplies 4
  // contiguous floats per (p, block). Per-element additions stay in
  // increasing-p order, bit-identical to gemm_tn_reference.
  for (std::size_t i0 = 0; i0 < m; i0 += 4) {
    const std::size_t rt = std::min<std::size_t>(4, m - i0);
    float* IS2_RESTRICT c0 = c.row(i0);
    float* IS2_RESTRICT c1 = c.row(i0 + (rt > 1 ? 1 : 0));
    float* IS2_RESTRICT c2 = c.row(i0 + (rt > 2 ? 2 : 0));
    float* IS2_RESTRICT c3 = c.row(i0 + (rt > 3 ? 3 : 0));
    if (!accumulate)
      for (std::size_t r = 0; r < rt; ++r) std::fill(c.row(i0 + r), c.row(i0 + r) + n, 0.0f);
    for (std::size_t p = 0; p < k; ++p) {
      const float* IS2_RESTRICT ap = a.row(p) + i0;
      const float* IS2_RESTRICT bp = b.row(p);
      const float av0 = ap[0];
      const float av1 = rt > 1 ? ap[1] : 0.0f;
      const float av2 = rt > 2 ? ap[2] : 0.0f;
      const float av3 = rt > 3 ? ap[3] : 0.0f;
      switch (rt) {
        case 4:
#pragma omp simd
          for (std::size_t j = 0; j < n; ++j) {
            c0[j] += av0 * bp[j];
            c1[j] += av1 * bp[j];
            c2[j] += av2 * bp[j];
            c3[j] += av3 * bp[j];
          }
          break;
        case 3:
#pragma omp simd
          for (std::size_t j = 0; j < n; ++j) {
            c0[j] += av0 * bp[j];
            c1[j] += av1 * bp[j];
            c2[j] += av2 * bp[j];
          }
          break;
        case 2:
#pragma omp simd
          for (std::size_t j = 0; j < n; ++j) {
            c0[j] += av0 * bp[j];
            c1[j] += av1 * bp[j];
          }
          break;
        default:
#pragma omp simd
          for (std::size_t j = 0; j < n; ++j) c0[j] += av0 * bp[j];
          break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Reference kernels (pre-tiling scalar loops): test oracle + bench baseline.
// ---------------------------------------------------------------------------

void gemm_nt_reference(const Mat& a, const Mat& b, Mat& c, bool accumulate) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (b.cols() != k || c.rows() != m || c.cols() != n)
    throw std::invalid_argument("gemm_nt: shape mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const float* bj = b.row(j);
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = accumulate ? ci[j] + acc : acc;
    }
  }
}

void gemm_nn_reference(const Mat& a, const Mat& b, Mat& c, bool accumulate) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k || c.rows() != m || c.cols() != n)
    throw std::invalid_argument("gemm_nn: shape mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    if (!accumulate) std::fill(ci, ci + n, 0.0f);
    for (std::size_t p = 0; p < k; ++p) {
      const float av = ai[p];
      const float* bp = b.row(p);
      for (std::size_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

void gemm_tn_reference(const Mat& a, const Mat& b, Mat& c, bool accumulate) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (b.rows() != k || c.rows() != m || c.cols() != n)
    throw std::invalid_argument("gemm_tn: shape mismatch");
  if (!accumulate) c.fill(0.0f);
  for (std::size_t p = 0; p < k; ++p) {
    const float* ap = a.row(p);
    const float* bp = b.row(p);
    for (std::size_t i = 0; i < m; ++i) {
      const float av = ap[i];
      float* ci = c.row(i);
      for (std::size_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

// ---------------------------------------------------------------------------
// Fused dense-layer forward
// ---------------------------------------------------------------------------

void transpose(const Mat& a, Mat& at) {
  const std::size_t m = a.rows(), n = a.cols();
  at.resize(n, m);
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a.row(i);
    for (std::size_t j = 0; j < n; ++j) at.at(j, i) = ai[j];
  }
}

namespace {

/// Fused forward core on a pre-transposed weight panel: for each 4-row
/// block of x, the output rows start at the bias, accumulate x @ wt with
/// the gemm_nn register tile (contiguous j inner loop — the layout the
/// vectorizer likes, with no reduction reorder), then the activation runs
/// over the still-L1-hot block. One pass over the output. z_store, when
/// non-null, receives the pre-activation block in the same pass.
void dense_forward_packed(const Mat& x, const Mat& wt, const float* IS2_RESTRICT bias,
                          Activation act, Mat* z_store, Mat& y) {
  const std::size_t m = x.rows(), k = x.cols(), n = wt.cols();
  const bool parallel = m * n * k > kParallelThreshold;
  const std::size_t row_blocks = (m + 3) / 4;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t bb = 0; bb < static_cast<std::ptrdiff_t>(row_blocks); ++bb) {
    const std::size_t i0 = static_cast<std::size_t>(bb) * 4;
    const std::size_t rt = std::min<std::size_t>(4, m - i0);
    for (std::size_t r = 0; r < rt; ++r) std::copy(bias, bias + n, y.row(i0 + r));
    switch (rt) {
      case 4: gemm_nn_rows<4>(x, wt, y, i0, k, n); break;
      case 3: gemm_nn_rows<3>(x, wt, y, i0, k, n); break;
      case 2: gemm_nn_rows<2>(x, wt, y, i0, k, n); break;
      default: gemm_nn_rows<1>(x, wt, y, i0, k, n); break;
    }
    for (std::size_t r = 0; r < rt; ++r) {
      float* yi = y.row(i0 + r);
      if (z_store) std::copy(yi, yi + n, z_store->row(i0 + r));
      activate_row(act, yi, n);
    }
  }
}

// Per-thread transposed-weight scratch: the transpose costs O(n*k) once per
// call and is amortized over the m-row batch; thread_local keeps the public
// signatures free of scratch plumbing and replica threads race-free.
thread_local Mat t_wt_scratch;

/// Narrow-output fused forward (n below one column tile, e.g. the 3-class
/// logits head): the packed path's per-block bias/activation overhead
/// outweighs its GEMM win there, so each output row runs the lane-split
/// gemm_nt row kernel with the bias in its register epilogue. The dispatch
/// depends only on n (a per-layer constant), so every call for a given
/// layer takes the same deterministic summation order.
void dense_forward_narrow(const Mat& x, const Mat& w, const float* IS2_RESTRICT bias,
                          Activation act, Mat* z_store, Mat& y) {
  const std::size_t m = x.rows(), k = x.cols(), n = w.rows();
  const bool parallel = m * n * k > kParallelThreshold;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(m); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    float* yi = y.row(i);
    gemm_nt_row(x.row(i), w, yi, n, k, /*accumulate=*/false, bias);
    if (z_store) std::copy(yi, yi + n, z_store->row(i));
    activate_row(act, yi, n);
  }
}

}  // namespace

void dense_forward_pre(const Mat& x, const Mat& wt, const Mat& bias, Activation act,
                       Mat* z_store, Mat& y) {
  const std::size_t m = x.rows(), k = x.cols(), n = wt.cols();
  if (wt.rows() != k || bias.rows() != 1 || bias.cols() != n)
    throw std::invalid_argument("dense_forward_pre: shape mismatch");
  if (z_store) z_store->resize(m, n);
  y.resize(m, n);
  dense_forward_packed(x, wt, bias.row(0), act, z_store, y);
}

void dense_forward_fused(const Mat& x, const Mat& w, const Mat& bias, Activation act, Mat& y) {
  const std::size_t m = x.rows(), k = x.cols(), n = w.rows();
  if (w.cols() != k || bias.rows() != 1 || bias.cols() != n)
    throw std::invalid_argument("dense_forward_fused: shape mismatch");
  y.resize(m, n);
  if (n < kColTile) {
    dense_forward_narrow(x, w, bias.row(0), act, nullptr, y);
    return;
  }
  transpose(w, t_wt_scratch);
  dense_forward_packed(x, t_wt_scratch, bias.row(0), act, nullptr, y);
}

void dense_forward_train(const Mat& x, const Mat& w, const Mat& bias, Activation act, Mat& z,
                         Mat& y) {
  const std::size_t m = x.rows(), k = x.cols(), n = w.rows();
  if (w.cols() != k || bias.rows() != 1 || bias.cols() != n)
    throw std::invalid_argument("dense_forward_train: shape mismatch");
  z.resize(m, n);
  y.resize(m, n);
  if (n < kColTile) {
    dense_forward_narrow(x, w, bias.row(0), act, &z, y);
    return;
  }
  transpose(w, t_wt_scratch);
  dense_forward_packed(x, t_wt_scratch, bias.row(0), act, &z, y);
}

void activate_row_copy(Activation act, const float* x, float* y, std::size_t n) {
  switch (act) {
    case Activation::Linear:
      if (y != x) std::copy(x, x + n, y);
      break;
    case Activation::Relu:
#pragma omp simd
      for (std::size_t j = 0; j < n; ++j) y[j] = x[j] > 0.0f ? x[j] : 0.0f;
      break;
    case Activation::Elu:
#pragma omp simd
      for (std::size_t j = 0; j < n; ++j) y[j] = fast_eluf(x[j]);
      break;
    case Activation::Tanh:
      for (std::size_t j = 0; j < n; ++j) y[j] = std::tanh(x[j]);
      break;
    case Activation::Sigmoid:
      sigmoid_row(x, y, n);
      break;
  }
}

void sigmoid_row(const float* x, float* y, std::size_t n) {
  // No restrict here: the contract allows x == y (the LSTM cell activates
  // gates in place). Same-index elementwise aliasing is still vectorizable,
  // and fast_expf is branch-free straight-line arithmetic, so the simd
  // pragma lets the compiler vectorize the whole polynomial per lane.
  // Per-element results are unchanged by vectorization (no cross-lane
  // reduction).
#pragma omp simd
  for (std::size_t j = 0; j < n; ++j) y[j] = 1.0f / (1.0f + fast_expf(-x[j]));
}

void add_inplace(Mat& y, const Mat& x) {
  if (y.rows() != x.rows() || y.cols() != x.cols())
    throw std::invalid_argument("add_inplace: shape mismatch");
  float* IS2_RESTRICT yd = y.data();
  const float* IS2_RESTRICT xd = x.data();
  for (std::size_t i = 0; i < y.size(); ++i) yd[i] += xd[i];
}

}  // namespace is2::nn
