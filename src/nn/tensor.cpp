#include "nn/tensor.hpp"

#include <algorithm>
#include <stdexcept>

namespace is2::nn {

namespace {
// Below this many multiply-adds the OpenMP fork overhead dominates; the
// classifier's matrices are tiny so the serial path is the common case.
constexpr std::size_t kParallelThreshold = 1u << 20;
}  // namespace

void gemm_nt(const Mat& a, const Mat& b, Mat& c, bool accumulate) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (b.cols() != k || c.rows() != m || c.cols() != n)
    throw std::invalid_argument("gemm_nt: shape mismatch");
  const bool parallel = m * n * k > kParallelThreshold;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(m); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const float* bj = b.row(j);
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = accumulate ? ci[j] + acc : acc;
    }
  }
}

void gemm_nn(const Mat& a, const Mat& b, Mat& c, bool accumulate) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k || c.rows() != m || c.cols() != n)
    throw std::invalid_argument("gemm_nn: shape mismatch");
  const bool parallel = m * n * k > kParallelThreshold;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(m); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    const float* ai = a.row(i);
    float* ci = c.row(i);
    if (!accumulate) std::fill(ci, ci + n, 0.0f);
    for (std::size_t p = 0; p < k; ++p) {
      const float av = ai[p];
      const float* bp = b.row(p);
      for (std::size_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

void gemm_tn(const Mat& a, const Mat& b, Mat& c, bool accumulate) {
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (b.rows() != k || c.rows() != m || c.cols() != n)
    throw std::invalid_argument("gemm_tn: shape mismatch");
  if (!accumulate) c.fill(0.0f);
  // Accumulate outer products row by row; m and n are small.
  for (std::size_t p = 0; p < k; ++p) {
    const float* ap = a.row(p);
    const float* bp = b.row(p);
    for (std::size_t i = 0; i < m; ++i) {
      const float av = ap[i];
      float* ci = c.row(i);
      for (std::size_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

void add_inplace(Mat& y, const Mat& x) {
  if (y.rows() != x.rows() || y.cols() != x.cols())
    throw std::invalid_argument("add_inplace: shape mismatch");
  float* yd = y.data();
  const float* xd = x.data();
  for (std::size_t i = 0; i < y.size(); ++i) yd[i] += xd[i];
}

}  // namespace is2::nn
