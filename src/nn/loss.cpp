#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace is2::nn {

void softmax_rows(const Mat& logits, Mat& probs) {
  // Single-traversal online softmax: max, exp and sum are maintained in one
  // pass over the row. When a new maximum appears, the entries already
  // written are recomputed as exp(z - new_max) from the original logits —
  // not rescaled by a multiplicative correction — so after the pass every
  // p[c] equals exp(z[c] - final_max) exactly and the sum accumulates in
  // index order, both identical to softmax_rows_reference bit for bit
  // (verified in test_nn_core). Max updates are rare (expected O(log n) for
  // exchangeable inputs, once for a front-loaded max), so the common case
  // really is one traversal instead of three.
  probs.resize(logits.rows(), logits.cols());
  const std::size_t n = logits.cols();
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* z = logits.row(r);
    float* p = probs.row(r);
    float zmax = z[0];
    float sum = 0.0f;
    for (std::size_t c = 0; c < n; ++c) {
      if (z[c] > zmax) {
        zmax = z[c];
        sum = 0.0f;
        for (std::size_t j = 0; j < c; ++j) {
          p[j] = std::exp(z[j] - zmax);
          sum += p[j];
        }
      }
      p[c] = std::exp(z[c] - zmax);
      sum += p[c];
    }
    for (std::size_t c = 0; c < n; ++c) p[c] /= sum;
  }
}

void softmax_rows_reference(const Mat& logits, Mat& probs) {
  probs.resize(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* z = logits.row(r);
    float* p = probs.row(r);
    float zmax = z[0];
    for (std::size_t c = 1; c < logits.cols(); ++c) zmax = std::max(zmax, z[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      p[c] = std::exp(z[c] - zmax);
      sum += p[c];
    }
    for (std::size_t c = 0; c < logits.cols(); ++c) p[c] /= sum;
  }
}

double CrossEntropyLoss::compute(const Mat& logits, const std::vector<std::uint8_t>& labels,
                                 Mat& grad) const {
  if (labels.size() != logits.rows())
    throw std::invalid_argument("CrossEntropyLoss: label count mismatch");
  Mat probs;
  softmax_rows(logits, probs);
  grad.resize(logits.rows(), logits.cols());
  double loss = 0.0;
  const auto inv_n = 1.0f / static_cast<float>(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const std::uint8_t y = labels[r];
    const float* p = probs.row(r);
    float* g = grad.row(r);
    loss -= std::log(std::max(p[y], 1e-12f));
    for (std::size_t c = 0; c < logits.cols(); ++c)
      g[c] = (p[c] - (c == y ? 1.0f : 0.0f)) * inv_n;
  }
  return loss / static_cast<double>(logits.rows());
}

FocalLoss::FocalLoss(double gamma, std::array<double, atl03::kNumClasses> alpha)
    : gamma_(gamma), alpha_(alpha) {}

std::array<double, atl03::kNumClasses> FocalLoss::balanced_alpha(
    const std::vector<std::uint8_t>& labels) {
  std::array<double, atl03::kNumClasses> counts{};
  for (auto y : labels)
    if (y < atl03::kNumClasses) counts[y] += 1.0;
  std::array<double, atl03::kNumClasses> alpha{};
  double mean_inv = 0.0;
  for (int c = 0; c < atl03::kNumClasses; ++c) {
    alpha[c] = 1.0 / std::max(counts[c], 1.0);
    mean_inv += alpha[c];
  }
  mean_inv /= atl03::kNumClasses;
  for (auto& a : alpha) a /= mean_inv;  // normalize to mean 1
  return alpha;
}

double FocalLoss::compute(const Mat& logits, const std::vector<std::uint8_t>& labels,
                          Mat& grad) const {
  if (labels.size() != logits.rows())
    throw std::invalid_argument("FocalLoss: label count mismatch");
  if (logits.cols() != atl03::kNumClasses)
    throw std::invalid_argument("FocalLoss: expected kNumClasses logits");
  Mat probs;
  softmax_rows(logits, probs);
  grad.resize(logits.rows(), logits.cols());
  double loss = 0.0;
  const auto inv_n = 1.0 / static_cast<double>(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const std::uint8_t y = labels[r];
    const float* p = probs.row(r);
    float* g = grad.row(r);
    const double pt = std::max(static_cast<double>(p[y]), 1e-12);
    const double a = alpha_[y];
    const double one_m = 1.0 - pt;
    const double pow_g = std::pow(one_m, gamma_);
    loss += -a * pow_g * std::log(pt);

    // dL/dp_t, then chain through softmax: dp_t/dz_c = p_t(delta - p_c).
    const double dL_dpt =
        -a * (pow_g / pt - gamma_ * std::pow(one_m, gamma_ - 1.0) * std::log(pt));
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      const double dpt_dzc = pt * ((c == y ? 1.0 : 0.0) - p[c]);
      g[c] = static_cast<float>(dL_dpt * dpt_dzc * inv_n);
    }
  }
  return loss * inv_n;
}

}  // namespace is2::nn
