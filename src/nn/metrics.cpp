#include "nn/metrics.hpp"

#include <cstdio>
#include <stdexcept>

namespace is2::nn {

void ConfusionMatrix::add(std::uint8_t truth, std::uint8_t predicted) {
  if (truth >= atl03::kNumClasses || predicted >= atl03::kNumClasses)
    throw std::invalid_argument("ConfusionMatrix: class index out of range");
  ++m_[truth][predicted];
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  for (int t = 0; t < atl03::kNumClasses; ++t)
    for (int p = 0; p < atl03::kNumClasses; ++p) m_[t][p] += other.m_[t][p];
}

std::uint64_t ConfusionMatrix::total() const {
  std::uint64_t n = 0;
  for (int t = 0; t < atl03::kNumClasses; ++t) n += row_total(t);
  return n;
}

std::uint64_t ConfusionMatrix::row_total(int truth) const {
  std::uint64_t n = 0;
  for (int p = 0; p < atl03::kNumClasses; ++p) n += m_[truth][p];
  return n;
}

std::uint64_t ConfusionMatrix::col_total(int predicted) const {
  std::uint64_t n = 0;
  for (int t = 0; t < atl03::kNumClasses; ++t) n += m_[t][predicted];
  return n;
}

double ConfusionMatrix::accuracy() const {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  std::uint64_t diag = 0;
  for (int c = 0; c < atl03::kNumClasses; ++c) diag += m_[c][c];
  return static_cast<double>(diag) / static_cast<double>(n);
}

double ConfusionMatrix::precision(int cls) const {
  const std::uint64_t denom = col_total(cls);
  return denom ? static_cast<double>(m_[cls][cls]) / static_cast<double>(denom) : 0.0;
}

double ConfusionMatrix::recall(int cls) const {
  const std::uint64_t denom = row_total(cls);
  return denom ? static_cast<double>(m_[cls][cls]) / static_cast<double>(denom) : 0.0;
}

double ConfusionMatrix::f1(int cls) const {
  const double p = precision(cls), r = recall(cls);
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double ConfusionMatrix::macro_precision() const {
  double s = 0.0;
  for (int c = 0; c < atl03::kNumClasses; ++c) s += precision(c);
  return s / atl03::kNumClasses;
}

double ConfusionMatrix::macro_recall() const {
  double s = 0.0;
  for (int c = 0; c < atl03::kNumClasses; ++c) s += recall(c);
  return s / atl03::kNumClasses;
}

double ConfusionMatrix::macro_f1() const {
  double s = 0.0;
  for (int c = 0; c < atl03::kNumClasses; ++c) s += f1(c);
  return s / atl03::kNumClasses;
}

std::array<double, atl03::kNumClasses> ConfusionMatrix::per_class_recall() const {
  std::array<double, atl03::kNumClasses> out{};
  for (int c = 0; c < atl03::kNumClasses; ++c) out[c] = recall(c);
  return out;
}

std::string ConfusionMatrix::render() const {
  std::string out;
  char buf[160];
  out += "row-normalized confusion matrix [%]\n";
  out += "               thick_ice    thin_ice  open_water\n";
  for (int t = 0; t < atl03::kNumClasses; ++t) {
    const double denom = static_cast<double>(row_total(t));
    std::snprintf(buf, sizeof buf, "%-12s", atl03::to_string(static_cast<atl03::SurfaceClass>(t)));
    out += buf;
    for (int p = 0; p < atl03::kNumClasses; ++p) {
      const double pct = denom > 0.0 ? 100.0 * static_cast<double>(m_[t][p]) / denom : 0.0;
      std::snprintf(buf, sizeof buf, "  %10.2f", pct);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

Metrics compute_metrics(const std::vector<std::uint8_t>& truth,
                        const std::vector<std::uint8_t>& predicted) {
  if (truth.size() != predicted.size())
    throw std::invalid_argument("compute_metrics: size mismatch");
  Metrics m;
  for (std::size_t i = 0; i < truth.size(); ++i) m.confusion.add(truth[i], predicted[i]);
  m.accuracy = m.confusion.accuracy();
  m.precision = m.confusion.macro_precision();
  m.recall = m.confusion.macro_recall();
  m.f1 = m.confusion.macro_f1();
  return m;
}

}  // namespace is2::nn
