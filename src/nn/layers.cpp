#include "nn/layers.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace is2::nn {

float init_bound(std::size_t fan_in, std::size_t fan_out) {
  // Glorot uniform, matching the Keras default the paper's models used.
  return std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
}

Dense::Dense(std::size_t in_dim, std::size_t out_dim, Activation act, util::Rng& rng)
    : w_(out_dim, in_dim), b_(1, out_dim), dw_(out_dim, in_dim), db_(1, out_dim), act_(act) {
  const float bound = init_bound(in_dim, out_dim);
  for (std::size_t i = 0; i < w_.size(); ++i)
    w_.data()[i] = static_cast<float>(rng.uniform(-bound, bound));
}

const Mat& Dense::forward(const Mat& x, bool training) {
  if (training) {
    x_ = x;
    dense_forward_train(x, w_, b_, act_, z_, y_);
  } else {
    // Inference fast path: bias + activation fused into the GEMM epilogue,
    // no input copy, no pre-activation cache. Drop any stale training
    // caches so a later backward() fails loudly instead of using them.
    x_.resize(0, 0);
    z_.resize(0, 0);
    if (w_.rows() >= kDenseFusedColTile) {
      // Wide layer: the packed kernel wants W^T. Reuse the cached transpose
      // across calls; rebuild when the dirty flag is set or the weights no
      // longer match the snapshot the cache was built from (sound against
      // mutation through retained Param views). Bit-identical to
      // transposing per call — same panel values into the same kernel.
      const bool stale =
          wt_dirty_ || wt_src_.size() != w_.size() ||
          std::memcmp(wt_src_.data(), w_.data(), w_.size() * sizeof(float)) != 0;
      if (stale) {
        wt_src_ = w_;
        transpose(w_, wt_);
        wt_dirty_ = false;
      }
      dense_forward_pre(x, wt_, b_, act_, nullptr, y_);
    } else {
      // Narrow logits head: the lane-split row kernel reads w_ directly
      // (no transpose exists to cache).
      dense_forward_fused(x, w_, b_, act_, y_);
    }
  }
  return y_;
}

const Mat& Dense::backward(const Mat& grad_out) {
  if (x_.empty() || z_.empty())
    throw std::logic_error("Dense::backward: requires forward(x, training=true)");
  wt_dirty_ = true;  // an optimizer step will mutate w_ right after this
  if (grad_out.rows() != y_.rows() || grad_out.cols() != y_.cols())
    throw std::invalid_argument("Dense::backward: grad shape mismatch");
  // dz = dy * act'(z)
  Mat dz(grad_out.rows(), grad_out.cols());
  for (std::size_t i = 0; i < dz.size(); ++i)
    dz.data()[i] = grad_out.data()[i] * activate_grad(act_, z_.data()[i], y_.data()[i]);

  gemm_tn(dz, x_, dw_, /*accumulate=*/true);  // dW += dz^T x
  for (std::size_t r = 0; r < dz.rows(); ++r) {
    const float* dzr = dz.row(r);
    for (std::size_t c = 0; c < dz.cols(); ++c) db_.at(0, c) += dzr[c];
  }
  dx_.resize(dz.rows(), w_.cols());
  gemm_nn(dz, w_, dx_);  // dx = dz W
  return dx_;
}

std::vector<Param> Dense::params() {
  wt_dirty_ = true;  // mutable views escape (optimizer steps, weight loads)
  return {{"w", &w_, &dw_}, {"b", &b_, &db_}};
}

Dropout::Dropout(double rate, util::Rng rng) : rate_(rate), rng_(rng) {
  if (rate < 0.0 || rate >= 1.0) throw std::invalid_argument("Dropout: rate must be in [0,1)");
}

const Mat& Dropout::forward(const Mat& x, bool training) {
  y_.resize(x.rows(), x.cols());
  if (!training || rate_ == 0.0) {
    std::copy(x.data(), x.data() + x.size(), y_.data());
    mask_.resize(0, 0);
    return y_;
  }
  mask_.resize(x.rows(), x.cols());
  const auto scale = static_cast<float>(1.0 / (1.0 - rate_));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float m = rng_.bernoulli(rate_) ? 0.0f : scale;
    mask_.data()[i] = m;
    y_.data()[i] = x.data()[i] * m;
  }
  return y_;
}

const Mat& Dropout::backward(const Mat& grad_out) {
  dx_.resize(grad_out.rows(), grad_out.cols());
  if (mask_.empty()) {
    std::copy(grad_out.data(), grad_out.data() + grad_out.size(), dx_.data());
    return dx_;
  }
  for (std::size_t i = 0; i < grad_out.size(); ++i)
    dx_.data()[i] = grad_out.data()[i] * mask_.data()[i];
  return dx_;
}

const Mat& Flatten::forward(const Tensor3& x, bool training) {
  (void)training;
  y_.resize(x.n, x.sample_size());
  std::copy(x.v.begin(), x.v.end(), y_.data());
  return y_;
}

}  // namespace is2::nn
