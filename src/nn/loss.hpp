// Classification losses over logits. Softmax is fused into the loss for
// numerical stability. Focal loss (Lin et al. 2017) is the paper's choice:
// the Ross Sea is overwhelmingly thick ice, so cross-entropy would let the
// model coast on the majority class; focal loss down-weights easy examples
// and per-class alpha re-weights the rare thin-ice/open-water classes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "atl03/types.hpp"
#include "nn/tensor.hpp"

namespace is2::nn {

class Loss {
 public:
  virtual ~Loss() = default;
  /// Mean loss over the batch; fills grad (dL/dlogits, same shape).
  virtual double compute(const Mat& logits, const std::vector<std::uint8_t>& labels,
                         Mat& grad) const = 0;
};

/// Softmax cross-entropy.
class CrossEntropyLoss : public Loss {
 public:
  double compute(const Mat& logits, const std::vector<std::uint8_t>& labels,
                 Mat& grad) const override;
};

/// Softmax focal loss with per-class alpha.
class FocalLoss : public Loss {
 public:
  explicit FocalLoss(double gamma = 2.0,
                     std::array<double, atl03::kNumClasses> alpha = {1.0, 1.0, 1.0});

  double compute(const Mat& logits, const std::vector<std::uint8_t>& labels,
                 Mat& grad) const override;

  /// Alpha from inverse class frequency, normalized to mean 1.
  static std::array<double, atl03::kNumClasses> balanced_alpha(
      const std::vector<std::uint8_t>& labels);

 private:
  double gamma_;
  std::array<double, atl03::kNumClasses> alpha_;
};

/// Row-wise softmax, single-traversal online form (max/exp/sum maintained in
/// one pass; exact recompute on a new running max keeps it bit-identical to
/// the three-pass reference).
void softmax_rows(const Mat& logits, Mat& probs);

/// The original three-pass implementation, kept as the bit-stability oracle
/// for test_nn_core.
void softmax_rows_reference(const Mat& logits, Mat& probs);

}  // namespace is2::nn
