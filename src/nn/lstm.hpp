// LSTM front end (Hochreiter & Schmidhuber 1997), configured as in the
// paper: 16 units, ELU cell activation, input dropout 0.2, consuming the
// 5-step x 6-feature segment sequences and emitting the final hidden state.
// Full backpropagation-through-time; gate order in the fused weight matrices
// is [i, f, g, o] (Keras convention).
#pragma once

#include "nn/layers.hpp"

namespace is2::nn {

class Lstm : public FrontEnd {
 public:
  /// `activation` applies to the candidate cell and the cell output
  /// (Keras `activation=`); gates always use sigmoid.
  Lstm(std::size_t input_dim, std::size_t units, Activation activation, double input_dropout,
       util::Rng& rng);

  const Mat& forward(const Tensor3& x, bool training) override;
  void backward(const Mat& grad_out) override;
  std::vector<Param> params() override;
  std::string name() const override { return "lstm"; }
  std::size_t output_dim(std::size_t, std::size_t) const override { return units_; }

  std::size_t units() const { return units_; }

 private:
  std::size_t input_dim_;
  std::size_t units_;
  Activation act_;
  double dropout_;
  util::Rng dropout_rng_;

  Mat wx_;  // [4U, D]   input weights, gates stacked [i f g o]
  Mat wh_;  // [4U, U]   recurrent weights
  Mat b_;   // [1, 4U]
  Mat dwx_, dwh_, db_;

  // Per-step caches for BPTT (filled by training-mode forward only; the
  // inference path clears them and uses the rolling scratch below).
  std::size_t steps_ = 0;
  std::vector<Mat> xs_;      // dropped-out inputs per step [B, D]
  std::vector<Mat> gates_;   // activated gates per step [B, 4U]
  std::vector<Mat> cs_;      // cell states per step [B, U]
  std::vector<Mat> c_acts_;  // act(c_t) per step
  std::vector<Mat> hs_;      // hidden states per step (hs_[t] = output of step t)
  Mat h_out_;                // final hidden state (forward return)

  // Inference scratch, reused across calls (no per-call allocation at a
  // steady batch shape): gate pre-activations, the current timestep's
  // input slice, and double-buffered cell/hidden state.
  Mat z_scratch_;
  Mat x_scratch_;
  Mat c_roll_[2];
  Mat h_roll_[2];
  /// Weight transposes cached across forward calls; rebuilt when the dirty
  /// flag is set (params() handed out mutable views / backward ran) or when
  /// the weights no longer memcmp-match the snapshots the cache was built
  /// from (sound against mutation through retained Param views). The check
  /// is a sequential streaming pass, far cheaper than the two strided
  /// transposes it avoids; results are bit-identical either way.
  Mat wxt_, wht_;
  Mat wx_src_, wh_src_;  ///< weight snapshots at cache build time
  bool wt_dirty_ = true;

  /// Refresh wxt_/wht_ if stale (shared by both forward paths).
  void refresh_weight_transposes();
};

}  // namespace is2::nn
