#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace is2::nn {

void Optimizer::zero_grad(const std::vector<Param>& params) {
  for (const auto& p : params) p.grad->fill(0.0f);
}

void Sgd::step(const std::vector<Param>& params) {
  for (const auto& p : params) {
    float* w = p.value->data();
    float* g = p.grad->data();
    for (std::size_t i = 0; i < p.value->size(); ++i) {
      w[i] -= static_cast<float>(lr_) * g[i];
      g[i] = 0.0f;
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::step(const std::vector<Param>& params) {
  if (m_.empty()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      m_[i].assign(params[i].value->size(), 0.0f);
      v_[i].assign(params[i].value->size(), 0.0f);
    }
  }
  if (m_.size() != params.size())
    throw std::invalid_argument("Adam: parameter list changed between steps");

  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto& p = params[i];
    if (m_[i].size() != p.value->size())
      throw std::invalid_argument("Adam: parameter size changed between steps");
    float* w = p.value->data();
    float* g = p.grad->data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::size_t j = 0; j < p.value->size(); ++j) {
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * g[j]);
      v[j] = static_cast<float>(beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j]);
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      w[j] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
      g[j] = 0.0f;
    }
  }
}

}  // namespace is2::nn
