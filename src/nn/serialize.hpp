// Model weight (de)serialization on top of the h5lite container — mirrors
// saving a Keras model to HDF5. Loading requires an architecturally
// identical model (same parameter shapes in the same order).
#pragma once

#include <string>

#include "h5lite/h5file.hpp"
#include "nn/model.hpp"

namespace is2::nn {

/// Write all parameters into a container under /model/param_<i>.
h5::File weights_to_file(Sequential& model);

/// Load parameters back; throws on shape/count mismatch.
void weights_from_file(Sequential& model, const h5::File& file);

void save_weights(Sequential& model, const std::string& filename);
void load_weights(Sequential& model, const std::string& filename);

}  // namespace is2::nn
