// Minimal dense linear algebra for the classifier stack: a float matrix, a
// rank-3 tensor for [batch, time, feature] sequences, and the three GEMM
// shapes the layers need. Matrices here are small (batch 32, widths <= 112),
// so kernels favor contiguous inner loops the compiler can vectorize;
// OpenMP kicks in only past a size threshold so the distributed trainer's
// worker threads stay single-threaded and scale cleanly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace is2::nn {

class Mat {
 public:
  Mat() = default;
  Mat(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), d_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return d_.size(); }
  bool empty() const { return d_.empty(); }

  float* row(std::size_t r) { return d_.data() + r * cols_; }
  const float* row(std::size_t r) const { return d_.data() + r * cols_; }
  float& at(std::size_t r, std::size_t c) { return d_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return d_[r * cols_ + c]; }

  float* data() { return d_.data(); }
  const float* data() const { return d_.data(); }
  std::span<float> flat() { return d_; }
  std::span<const float> flat() const { return d_; }

  void fill(float v) { std::fill(d_.begin(), d_.end(), v); }
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    d_.assign(rows * cols, 0.0f);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> d_;
};

/// [n, t, d] sequence batch, contiguous row-major.
struct Tensor3 {
  std::size_t n = 0, t = 0, d = 0;
  std::vector<float> v;

  Tensor3() = default;
  Tensor3(std::size_t n_, std::size_t t_, std::size_t d_) : n(n_), t(t_), d(d_), v(n_ * t_ * d_) {}

  float* at(std::size_t i, std::size_t step) { return v.data() + (i * t + step) * d; }
  const float* at(std::size_t i, std::size_t step) const { return v.data() + (i * t + step) * d; }
  std::size_t sample_size() const { return t * d; }
};

/// C (+)= A * B^T.  A:[m,k] B:[n,k] C:[m,n]
void gemm_nt(const Mat& a, const Mat& b, Mat& c, bool accumulate = false);
/// C (+)= A * B.    A:[m,k] B:[k,n] C:[m,n]
void gemm_nn(const Mat& a, const Mat& b, Mat& c, bool accumulate = false);
/// C (+)= A^T * B.  A:[k,m] B:[k,n] C:[m,n]
void gemm_tn(const Mat& a, const Mat& b, Mat& c, bool accumulate = false);

/// y += x (same shape).
void add_inplace(Mat& y, const Mat& x);

}  // namespace is2::nn
