// Minimal dense linear algebra for the classifier stack: a float matrix, a
// rank-3 tensor for [batch, time, feature] sequences, the three GEMM shapes
// the layers need, and fused dense-layer forward kernels (bias + activation
// epilogues applied while the output tile is still in registers).
//
// Kernel design (see docs/performance.md for the full story):
//  * The production kernels are cache-blocked and register-tiled: gemm_nt
//    accumulates each dot product in a fixed set of kLanes independent
//    partial sums (combined in a fixed order), with a 4-wide tile over
//    output columns so each A-row load is reused; gemm_nn / gemm_tn keep
//    the reference per-element summation order (they vectorize across the
//    contiguous j dimension) and register-tile 4 rows to reuse B-row loads.
//  * Floating-point summation order is fully determined by the code (lane
//    structure + blocking), never by the compiler, SIMD width, OpenMP
//    on/off, or thread count: OpenMP parallelism is over output rows only,
//    so every output element is produced by exactly one thread in a fixed
//    order. Results are bit-identical across IS2_ENABLE_OPENMP=ON/OFF and
//    any OMP_NUM_THREADS.
//  * The pre-tiling scalar kernels are retained as gemm_*_reference: they
//    are the test oracles (property tests in test_nn_kernels) and the
//    baseline bench_nn_kernels measures speedup against. gemm_nn/gemm_tn
//    are bit-identical to their references; gemm_nt's lane decomposition
//    legitimately reorders the k-summation (documented tolerance).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace is2::nn {

class Mat {
 public:
  Mat() = default;
  Mat(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), d_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return d_.size(); }
  bool empty() const { return d_.empty(); }

  float* row(std::size_t r) { return d_.data() + r * cols_; }
  const float* row(std::size_t r) const { return d_.data() + r * cols_; }
  float& at(std::size_t r, std::size_t c) { return d_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return d_[r * cols_ + c]; }

  float* data() { return d_.data(); }
  const float* data() const { return d_.data(); }
  std::span<float> flat() { return d_; }
  std::span<const float> flat() const { return d_; }

  void fill(float v) { std::fill(d_.begin(), d_.end(), v); }
  /// Reshape to rows x cols. A no-op when the shape already matches (the
  /// contents are left as-is so hot loops can reuse scratch matrices with
  /// zero per-call allocation); otherwise the storage is zero-filled.
  void resize(std::size_t rows, std::size_t cols) {
    if (rows == rows_ && cols == cols_) return;
    rows_ = rows;
    cols_ = cols;
    d_.assign(rows * cols, 0.0f);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> d_;
};

/// [n, t, d] sequence batch, contiguous row-major.
struct Tensor3 {
  std::size_t n = 0, t = 0, d = 0;
  std::vector<float> v;

  Tensor3() = default;
  Tensor3(std::size_t n_, std::size_t t_, std::size_t d_) : n(n_), t(t_), d(d_), v(n_ * t_ * d_) {}

  float* at(std::size_t i, std::size_t step) { return v.data() + (i * t + step) * d; }
  const float* at(std::size_t i, std::size_t step) const { return v.data() + (i * t + step) * d; }
  std::size_t sample_size() const { return t * d; }

  /// Reshape, reusing existing capacity (no shrink): the batched predict
  /// path flips between the full batch and the tail batch without churning
  /// the allocator.
  void resize(std::size_t n_, std::size_t t_, std::size_t d_) {
    n = n_;
    t = t_;
    d = d_;
    v.resize(n_ * t_ * d_);
  }
};

/// Activations used by the layers. Lives here (not layers.hpp) so the fused
/// GEMM epilogues below can apply them; layers.hpp re-exports via include.
enum class Activation { Linear, Relu, Elu, Tanh, Sigmoid };

float activate(Activation a, float x);
/// Derivative given pre-activation x and activated value y.
float activate_grad(Activation a, float x, float y);
/// Derivative recovered from the activated value alone (valid for the
/// monotone activations used here; what BPTT uses when z isn't cached).
float activate_grad_from_y(Activation a, float y);

/// C (+)= A * B^T.  A:[m,k] B:[n,k] C:[m,n]
void gemm_nt(const Mat& a, const Mat& b, Mat& c, bool accumulate = false);
/// C (+)= A * B.    A:[m,k] B:[k,n] C:[m,n]
void gemm_nn(const Mat& a, const Mat& b, Mat& c, bool accumulate = false);
/// C (+)= A^T * B.  A:[k,m] B:[k,n] C:[m,n]
void gemm_tn(const Mat& a, const Mat& b, Mat& c, bool accumulate = false);

// Pre-tiling scalar kernels, kept as the test oracle and bench baseline.
void gemm_nt_reference(const Mat& a, const Mat& b, Mat& c, bool accumulate = false);
void gemm_nn_reference(const Mat& a, const Mat& b, Mat& c, bool accumulate = false);
void gemm_tn_reference(const Mat& a, const Mat& b, Mat& c, bool accumulate = false);

/// Output-width threshold of the fused dense forward's kernel dispatch:
/// layers with fewer than this many output columns take the lane-split
/// narrow row kernel (reads W directly, no transpose), wider layers take
/// the packed kernel on a pre-transposed panel. Exposed so callers that
/// pre-transpose and cache W^T themselves (Dense's inference path) dispatch
/// on exactly the same boundary — the two kernels have different float
/// summation orders, so a mismatch would break inference==training
/// bit-identity.
inline constexpr std::size_t kDenseFusedColTile = 4;

/// Fused dense-layer inference forward: y = act(x W^T + b) in a single pass
/// over the output (bias add + activation happen while the block is still
/// register/L1-hot). x:[m,k] w:[n,k] b:[1,n] y:[m,n] (y resized).
/// Summation order: for n >= 4 the packed path seeds the accumulator with
/// the bias and sums over k in increasing order (gemm_nn order); narrower
/// outputs use the lane-split gemm_nt row kernel with the bias added last.
/// Both orders are fixed per layer shape and deterministic everywhere, but
/// NOT bit-identical to the unfused gemm_nt + bias-pass + act composition —
/// property tests bound the drift at 1e-5·(1+sqrt(k)) relative.
void dense_forward_fused(const Mat& x, const Mat& w, const Mat& bias, Activation act, Mat& y);

/// Training variant: additionally stores the pre-activation z (needed by
/// backward) in the same single traversal. z and y are resized.
void dense_forward_train(const Mat& x, const Mat& w, const Mat& bias, Activation act, Mat& z,
                         Mat& y);

/// at = a^T (at resized).
void transpose(const Mat& a, Mat& at);

/// Fused forward on a caller-pretransposed weight panel wt:[k,n] (i.e.
/// W^T): y = act(x wt + b), z_store (nullable) receives the pre-activation.
/// What the LSTM uses so the weight transpose is hoisted out of the
/// per-timestep loop; dense_forward_fused/_train are this plus a transpose.
void dense_forward_pre(const Mat& x, const Mat& wt, const Mat& bias, Activation act,
                       Mat* z_store, Mat& y);

/// y[j] = act(x[j]) over a contiguous range with the switch hoisted out of
/// the element loop (x == y aliasing allowed). The row-granular form the
/// layer epilogues and the LSTM cell share.
void activate_row_copy(Activation act, const float* x, float* y, std::size_t n);

/// y[j] = 1 / (1 + exp(-x[j])) (x == y aliasing allowed).
void sigmoid_row(const float* x, float* y, std::size_t n);

/// y += x (same shape).
void add_inplace(Mat& y, const Mat& x);

}  // namespace is2::nn
