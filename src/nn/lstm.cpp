#include "nn/lstm.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace is2::nn {

Lstm::Lstm(std::size_t input_dim, std::size_t units, Activation activation, double input_dropout,
           util::Rng& rng)
    : input_dim_(input_dim),
      units_(units),
      act_(activation),
      dropout_(input_dropout),
      dropout_rng_(rng.fork(0xD20Full)),
      wx_(4 * units, input_dim),
      wh_(4 * units, units),
      b_(1, 4 * units),
      dwx_(4 * units, input_dim),
      dwh_(4 * units, units),
      db_(1, 4 * units) {
  const float bx = init_bound(input_dim, units);
  for (std::size_t i = 0; i < wx_.size(); ++i)
    wx_.data()[i] = static_cast<float>(rng.uniform(-bx, bx));
  const float bh = init_bound(units, units);
  for (std::size_t i = 0; i < wh_.size(); ++i)
    wh_.data()[i] = static_cast<float>(rng.uniform(-bh, bh));
  // Forget-gate bias starts at 1 (standard trick for gradient flow).
  for (std::size_t u = 0; u < units; ++u) b_.at(0, units + u) = 1.0f;
}

namespace {

/// One timestep's elementwise cell update: gates [i f g o] from the fused
/// pre-activations, then c_t and h_t. Activations run as contiguous
/// per-gate range loops (switch hoisted, sigmoid/ELU applied over whole
/// subranges) rather than a per-element gate interleave. Shared by the
/// training and inference paths so both produce bit-identical states.
/// `g_store` may be null (the inference path keeps no activated gates, in
/// which case z is clobbered in place as the gate buffer), `c_prev` null at
/// t=0.
void lstm_cell_rows(Mat& z, Activation act, std::size_t batch, std::size_t u, const Mat* c_prev,
                    Mat* g_store, Mat& c_out, Mat* c_act_store, Mat& h_out) {
  for (std::size_t i = 0; i < batch; ++i) {
    const float* zr = z.row(i);
    float* gr = g_store ? g_store->row(i) : z.row(i);
    // Gate activations over contiguous stacked ranges [i f g o].
    sigmoid_row(zr, gr, u);                          // i
    sigmoid_row(zr + u, gr + u, u);                  // f
    activate_row_copy(act, zr + 2 * u, gr + 2 * u, u);  // g (cell activation)
    sigmoid_row(zr + 3 * u, gr + 3 * u, u);          // o
    float* cr = c_out.row(i);
    float* car = c_act_store ? c_act_store->row(i) : nullptr;
    float* hr = h_out.row(i);
    const float* cp = c_prev ? c_prev->row(i) : nullptr;
    for (std::size_t q = 0; q < u; ++q)
      cr[q] = gr[u + q] * (cp ? cp[q] : 0.0f) + gr[q] * gr[2 * u + q];
    if (car) {
      activate_row_copy(act, cr, car, u);
      for (std::size_t q = 0; q < u; ++q) hr[q] = gr[3 * u + q] * car[q];
    } else {
      activate_row_copy(act, cr, hr, u);  // h = o * act(c), act staged in h
      for (std::size_t q = 0; q < u; ++q) hr[q] *= gr[3 * u + q];
    }
  }
}

}  // namespace

const Mat& Lstm::forward(const Tensor3& x, bool training) {
  if (x.d != input_dim_) throw std::invalid_argument("Lstm::forward: feature dim mismatch");
  const std::size_t batch = x.n, steps = x.t, u = units_;
  steps_ = steps;

  if (!training) {
    // Inference fast path: no BPTT history — two rolling (c, h) buffers and
    // one z scratch, all members reused across calls so a steady batch
    // shape allocates nothing. Drop stale training caches so backward()
    // after an inference forward fails loudly.
    xs_.clear();
    gates_.clear();
    cs_.clear();
    c_acts_.clear();
    hs_.clear();
    refresh_weight_transposes();  // cached across calls; see lstm.hpp
    z_scratch_.resize(batch, 4 * u);
    x_scratch_.resize(batch, input_dim_);
    c_roll_[0].resize(batch, u);
    c_roll_[1].resize(batch, u);
    h_roll_[0].resize(batch, u);
    h_roll_[1].resize(batch, u);

    for (std::size_t t = 0; t < steps; ++t) {
      Mat& xt = x_scratch_;
      for (std::size_t i = 0; i < batch; ++i) {
        const float* src = x.at(i, t);
        std::copy(src, src + input_dim_, xt.row(i));
      }
      // z = xt Wx^T + b (bias fused, weights pre-transposed once per call),
      // then z += h_{t-1} Wh^T — the same operation order as training.
      dense_forward_pre(xt, wxt_, b_, Activation::Linear, nullptr, z_scratch_);
      const std::size_t cur = t & 1, prev = 1 - cur;
      if (t > 0) gemm_nn(h_roll_[prev], wht_, z_scratch_, /*accumulate=*/true);
      lstm_cell_rows(z_scratch_, act_, batch, u, t > 0 ? &c_roll_[prev] : nullptr,
                     /*g_store=*/nullptr, c_roll_[cur], /*c_act_store=*/nullptr, h_roll_[cur]);
    }
    h_out_ = h_roll_[(steps - 1) & 1];
    return h_out_;
  }

  xs_.assign(steps, Mat(batch, input_dim_));
  gates_.assign(steps, Mat(batch, 4 * u));
  cs_.assign(steps, Mat(batch, u));
  c_acts_.assign(steps, Mat(batch, u));
  hs_.assign(steps, Mat(batch, u));

  const auto drop_scale = static_cast<float>(1.0 / (1.0 - dropout_));
  refresh_weight_transposes();  // cached across calls; see lstm.hpp
  Mat& z = z_scratch_;
  z.resize(batch, 4 * u);

  for (std::size_t t = 0; t < steps; ++t) {
    // Input (with inverted dropout during training).
    Mat& xt = xs_[t];
    for (std::size_t i = 0; i < batch; ++i) {
      const float* src = x.at(i, t);
      float* dst = xt.row(i);
      for (std::size_t dI = 0; dI < input_dim_; ++dI) {
        float v = src[dI];
        if (dropout_ > 0.0) v = dropout_rng_.bernoulli(dropout_) ? 0.0f : v * drop_scale;
        dst[dI] = v;
      }
    }

    // z = xt Wx^T + b, then z += h_{t-1} Wh^T (same order as inference).
    dense_forward_pre(xt, wxt_, b_, Activation::Linear, nullptr, z);
    if (t > 0) gemm_nn(hs_[t - 1], wht_, z, /*accumulate=*/true);

    lstm_cell_rows(z, act_, batch, u, t > 0 ? &cs_[t - 1] : nullptr, &gates_[t], cs_[t],
                   &c_acts_[t], hs_[t]);
  }
  h_out_ = hs_[steps - 1];
  return h_out_;
}

void Lstm::backward(const Mat& grad_out) {
  wt_dirty_ = true;  // an optimizer step will mutate wx_/wh_ right after this
  const std::size_t batch = grad_out.rows(), u = units_;
  if (grad_out.cols() != u) throw std::invalid_argument("Lstm::backward: grad shape mismatch");
  if (hs_.size() != steps_ || steps_ == 0)
    throw std::logic_error("Lstm::backward: requires forward(x, training=true)");

  Mat dh = grad_out;          // dL/dh_t
  Mat dc(batch, u);           // dL/dc_t
  Mat dz(batch, 4 * u);
  Mat dh_prev(batch, u);

  for (std::size_t t = steps_; t-- > 0;) {
    const Mat& g = gates_[t];
    const Mat& ct = cs_[t];
    const Mat& ca = c_acts_[t];

    for (std::size_t i = 0; i < batch; ++i) {
      const float* gr = g.row(i);
      const float* cr = ct.row(i);
      const float* car = ca.row(i);
      const float* dhr = dh.row(i);
      float* dcr = dc.row(i);
      float* dzr = dz.row(i);
      const float* c_prev = t > 0 ? cs_[t - 1].row(i) : nullptr;
      for (std::size_t q = 0; q < u; ++q) {
        const float gi = gr[q], gf = gr[u + q], gg = gr[2 * u + q], go = gr[3 * u + q];
        // h = o * act(c)
        const float dho = dhr[q];
        const float d_go = dho * car[q];
        const float dct = dcr[q] + dho * go * activate_grad(act_, cr[q], car[q]);
        const float c_old = c_prev ? c_prev[q] : 0.0f;
        const float d_gi = dct * gg;
        const float d_gf = dct * c_old;
        const float d_gg = dct * gi;
        dcr[q] = dct * gf;  // flows to dc_{t-1}
        // Through gate nonlinearities (pre-activations z).
        dzr[q] = d_gi * gi * (1.0f - gi);
        dzr[u + q] = d_gf * gf * (1.0f - gf);
        dzr[2 * u + q] = d_gg * activate_grad_from_y(act_, gg);
        dzr[3 * u + q] = d_go * go * (1.0f - go);
      }
    }

    // Parameter grads.
    gemm_tn(dz, xs_[t], dwx_, /*accumulate=*/true);
    if (t > 0) gemm_tn(dz, hs_[t - 1], dwh_, /*accumulate=*/true);
    for (std::size_t i = 0; i < batch; ++i) {
      const float* dzr = dz.row(i);
      for (std::size_t c = 0; c < 4 * u; ++c) db_.at(0, c) += dzr[c];
    }

    // dh_{t-1} = dz Wh (no input gradient needed: features are leaves).
    if (t > 0) {
      gemm_nn(dz, wh_, dh_prev);
      dh = dh_prev;
    }
  }
}

void Lstm::refresh_weight_transposes() {
  const bool stale =
      wt_dirty_ || wx_src_.size() != wx_.size() || wh_src_.size() != wh_.size() ||
      std::memcmp(wx_src_.data(), wx_.data(), wx_.size() * sizeof(float)) != 0 ||
      std::memcmp(wh_src_.data(), wh_.data(), wh_.size() * sizeof(float)) != 0;
  if (!stale) return;
  wx_src_ = wx_;
  wh_src_ = wh_;
  transpose(wx_, wxt_);
  transpose(wh_, wht_);
  wt_dirty_ = false;
}

std::vector<Param> Lstm::params() {
  wt_dirty_ = true;  // mutable views escape (optimizer steps, weight loads)
  return {{"wx", &wx_, &dwx_}, {"wh", &wh_, &dwh_}, {"b", &b_, &db_}};
}

}  // namespace is2::nn
