#include "nn/lstm.hpp"

#include <cmath>
#include <stdexcept>

namespace is2::nn {

Lstm::Lstm(std::size_t input_dim, std::size_t units, Activation activation, double input_dropout,
           util::Rng& rng)
    : input_dim_(input_dim),
      units_(units),
      act_(activation),
      dropout_(input_dropout),
      dropout_rng_(rng.fork(0xD20Full)),
      wx_(4 * units, input_dim),
      wh_(4 * units, units),
      b_(1, 4 * units),
      dwx_(4 * units, input_dim),
      dwh_(4 * units, units),
      db_(1, 4 * units) {
  const float bx = init_bound(input_dim, units);
  for (std::size_t i = 0; i < wx_.size(); ++i)
    wx_.data()[i] = static_cast<float>(rng.uniform(-bx, bx));
  const float bh = init_bound(units, units);
  for (std::size_t i = 0; i < wh_.size(); ++i)
    wh_.data()[i] = static_cast<float>(rng.uniform(-bh, bh));
  // Forget-gate bias starts at 1 (standard trick for gradient flow).
  for (std::size_t u = 0; u < units; ++u) b_.at(0, units + u) = 1.0f;
}

const Mat& Lstm::forward(const Tensor3& x, bool training) {
  if (x.d != input_dim_) throw std::invalid_argument("Lstm::forward: feature dim mismatch");
  const std::size_t batch = x.n, steps = x.t, u = units_;
  steps_ = steps;
  xs_.assign(steps, Mat(batch, input_dim_));
  gates_.assign(steps, Mat(batch, 4 * u));
  cs_.assign(steps, Mat(batch, u));
  c_acts_.assign(steps, Mat(batch, u));
  hs_.assign(steps, Mat(batch, u));

  const auto drop_scale = static_cast<float>(1.0 / (1.0 - dropout_));
  Mat z(batch, 4 * u);

  for (std::size_t t = 0; t < steps; ++t) {
    // Input (with inverted dropout during training).
    Mat& xt = xs_[t];
    for (std::size_t i = 0; i < batch; ++i) {
      const float* src = x.at(i, t);
      float* dst = xt.row(i);
      for (std::size_t dI = 0; dI < input_dim_; ++dI) {
        float v = src[dI];
        if (training && dropout_ > 0.0)
          v = dropout_rng_.bernoulli(dropout_) ? 0.0f : v * drop_scale;
        dst[dI] = v;
      }
    }

    // z = xt Wx^T + h_{t-1} Wh^T + b
    gemm_nt(xt, wx_, z);
    if (t > 0) gemm_nt(hs_[t - 1], wh_, z, /*accumulate=*/true);
    for (std::size_t i = 0; i < batch; ++i) {
      float* zr = z.row(i);
      for (std::size_t c = 0; c < 4 * u; ++c) zr[c] += b_.at(0, c);
    }

    // Gates: [i f g o]; i/f/o sigmoid, g uses the cell activation.
    Mat& g = gates_[t];
    Mat& ct = cs_[t];
    Mat& ca = c_acts_[t];
    Mat& ht = hs_[t];
    for (std::size_t i = 0; i < batch; ++i) {
      const float* zr = z.row(i);
      float* gr = g.row(i);
      float* cr = ct.row(i);
      float* car = ca.row(i);
      float* hr = ht.row(i);
      const float* c_prev = t > 0 ? cs_[t - 1].row(i) : nullptr;
      for (std::size_t q = 0; q < u; ++q) {
        const float gi = activate(Activation::Sigmoid, zr[q]);
        const float gf = activate(Activation::Sigmoid, zr[u + q]);
        const float gg = activate(act_, zr[2 * u + q]);
        const float go = activate(Activation::Sigmoid, zr[3 * u + q]);
        gr[q] = gi;
        gr[u + q] = gf;
        gr[2 * u + q] = gg;
        gr[3 * u + q] = go;
        const float c_old = c_prev ? c_prev[q] : 0.0f;
        cr[q] = gf * c_old + gi * gg;
        car[q] = activate(act_, cr[q]);
        hr[q] = go * car[q];
      }
    }
  }
  h_out_ = hs_[steps - 1];
  return h_out_;
}

void Lstm::backward(const Mat& grad_out) {
  const std::size_t batch = grad_out.rows(), u = units_;
  if (grad_out.cols() != u) throw std::invalid_argument("Lstm::backward: grad shape mismatch");

  Mat dh = grad_out;          // dL/dh_t
  Mat dc(batch, u);           // dL/dc_t
  Mat dz(batch, 4 * u);
  Mat dh_prev(batch, u);

  for (std::size_t t = steps_; t-- > 0;) {
    const Mat& g = gates_[t];
    const Mat& ct = cs_[t];
    const Mat& ca = c_acts_[t];

    for (std::size_t i = 0; i < batch; ++i) {
      const float* gr = g.row(i);
      const float* cr = ct.row(i);
      const float* car = ca.row(i);
      const float* dhr = dh.row(i);
      float* dcr = dc.row(i);
      float* dzr = dz.row(i);
      const float* c_prev = t > 0 ? cs_[t - 1].row(i) : nullptr;
      for (std::size_t q = 0; q < u; ++q) {
        const float gi = gr[q], gf = gr[u + q], gg = gr[2 * u + q], go = gr[3 * u + q];
        // h = o * act(c)
        const float dho = dhr[q];
        const float d_go = dho * car[q];
        const float dct = dcr[q] + dho * go * activate_grad(act_, cr[q], car[q]);
        const float c_old = c_prev ? c_prev[q] : 0.0f;
        const float d_gi = dct * gg;
        const float d_gf = dct * c_old;
        const float d_gg = dct * gi;
        dcr[q] = dct * gf;  // flows to dc_{t-1}
        // Through gate nonlinearities (pre-activations z).
        dzr[q] = d_gi * gi * (1.0f - gi);
        dzr[u + q] = d_gf * gf * (1.0f - gf);
        dzr[2 * u + q] = d_gg * activate_grad_from_y(act_, gg);
        dzr[3 * u + q] = d_go * go * (1.0f - go);
      }
    }

    // Parameter grads.
    gemm_tn(dz, xs_[t], dwx_, /*accumulate=*/true);
    if (t > 0) gemm_tn(dz, hs_[t - 1], dwh_, /*accumulate=*/true);
    for (std::size_t i = 0; i < batch; ++i) {
      const float* dzr = dz.row(i);
      for (std::size_t c = 0; c < 4 * u; ++c) db_.at(0, c) += dzr[c];
    }

    // dh_{t-1} = dz Wh (no input gradient needed: features are leaves).
    if (t > 0) {
      gemm_nn(dz, wh_, dh_prev);
      dh = dh_prev;
    }
  }
}

std::vector<Param> Lstm::params() {
  return {{"wx", &wx_, &dwx_}, {"wh", &wh_, &dwh_}, {"b", &b_, &db_}};
}

}  // namespace is2::nn
