// Reference ground track geometry. ATL03 beams follow near-straight lines in
// the polar stereographic plane at Ross Sea scales; a track is parameterized
// by along-track distance s (meters) from its start point.
#pragma once

#include <span>
#include <vector>

#include "geo/polar_stereo.hpp"

namespace is2::geo {

/// Straight reference ground track in projected coordinates.
class GroundTrack {
 public:
  /// `origin`: projected start point; `heading_rad`: direction of travel in
  /// the projected plane (0 = +x, pi/2 = +y).
  GroundTrack(Xy origin, double heading_rad);

  /// Projected position at along-track distance s.
  Xy at(double s) const;
  /// Along-track distance of the projection of `p` onto the track.
  double along_track(const Xy& p) const;
  /// Signed cross-track distance of `p` (positive to the left of travel).
  double cross_track(const Xy& p) const;

  Xy origin() const { return origin_; }
  double heading() const { return heading_; }

  /// Offset a track laterally (used for the three strong beams, which sit
  /// ~3.3 km apart across-track).
  GroundTrack offset(double cross_track_m) const;

 private:
  Xy origin_;
  double heading_;
  double dir_x_;
  double dir_y_;
};

/// Cumulative chord-length along a polyline of projected points.
std::vector<double> cumulative_distance(std::span<const Xy> points);

}  // namespace is2::geo
