// Geophysical height corrections applied to ATL03 photon heights before sea
// surface work (ATL03 ATBD [25]: ocean tide, solid-earth tide, inverted
// barometer, geoid/mean-sea-surface). The real products interpolate global
// model grids; here each term is a smooth parametric field with realistic
// amplitude and wavelength so the correction code path (and the residual sea
// surface left *after* correction) behaves like the real data.
#pragma once

#include <cstdint>

namespace is2::geo {

/// Long-wavelength geoid/mean-sea-surface undulation in projected (x,y)
/// meters -> undulation meters relative to the WGS84 ellipsoid.
class GeoidModel {
 public:
  explicit GeoidModel(std::uint64_t seed = 1);
  double undulation(double x, double y) const;

 private:
  // Superposition of a handful of plane waves (amplitude, kx, ky, phase).
  static constexpr int kWaves = 6;
  double amp_[kWaves];
  double kx_[kWaves];
  double ky_[kWaves];
  double phase_[kWaves];
  double offset_;
};

/// Ocean tide height from the four dominant constituents (M2, S2, K1, O1)
/// with spatially varying amplitude and phase.
class TideModel {
 public:
  explicit TideModel(std::uint64_t seed = 2);
  /// `t_s`: seconds since campaign epoch; (x, y) projected meters.
  double tide(double t_s, double x, double y) const;

 private:
  static constexpr int kConstituents = 4;
  double amp_[kConstituents];
  double omega_[kConstituents];   // rad/s
  double phase_x_[kConstituents]; // rad/m — phase advance across the region
  double phase_y_[kConstituents];
  double phase0_[kConstituents];
};

/// Inverted barometer: -9.948 mm per hPa of sea-level-pressure anomaly,
/// with a slowly moving synoptic pressure field.
class InvertedBarometerModel {
 public:
  explicit InvertedBarometerModel(std::uint64_t seed = 3);
  double correction(double t_s, double x, double y) const;

 private:
  double amp_hpa_;
  double kx_;
  double ky_;
  double omega_;
  double phase_;
};

/// Bundle used by the preprocessing stage: total height correction to
/// subtract from ellipsoidal photon heights.
class GeoCorrections {
 public:
  explicit GeoCorrections(std::uint64_t seed = 7);

  double total(double t_s, double x, double y) const;

  const GeoidModel& geoid() const { return geoid_; }
  const TideModel& tide() const { return tide_; }
  const InvertedBarometerModel& inverted_barometer() const { return ib_; }

 private:
  GeoidModel geoid_;
  TideModel tide_;
  InvertedBarometerModel ib_;
};

}  // namespace is2::geo
