// Ellipsoidal polar stereographic projection (Snyder 1987, eqs. 15-9, 14-15,
// 21-33..21-41). The paper projects both IS2 ATL03 photons and Sentinel-2
// pixels into EPSG:3976 (WGS84 / NSIDC Sea Ice Polar Stereographic South,
// standard parallel 70°S, central meridian 0°) so the two datasets share a
// grid for overlay and auto-labeling; epsg3976() builds that instance.
#pragma once

namespace is2::geo {

/// Projected coordinates in meters.
struct Xy {
  double x = 0.0;
  double y = 0.0;
};

/// Geodetic coordinates in degrees.
struct LonLat {
  double lon = 0.0;
  double lat = 0.0;
};

class PolarStereo {
 public:
  enum class Hemisphere { North, South };

  /// `lat_ts_deg`: latitude of true scale (standard parallel), signed.
  /// `lon0_deg`: central meridian.
  PolarStereo(Hemisphere hemisphere, double lat_ts_deg, double lon0_deg);

  /// EPSG:3976 — the projection used by the paper for IS2/S2 co-registration.
  static PolarStereo epsg3976();
  /// EPSG:3413 — northern-hemisphere counterpart (lat_ts 70N, lon0 -45).
  static PolarStereo epsg3413();

  Xy forward(const LonLat& ll) const;
  LonLat inverse(const Xy& xy) const;

  /// Map scale factor at a given latitude (1 at the standard parallel).
  double scale_factor(double lat_deg) const;

  Hemisphere hemisphere() const { return hemisphere_; }

 private:
  double t_of_lat(double lat_rad) const;  // Snyder 15-9 (north-aspect latitude)

  Hemisphere hemisphere_;
  double lon0_rad_;
  double t_c_;   // t at the standard parallel
  double m_c_;   // m at the standard parallel
  double e_;     // first eccentricity
};

}  // namespace is2::geo
