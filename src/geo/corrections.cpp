#include "geo/corrections.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace is2::geo {

namespace {
constexpr double two_pi = 6.283185307179586476925286766559;
}

GeoidModel::GeoidModel(std::uint64_t seed) {
  util::Rng rng(util::hash64(seed ^ 0x6E01Dull));
  // Residual geoid relative to mean sea surface: decimeter-level amplitude at
  // 50–400 km wavelength, plus the large constant offset of the Ross Sea
  // geoid below the ellipsoid.
  offset_ = -55.0;
  for (int i = 0; i < kWaves; ++i) {
    amp_[i] = rng.uniform(0.05, 0.25);
    const double wavelength = rng.uniform(5.0e4, 4.0e5);
    const double theta = rng.uniform(0.0, two_pi);
    kx_[i] = two_pi / wavelength * std::cos(theta);
    ky_[i] = two_pi / wavelength * std::sin(theta);
    phase_[i] = rng.uniform(0.0, two_pi);
  }
}

double GeoidModel::undulation(double x, double y) const {
  double u = offset_;
  for (int i = 0; i < kWaves; ++i) u += amp_[i] * std::sin(kx_[i] * x + ky_[i] * y + phase_[i]);
  return u;
}

TideModel::TideModel(std::uint64_t seed) {
  util::Rng rng(util::hash64(seed ^ 0x71DEull));
  // Constituent periods in hours: M2 12.42, S2 12.00, K1 23.93, O1 25.82.
  const double periods_h[kConstituents] = {12.4206, 12.0, 23.9345, 25.8193};
  const double base_amp[kConstituents] = {0.30, 0.12, 0.18, 0.10};
  for (int i = 0; i < kConstituents; ++i) {
    amp_[i] = base_amp[i] * rng.uniform(0.8, 1.2);
    omega_[i] = two_pi / (periods_h[i] * 3600.0);
    // Tidal phase sweeps across the region over ~1000 km scales.
    phase_x_[i] = rng.uniform(-1.0, 1.0) * two_pi / 1.0e6;
    phase_y_[i] = rng.uniform(-1.0, 1.0) * two_pi / 1.0e6;
    phase0_[i] = rng.uniform(0.0, two_pi);
  }
}

double TideModel::tide(double t_s, double x, double y) const {
  double h = 0.0;
  for (int i = 0; i < kConstituents; ++i)
    h += amp_[i] * std::cos(omega_[i] * t_s + phase_x_[i] * x + phase_y_[i] * y + phase0_[i]);
  return h;
}

InvertedBarometerModel::InvertedBarometerModel(std::uint64_t seed) {
  util::Rng rng(util::hash64(seed ^ 0x1BABull));
  amp_hpa_ = rng.uniform(8.0, 18.0);          // synoptic pressure anomaly amplitude
  const double wavelength = rng.uniform(8.0e5, 2.0e6);  // cyclone scale
  const double theta = rng.uniform(0.0, two_pi);
  kx_ = two_pi / wavelength * std::cos(theta);
  ky_ = two_pi / wavelength * std::sin(theta);
  omega_ = two_pi / (rng.uniform(3.0, 7.0) * 86400.0);  // multi-day evolution
  phase_ = rng.uniform(0.0, two_pi);
}

double InvertedBarometerModel::correction(double t_s, double x, double y) const {
  const double anomaly_hpa = amp_hpa_ * std::sin(kx_ * x + ky_ * y + omega_ * t_s + phase_);
  return -9.948e-3 * anomaly_hpa;  // m per hPa (ATL03 ATBD convention)
}

GeoCorrections::GeoCorrections(std::uint64_t seed)
    : geoid_(seed * 3 + 1), tide_(seed * 3 + 2), ib_(seed * 3 + 3) {}

double GeoCorrections::total(double t_s, double x, double y) const {
  return geoid_.undulation(x, y) + tide_.tide(t_s, x, y) + ib_.correction(t_s, x, y);
}

}  // namespace is2::geo
