// WGS84 ellipsoid constants shared by the projection and correction models.
// ATL03 photon heights are referenced to the WGS84 ellipsoid (ITRF2014); the
// pipeline keeps that convention throughout.
#pragma once

#include <cmath>

namespace is2::geo {

struct Wgs84 {
  static constexpr double a = 6378137.0;                 // semi-major axis [m]
  static constexpr double f = 1.0 / 298.257223563;       // flattening
  static constexpr double b = a * (1.0 - f);             // semi-minor axis [m]
  static constexpr double e2 = f * (2.0 - f);            // first eccentricity^2
};

inline constexpr double pi = 3.14159265358979323846;

inline constexpr double deg2rad(double d) { return d * pi / 180.0; }
inline constexpr double rad2deg(double r) { return r * 180.0 / pi; }

}  // namespace is2::geo
