#include "geo/track.hpp"

#include <cmath>

namespace is2::geo {

GroundTrack::GroundTrack(Xy origin, double heading_rad)
    : origin_(origin),
      heading_(heading_rad),
      dir_x_(std::cos(heading_rad)),
      dir_y_(std::sin(heading_rad)) {}

Xy GroundTrack::at(double s) const { return {origin_.x + s * dir_x_, origin_.y + s * dir_y_}; }

double GroundTrack::along_track(const Xy& p) const {
  return (p.x - origin_.x) * dir_x_ + (p.y - origin_.y) * dir_y_;
}

double GroundTrack::cross_track(const Xy& p) const {
  return -(p.x - origin_.x) * dir_y_ + (p.y - origin_.y) * dir_x_;
}

GroundTrack GroundTrack::offset(double cross_track_m) const {
  // Left-of-travel normal is (-dir_y, dir_x).
  return GroundTrack({origin_.x - cross_track_m * dir_y_, origin_.y + cross_track_m * dir_x_},
                     heading_);
}

std::vector<double> cumulative_distance(std::span<const Xy> points) {
  std::vector<double> s(points.size(), 0.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double dx = points[i].x - points[i - 1].x;
    const double dy = points[i].y - points[i - 1].y;
    s[i] = s[i - 1] + std::hypot(dx, dy);
  }
  return s;
}

}  // namespace is2::geo
