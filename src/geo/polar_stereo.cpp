#include "geo/polar_stereo.hpp"

#include <cmath>
#include <stdexcept>

#include "geo/wgs84.hpp"

namespace is2::geo {

PolarStereo::PolarStereo(Hemisphere hemisphere, double lat_ts_deg, double lon0_deg)
    : hemisphere_(hemisphere), lon0_rad_(deg2rad(lon0_deg)), e_(std::sqrt(Wgs84::e2)) {
  // Work in the north aspect internally; the south aspect negates inputs and
  // outputs (Snyder p.161). The standard parallel is converted accordingly.
  const double lat_c = hemisphere_ == Hemisphere::South ? -lat_ts_deg : lat_ts_deg;
  if (lat_c <= 0.0 || lat_c > 90.0)
    throw std::invalid_argument("PolarStereo: standard parallel must be in the chosen hemisphere");
  const double phi_c = deg2rad(lat_c);
  t_c_ = t_of_lat(phi_c);
  const double s = std::sin(phi_c);
  m_c_ = std::cos(phi_c) / std::sqrt(1.0 - Wgs84::e2 * s * s);
}

PolarStereo PolarStereo::epsg3976() { return PolarStereo(Hemisphere::South, -70.0, 0.0); }

PolarStereo PolarStereo::epsg3413() { return PolarStereo(Hemisphere::North, 70.0, -45.0); }

double PolarStereo::t_of_lat(double lat_rad) const {
  // Snyder eq. 15-9.
  const double s = std::sin(lat_rad);
  return std::tan(pi / 4.0 - lat_rad / 2.0) /
         std::pow((1.0 - e_ * s) / (1.0 + e_ * s), e_ / 2.0);
}

Xy PolarStereo::forward(const LonLat& ll) const {
  const bool south = hemisphere_ == Hemisphere::South;
  const double phi = deg2rad(south ? -ll.lat : ll.lat);
  const double lam = deg2rad(south ? -ll.lon : ll.lon);
  const double lam0 = south ? -lon0_rad_ : lon0_rad_;
  if (phi < 0.0)
    throw std::invalid_argument("PolarStereo::forward: point in the opposite hemisphere");

  const double t = t_of_lat(phi);
  const double rho = Wgs84::a * m_c_ * t / t_c_;  // Snyder 21-34
  const double dlam = lam - lam0;
  double x = rho * std::sin(dlam);   // Snyder 21-30
  double y = -rho * std::cos(dlam);  // Snyder 21-31
  if (south) {
    x = -x;
    y = -y;
  }
  return {x, y};
}

LonLat PolarStereo::inverse(const Xy& xy) const {
  const bool south = hemisphere_ == Hemisphere::South;
  const double x = south ? -xy.x : xy.x;
  const double y = south ? -xy.y : xy.y;
  const double lam0 = south ? -lon0_rad_ : lon0_rad_;

  const double rho = std::hypot(x, y);
  const double t = rho * t_c_ / (Wgs84::a * m_c_);  // Snyder 21-39
  // Conformal latitude, then the series expansion Snyder eq. 3-5.
  const double chi = pi / 2.0 - 2.0 * std::atan(t);
  const double e2 = Wgs84::e2;
  const double e4 = e2 * e2;
  const double e6 = e4 * e2;
  const double e8 = e6 * e2;
  const double phi =
      chi + (e2 / 2.0 + 5.0 * e4 / 24.0 + e6 / 12.0 + 13.0 * e8 / 360.0) * std::sin(2.0 * chi) +
      (7.0 * e4 / 48.0 + 29.0 * e6 / 240.0 + 811.0 * e8 / 11520.0) * std::sin(4.0 * chi) +
      (7.0 * e6 / 120.0 + 81.0 * e8 / 1120.0) * std::sin(6.0 * chi) +
      (4279.0 * e8 / 161280.0) * std::sin(8.0 * chi);
  const double lam = rho == 0.0 ? lam0 : lam0 + std::atan2(x, -y);  // Snyder 20-16

  double lat = rad2deg(phi);
  double lon = rad2deg(lam);
  if (south) {
    lat = -lat;
    lon = -lon;
  }
  // Normalize longitude to [-180, 180).
  while (lon >= 180.0) lon -= 360.0;
  while (lon < -180.0) lon += 360.0;
  return {lon, lat};
}

double PolarStereo::scale_factor(double lat_deg) const {
  const bool south = hemisphere_ == Hemisphere::South;
  const double phi = deg2rad(south ? -lat_deg : lat_deg);
  const double s = std::sin(phi);
  const double m = std::cos(phi) / std::sqrt(1.0 - Wgs84::e2 * s * s);
  if (m == 0.0) {
    // Scale at the pole: k0 = (m_c / t_c) * sqrt((1+e)^(1+e) (1-e)^(1-e)) / 2
    const double k0 = m_c_ / t_c_ *
                      std::sqrt(std::pow(1.0 + e_, 1.0 + e_) * std::pow(1.0 - e_, 1.0 - e_)) / 2.0;
    return k0;
  }
  const double t = t_of_lat(phi);
  return m_c_ * t / (t_c_ * m);
}

}  // namespace is2::geo
