// First-photon bias correction.
//
// Single-photon detectors go blind for a dead time after each trigger, so on
// bright (multi-photon) returns the recorded heights skew toward the first
// (highest) photons, biasing the window mean high by ~mm-cm depending on
// return rate and surface spread. ATL03 ships a correction derived from the
// instrument model; here the corrector calibrates itself by Monte-Carlo
// simulation of the same dead-time model the photon simulator applies, then
// corrects segment means via bilinear interpolation of the (rate, sigma)
// bias table.
#pragma once

#include <cstdint>
#include <vector>

#include "resample/segmenter.hpp"

namespace is2::resample {

class FirstPhotonBiasCorrector {
 public:
  /// `dead_time_m` and `channels` must match the instrument (ATLAS strong
  /// beams: 16 channels); the table spans rate in [0.25, 10] photons/shot
  /// and sigma in [0.01, 0.25] m.
  explicit FirstPhotonBiasCorrector(double dead_time_m = 0.45, int channels = 16,
                                    std::uint64_t seed = 0xF1B5);

  /// Expected bias of the mean recorded height for a surface return with the
  /// given per-shot photon rate and per-photon height sigma. Positive = the
  /// measurement reads high.
  double bias(double rate_per_shot, double sigma_m) const;

  /// Subtract the estimated bias from each segment's h_mean/h_median.
  void apply(std::vector<Segment>& segments) const;

  double dead_time_m() const { return dead_time_m_; }
  int channels() const { return channels_; }

 private:
  double calibrate_cell(double rate, double sigma, std::uint64_t seed) const;

  double dead_time_m_;
  int channels_;
  std::vector<double> rate_grid_;
  std::vector<double> sigma_grid_;
  std::vector<double> table_;  // [rate][sigma], row-major
};

}  // namespace is2::resample
