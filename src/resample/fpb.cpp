#include "resample/fpb.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "util/rng.hpp"

namespace is2::resample {

FirstPhotonBiasCorrector::FirstPhotonBiasCorrector(double dead_time_m, int channels,
                                                   std::uint64_t seed)
    : dead_time_m_(dead_time_m), channels_(std::max(channels, 1)) {
  for (double r = 0.25; r <= 10.01; r += 0.75) rate_grid_.push_back(r);
  for (double s = 0.01; s <= 0.2501; s += 0.03) sigma_grid_.push_back(s);
  table_.resize(rate_grid_.size() * sigma_grid_.size());
  for (std::size_t i = 0; i < rate_grid_.size(); ++i)
    for (std::size_t j = 0; j < sigma_grid_.size(); ++j)
      table_[i * sigma_grid_.size() + j] =
          calibrate_cell(rate_grid_[i], sigma_grid_[j],
                         seed ^ (i * 0x9E3779B9ull) ^ (j * 0x85EBCA6Bull));
}

double FirstPhotonBiasCorrector::calibrate_cell(double rate, double sigma,
                                                std::uint64_t seed) const {
  // Monte-Carlo: the expectation of the mean *recorded* height when the true
  // surface is at 0 and the detector applies the dead-time rule.
  util::Rng rng(util::hash64(seed));
  constexpr int kShots = 4000;
  double sum = 0.0;
  std::size_t count = 0;
  std::vector<double> shot;
  std::vector<double> blind_until(static_cast<std::size_t>(channels_));
  std::vector<bool> blind(static_cast<std::size_t>(channels_));
  for (int k = 0; k < kShots; ++k) {
    const int n = rng.poisson(rate);
    if (n == 0) continue;
    shot.clear();
    for (int p = 0; p < n; ++p) shot.push_back(sigma * rng.normal());
    std::sort(shot.begin(), shot.end(), std::greater<>());
    std::fill(blind.begin(), blind.end(), false);
    for (double h : shot) {
      const auto ch = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(channels_) - 1));
      if (blind[ch] && h > blind_until[ch]) continue;
      blind[ch] = true;
      blind_until[ch] = h - dead_time_m_;
      sum += h;
      ++count;
    }
  }
  return count ? sum / static_cast<double>(count) : 0.0;
}

double FirstPhotonBiasCorrector::bias(double rate_per_shot, double sigma_m) const {
  const auto clampi = [](double v, const std::vector<double>& grid) {
    return std::clamp(v, grid.front(), grid.back());
  };
  const double r = clampi(rate_per_shot, rate_grid_);
  const double s = clampi(sigma_m, sigma_grid_);

  const auto cell = [](double v, const std::vector<double>& grid) {
    auto it = std::upper_bound(grid.begin(), grid.end(), v);
    std::size_t hi = static_cast<std::size_t>(it - grid.begin());
    hi = std::clamp<std::size_t>(hi, 1, grid.size() - 1);
    const std::size_t lo = hi - 1;
    const double w = (v - grid[lo]) / (grid[hi] - grid[lo]);
    return std::pair<std::size_t, double>(lo, w);
  };
  const auto [ri, rw] = cell(r, rate_grid_);
  const auto [si, sw] = cell(s, sigma_grid_);
  const std::size_t ns = sigma_grid_.size();
  const double v00 = table_[ri * ns + si];
  const double v10 = table_[(ri + 1) * ns + si];
  const double v01 = table_[ri * ns + si + 1];
  const double v11 = table_[(ri + 1) * ns + si + 1];
  const double top = v00 * (1.0 - rw) + v10 * rw;
  const double bot = v01 * (1.0 - rw) + v11 * rw;
  return top * (1.0 - sw) + bot * sw;
}

void FirstPhotonBiasCorrector::apply(std::vector<Segment>& segments) const {
  for (auto& seg : segments) {
    const double b = bias(seg.photon_rate, seg.h_std);
    seg.h_mean -= b;
    seg.h_median -= b;
  }
}

}  // namespace is2::resample
