// 2m resampling of ATL03 photon series (the paper's core data reduction:
// ATL07/ATL10 aggregate 150 photons over 10-200m; this pipeline aggregates
// whatever falls in a fixed 2m window to keep resolution).
//
// Each 2m window yields the statistics the paper lists (mean/median/std of
// height, photon counts, background rate) and the derived 6-feature vector
// used by the classifiers: elevation, elevation std, photon rate, photon
// rate change, background rate, background rate change.
#pragma once

#include <cstdint>
#include <vector>

#include "atl03/preprocess.hpp"
#include "atl03/types.hpp"

namespace is2::resample {

struct SegmenterConfig {
  double window_m = 2.0;        ///< resampling window (paper: 2 m)
  double shot_spacing_m = 0.7;  ///< to convert counts into per-shot rates
  std::size_t min_photons = 1;  ///< windows with fewer photons are dropped
};

/// One resampled along-track segment.
struct Segment {
  double s = 0.0;        ///< window center along-track [m]
  double t = 0.0;        ///< mean photon time [s since epoch]
  double x = 0.0;        ///< projected window center (EPSG:3976)
  double y = 0.0;
  double h_mean = 0.0;   ///< mean corrected height [m]
  double h_median = 0.0;
  double h_std = 0.0;
  double h_min = 0.0;
  std::uint32_t n_photons = 0;
  double photon_rate = 0.0;   ///< photons per shot in this window
  double bckgrd_rate = 0.0;   ///< mean background rate [Hz]
  atl03::SurfaceClass truth = atl03::SurfaceClass::Unknown;  ///< majority photon truth
};

/// The paper's six classification features for one segment.
struct FeatureRow {
  static constexpr int kDim = 6;
  float v[kDim] = {};
  // v[0] elevation (relative to rolling sea-level proxy)
  // v[1] height std dev
  // v[2] photon rate (high-confidence photons per shot)
  // v[3] photon rate change vs previous segment
  // v[4] background rate (MHz)
  // v[5] background rate change vs previous segment
};

/// Resample a preprocessed beam into 2m segments (windows in [0, s_max]).
std::vector<Segment> resample(const atl03::PreprocessedBeam& beam,
                              const SegmenterConfig& config = {});

/// Rolling low-percentile height baseline used as a sea-level proxy when
/// building the relative-elevation feature (and by the drift estimator).
/// Returns one baseline value per segment. Runs in O(n log w) via
/// util::RollingPercentile, bit-identical to rolling_baseline_reference.
std::vector<double> rolling_baseline(const std::vector<Segment>& segments,
                                     double window_m = 10'000.0, double percentile = 5.0);

/// Reference oracle for rolling_baseline: recomputes the percentile from a
/// freshly gathered window at every step (O(n·w) with a sort-based
/// percentile per window). Kept for property tests and benchmark guards;
/// production code should call rolling_baseline.
std::vector<double> rolling_baseline_reference(const std::vector<Segment>& segments,
                                               double window_m = 10'000.0,
                                               double percentile = 5.0);

/// Build feature rows; `baseline` must be rolling_baseline(segments) or
/// empty (absolute elevation is then used). The photon-rate and
/// background-rate deltas (v[3]/v[5]) difference against the previous
/// segment only when it is within `max_gap_m` along-track (default 1.5x the
/// nominal 2 m window, so any window dropped by min_photons breaks the
/// chain); across larger gaps the deltas are zeroed like at a track start.
/// Pass max_gap_m <= 0 to difference unconditionally (legacy behavior).
std::vector<FeatureRow> to_features(const std::vector<Segment>& segments,
                                    const std::vector<double>& baseline,
                                    double max_gap_m = 3.0);

/// Feature-wise standardization parameters (fit on training data only).
struct FeatureScaler {
  float mean[FeatureRow::kDim] = {};
  float std[FeatureRow::kDim] = {};

  static FeatureScaler fit(const std::vector<FeatureRow>& rows);
  void apply(std::vector<FeatureRow>& rows) const;
};

}  // namespace is2::resample
