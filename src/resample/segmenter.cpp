#include "resample/segmenter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rolling_percentile.hpp"
#include "util/stats.hpp"

namespace is2::resample {

using atl03::SurfaceClass;

std::vector<Segment> resample(const atl03::PreprocessedBeam& beam, const SegmenterConfig& cfg) {
  if (cfg.window_m <= 0.0) throw std::invalid_argument("resample: window must be positive");
  std::vector<Segment> out;
  if (beam.s.empty()) return out;

  const double s0 = std::floor(beam.s.front() / cfg.window_m) * cfg.window_m;
  const double shots_per_window = cfg.window_m / cfg.shot_spacing_m;

  std::size_t i = 0;
  const std::size_t n = beam.s.size();
  std::vector<double> heights;
  while (i < n) {
    const auto w = static_cast<std::size_t>((beam.s[i] - s0) / cfg.window_m);
    const double w_begin = s0 + static_cast<double>(w) * cfg.window_m;
    const double w_end = w_begin + cfg.window_m;

    // Gather the photon run of this window (input is along-track sorted).
    heights.clear();
    double t_sum = 0.0, x_sum = 0.0, y_sum = 0.0, bg_sum = 0.0;
    std::uint32_t counts[3] = {0, 0, 0};
    std::size_t j = i;
    for (; j < n && beam.s[j] < w_end; ++j) {
      heights.push_back(beam.h[j]);
      t_sum += beam.t[j];
      x_sum += beam.x[j];
      y_sum += beam.y[j];
      bg_sum += beam.bckgrd_rate[j];
      if (!beam.truth_class.empty() && beam.truth_class[j] < 3) ++counts[beam.truth_class[j]];
    }
    const std::size_t m = j - i;
    i = j;
    if (m < cfg.min_photons) continue;

    Segment seg;
    seg.s = w_begin + cfg.window_m / 2.0;
    const auto dm = static_cast<double>(m);
    seg.t = t_sum / dm;
    seg.x = x_sum / dm;
    seg.y = y_sum / dm;
    seg.h_mean = util::mean(heights);
    seg.h_median = util::median(heights);
    seg.h_std = util::stddev(heights);
    seg.h_min = *std::min_element(heights.begin(), heights.end());
    seg.n_photons = static_cast<std::uint32_t>(m);
    seg.photon_rate = dm / shots_per_window;
    seg.bckgrd_rate = bg_sum / dm;
    if (!beam.truth_class.empty()) {
      std::uint32_t best = 0;
      for (std::uint32_t c = 1; c < 3; ++c)
        if (counts[c] > counts[best]) best = c;
      seg.truth = counts[best] > 0 ? static_cast<SurfaceClass>(best) : SurfaceClass::Unknown;
    }
    out.push_back(seg);
  }
  return out;
}

std::vector<double> rolling_baseline(const std::vector<Segment>& segments, double window_m,
                                     double percentile) {
  std::vector<double> baseline(segments.size(), 0.0);
  if (segments.empty()) return baseline;

  // Two-pointer sliding window over the along-track-sorted segments. The
  // window contents change by a handful of segments per step, so the
  // percentile is maintained incrementally by a streaming order-statistics
  // engine instead of re-sorted from scratch: O(n log w) overall, and
  // bit-identical to util::percentile on the same window (see
  // rolling_baseline_reference, the test oracle).
  util::RollingPercentile window(percentile);
  std::size_t lo = 0, hi = 0;
  for (std::size_t k = 0; k < segments.size(); ++k) {
    const double s = segments[k].s;
    while (hi < segments.size() && segments[hi].s <= s + window_m / 2.0) {
      window.insert(segments[hi].h_mean);
      ++hi;
    }
    while (lo < hi && segments[lo].s < s - window_m / 2.0) {
      window.erase(segments[lo].h_mean);
      ++lo;
    }
    baseline[k] = window.query();
  }
  return baseline;
}

std::vector<double> rolling_baseline_reference(const std::vector<Segment>& segments,
                                               double window_m, double percentile) {
  std::vector<double> baseline(segments.size(), 0.0);
  if (segments.empty()) return baseline;

  std::size_t lo = 0, hi = 0;
  std::vector<double> window;
  for (std::size_t k = 0; k < segments.size(); ++k) {
    const double s = segments[k].s;
    while (hi < segments.size() && segments[hi].s <= s + window_m / 2.0) ++hi;
    while (lo < hi && segments[lo].s < s - window_m / 2.0) ++lo;
    window.clear();
    window.reserve(hi - lo);
    for (std::size_t q = lo; q < hi; ++q) window.push_back(segments[q].h_mean);
    baseline[k] = util::percentile(window, percentile);
  }
  return baseline;
}

std::vector<FeatureRow> to_features(const std::vector<Segment>& segments,
                                    const std::vector<double>& baseline, double max_gap_m) {
  if (!baseline.empty() && baseline.size() != segments.size())
    throw std::invalid_argument("to_features: baseline size mismatch");
  std::vector<FeatureRow> rows(segments.size());
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const Segment& s = segments[i];
    FeatureRow& r = rows[i];
    const double rel = baseline.empty() ? s.h_mean : s.h_mean - baseline[i];
    // A delta across an along-track gap (windows dropped by min_photons)
    // would difference physically non-adjacent surface: treat the segment
    // after a gap like a track start and zero its deltas.
    const bool adjacent = i > 0 && (max_gap_m <= 0.0 || s.s - segments[i - 1].s <= max_gap_m);
    r.v[0] = static_cast<float>(rel);
    r.v[1] = static_cast<float>(s.h_std);
    r.v[2] = static_cast<float>(s.photon_rate);
    r.v[3] = adjacent ? static_cast<float>(s.photon_rate - segments[i - 1].photon_rate) : 0.0f;
    r.v[4] = static_cast<float>(s.bckgrd_rate * 1e-6);  // Hz -> MHz
    r.v[5] = adjacent
                 ? static_cast<float>((s.bckgrd_rate - segments[i - 1].bckgrd_rate) * 1e-6)
                 : 0.0f;
  }
  return rows;
}

FeatureScaler FeatureScaler::fit(const std::vector<FeatureRow>& rows) {
  FeatureScaler sc;
  if (rows.empty()) {
    std::fill(std::begin(sc.std), std::end(sc.std), 1.0f);
    return sc;
  }
  for (int d = 0; d < FeatureRow::kDim; ++d) {
    double sum = 0.0;
    for (const auto& r : rows) sum += r.v[d];
    const double mean = sum / static_cast<double>(rows.size());
    double var = 0.0;
    for (const auto& r : rows) var += (r.v[d] - mean) * (r.v[d] - mean);
    var /= static_cast<double>(rows.size());
    sc.mean[d] = static_cast<float>(mean);
    sc.std[d] = static_cast<float>(std::sqrt(var) > 1e-8 ? std::sqrt(var) : 1.0);
  }
  return sc;
}

void FeatureScaler::apply(std::vector<FeatureRow>& rows) const {
  for (auto& r : rows)
    for (int d = 0; d < FeatureRow::kDim; ++d) r.v[d] = (r.v[d] - mean[d]) / std[d];
}

}  // namespace is2::resample
