// Ring collectives for the in-process distributed-training substrate.
//
// A `Communicator(n)` is shared by `n` rank threads; every collective is
// called by all ranks (each passing its own rank id) and blocks until that
// rank's part completes. All-reduce is the bandwidth-optimal ring form:
// reduce-scatter (N−1 steps; each rank ends owning one fully reduced chunk)
// followed by allgather (N−1 steps; the reduced chunks circulate), moving
// 2(N−1)/N of the buffer per rank — `allreduce_bytes_per_rank` is that
// accounting, what the micro bench's GB/s figures are computed from.
//
// Determinism: each chunk's sum is parenthesized by the ring topology —
// contributions accumulate in ring order starting from a chunk-determined
// rank, and every reduction step consumes one specific tagged message — so
// the result is bit-identical run-to-run and independent of rank arrival
// order or thread scheduling (the same fixed-order-reduction policy
// docs/performance.md sets for OpenMP; stressed in
// test_parallel_determinism). All ranks finish with byte-identical buffers.
//
// Reuse: collectives are sequenced per rank by an op counter baked into the
// message tags, so one Communicator serves an arbitrary collective sequence
// (every rank must issue the same sequence; a divergence throws in the
// transport). Per rank, collectives must be issued from one thread at a
// time — the trainer's comm worker and main rank thread hand off, never
// overlap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "dist/transport.hpp"

namespace is2::dist {

class Communicator {
 public:
  /// Rank-threaded group over the in-process transport. `recv_timeout_ms`
  /// bounds every receive (0 = wait forever): a dead or diverged peer
  /// aborts the collective on ALL ranks with CollectiveAbort instead of
  /// deadlocking the ring.
  explicit Communicator(int n_ranks, double recv_timeout_ms = 0.0);
  /// Same collectives over a caller-supplied transport (the socket seam).
  Communicator(int n_ranks, std::shared_ptr<Transport> transport);

  int size() const { return n_ranks_; }

  /// Poison the group: every rank blocked or subsequently entering a
  /// collective throws CollectiveAbort (delegates to the transport).
  void abort(const std::string& reason) { transport_->abort(reason); }
  bool aborted() const { return transport_->aborted(); }

  /// In-place ring all-reduce: every rank's buffer becomes the element-wise
  /// sum over ranks (byte-identical on all ranks).
  void allreduce_sum(int rank, float* data, std::size_t n);
  void allreduce_sum(int rank, std::vector<float>& buf) {
    allreduce_sum(rank, buf.data(), buf.size());
  }

  /// allreduce_sum scaled by 1/size() — the gradient-averaging form.
  void allreduce_mean(int rank, float* data, std::size_t n);
  void allreduce_mean(int rank, std::vector<float>& buf) {
    allreduce_mean(rank, buf.data(), buf.size());
  }

  /// Copy root's buffer into every rank's (root fan-out; fine at thread-rank
  /// group sizes, a ring pipeline when a wire transport makes fan-out pay).
  void broadcast(int rank, float* data, std::size_t n, int root);
  void broadcast(int rank, std::vector<float>& buf, int root) {
    broadcast(rank, buf.data(), buf.size(), root);
  }

  /// Block until every rank has entered (a zero-payload ring round trip).
  void barrier(int rank);

  /// Bytes each rank moves through an N-rank ring all-reduce of `n_floats`:
  /// 2(N−1)/N · n · sizeof(float); 0 for a single rank.
  static std::size_t allreduce_bytes_per_rank(int ranks, std::size_t n_floats);

 private:
  /// Per-rank collective state; each slot is touched only by its own rank's
  /// issuing thread (alignment keeps the op counters off shared lines).
  struct alignas(64) RankState {
    std::uint64_t ops = 0;          ///< collectives issued (tag high bits)
    std::vector<float> scratch;     ///< reduce-scatter receive chunk
  };

  std::uint64_t next_op(int rank);
  void allreduce_sum_body(int rank, float* data, std::size_t n, std::uint64_t op);

  /// Wrap one rank's collective body: any failure (injected fault, IO
  /// error, tag divergence) aborts the transport group-wide, then
  /// resurfaces as CollectiveAbort so every rank fails the same way.
  template <typename Body>
  void guarded(const char* what, Body&& body) {
    try {
      body();
    } catch (const CollectiveAbort&) {
      throw;
    } catch (const std::exception& e) {
      transport_->abort(std::string(what) + ": " + e.what());
      throw CollectiveAbort(std::string("collective aborted: ") + what + ": " + e.what());
    }
  }

  int n_ranks_;
  std::shared_ptr<Transport> transport_;
  std::vector<RankState> state_;
};

}  // namespace is2::dist
