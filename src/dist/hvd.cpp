#include "dist/hvd.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/mutex.hpp"
#include "util/timer.hpp"

namespace is2::dist {

Context::Context(int ranks, obs::Registry* registry, double recv_timeout_ms)
    : comm(ranks, recv_timeout_ms) {
  const obs::Labels labels{{"ranks", std::to_string(ranks)}};
  allreduces = &registry->counter("is2_dist_allreduce_total", labels,
                                  "Gradient bucket all-reduces issued (per rank)");
  allreduce_floats = &registry->counter("is2_dist_allreduce_floats_total", labels,
                                        "Floats pushed through all-reduce (per rank)");
  broadcasts = &registry->counter("is2_dist_broadcast_total", labels,
                                  "Parameter broadcast collectives issued (per rank)");
  steps = &registry->counter("is2_dist_steps_total", labels, "Distributed optimizer steps");
  samples = &registry->counter("is2_dist_samples_total", labels, "Training samples consumed");
  epochs = &registry->counter("is2_dist_epochs_total", labels, "Training epochs completed");
  ranks_gauge = &registry->gauge("is2_dist_ranks", {}, "Size of the most recent process group");
  allreduce_ms = &registry->histogram("is2_dist_allreduce_ms", labels,
                                      "Per-bucket all-reduce latency (ms)");
  ranks_gauge->set(static_cast<double>(ranks));
}

std::shared_ptr<Context> init(int ranks, double recv_timeout_ms) {
  return std::make_shared<Context>(ranks, &obs::Registry::global(), recv_timeout_ms);
}

void broadcast_parameters(const std::vector<nn::Param>& params, Context& ctx, int rank,
                          int root) {
  for (const auto& p : params) {
    ctx.comm.broadcast(rank, p.value->data(), p.value->size(), root);
    ctx.broadcasts->inc();
  }
}

DistributedOptimizer::DistributedOptimizer(std::unique_ptr<nn::Optimizer> inner,
                                           std::shared_ptr<Context> ctx, int rank,
                                           std::size_t bucket_floats)
    : inner_(std::move(inner)),
      ctx_(std::move(ctx)),
      rank_(rank),
      bucket_floats_(bucket_floats) {
  if (!inner_) throw std::invalid_argument("DistributedOptimizer: null inner optimizer");
  if (!ctx_) throw std::invalid_argument("DistributedOptimizer: null context");
  if (bucket_floats_ == 0) throw std::invalid_argument("DistributedOptimizer: zero bucket size");
  if (rank_ < 0 || rank_ >= ctx_->size())
    throw std::invalid_argument("DistributedOptimizer: rank outside group");
  if (ctx_->size() > 1) worker_ = std::thread([this] { worker_loop(); });
}

DistributedOptimizer::~DistributedOptimizer() {
  if (worker_.joinable()) {
    {
      util::MutexLock lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
}

void DistributedOptimizer::begin_step(double weight) {
  if (ctx_->size() <= 1) return;
  step_active_ = true;
  weight_ = weight;
}

void DistributedOptimizer::grads_ready(const std::vector<nn::Param>& layer_params) {
  if (!step_active_) return;
  for (const auto& p : layer_params) stage(p);
}

void DistributedOptimizer::stage(const nn::Param& p) {
  open_.spans.push_back({p.grad->data(), p.grad->size()});
  open_.floats += p.grad->size();
  if (open_.floats >= bucket_floats_) flush_open_bucket();
}

void DistributedOptimizer::flush_open_bucket() {
  if (open_.spans.empty()) return;
  open_.weight = weight_;
  {
    util::MutexLock lock(mutex_);
    queue_.push_back(std::move(open_));
    ++enqueued_;
  }
  cv_.notify_all();
  open_ = Bucket{};
}

void DistributedOptimizer::wait_drain() {
  util::MutexLock lock(mutex_);
  while (processed_ != enqueued_) cv_.wait(lock);
}

void DistributedOptimizer::reduce_bucket(const Bucket& bucket) {
  // Pack spans × weight, ring-reduce the weighted sums, unpack. The weighted
  // sum over ranks of (bsz_r / global_batch) · grad_r is exactly the
  // global-batch mean gradient, uneven shard tails included.
  pack_.resize(bucket.floats);
  const float w = static_cast<float>(bucket.weight);
  std::size_t at = 0;
  for (const auto& s : bucket.spans) {
    for (std::size_t i = 0; i < s.n; ++i) pack_[at + i] = s.data[i] * w;
    at += s.n;
  }
  util::Timer wall;
  ctx_->comm.allreduce_sum(rank_, pack_.data(), pack_.size());
  ctx_->allreduce_ms->observe(wall.seconds() * 1e3);
  ctx_->allreduces->inc();
  ctx_->allreduce_floats->inc(bucket.floats);
  at = 0;
  for (const auto& s : bucket.spans) {
    std::memcpy(s.data, pack_.data() + at, s.n * sizeof(float));
    at += s.n;
  }
}

void DistributedOptimizer::worker_loop() {
  util::ThreadCpuTimer cpu;
  for (;;) {
    Bucket bucket;
    {
      util::MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stop_ set and nothing left to reduce
      bucket = std::move(queue_.front());
      queue_.pop_front();
    }
    cpu.reset();
    // A failed collective (CollectiveAbort, injected fault) must not kill
    // the worker thread: record the first error, then drain-and-discard
    // subsequent buckets so wait_drain() always unblocks and the rank
    // thread sees the failure from step() instead of std::terminate.
    bool skip;
    {
      util::MutexLock lock(mutex_);
      skip = worker_error_ != nullptr;
    }
    std::exception_ptr err;
    if (!skip) {
      try {
        reduce_bucket(bucket);
      } catch (...) {
        err = std::current_exception();
      }
    }
    {
      util::MutexLock lock(mutex_);
      comm_busy_s_ += cpu.seconds();
      if (!skip && !err) floats_reduced_ += bucket.floats;
      if (err && !worker_error_) worker_error_ = err;
      ++processed_;
    }
    cv_.notify_all();
  }
}

void DistributedOptimizer::step(const std::vector<nn::Param>& params) {
  if (ctx_->size() > 1) {
    if (!step_active_) {
      // Plain mode: bucket the whole parameter list synchronously with the
      // uniform 1/N weight — a drop-in gradient-averaging optimizer.
      begin_step(1.0 / static_cast<double>(ctx_->size()));
      for (const auto& p : params) stage(p);
    }
    flush_open_bucket();
    wait_drain();
    step_active_ = false;
    std::exception_ptr err;
    {
      util::MutexLock lock(mutex_);
      err = worker_error_;
    }
    // Surface the comm worker's failure on the rank thread: the wrapped
    // optimizer never steps on a partially reduced gradient.
    if (err) std::rethrow_exception(err);
  }
  inner_->step(params);
  ctx_->steps->inc();
}

void DistributedOptimizer::zero_grad(const std::vector<nn::Param>& params) {
  inner_->zero_grad(params);
}

std::size_t DistributedOptimizer::floats_reduced() const {
  util::MutexLock lock(mutex_);
  return floats_reduced_;
}

double DistributedOptimizer::comm_busy_s() const {
  util::MutexLock lock(mutex_);
  return comm_busy_s_;
}

}  // namespace is2::dist
