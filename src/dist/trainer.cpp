#include "dist/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>

#include "dist/hvd.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace is2::dist {

TrainResult train_distributed(const ModelFactory& model_factory, const nn::Dataset& train,
                              const nn::Dataset& test, const TrainerConfig& cfg) {
  if (cfg.ranks < 1) throw std::invalid_argument("train_distributed: need at least one rank");
  if (cfg.epochs == 0) throw std::invalid_argument("train_distributed: zero epochs");
  if (cfg.batch_per_rank == 0) throw std::invalid_argument("train_distributed: zero batch");
  const std::size_t n = train.size();
  if (n == 0) throw std::invalid_argument("train_distributed: empty dataset");

  const int R = cfg.ranks;
  const auto global_batch = static_cast<std::size_t>(R) * cfg.batch_per_rank;
  const std::size_t bucket_floats =
      cfg.bucket_floats ? cfg.bucket_floats : DistributedOptimizer::kDefaultBucketFloats;
  auto ctx = init(R, cfg.recv_timeout_ms);

  // Replicas are built sequentially, rank 0 first, on this thread — a
  // factory with hidden state diverges the same way every run, and the
  // broadcast below re-aligns everyone to rank 0 regardless.
  std::vector<nn::Sequential> models;
  models.reserve(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) models.push_back(model_factory());

  std::vector<std::vector<double>> busy_s(static_cast<std::size_t>(R),
                                          std::vector<double>(cfg.epochs, 0.0));
  std::vector<std::size_t> rank_floats(static_cast<std::size_t>(R), 0);

  auto rank_main = [&](int r) {
    const auto ur = static_cast<std::size_t>(r);
    auto& model = models[ur];
    auto param_list = model.params();
    DistributedOptimizer opt(std::make_unique<nn::Adam>(cfg.learning_rate), ctx, r,
                             bucket_floats);
    // Poison the group BEFORE opt unwinds on a failure: its destructor
    // joins the comm worker, which may be blocked in a recv that only the
    // abort can wake (peers could likewise block forever on this rank).
    struct AbortOnUnwind {
      Context& ctx;
      int rank;
      ~AbortOnUnwind() {
        if (std::uncaught_exceptions() > 0)
          ctx.comm.abort("rank " + std::to_string(rank) + " failed");
      }
    } abort_guard{*ctx, r};
    broadcast_parameters(param_list, *ctx, r, /*root=*/0);
    opt.zero_grad(param_list);

    nn::FocalLoss loss(cfg.focal_gamma);
    const auto on_grads = [&](const std::vector<nn::Param>& p) { opt.grads_ready(p); };

    // Every rank advances an identical copy of the shuffle stream, so the
    // global sample order is shared without any coordination; rank r
    // consumes the r-th batch_per_rank slice of each global batch.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    util::Rng shuffle_rng(cfg.shuffle_seed);

    nn::Tensor3 xb;
    std::vector<std::uint8_t> yb;
    nn::Mat grad;
    const std::size_t ss = train.x.sample_size();

    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
      util::ThreadCpuTimer cpu;
      const double comm0 = opt.comm_busy_s();
      shuffle_rng.shuffle(order);

      for (std::size_t start = 0; start < n; start += global_batch) {
        const std::size_t gbsz = std::min(global_batch, n - start);
        const std::size_t lo = std::min(ur * cfg.batch_per_rank, gbsz);
        const std::size_t hi = std::min(lo + cfg.batch_per_rank, gbsz);
        const std::size_t bsz = hi - lo;

        // weight · grad summed over ranks = the global-batch mean gradient
        // (each local grad is already the mean over its bsz samples).
        opt.begin_step(static_cast<double>(bsz) / static_cast<double>(gbsz));
        if (bsz > 0) {
          xb = nn::Tensor3(bsz, train.x.t, train.x.d);
          yb.resize(bsz);
          for (std::size_t i = 0; i < bsz; ++i) {
            const std::size_t src = order[start + lo + i];
            std::copy(train.x.v.begin() + static_cast<std::ptrdiff_t>(src * ss),
                      train.x.v.begin() + static_cast<std::ptrdiff_t>((src + 1) * ss),
                      xb.v.begin() + static_cast<std::ptrdiff_t>(i * ss));
            yb[i] = train.y[src];
            if (cfg.sample_hook) cfg.sample_hook(r, epoch, src);
          }
          const nn::Mat& logits = model.forward(xb, /*training=*/true);
          loss.compute(logits, yb, grad);
          model.backward(grad, on_grads);
        } else {
          // Empty tail slice: replay the identical bucket sequence with
          // this rank's (zero, zero-weight) gradients so the group's
          // collective schedule stays in lockstep.
          model.visit_params_backward(on_grads);
        }
        opt.step(param_list);
        ctx->samples->inc(bsz);
      }

      // Critical-path accounting: this rank's epoch cost is its own busy
      // CPU plus what its comm worker burned on its behalf.
      busy_s[ur][epoch] = cpu.seconds() + (opt.comm_busy_s() - comm0);
      if (r == 0) {
        ctx->epochs->inc();
        if (cfg.verbose)
          std::fprintf(stderr, "dist epoch %zu/%zu  busy %.3fs\n", epoch + 1, cfg.epochs,
                       busy_s[ur][epoch]);
      }
    }
    rank_floats[ur] = opt.floats_reduced();
  };

  // A rank that fails (CollectiveAbort from a timeout/fault, or any other
  // exception) must not std::terminate the process: capture per-rank
  // errors, make sure the group is poisoned so every peer unblocks, join
  // everyone, then rethrow — preferring the CollectiveAbort that names the
  // root cause over the secondary aborts the survivors observed.
  std::vector<std::exception_ptr> rank_errors(static_cast<std::size_t>(R));
  auto rank_guarded = [&](int r) {
    try {
      rank_main(r);
    } catch (...) {
      rank_errors[static_cast<std::size_t>(r)] = std::current_exception();
      ctx->comm.abort("rank " + std::to_string(r) + " failed");
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) threads.emplace_back(rank_guarded, r);
  for (auto& t : threads) t.join();

  std::exception_ptr first_error;
  for (const auto& err : rank_errors) {
    if (!err) continue;
    if (!first_error) first_error = err;
    try {
      std::rethrow_exception(err);
    } catch (const CollectiveAbort&) {
      first_error = err;  // the liveness error wins: it carries the cause
      break;
    } catch (...) {
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  TrainResult result;
  result.epoch_times_s.resize(cfg.epochs, 0.0);
  for (std::size_t e = 0; e < cfg.epochs; ++e) {
    double worst = 0.0;
    for (int r = 0; r < R; ++r) worst = std::max(worst, busy_s[static_cast<std::size_t>(r)][e]);
    result.epoch_times_s[e] = worst;
    result.total_time_s += worst;
  }
  result.time_per_epoch_s = result.total_time_s / static_cast<double>(cfg.epochs);
  // Clamp: on tiny tasks the thread-CPU clock's granularity can read ~0.
  result.samples_per_s = static_cast<double>(cfg.epochs * n) / std::max(result.total_time_s, 1e-9);
  for (auto f : rank_floats) result.floats_reduced += f;
  result.model = std::move(models[0]);
  result.test_metrics = result.model.evaluate(test);
  return result;
}

}  // namespace is2::dist
