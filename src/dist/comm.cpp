#include "dist/comm.hpp"

#include <stdexcept>
#include <string>

namespace is2::dist {

namespace {

// Tag layout: | op (44 bits) | phase (4) | step (16) |. Phases: 0 =
// reduce-scatter, 1 = allgather, 2 = broadcast.
std::uint64_t make_tag(std::uint64_t op, unsigned phase, unsigned step) {
  return (op << 20) | (static_cast<std::uint64_t>(phase) << 16) | step;
}

}  // namespace

Communicator::Communicator(int n_ranks, double recv_timeout_ms)
    : Communicator(n_ranks, std::make_shared<InProcessTransport>(n_ranks, recv_timeout_ms)) {}

Communicator::Communicator(int n_ranks, std::shared_ptr<Transport> transport)
    : n_ranks_(n_ranks), transport_(std::move(transport)), state_(static_cast<std::size_t>(n_ranks)) {
  if (n_ranks < 1) throw std::invalid_argument("Communicator: need at least one rank");
  if (transport_->size() != n_ranks)
    throw std::invalid_argument("Communicator: transport group size mismatch");
}

std::uint64_t Communicator::next_op(int rank) {
  if (rank < 0 || rank >= n_ranks_)
    throw std::invalid_argument("Communicator: rank " + std::to_string(rank) +
                                " outside group of " + std::to_string(n_ranks_));
  return state_[static_cast<std::size_t>(rank)].ops++;
}

std::size_t Communicator::allreduce_bytes_per_rank(int ranks, std::size_t n_floats) {
  if (ranks <= 1) return 0;
  const auto n = static_cast<std::size_t>(ranks);
  return 2 * (n - 1) * n_floats * sizeof(float) / n;
}

void Communicator::allreduce_sum(int rank, float* data, std::size_t n) {
  const std::uint64_t op = next_op(rank);
  const int N = n_ranks_;
  if (N == 1 || n == 0) return;
  guarded("allreduce_sum", [&] { allreduce_sum_body(rank, data, n, op); });
}

void Communicator::allreduce_sum_body(int rank, float* data, std::size_t n, std::uint64_t op) {
  const int N = n_ranks_;
  auto& st = state_[static_cast<std::size_t>(rank)];
  const int next = (rank + 1) % N;
  const int prev = (rank + N - 1) % N;
  // Balanced chunking: chunk c covers [off(c), off(c+1)).
  auto off = [&](int c) { return static_cast<std::size_t>(c) * n / static_cast<std::size_t>(N); };
  auto chunk_len = [&](int c) { return off(c + 1) - off(c); };
  auto ring_chunk = [&](int c) { return ((c % N) + N) % N; };

  // Reduce-scatter: after step s, this rank holds the running partial sum of
  // chunk (rank − s − 1); after N−1 steps it owns the fully reduced chunk
  // (rank + 1). Each addition is local += upstream-partial, so chunk c's sum
  // is parenthesized in ring order regardless of scheduling.
  for (int s = 0; s < N - 1; ++s) {
    const int send_c = ring_chunk(rank - s);
    const int recv_c = ring_chunk(rank - s - 1);
    transport_->send(rank, next, make_tag(op, 0, static_cast<unsigned>(s)), data + off(send_c),
                     chunk_len(send_c));
    const std::size_t len = chunk_len(recv_c);
    st.scratch.resize(len);
    transport_->recv(prev, rank, make_tag(op, 0, static_cast<unsigned>(s)), st.scratch.data(),
                     len);
    float* d = data + off(recv_c);
    for (std::size_t i = 0; i < len; ++i) d[i] += st.scratch[i];
  }

  // Allgather: circulate the reduced chunks; receives overwrite in place.
  for (int s = 0; s < N - 1; ++s) {
    const int send_c = ring_chunk(rank + 1 - s);
    const int recv_c = ring_chunk(rank - s);
    transport_->send(rank, next, make_tag(op, 1, static_cast<unsigned>(s)), data + off(send_c),
                     chunk_len(send_c));
    transport_->recv(prev, rank, make_tag(op, 1, static_cast<unsigned>(s)), data + off(recv_c),
                     chunk_len(recv_c));
  }
}

void Communicator::allreduce_mean(int rank, float* data, std::size_t n) {
  allreduce_sum(rank, data, n);
  if (n_ranks_ == 1) return;
  const float scale = 1.0f / static_cast<float>(n_ranks_);
  for (std::size_t i = 0; i < n; ++i) data[i] *= scale;
}

void Communicator::broadcast(int rank, float* data, std::size_t n, int root) {
  if (root < 0 || root >= n_ranks_)
    throw std::invalid_argument("Communicator::broadcast: bad root " + std::to_string(root));
  const std::uint64_t op = next_op(rank);
  if (n_ranks_ == 1 || n == 0) return;
  guarded("broadcast", [&] {
    if (rank == root) {
      for (int r = 0; r < n_ranks_; ++r)
        if (r != root) transport_->send(root, r, make_tag(op, 2, 0), data, n);
    } else {
      transport_->recv(root, rank, make_tag(op, 2, 0), data, n);
    }
  });
}

void Communicator::barrier(int rank) {
  // A one-float ring all-reduce: completion requires a message chain through
  // every rank, so no rank exits before all have entered.
  float token = 0.0f;
  allreduce_sum(rank, &token, 1);
}

}  // namespace is2::dist
