#include "dist/transport.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

namespace is2::dist {

InProcessTransport::InProcessTransport(int n_ranks)
    : n_ranks_(n_ranks),
      channels_(static_cast<std::size_t>(n_ranks) * static_cast<std::size_t>(n_ranks)) {
  if (n_ranks < 1) throw std::invalid_argument("InProcessTransport: need at least one rank");
}

InProcessTransport::Channel& InProcessTransport::channel(int src, int dst) {
  return channels_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_ranks_) +
                   static_cast<std::size_t>(dst)];
}

void InProcessTransport::check_rank(int rank) const {
  if (rank < 0 || rank >= n_ranks_)
    throw std::invalid_argument("InProcessTransport: rank " + std::to_string(rank) +
                                " outside group of " + std::to_string(n_ranks_));
}

void InProcessTransport::send(int src, int dst, std::uint64_t tag, const float* data,
                              std::size_t n) {
  check_rank(src);
  check_rank(dst);
  Channel& ch = channel(src, dst);
  Message msg;
  msg.tag = tag;
  {
    // Grab a recycled buffer if one is available; copy outside the lock.
    std::lock_guard lock(ch.mutex);
    if (!ch.free_list.empty()) {
      msg.payload = std::move(ch.free_list.back());
      ch.free_list.pop_back();
    }
  }
  msg.payload.resize(n);
  if (n > 0) std::memcpy(msg.payload.data(), data, n * sizeof(float));
  {
    std::lock_guard lock(ch.mutex);
    ch.queue.push_back(std::move(msg));
  }
  ch.cv.notify_one();
}

void InProcessTransport::recv(int src, int dst, std::uint64_t tag, float* data, std::size_t n) {
  check_rank(src);
  check_rank(dst);
  Channel& ch = channel(src, dst);
  Message msg;
  {
    std::unique_lock lock(ch.mutex);
    ch.cv.wait(lock, [&] { return !ch.queue.empty(); });
    msg = std::move(ch.queue.front());
    ch.queue.pop_front();
  }
  if (msg.tag != tag || msg.payload.size() != n)
    throw std::runtime_error(
        "InProcessTransport: collective sequence diverged on channel " + std::to_string(src) +
        "->" + std::to_string(dst) + " (tag " + std::to_string(msg.tag) + " != " +
        std::to_string(tag) + " or length " + std::to_string(msg.payload.size()) + " != " +
        std::to_string(n) + ")");
  if (n > 0) std::memcpy(data, msg.payload.data(), n * sizeof(float));
  {
    std::lock_guard lock(ch.mutex);
    ch.free_list.push_back(std::move(msg.payload));
  }
}

}  // namespace is2::dist
