#include "dist/transport.hpp"

#include <chrono>
#include <cstring>

#include "util/fault.hpp"

namespace is2::dist {

InProcessTransport::InProcessTransport(int n_ranks, double recv_timeout_ms)
    : n_ranks_(n_ranks),
      recv_timeout_ms_(recv_timeout_ms),
      channels_(static_cast<std::size_t>(n_ranks) * static_cast<std::size_t>(n_ranks)) {
  if (n_ranks < 1) throw std::invalid_argument("InProcessTransport: need at least one rank");
}

InProcessTransport::Channel& InProcessTransport::channel(int src, int dst) {
  return channels_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_ranks_) +
                   static_cast<std::size_t>(dst)];
}

void InProcessTransport::check_rank(int rank) const {
  if (rank < 0 || rank >= n_ranks_)
    throw std::invalid_argument("InProcessTransport: rank " + std::to_string(rank) +
                                " outside group of " + std::to_string(n_ranks_));
}

void InProcessTransport::throw_aborted() const {
  std::string reason;
  {
    util::MutexLock lock(abort_mutex_);
    reason = abort_reason_;
  }
  throw CollectiveAbort("collective aborted: " + (reason.empty() ? "unknown" : reason));
}

void InProcessTransport::abort(const std::string& reason) {
  {
    util::MutexLock lock(abort_mutex_);
    if (aborted_.load(std::memory_order_acquire)) return;  // first reason wins
    abort_reason_ = reason;
    aborted_.store(true, std::memory_order_release);
  }
  // Wake every blocked recv on every channel; each one observes aborted_
  // under its own channel lock and throws.
  for (Channel& ch : channels_) {
    util::MutexLock lock(ch.mutex);
    ch.cv.notify_all();
  }
}

std::size_t InProcessTransport::pending(int src, int dst) {
  check_rank(src);
  check_rank(dst);
  Channel& ch = channel(src, dst);
  util::MutexLock lock(ch.mutex);
  return ch.queue.size();
}

void InProcessTransport::send(int src, int dst, std::uint64_t tag, const float* data,
                              std::size_t n) {
  check_rank(src);
  check_rank(dst);
  if (aborted()) throw_aborted();
  util::fault::inject("dist.send", src);
  Channel& ch = channel(src, dst);
  Message msg;
  msg.tag = tag;
  {
    // Grab a recycled buffer if one is available; copy outside the lock.
    util::MutexLock lock(ch.mutex);
    if (!ch.free_list.empty()) {
      msg.payload = std::move(ch.free_list.back());
      ch.free_list.pop_back();
    }
  }
  msg.payload.resize(n);
  if (n > 0) std::memcpy(msg.payload.data(), data, n * sizeof(float));
  {
    util::MutexLock lock(ch.mutex);
    ch.queue.push_back(std::move(msg));
  }
  ch.cv.notify_one();
}

void InProcessTransport::recv(int src, int dst, std::uint64_t tag, float* data, std::size_t n) {
  check_rank(src);
  check_rank(dst);
  util::fault::inject("dist.recv", dst);
  Channel& ch = channel(src, dst);
  Message msg;
  {
    util::MutexLock lock(ch.mutex);
    // Explicit wait loops (not predicate lambdas): the thread-safety
    // analysis only accepts guarded reads it can see under the held lock.
    if (recv_timeout_ms_ > 0.0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(recv_timeout_ms_));
      while (ch.queue.empty() && !aborted()) {
        if (ch.cv.wait_until(lock, deadline) == std::cv_status::timeout &&
            ch.queue.empty() && !aborted()) {
          // The peer went silent: poison the group before throwing so the
          // other ranks wake instead of deadlocking on their own recvs.
          lock.unlock();
          abort("rank " + std::to_string(dst) + " recv from rank " + std::to_string(src) +
                " timed out after " + std::to_string(recv_timeout_ms_) + " ms");
          throw_aborted();
        }
      }
    } else {
      while (ch.queue.empty() && !aborted()) ch.cv.wait(lock);
    }
    if (aborted()) throw_aborted();
    // Validate the head BEFORE dequeuing: on a tag/length mismatch the
    // message stays at the channel head and the channel state is
    // untouched, so the divergence is diagnosable rather than cascading.
    const Message& head = ch.queue.front();
    if (head.tag != tag || head.payload.size() != n)
      throw std::runtime_error(
          "InProcessTransport: collective sequence diverged on channel " + std::to_string(src) +
          "->" + std::to_string(dst) + " (tag " + std::to_string(head.tag) + " != " +
          std::to_string(tag) + " or length " + std::to_string(head.payload.size()) + " != " +
          std::to_string(n) + ")");
    msg = std::move(ch.queue.front());
    ch.queue.pop_front();
  }
  if (n > 0) std::memcpy(data, msg.payload.data(), n * sizeof(float));
  {
    util::MutexLock lock(ch.mutex);
    ch.free_list.push_back(std::move(msg.payload));
  }
}

}  // namespace is2::dist
