// Point-to-point transport behind the dist collectives.
//
// `Transport` is the seam the ring all-reduce is written against: a fixed
// group of `size()` ranks exchanging tagged float messages over directed
// (src, dst) channels. The in-process implementation below backs the
// thread-per-rank harness; a socket transport implementing the same four
// methods slots in underneath `Communicator` unchanged when the fleet goes
// cross-process (the serve cluster's NodeHandle is the same pattern).
//
// Semantics the collectives rely on:
//  * send() is buffered: it enqueues and returns without waiting for the
//    receiver. Ring steps have every rank send before it receives — a
//    rendezvous send would deadlock the whole ring.
//  * Each (src, dst) channel is FIFO: messages arrive in send order. Tags
//    (collective op sequence + phase + step) are verified on receipt, so a
//    protocol mismatch — ranks running different collective sequences —
//    throws instead of silently mis-summing. The mismatched message stays
//    at the channel head (validated before dequeue), so the diverged state
//    is inspectable rather than consumed.
//  * recv() blocks until the matching message arrives. Arrival timing can
//    therefore never reorder arithmetic: each reduction step consumes
//    exactly the message it names, however the rank threads are scheduled.
//
// Liveness: a recv timeout (per-transport, 0 = wait forever) bounds how
// long a rank waits on a dead or diverged peer, and abort() poisons the
// whole transport — every blocked and future send/recv throws
// CollectiveAbort — so one rank detecting failure wakes the entire ring
// instead of leaving the survivors deadlocked mid-collective.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace is2::dist {

/// A collective died group-wide: a rank timed out, hit an injected fault,
/// or observed a peer's abort. Distinct from the tag-mismatch
/// std::runtime_error (a protocol bug) — this is the liveness error the
/// trainer surfaces when a rank stops participating.
class CollectiveAbort : public std::runtime_error {
 public:
  explicit CollectiveAbort(const std::string& what) : std::runtime_error(what) {}
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Number of ranks in the group.
  virtual int size() const = 0;

  /// Buffered send of `n` floats from `src` toward `dst`; returns
  /// immediately (never blocks on the receiver).
  virtual void send(int src, int dst, std::uint64_t tag, const float* data, std::size_t n) = 0;

  /// Blocking receive of the next message on the (src, dst) channel into
  /// `data`. Throws std::runtime_error when the head message's tag or
  /// length does not match — the collective sequence diverged across ranks
  /// (the message is left at the channel head). Throws CollectiveAbort on
  /// recv timeout or when the transport has been abort()ed.
  virtual void recv(int src, int dst, std::uint64_t tag, float* data, std::size_t n) = 0;

  /// Poison the transport group-wide: every rank blocked in recv() wakes
  /// and throws CollectiveAbort carrying `reason`; subsequent sends and
  /// recvs throw immediately. Idempotent (the first reason wins).
  virtual void abort(const std::string& reason) = 0;

  /// True once abort() has been called.
  virtual bool aborted() const = 0;
};

/// Thread-mailbox transport: one mutex+cv FIFO per directed rank pair.
/// Payloads are copied on send (the buffered-send contract above) and copied
/// out on receive; message buffers are recycled through a per-channel free
/// list so steady-state collectives allocate nothing.
class InProcessTransport : public Transport {
 public:
  /// `recv_timeout_ms` bounds every recv wait (0 = wait forever). On
  /// timeout the transport self-aborts — the timing-out rank poisons the
  /// group before throwing, so no surviving rank stays blocked.
  explicit InProcessTransport(int n_ranks, double recv_timeout_ms = 0.0);

  int size() const override { return n_ranks_; }
  void send(int src, int dst, std::uint64_t tag, const float* data, std::size_t n) override;
  void recv(int src, int dst, std::uint64_t tag, float* data, std::size_t n) override;
  void abort(const std::string& reason) override;
  bool aborted() const override { return aborted_.load(std::memory_order_acquire); }

  double recv_timeout_ms() const { return recv_timeout_ms_; }

  /// Number of messages queued on the (src, dst) channel (test hook: the
  /// tag-mismatch path must leave the mismatched message at the head).
  std::size_t pending(int src, int dst);

 private:
  struct Message {
    std::uint64_t tag = 0;
    std::vector<float> payload;
  };

  struct Channel {
    util::Mutex mutex;
    util::CondVar cv;
    std::deque<Message> queue GUARDED_BY(mutex);
    /// Recycled payload buffers.
    std::vector<std::vector<float>> free_list GUARDED_BY(mutex);
  };

  Channel& channel(int src, int dst);
  void check_rank(int rank) const;
  [[noreturn]] void throw_aborted() const;

  int n_ranks_;
  double recv_timeout_ms_;
  std::vector<Channel> channels_;  ///< indexed src * n_ranks + dst
  std::atomic<bool> aborted_{false};
  mutable util::Mutex abort_mutex_;
  std::string abort_reason_ GUARDED_BY(abort_mutex_);
};

}  // namespace is2::dist
