// Point-to-point transport behind the dist collectives.
//
// `Transport` is the seam the ring all-reduce is written against: a fixed
// group of `size()` ranks exchanging tagged float messages over directed
// (src, dst) channels. The in-process implementation below backs the
// thread-per-rank harness; a socket transport implementing the same four
// methods slots in underneath `Communicator` unchanged when the fleet goes
// cross-process (the serve cluster's NodeHandle is the same pattern).
//
// Semantics the collectives rely on:
//  * send() is buffered: it enqueues and returns without waiting for the
//    receiver. Ring steps have every rank send before it receives — a
//    rendezvous send would deadlock the whole ring.
//  * Each (src, dst) channel is FIFO: messages arrive in send order. Tags
//    (collective op sequence + phase + step) are verified on receipt, so a
//    protocol mismatch — ranks running different collective sequences —
//    throws instead of silently mis-summing.
//  * recv() blocks until the matching message arrives. Arrival timing can
//    therefore never reorder arithmetic: each reduction step consumes
//    exactly the message it names, however the rank threads are scheduled.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace is2::dist {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Number of ranks in the group.
  virtual int size() const = 0;

  /// Buffered send of `n` floats from `src` toward `dst`; returns
  /// immediately (never blocks on the receiver).
  virtual void send(int src, int dst, std::uint64_t tag, const float* data, std::size_t n) = 0;

  /// Blocking receive of the next message on the (src, dst) channel into
  /// `data`. Throws std::runtime_error when the head message's tag or
  /// length does not match — the collective sequence diverged across ranks.
  virtual void recv(int src, int dst, std::uint64_t tag, float* data, std::size_t n) = 0;
};

/// Thread-mailbox transport: one mutex+cv FIFO per directed rank pair.
/// Payloads are copied on send (the buffered-send contract above) and copied
/// out on receive; message buffers are recycled through a per-channel free
/// list so steady-state collectives allocate nothing.
class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(int n_ranks);

  int size() const override { return n_ranks_; }
  void send(int src, int dst, std::uint64_t tag, const float* data, std::size_t n) override;
  void recv(int src, int dst, std::uint64_t tag, float* data, std::size_t n) override;

 private:
  struct Message {
    std::uint64_t tag = 0;
    std::vector<float> payload;
  };

  struct Channel {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
    std::vector<std::vector<float>> free_list;  ///< recycled payload buffers
  };

  Channel& channel(int src, int dst);
  void check_rank(int rank) const;

  int n_ranks_;
  std::vector<Channel> channels_;  ///< indexed src * n_ranks + dst
};

}  // namespace is2::dist
