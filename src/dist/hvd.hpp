// Horovod-style data-parallel primitives over the ring Communicator — the
// paper's four integration steps mapped onto this library:
//
//   1. hvd.init()                     -> dist::init(ranks)
//   2. pin one GPU per process        -> one rank thread per replica
//   3. hvd.DistributedOptimizer(opt)  -> dist::DistributedOptimizer
//   4. hvd.BroadcastGlobalVariables(0)-> dist::broadcast_parameters(root 0)
//
// `DistributedOptimizer` wraps any `nn::Optimizer`: before the wrapped step
// it replaces every parameter's gradient with the cross-rank weighted sum
// (weight 1/N by default — the gradient average). Gradients are packed into
// fixed-boundary buckets and reduced on a per-rank comm worker thread, so
// when driven through `Sequential::backward`'s gradient-ready hook the
// all-reduce of layers near the loss overlaps the backpropagation still
// descending toward the front end. Bucket boundaries are a pure function of
// the (identical) parameter shapes and `bucket_floats`, and each bucket's
// ring reduction is fixed-order, so N-rank training stays bit-reproducible
// run-to-run (docs/distributed.md).
//
// Observability: a Context registers the `is2_dist_*` series (all-reduce /
// step / sample counters, bucket all-reduce latency histogram) on the obs
// registry, labeled by group size, so fleet dashboards see training traffic
// next to serve traffic.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "dist/comm.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "obs/registry.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace is2::dist {

/// Shared process-group state: the Communicator all replicas reduce over
/// plus the obs instruments. Create via dist::init(ranks) and hand the same
/// shared_ptr to every rank.
struct Context {
  /// `recv_timeout_ms` bounds every collective receive (0 = wait forever):
  /// a dead rank aborts the group with CollectiveAbort instead of
  /// deadlocking the ring (see dist/transport.hpp).
  explicit Context(int ranks, obs::Registry* registry = &obs::Registry::global(),
                   double recv_timeout_ms = 0.0);

  int size() const { return comm.size(); }

  Communicator comm;

  // is2_dist_* instruments (labeled {ranks=<N>}; pointers stable for the
  // registry's lifetime — see obs/registry.hpp).
  obs::Counter* allreduces = nullptr;        ///< is2_dist_allreduce_total
  obs::Counter* allreduce_floats = nullptr;  ///< is2_dist_allreduce_floats_total
  obs::Counter* broadcasts = nullptr;        ///< is2_dist_broadcast_total
  obs::Counter* steps = nullptr;             ///< is2_dist_steps_total
  obs::Counter* samples = nullptr;           ///< is2_dist_samples_total
  obs::Counter* epochs = nullptr;            ///< is2_dist_epochs_total
  obs::Gauge* ranks_gauge = nullptr;         ///< is2_dist_ranks
  obs::HistogramMetric* allreduce_ms = nullptr;  ///< is2_dist_allreduce_ms
};

/// Step 1: create the process group (thread ranks, in-process transport).
/// A nonzero `recv_timeout_ms` arms the liveness guard: any rank waiting
/// longer than that on a peer aborts the collective on all ranks.
std::shared_ptr<Context> init(int ranks, double recv_timeout_ms = 0.0);

/// Step 4: overwrite every rank's parameter values with root's, one
/// collective per parameter in list order. Run before the first optimizer
/// step so replicas whose factories diverged still start bit-identical.
void broadcast_parameters(const std::vector<nn::Param>& params, Context& ctx, int rank,
                          int root = 0);

/// Step 3: gradient-averaging wrapper around any nn::Optimizer.
///
/// Two driving modes, identical arithmetic:
///  * Plain: call step(params) like any optimizer — gradients are bucketed
///    in parameter-list order, reduced synchronously with weight 1/N, then
///    the wrapped optimizer steps.
///  * Overlapped (the trainer): begin_step(weight) before backward, feed
///    grads_ready(...) from Sequential::backward's gradient-ready hook —
///    full buckets reduce on the comm worker while backward continues —
///    then step(params) flushes the tail bucket, waits for the drain and
///    runs the wrapped step. `weight` scales this rank's contribution
///    (local_batch/global_batch handles uneven shard tails; the weighted
///    sum over ranks is then exactly the global-batch mean gradient).
///
/// Every rank in the group must drive its optimizer the same way — bucket
/// boundaries and reduction order form the collective sequence.
class DistributedOptimizer : public nn::Optimizer {
 public:
  /// Default bucket size: ~4 buckets across the paper's LSTM model — small
  /// enough that the head's gradients reduce while BPTT is still running,
  /// large enough that per-bucket ring latency amortizes.
  static constexpr std::size_t kDefaultBucketFloats = 12 * 1024;

  DistributedOptimizer(std::unique_ptr<nn::Optimizer> inner, std::shared_ptr<Context> ctx,
                       int rank, std::size_t bucket_floats = kDefaultBucketFloats);
  ~DistributedOptimizer() override;

  DistributedOptimizer(const DistributedOptimizer&) = delete;
  DistributedOptimizer& operator=(const DistributedOptimizer&) = delete;

  /// Arm the overlapped path for one training step. No-op for a group of 1.
  void begin_step(double weight);
  /// Stage a layer's now-final gradients (from the backward hook). Buckets
  /// that fill are handed to the comm worker immediately.
  void grads_ready(const std::vector<nn::Param>& layer_params);
  /// Reduce whatever is still unstaged/unflushed, wait for the comm worker
  /// to drain, then apply the wrapped optimizer.
  void step(const std::vector<nn::Param>& params) override;
  void zero_grad(const std::vector<nn::Param>& params) override;

  /// Total floats this rank has all-reduced (gradient traffic accounting).
  std::size_t floats_reduced() const;
  /// CPU seconds the comm worker spent packing/reducing/unpacking — added
  /// to the rank's busy time for critical-path epoch accounting.
  double comm_busy_s() const;

 private:
  struct Span {
    float* data = nullptr;
    std::size_t n = 0;
  };
  struct Bucket {
    std::vector<Span> spans;
    std::size_t floats = 0;
    double weight = 1.0;
  };

  void stage(const nn::Param& p);
  void flush_open_bucket();
  void wait_drain();
  void reduce_bucket(const Bucket& bucket);
  void worker_loop();

  std::unique_ptr<nn::Optimizer> inner_;
  std::shared_ptr<Context> ctx_;
  int rank_;
  std::size_t bucket_floats_;

  // Issuing-thread state (rank main thread only — never touched by the
  // comm worker, so unguarded by construction).
  bool step_active_ = false;
  double weight_ = 1.0;
  Bucket open_;

  // State shared with the comm worker.
  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<Bucket> queue_ GUARDED_BY(mutex_);
  /// First failure the comm worker hit (CollectiveAbort, injected fault).
  /// Once set, later buckets are discarded-but-counted so wait_drain()
  /// still unblocks; step() rethrows it on the rank thread.
  std::exception_ptr worker_error_ GUARDED_BY(mutex_);
  std::size_t enqueued_ GUARDED_BY(mutex_) = 0;
  std::size_t processed_ GUARDED_BY(mutex_) = 0;
  std::size_t floats_reduced_ GUARDED_BY(mutex_) = 0;
  double comm_busy_s_ GUARDED_BY(mutex_) = 0.0;
  bool stop_ GUARDED_BY(mutex_) = false;
  std::vector<float> pack_;  ///< worker-only scratch
  std::thread worker_;       ///< started only when the group has peers
};

}  // namespace is2::dist
