// Synchronous data-parallel trainer over the ring substrate — the paper's
// Horovod training loop as one call.
//
// `train_distributed` spawns one thread per rank ("thread GPUs": each rank
// is a model replica with its own memory, exchanging gradients only through
// the Communicator). Every rank derives the identical epoch shuffle from
// its own copy of the seeded RNG stream, takes a contiguous
// `batch_per_rank` slice of each global batch of `ranks × batch_per_rank`
// windows, and runs forward/backward locally; gradients stream into the
// DistributedOptimizer's buckets from the backward hook (all-reduce of the
// head's gradients overlaps BPTT still descending), each scaled by
// local_batch / global_batch so the reduced sum is exactly the global-batch
// mean gradient — uneven shard tails and datasets smaller than one global
// batch included, with every sample consumed exactly once per epoch. Ranks
// whose tail slice is empty replay the same bucket sequence with
// zero-weight gradients (`visit_params_backward`) so the collective
// sequence never diverges. With ranks = 1 the loop degenerates to exactly
// `Sequential::fit`'s op sequence — bit-identical final weights.
//
// Determinism: factories run sequentially on the caller thread (rank 0
// first), `broadcast_parameters` aligns any divergent replicas to rank 0,
// shuffles/slices/bucket boundaries are pure functions of config, and every
// reduction is ring-fixed-order — two runs at the same rank count produce
// bit-identical final weights (asserted in test_parallel_determinism).
//
// Timing model: epoch time is the data-parallel critical path — the max
// over ranks of that rank's busy CPU time (main thread + its comm worker's
// delta), measured with CLOCK_THREAD_CPUTIME_ID. On a machine with a core
// per rank this equals wall clock; on a smaller host (single-core CI) it
// still reports what the fleet would see instead of the timeslicing
// artifact wall clock becomes there (docs/distributed.md#timing).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "nn/metrics.hpp"
#include "nn/model.hpp"

namespace is2::dist {

struct TrainerConfig {
  int ranks = 1;
  std::size_t epochs = 5;
  std::size_t batch_per_rank = 32;   ///< global batch = ranks × this
  std::uint64_t shuffle_seed = 17;   ///< same default as nn::FitConfig
  double learning_rate = 0.003;      ///< Adam, the paper's setting
  double focal_gamma = 2.0;          ///< FocalLoss γ
  std::size_t bucket_floats = 0;     ///< 0 = DistributedOptimizer default
  /// Liveness guard: bounds every collective receive (0 = wait forever).
  /// When a rank dies or diverges mid-collective, the survivors abort with
  /// `dist::CollectiveAbort` within this bound instead of deadlocking;
  /// train_distributed joins every rank thread and rethrows it.
  double recv_timeout_ms = 0.0;
  bool verbose = false;
  /// Test seam: invoked once per consumed sample with the dataset row it
  /// came from — what the exactly-once shard-coverage tests count. Called
  /// from rank threads; the hook must be thread-safe.
  std::function<void(int rank, std::size_t epoch, std::size_t sample_index)> sample_hook;
};

struct TrainResult {
  nn::Metrics test_metrics;            ///< final model evaluated on `test`
  std::vector<double> epoch_times_s;   ///< critical-path time per epoch
  double time_per_epoch_s = 0.0;       ///< mean of epoch_times_s
  double total_time_s = 0.0;           ///< sum of epoch_times_s
  double samples_per_s = 0.0;          ///< epochs × n / total_time_s
  std::size_t floats_reduced = 0;      ///< gradient floats all-reduced, all ranks
  nn::Sequential model;                ///< rank 0's final replica (all identical)
};

/// Build a fresh replica per rank. Called sequentially on the caller's
/// thread, rank 0 first — a factory with hidden state (shared RNG, counter)
/// therefore diverges deterministically, and broadcast_parameters re-aligns
/// everyone to rank 0 before the first step.
using ModelFactory = std::function<nn::Sequential()>;

TrainResult train_distributed(const ModelFactory& model_factory, const nn::Dataset& train,
                              const nn::Dataset& test, const TrainerConfig& cfg);

}  // namespace is2::dist
