// Request admission and dispatch for the serving subsystem:
//
//  * `BoundedQueue<T>` — a bounded MPMC queue. push() blocks while the queue
//    is full (backpressure toward the client), try_push() sheds load
//    instead; pop() blocks while empty and drains remaining items after
//    close() so shutdown never drops accepted work.
//  * `BatchScheduler` — coalesces concurrent requests for the same
//    (granule, beam, config) into a single build job (single-flight), queues
//    cold jobs through the bounded queue, and executes them on a
//    `util::ThreadPool` of worker threads. The builder callback runs the
//    heavy granule pipeline (and performs its own cache insert/recheck), so
//    a key is never built twice concurrently and every attached requester
//    shares one `ProductResponse`.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "serve/product_cache.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace is2::serve {

/// One client request: which product to materialize and with which sea
/// surface estimator (the method participates in the config hash, so every
/// method gets its own cache entry).
struct ProductRequest {
  std::string granule_id;
  atl03::BeamId beam = atl03::BeamId::Gt1r;
  seasurface::Method method = seasurface::Method::NasaEquation;
};

/// Outcome shared by every request coalesced onto one build.
struct ProductResponse {
  std::shared_ptr<const GranuleProduct> product;
  bool from_cache = false;  ///< no pipeline ran to answer this response
  double service_ms = 0.0;  ///< queue wait + build wall time (0 on fast path)
};

using ProductFuture = std::shared_future<ProductResponse>;

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Blocking push; returns false iff the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    space_cv_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    item_cv_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    item_cv_.notify_one();
    return true;
  }

  /// Blocking pop; empty optional once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    item_cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    space_cv_.notify_one();
    return item;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable item_cv_;   ///< signaled on push/close
  std::condition_variable space_cv_;  ///< signaled on pop/close
  std::deque<T> items_;
  bool closed_ = false;
};

struct SchedulerStats {
  std::uint64_t dispatched = 0;  ///< build jobs accepted into the queue
  std::uint64_t coalesced = 0;   ///< requests attached to an in-flight build
  std::uint64_t rejected = 0;    ///< try_submit requests shed (queue full)
  std::uint64_t completed = 0;   ///< build jobs finished (ok or error)
  std::size_t queue_depth = 0;   ///< jobs waiting for a worker right now
  std::size_t in_flight = 0;     ///< keys queued or building right now
};

class BatchScheduler {
 public:
  /// Runs the heavy pipeline for one key. Called on a worker thread; must
  /// be thread-safe across distinct keys.
  using Builder = std::function<ProductResponse(const ProductRequest&, const ProductKey&)>;

  struct Config {
    std::size_t workers = 4;
    std::size_t queue_capacity = 64;
  };

  BatchScheduler(const Config& config, Builder builder);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Submit with backpressure: blocks while the queue is full. Requests for
  /// a key already queued or building attach to that job without blocking.
  ProductFuture submit(const ProductRequest& request, const ProductKey& key);

  /// Load-shedding submit: returns std::nullopt instead of blocking when the
  /// queue is full (still attaches to in-flight jobs for free). After
  /// shutdown() both submit flavors return a broken future, so "retry later"
  /// (nullopt) is never confused with "service is down".
  std::optional<ProductFuture> try_submit(const ProductRequest& request, const ProductKey& key);

  SchedulerStats stats() const;

  /// Stop accepting work, finish everything already accepted, join workers.
  void shutdown();

 private:
  struct Job {
    ProductRequest request;
    ProductKey key;
    std::promise<ProductResponse> promise;
    ProductFuture future;
    util::Timer enqueued;  ///< measures queue wait + build = service time
  };
  using JobPtr = std::shared_ptr<Job>;

  JobPtr make_job(const ProductRequest& request, const ProductKey& key) const;
  void drain_loop();

  Config config_;
  Builder builder_;
  BoundedQueue<JobPtr> queue_;

  mutable std::mutex mutex_;  ///< guards inflight_ + counters
  std::unordered_map<ProductKey, JobPtr, ProductKeyHash> inflight_;
  std::uint64_t dispatched_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
  bool shut_down_ = false;

  util::ThreadPool pool_;
  std::vector<std::future<void>> drains_;
};

}  // namespace is2::serve
