// Request admission and dispatch for the serving subsystem.
//
// Ownership / threading contract: every type here is thread-safe; the
// scheduler owns its worker threads and joins them in shutdown()/dtor.
//
//  * `Priority` — the three admission classes. Lower enum value = more
//    important. `interactive` is user-facing traffic, `batch` is planned
//    reprocessing, `background` is opportunistic work (prefetch, backfill)
//    that is always the first to be shed.
//  * `BoundedQueue<T>` — a single-class bounded MPMC queue. push() blocks
//    while the queue is full (backpressure toward the client), try_push()
//    sheds load instead; pop() blocks while empty and drains remaining items
//    after close() so shutdown never drops accepted work.
//  * `PriorityQueue<T>` — the per-class variant the scheduler dispatches
//    from: one bounded deque per `Priority` sharing a total capacity,
//    weighted-round-robin pop (so a flood of interactive work cannot starve
//    background forever, and vice versa), and displacement on try_push: when
//    full, the newest queued item of the lowest class strictly below the
//    incoming one is shed to make room (background first). promote() moves a
//    queued item to a higher class when an important requester coalesces
//    onto a job queued by a less important one.
//  * `BatchScheduler` — coalesces concurrent requests for the same
//    (granule, beam, config) into a single build job (single-flight), queues
//    cold jobs through the priority queue, and executes them on a
//    `util::ThreadPool` of worker threads. The builder callback runs the
//    heavy granule pipeline (and performs its own cache insert/recheck), so
//    a key is never built twice concurrently and every attached requester
//    shares one `ProductResponse`. Which methods block: submit() (while the
//    queue is full); try_submit() never blocks — it sheds instead and
//    reports the shed class. Displaced jobs fail their shared future with
//    `ShedError`.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "serve/product_cache.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace is2::serve {

/// Admission class of a request. Order matters: smaller value = higher
/// priority, and shedding walks from the back of this enum forward.
enum class Priority : std::uint8_t { interactive = 0, batch = 1, background = 2 };

inline constexpr std::size_t kPriorityClasses = 3;

/// Per-class counts/weights, indexed by static_cast<std::size_t>(Priority).
using ClassWeights = std::array<std::size_t, kPriorityClasses>;

const char* priority_name(Priority p);

/// Raised through the shared future of a queued job that was displaced by a
/// higher-priority admission (distinct from the shutdown runtime_error so
/// clients can retry shed work but not shutdown work).
class ShedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised through the shared future of a job whose request carried a
/// `deadline_ms` that expired while the job sat in the queue. Distinct from
/// ShedError: the scheduler chose to shed nothing — the client's latency
/// budget ran out, so building would only waste a worker on an answer
/// nobody is waiting for. Checked at dequeue (deadline-aware shedding).
class DeadlineError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One client request: which product to materialize — how deep
/// (`ProductKind`), with which classifier backend, with which sea surface
/// estimator — and at which admission priority. Kind, backend and method all
/// participate in the cache key, so each combination is its own entry; a
/// deeper kind additionally *resumes* from a cached shallower one instead of
/// rebuilding (see GranuleService::build).
struct ProductRequest {
  std::string granule_id;
  atl03::BeamId beam = atl03::BeamId::Gt1r;
  seasurface::Method method = seasurface::Method::NasaEquation;
  Priority priority = Priority::batch;
  pipeline::ProductKind kind = pipeline::ProductKind::freeboard;
  pipeline::Backend backend = pipeline::Backend::nn;
  /// Client latency budget in ms (0 = none). A job still queued when its
  /// budget expires is dropped at dequeue with `DeadlineError` instead of
  /// occupying a worker. Not part of the cache key; coalesced waiters share
  /// the budget of the job that got queued first.
  double deadline_ms = 0.0;
};

/// Where a response came from. `ram` and `disk` are the two cache tiers;
/// `build` means the full pipeline ran.
enum class ServedFrom : std::uint8_t { build = 0, ram = 1, disk = 2 };

/// Outcome shared by every request coalesced onto one build.
struct ProductResponse {
  std::shared_ptr<const GranuleProduct> product;
  bool from_cache = false;  ///< no pipeline ran to answer this response
  double service_ms = 0.0;  ///< queue wait + build wall time (0 on fast path)
  ServedFrom source = ServedFrom::build;
  /// obs trace id of the job that produced this response (coalesced waiters
  /// share the one id); 0 when tracing is off.
  std::uint64_t trace_id = 0;
  double queue_wait_ms = 0.0;  ///< make_job -> worker pop (0 on fast path)
};

using ProductFuture = std::shared_future<ProductResponse>;

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Blocking push; returns false iff the queue was closed.
  bool push(T item) {
    util::MutexLock lock(mutex_);
    // Explicit wait loops throughout (not predicate lambdas): the
    // thread-safety analysis only sees guarded reads under the held lock.
    while (!closed_ && items_.size() >= capacity_) space_cv_.wait(lock);
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    item_cv_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      util::MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    item_cv_.notify_one();
    return true;
  }

  /// Blocking pop; empty optional once closed and drained.
  std::optional<T> pop() {
    util::MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) item_cv_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    space_cv_.notify_one();
    return item;
  }

  void close() {
    {
      util::MutexLock lock(mutex_);
      closed_ = true;
    }
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  std::size_t size() const {
    util::MutexLock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable util::Mutex mutex_;
  util::CondVar item_cv_;   ///< signaled on push/close
  util::CondVar space_cv_;  ///< signaled on pop/close
  std::deque<T> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

/// Bounded MPMC queue with one FIFO lane per `Priority`, a shared total
/// capacity, weighted-round-robin dequeue and class-aware displacement.
/// Thread-safe; push() blocks, everything else does not.
template <typename T>
class PriorityQueue {
 public:
  using Weights = ClassWeights;

  /// `weights` are dequeues granted per class per round-robin cycle
  /// (work-conserving: an empty class forfeits its turns, and a zero weight
  /// only defers a non-empty class until every other class is empty or out
  /// of credit).
  explicit PriorityQueue(std::size_t capacity, Weights weights = {8, 3, 1})
      : capacity_(capacity ? capacity : 1), weights_(weights), credits_(weights) {}

  /// Blocking push; waits for total space. Returns false iff closed.
  bool push(T item, Priority cls) {
    util::MutexLock lock(mutex_);
    while (!closed_ && total_locked() >= capacity_) space_cv_.wait(lock);
    if (closed_) return false;
    lane(cls).push_back(std::move(item));
    lock.unlock();
    item_cv_.notify_one();
    return true;
  }

  /// Non-blocking push with displacement. When the queue is full, the newest
  /// queued item of the lowest non-empty class *strictly below* `cls` is
  /// removed into *victim to make room (shed background first). Returns
  /// false — the push itself is shed — when closed, or when full with
  /// nothing lower-class queued.
  bool try_push(T item, Priority cls,
                std::optional<std::pair<T, Priority>>* victim = nullptr) {
    util::MutexLock lock(mutex_);
    if (victim) victim->reset();
    if (closed_) return false;
    if (total_locked() >= capacity_) {
      const auto incoming = static_cast<std::size_t>(cls);
      std::size_t shed = kPriorityClasses;
      for (std::size_t c = kPriorityClasses; c-- > incoming + 1;) {
        if (!items_[c].empty()) {
          shed = c;
          break;
        }
      }
      if (shed == kPriorityClasses) return false;
      if (victim) victim->emplace(std::move(items_[shed].back()), static_cast<Priority>(shed));
      items_[shed].pop_back();
    }
    lane(cls).push_back(std::move(item));
    lock.unlock();
    item_cv_.notify_one();
    return true;
  }

  /// Move a queued item to a higher class; no-op (false) when the item is
  /// not queued below `to` (e.g. already being built).
  bool promote(const T& item, Priority to) {
    util::MutexLock lock(mutex_);
    for (std::size_t c = static_cast<std::size_t>(to) + 1; c < kPriorityClasses; ++c) {
      auto& dq = items_[c];
      const auto it = std::find(dq.begin(), dq.end(), item);
      if (it == dq.end()) continue;
      dq.erase(it);
      lane(to).push_back(item);
      return true;
    }
    return false;
  }

  /// Blocking weighted pop; empty optional once closed and drained. Classes
  /// are scanned highest-priority-first, each consuming up to its weight in
  /// credits before yielding the cycle; credits refill when no eligible
  /// class has any left.
  std::optional<std::pair<T, Priority>> pop() {
    util::MutexLock lock(mutex_);
    while (!closed_ && total_locked() == 0) item_cv_.wait(lock);
    if (total_locked() == 0) return std::nullopt;
    std::size_t pick = kPriorityClasses;
    for (int round = 0; round < 2 && pick == kPriorityClasses; ++round) {
      for (std::size_t c = 0; c < kPriorityClasses; ++c) {
        if (!items_[c].empty() && credits_[c] > 0) {
          pick = c;
          break;
        }
      }
      if (pick == kPriorityClasses) credits_ = weights_;  // cycle exhausted
    }
    if (pick == kPriorityClasses) {  // only zero-weight classes are non-empty
      for (std::size_t c = 0; c < kPriorityClasses; ++c)
        if (!items_[c].empty()) {
          pick = c;
          break;
        }
    }
    if (credits_[pick] > 0) --credits_[pick];
    std::pair<T, Priority> out{std::move(items_[pick].front()), static_cast<Priority>(pick)};
    items_[pick].pop_front();
    lock.unlock();
    space_cv_.notify_one();
    return out;
  }

  void close() {
    {
      util::MutexLock lock(mutex_);
      closed_ = true;
    }
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  std::size_t size() const {
    util::MutexLock lock(mutex_);
    return total_locked();
  }

  std::size_t size(Priority cls) const {
    util::MutexLock lock(mutex_);
    return items_[static_cast<std::size_t>(cls)].size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  std::deque<T>& lane(Priority cls) REQUIRES(mutex_) {
    return items_[static_cast<std::size_t>(cls)];
  }
  std::size_t total_locked() const REQUIRES(mutex_) {
    std::size_t n = 0;
    for (const auto& dq : items_) n += dq.size();
    return n;
  }

  const std::size_t capacity_;
  const Weights weights_;
  mutable util::Mutex mutex_;
  util::CondVar item_cv_;   ///< signaled on push/close
  util::CondVar space_cv_;  ///< signaled on pop/close
  std::array<std::deque<T>, kPriorityClasses> items_ GUARDED_BY(mutex_);
  Weights credits_ GUARDED_BY(mutex_);  ///< remaining dequeues this cycle
  bool closed_ GUARDED_BY(mutex_) = false;
};

/// Scheduler counters, as a value snapshot. Since the obs migration this is
/// assembled from registry-backed instruments (`is2_sched_*` counters with
/// per-class labels) by stats() — the struct shape is preserved for tests
/// and benches, and the same numbers flow through `obs::to_prometheus`.
struct SchedulerStats {
  std::uint64_t dispatched = 0;  ///< build jobs accepted into the queue
  std::uint64_t coalesced = 0;   ///< requests attached to an in-flight build
  std::uint64_t rejected = 0;    ///< try_submit requests shed on arrival
  std::uint64_t displaced = 0;   ///< queued jobs shed to admit a higher class
  std::uint64_t deadline_expired = 0;  ///< jobs dropped at dequeue, budget spent
  std::uint64_t completed = 0;   ///< build jobs finished (ok, error or deadline)
  std::size_t queue_depth = 0;   ///< jobs waiting for a worker right now
  std::size_t in_flight = 0;     ///< keys queued or building right now
  /// Shed totals by the class of what was lost: a rejected arrival counts
  /// under its own class, a displaced queued job under the class it held.
  std::array<std::uint64_t, kPriorityClasses> shed_by_class{};
  std::array<std::uint64_t, kPriorityClasses> dispatched_by_class{};
  std::array<std::uint64_t, kPriorityClasses> deadline_expired_by_class{};
  std::array<std::size_t, kPriorityClasses> queue_depth_by_class{};
};

class BatchScheduler {
 public:
  /// Runs the heavy pipeline for one key. Called on a worker thread; must
  /// be thread-safe across distinct keys.
  using Builder = std::function<ProductResponse(const ProductRequest&, const ProductKey&)>;

  struct Config {
    std::size_t workers = 4;
    std::size_t queue_capacity = 64;
    /// Weighted-round-robin dequeue shares per class (interactive, batch,
    /// background) per cycle.
    ClassWeights class_weights = {8, 3, 1};
    /// Called once per successfully served job (not per coalesced waiter)
    /// with the submitting request's class, the job's service time (queue
    /// wait + execution — the quantity the weighted dequeue and
    /// displacement actually shape) and the queue-wait share of it. Runs
    /// on a worker thread.
    std::function<void(Priority, double service_ms, double queue_wait_ms)> on_served;
    /// Registry the scheduler registers its `is2_sched_*` instruments in;
    /// nullptr = the scheduler owns a private registry (stats() works the
    /// same either way).
    obs::Registry* registry = nullptr;
    /// Tracer that mints one TraceContext per dispatched job and receives
    /// coalesce/displacement instant events; nullptr = tracing off.
    obs::Tracer* tracer = nullptr;
  };

  BatchScheduler(const Config& config, Builder builder);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Submit with backpressure: blocks while the queue is full. Requests for
  /// a key already queued or building attach to that job without blocking
  /// (and promote it to their class when that class is higher).
  ProductFuture submit(const ProductRequest& request, const ProductKey& key);

  /// Load-shedding submit: never blocks. When the queue is full, a queued
  /// job of a class strictly below the request's is displaced to admit it
  /// (the victim's waiters see ShedError); when nothing lower is queued the
  /// request itself is shed and std::nullopt is returned. `shed_class`, when
  /// non-null, reports which class paid: the victim's on displacement, the
  /// request's own on rejection, unset otherwise. Still attaches to
  /// in-flight jobs for free. After shutdown() both submit flavors return a
  /// broken future, so "retry later" (nullopt) is never confused with
  /// "service is down".
  std::optional<ProductFuture> try_submit(const ProductRequest& request, const ProductKey& key,
                                          std::optional<Priority>* shed_class = nullptr);

  SchedulerStats stats() const;

  /// Stop accepting work, finish everything already accepted, join workers.
  void shutdown();

 private:
  struct Job {
    ProductRequest request;
    ProductKey key;
    Priority cls = Priority::batch;  ///< current queue class, guarded by mutex_
    std::promise<ProductResponse> promise;
    ProductFuture future;
    util::Timer enqueued;  ///< measures queue wait + build = service time
    /// Minted with the job; owned by the submitter until the push lands,
    /// then by the worker that pops it. Coalescers / displacers must not
    /// touch a foreign context — they record ring instants by trace id.
    obs::TraceContext trace;
  };
  using JobPtr = std::shared_ptr<Job>;

  JobPtr make_job(const ProductRequest& request, const ProductKey& key) const;
  void drain_loop();
  obs::Labels class_labels(Priority cls) const;

  Config config_;
  Builder builder_;
  PriorityQueue<JobPtr> queue_;

  /// Also guards Job::cls of every in-flight job (a cross-object contract
  /// GUARDED_BY cannot spell on Job itself — see the Job::cls comment).
  mutable util::Mutex mutex_;
  std::unordered_map<ProductKey, JobPtr, ProductKeyHash> inflight_ GUARDED_BY(mutex_);
  bool shut_down_ GUARDED_BY(mutex_) = false;

  /// Counters live in the registry (monotonic, lock-free increments; read
  /// back by stats() and exported by obs::to_prometheus). Owned registry
  /// only when Config::registry was null.
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;
  std::array<obs::Counter*, kPriorityClasses> dispatched_total_{};
  std::array<obs::Counter*, kPriorityClasses> coalesced_total_{};
  std::array<obs::Counter*, kPriorityClasses> rejected_total_{};
  std::array<obs::Counter*, kPriorityClasses> displaced_total_{};
  std::array<obs::Counter*, kPriorityClasses> deadline_expired_total_{};
  obs::Counter* completed_total_ = nullptr;
  std::array<obs::Gauge*, kPriorityClasses> queue_depth_gauge_{};
  obs::Gauge* in_flight_gauge_ = nullptr;

  util::ThreadPool pool_;
  std::vector<std::future<void>> drains_;
};

}  // namespace is2::serve
