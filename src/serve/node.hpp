// NodeHandle — the abstract serving-node surface the `serve::Cluster`
// router programs against, extracted from `GranuleService` so a node can be
// a local in-process service today and a remote stub (same calls over a
// socket) later without touching the routing layer.
//
// The interface is exactly the service's client-facing API (submit /
// try_submit / warm / key_for / metrics / obs_snapshot / shutdown) plus the
// two-method *peer-fetch surface* (`peek_ram` / `promote_ram`): the cluster
// probes the replica set's RAM tiers through it on an owner-miss and copies
// a resident product across nodes instead of paying shard IO + inference.
// Both are keyed by the exact `ProductKey`, carry no service-side policy,
// and move only an immutable `shared_ptr<const GranuleProduct>` — the
// shape that serializes naturally once nodes live in other processes.
//
// `ServiceMetrics` (and its per-class slice) live here rather than in
// service.hpp because they are part of the node surface: the cluster
// aggregates them per node and the benches read them through NodeHandle.
//
// Ownership / threading contract: every method on a NodeHandle is
// thread-safe (the router calls it from many client threads concurrently);
// shutdown() is idempotent and drains accepted work. After shutdown() the
// submit flavors return broken futures — the cluster stops routing to a
// node *before* shutting it down, so clients only see that during a race
// with a node kill.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "obs/registry.hpp"
#include "pipeline/stage.hpp"
#include "serve/disk_cache.hpp"
#include "serve/scheduler.hpp"

namespace is2::mapred {
class Engine;
}

namespace is2::serve {

/// Per-stage latency machinery lives with the stage graph
/// (pipeline/stage.hpp) so batch builds and benches share it; this alias
/// keeps serve-side code and tests source-compatible.
using StageLatency = pipeline::StageLatency;

/// Per-priority-class slice of the service metrics: how much traffic the
/// class sent and the service latency it observed. Fast RAM hits record ~0
/// (bottom histogram bin); scheduled jobs record queue wait + execution
/// (disk load or full build) once per job at completion — coalesced waiters
/// share that job's sample, so under same-key races latency.count() can be
/// below requests.
struct ClassMetrics {
  std::uint64_t requests = 0;
  StageLatency latency;  ///< RAM probe ~0 / queue wait + disk load / + build
};

struct ServiceMetrics {
  CacheStats cache;          ///< RAM tier
  DiskCacheStats disk;       ///< disk tier (zeroed when no disk tier; the
                             ///< fleet-wide numbers when the tier is shared)
  SchedulerStats scheduler;
  std::uint64_t requests = 0;   ///< submit + try_submit calls
  std::uint64_t fast_hits = 0;  ///< answered from RAM cache without dispatch
  std::uint64_t writeback_failures = 0;  ///< async disk writes that threw
  std::uint64_t inference_batches = 0;
  std::uint64_t inference_windows = 0;
  StageLatency load;        ///< shard read + preprocess + resample + FPB
  StageLatency features;    ///< baseline + feature rows + standardization
  StageLatency inference;   ///< classify stage (batched backend inference)
  StageLatency seasurface;  ///< local sea surface detection
  StageLatency freeboard;   ///< freeboard computation
  StageLatency disk_load;   ///< disk-tier hit: read + deserialize + promote
  StageLatency total;       ///< whole build (cold only; resumed = suffix)
  /// Scheduled jobs only (the fast RAM path never queues): how long the job
  /// waited for a worker, and the full queue wait + execution. service_time
  /// minus queue_wait is pure execution — the split the benches trend.
  StageLatency queue_wait;
  StageLatency service_time;
  std::array<ClassMetrics, kPriorityClasses> by_class;  ///< index = Priority
  /// Raw per-stage distributions straight from the ProductBuilder — the
  /// seven stage-graph stages by StageId (shard IO is serve-side and lives
  /// in `load` above, not here). The benches emit these.
  pipeline::StageSnapshot builder{};
  std::uint64_t resumed_builds = 0;  ///< builds seeded from a shallower kind
};

/// One serving node as the cluster router sees it. Implemented by the
/// in-process `GranuleService`; a future remote node implements the same
/// calls over a transport.
class NodeHandle {
 public:
  virtual ~NodeHandle() = default;

  /// Asynchronous serve with backpressure (blocks while the node's queue is
  /// full); cache fast path resolves immediately.
  virtual ProductFuture submit(const ProductRequest& request) = 0;

  /// Load-shedding serve: never blocks; std::nullopt = shed ("retry later").
  virtual std::optional<ProductFuture> try_submit(
      const ProductRequest& request, std::optional<Priority>* shed_class = nullptr) = 0;

  /// Bulk cache warm-up on a map-reduce engine (one task per request).
  /// Returns the number of products actually built (cache misses).
  virtual std::size_t warm(const std::vector<ProductRequest>& requests,
                           mapred::Engine& engine) = 0;

  /// Cache key a request resolves to on this node. Nodes built from the
  /// same config and model produce identical keys — the property that lets
  /// the cluster route by key and fetch products across peers.
  virtual ProductKey key_for(const ProductRequest& request) const = 0;

  virtual ServiceMetrics metrics() const = 0;

  /// Registry snapshot with every lazily-synced instrument refreshed —
  /// what an exposition endpoint serves; the cluster merges these under a
  /// per-node `node` label.
  virtual obs::RegistrySnapshot obs_snapshot() const = 0;

  // Peer-fetch surface ------------------------------------------------------

  /// Speculative RAM-tier probe by exact key: no hit/miss counters (these
  /// probes are router traffic, not client requests), LRU refreshed on hit.
  virtual std::shared_ptr<const GranuleProduct> peek_ram(const ProductKey& key) = 0;

  /// Insert a product fetched from a peer into this node's RAM tier, so the
  /// next request for `key` fast-hits here instead of re-probing the fleet.
  virtual void promote_ram(const ProductKey& key,
                           std::shared_ptr<const GranuleProduct> product) = 0;

  /// Drain accepted work; idempotent. The cluster removes a node from the
  /// ring before calling this, so no new traffic routes here.
  virtual void shutdown() = 0;
};

}  // namespace is2::serve
