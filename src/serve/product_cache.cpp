#include "serve/product_cache.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace is2::serve {

std::size_t ProductKeyHash::operator()(const ProductKey& key) const {
  std::uint64_t h = std::hash<std::string>{}(key.granule_id);
  h = util::hash64(h ^ (static_cast<std::uint64_t>(key.beam) + 0x9E3779B97F4A7C15ULL));
  h = util::hash64(h ^ key.config_hash);
  h = util::hash64(h ^ (static_cast<std::uint64_t>(key.kind) |
                        static_cast<std::uint64_t>(key.backend) << 8));
  return static_cast<std::size_t>(h);
}

std::size_t GranuleProduct::approx_bytes() const {
  std::size_t bytes = sizeof(GranuleProduct);
  bytes += granule_id.capacity();
  bytes += segments.capacity() * sizeof(resample::Segment);
  bytes += classes.capacity() * sizeof(atl03::SurfaceClass);
  bytes += sea_surface.points().capacity() * sizeof(seasurface::SeaSurfacePoint);
  bytes += freeboard.points.capacity() * sizeof(freeboard::FreeboardPoint);
  return bytes;
}

ProductCache::ProductCache(std::size_t byte_budget, std::size_t num_shards,
                           obs::Registry* registry)
    : byte_budget_(byte_budget) {
  if (num_shards == 0) num_shards = 1;
  shard_budget_ = byte_budget_ / num_shards;
  if (shard_budget_ == 0) shard_budget_ = 1;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) shards_.push_back(std::make_unique<Shard>());
  if (registry) {
    const obs::Labels tier{{"tier", "ram"}};
    hits_total_ = &registry->counter("is2_cache_hits_total", tier, "client lookups served");
    misses_total_ = &registry->counter("is2_cache_misses_total", tier, "client lookups missed");
    evictions_total_ =
        &registry->counter("is2_cache_evictions_total", tier, "entries evicted by byte budget");
    insertions_total_ = &registry->counter("is2_cache_insertions_total", tier, "entries inserted");
    bytes_gauge_ = &registry->gauge("is2_cache_bytes", tier, "resident product bytes");
    entries_gauge_ = &registry->gauge("is2_cache_entries", tier, "resident product count");
  }
}

void ProductCache::sync_registry(const CacheStats& totals) const {
  if (!hits_total_) return;
  util::MutexLock lock(export_mutex_);
  // Counter increments are exact deltas vs the last sync; totals can only
  // grow, so the subtractions never underflow.
  hits_total_->inc(totals.hits - exported_.hits);
  misses_total_->inc(totals.misses - exported_.misses);
  evictions_total_->inc(totals.evictions - exported_.evictions);
  insertions_total_->inc(totals.insertions - exported_.insertions);
  bytes_gauge_->set(static_cast<double>(totals.bytes));
  entries_gauge_->set(static_cast<double>(totals.entries));
  exported_ = totals;
}

ProductCache::Shard& ProductCache::shard_for(const ProductKey& key) const {
  return *shards_[ProductKeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const GranuleProduct> ProductCache::get(const ProductKey& key) {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh
  return it->second->product;
}

std::shared_ptr<const GranuleProduct> ProductCache::peek(const ProductKey& key) {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;  // not a client miss: uncounted
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh
  return it->second->product;
}

void ProductCache::put(const ProductKey& key, std::shared_ptr<const GranuleProduct> product) {
  if (!product) throw std::invalid_argument("ProductCache::put: null product");
  const std::size_t bytes = product->approx_bytes();
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);

  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(Entry{key, std::move(product), bytes});
  shard.index[key] = shard.lru.begin();
  shard.bytes += bytes;
  ++shard.insertions;

  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

bool ProductCache::contains(const ProductKey& key) const {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mutex);
  return shard.index.count(key) != 0;
}

CacheStats ProductCache::stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.insertions += shard->insertions;
    out.bytes += shard->bytes;
    out.entries += shard->lru.size();
  }
  sync_registry(out);
  return out;
}

void ProductCache::clear() {
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

}  // namespace is2::serve
