// serve::Cluster — an in-process fleet of serving nodes behind a
// consistent-hash router. The scale-out layer of `src/serve/`: N
// `GranuleService` nodes (each with its own RAM tier, scheduler and obs
// registry) held behind the `NodeHandle` interface, one shared `DiskCache`
// directory as the fleet-wide cold tier, and a router that turns a
// `ProductRequest` into "which node serves this key".
//
// Routing. The request's *shallow* (classification-kind) `ProductKey`
// hashes onto a `HashRing` (virtual nodes; see hash_ring.hpp). Because
// product fingerprints are stage-prefix-scoped, every stage depth and
// sea-surface method of one (granule, beam, backend) co-locates — a warmed
// classification prefix sits exactly where a deeper freeboard request
// routes, keeping the cross-tier resume path alive fleet-wide. Cold keys
// go to the ring owner, so each key's working set concentrates on one
// node's RAM tier. Keys whose observed
// popularity crosses `hot_key_threshold` (the Zipf head) are instead
// round-robined across the key's replica set (`replication_factor` distinct
// ring successors) so one scorching granule spreads over several nodes.
//
// Peer fetch. Before dispatching to the target node, the router peeks the
// target's RAM tier; on a miss it probes the rest of the key's replica set
// (`peek_ram`, cheapest possible call) and, on a hit, copies the resident
// product into the target (`promote_ram`) — the request then fast-hits
// instead of paying shard IO + inference. Counters
// (`is2_cluster_peer_probe_total` / `is2_cluster_peer_fetch_total`) assert
// the skip in tests; responses stay bit-identical because the product
// object itself moves.
//
// Miss path order at the target node is therefore: RAM -> peer RAM ->
// shared disk -> shallower-kind resume -> full rebuild.
//
// Node kill. `kill_node(i)` removes the node from the ring (re-routing only
// its key ranges — consistent hashing's minimal-churn property), then
// drains it. Re-routed keys land on their new owner and usually recover
// from the shared disk tier without shard IO.
//
// Observability. The cluster owns a registry for router metrics and the
// shared disk tier; `obs_snapshot()` merges it with every node's snapshot,
// tagging node-local points with a `node="node<i>"` label (bounded
// cardinality: one value per node; see docs/observability.md) and
// re-sorting by (name, labels) so `obs::to_prometheus` groups families
// correctly.
//
// Threading: submit/try_submit/warm/metrics/obs_snapshot are thread-safe;
// the router mutex covers only ring/popularity bookkeeping, never a build.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/registry.hpp"
#include "serve/hash_ring.hpp"
#include "serve/node.hpp"
#include "serve/service.hpp"
#include "util/backoff.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace is2::serve {

struct ClusterConfig {
  std::size_t nodes = 3;
  std::size_t vnodes = 128;  ///< ring points per node (balance knob)
  /// Replica-set size for hot keys and peer-fetch probing. 1 disables both
  /// (owner-only routing, no peers to probe).
  std::size_t replication_factor = 2;
  /// Requests for one key before it counts as hot and spreads over its
  /// replica set. The popularity ledger is approximate: bounded to
  /// `popularity_capacity` keys and reset when full (a slow decay).
  std::uint64_t hot_key_threshold = 16;
  std::size_t popularity_capacity = 1u << 16;
  /// Self-healing: a "node failure" is a thrown submit or probe against a
  /// live node (injected fault, dying service). This many *consecutive*
  /// failures quarantine the node — out of the ring but not drained, RAM
  /// intact, revivable. 0 disables the automatic ledger (explicit
  /// quarantine_node still works).
  std::uint64_t quarantine_after = 3;
  /// Hot ledger keys re-replicated off a freshly quarantined node onto
  /// their new owners — bounds the healing work done per transition.
  std::size_t rereplicate_limit = 64;
  /// Peer-fetch resilience: retries per peer after a thrown probe, and the
  /// (seeded) backoff between them. The whole probe phase also respects the
  /// request's remaining deadline budget.
  std::size_t peer_retries = 1;
  util::BackoffConfig peer_backoff{0.2, 5.0};
  /// Per-node service knobs. disk_cache_dir / disk_cache_bytes / shared_disk
  /// are overridden by the cluster (nodes must not each open the shared
  /// directory); everything else applies to every node identically —
  /// identical config + model is what makes keys and products portable
  /// across the fleet.
  ServiceConfig node;
  /// Fleet-wide cold tier directory; empty = RAM tiers only.
  std::string shared_disk_dir;
  std::size_t shared_disk_bytes = 1ull << 30;
};

struct ClusterMetrics {
  std::vector<ServiceMetrics> nodes;  ///< per node, dead nodes included
  std::vector<bool> live;
  std::vector<bool> quarantined;      ///< in the fleet but out of the ring
  std::vector<std::uint64_t> routed;  ///< requests routed per node
  std::uint64_t requests = 0;
  std::uint64_t peer_probes = 0;    ///< peek_ram calls against peers
  std::uint64_t peer_fetches = 0;   ///< probes that hit and promoted
  std::uint64_t replica_routes = 0; ///< hot-key requests sent off-owner
  std::uint64_t hot_keys = 0;       ///< keys promoted past the threshold
  std::uint64_t node_failures = 0;  ///< thrown submits/probes recorded
  std::uint64_t quarantines = 0;    ///< live -> quarantined transitions
  std::uint64_t revives = 0;        ///< quarantined -> live transitions
  std::uint64_t rereplicated_keys = 0;  ///< hot keys healed off quarantined nodes
  DiskCacheStats shared_disk;       ///< zeroed when no shared tier
  /// Max/mean routed-requests ratio over live nodes (1.0 = perfectly even);
  /// 0 when nothing was routed.
  double imbalance() const;
};

class Cluster {
 public:
  /// Same construction surface as one GranuleService; the shard index,
  /// model factory and scaler are fanned out to every node so the fleet is
  /// homogeneous. Node count and routing knobs come from `ClusterConfig`.
  Cluster(const ClusterConfig& config, const core::PipelineConfig& pipeline,
          const geo::GeoCorrections& corrections, const ShardIndex& index,
          GranuleService::ModelFactory model_factory, resample::FeatureScaler scaler,
          GranuleService::TreeFactory tree_factory = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Route and serve (blocking backpressure on the target node's queue).
  ProductFuture submit(const ProductRequest& request);

  /// Route and serve without blocking; sheds exactly like the node-level
  /// call (std::nullopt / ShedError on displaced waiters).
  std::optional<ProductFuture> try_submit(const ProductRequest& request,
                                          std::optional<Priority>* shed_class = nullptr);

  /// Prefetch lever: rewrites every request to the *shallow* kind
  /// (classification — the expensive prefix: shard IO + inference), groups
  /// by owning node and fans each group out on the engine. Interactive
  /// traffic later deepens the cached prefix on demand through the
  /// cross-tier resume path, so warming never pays for seasurface/freeboard
  /// stages nobody may ask for. Returns products actually built.
  std::size_t warm(const std::vector<ProductRequest>& requests, mapred::Engine& engine);

  /// Cache key a request resolves to (identical on every node).
  ProductKey key_for(const ProductRequest& request) const;
  /// Ring owner / replica set of a key (exposed for tests and ops).
  std::uint32_t owner_of(const ProductKey& key) const;
  std::vector<std::uint32_t> replica_set_of(const ProductKey& key) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t live_count() const;
  bool is_live(std::size_t i) const;
  /// Direct node access (tests, metrics drill-down). Valid for the cluster
  /// lifetime, even after kill_node.
  NodeHandle& node(std::size_t i) { return *nodes_.at(i); }

  /// Take a node out of the fleet: remove it from the ring (its key ranges
  /// re-route with minimal churn), then drain it. Idempotent and terminal —
  /// a killed node cannot be revived. In-flight requests already routed
  /// there during the call may see broken futures — the same contract as a
  /// real node crash, minus the UB.
  void kill_node(std::size_t i);

  /// Take a flapping node out of the ring WITHOUT draining it: its RAM tier
  /// stays intact and revive_node() brings it back. Hot ledger keys are
  /// re-replicated onto their new owners (bounded by rereplicate_limit) so
  /// the fleet keeps fast-hitting what the node held. Idempotent; no-op on
  /// a node that is already out (quarantined or killed).
  void quarantine_node(std::size_t i);

  /// Rejoin a quarantined node. HashRing add/remove are exact inverses, so
  /// the restored ring — and thus routing — is bit-identical to the
  /// pre-quarantine ring. No-op unless the node is currently quarantined.
  void revive_node(std::size_t i);

  bool is_quarantined(std::size_t i) const;

  /// Active failure detection: probe every live node's RAM tier (through
  /// the `peer.peek` fault site, so chaos plans can fail it); a thrown
  /// probe feeds the consecutive-failure ledger and can quarantine the
  /// node. Dead and quarantined nodes are never probed. Returns the number
  /// of healthy probes this sweep.
  std::size_t probe_health();

  ClusterMetrics metrics() const;

  /// Router + shared-disk instruments only (`is2_cluster_*`); node
  /// instruments live in each node's registry.
  const obs::Registry& registry() const { return registry_; }

  /// Fleet-wide exposition: cluster registry points plus every node's
  /// snapshot labeled `node="node<i>"`, re-sorted by (name, labels).
  obs::RegistrySnapshot obs_snapshot() const;

  /// Shared cold tier (nullptr when shared_disk_dir is empty).
  const DiskCache* shared_disk() const { return disk_.get(); }

  /// Drain pending disk write-backs on every live node (tests / restarts).
  void wait_disk_writebacks();

  /// Drain every live node, idempotent.
  void shutdown();

 private:
  struct Route {
    ProductKey key;           ///< exact key (cache lookups, popularity)
    std::uint64_t hash = 0;   ///< shallow-key ring hash (placement)
    std::size_t target = 0;
  };
  /// Pick the target node for a request (ring owner, or replica-set
  /// round-robin once hot) and update popularity/routing counters.
  Route route(const ProductRequest& request);
  /// On a target RAM miss, probe the key's other live replicas and promote
  /// a hit into the target. Best effort; returns whether a peer hit. A
  /// thrown probe (`peer.peek` fault) is retried `peer_retries` times with
  /// backoff, all bounded by `budget_ms` (0 = unlimited) — the request's
  /// remaining deadline.
  bool peer_fetch(const ProductKey& key, std::uint64_t hash, std::size_t target,
                  double budget_ms);
  /// Failover order for a routed request: target first, then the rest of
  /// its live replica set (at least one fallback even at replication 1).
  std::vector<std::size_t> candidates_for(const Route& r) const;
  /// Consecutive-failure ledger. note_failure may quarantine (never under
  /// the router lock); note_success resets the node's streak.
  void note_failure(std::size_t i);
  void note_success(std::size_t i);
  void sync_gauges_locked() REQUIRES(mutex_);
  /// Throws when the fleet is down.
  std::size_t first_live_locked() const REQUIRES(mutex_);
  static std::uint64_t ring_hash(const ProductKey& key);
  /// Ring position of a key: the hash of its classification-kind sibling,
  /// so all depths/methods of one granule co-locate. Takes mutex_ (via
  /// key_for) — never call while holding it.
  std::uint64_t routing_hash(const ProductKey& key) const EXCLUDES(mutex_);

  ClusterConfig config_;

  /// Router/shared-tier observability — declared before the disk tier and
  /// nodes that register into / outlive-depend on it.
  obs::Registry registry_;
  std::vector<obs::Counter*> routed_total_;  ///< per node, node label
  obs::Counter* peer_probe_total_ = nullptr;
  obs::Counter* peer_fetch_total_ = nullptr;
  obs::Counter* replica_route_total_ = nullptr;
  obs::Counter* hot_key_total_ = nullptr;
  obs::Counter* node_failure_total_ = nullptr;
  obs::Counter* quarantine_total_ = nullptr;
  obs::Counter* revive_total_ = nullptr;
  obs::Counter* rereplicated_total_ = nullptr;
  obs::Gauge* live_nodes_gauge_ = nullptr;
  obs::Gauge* quarantined_gauge_ = nullptr;

  std::unique_ptr<DiskCache> disk_;  ///< shared cold tier; outlives nodes_
  std::vector<std::unique_ptr<GranuleService>> nodes_;

  mutable util::Mutex mutex_;  ///< ring + popularity + live set + ledger
  HashRing ring_ GUARDED_BY(mutex_);
  std::vector<bool> live_ GUARDED_BY(mutex_);
  /// Disjoint from killed_; both imply !live_.
  std::vector<bool> quarantined_ GUARDED_BY(mutex_);
  std::vector<bool> killed_ GUARDED_BY(mutex_);  ///< drained, terminal
  std::vector<std::uint64_t> consecutive_failures_ GUARDED_BY(mutex_);
  std::unordered_map<ProductKey, std::uint64_t, ProductKeyHash> popularity_
      GUARDED_BY(mutex_);
  /// Round-robin cursor over replica sets.
  std::uint64_t hot_rr_ GUARDED_BY(mutex_) = 0;
  bool shut_down_ GUARDED_BY(mutex_) = false;
};

}  // namespace is2::serve
