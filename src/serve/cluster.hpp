// serve::Cluster — an in-process fleet of serving nodes behind a
// consistent-hash router. The scale-out layer of `src/serve/`: N
// `GranuleService` nodes (each with its own RAM tier, scheduler and obs
// registry) held behind the `NodeHandle` interface, one shared `DiskCache`
// directory as the fleet-wide cold tier, and a router that turns a
// `ProductRequest` into "which node serves this key".
//
// Routing. The request's *shallow* (classification-kind) `ProductKey`
// hashes onto a `HashRing` (virtual nodes; see hash_ring.hpp). Because
// product fingerprints are stage-prefix-scoped, every stage depth and
// sea-surface method of one (granule, beam, backend) co-locates — a warmed
// classification prefix sits exactly where a deeper freeboard request
// routes, keeping the cross-tier resume path alive fleet-wide. Cold keys
// go to the ring owner, so each key's working set concentrates on one
// node's RAM tier. Keys whose observed
// popularity crosses `hot_key_threshold` (the Zipf head) are instead
// round-robined across the key's replica set (`replication_factor` distinct
// ring successors) so one scorching granule spreads over several nodes.
//
// Peer fetch. Before dispatching to the target node, the router peeks the
// target's RAM tier; on a miss it probes the rest of the key's replica set
// (`peek_ram`, cheapest possible call) and, on a hit, copies the resident
// product into the target (`promote_ram`) — the request then fast-hits
// instead of paying shard IO + inference. Counters
// (`is2_cluster_peer_probe_total` / `is2_cluster_peer_fetch_total`) assert
// the skip in tests; responses stay bit-identical because the product
// object itself moves.
//
// Miss path order at the target node is therefore: RAM -> peer RAM ->
// shared disk -> shallower-kind resume -> full rebuild.
//
// Node kill. `kill_node(i)` removes the node from the ring (re-routing only
// its key ranges — consistent hashing's minimal-churn property), then
// drains it. Re-routed keys land on their new owner and usually recover
// from the shared disk tier without shard IO.
//
// Observability. The cluster owns a registry for router metrics and the
// shared disk tier; `obs_snapshot()` merges it with every node's snapshot,
// tagging node-local points with a `node="node<i>"` label (bounded
// cardinality: one value per node; see docs/observability.md) and
// re-sorting by (name, labels) so `obs::to_prometheus` groups families
// correctly.
//
// Threading: submit/try_submit/warm/metrics/obs_snapshot are thread-safe;
// the router mutex covers only ring/popularity bookkeeping, never a build.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/registry.hpp"
#include "serve/hash_ring.hpp"
#include "serve/node.hpp"
#include "serve/service.hpp"

namespace is2::serve {

struct ClusterConfig {
  std::size_t nodes = 3;
  std::size_t vnodes = 128;  ///< ring points per node (balance knob)
  /// Replica-set size for hot keys and peer-fetch probing. 1 disables both
  /// (owner-only routing, no peers to probe).
  std::size_t replication_factor = 2;
  /// Requests for one key before it counts as hot and spreads over its
  /// replica set. The popularity ledger is approximate: bounded to
  /// `popularity_capacity` keys and reset when full (a slow decay).
  std::uint64_t hot_key_threshold = 16;
  std::size_t popularity_capacity = 1u << 16;
  /// Per-node service knobs. disk_cache_dir / disk_cache_bytes / shared_disk
  /// are overridden by the cluster (nodes must not each open the shared
  /// directory); everything else applies to every node identically —
  /// identical config + model is what makes keys and products portable
  /// across the fleet.
  ServiceConfig node;
  /// Fleet-wide cold tier directory; empty = RAM tiers only.
  std::string shared_disk_dir;
  std::size_t shared_disk_bytes = 1ull << 30;
};

struct ClusterMetrics {
  std::vector<ServiceMetrics> nodes;  ///< per node, dead nodes included
  std::vector<bool> live;
  std::vector<std::uint64_t> routed;  ///< requests routed per node
  std::uint64_t requests = 0;
  std::uint64_t peer_probes = 0;    ///< peek_ram calls against peers
  std::uint64_t peer_fetches = 0;   ///< probes that hit and promoted
  std::uint64_t replica_routes = 0; ///< hot-key requests sent off-owner
  std::uint64_t hot_keys = 0;       ///< keys promoted past the threshold
  DiskCacheStats shared_disk;       ///< zeroed when no shared tier
  /// Max/mean routed-requests ratio over live nodes (1.0 = perfectly even);
  /// 0 when nothing was routed.
  double imbalance() const;
};

class Cluster {
 public:
  /// Same construction surface as one GranuleService; the shard index,
  /// model factory and scaler are fanned out to every node so the fleet is
  /// homogeneous. Node count and routing knobs come from `ClusterConfig`.
  Cluster(const ClusterConfig& config, const core::PipelineConfig& pipeline,
          const geo::GeoCorrections& corrections, const ShardIndex& index,
          GranuleService::ModelFactory model_factory, resample::FeatureScaler scaler,
          GranuleService::TreeFactory tree_factory = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Route and serve (blocking backpressure on the target node's queue).
  ProductFuture submit(const ProductRequest& request);

  /// Route and serve without blocking; sheds exactly like the node-level
  /// call (std::nullopt / ShedError on displaced waiters).
  std::optional<ProductFuture> try_submit(const ProductRequest& request,
                                          std::optional<Priority>* shed_class = nullptr);

  /// Prefetch lever: rewrites every request to the *shallow* kind
  /// (classification — the expensive prefix: shard IO + inference), groups
  /// by owning node and fans each group out on the engine. Interactive
  /// traffic later deepens the cached prefix on demand through the
  /// cross-tier resume path, so warming never pays for seasurface/freeboard
  /// stages nobody may ask for. Returns products actually built.
  std::size_t warm(const std::vector<ProductRequest>& requests, mapred::Engine& engine);

  /// Cache key a request resolves to (identical on every node).
  ProductKey key_for(const ProductRequest& request) const;
  /// Ring owner / replica set of a key (exposed for tests and ops).
  std::uint32_t owner_of(const ProductKey& key) const;
  std::vector<std::uint32_t> replica_set_of(const ProductKey& key) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t live_count() const;
  bool is_live(std::size_t i) const;
  /// Direct node access (tests, metrics drill-down). Valid for the cluster
  /// lifetime, even after kill_node.
  NodeHandle& node(std::size_t i) { return *nodes_.at(i); }

  /// Take a node out of the fleet: remove it from the ring (its key ranges
  /// re-route with minimal churn), then drain it. Idempotent. In-flight
  /// requests already routed there during the call may see broken futures —
  /// the same contract as a real node crash, minus the UB.
  void kill_node(std::size_t i);

  ClusterMetrics metrics() const;

  /// Router + shared-disk instruments only (`is2_cluster_*`); node
  /// instruments live in each node's registry.
  const obs::Registry& registry() const { return registry_; }

  /// Fleet-wide exposition: cluster registry points plus every node's
  /// snapshot labeled `node="node<i>"`, re-sorted by (name, labels).
  obs::RegistrySnapshot obs_snapshot() const;

  /// Shared cold tier (nullptr when shared_disk_dir is empty).
  const DiskCache* shared_disk() const { return disk_.get(); }

  /// Drain pending disk write-backs on every live node (tests / restarts).
  void wait_disk_writebacks();

  /// Drain every live node, idempotent.
  void shutdown();

 private:
  struct Route {
    ProductKey key;           ///< exact key (cache lookups, popularity)
    std::uint64_t hash = 0;   ///< shallow-key ring hash (placement)
    std::size_t target = 0;
  };
  /// Pick the target node for a request (ring owner, or replica-set
  /// round-robin once hot) and update popularity/routing counters.
  Route route(const ProductRequest& request);
  /// On a target RAM miss, probe the key's other live replicas and promote
  /// a hit into the target. Best effort; returns whether a peer hit.
  bool peer_fetch(const ProductKey& key, std::uint64_t hash, std::size_t target);
  std::size_t first_live_locked() const;  ///< throws when the fleet is down
  static std::uint64_t ring_hash(const ProductKey& key);
  /// Ring position of a key: the hash of its classification-kind sibling,
  /// so all depths/methods of one granule co-locate. Takes mutex_ (via
  /// key_for) — call before locking.
  std::uint64_t routing_hash(const ProductKey& key) const;

  ClusterConfig config_;

  /// Router/shared-tier observability — declared before the disk tier and
  /// nodes that register into / outlive-depend on it.
  obs::Registry registry_;
  std::vector<obs::Counter*> routed_total_;  ///< per node, node label
  obs::Counter* peer_probe_total_ = nullptr;
  obs::Counter* peer_fetch_total_ = nullptr;
  obs::Counter* replica_route_total_ = nullptr;
  obs::Counter* hot_key_total_ = nullptr;
  obs::Gauge* live_nodes_gauge_ = nullptr;

  std::unique_ptr<DiskCache> disk_;  ///< shared cold tier; outlives nodes_
  std::vector<std::unique_ptr<GranuleService>> nodes_;

  mutable std::mutex mutex_;  ///< ring + popularity + live set
  HashRing ring_;
  std::vector<bool> live_;
  std::unordered_map<ProductKey, std::uint64_t, ProductKeyHash> popularity_;
  std::uint64_t hot_rr_ = 0;  ///< round-robin cursor over replica sets
  bool shut_down_ = false;
};

}  // namespace is2::serve
