#include "serve/disk_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "h5lite/h5file.hpp"
#include "util/fault.hpp"

namespace is2::serve {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'I', 'S', '2', 'P'};
///< magic..backend, before the granule id
constexpr std::size_t kIdentityPrefixBytes = 4 + 4 + 8 + 1 + 1 + 1;

/// Fixed-size header fields shared by serialize/deserialize/manifest-scan.
struct Identity {
  std::uint32_t version = 0;
  ProductKey key;
};

/// Parse the identity header off the front of a buffer. Throws h5::H5Error
/// on truncation or bad magic; version checking is the caller's decision
/// (the manifest scan wants to *detect* stale versions, not choke on them).
Identity read_identity(h5::ByteReader& r) {
  char magic[4];
  r.bytes(reinterpret_cast<std::uint8_t*>(magic), 4);
  if (std::memcmp(magic, kMagic, 4) != 0) throw h5::H5Error("disk_cache: bad magic");
  Identity id;
  id.version = r.raw<std::uint32_t>();
  id.key.config_hash = r.raw<std::uint64_t>();
  id.key.beam = static_cast<atl03::BeamId>(r.raw<std::uint8_t>());
  id.key.kind = static_cast<pipeline::ProductKind>(r.raw<std::uint8_t>());
  id.key.backend = static_cast<pipeline::Backend>(r.raw<std::uint8_t>());
  id.key.granule_id = r.str();
  return id;
}

void write_segment(h5::ByteWriter& w, const resample::Segment& s) {
  w.raw(s.s); w.raw(s.t); w.raw(s.x); w.raw(s.y);
  w.raw(s.h_mean); w.raw(s.h_median); w.raw(s.h_std); w.raw(s.h_min);
  w.raw(s.n_photons); w.raw(s.photon_rate); w.raw(s.bckgrd_rate);
  w.raw(static_cast<std::uint8_t>(s.truth));
}

resample::Segment read_segment(h5::ByteReader& r) {
  resample::Segment s;
  s.s = r.raw<double>(); s.t = r.raw<double>(); s.x = r.raw<double>(); s.y = r.raw<double>();
  s.h_mean = r.raw<double>(); s.h_median = r.raw<double>();
  s.h_std = r.raw<double>(); s.h_min = r.raw<double>();
  s.n_photons = r.raw<std::uint32_t>();
  s.photon_rate = r.raw<double>(); s.bckgrd_rate = r.raw<double>();
  s.truth = static_cast<atl03::SurfaceClass>(r.raw<std::uint8_t>());
  return s;
}

/// Element counts read from disk are validated against the bytes actually
/// remaining before any allocation, so a corrupt count raises H5Error
/// instead of attempting a multi-GiB vector resize.
std::size_t checked_count(h5::ByteReader& r, std::size_t min_elem_bytes) {
  const auto n = r.raw<std::uint64_t>();
  if (min_elem_bytes && n > r.remaining() / min_elem_bytes)
    throw h5::H5Error("disk_cache: corrupt element count");
  return static_cast<std::size_t>(n);
}

}  // namespace

std::string DiskCache::filename_for(const ProductKey& key) {
  std::string id = key.granule_id;
  for (char& c : id)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_') c = '-';
  char buf[96];
  std::snprintf(buf, sizeof buf, "_%s_%s_%s_%016llx_%016llx.is2p", atl03::beam_name(key.beam),
                pipeline::product_kind_name(key.kind), pipeline::backend_name(key.backend),
                static_cast<unsigned long long>(key.config_hash),
                static_cast<unsigned long long>(ProductKeyHash{}(key)));
  return id + buf;
}

std::vector<std::uint8_t> DiskCache::serialize(const ProductKey& key,
                                               const GranuleProduct& product) {
  h5::ByteWriter body;
  body.raw(static_cast<std::uint64_t>(product.segments.size()));
  for (const auto& s : product.segments) write_segment(body, s);
  body.raw(static_cast<std::uint64_t>(product.classes.size()));
  for (const auto c : product.classes) body.raw(static_cast<std::uint8_t>(c));
  const auto& surface = product.sea_surface.points();
  body.raw(static_cast<std::uint64_t>(surface.size()));
  for (const auto& p : surface) {
    body.raw(p.s); body.raw(p.h_ref); body.raw(p.sigma);
    body.raw(p.n_leads); body.raw(p.n_water_segments);
    body.raw(static_cast<std::uint8_t>(p.interpolated));
  }
  body.raw(static_cast<std::uint64_t>(product.freeboard.points.size()));
  for (const auto& p : product.freeboard.points) {
    body.raw(p.s); body.raw(p.x); body.raw(p.y); body.raw(p.freeboard);
    body.raw(static_cast<std::uint8_t>(p.cls));
    body.raw(static_cast<std::uint8_t>(p.truth));
  }

  h5::ByteWriter out;
  out.bytes(reinterpret_cast<const std::uint8_t*>(kMagic), 4);
  out.raw(kFormatVersion);
  out.raw(key.config_hash);
  out.raw(static_cast<std::uint8_t>(key.beam));
  out.raw(static_cast<std::uint8_t>(key.kind));
  out.raw(static_cast<std::uint8_t>(key.backend));
  out.str(key.granule_id);
  out.raw(static_cast<std::uint64_t>(body.buf.size()));
  out.bytes(body.buf.data(), body.buf.size());
  out.raw(h5::crc32(body.buf));
  return out.buf;
}

GranuleProduct DiskCache::deserialize(std::span<const std::uint8_t> bytes,
                                      const ProductKey& expect) {
  h5::ByteReader r(bytes);
  const Identity id = read_identity(r);
  if (id.version != kFormatVersion) throw h5::H5Error("disk_cache: stale format version");
  if (!(id.key == expect)) throw h5::H5Error("disk_cache: key mismatch");
  const auto payload = r.raw<std::uint64_t>();
  if (payload > r.remaining() || r.remaining() - payload < 4)
    throw h5::H5Error("disk_cache: truncated payload");
  const auto payload_span = bytes.subspan(r.pos(), static_cast<std::size_t>(payload));
  h5::ByteReader crc_r(bytes.subspan(r.pos() + static_cast<std::size_t>(payload)));
  if (crc_r.raw<std::uint32_t>() != h5::crc32(payload_span))
    throw h5::H5Error("disk_cache: checksum mismatch (corrupt file)");

  h5::ByteReader body(payload_span);
  GranuleProduct product;
  product.granule_id = expect.granule_id;
  product.beam = expect.beam;
  product.kind = expect.kind;
  const std::size_t n_segments = checked_count(body, 8);
  product.segments.reserve(n_segments);
  for (std::size_t i = 0; i < n_segments; ++i)
    product.segments.push_back(read_segment(body));
  product.classes.resize(checked_count(body, 1));
  for (auto& c : product.classes)
    c = static_cast<atl03::SurfaceClass>(body.raw<std::uint8_t>());
  std::vector<seasurface::SeaSurfacePoint> surface(checked_count(body, 8));
  for (auto& p : surface) {
    p.s = body.raw<double>(); p.h_ref = body.raw<double>(); p.sigma = body.raw<double>();
    p.n_leads = body.raw<std::uint32_t>();
    p.n_water_segments = body.raw<std::uint32_t>();
    p.interpolated = body.raw<std::uint8_t>() != 0;
  }
  product.sea_surface = seasurface::SeaSurfaceProfile(std::move(surface));
  product.freeboard.points.resize(checked_count(body, 8));
  for (auto& p : product.freeboard.points) {
    p.s = body.raw<double>(); p.x = body.raw<double>(); p.y = body.raw<double>();
    p.freeboard = body.raw<double>();
    p.cls = static_cast<atl03::SurfaceClass>(body.raw<std::uint8_t>());
    p.truth = static_cast<atl03::SurfaceClass>(body.raw<std::uint8_t>());
  }
  if (body.remaining() != 0) throw h5::H5Error("disk_cache: trailing bytes in payload");
  return product;
}

DiskCache::DiskCache(DiskCacheConfig config) : config_(std::move(config)) {
  if (config_.dir.empty()) throw std::invalid_argument("DiskCache: empty directory");
  if (config_.registry) {
    obs::Registry& reg = *config_.registry;
    const obs::Labels tier{{"tier", "disk"}};
    hits_total_ = &reg.counter("is2_cache_hits_total", tier, "client lookups served");
    misses_total_ = &reg.counter("is2_cache_misses_total", tier, "client lookups missed");
    writes_total_ = &reg.counter("is2_cache_writes_total", tier, "successful put publishes");
    evictions_total_ =
        &reg.counter("is2_cache_evictions_total", tier, "files deleted by byte budget");
    corrupt_total_ = &reg.counter("is2_cache_corrupt_dropped_total", tier,
                                  "stale/corrupt/partial files deleted");
    read_retries_total_ = &reg.counter("is2_cache_read_retries_total", tier,
                                       "failed reads retried before the corrupt-drop path");
    bytes_gauge_ = &reg.gauge("is2_cache_bytes", tier, "resident on-disk bytes");
    entries_gauge_ = &reg.gauge("is2_cache_entries", tier, "resident file count");
  }
  fs::create_directories(config_.dir);

  // The object is not shared yet, but the manifest rebuild below touches
  // every mutex_-guarded field and ends in evict_over_budget_locked()
  // (REQUIRES(mutex_)) — holding the uncontended lock keeps the ctor inside
  // the same annotated discipline as the rest of the class.
  util::MutexLock lock(mutex_);

  // Rebuild the manifest from what survived on disk. Only the identity
  // prefix of each file is read here (not the payload); anything that fails
  // even that — leftover temp files from a crashed writer, truncated or
  // foreign files, stale format versions — is deleted now rather than probed
  // forever.
  struct Found {
    fs::file_time_type mtime;
    Entry entry;
  };
  std::vector<Found> found;
  for (const auto& de : fs::directory_iterator(config_.dir)) {
    if (!de.is_regular_file()) continue;
    const std::string path = de.path().string();
    if (de.path().extension() != ".is2p") {
      if (path.find(".is2p.tmp.") != std::string::npos) {  // crashed mid-write
        std::error_code ec;
        fs::remove(de.path(), ec);
        ++corrupt_dropped_;
      }
      continue;
    }
    try {
      const auto head_bytes = static_cast<std::size_t>(
          std::min<std::uintmax_t>(de.file_size(), kIdentityPrefixBytes + 4 + 4096));
      std::vector<std::uint8_t> head(head_bytes);
      std::ifstream in(path, std::ios::binary);
      if (!in) throw h5::H5Error("disk_cache: cannot open: " + path);
      in.read(reinterpret_cast<char*>(head.data()), static_cast<std::streamsize>(head.size()));
      if (!in) throw h5::H5Error("disk_cache: cannot read: " + path);
      h5::ByteReader r(head);
      const Identity id = read_identity(r);
      if (id.version != kFormatVersion) throw h5::H5Error("disk_cache: stale format version");
      found.push_back(
          {de.last_write_time(),
           Entry{id.key, path, static_cast<std::size_t>(de.file_size())}});
    } catch (const std::exception&) {
      std::error_code ec;
      fs::remove(de.path(), ec);
      ++corrupt_dropped_;
    }
  }
  // Oldest files become the LRU end (first eviction candidates).
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.mtime > b.mtime; });
  for (auto& f : found) {
    if (index_.count(f.entry.key)) continue;  // duplicate key: keep the newest
    bytes_ += f.entry.bytes;
    f.entry.gen = next_gen_++;
    lru_.push_back(std::move(f.entry));
    index_[lru_.back().key] = std::prev(lru_.end());
  }
  evict_over_budget_locked();
}

void DiskCache::drop_entry_locked(std::list<Entry>::iterator it, bool corrupt) {
  std::error_code ec;
  fs::remove(it->path, ec);
  bytes_ -= it->bytes;
  index_.erase(it->key);
  lru_.erase(it);
  if (corrupt)
    ++corrupt_dropped_;
  else
    ++evictions_;
}

void DiskCache::evict_over_budget_locked() {
  while (bytes_ > config_.byte_budget && lru_.size() > 1)
    drop_entry_locked(std::prev(lru_.end()), /*corrupt=*/false);
}

std::shared_ptr<const GranuleProduct> DiskCache::get(const ProductKey& key) {
  return get_impl(key, /*count_stats=*/true);
}

std::shared_ptr<const GranuleProduct> DiskCache::peek(const ProductKey& key) {
  return get_impl(key, /*count_stats=*/false);
}

std::shared_ptr<const GranuleProduct> DiskCache::get_impl(const ProductKey& key,
                                                          bool count_stats) {
  // Snapshot-then-read: the manifest lock covers only the index probe and
  // the post-read bookkeeping — the file read and deserialization (the
  // actual milliseconds) run unlocked, so one slow disk hit no longer
  // serializes hits on other keys. The snapshot is the entry's path; a
  // concurrent put() for the same key atomically replaces the file
  // (rename-on-publish), so the unlocked read sees either the old or the
  // new complete payload — both deserialize to a valid product for this
  // key. A concurrent eviction can delete the file mid-read; that read
  // fails and is recorded as a miss without touching any newer entry.
  std::string path;
  std::uint64_t gen = 0;
  {
    util::MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      if (count_stats) ++misses_;
      return nullptr;
    }
    path = it->second->path;
    gen = it->second->gen;
  }

  std::shared_ptr<GranuleProduct> product;
  util::Backoff backoff(config_.read_backoff, ProductKeyHash{}(key) ^ gen);
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      util::fault::inject("disk.read");
      const auto bytes = h5::read_file_bytes(path);
      if (read_hook_) read_hook_(key);  // test-only concurrency probe
      product = std::make_shared<GranuleProduct>(deserialize(bytes, key));
      break;
    } catch (const std::exception&) {
      if (attempt < config_.read_retries) {
        // Maybe transient (flaky IO, injected fault, eviction race): retry
        // after a backoff against a *fresh* snapshot — the entry may have
        // been republished (newer gen, read that) or evicted (miss).
        {
          util::MutexLock lock(mutex_);
          const auto it = index_.find(key);
          if (it == index_.end()) {
            if (count_stats) ++misses_;
            return nullptr;
          }
          path = it->second->path;
          gen = it->second->gen;
          ++disk_read_retries_;
        }
        backoff.sleep();
        continue;
      }
      // Out of retries: truncated / corrupt / stale-version / mismatched
      // file — never served.
      util::MutexLock lock(mutex_);
      const auto it = index_.find(key);
      // Drop (and delete) only if the entry is still the publish generation
      // we failed on. This is airtight because a file can only appear at the
      // (deterministic) path under the manifest lock: put() renames its temp
      // file into place *while holding the lock* (see put), and eviction
      // deletes under it too — so gen == our snapshot implies the file at
      // `path` is still the one we failed to read, and a republished healthy
      // file always carries a newer generation and is never deleted here.
      if (it != index_.end() && it->second->gen == gen)
        drop_entry_locked(it->second, /*corrupt=*/true);
      if (count_stats) ++misses_;
      return nullptr;
    }
  }

  util::MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) lru_.splice(lru_.begin(), lru_, it->second);  // refresh
  if (count_stats) ++hits_;
  return product;
}

void DiskCache::put(const ProductKey& key, const GranuleProduct& product) {
  util::fault::inject("disk.write");
  const std::vector<std::uint8_t> bytes = serialize(key, product);
  const std::string path = (fs::path(config_.dir) / filename_for(key)).string();

  // Serialization and the payload write happen outside the manifest lock
  // (they are the milliseconds); only the rename-into-place happens under
  // it. That ordering is load-bearing for get()'s corrupt-drop path: no
  // file can appear at the deterministic per-key path without holding the
  // lock, so a generation snapshot fully identifies which file a failed
  // read saw. Same-directory temp name (rename across filesystems is not
  // atomic); pid + counter keeps concurrent writers of the same target
  // from clobbering each other's temp file, and the startup scan deletes
  // any `.is2p.tmp.*` leftovers from a crashed writer.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." + std::to_string(seq.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw h5::H5Error("disk_cache: cannot open for writing: " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code rm;
      fs::remove(tmp, rm);
      throw h5::H5Error("disk_cache: write failed: " + tmp);
    }
  }

  util::MutexLock lock(mutex_);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code rm;
    fs::remove(tmp, rm);
    throw h5::H5Error("disk_cache: rename failed: " + tmp + " -> " + path + ": " +
                      ec.message());
  }
  auto it = index_.find(key);
  if (it != index_.end()) {  // replaced in place by the rename
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, path, bytes.size(), next_gen_++});
  index_[key] = lru_.begin();
  bytes_ += bytes.size();
  ++writes_;
  evict_over_budget_locked();
}

bool DiskCache::contains(const ProductKey& key) const {
  util::MutexLock lock(mutex_);
  return index_.count(key) != 0;
}

void DiskCache::sync_registry_locked(const DiskCacheStats& totals) const {
  if (!hits_total_) return;
  // Counter increments are exact deltas vs the last sync (totals only grow).
  hits_total_->inc(totals.hits - exported_.hits);
  misses_total_->inc(totals.misses - exported_.misses);
  writes_total_->inc(totals.writes - exported_.writes);
  evictions_total_->inc(totals.evictions - exported_.evictions);
  corrupt_total_->inc(totals.corrupt_dropped - exported_.corrupt_dropped);
  read_retries_total_->inc(totals.disk_read_retries - exported_.disk_read_retries);
  bytes_gauge_->set(static_cast<double>(totals.bytes));
  entries_gauge_->set(static_cast<double>(totals.entries));
  exported_ = totals;
}

DiskCacheStats DiskCache::stats() const {
  util::MutexLock lock(mutex_);
  DiskCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.writes = writes_;
  out.evictions = evictions_;
  out.corrupt_dropped = corrupt_dropped_;
  out.disk_read_retries = disk_read_retries_;
  out.bytes = bytes_;
  out.entries = lru_.size();
  sync_registry_locked(out);
  return out;
}

void DiskCache::clear() {
  util::MutexLock lock(mutex_);
  for (const auto& e : lru_) {
    std::error_code ec;
    fs::remove(e.path, ec);
  }
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace is2::serve
