#include "serve/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace is2::serve {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::interactive: return "interactive";
    case Priority::batch: return "batch";
    case Priority::background: return "background";
  }
  return "?";
}

obs::Labels BatchScheduler::class_labels(Priority cls) const {
  return {{"class", priority_name(cls)}};
}

BatchScheduler::BatchScheduler(const Config& config, Builder builder)
    : config_(config),
      builder_(std::move(builder)),
      queue_(config.queue_capacity, config.class_weights),
      pool_(config.workers ? config.workers : 1, "sched") {
  if (!builder_) throw std::invalid_argument("BatchScheduler: null builder");
  registry_ = config_.registry;
  if (!registry_) {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  for (std::size_t c = 0; c < kPriorityClasses; ++c) {
    const auto cls = static_cast<Priority>(c);
    dispatched_total_[c] = &registry_->counter("is2_sched_dispatched_total", class_labels(cls),
                                               "build jobs accepted into the queue");
    coalesced_total_[c] = &registry_->counter("is2_sched_coalesced_total", class_labels(cls),
                                              "requests attached to an in-flight build");
    rejected_total_[c] = &registry_->counter(
        "is2_sched_rejected_total", class_labels(cls),
        "requests shed on arrival (try_submit full, or submit racing shutdown)");
    displaced_total_[c] = &registry_->counter("is2_sched_displaced_total", class_labels(cls),
                                              "queued jobs shed to admit a higher class");
    deadline_expired_total_[c] = &registry_->counter(
        "is2_sched_deadline_expired_total", class_labels(cls),
        "jobs dropped at dequeue: queue wait exceeded the request deadline");
    queue_depth_gauge_[c] = &registry_->gauge("is2_sched_queue_depth", class_labels(cls),
                                              "jobs waiting for a worker");
  }
  completed_total_ =
      &registry_->counter("is2_sched_completed_total", {}, "build jobs finished (ok or error)");
  in_flight_gauge_ = &registry_->gauge("is2_sched_in_flight", {}, "keys queued or building");
  drains_.reserve(pool_.size());
  for (std::size_t w = 0; w < pool_.size(); ++w)
    drains_.push_back(pool_.submit([this] { drain_loop(); }));
}

BatchScheduler::~BatchScheduler() { shutdown(); }

BatchScheduler::JobPtr BatchScheduler::make_job(const ProductRequest& request,
                                                const ProductKey& key) const {
  auto job = std::make_shared<Job>();
  job->request = request;
  job->key = key;
  job->cls = request.priority;
  job->future = job->promise.get_future().share();
  if (config_.tracer) job->trace = obs::TraceContext(*config_.tracer);
  return job;
}

namespace {

ProductFuture broken_future(const char* what) {
  std::promise<ProductResponse> p;
  p.set_exception(std::make_exception_ptr(std::runtime_error(what)));
  return p.get_future().share();
}

}  // namespace

ProductFuture BatchScheduler::submit(const ProductRequest& request, const ProductKey& key) {
  JobPtr job;
  {
    util::MutexLock lock(mutex_);
    if (shut_down_) return broken_future("BatchScheduler: shut down");
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      coalesced_total_[static_cast<std::size_t>(request.priority)]->inc();
      if (config_.tracer)
        config_.tracer->record_instant("coalesce", it->second->trace.trace_id());
      // Single-flight: attach to the live build. A higher-priority requester
      // drags a still-queued job up to its class so it cannot be displaced
      // by (or starved behind) traffic the requester outranks. Job::cls is
      // updated even when the queue promote misses (the job may still be
      // inside submit()'s blocking push, in no lane yet); the pusher
      // re-promotes from Job::cls once the push lands.
      if (static_cast<std::uint8_t>(request.priority) <
          static_cast<std::uint8_t>(it->second->cls)) {
        it->second->cls = request.priority;
        queue_.promote(it->second, request.priority);
      }
      return it->second->future;
    }
    job = make_job(request, key);
    inflight_[key] = job;
  }
  // Blocking push outside the lock so other submitters can still coalesce
  // onto this job while we wait for queue space (that is the backpressure).
  // The dispatched counters are registry-backed and monotonic, so they are
  // bumped only once the push has landed (the old code incremented first
  // and decremented on a lost race with shutdown).
  if (!queue_.push(job, request.priority)) {
    // Lost race with shutdown(): shut_down_ was false at the check above,
    // but close() landed while this thread was blocked in push(). This is
    // the one window where an accepted-looking request is dropped, so it
    // fails deterministically as *shed* work (ShedError, retryable, counted
    // in the class's rejected/shed accounting) rather than as the generic
    // "shut down" error reserved for submits that never got in. Waiters who
    // coalesced onto this job during the window see the same ShedError.
    {
      util::MutexLock lock(mutex_);
      inflight_.erase(key);
    }
    rejected_total_[static_cast<std::size_t>(request.priority)]->inc();
    if (config_.tracer) config_.tracer->record_instant("rejected", job->trace.trace_id());
    job->trace.finish("request:shed", /*force=*/true);
    job->promise.set_exception(std::make_exception_ptr(
        ShedError("BatchScheduler: request shed by shutdown during submit")));
    return job->future;
  }
  dispatched_total_[static_cast<std::size_t>(request.priority)]->inc();
  {
    // A coalescer may have raised Job::cls while we were blocked in push()
    // (its queue promote found nothing to move). Re-apply it now that the
    // job is in a lane, so the promoted-jobs-can't-be-displaced invariant
    // holds across the push window.
    util::MutexLock lock(mutex_);
    if (static_cast<std::uint8_t>(job->cls) <
        static_cast<std::uint8_t>(request.priority))
      queue_.promote(job, job->cls);
  }
  return job->future;
}

std::optional<ProductFuture> BatchScheduler::try_submit(const ProductRequest& request,
                                                        const ProductKey& key,
                                                        std::optional<Priority>* shed_class) {
  if (shed_class) shed_class->reset();
  util::MutexLock lock(mutex_);
  // A shut-down scheduler is not "full, retry later": return a broken
  // future (like submit) so load-shedding clients don't spin forever.
  if (shut_down_) return broken_future("BatchScheduler: shut down");
  auto it = inflight_.find(key);
  if (it != inflight_.end()) {
    coalesced_total_[static_cast<std::size_t>(request.priority)]->inc();
    if (config_.tracer)
      config_.tracer->record_instant("coalesce", it->second->trace.trace_id());
    if (static_cast<std::uint8_t>(request.priority) <
        static_cast<std::uint8_t>(it->second->cls)) {
      it->second->cls = request.priority;  // pusher re-promotes on a miss
      queue_.promote(it->second, request.priority);
    }
    return it->second->future;
  }
  JobPtr job = make_job(request, key);
  // Non-blocking push under the scheduler lock: either the job becomes
  // visible as in-flight and queued atomically, or nobody ever saw it.
  std::optional<std::pair<JobPtr, Priority>> victim;
  if (!queue_.try_push(job, request.priority, &victim)) {
    rejected_total_[static_cast<std::size_t>(request.priority)]->inc();
    if (config_.tracer) config_.tracer->record_instant("rejected", job->trace.trace_id());
    if (shed_class) *shed_class = request.priority;
    return std::nullopt;
  }
  if (victim) {
    // A queued lower-class job was displaced to admit this one. Its waiters
    // (original submitter + anyone coalesced) see ShedError and may retry.
    // Nobody else owns the victim (it was removed from its lane before any
    // worker could pop it), so finishing its trace here is safe — forced,
    // so shed builds always show up on the timeline.
    inflight_.erase(victim->first->key);
    displaced_total_[static_cast<std::size_t>(victim->second)]->inc();
    if (config_.tracer)
      config_.tracer->record_instant("displaced", victim->first->trace.trace_id());
    victim->first->trace.finish("request:shed", /*force=*/true);
    if (shed_class) *shed_class = victim->second;
    victim->first->promise.set_exception(std::make_exception_ptr(
        ShedError("BatchScheduler: shed " + std::string(priority_name(victim->second)) +
                  " job for " + std::string(priority_name(request.priority)) + " admission")));
  }
  inflight_[key] = job;
  dispatched_total_[static_cast<std::size_t>(job->cls)]->inc();
  return job->future;
}

void BatchScheduler::drain_loop() {
  while (auto popped = queue_.pop()) {
    JobPtr job = std::move(popped->first);
    const double queue_wait_ms = job->enqueued.millis();
    if (job->trace.active())
      job->trace.emit("queue_wait", job->trace.mint_ms(), queue_wait_ms);
    // Deadline-aware shedding: a job whose client budget expired while it
    // queued is dropped here, before it occupies this worker — the waiters
    // stopped caring, so building would only add queueing delay for jobs
    // whose deadlines are still live. Completes the job (same bookkeeping
    // as a build) but with DeadlineError so callers can tell "too slow"
    // from "shed under overload" (ShedError).
    if (job->request.deadline_ms > 0.0 && queue_wait_ms > job->request.deadline_ms) {
      deadline_expired_total_[static_cast<std::size_t>(job->request.priority)]->inc();
      if (config_.tracer) config_.tracer->record_instant("deadline", job->trace.trace_id());
      job->trace.finish("request:deadline", /*force=*/true);
      {
        // Erase BEFORE failing the promise: a submit racing this drop must
        // open a fresh job, not coalesce onto a future that is about to
        // carry another request's expired budget.
        util::MutexLock lock(mutex_);
        inflight_.erase(job->key);
        completed_total_->inc();
      }
      job->promise.set_exception(std::make_exception_ptr(DeadlineError(
          "BatchScheduler: deadline " + std::to_string(job->request.deadline_ms) +
          " ms expired after " + std::to_string(queue_wait_ms) + " ms in queue")));
      continue;
    }
    // Bind the job's context so the builder's SpanScopes (disk probe, shard
    // load, every pipeline stage) land in this trace, and log lines carry
    // the trace id.
    obs::TraceBinding bind(job->trace.active() ? &job->trace : nullptr);
    try {
      ProductResponse response = builder_(job->request, job->key);
      response.service_ms = job->enqueued.millis();
      response.queue_wait_ms = queue_wait_ms;
      response.trace_id = job->trace.trace_id();
      const double service_ms = response.service_ms;
      job->trace.finish("request");
      // Observe before resolving the future: a caller that .get()s and then
      // reads metrics must see its own request in the latency histograms.
      if (config_.on_served)
        config_.on_served(job->request.priority, service_ms, queue_wait_ms);
      job->promise.set_value(std::move(response));
    } catch (...) {
      job->trace.finish("request:error", /*force=*/true);
      job->promise.set_exception(std::current_exception());
    }
    util::MutexLock lock(mutex_);
    inflight_.erase(job->key);
    completed_total_->inc();
  }
}

SchedulerStats BatchScheduler::stats() const {
  SchedulerStats out;
  util::MutexLock lock(mutex_);
  for (std::size_t c = 0; c < kPriorityClasses; ++c) {
    const std::uint64_t rejected = rejected_total_[c]->value();
    const std::uint64_t displaced = displaced_total_[c]->value();
    out.dispatched_by_class[c] = dispatched_total_[c]->value();
    out.dispatched += out.dispatched_by_class[c];
    out.coalesced += coalesced_total_[c]->value();
    out.rejected += rejected;
    out.displaced += displaced;
    out.deadline_expired_by_class[c] = deadline_expired_total_[c]->value();
    out.deadline_expired += out.deadline_expired_by_class[c];
    // Shed accounting: a rejected arrival under its own class, a displaced
    // queued job under the class it held.
    out.shed_by_class[c] = rejected + displaced;
    out.queue_depth_by_class[c] = queue_.size(static_cast<Priority>(c));
    queue_depth_gauge_[c]->set(static_cast<double>(out.queue_depth_by_class[c]));
  }
  out.completed = completed_total_->value();
  out.queue_depth = queue_.size();
  out.in_flight = inflight_.size();
  in_flight_gauge_->set(static_cast<double>(out.in_flight));
  return out;
}

void BatchScheduler::shutdown() {
  {
    util::MutexLock lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // Shutdown-vs-submit determinism (tested in test_serve.cpp):
  //  * try_submit runs entirely under mutex_, so relative to the flag write
  //    above it is atomic — it either saw shut_down_ and returned a broken
  //    future, or its try_push completed before close() below (the queue
  //    cannot be closed here while try_submit still holds mutex_) and the
  //    job is drained normally. try_push never observes a closed queue with
  //    shut_down_ unset.
  //  * submit's blocking push sits outside mutex_; when close() lands in
  //    that window the push fails and the request is shed with ShedError
  //    (see submit()). Everything pushed before close() is drained.
  queue_.close();  // workers drain what was accepted, then exit
  for (auto& d : drains_) d.get();
}

}  // namespace is2::serve
