#include "serve/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace is2::serve {

BatchScheduler::BatchScheduler(const Config& config, Builder builder)
    : config_(config),
      builder_(std::move(builder)),
      queue_(config.queue_capacity),
      pool_(config.workers ? config.workers : 1) {
  if (!builder_) throw std::invalid_argument("BatchScheduler: null builder");
  drains_.reserve(pool_.size());
  for (std::size_t w = 0; w < pool_.size(); ++w)
    drains_.push_back(pool_.submit([this] { drain_loop(); }));
}

BatchScheduler::~BatchScheduler() { shutdown(); }

BatchScheduler::JobPtr BatchScheduler::make_job(const ProductRequest& request,
                                                const ProductKey& key) const {
  auto job = std::make_shared<Job>();
  job->request = request;
  job->key = key;
  job->future = job->promise.get_future().share();
  return job;
}

namespace {

ProductFuture broken_future(const char* what) {
  std::promise<ProductResponse> p;
  p.set_exception(std::make_exception_ptr(std::runtime_error(what)));
  return p.get_future().share();
}

}  // namespace

ProductFuture BatchScheduler::submit(const ProductRequest& request, const ProductKey& key) {
  JobPtr job;
  {
    std::lock_guard lock(mutex_);
    if (shut_down_) return broken_future("BatchScheduler: shut down");
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      ++coalesced_;
      return it->second->future;  // single-flight: attach to the live build
    }
    job = make_job(request, key);
    inflight_[key] = job;
    ++dispatched_;
  }
  // Blocking push outside the lock so other submitters can still coalesce
  // onto this job while we wait for queue space (that is the backpressure).
  if (!queue_.push(job)) {
    {
      std::lock_guard lock(mutex_);
      inflight_.erase(key);
      --dispatched_;
    }
    job->promise.set_exception(
        std::make_exception_ptr(std::runtime_error("BatchScheduler: shut down")));
  }
  return job->future;
}

std::optional<ProductFuture> BatchScheduler::try_submit(const ProductRequest& request,
                                                        const ProductKey& key) {
  std::lock_guard lock(mutex_);
  // A shut-down scheduler is not "full, retry later": return a broken
  // future (like submit) so load-shedding clients don't spin forever.
  if (shut_down_) return broken_future("BatchScheduler: shut down");
  auto it = inflight_.find(key);
  if (it != inflight_.end()) {
    ++coalesced_;
    return it->second->future;
  }
  JobPtr job = make_job(request, key);
  // Non-blocking push under the scheduler lock: either the job becomes
  // visible as in-flight and queued atomically, or nobody ever saw it.
  if (!queue_.try_push(job)) {
    ++rejected_;
    return std::nullopt;
  }
  inflight_[key] = job;
  ++dispatched_;
  return job->future;
}

void BatchScheduler::drain_loop() {
  while (auto popped = queue_.pop()) {
    JobPtr job = std::move(*popped);
    try {
      ProductResponse response = builder_(job->request, job->key);
      response.service_ms = job->enqueued.millis();
      job->promise.set_value(std::move(response));
    } catch (...) {
      job->promise.set_exception(std::current_exception());
    }
    std::lock_guard lock(mutex_);
    inflight_.erase(job->key);
    ++completed_;
  }
}

SchedulerStats BatchScheduler::stats() const {
  SchedulerStats out;
  std::lock_guard lock(mutex_);
  out.dispatched = dispatched_;
  out.coalesced = coalesced_;
  out.rejected = rejected_;
  out.completed = completed_;
  out.queue_depth = queue_.size();
  out.in_flight = inflight_.size();
  return out;
}

void BatchScheduler::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();  // workers drain what was accepted, then exit
  for (auto& d : drains_) d.get();
}

}  // namespace is2::serve
