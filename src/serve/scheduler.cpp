#include "serve/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace is2::serve {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::interactive: return "interactive";
    case Priority::batch: return "batch";
    case Priority::background: return "background";
  }
  return "?";
}

BatchScheduler::BatchScheduler(const Config& config, Builder builder)
    : config_(config),
      builder_(std::move(builder)),
      queue_(config.queue_capacity, config.class_weights),
      pool_(config.workers ? config.workers : 1) {
  if (!builder_) throw std::invalid_argument("BatchScheduler: null builder");
  drains_.reserve(pool_.size());
  for (std::size_t w = 0; w < pool_.size(); ++w)
    drains_.push_back(pool_.submit([this] { drain_loop(); }));
}

BatchScheduler::~BatchScheduler() { shutdown(); }

BatchScheduler::JobPtr BatchScheduler::make_job(const ProductRequest& request,
                                                const ProductKey& key) const {
  auto job = std::make_shared<Job>();
  job->request = request;
  job->key = key;
  job->cls = request.priority;
  job->future = job->promise.get_future().share();
  return job;
}

namespace {

ProductFuture broken_future(const char* what) {
  std::promise<ProductResponse> p;
  p.set_exception(std::make_exception_ptr(std::runtime_error(what)));
  return p.get_future().share();
}

}  // namespace

ProductFuture BatchScheduler::submit(const ProductRequest& request, const ProductKey& key) {
  JobPtr job;
  {
    std::lock_guard lock(mutex_);
    if (shut_down_) return broken_future("BatchScheduler: shut down");
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      ++coalesced_;
      // Single-flight: attach to the live build. A higher-priority requester
      // drags a still-queued job up to its class so it cannot be displaced
      // by (or starved behind) traffic the requester outranks. Job::cls is
      // updated even when the queue promote misses (the job may still be
      // inside submit()'s blocking push, in no lane yet); the pusher
      // re-promotes from Job::cls once the push lands.
      if (static_cast<std::uint8_t>(request.priority) <
          static_cast<std::uint8_t>(it->second->cls)) {
        it->second->cls = request.priority;
        queue_.promote(it->second, request.priority);
      }
      return it->second->future;
    }
    job = make_job(request, key);
    inflight_[key] = job;
    ++dispatched_;
    ++dispatched_by_class_[static_cast<std::size_t>(job->cls)];
  }
  // Blocking push outside the lock so other submitters can still coalesce
  // onto this job while we wait for queue space (that is the backpressure).
  if (!queue_.push(job, request.priority)) {
    {
      std::lock_guard lock(mutex_);
      inflight_.erase(key);
      --dispatched_;
      --dispatched_by_class_[static_cast<std::size_t>(request.priority)];
    }
    job->promise.set_exception(
        std::make_exception_ptr(std::runtime_error("BatchScheduler: shut down")));
    return job->future;
  }
  {
    // A coalescer may have raised Job::cls while we were blocked in push()
    // (its queue promote found nothing to move). Re-apply it now that the
    // job is in a lane, so the promoted-jobs-can't-be-displaced invariant
    // holds across the push window.
    std::lock_guard lock(mutex_);
    if (static_cast<std::uint8_t>(job->cls) <
        static_cast<std::uint8_t>(request.priority))
      queue_.promote(job, job->cls);
  }
  return job->future;
}

std::optional<ProductFuture> BatchScheduler::try_submit(const ProductRequest& request,
                                                        const ProductKey& key,
                                                        std::optional<Priority>* shed_class) {
  if (shed_class) shed_class->reset();
  std::lock_guard lock(mutex_);
  // A shut-down scheduler is not "full, retry later": return a broken
  // future (like submit) so load-shedding clients don't spin forever.
  if (shut_down_) return broken_future("BatchScheduler: shut down");
  auto it = inflight_.find(key);
  if (it != inflight_.end()) {
    ++coalesced_;
    if (static_cast<std::uint8_t>(request.priority) <
        static_cast<std::uint8_t>(it->second->cls)) {
      it->second->cls = request.priority;  // pusher re-promotes on a miss
      queue_.promote(it->second, request.priority);
    }
    return it->second->future;
  }
  JobPtr job = make_job(request, key);
  // Non-blocking push under the scheduler lock: either the job becomes
  // visible as in-flight and queued atomically, or nobody ever saw it.
  std::optional<std::pair<JobPtr, Priority>> victim;
  if (!queue_.try_push(job, request.priority, &victim)) {
    ++rejected_;
    ++shed_by_class_[static_cast<std::size_t>(request.priority)];
    if (shed_class) *shed_class = request.priority;
    return std::nullopt;
  }
  if (victim) {
    // A queued lower-class job was displaced to admit this one. Its waiters
    // (original submitter + anyone coalesced) see ShedError and may retry.
    inflight_.erase(victim->first->key);
    ++displaced_;
    ++shed_by_class_[static_cast<std::size_t>(victim->second)];
    if (shed_class) *shed_class = victim->second;
    victim->first->promise.set_exception(std::make_exception_ptr(
        ShedError("BatchScheduler: shed " + std::string(priority_name(victim->second)) +
                  " job for " + std::string(priority_name(request.priority)) + " admission")));
  }
  inflight_[key] = job;
  ++dispatched_;
  ++dispatched_by_class_[static_cast<std::size_t>(job->cls)];
  return job->future;
}

void BatchScheduler::drain_loop() {
  while (auto popped = queue_.pop()) {
    JobPtr job = std::move(popped->first);
    try {
      ProductResponse response = builder_(job->request, job->key);
      response.service_ms = job->enqueued.millis();
      const double service_ms = response.service_ms;
      job->promise.set_value(std::move(response));
      if (config_.on_served) config_.on_served(job->request.priority, service_ms);
    } catch (...) {
      job->promise.set_exception(std::current_exception());
    }
    std::lock_guard lock(mutex_);
    inflight_.erase(job->key);
    ++completed_;
  }
}

SchedulerStats BatchScheduler::stats() const {
  SchedulerStats out;
  std::lock_guard lock(mutex_);
  out.dispatched = dispatched_;
  out.coalesced = coalesced_;
  out.rejected = rejected_;
  out.displaced = displaced_;
  out.completed = completed_;
  out.queue_depth = queue_.size();
  out.in_flight = inflight_.size();
  out.shed_by_class = shed_by_class_;
  out.dispatched_by_class = dispatched_by_class_;
  for (std::size_t c = 0; c < kPriorityClasses; ++c)
    out.queue_depth_by_class[c] = queue_.size(static_cast<Priority>(c));
  return out;
}

void BatchScheduler::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();  // workers drain what was accepted, then exit
  for (auto& d : drains_) d.get();
}

}  // namespace is2::serve
