#include "serve/hash_ring.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace is2::serve {

HashRing::HashRing(std::size_t vnodes_per_node)
    : vnodes_(vnodes_per_node ? vnodes_per_node : 1) {}

void HashRing::add(std::uint32_t node) {
  if (!nodes_.insert(node).second) return;
  for (std::size_t v = 0; v < vnodes_; ++v) {
    // Two mix rounds decorrelate the low-entropy (node, vnode) pair; one
    // round leaves visible structure that skews the balance bound.
    std::uint64_t point = util::hash64(
        util::hash64((static_cast<std::uint64_t>(node) << 32) | static_cast<std::uint64_t>(v)));
    while (points_.count(point) != 0) point = util::hash64(point);
    points_.emplace(point, node);
  }
}

void HashRing::remove(std::uint32_t node) {
  if (nodes_.erase(node) == 0) return;
  for (auto it = points_.begin(); it != points_.end();) {
    if (it->second == node)
      it = points_.erase(it);
    else
      ++it;
  }
}

std::uint32_t HashRing::owner(std::uint64_t key_hash) const {
  if (points_.empty()) throw std::runtime_error("HashRing: empty ring");
  auto it = points_.lower_bound(key_hash);
  if (it == points_.end()) it = points_.begin();
  return it->second;
}

std::vector<std::uint32_t> HashRing::replicas(std::uint64_t key_hash, std::size_t n) const {
  // Unlike owner(), an empty ring is not an error here: "all nodes" of an
  // empty ring is the empty set, and callers iterate the result anyway.
  std::vector<std::uint32_t> out;
  const std::size_t want = std::min(n, nodes_.size());
  out.reserve(want);
  auto it = points_.lower_bound(key_hash);
  for (std::size_t walked = 0; walked < points_.size() && out.size() < want; ++walked) {
    if (it == points_.end()) it = points_.begin();
    const std::uint32_t node = it->second;
    bool seen = false;
    for (std::uint32_t got : out) seen |= (got == node);
    if (!seen) out.push_back(node);
    ++it;
  }
  return out;
}

}  // namespace is2::serve
