// Disk tier of the two-tier `is2::serve` product cache: fully built
// `GranuleProduct`s persisted as versioned binary files, so a restarted (or
// RAM-evicted) service answers repeat requests by deserializing one file
// instead of re-reading every shard and re-running inference.
//
// Ownership / threading contract:
//  * One `DiskCache` owns one directory; do not point two instances at the
//    same directory in the same process (cross-process sharing is safe for
//    readers because writes are atomic rename-on-publish, but the LRU
//    manifests will disagree about residency).
//  * All public methods are thread-safe. The manifest mutex covers only
//    index/LRU bookkeeping plus rename/delete of cache files: `get()`
//    snapshots the entry's path + generation under the lock and performs
//    the file read + deserialization unlocked (one slow disk hit never
//    serializes hits on other keys); `put()` serializes and writes the
//    payload to a temp file unlocked, then renames it into place under the
//    lock. Because files only appear/disappear at their deterministic
//    per-key path while the lock is held, a generation snapshot fully
//    identifies which file a failed read saw — the corrupt-drop path can
//    never delete a concurrently republished healthy file. The service's
//    write-back still runs on a background thread so cold builds never
//    wait on serialization.
//  * Entries are keyed by the same `ProductKey` as the RAM tier. The
//    config-hash and a format version live in every file header, so a config,
//    model or format change makes old entries unreadable-as-stale: they are
//    treated as misses and deleted (self-invalidation), never served.
//  * Crash safety: files are written to a temp name and atomically renamed
//    (h5::write_file_atomic); a partially written, truncated, corrupt or
//    wrong-version file is deleted on probe and reported as a miss.
//  * The directory is byte-budgeted: an LRU manifest (rebuilt from file
//    headers at startup, ordered by mtime) evicts least-recently-used files
//    until the directory fits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/registry.hpp"
#include "serve/product_cache.hpp"
#include "util/backoff.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace is2::serve {

struct DiskCacheConfig {
  std::string dir;                         ///< cache directory (created if absent)
  std::size_t byte_budget = 1ull << 30;    ///< total on-disk bytes before LRU eviction
  /// When set, the cache mirrors its counters into `is2_cache_*{tier="disk"}`
  /// instruments, synced lazily inside stats() (exact deltas since the last
  /// sync) — the get/put hot paths are untouched. The registry must outlive
  /// the cache.
  obs::Registry* registry = nullptr;
  /// A failed file read (IO error, torn read under concurrent eviction,
  /// injected `disk.read` fault) is retried this many times with backoff
  /// before the delete-as-corrupt path runs — a genuinely corrupt file fails
  /// every attempt and is still dropped, but a transient fault costs one
  /// short sleep instead of a rebuilt product.
  std::size_t read_retries = 1;
  util::BackoffConfig read_backoff{0.2, 5.0};
};

struct DiskCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writes = 0;            ///< successful put() publishes
  std::uint64_t evictions = 0;         ///< files deleted by the byte budget
  std::uint64_t corrupt_dropped = 0;   ///< stale/corrupt/partial files deleted
  std::uint64_t disk_read_retries = 0; ///< failed reads retried before the drop path
  std::size_t bytes = 0;               ///< resident on-disk bytes
  std::size_t entries = 0;             ///< resident files

  double hit_rate() const {
    const std::uint64_t n = hits + misses;
    return n ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  }
};

class DiskCache {
 public:
  /// Bump when the product payload or key-block layout changes: every
  /// existing cache file self-invalidates on the next probe. v2 extended the
  /// key block with the product kind and classifier backend (the
  /// is2::pipeline stage-graph redesign), so v1 files — which cannot say
  /// which kind/backend they hold — are rejected, never served.
  static constexpr std::uint32_t kFormatVersion = 2;

  /// Creates the directory if needed, deletes leftover temp files, rebuilds
  /// the LRU manifest from the surviving file headers (oldest mtime = first
  /// eviction candidate) and evicts down to the byte budget.
  explicit DiskCache(DiskCacheConfig config);

  DiskCache(const DiskCache&) = delete;
  DiskCache& operator=(const DiskCache&) = delete;

  /// Probe + deserialize; refreshes LRU position on hit. Any unreadable file
  /// (truncated, bad CRC, wrong version, key mismatch) is deleted and
  /// reported as a miss — a corrupt entry is never served. The file read
  /// and deserialization run outside the manifest lock (snapshot-then-read),
  /// so concurrent get() calls on different keys proceed in parallel even
  /// when one of them hits a slow disk.
  std::shared_ptr<const GranuleProduct> get(const ProductKey& key);

  /// get() minus the hit/miss counters (corrupt drops are still counted —
  /// they report file health, not traffic). For speculative probes that are
  /// not client requests (the service's shallower-kind resume probe), so
  /// DiskCacheStats keeps reporting the client-visible hit rate.
  std::shared_ptr<const GranuleProduct> peek(const ProductKey& key);

  /// Test-only: invoked between the unlocked file read and re-acquiring the
  /// manifest lock in get(). Lets tests hold one reader mid-flight and
  /// prove other keys' hits are not serialized behind it. Not thread-safe
  /// against concurrent get(); install before traffic starts.
  void set_read_hook_for_tests(std::function<void(const ProductKey&)> hook) {
    read_hook_ = std::move(hook);
  }

  /// Serialize + atomically publish, then evict LRU files over budget.
  /// Blocks for the file write; errors (e.g. disk full) throw.
  void put(const ProductKey& key, const GranuleProduct& product);

  /// Manifest-only probe: no file IO, no LRU refresh, no counters.
  bool contains(const ProductKey& key) const;

  DiskCacheStats stats() const;

  /// Delete every cache file and reset the manifest (not the counters).
  void clear();

  const std::string& dir() const { return config_.dir; }
  std::size_t byte_budget() const { return config_.byte_budget; }

  // Format layer, exposed for tests and offline tooling ----------------------
  //
  // File layout (little-endian, h5::ByteWriter/ByteReader):
  //   magic "IS2P" | u32 format_version | u64 config_hash | u8 beam
  //   | u8 product_kind | u8 backend | str granule_id
  //   | u64 payload_bytes | payload | u32 crc32(payload)

  /// Encode one product under its cache key.
  static std::vector<std::uint8_t> serialize(const ProductKey& key,
                                             const GranuleProduct& product);

  /// Decode; throws h5::H5Error on any malformation, version or CRC mismatch,
  /// or when the embedded key differs from `expect` (filename collision).
  static GranuleProduct deserialize(std::span<const std::uint8_t> bytes,
                                    const ProductKey& expect);

  /// Deterministic per-key file name within the cache directory.
  static std::string filename_for(const ProductKey& key);

 private:
  struct Entry {
    ProductKey key;
    std::string path;       ///< absolute path of the cache file
    std::size_t bytes = 0;  ///< on-disk size
    /// Monotonic publish generation. filename_for(key) is deterministic, so
    /// a path comparison cannot tell "the file I failed to read" from "a
    /// healthy file a concurrent put() republished at the same path" — the
    /// generation can, and the corrupt-drop path in get() checks it.
    std::uint64_t gen = 0;
  };

  void evict_over_budget_locked() REQUIRES(mutex_);
  void drop_entry_locked(std::list<Entry>::iterator it, bool corrupt) REQUIRES(mutex_);
  std::shared_ptr<const GranuleProduct> get_impl(const ProductKey& key, bool count_stats);
  void sync_registry_locked(const DiskCacheStats& totals) const REQUIRES(mutex_);

  DiskCacheConfig config_;
  std::function<void(const ProductKey&)> read_hook_;  ///< tests only
  mutable util::Mutex mutex_;
  std::list<Entry> lru_ GUARDED_BY(mutex_);  ///< front = most recently used
  std::unordered_map<ProductKey, std::list<Entry>::iterator, ProductKeyHash> index_
      GUARDED_BY(mutex_);
  std::size_t bytes_ GUARDED_BY(mutex_) = 0;
  std::uint64_t next_gen_ GUARDED_BY(mutex_) = 1;  ///< publish generation source
  std::uint64_t hits_ GUARDED_BY(mutex_) = 0, misses_ GUARDED_BY(mutex_) = 0,
      writes_ GUARDED_BY(mutex_) = 0, evictions_ GUARDED_BY(mutex_) = 0,
      corrupt_dropped_ GUARDED_BY(mutex_) = 0;
  std::uint64_t disk_read_retries_ GUARDED_BY(mutex_) = 0;

  /// Registry mirror (nullptr = off); the raw counters above stay the source
  /// of truth and `exported_` tracks what was already pushed (under mutex_).
  obs::Counter* hits_total_ = nullptr;
  obs::Counter* misses_total_ = nullptr;
  obs::Counter* writes_total_ = nullptr;
  obs::Counter* evictions_total_ = nullptr;
  obs::Counter* corrupt_total_ = nullptr;
  obs::Counter* read_retries_total_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
  obs::Gauge* entries_gauge_ = nullptr;
  mutable DiskCacheStats exported_ GUARDED_BY(mutex_);
};

}  // namespace is2::serve
