#include "serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "atl03/preprocess.hpp"
#include "h5lite/granule_io.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace is2::serve {

// ---------------------------------------------------------------------------
// ShardIndex
// ---------------------------------------------------------------------------

namespace {

/// Parse "<granule_id>#<beam>c<chunk>" shard ids; whole-granule files (no
/// '#') index as chunk 0 under their own id.
void parse_shard_id(const std::string& id, std::string& base, std::size_t& chunk) {
  const auto hash = id.find('#');
  if (hash == std::string::npos) {
    base = id;
    chunk = 0;
    return;
  }
  base = id.substr(0, hash);
  const auto c = id.find_last_of('c');
  chunk = 0;
  if (c != std::string::npos && c > hash) {
    try {
      chunk = static_cast<std::size_t>(std::stoul(id.substr(c + 1)));
    } catch (const std::exception&) {
      chunk = 0;
    }
  }
}

}  // namespace

ShardIndex ShardIndex::build(const std::vector<std::string>& shard_files) {
  // (granule, beam) -> [(chunk, file)] so chunks can be ordered along-track.
  // Only the id and beam are needed here, so each shard is scanned header-
  // only (h5::read_granule_meta) instead of fully decoded: index build cost
  // is per-file, not per-photon.
  std::map<std::pair<std::string, int>, std::vector<std::pair<std::size_t, std::string>>> grouped;
  for (const auto& file : shard_files) {
    const h5::GranuleMeta meta = h5::read_granule_meta(file);
    if (meta.beams.size() != 1)
      throw std::invalid_argument("ShardIndex: shard must hold exactly one beam: " + file);
    std::string base;
    std::size_t chunk = 0;
    parse_shard_id(meta.id, base, chunk);
    grouped[{base, static_cast<int>(meta.beams[0].beam)}].emplace_back(chunk, file);
  }

  ShardIndex out;
  for (auto& [key, chunks] : grouped) {
    std::sort(chunks.begin(), chunks.end());
    auto& files = out.beams_[key];
    files.reserve(chunks.size());
    for (auto& [chunk, file] : chunks) files.push_back(std::move(file));
  }
  return out;
}

const std::vector<std::string>* ShardIndex::find(const std::string& granule_id,
                                                 atl03::BeamId beam) const {
  const auto it = beams_.find({granule_id, static_cast<int>(beam)});
  return it == beams_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, atl03::BeamId>> ShardIndex::entries() const {
  std::vector<std::pair<std::string, atl03::BeamId>> out;
  out.reserve(beams_.size());
  for (const auto& [key, files] : beams_)
    out.emplace_back(key.first, static_cast<atl03::BeamId>(key.second));
  return out;
}

atl03::Granule ShardIndex::load_merged(const std::vector<std::string>& files) {
  if (files.empty()) throw std::invalid_argument("ShardIndex::load_merged: no files");
  atl03::Granule out = h5::load_granule(files[0]);
  if (out.beams.size() != 1)
    throw std::invalid_argument("ShardIndex::load_merged: shard must hold exactly one beam");
  const auto hash = out.id.find('#');
  if (hash != std::string::npos) out.id = out.id.substr(0, hash);

  atl03::BeamData& merged = out.beams[0];
  for (std::size_t f = 1; f < files.size(); ++f) {
    const atl03::Granule next = h5::load_granule(files[f]);
    if (next.beams.size() != 1 || next.beams[0].beam != merged.beam)
      throw std::invalid_argument("ShardIndex::load_merged: mixed beams in chunk list");
    const atl03::BeamData& b = next.beams[0];
    merged.delta_time.insert(merged.delta_time.end(), b.delta_time.begin(), b.delta_time.end());
    merged.lat.insert(merged.lat.end(), b.lat.begin(), b.lat.end());
    merged.lon.insert(merged.lon.end(), b.lon.begin(), b.lon.end());
    merged.h.insert(merged.h.end(), b.h.begin(), b.h.end());
    merged.along_track.insert(merged.along_track.end(), b.along_track.begin(),
                              b.along_track.end());
    merged.signal_conf.insert(merged.signal_conf.end(), b.signal_conf.begin(),
                              b.signal_conf.end());
    merged.truth_class.insert(merged.truth_class.end(), b.truth_class.begin(),
                              b.truth_class.end());
    // Chunk shards carry overlapping background bins (1-bin margins); keep
    // only bins past the last merged timestamp.
    const double last_t = merged.bckgrd_delta_time.empty()
                              ? -std::numeric_limits<double>::infinity()
                              : merged.bckgrd_delta_time.back();
    for (std::size_t j = 0; j < b.bckgrd_delta_time.size(); ++j) {
      if (b.bckgrd_delta_time[j] <= last_t) continue;
      merged.bckgrd_delta_time.push_back(b.bckgrd_delta_time[j]);
      merged.bckgrd_rate.push_back(b.bckgrd_rate[j]);
    }
  }
  merged.check_consistent();
  return out;
}

// ---------------------------------------------------------------------------
// Config fingerprint
// ---------------------------------------------------------------------------

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return util::hash64(h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2)));
}

std::uint64_t mix(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return mix(h, bits);
}

}  // namespace

std::uint64_t config_fingerprint(const core::PipelineConfig& config,
                                 seasurface::Method method) {
  std::uint64_t h = 0x15ECE5E1CEu;  // arbitrary domain tag
  h = mix(h, config.seed);
  h = mix(h, static_cast<std::uint64_t>(config.sequence_window));
  h = mix(h, config.track_length_m);
  // Segmentation / preprocessing inputs.
  h = mix(h, config.segmenter.window_m);
  h = mix(h, config.segmenter.shot_spacing_m);
  h = mix(h, static_cast<std::uint64_t>(config.segmenter.min_photons));
  h = mix(h, static_cast<std::uint64_t>(config.preprocess.min_conf));
  h = mix(h, static_cast<std::uint64_t>(config.preprocess.apply_geo_correction));
  h = mix(h, config.preprocess.outlier_bin_m);
  h = mix(h, config.preprocess.outlier_threshold_m);
  // First-photon-bias calibration inputs.
  h = mix(h, config.instrument.dead_time_m);
  h = mix(h, static_cast<std::uint64_t>(config.instrument.strong_channels));
  // Sea surface estimator.
  h = mix(h, static_cast<std::uint64_t>(method));
  h = mix(h, config.seasurface.window_m);
  h = mix(h, config.seasurface.stride_m);
  h = mix(h, config.seasurface.lead_gap_m);
  h = mix(h, config.seasurface.sigma_floor);
  h = mix(h, static_cast<std::uint64_t>(config.seasurface.min_lead_segments));
  h = mix(h, config.seasurface.outlier_mad_k);
  // Freeboard clipping.
  h = mix(h, config.freeboard.max_freeboard_m);
  h = mix(h, config.freeboard.min_freeboard_m);
  h = mix(h, static_cast<std::uint64_t>(config.freeboard.include_open_water));
  return h;
}

// ---------------------------------------------------------------------------
// GranuleService
// ---------------------------------------------------------------------------

GranuleService::GranuleService(const ServiceConfig& config,
                               const core::PipelineConfig& pipeline,
                               const geo::GeoCorrections& corrections, ShardIndex index,
                               ModelFactory model_factory, resample::FeatureScaler scaler)
    : config_(config),
      pipeline_(pipeline),
      corrections_(corrections),
      index_(std::move(index)),
      scaler_(scaler),
      fpb_(pipeline.instrument.dead_time_m, pipeline.instrument.strong_channels),
      cache_(config.cache_bytes, config.cache_shards) {
  if (!model_factory) throw std::invalid_argument("GranuleService: null model factory");
  if (!config_.disk_cache_dir.empty()) {
    disk_ = std::make_unique<DiskCache>(
        DiskCacheConfig{config_.disk_cache_dir, config_.disk_cache_bytes});
    writeback_pool_ = std::make_unique<util::ThreadPool>(1);
  }
  const std::size_t workers = config_.workers ? config_.workers : 1;
  const std::size_t replica_count = workers + config_.inference_threads;
  replicas_.reserve(replica_count);
  for (std::size_t i = 0; i < replica_count; ++i)
    replicas_.push_back(std::make_unique<nn::Sequential>(model_factory()));
  if (config_.inference_threads > 0)
    inference_pool_ = std::make_unique<util::ThreadPool>(config_.inference_threads);
  BatchScheduler::Config sched_cfg;
  sched_cfg.workers = workers;
  sched_cfg.queue_capacity = config_.queue_capacity;
  sched_cfg.class_weights = config_.class_weights;
  // Per-class latency is attributed at job completion with service_ms
  // (queue wait + execution) — the quantity the weighted dequeue shapes —
  // not the builder's inner wall time.
  sched_cfg.on_served = [this](Priority cls, double service_ms) {
    record_class(cls, service_ms);
  };
  scheduler_ = std::make_unique<BatchScheduler>(
      sched_cfg, [this](const ProductRequest& request, const ProductKey& key) {
        return build(request, key);
      });
}

GranuleService::~GranuleService() { shutdown(); }

void GranuleService::shutdown() {
  if (scheduler_) scheduler_->shutdown();
  // After the workers drained, no new write-backs can be scheduled; let the
  // ones already scheduled land so a restart finds a complete disk tier.
  wait_disk_writebacks();
}

void GranuleService::wait_disk_writebacks() {
  std::unique_lock lock(writeback_mutex_);
  writeback_cv_.wait(lock, [this] { return writebacks_pending_ == 0; });
}

void GranuleService::schedule_writeback(const ProductKey& key,
                                        std::shared_ptr<const GranuleProduct> product) {
  {
    std::lock_guard lock(writeback_mutex_);
    ++writebacks_pending_;
  }
  writeback_pool_->submit([this, key, product = std::move(product)] {
    try {
      disk_->put(key, *product);
    } catch (const std::exception&) {
      // Disk-full or IO error: the RAM tier still has the product, so serve
      // traffic is unaffected — count it and move on.
      std::lock_guard lock(metrics_mutex_);
      ++stage_metrics_.writeback_failures;
    }
    {
      std::lock_guard lock(writeback_mutex_);
      --writebacks_pending_;
    }
    writeback_cv_.notify_all();
  });
}

ProductKey GranuleService::key_for(const ProductRequest& request) const {
  ProductKey key;
  key.granule_id = request.granule_id;
  key.beam = request.beam;
  key.config_hash =
      mix(config_fingerprint(pipeline_, request.method), config_.model_version);
  return key;
}

std::string StageLatency::render(std::size_t max_width) const {
  const std::size_t n = histogram.bins();
  std::size_t first = n, last = 0;
  for (std::size_t b = 0; b < n; ++b) {
    if (histogram.count(b) == 0) continue;
    first = std::min(first, b);
    last = b;
  }
  if (first == n) return "(no samples)\n";
  std::size_t peak = 1;
  for (std::size_t b = first; b <= last; ++b) peak = std::max(peak, histogram.count(b));
  std::string out;
  char buf[64];
  for (std::size_t b = first; b <= last; ++b) {
    std::snprintf(buf, sizeof buf, "%9.3g ms | ", bin_lo_ms(b));
    out += buf;
    const auto w = static_cast<std::size_t>(static_cast<double>(histogram.count(b)) /
                                            static_cast<double>(peak) *
                                            static_cast<double>(max_width));
    out.append(w, '#');
    std::snprintf(buf, sizeof buf, " %zu\n", histogram.count(b));
    out += buf;
  }
  return out;
}

void GranuleService::record(StageLatency ServiceMetrics::*stage, double ms) {
  std::lock_guard lock(metrics_mutex_);
  (stage_metrics_.*stage).add(ms);
}

void GranuleService::record_class(Priority cls, double ms) {
  std::lock_guard lock(metrics_mutex_);
  stage_metrics_.by_class[static_cast<std::size_t>(cls)].latency.add(ms);
}

ProductFuture GranuleService::submit(const ProductRequest& request) {
  {
    std::lock_guard lock(metrics_mutex_);
    ++stage_metrics_.requests;
    ++stage_metrics_.by_class[static_cast<std::size_t>(request.priority)].requests;
  }
  const ProductKey key = key_for(request);
  if (auto hit = cache_.get(key)) {
    {
      std::lock_guard lock(metrics_mutex_);
      ++stage_metrics_.fast_hits;
    }
    record_class(request.priority, 0.0);
    std::promise<ProductResponse> ready;
    ready.set_value(ProductResponse{std::move(hit), true, 0.0, ServedFrom::ram});
    return ready.get_future().share();
  }
  return scheduler_->submit(request, key);
}

std::optional<ProductFuture> GranuleService::try_submit(
    const ProductRequest& request, std::optional<Priority>* shed_class) {
  {
    std::lock_guard lock(metrics_mutex_);
    ++stage_metrics_.requests;
    ++stage_metrics_.by_class[static_cast<std::size_t>(request.priority)].requests;
  }
  const ProductKey key = key_for(request);
  if (auto hit = cache_.get(key)) {
    {
      std::lock_guard lock(metrics_mutex_);
      ++stage_metrics_.fast_hits;
    }
    record_class(request.priority, 0.0);
    if (shed_class) shed_class->reset();
    std::promise<ProductResponse> ready;
    ready.set_value(ProductResponse{std::move(hit), true, 0.0, ServedFrom::ram});
    return ready.get_future().share();
  }
  return scheduler_->try_submit(request, key, shed_class);
}

std::size_t GranuleService::warm(const std::vector<ProductRequest>& requests,
                                 mapred::Engine& engine) {
  std::atomic<std::size_t> built{0};
  engine.run_stage(requests.size(), [&](std::size_t i) {
    const ProductKey key = key_for(requests[i]);
    if (cache_.contains(key)) return;
    // build() rechecks the cache, so a concurrent scheduler job for the
    // same key costs at most one wasted build — never a wrong answer.
    const ProductResponse response = build(requests[i], key);
    if (!response.from_cache) built.fetch_add(1, std::memory_order_relaxed);
  });
  return built.load();
}

ProductResponse GranuleService::build(const ProductRequest& request, const ProductKey& key) {
  if (auto hit = cache_.get(key)) return ProductResponse{std::move(hit), true, 0.0, ServedFrom::ram};

  util::Timer build_timer;
  util::Timer stage_timer;

  // DISK TIER: probed before any shard IO — a disk hit deserializes one
  // file and promotes it to RAM instead of re-reading every chunk shard
  // through ShardIndex::load_merged and re-running inference.
  if (disk_) {
    if (auto product = disk_->get(key)) {
      cache_.put(key, product);
      record(&ServiceMetrics::disk_load, stage_timer.millis());
      return ProductResponse{std::move(product), true, 0.0, ServedFrom::disk};
    }
    stage_timer.reset();
  }

  const std::vector<std::string>* files = index_.find(request.granule_id, request.beam);
  if (!files)
    throw std::runtime_error("GranuleService: unknown (granule, beam): " +
                             request.granule_id + "/" + atl03::beam_name(request.beam));

  // LOAD: shard read + merge + preprocess + 2m resample + FPB correction.
  atl03::Granule merged = ShardIndex::load_merged(*files);
  const atl03::PreprocessedBeam pre =
      atl03::preprocess_beam(merged, merged.beams[0], corrections_, pipeline_.preprocess);
  auto segments = resample::resample(pre, pipeline_.segmenter);
  fpb_.apply(segments);
  record(&ServiceMetrics::load, stage_timer.millis());
  stage_timer.reset();

  // FEATURES: rolling sea-level baseline + the paper's six features (deltas
  // break across gaps wider than 1.5x the configured resampling window).
  const std::vector<double> baseline = resample::rolling_baseline(segments);
  const std::vector<resample::FeatureRow> features =
      resample::to_features(segments, baseline, pipeline_.segmenter.window_m * 1.5);
  record(&ServiceMetrics::features, stage_timer.millis());
  stage_timer.reset();

  // INFERENCE: batched sliding-window classification on a model replica.
  std::vector<atl03::SurfaceClass> classes = classify_batched(features);
  record(&ServiceMetrics::inference, stage_timer.millis());
  stage_timer.reset();

  // SEA SURFACE + FREEBOARD.
  const seasurface::SeaSurfaceProfile profile = seasurface::detect_sea_surface(
      segments, classes, request.method, pipeline_.seasurface);
  record(&ServiceMetrics::seasurface, stage_timer.millis());
  stage_timer.reset();

  freeboard::FreeboardProduct fb =
      freeboard::compute_freeboard(segments, classes, profile, pipeline_.freeboard);
  record(&ServiceMetrics::freeboard, stage_timer.millis());

  auto product = std::make_shared<GranuleProduct>();
  product->granule_id = request.granule_id;
  product->beam = request.beam;
  product->segments = std::move(segments);
  product->classes = std::move(classes);
  product->sea_surface = profile;
  product->freeboard = std::move(fb);
  cache_.put(key, product);
  if (disk_) schedule_writeback(key, product);

  record(&ServiceMetrics::total, build_timer.millis());
  return ProductResponse{std::move(product), false, 0.0, ServedFrom::build};
}

std::unique_ptr<nn::Sequential> GranuleService::checkout_replica() {
  std::unique_lock lock(replica_mutex_);
  replica_cv_.wait(lock, [this] { return !replicas_.empty(); });
  std::unique_ptr<nn::Sequential> model = std::move(replicas_.back());
  replicas_.pop_back();
  return model;
}

void GranuleService::return_replica(std::unique_ptr<nn::Sequential> model) {
  {
    std::lock_guard lock(replica_mutex_);
    replicas_.push_back(std::move(model));
  }
  replica_cv_.notify_one();
}

std::uint64_t GranuleService::classify_span(const float* scaled, std::size_t w_begin,
                                            std::size_t w_end, std::uint8_t* pred) {
  const std::size_t window = pipeline_.sequence_window;
  constexpr int kDim = resample::FeatureRow::kDim;
  const std::size_t batch =
      config_.inference_batch_windows ? config_.inference_batch_windows : 256;

  // Check a model replica out of the pool (inference mutates layer state).
  std::unique_ptr<nn::Sequential> model = checkout_replica();
  std::uint64_t batches = 0;
  try {
    nn::Tensor3 x;  // staging buffer, reused across this span's batches
    for (std::size_t w0 = w_begin; w0 < w_end; w0 += batch) {
      const std::size_t rows = std::min(batch, w_end - w0);
      x.resize(rows, window, kDim);
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t w = w0 + r;
        std::copy(scaled + w * kDim, scaled + (w + window) * kDim, x.at(r, 0));
      }
      model->predict_into(x, pred + w0, rows);  // one forward pass
      ++batches;
    }
  } catch (...) {
    return_replica(std::move(model));
    throw;
  }
  return_replica(std::move(model));
  return batches;
}

std::vector<atl03::SurfaceClass> GranuleService::classify_batched(
    const std::vector<resample::FeatureRow>& features) {
  using atl03::SurfaceClass;
  const std::size_t window = pipeline_.sequence_window;
  const std::size_t n = features.size();
  std::vector<SurfaceClass> out(n, SurfaceClass::Unknown);
  if (n < window || window == 0) return out;
  const std::size_t half = window / 2;
  constexpr int kDim = resample::FeatureRow::kDim;

  // Standardize once (mirrors core::classify_segments exactly).
  std::vector<float> scaled(n * kDim);
  for (std::size_t i = 0; i < n; ++i)
    for (int d = 0; d < kDim; ++d)
      scaled[i * kDim + d] = (features[i].v[d] - scaler_.mean[d]) / scaler_.std[d];

  const std::size_t n_windows = n - window + 1;
  const std::size_t batch =
      config_.inference_batch_windows ? config_.inference_batch_windows : 256;

  std::vector<std::uint8_t> pred(n_windows);
  std::uint64_t batches = 0;

  // Batch-level parallelism: one granule's windows fan out over the shared
  // inference pool in contiguous spans, each on its own model replica.
  // Every window's logits depend only on its own row, so the partition
  // never changes the predictions — span results are bit-identical to the
  // serial path for any span count. Spans are batch-aligned so parallelism
  // doesn't change batch shapes (and therefore per-batch scratch reuse).
  std::size_t spans = 1;
  if (inference_pool_) {
    const std::size_t full_batches = (n_windows + batch - 1) / batch;
    spans = std::min(inference_pool_->size(), full_batches);
  }
  if (spans <= 1) {
    batches = classify_span(scaled.data(), 0, n_windows, pred.data());
  } else {
    const std::size_t batches_per_span = (n_windows + batch * spans - 1) / (batch * spans);
    const std::size_t span_stride = batches_per_span * batch;
    std::atomic<std::uint64_t> batch_count{0};
    inference_pool_->parallel_for(spans, [&](std::size_t s) {
      const std::size_t w_begin = s * span_stride;
      if (w_begin >= n_windows) return;
      const std::size_t w_end = std::min(w_begin + span_stride, n_windows);
      batch_count.fetch_add(classify_span(scaled.data(), w_begin, w_end, pred.data()),
                            std::memory_order_relaxed);
    });
    batches = batch_count.load();
  }

  {
    std::lock_guard lock(metrics_mutex_);
    stage_metrics_.inference_batches += batches;
    stage_metrics_.inference_windows += n_windows;
  }

  for (std::size_t w = 0; w < n_windows; ++w)
    out[w + half] = static_cast<SurfaceClass>(pred[w]);
  for (std::size_t i = 0; i < half; ++i) out[i] = out[half];
  for (std::size_t i = n - half; i < n; ++i) out[i] = out[n - half - 1];
  return out;
}

ServiceMetrics GranuleService::metrics() const {
  ServiceMetrics out;
  {
    std::lock_guard lock(metrics_mutex_);
    out = stage_metrics_;
  }
  out.cache = cache_.stats();
  if (disk_) out.disk = disk_->stats();
  out.scheduler = scheduler_->stats();
  return out;
}

}  // namespace is2::serve
