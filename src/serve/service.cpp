#include "serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "atl03/preprocess.hpp"
#include "h5lite/granule_io.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace is2::serve {

// ---------------------------------------------------------------------------
// ShardIndex
// ---------------------------------------------------------------------------

namespace {

/// Parse "<granule_id>#<beam>c<chunk>" shard ids; whole-granule files (no
/// '#') index as chunk 0 under their own id.
void parse_shard_id(const std::string& id, std::string& base, std::size_t& chunk) {
  const auto hash = id.find('#');
  if (hash == std::string::npos) {
    base = id;
    chunk = 0;
    return;
  }
  base = id.substr(0, hash);
  const auto c = id.find_last_of('c');
  chunk = 0;
  if (c != std::string::npos && c > hash) {
    try {
      chunk = static_cast<std::size_t>(std::stoul(id.substr(c + 1)));
    } catch (const std::exception&) {
      chunk = 0;
    }
  }
}

}  // namespace

ShardIndex ShardIndex::build(const std::vector<std::string>& shard_files) {
  // (granule, beam) -> [(chunk, file)] so chunks can be ordered along-track.
  // Only the id and beam are needed here, so each shard is scanned header-
  // only (h5::read_granule_meta) instead of fully decoded: index build cost
  // is per-file, not per-photon.
  std::map<std::pair<std::string, int>, std::vector<std::pair<std::size_t, std::string>>> grouped;
  for (const auto& file : shard_files) {
    const h5::GranuleMeta meta = h5::read_granule_meta(file);
    if (meta.beams.size() != 1)
      throw std::invalid_argument("ShardIndex: shard must hold exactly one beam: " + file);
    std::string base;
    std::size_t chunk = 0;
    parse_shard_id(meta.id, base, chunk);
    grouped[{base, static_cast<int>(meta.beams[0].beam)}].emplace_back(chunk, file);
  }

  ShardIndex out;
  for (auto& [key, chunks] : grouped) {
    std::sort(chunks.begin(), chunks.end());
    auto& files = out.beams_[key];
    files.reserve(chunks.size());
    for (auto& [chunk, file] : chunks) files.push_back(std::move(file));
  }
  return out;
}

const std::vector<std::string>* ShardIndex::find(const std::string& granule_id,
                                                 atl03::BeamId beam) const {
  const auto it = beams_.find({granule_id, static_cast<int>(beam)});
  return it == beams_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, atl03::BeamId>> ShardIndex::entries() const {
  std::vector<std::pair<std::string, atl03::BeamId>> out;
  out.reserve(beams_.size());
  for (const auto& [key, files] : beams_)
    out.emplace_back(key.first, static_cast<atl03::BeamId>(key.second));
  return out;
}

atl03::Granule ShardIndex::load_merged(const std::vector<std::string>& files) {
  if (files.empty()) throw std::invalid_argument("ShardIndex::load_merged: no files");
  atl03::Granule out = h5::load_granule(files[0]);
  if (out.beams.size() != 1)
    throw std::invalid_argument("ShardIndex::load_merged: shard must hold exactly one beam");
  const auto hash = out.id.find('#');
  if (hash != std::string::npos) out.id = out.id.substr(0, hash);

  atl03::BeamData& merged = out.beams[0];
  for (std::size_t f = 1; f < files.size(); ++f) {
    const atl03::Granule next = h5::load_granule(files[f]);
    if (next.beams.size() != 1 || next.beams[0].beam != merged.beam)
      throw std::invalid_argument("ShardIndex::load_merged: mixed beams in chunk list");
    const atl03::BeamData& b = next.beams[0];
    merged.delta_time.insert(merged.delta_time.end(), b.delta_time.begin(), b.delta_time.end());
    merged.lat.insert(merged.lat.end(), b.lat.begin(), b.lat.end());
    merged.lon.insert(merged.lon.end(), b.lon.begin(), b.lon.end());
    merged.h.insert(merged.h.end(), b.h.begin(), b.h.end());
    merged.along_track.insert(merged.along_track.end(), b.along_track.begin(),
                              b.along_track.end());
    merged.signal_conf.insert(merged.signal_conf.end(), b.signal_conf.begin(),
                              b.signal_conf.end());
    merged.truth_class.insert(merged.truth_class.end(), b.truth_class.begin(),
                              b.truth_class.end());
    // Chunk shards carry overlapping background bins (1-bin margins); keep
    // only bins past the last merged timestamp.
    const double last_t = merged.bckgrd_delta_time.empty()
                              ? -std::numeric_limits<double>::infinity()
                              : merged.bckgrd_delta_time.back();
    for (std::size_t j = 0; j < b.bckgrd_delta_time.size(); ++j) {
      if (b.bckgrd_delta_time[j] <= last_t) continue;
      merged.bckgrd_delta_time.push_back(b.bckgrd_delta_time[j]);
      merged.bckgrd_rate.push_back(b.bckgrd_rate[j]);
    }
  }
  merged.check_consistent();
  return out;
}

// ---------------------------------------------------------------------------
// Config fingerprint (deprecated wrapper; canonical impl: pipeline/)
// ---------------------------------------------------------------------------

std::uint64_t config_fingerprint(const core::PipelineConfig& config,
                                 seasurface::Method method) {
  return pipeline::config_fingerprint(config, method);
}

// ---------------------------------------------------------------------------
// GranuleService
// ---------------------------------------------------------------------------

GranuleService::GranuleService(const ServiceConfig& config,
                               const core::PipelineConfig& pipeline,
                               const geo::GeoCorrections& corrections, ShardIndex index,
                               ModelFactory model_factory, resample::FeatureScaler scaler,
                               TreeFactory tree_factory)
    : config_(config),
      pipeline_(pipeline),
      index_(std::move(index)),
      builder_(pipeline, corrections),  // validates the PipelineConfig
      cache_(config.cache_bytes, config.cache_shards) {
  if (!model_factory) throw std::invalid_argument("GranuleService: null model factory");
  if (!config_.disk_cache_dir.empty()) {
    disk_ = std::make_unique<DiskCache>(
        DiskCacheConfig{config_.disk_cache_dir, config_.disk_cache_bytes});
    writeback_pool_ = std::make_unique<util::ThreadPool>(1);
  }
  const std::size_t workers = config_.workers ? config_.workers : 1;
  // The nn backend owns the replica checkout pool (one per worker plus one
  // per inference thread, so checkout never deadlocks) and the batch-level
  // inference ThreadPool.
  nn_backend_ = std::make_unique<pipeline::NnBackend>(
      std::move(model_factory), scaler, pipeline_.sequence_window, workers,
      config_.inference_batch_windows, config_.inference_threads, config_.model_version);
  if (tree_factory)
    tree_backend_ = std::make_unique<pipeline::DecisionTreeBackend>(tree_factory());
  BatchScheduler::Config sched_cfg;
  sched_cfg.workers = workers;
  sched_cfg.queue_capacity = config_.queue_capacity;
  sched_cfg.class_weights = config_.class_weights;
  // Per-class latency is attributed at job completion with service_ms
  // (queue wait + execution) — the quantity the weighted dequeue shapes —
  // not the builder's inner wall time.
  sched_cfg.on_served = [this](Priority cls, double service_ms) {
    record_class(cls, service_ms);
  };
  scheduler_ = std::make_unique<BatchScheduler>(
      sched_cfg, [this](const ProductRequest& request, const ProductKey& key) {
        return build(request, key);
      });
}

GranuleService::~GranuleService() { shutdown(); }

void GranuleService::shutdown() {
  if (scheduler_) scheduler_->shutdown();
  // After the workers drained, no new write-backs can be scheduled; let the
  // ones already scheduled land so a restart finds a complete disk tier.
  wait_disk_writebacks();
}

void GranuleService::wait_disk_writebacks() {
  std::unique_lock lock(writeback_mutex_);
  writeback_cv_.wait(lock, [this] { return writebacks_pending_ == 0; });
}

void GranuleService::schedule_writeback(const ProductKey& key,
                                        std::shared_ptr<const GranuleProduct> product) {
  {
    std::lock_guard lock(writeback_mutex_);
    ++writebacks_pending_;
  }
  writeback_pool_->submit([this, key, product = std::move(product)] {
    try {
      disk_->put(key, *product);
    } catch (const std::exception&) {
      // Disk-full or IO error: the RAM tier still has the product, so serve
      // traffic is unaffected — count it and move on.
      std::lock_guard lock(metrics_mutex_);
      ++stage_metrics_.writeback_failures;
    }
    {
      std::lock_guard lock(writeback_mutex_);
      --writebacks_pending_;
    }
    writeback_cv_.notify_all();
  });
}

pipeline::ClassifierBackend& GranuleService::backend_for(pipeline::Backend backend) const {
  switch (backend) {
    case pipeline::Backend::nn:
      return *nn_backend_;
    case pipeline::Backend::decision_tree:
      if (!tree_backend_)
        throw std::invalid_argument(
            "GranuleService: no decision-tree backend configured (pass a TreeFactory)");
      return *tree_backend_;
  }
  throw std::invalid_argument("GranuleService: unknown classifier backend");
}

ProductKey GranuleService::key_for(const ProductRequest& request) const {
  return key_for_kind(request, request.kind);
}

ProductKey GranuleService::key_for_kind(const ProductRequest& request,
                                        pipeline::ProductKind kind) const {
  ProductKey key;
  key.granule_id = request.granule_id;
  key.beam = request.beam;
  key.kind = kind;
  key.backend = request.backend;
  // Backend identity (weights version / tree structure) is inside the
  // product fingerprint; the fingerprint itself is stage-prefix-scoped, so
  // a classification key ignores the sea-surface method and deeper config —
  // one cached classification product serves resume for every method.
  key.config_hash = pipeline::product_fingerprint(pipeline_, request.method,
                                                  backend_for(request.backend), kind);
  return key;
}

void GranuleService::record(StageLatency ServiceMetrics::*stage, double ms) {
  std::lock_guard lock(metrics_mutex_);
  (stage_metrics_.*stage).add(ms);
}

void GranuleService::record_class(Priority cls, double ms) {
  std::lock_guard lock(metrics_mutex_);
  stage_metrics_.by_class[static_cast<std::size_t>(cls)].latency.add(ms);
}

ProductFuture GranuleService::submit(const ProductRequest& request) {
  {
    std::lock_guard lock(metrics_mutex_);
    ++stage_metrics_.requests;
    ++stage_metrics_.by_class[static_cast<std::size_t>(request.priority)].requests;
  }
  const ProductKey key = key_for(request);
  if (auto hit = cache_.get(key)) {
    {
      std::lock_guard lock(metrics_mutex_);
      ++stage_metrics_.fast_hits;
    }
    record_class(request.priority, 0.0);
    std::promise<ProductResponse> ready;
    ready.set_value(ProductResponse{std::move(hit), true, 0.0, ServedFrom::ram});
    return ready.get_future().share();
  }
  return scheduler_->submit(request, key);
}

std::optional<ProductFuture> GranuleService::try_submit(
    const ProductRequest& request, std::optional<Priority>* shed_class) {
  {
    std::lock_guard lock(metrics_mutex_);
    ++stage_metrics_.requests;
    ++stage_metrics_.by_class[static_cast<std::size_t>(request.priority)].requests;
  }
  const ProductKey key = key_for(request);
  if (auto hit = cache_.get(key)) {
    {
      std::lock_guard lock(metrics_mutex_);
      ++stage_metrics_.fast_hits;
    }
    record_class(request.priority, 0.0);
    if (shed_class) shed_class->reset();
    std::promise<ProductResponse> ready;
    ready.set_value(ProductResponse{std::move(hit), true, 0.0, ServedFrom::ram});
    return ready.get_future().share();
  }
  return scheduler_->try_submit(request, key, shed_class);
}

std::size_t GranuleService::warm(const std::vector<ProductRequest>& requests,
                                 mapred::Engine& engine) {
  std::atomic<std::size_t> built{0};
  engine.run_stage(requests.size(), [&](std::size_t i) {
    const ProductKey key = key_for(requests[i]);
    if (cache_.contains(key)) return;
    // build() rechecks the cache, so a concurrent scheduler job for the
    // same key costs at most one wasted build — never a wrong answer.
    const ProductResponse response = build(requests[i], key);
    if (!response.from_cache) built.fetch_add(1, std::memory_order_relaxed);
  });
  return built.load();
}

std::shared_ptr<const GranuleProduct> GranuleService::probe_shallower(
    const ProductRequest& request, pipeline::ProductKind* found_kind) {
  // Deepest shallower kind first: resuming from seasurface runs one stage,
  // from classification two — either way no shard IO and no inference.
  // Keys are re-derived per kind (prefix-scoped fingerprints), so e.g. a
  // classification product cached under any sea-surface method seeds this
  // request's method too. peek(), not get(): these probes are speculative,
  // not client requests, and must not skew the tiers' hit-rate stats.
  for (int k = static_cast<int>(request.kind) - 1; k >= 0; --k) {
    const ProductKey shallow =
        key_for_kind(request, static_cast<pipeline::ProductKind>(k));
    if (auto hit = cache_.peek(shallow)) {
      *found_kind = shallow.kind;
      return hit;
    }
    if (disk_) {
      if (auto hit = disk_->peek(shallow)) {
        cache_.put(shallow, hit);  // promote like any disk hit
        *found_kind = shallow.kind;
        return hit;
      }
    }
  }
  return nullptr;
}

ProductResponse GranuleService::build(const ProductRequest& request, const ProductKey& key) {
  if (auto hit = cache_.get(key)) return ProductResponse{std::move(hit), true, 0.0, ServedFrom::ram};

  util::Timer build_timer;
  util::Timer stage_timer;

  // DISK TIER: probed before any shard IO — a disk hit deserializes one
  // file and promotes it to RAM instead of re-reading every chunk shard
  // through ShardIndex::load_merged and re-running inference.
  if (disk_) {
    if (auto product = disk_->get(key)) {
      cache_.put(key, product);
      record(&ServiceMetrics::disk_load, stage_timer.millis());
      return ProductResponse{std::move(product), true, 0.0, ServedFrom::disk};
    }
    stage_timer.reset();
  }

  // RESUME: kinds are strict stage-graph prefixes, so a cached shallower
  // product for the same (granule, beam, config, backend) seeds the build
  // past its stages — only the missing suffix runs.
  pipeline::ProductKind seed_kind = pipeline::ProductKind::classification;
  std::shared_ptr<const GranuleProduct> seed;
  if (request.kind != pipeline::ProductKind::classification)
    seed = probe_shallower(request, &seed_kind);

  pipeline::Artifacts art;
  atl03::Granule merged;  // outlives the build (Artifacts borrows the input)
  double shard_ms = 0.0;
  if (seed) {
    art = pipeline::Artifacts::resume(seed->segments, seed->classes);
    if (seed_kind >= pipeline::ProductKind::seasurface) {
      art.sea_surface = seed->sea_surface;
      art.mark_done(pipeline::StageId::seasurface);
    }
    std::lock_guard lock(metrics_mutex_);
    ++stage_metrics_.resumed_builds;
  } else {
    const std::vector<std::string>* files = index_.find(request.granule_id, request.beam);
    if (!files)
      throw std::runtime_error("GranuleService: unknown (granule, beam): " +
                               request.granule_id + "/" + atl03::beam_name(request.beam));
    stage_timer.reset();
    merged = ShardIndex::load_merged(*files);
    shard_ms = stage_timer.millis();
    art = pipeline::Artifacts::from_beam(merged, merged.beams[0]);
  }

  pipeline::StageTrace trace;
  builder_.build(art, request.kind, &backend_for(request.backend), request.method, &trace);

  // Fold the builder's stage trace into the service's legacy stage view
  // (`load` additionally carries the serve-side shard IO). Stages a resumed
  // build skipped record nothing, exactly like the disk fast path.
  using pipeline::StageId;
  auto fold = [&](StageLatency ServiceMetrics::*field, std::initializer_list<StageId> ids,
                  double extra_ms, bool force) {
    double ms = extra_ms;
    bool any = force;
    for (const StageId id : ids)
      if (trace.did(id)) {
        ms += trace.at(id);
        any = true;
      }
    if (any) record(field, ms);
  };
  fold(&ServiceMetrics::load, {StageId::preprocess, StageId::resample, StageId::fpb}, shard_ms,
       /*force=*/!seed);
  fold(&ServiceMetrics::features, {StageId::features}, 0.0, false);
  fold(&ServiceMetrics::inference, {StageId::classify}, 0.0, false);
  fold(&ServiceMetrics::seasurface, {StageId::seasurface}, 0.0, false);
  fold(&ServiceMetrics::freeboard, {StageId::freeboard}, 0.0, false);

  auto product = std::make_shared<GranuleProduct>();
  product->granule_id = request.granule_id;
  product->beam = request.beam;
  product->kind = request.kind;
  product->segments = std::move(art.segments);
  product->classes = std::move(art.classes);
  if (request.kind >= pipeline::ProductKind::seasurface)
    product->sea_surface = std::move(art.sea_surface);
  if (request.kind >= pipeline::ProductKind::freeboard)
    product->freeboard = std::move(art.freeboard);
  cache_.put(key, product);
  if (disk_) schedule_writeback(key, product);

  record(&ServiceMetrics::total, build_timer.millis());
  return ProductResponse{std::move(product), false, 0.0, ServedFrom::build};
}

ServiceMetrics GranuleService::metrics() const {
  ServiceMetrics out;
  {
    std::lock_guard lock(metrics_mutex_);
    out = stage_metrics_;
  }
  out.cache = cache_.stats();
  if (disk_) out.disk = disk_->stats();
  out.scheduler = scheduler_->stats();
  out.inference_batches = nn_backend_->batches();
  out.inference_windows = nn_backend_->windows();
  out.builder = builder_.metrics().stages();
  return out;
}

}  // namespace is2::serve
