#include "serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "atl03/preprocess.hpp"
#include "h5lite/granule_io.hpp"
#include "util/backoff.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace is2::serve {

// ---------------------------------------------------------------------------
// ShardIndex
// ---------------------------------------------------------------------------

namespace {

/// Parse "<granule_id>#<beam>c<chunk>" shard ids; whole-granule files (no
/// '#') index as chunk 0 under their own id.
void parse_shard_id(const std::string& id, std::string& base, std::size_t& chunk) {
  const auto hash = id.find('#');
  if (hash == std::string::npos) {
    base = id;
    chunk = 0;
    return;
  }
  base = id.substr(0, hash);
  const auto c = id.find_last_of('c');
  chunk = 0;
  if (c != std::string::npos && c > hash) {
    try {
      chunk = static_cast<std::size_t>(std::stoul(id.substr(c + 1)));
    } catch (const std::exception&) {
      chunk = 0;
    }
  }
}

}  // namespace

ShardIndex ShardIndex::build(const std::vector<std::string>& shard_files) {
  // (granule, beam) -> [(chunk, file)] so chunks can be ordered along-track.
  // Only the id and beam are needed here, so each shard is scanned header-
  // only (h5::read_granule_meta) instead of fully decoded: index build cost
  // is per-file, not per-photon.
  std::map<std::pair<std::string, int>, std::vector<std::pair<std::size_t, std::string>>> grouped;
  for (const auto& file : shard_files) {
    const h5::GranuleMeta meta = h5::read_granule_meta(file);
    if (meta.beams.size() != 1)
      throw std::invalid_argument("ShardIndex: shard must hold exactly one beam: " + file);
    std::string base;
    std::size_t chunk = 0;
    parse_shard_id(meta.id, base, chunk);
    grouped[{base, static_cast<int>(meta.beams[0].beam)}].emplace_back(chunk, file);
  }

  ShardIndex out;
  for (auto& [key, chunks] : grouped) {
    std::sort(chunks.begin(), chunks.end());
    auto& files = out.beams_[key];
    files.reserve(chunks.size());
    for (auto& [chunk, file] : chunks) files.push_back(std::move(file));
  }
  return out;
}

const std::vector<std::string>* ShardIndex::find(const std::string& granule_id,
                                                 atl03::BeamId beam) const {
  const auto it = beams_.find({granule_id, static_cast<int>(beam)});
  return it == beams_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, atl03::BeamId>> ShardIndex::entries() const {
  std::vector<std::pair<std::string, atl03::BeamId>> out;
  out.reserve(beams_.size());
  for (const auto& [key, files] : beams_)
    out.emplace_back(key.first, static_cast<atl03::BeamId>(key.second));
  return out;
}

atl03::Granule ShardIndex::load_merged(const std::vector<std::string>& files) {
  if (files.empty()) throw std::invalid_argument("ShardIndex::load_merged: no files");
  atl03::Granule out = h5::load_granule(files[0]);
  if (out.beams.size() != 1)
    throw std::invalid_argument("ShardIndex::load_merged: shard must hold exactly one beam");
  const auto hash = out.id.find('#');
  if (hash != std::string::npos) out.id = out.id.substr(0, hash);

  atl03::BeamData& merged = out.beams[0];
  for (std::size_t f = 1; f < files.size(); ++f) {
    const atl03::Granule next = h5::load_granule(files[f]);
    if (next.beams.size() != 1 || next.beams[0].beam != merged.beam)
      throw std::invalid_argument("ShardIndex::load_merged: mixed beams in chunk list");
    const atl03::BeamData& b = next.beams[0];
    merged.delta_time.insert(merged.delta_time.end(), b.delta_time.begin(), b.delta_time.end());
    merged.lat.insert(merged.lat.end(), b.lat.begin(), b.lat.end());
    merged.lon.insert(merged.lon.end(), b.lon.begin(), b.lon.end());
    merged.h.insert(merged.h.end(), b.h.begin(), b.h.end());
    merged.along_track.insert(merged.along_track.end(), b.along_track.begin(),
                              b.along_track.end());
    merged.signal_conf.insert(merged.signal_conf.end(), b.signal_conf.begin(),
                              b.signal_conf.end());
    merged.truth_class.insert(merged.truth_class.end(), b.truth_class.begin(),
                              b.truth_class.end());
    // Chunk shards carry overlapping background bins (1-bin margins); keep
    // only bins past the last merged timestamp.
    const double last_t = merged.bckgrd_delta_time.empty()
                              ? -std::numeric_limits<double>::infinity()
                              : merged.bckgrd_delta_time.back();
    for (std::size_t j = 0; j < b.bckgrd_delta_time.size(); ++j) {
      if (b.bckgrd_delta_time[j] <= last_t) continue;
      merged.bckgrd_delta_time.push_back(b.bckgrd_delta_time[j]);
      merged.bckgrd_rate.push_back(b.bckgrd_rate[j]);
    }
  }
  merged.check_consistent();
  return out;
}

// ---------------------------------------------------------------------------
// Config fingerprint (deprecated wrapper; canonical impl: pipeline/)
// ---------------------------------------------------------------------------

std::uint64_t config_fingerprint(const core::PipelineConfig& config,
                                 seasurface::Method method) {
  return pipeline::config_fingerprint(config, method);
}

// ---------------------------------------------------------------------------
// GranuleService
// ---------------------------------------------------------------------------

GranuleService::GranuleService(const ServiceConfig& config,
                               const core::PipelineConfig& pipeline,
                               const geo::GeoCorrections& corrections, ShardIndex index,
                               ModelFactory model_factory, resample::FeatureScaler scaler,
                               TreeFactory tree_factory)
    : config_(config),
      pipeline_(pipeline),
      index_(std::move(index)),
      tracer_(obs::TraceConfig{config.trace_ring_capacity, config.trace_sample_rate,
                               config.trace_slow_ms}),
      builder_(pipeline, corrections),  // validates the PipelineConfig
      cache_(config.cache_bytes, config.cache_shards, &registry_) {
  if (!model_factory) throw std::invalid_argument("GranuleService: null model factory");

  // Register every service-level instrument once; the request paths then
  // touch pre-resolved pointers only. Stage latencies share one metric name
  // with a `stage` label (low cardinality: seven fixed values), matching the
  // legacy ServiceMetrics fields one-to-one.
  const auto stage_hist = [this](const char* stage) {
    return &registry_.histogram("is2_serve_stage_ms", {{"stage", stage}},
                                "serve-side stage latency (ms)");
  };
  for (std::size_t c = 0; c < kPriorityClasses; ++c) {
    const obs::Labels cls{{"class", priority_name(static_cast<Priority>(c))}};
    requests_total_[c] =
        &registry_.counter("is2_serve_requests_total", cls, "submit + try_submit calls");
    class_service_[c] = &registry_.histogram("is2_serve_class_service_ms", cls,
                                             "per-class service latency (ms)");
  }
  fast_hits_total_ = &registry_.counter("is2_serve_fast_hits_total", {},
                                        "answered from RAM cache without dispatch");
  writeback_failures_total_ = &registry_.counter("is2_serve_writeback_failures_total", {},
                                                 "async disk writes that threw");
  resumed_builds_total_ = &registry_.counter("is2_serve_resumed_builds_total", {},
                                             "builds seeded from a shallower kind");
  stage_load_ = stage_hist("load");
  stage_features_ = stage_hist("features");
  stage_inference_ = stage_hist("inference");
  stage_seasurface_ = stage_hist("seasurface");
  stage_freeboard_ = stage_hist("freeboard");
  stage_disk_load_ = stage_hist("disk_load");
  stage_total_ = stage_hist("total");
  queue_wait_hist_ = &registry_.histogram("is2_serve_queue_wait_ms", {},
                                          "scheduled jobs: wait for a worker (ms)");
  service_time_hist_ = &registry_.histogram("is2_serve_service_time_ms", {},
                                            "scheduled jobs: queue wait + execution (ms)");
  inference_batches_total_ =
      &registry_.counter("is2_serve_inference_batches_total", {}, "backend forward passes");
  inference_windows_total_ =
      &registry_.counter("is2_serve_inference_windows_total", {}, "windows classified");

  if (config_.shared_disk != nullptr) {
    // Cluster mode: several services share one externally owned tier (one
    // DiskCache instance per directory — its manifest is per-instance).
    disk_ = config_.shared_disk;
  } else if (!config_.disk_cache_dir.empty()) {
    owned_disk_ = std::make_unique<DiskCache>(
        DiskCacheConfig{config_.disk_cache_dir, config_.disk_cache_bytes, &registry_});
    disk_ = owned_disk_.get();
  }
  if (disk_) writeback_pool_ = std::make_unique<util::ThreadPool>(1, "writeback");
  const std::size_t workers = config_.workers ? config_.workers : 1;
  // The nn backend owns the replica checkout pool (one per worker plus one
  // per inference thread, so checkout never deadlocks) and the batch-level
  // inference ThreadPool.
  nn_backend_ = std::make_unique<pipeline::NnBackend>(
      std::move(model_factory), scaler, pipeline_.sequence_window, workers,
      config_.inference_batch_windows, config_.inference_threads, config_.model_version);
  if (tree_factory)
    tree_backend_ = std::make_unique<pipeline::DecisionTreeBackend>(tree_factory());
  BatchScheduler::Config sched_cfg;
  sched_cfg.workers = workers;
  sched_cfg.queue_capacity = config_.queue_capacity;
  sched_cfg.class_weights = config_.class_weights;
  sched_cfg.registry = &registry_;
  sched_cfg.tracer = &tracer_;
  // Per-class latency is attributed at job completion with service_ms
  // (queue wait + execution) — the quantity the weighted dequeue shapes —
  // not the builder's inner wall time. The same callback feeds the
  // queue-wait / service-time split.
  sched_cfg.on_served = [this](Priority cls, double service_ms, double queue_wait_ms) {
    class_service_[static_cast<std::size_t>(cls)]->observe(service_ms);
    service_time_hist_->observe(service_ms);
    queue_wait_hist_->observe(queue_wait_ms);
  };
  scheduler_ = std::make_unique<BatchScheduler>(
      sched_cfg, [this](const ProductRequest& request, const ProductKey& key) {
        return build(request, key);
      });
}

GranuleService::~GranuleService() { shutdown(); }

void GranuleService::shutdown() {
  if (scheduler_) scheduler_->shutdown();
  // After the workers drained, no new write-backs can be scheduled; let the
  // ones already scheduled land so a restart finds a complete disk tier.
  wait_disk_writebacks();
}

std::shared_ptr<const GranuleProduct> GranuleService::peek_ram(const ProductKey& key) {
  return cache_.peek(key);
}

void GranuleService::promote_ram(const ProductKey& key,
                                 std::shared_ptr<const GranuleProduct> product) {
  cache_.put(key, std::move(product));
}

void GranuleService::wait_disk_writebacks() {
  util::MutexLock lock(writeback_mutex_);
  // Explicit wait loop (not a predicate lambda): the thread-safety analysis
  // only accepts guarded reads it can see under the held lock.
  while (writebacks_pending_ != 0) writeback_cv_.wait(lock);
}

void GranuleService::schedule_writeback(const ProductKey& key,
                                        std::shared_ptr<const GranuleProduct> product) {
  {
    util::MutexLock lock(writeback_mutex_);
    ++writebacks_pending_;
  }
  writeback_pool_->submit([this, key, product = std::move(product)] {
    // Bounded retry with backoff: a transient disk fault (injected
    // `disk.write`, momentary ENOSPC) should not cost the disk tier an
    // entry that the next restart would otherwise have. The RAM tier still
    // has the product throughout, so serve traffic is unaffected either
    // way — after the last attempt we log the key and move on.
    constexpr std::size_t kWritebackAttempts = 3;
    util::Backoff backoff(util::BackoffConfig{0.5, 20.0}, ProductKeyHash{}(key));
    for (std::size_t attempt = 1;; ++attempt) {
      try {
        disk_->put(key, *product);
        break;
      } catch (const std::exception& e) {
        if (attempt < kWritebackAttempts) {
          backoff.sleep();
          continue;
        }
        writeback_failures_total_->inc();
        IS2_LOG_WARN("disk write-back failed for %s/%s after %zu attempts: %s",
                     key.granule_id.c_str(), atl03::beam_name(key.beam), attempt, e.what());
        break;
      }
    }
    {
      util::MutexLock lock(writeback_mutex_);
      --writebacks_pending_;
    }
    writeback_cv_.notify_all();
  });
}

pipeline::ClassifierBackend& GranuleService::backend_for(pipeline::Backend backend) const {
  switch (backend) {
    case pipeline::Backend::nn:
      return *nn_backend_;
    case pipeline::Backend::decision_tree:
      if (!tree_backend_)
        throw std::invalid_argument(
            "GranuleService: no decision-tree backend configured (pass a TreeFactory)");
      return *tree_backend_;
  }
  throw std::invalid_argument("GranuleService: unknown classifier backend");
}

ProductKey GranuleService::key_for(const ProductRequest& request) const {
  return key_for_kind(request, request.kind);
}

ProductKey GranuleService::key_for_kind(const ProductRequest& request,
                                        pipeline::ProductKind kind) const {
  ProductKey key;
  key.granule_id = request.granule_id;
  key.beam = request.beam;
  key.kind = kind;
  key.backend = request.backend;
  // Backend identity (weights version / tree structure) is inside the
  // product fingerprint; the fingerprint itself is stage-prefix-scoped, so
  // a classification key ignores the sea-surface method and deeper config —
  // one cached classification product serves resume for every method.
  key.config_hash = pipeline::product_fingerprint(pipeline_, request.method,
                                                  backend_for(request.backend), kind);
  return key;
}

void GranuleService::count_request(Priority cls) {
  requests_total_[static_cast<std::size_t>(cls)]->inc();
}

ProductFuture GranuleService::fast_hit(Priority cls,
                                       std::shared_ptr<const GranuleProduct> hit) {
  fast_hits_total_->inc();
  // The fast path records a literal 0 ms sample (bottom histogram bin) —
  // same convention as the pre-obs metrics, and what keeps per-class latency
  // an honest mix of hits and builds. No trace is minted: a RAM probe emits
  // no spans, and an empty trace would only dilute sampling.
  class_service_[static_cast<std::size_t>(cls)]->observe(0.0);
  std::promise<ProductResponse> ready;
  ready.set_value(ProductResponse{std::move(hit), true, 0.0, ServedFrom::ram});
  return ready.get_future().share();
}

ProductFuture GranuleService::submit(const ProductRequest& request) {
  count_request(request.priority);
  const ProductKey key = key_for(request);
  if (auto hit = cache_.get(key)) return fast_hit(request.priority, std::move(hit));
  return scheduler_->submit(request, key);
}

std::optional<ProductFuture> GranuleService::try_submit(
    const ProductRequest& request, std::optional<Priority>* shed_class) {
  count_request(request.priority);
  const ProductKey key = key_for(request);
  if (auto hit = cache_.get(key)) {
    if (shed_class) shed_class->reset();
    return fast_hit(request.priority, std::move(hit));
  }
  return scheduler_->try_submit(request, key, shed_class);
}

std::size_t GranuleService::warm(const std::vector<ProductRequest>& requests,
                                 mapred::Engine& engine) {
  std::atomic<std::size_t> built{0};
  engine.run_stage(requests.size(), [&](std::size_t i) {
    const ProductKey key = key_for(requests[i]);
    if (cache_.contains(key)) return;
    // build() rechecks the cache, so a concurrent scheduler job for the
    // same key costs at most one wasted build — never a wrong answer.
    const ProductResponse response = build(requests[i], key);
    if (!response.from_cache) built.fetch_add(1, std::memory_order_relaxed);
  });
  return built.load();
}

std::shared_ptr<const GranuleProduct> GranuleService::probe_shallower(
    const ProductRequest& request, pipeline::ProductKind* found_kind) {
  // Deepest shallower kind first: resuming from seasurface runs one stage,
  // from classification two — either way no shard IO and no inference.
  // Keys are re-derived per kind (prefix-scoped fingerprints), so e.g. a
  // classification product cached under any sea-surface method seeds this
  // request's method too. peek(), not get(): these probes are speculative,
  // not client requests, and must not skew the tiers' hit-rate stats.
  for (int k = static_cast<int>(request.kind) - 1; k >= 0; --k) {
    const ProductKey shallow =
        key_for_kind(request, static_cast<pipeline::ProductKind>(k));
    if (auto hit = cache_.peek(shallow)) {
      *found_kind = shallow.kind;
      return hit;
    }
    if (disk_) {
      if (auto hit = disk_->peek(shallow)) {
        cache_.put(shallow, hit);  // promote like any disk hit
        *found_kind = shallow.kind;
        return hit;
      }
    }
  }
  return nullptr;
}

ProductResponse GranuleService::build(const ProductRequest& request, const ProductKey& key) {
  if (auto hit = cache_.get(key)) return ProductResponse{std::move(hit), true, 0.0, ServedFrom::ram};

  util::Timer build_timer;
  util::Timer stage_timer;

  // DISK TIER: probed before any shard IO — a disk hit deserializes one
  // file and promotes it to RAM instead of re-reading every chunk shard
  // through ShardIndex::load_merged and re-running inference.
  if (disk_) {
    obs::SpanScope span("disk_probe");
    if (auto product = disk_->get(key)) {
      cache_.put(key, product);
      stage_disk_load_->observe(stage_timer.millis());
      return ProductResponse{std::move(product), true, 0.0, ServedFrom::disk};
    }
    stage_timer.reset();
  }

  // RESUME: kinds are strict stage-graph prefixes, so a cached shallower
  // product for the same (granule, beam, config, backend) seeds the build
  // past its stages — only the missing suffix runs.
  pipeline::ProductKind seed_kind = pipeline::ProductKind::classification;
  std::shared_ptr<const GranuleProduct> seed;
  if (request.kind != pipeline::ProductKind::classification) {
    obs::SpanScope span("resume_probe");
    seed = probe_shallower(request, &seed_kind);
  }

  pipeline::Artifacts art;
  atl03::Granule merged;  // outlives the build (Artifacts borrows the input)
  double shard_ms = 0.0;
  if (seed) {
    art = pipeline::Artifacts::resume(seed->segments, seed->classes);
    if (seed_kind >= pipeline::ProductKind::seasurface) {
      art.sea_surface = seed->sea_surface;
      art.mark_done(pipeline::StageId::seasurface);
    }
    resumed_builds_total_->inc();
  } else {
    const std::vector<std::string>* files = index_.find(request.granule_id, request.beam);
    if (!files)
      throw std::runtime_error("GranuleService: unknown (granule, beam): " +
                               request.granule_id + "/" + atl03::beam_name(request.beam));
    obs::SpanScope span("shard_load");
    stage_timer.reset();
    merged = ShardIndex::load_merged(*files);
    shard_ms = stage_timer.millis();
    art = pipeline::Artifacts::from_beam(merged, merged.beams[0]);
  }

  pipeline::StageTrace trace;
  builder_.build(art, request.kind, &backend_for(request.backend), request.method, &trace);

  // Fold the builder's stage trace into the service's legacy stage view
  // (`load` additionally carries the serve-side shard IO). Stages a resumed
  // build skipped record nothing, exactly like the disk fast path.
  using pipeline::StageId;
  auto fold = [&](obs::HistogramMetric* hist, std::initializer_list<StageId> ids,
                  double extra_ms, bool force) {
    double ms = extra_ms;
    bool any = force;
    for (const StageId id : ids)
      if (trace.did(id)) {
        ms += trace.at(id);
        any = true;
      }
    if (any) hist->observe(ms);
  };
  fold(stage_load_, {StageId::preprocess, StageId::resample, StageId::fpb}, shard_ms,
       /*force=*/!seed);
  fold(stage_features_, {StageId::features}, 0.0, false);
  fold(stage_inference_, {StageId::classify}, 0.0, false);
  fold(stage_seasurface_, {StageId::seasurface}, 0.0, false);
  fold(stage_freeboard_, {StageId::freeboard}, 0.0, false);

  auto product = std::make_shared<GranuleProduct>();
  product->granule_id = request.granule_id;
  product->beam = request.beam;
  product->kind = request.kind;
  product->segments = std::move(art.segments);
  product->classes = std::move(art.classes);
  if (request.kind >= pipeline::ProductKind::seasurface)
    product->sea_surface = std::move(art.sea_surface);
  if (request.kind >= pipeline::ProductKind::freeboard)
    product->freeboard = std::move(art.freeboard);
  cache_.put(key, product);
  if (disk_) schedule_writeback(key, product);

  stage_total_->observe(build_timer.millis());
  return ProductResponse{std::move(product), false, 0.0, ServedFrom::build};
}

namespace {

/// A HistogramMetric snapshot is maintained with the same util types in the
/// same add() order as StageLatency::add, so this assignment reproduces a
/// StageLatency bit-for-bit (the ServiceMetrics struct shape survives the
/// registry migration unchanged).
StageLatency to_stage_latency(const obs::HistogramMetric::Snapshot& snap) {
  StageLatency out;
  out.stats = snap.stats;
  out.histogram = snap.histogram;
  return out;
}

}  // namespace

ServiceMetrics GranuleService::metrics() const {
  ServiceMetrics out;
  out.cache = cache_.stats();
  if (disk_) out.disk = disk_->stats();
  out.scheduler = scheduler_->stats();
  for (std::size_t c = 0; c < kPriorityClasses; ++c) {
    out.by_class[c].requests = requests_total_[c]->value();
    out.requests += out.by_class[c].requests;
    out.by_class[c].latency = to_stage_latency(class_service_[c]->snapshot());
  }
  out.fast_hits = fast_hits_total_->value();
  out.writeback_failures = writeback_failures_total_->value();
  out.resumed_builds = resumed_builds_total_->value();
  out.inference_batches = nn_backend_->batches();
  out.inference_windows = nn_backend_->windows();
  out.load = to_stage_latency(stage_load_->snapshot());
  out.features = to_stage_latency(stage_features_->snapshot());
  out.inference = to_stage_latency(stage_inference_->snapshot());
  out.seasurface = to_stage_latency(stage_seasurface_->snapshot());
  out.freeboard = to_stage_latency(stage_freeboard_->snapshot());
  out.disk_load = to_stage_latency(stage_disk_load_->snapshot());
  out.total = to_stage_latency(stage_total_->snapshot());
  out.queue_wait = to_stage_latency(queue_wait_hist_->snapshot());
  out.service_time = to_stage_latency(service_time_hist_->snapshot());
  out.builder = builder_.metrics().stages();
  return out;
}

obs::RegistrySnapshot GranuleService::obs_snapshot() const {
  // Pull the lazily-synced mirrors up to date before reading: the cache
  // tiers and scheduler push their counters/gauges inside stats(), and the
  // inference totals live in the nn backend (delta-synced here so two
  // concurrent snapshots cannot double-count).
  (void)cache_.stats();
  if (disk_) (void)disk_->stats();
  (void)scheduler_->stats();
  {
    util::MutexLock lock(obs_sync_mutex_);
    const std::uint64_t batches = nn_backend_->batches();
    const std::uint64_t windows = nn_backend_->windows();
    inference_batches_total_->inc(batches - exported_batches_);
    inference_windows_total_->inc(windows - exported_windows_);
    exported_batches_ = batches;
    exported_windows_ = windows;
  }
  return registry_.snapshot();
}

}  // namespace is2::serve
