#include "serve/cluster.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "util/fault.hpp"
#include "util/rng.hpp"

namespace is2::serve {

double ClusterMetrics::imbalance() const {
  double max = 0.0, sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < routed.size(); ++i) {
    if (i < live.size() && !live[i]) continue;
    const double r = static_cast<double>(routed[i]);
    max = std::max(max, r);
    sum += r;
    ++n;
  }
  if (n == 0 || sum == 0.0) return 0.0;
  return max / (sum / static_cast<double>(n));
}

std::uint64_t Cluster::ring_hash(const ProductKey& key) {
  // ProductKeyHash already mixes every key field; one more mix round
  // decorrelates it from the ring-point distribution.
  return util::hash64(static_cast<std::uint64_t>(ProductKeyHash{}(key)));
}

std::uint64_t Cluster::routing_hash(const ProductKey& key) const {
  // Ring placement is by the *shallow* (classification-kind) key of the
  // same request, not the exact key. Product fingerprints are
  // stage-prefix-scoped (see GranuleService::key_for_kind): the
  // classification fingerprint ignores both deeper-stage config and the
  // sea-surface method, so every stage depth and method of one (granule,
  // beam, backend) lands on the same node — a warm()'d classification
  // prefix is resident exactly where a later freeboard or
  // different-method request routes, keeping cross-tier resume fleet-wide.
  // Caches are still looked up by the exact key; only placement coarsens.
  if (key.kind == pipeline::ProductKind::classification) return ring_hash(key);
  ProductRequest shallow;
  shallow.granule_id = key.granule_id;
  shallow.beam = key.beam;
  shallow.backend = key.backend;
  shallow.kind = pipeline::ProductKind::classification;
  return ring_hash(key_for(shallow));  // takes mutex_: never call under it
}

Cluster::Cluster(const ClusterConfig& config, const core::PipelineConfig& pipeline,
                 const geo::GeoCorrections& corrections, const ShardIndex& index,
                 GranuleService::ModelFactory model_factory, resample::FeatureScaler scaler,
                 GranuleService::TreeFactory tree_factory)
    : config_(config), ring_(config.vnodes) {
  const std::size_t n = config_.nodes ? config_.nodes : 1;
  config_.nodes = n;
  peer_probe_total_ = &registry_.counter("is2_cluster_peer_probe_total", {},
                                         "peer RAM-tier probes on a target miss");
  peer_fetch_total_ =
      &registry_.counter("is2_cluster_peer_fetch_total", {},
                         "peer probes that hit and promoted (shard IO + inference avoided)");
  replica_route_total_ = &registry_.counter("is2_cluster_replica_route_total", {},
                                            "hot-key requests routed off-owner");
  hot_key_total_ = &registry_.counter("is2_cluster_hot_key_total", {},
                                      "keys promoted past hot_key_threshold");
  node_failure_total_ = &registry_.counter("is2_cluster_node_failures_total", {},
                                           "thrown submits/probes against live nodes");
  quarantine_total_ = &registry_.counter("is2_cluster_quarantine_total", {},
                                         "live -> quarantined transitions");
  revive_total_ = &registry_.counter("is2_cluster_revive_total", {},
                                     "quarantined -> live transitions");
  rereplicated_total_ = &registry_.counter("is2_cluster_rereplicated_keys_total", {},
                                           "hot keys re-replicated off quarantined nodes");
  live_nodes_gauge_ =
      &registry_.gauge("is2_cluster_live_nodes", {}, "nodes currently in the ring");
  quarantined_gauge_ = &registry_.gauge("is2_cluster_quarantined_nodes", {},
                                        "nodes out of the ring but revivable");

  if (!config_.shared_disk_dir.empty()) {
    disk_ = std::make_unique<DiskCache>(
        DiskCacheConfig{config_.shared_disk_dir, config_.shared_disk_bytes, &registry_});
  }

  // Every node gets the same config/model (keys must be fleet-portable) and
  // borrows the cluster's disk tier; a per-node private tier would defeat
  // re-routing and double-open the directory.
  ServiceConfig node_cfg = config_.node;
  node_cfg.disk_cache_dir.clear();
  node_cfg.shared_disk = disk_.get();

  nodes_.reserve(n);
  routed_total_.reserve(n);
  live_.assign(n, true);
  quarantined_.assign(n, false);
  killed_.assign(n, false);
  consecutive_failures_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    routed_total_.push_back(&registry_.counter("is2_cluster_routed_total",
                                               {{"node", "node" + std::to_string(i)}},
                                               "requests routed to the node"));
    nodes_.push_back(std::make_unique<GranuleService>(node_cfg, pipeline, corrections, index,
                                                      model_factory, scaler, tree_factory));
    ring_.add(static_cast<std::uint32_t>(i));
  }
  live_nodes_gauge_->set(static_cast<double>(n));
}

Cluster::~Cluster() { shutdown(); }

std::size_t Cluster::first_live_locked() const {
  for (std::size_t i = 0; i < live_.size(); ++i)
    if (live_[i]) return i;
  throw std::runtime_error("Cluster: no live nodes");
}

ProductKey Cluster::key_for(const ProductRequest& request) const {
  std::size_t i;
  {
    util::MutexLock lock(mutex_);
    i = first_live_locked();
  }
  return nodes_[i]->key_for(request);
}

std::uint32_t Cluster::owner_of(const ProductKey& key) const {
  const std::uint64_t h = routing_hash(key);  // before the lock: it locks too
  util::MutexLock lock(mutex_);
  return ring_.owner(h);
}

std::vector<std::uint32_t> Cluster::replica_set_of(const ProductKey& key) const {
  const std::uint64_t h = routing_hash(key);
  util::MutexLock lock(mutex_);
  return ring_.replicas(h, std::max<std::size_t>(config_.replication_factor, 1));
}

std::size_t Cluster::live_count() const {
  util::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (bool l : live_) n += l ? 1 : 0;
  return n;
}

bool Cluster::is_live(std::size_t i) const {
  util::MutexLock lock(mutex_);
  return i < live_.size() && live_[i];
}

Cluster::Route Cluster::route(const ProductRequest& request) {
  ProductKey key = key_for(request);
  const std::uint64_t h = routing_hash(key);
  util::MutexLock lock(mutex_);
  if (shut_down_) throw std::runtime_error("Cluster: shut down");
  if (ring_.num_nodes() == 0) throw std::runtime_error("Cluster: no live nodes");

  // Approximate popularity: reset-on-full is a crude decay, but the hot set
  // only steers replica round-robin — a wrong "cold" verdict just means
  // owner-routing, never a wrong answer.
  if (popularity_.size() >= config_.popularity_capacity) popularity_.clear();
  std::uint64_t& count = popularity_[key];
  ++count;
  if (count == config_.hot_key_threshold) hot_key_total_->inc();

  std::size_t target;
  if (count >= config_.hot_key_threshold && config_.replication_factor > 1) {
    const auto reps = ring_.replicas(h, config_.replication_factor);
    target = reps[hot_rr_++ % reps.size()];
    if (target != reps.front()) replica_route_total_->inc();
  } else {
    target = ring_.owner(h);
  }
  routed_total_[target]->inc();
  return Route{std::move(key), h, target};
}

bool Cluster::peer_fetch(const ProductKey& key, std::uint64_t hash, std::size_t target,
                         double budget_ms) {
  std::vector<std::size_t> peers;
  {
    util::MutexLock lock(mutex_);
    if (config_.replication_factor < 2 || ring_.num_nodes() == 0) return false;
    for (std::uint32_t r : ring_.replicas(hash, config_.replication_factor)) {
      const auto i = static_cast<std::size_t>(r);
      if (i != target && live_[i]) peers.push_back(i);
    }
  }
  // The probe phase burns the request's deadline budget: once it expires,
  // stop probing and let the target build — a late peer hit helps nobody.
  util::Deadline deadline(budget_ms);
  util::Backoff backoff(config_.peer_backoff, hash);
  for (std::size_t p : peers) {
    for (std::size_t attempt = 0; attempt <= config_.peer_retries; ++attempt) {
      if (deadline.expired()) return false;
      peer_probe_total_->inc();
      try {
        util::fault::inject("peer.peek", static_cast<int>(p));
        if (auto hit = nodes_[p]->peek_ram(key)) {
          // The resident object itself moves across nodes — bit-identity
          // with a local build is by construction, and the target now
          // fast-hits.
          nodes_[target]->promote_ram(key, hit);
          peer_fetch_total_->inc();
          note_success(p);
          return true;
        }
        note_success(p);
        break;  // clean miss: nothing to retry, try the next peer
      } catch (const std::exception&) {
        note_failure(p);
        if (attempt < config_.peer_retries && !deadline.expired()) backoff.sleep();
      }
    }
  }
  return false;
}

std::vector<std::size_t> Cluster::candidates_for(const Route& r) const {
  std::vector<std::size_t> out;
  util::MutexLock lock(mutex_);
  out.push_back(r.target);
  if (ring_.num_nodes() == 0) return out;
  // At least one fallback even at replication 1: a thrown submit should
  // fail over, not fail the request, as long as anyone is live.
  const std::size_t want = std::max<std::size_t>(config_.replication_factor, 2);
  for (std::uint32_t rep : ring_.replicas(r.hash, want)) {
    const auto i = static_cast<std::size_t>(rep);
    if (i != r.target && live_[i]) out.push_back(i);
  }
  return out;
}

ProductFuture Cluster::submit(const ProductRequest& request) {
  const Route r = route(request);
  util::Deadline deadline(request.deadline_ms);
  std::exception_ptr last;
  for (std::size_t node : candidates_for(r)) {
    try {
      util::fault::inject("node.submit", static_cast<int>(node));
      if (!nodes_[node]->peek_ram(r.key))
        peer_fetch(r.key, r.hash, node, deadline.limited() ? deadline.remaining_ms() : 0.0);
      // Remaining-budget propagation: the node's dequeue-time deadline check
      // sees what is left after routing, probing and any failover here.
      ProductRequest attempt = request;
      if (deadline.limited()) attempt.deadline_ms = std::max(0.01, deadline.remaining_ms());
      ProductFuture fut = nodes_[node]->submit(attempt);
      note_success(node);
      return fut;
    } catch (const std::exception&) {
      last = std::current_exception();
      note_failure(node);
    }
  }
  std::rethrow_exception(last);  // candidates_for never returns empty
}

std::optional<ProductFuture> Cluster::try_submit(const ProductRequest& request,
                                                 std::optional<Priority>* shed_class) {
  const Route r = route(request);
  util::Deadline deadline(request.deadline_ms);
  std::exception_ptr last;
  for (std::size_t node : candidates_for(r)) {
    try {
      util::fault::inject("node.submit", static_cast<int>(node));
      if (!nodes_[node]->peek_ram(r.key))
        peer_fetch(r.key, r.hash, node, deadline.limited() ? deadline.remaining_ms() : 0.0);
      ProductRequest attempt = request;
      if (deadline.limited()) attempt.deadline_ms = std::max(0.01, deadline.remaining_ms());
      // std::nullopt is a shed — a policy answer from a healthy node, not a
      // failure — so it returns as-is instead of failing over (a full queue
      // elsewhere would shed too; retrying is the client's call).
      auto out = nodes_[node]->try_submit(attempt, shed_class);
      note_success(node);
      return out;
    } catch (const std::exception&) {
      last = std::current_exception();
      note_failure(node);
    }
  }
  std::rethrow_exception(last);
}

std::size_t Cluster::warm(const std::vector<ProductRequest>& requests, mapred::Engine& engine) {
  // Owner-routed, shallow-kind prefetch. Deliberately bypasses route(): warm
  // traffic must not feed the popularity ledger (it would mark keys hot
  // before any real client asked) and never replica-spreads.
  std::vector<std::vector<ProductRequest>> groups(nodes_.size());
  for (ProductRequest req : requests) {
    req.kind = pipeline::ProductKind::classification;
    const ProductKey key = key_for(req);
    std::size_t target;
    {
      util::MutexLock lock(mutex_);
      if (shut_down_) throw std::runtime_error("Cluster: shut down");
      if (ring_.num_nodes() == 0) throw std::runtime_error("Cluster: no live nodes");
      target = ring_.owner(ring_hash(key));
    }
    groups[target].push_back(std::move(req));
  }
  std::size_t built = 0;
  for (std::size_t i = 0; i < groups.size(); ++i)
    if (!groups[i].empty()) built += nodes_[i]->warm(groups[i], engine);
  return built;
}

void Cluster::kill_node(std::size_t i) {
  {
    util::MutexLock lock(mutex_);
    if (i >= nodes_.size() || killed_[i]) return;
    live_[i] = false;
    killed_[i] = true;
    quarantined_[i] = false;  // a quarantined node can still be killed
    consecutive_failures_[i] = 0;
    ring_.remove(static_cast<std::uint32_t>(i));  // no-op if quarantine removed it
    sync_gauges_locked();
  }
  // Drain outside the router lock: nothing new routes here anymore, and a
  // drain can take as long as the slowest queued build.
  nodes_[i]->shutdown();
}

void Cluster::sync_gauges_locked() {
  std::size_t alive = 0, quarantined = 0;
  for (bool l : live_) alive += l ? 1 : 0;
  for (bool q : quarantined_) quarantined += q ? 1 : 0;
  live_nodes_gauge_->set(static_cast<double>(alive));
  quarantined_gauge_->set(static_cast<double>(quarantined));
}

void Cluster::quarantine_node(std::size_t i) {
  std::vector<ProductKey> hot;
  {
    util::MutexLock lock(mutex_);
    if (i >= nodes_.size() || !live_[i]) return;  // already out or killed
    live_[i] = false;
    quarantined_[i] = true;
    consecutive_failures_[i] = 0;
    ring_.remove(static_cast<std::uint32_t>(i));
    quarantine_total_->inc();
    sync_gauges_locked();
    // Healing candidates: the hot slice of the popularity ledger (bounded).
    // Cold keys re-route and recover from the shared disk tier on their
    // own; the hot head is what would otherwise storm the new owners with
    // rebuilds.
    for (const auto& [key, count] : popularity_) {
      if (count < config_.hot_key_threshold) continue;
      hot.push_back(key);
      if (hot.size() >= config_.rereplicate_limit) break;
    }
  }
  // Re-replicate outside the lock: the quarantined node is not drained —
  // its RAM tier is intact and peek_ram stays safe — so every hot key it
  // holds is copied to the key's new owner before traffic misses there.
  try {
    for (const ProductKey& key : hot) {
      const std::uint64_t h = routing_hash(key);  // takes mutex_; not held here
      auto hit = nodes_[i]->peek_ram(key);
      if (!hit) continue;
      std::size_t new_owner;
      {
        util::MutexLock lock(mutex_);
        if (ring_.num_nodes() == 0) break;
        new_owner = ring_.owner(h);
      }
      nodes_[new_owner]->promote_ram(key, std::move(hit));
      rereplicated_total_->inc();
    }
  } catch (const std::exception&) {
    // Fleet went fully dark mid-heal (routing_hash needs a live node for
    // key derivation): nothing left to re-replicate to.
  }
}

void Cluster::revive_node(std::size_t i) {
  util::MutexLock lock(mutex_);
  if (i >= nodes_.size() || !quarantined_[i]) return;
  quarantined_[i] = false;
  live_[i] = true;
  consecutive_failures_[i] = 0;
  ring_.add(static_cast<std::uint32_t>(i));
  revive_total_->inc();
  sync_gauges_locked();
}

bool Cluster::is_quarantined(std::size_t i) const {
  util::MutexLock lock(mutex_);
  return i < quarantined_.size() && quarantined_[i];
}

std::size_t Cluster::probe_health() {
  // Sentinel key: peek_ram on a key nobody caches is a cheap liveness
  // round-trip through the node's cache shard locks.
  ProductKey sentinel;
  sentinel.granule_id = "__health_probe__";
  std::size_t healthy = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    {
      util::MutexLock lock(mutex_);
      if (!live_[i]) continue;  // dead and quarantined nodes are never probed
    }
    try {
      util::fault::inject("peer.peek", static_cast<int>(i));
      (void)nodes_[i]->peek_ram(sentinel);
      note_success(i);
      ++healthy;
    } catch (const std::exception&) {
      note_failure(i);
    }
  }
  return healthy;
}

void Cluster::note_failure(std::size_t i) {
  bool quarantine = false;
  {
    util::MutexLock lock(mutex_);
    node_failure_total_->inc();
    if (i >= consecutive_failures_.size() || !live_[i]) return;
    ++consecutive_failures_[i];
    quarantine =
        config_.quarantine_after > 0 && consecutive_failures_[i] >= config_.quarantine_after;
  }
  if (quarantine) quarantine_node(i);
}

void Cluster::note_success(std::size_t i) {
  util::MutexLock lock(mutex_);
  if (i < consecutive_failures_.size()) consecutive_failures_[i] = 0;
}

ClusterMetrics Cluster::metrics() const {
  ClusterMetrics out;
  {
    util::MutexLock lock(mutex_);
    out.live = live_;
    out.quarantined = quarantined_;
  }
  out.nodes.reserve(nodes_.size());
  out.routed.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out.nodes.push_back(nodes_[i]->metrics());
    out.routed.push_back(routed_total_[i]->value());
    out.requests += out.routed.back();
  }
  out.peer_probes = peer_probe_total_->value();
  out.peer_fetches = peer_fetch_total_->value();
  out.replica_routes = replica_route_total_->value();
  out.hot_keys = hot_key_total_->value();
  out.node_failures = node_failure_total_->value();
  out.quarantines = quarantine_total_->value();
  out.revives = revive_total_->value();
  out.rereplicated_keys = rereplicated_total_->value();
  if (disk_) out.shared_disk = disk_->stats();
  return out;
}

obs::RegistrySnapshot Cluster::obs_snapshot() const {
  if (disk_) (void)disk_->stats();  // sync the shared tier's lazy mirror
  obs::RegistrySnapshot merged = registry_.snapshot();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    obs::RegistrySnapshot node_snap = nodes_[i]->obs_snapshot();
    const std::pair<std::string, std::string> label{"node", "node" + std::to_string(i)};
    for (obs::MetricPoint& p : node_snap.points) {
      // Keep each point's label set sorted (the registry invariant the
      // exporters rely on) while tagging it with the node identity.
      p.labels.insert(std::lower_bound(p.labels.begin(), p.labels.end(), label), label);
      merged.points.push_back(std::move(p));
    }
  }
  // Re-sort globally so to_prometheus sees each family contiguous and emits
  // HELP/TYPE exactly once per family.
  std::sort(merged.points.begin(), merged.points.end(),
            [](const obs::MetricPoint& a, const obs::MetricPoint& b) {
              return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
            });
  return merged;
}

void Cluster::wait_disk_writebacks() {
  for (auto& node : nodes_) node->wait_disk_writebacks();
}

void Cluster::shutdown() {
  {
    util::MutexLock lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  for (auto& node : nodes_) node->shutdown();
}

}  // namespace is2::serve
