// GranuleService — the serving façade of the `is2::serve` subsystem.
//
// Wires the `is2::pipeline::ProductBuilder` stage graph behind a single
// asynchronous `submit(request) -> future<ProductResponse>` API:
//
//   ShardIndex (h5lite shard files, merged per beam)
//     -> pipeline::ProductBuilder (preprocess -> 2m resample -> FPB ->
//        features -> ClassifierBackend -> sea surface -> freeboard),
//        stopped at the request's ProductKind, with the classifier chosen
//        per request (nn replica pool or ATL07-style decision tree)
//
// Requests name a ProductKind (classification / seasurface / freeboard) and
// a Backend; both are part of the cache key on each tier. Kinds are strict
// stage-graph prefixes, so on a miss the service probes the caches for the
// same key at shallower kinds (deepest first) and *resumes* the build from
// that product's artifacts — a freeboard request over a cached
// classification product runs only seasurface + freeboard: no shard IO, no
// inference.
//
// Two cache tiers answer repeat requests without re-running the pipeline: a
// sharded in-RAM LRU `ProductCache`, then (when `ServiceConfig::
// disk_cache_dir` is set) a persistent `DiskCache` probed before any shard
// IO — a RAM miss that disk-hits deserializes one file, promotes the
// product to RAM and never touches the shards. Products built cold are
// written back to disk asynchronously on a dedicated write-back thread, so
// the build's caller never waits for disk. A coalescing `BatchScheduler`
// makes cold keys single-flight, applies queue backpressure, and admits by
// `Priority` class (weighted dequeue; background shed first under
// saturation). Every stage is latency-instrumented (util::Timer ->
// util::RunningStats + util::Histogram), end-to-end service latency is
// additionally split per priority class, and everything lands in one
// `ServiceMetrics` snapshot. `warm()` bulk-prefetches products onto a
// `mapred::Engine`, the same cluster abstraction the batch jobs use.
//
// Threading contract: every public method is thread-safe. submit() blocks
// only while the scheduler queue is full; try_submit() never blocks;
// warm() and wait_disk_writebacks() block until done; shutdown() drains
// accepted work, then pending disk write-backs, and is idempotent.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "atl03/granule.hpp"
#include "baseline/decision_tree.hpp"
#include "core/config.hpp"
#include "geo/corrections.hpp"
#include "mapred/engine.hpp"
#include "nn/model.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pipeline/classifier.hpp"
#include "pipeline/product_builder.hpp"
#include "serve/disk_cache.hpp"
#include "serve/node.hpp"
#include "serve/product_cache.hpp"
#include "serve/scheduler.hpp"
#include "util/mutex.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace is2::serve {

/// Maps (granule_id, beam) to the ordered along-track chunk shard files
/// written by `core::write_shards` (shard ids look like
/// "<granule_id>#<beam>c<chunk>").
class ShardIndex {
 public:
  ShardIndex() = default;

  /// Read every shard file's metadata and group by (granule, beam).
  static ShardIndex build(const std::vector<std::string>& shard_files);

  /// Ordered chunk files for one beam; nullptr when unknown.
  const std::vector<std::string>* find(const std::string& granule_id,
                                       atl03::BeamId beam) const;

  /// Every (granule_id, beam) this index can serve.
  std::vector<std::pair<std::string, atl03::BeamId>> entries() const;

  std::size_t size() const { return beams_.size(); }

  /// Load the ordered chunk shards of one beam and merge them back into a
  /// single-beam granule (photons concatenated in along-track order,
  /// background bins deduplicated across chunk overlaps). This is the
  /// expensive per-request IO (a full decode of every chunk): the service
  /// only reaches it after both cache tiers miss — a disk-tier hit never
  /// re-reads shards.
  static atl03::Granule load_merged(const std::vector<std::string>& files);

 private:
  // key: (granule_id, beam as int) -> ordered chunk file list
  std::map<std::pair<std::string, int>, std::vector<std::string>> beams_;
};

/// DEPRECATED thin wrapper over `pipeline::config_fingerprint` — the
/// canonical fingerprint moved into the pipeline layer with the builder
/// (where `pipeline::product_fingerprint` also mixes in backend identity).
/// Kept for one release; call the pipeline functions in new code.
std::uint64_t config_fingerprint(const core::PipelineConfig& config,
                                 seasurface::Method method);

// `StageLatency`, `ClassMetrics` and `ServiceMetrics` moved to
// serve/node.hpp with the NodeHandle extraction — they are part of the node
// surface the cluster router aggregates, not service internals.

struct ServiceConfig {
  std::size_t workers = 4;            ///< scheduler worker threads / model replicas
  std::size_t queue_capacity = 64;    ///< bounded request queue (backpressure)
  std::size_t cache_bytes = 256u << 20;
  std::size_t cache_shards = 8;
  std::size_t inference_batch_windows = 256;  ///< windows per forward pass
  /// Batch-level inference parallelism: size of a shared ThreadPool that
  /// fans one granule's windows out in contiguous batch-aligned spans, each
  /// span on its own model replica. 0 = off (each build runs inference on
  /// its scheduler worker alone, parallelism comes from replicas only).
  /// Predictions are bit-identical for any value — windows are
  /// row-independent — so this is purely a latency knob for wide granules.
  std::size_t inference_threads = 0;
  std::uint64_t model_version = 0;    ///< bump when weights change
  /// Disk cache tier; empty = RAM tier only. Products persist here across
  /// service restarts (keyed by config/model hash, so stale entries are
  /// never served) and are written back asynchronously after cold builds.
  std::string disk_cache_dir;
  std::size_t disk_cache_bytes = 1ull << 30;
  /// Externally owned disk tier shared by several services in one process —
  /// how a `serve::Cluster` gives its nodes a common cold tier without two
  /// DiskCache instances fighting over one directory (the manifest is
  /// per-instance; see disk_cache.hpp). Non-owning: must outlive the
  /// service. When set, disk_cache_dir / disk_cache_bytes are ignored and
  /// the tier's stats/instruments live with the owner's registry.
  DiskCache* shared_disk = nullptr;
  /// Scheduler weighted-dequeue shares (interactive, batch, background).
  ClassWeights class_weights = {8, 3, 1};
  /// obs tracing knobs for the service-owned Tracer. Sampling is tail-based
  /// and per trace id; error/shed/slow traces are always kept.
  double trace_sample_rate = 1.0;          ///< probability a trace is kept
  std::size_t trace_ring_capacity = 8192;  ///< spans retained (newest win)
  double trace_slow_ms = 1000.0;           ///< traces this slow always kept
};

class GranuleService : public NodeHandle {
 public:
  /// Builds one model replica per worker; every invocation must produce an
  /// architecturally and numerically identical model (e.g. construct and
  /// then load the same weight snapshot).
  using ModelFactory = std::function<nn::Sequential()>;
  /// Optional second classifier backend: a fitted ATL07-style decision tree
  /// (every invocation must produce a structurally identical tree). When
  /// absent, submit()/try_submit()/warm() throw std::invalid_argument
  /// synchronously for requests naming Backend::decision_tree — the key
  /// cannot even be formed without the backend's identity.
  using TreeFactory = std::function<baseline::DecisionTree()>;

  GranuleService(const ServiceConfig& config, const core::PipelineConfig& pipeline,
                 const geo::GeoCorrections& corrections, ShardIndex index,
                 ModelFactory model_factory, resample::FeatureScaler scaler,
                 TreeFactory tree_factory = {});
  ~GranuleService();

  GranuleService(const GranuleService&) = delete;
  GranuleService& operator=(const GranuleService&) = delete;

  /// Asynchronous serve: cache fast path resolves immediately; cold keys
  /// dispatch through the coalescing scheduler (blocking when the queue is
  /// full). Unknown (granule, beam) resolves to a broken future.
  ProductFuture submit(const ProductRequest& request) override;

  /// Load-shedding variant: never blocks. Under saturation a queued job of a
  /// class strictly below the request's is displaced first (background
  /// before batch); only when nothing lower is queued is the request itself
  /// shed (std::nullopt). `shed_class` reports which class paid, when
  /// anything was shed.
  std::optional<ProductFuture> try_submit(
      const ProductRequest& request,
      std::optional<Priority>* shed_class = nullptr) override;

  /// Bulk cache warm-up on a map-reduce engine (one task per request).
  /// Returns the number of products actually built (cache misses).
  std::size_t warm(const std::vector<ProductRequest>& requests,
                   mapred::Engine& engine) override;

  /// Cache key a request resolves to (exposed for tests / cache probes).
  ProductKey key_for(const ProductRequest& request) const override;

  ServiceMetrics metrics() const override;

  /// The service's instrument registry (every `is2_serve_*`, `is2_sched_*`
  /// and `is2_cache_*` metric of this instance lives here — feed it to
  /// `obs::to_prometheus` / `obs::to_json`). Valid for the service lifetime.
  const obs::Registry& registry() const { return registry_; }
  /// The service's span ring (feed `trace_spans()` to `obs::to_perfetto`).
  const obs::Tracer& tracer() const { return tracer_; }

  /// Registry snapshot with every lazily-synced instrument refreshed first
  /// (cache tiers, scheduler gauges, inference totals) — what an exposition
  /// endpoint should serve.
  obs::RegistrySnapshot obs_snapshot() const override;

  /// Peer-fetch surface (NodeHandle): speculative RAM-tier probe / insert,
  /// no hit-miss accounting — the cluster moves products across nodes with
  /// these instead of re-running shard IO + inference.
  std::shared_ptr<const GranuleProduct> peek_ram(const ProductKey& key) override;
  void promote_ram(const ProductKey& key,
                   std::shared_ptr<const GranuleProduct> product) override;

  /// Best-effort snapshot of the trace ring, oldest first.
  std::vector<obs::Span> trace_spans() const { return tracer_.spans(); }

  const ServiceConfig& config() const { return config_; }
  const ShardIndex& index() const { return index_; }
  /// Disk tier handle (nullptr when neither disk_cache_dir nor shared_disk
  /// is set; the shared tier when the service runs inside a cluster).
  const DiskCache* disk_cache() const { return disk_; }

  /// Block until every scheduled asynchronous disk write-back has landed
  /// (tests and orderly restarts; normal traffic never needs this).
  void wait_disk_writebacks();

  /// Drain accepted work, then pending disk write-backs (idempotent).
  void shutdown() override;

 private:
  ProductResponse build(const ProductRequest& request, const ProductKey& key);
  /// The backend a request resolves to; throws when it isn't configured.
  pipeline::ClassifierBackend& backend_for(pipeline::Backend backend) const;
  /// `key_for` with the kind overridden (prefix-scoped fingerprint per
  /// kind: the resume probe's key derivation).
  ProductKey key_for_kind(const ProductRequest& request, pipeline::ProductKind kind) const;
  /// Probe RAM then disk for the request's key at every shallower kind,
  /// deepest first; returns the deepest product found (kind in *found_kind).
  std::shared_ptr<const GranuleProduct> probe_shallower(const ProductRequest& request,
                                                        pipeline::ProductKind* found_kind);
  void count_request(Priority cls);
  /// ProductResponse for a RAM-tier hit + the fast-path bookkeeping (fast-hit
  /// counter, ~0 class latency sample).
  ProductFuture fast_hit(Priority cls, std::shared_ptr<const GranuleProduct> hit);
  void schedule_writeback(const ProductKey& key,
                          std::shared_ptr<const GranuleProduct> product);

  ServiceConfig config_;
  core::PipelineConfig pipeline_;
  ShardIndex index_;

  /// Observability spine — declared before every component that registers
  /// instruments in it (caches, scheduler) or publishes spans (builder via
  /// the ambient TraceBinding), so it outlives them all.
  obs::Registry registry_;
  obs::Tracer tracer_;
  /// Hot-path instrument handles (owned by registry_; stable addresses).
  std::array<obs::Counter*, kPriorityClasses> requests_total_{};
  obs::Counter* fast_hits_total_ = nullptr;
  obs::Counter* writeback_failures_total_ = nullptr;
  obs::Counter* resumed_builds_total_ = nullptr;
  obs::HistogramMetric* stage_load_ = nullptr;
  obs::HistogramMetric* stage_features_ = nullptr;
  obs::HistogramMetric* stage_inference_ = nullptr;
  obs::HistogramMetric* stage_seasurface_ = nullptr;
  obs::HistogramMetric* stage_freeboard_ = nullptr;
  obs::HistogramMetric* stage_disk_load_ = nullptr;
  obs::HistogramMetric* stage_total_ = nullptr;
  obs::HistogramMetric* queue_wait_hist_ = nullptr;
  obs::HistogramMetric* service_time_hist_ = nullptr;
  std::array<obs::HistogramMetric*, kPriorityClasses> class_service_{};
  obs::Counter* inference_batches_total_ = nullptr;
  obs::Counter* inference_windows_total_ = nullptr;
  /// Serializes the lazy inference-counter sync in obs_snapshot() (two
  /// concurrent snapshots must not double-count one delta).
  mutable util::Mutex obs_sync_mutex_;
  mutable std::uint64_t exported_batches_ GUARDED_BY(obs_sync_mutex_) = 0;
  mutable std::uint64_t exported_windows_ GUARDED_BY(obs_sync_mutex_) = 0;

  pipeline::ProductBuilder builder_;  ///< the one pipeline implementation
  /// Classifier backends, selected per request. The nn backend owns the
  /// model replica checkout pool (sized workers + inference_threads) and the
  /// batch-level inference ThreadPool; the tree backend is optional.
  std::unique_ptr<pipeline::NnBackend> nn_backend_;
  std::unique_ptr<pipeline::DecisionTreeBackend> tree_backend_;
  ProductCache cache_;
  /// Disk tier: owned when built from disk_cache_dir, borrowed when
  /// `ServiceConfig::shared_disk` points at a cluster-owned tier. `disk_`
  /// is the one the hot path reads (nullptr = no tier) and outlives the
  /// write-back pool below either way.
  std::unique_ptr<DiskCache> owned_disk_;
  DiskCache* disk_ = nullptr;

  // Asynchronous disk write-back: one thread so cold builds never wait for
  // serialization + fsync-ish IO, with a drain counter for orderly restarts.
  util::Mutex writeback_mutex_;
  util::CondVar writeback_cv_;
  std::size_t writebacks_pending_ GUARDED_BY(writeback_mutex_) = 0;
  std::unique_ptr<util::ThreadPool> writeback_pool_;

  std::unique_ptr<BatchScheduler> scheduler_;  ///< last: destroyed first
};

}  // namespace is2::serve
