// HashRing — consistent hashing with virtual nodes for the serve cluster.
//
// Each node contributes `vnodes` points on a 64-bit ring (points are
// splitmix64 mixes of (node, vnode), so placement is deterministic across
// processes and restarts). A key hashes to a ring position and is owned by
// the first point clockwise; `replicas(h, n)` continues clockwise
// collecting the first n *distinct* nodes — the key's replica set, with
// the owner first. The properties the cluster leans on:
//
//   * balance — a node's load share has relative spread ~1/sqrt(vnodes)
//     (each point owns an exponential-length arc), so the default 128
//     points per node keep the max/mean key-load ratio under 1.25 for
//     fleets of 2-8 nodes (asserted over 1k synthetic keys in
//     tests/test_cluster.cpp; 64 points can stray past 1.4);
//   * minimal churn — adding a node to an N-node ring remaps only the key
//     ranges its new points capture, ~K/(N+1) of K keys, and every remapped
//     key moves TO the new node; removing undoes exactly that. Keys that
//     stay put keep their RAM-tier locality across fleet resizes.
//
// Not thread-safe: the cluster guards its ring with the router mutex. Point
// collisions between distinct nodes (probability ~P^2/2^64 for P points)
// are resolved at add() by re-mixing until a free point is found; remove()
// erases by node id, so resolution order never leaks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace is2::serve {

class HashRing {
 public:
  explicit HashRing(std::size_t vnodes_per_node = 128);

  /// Add a node's vnode points; no-op when already present.
  void add(std::uint32_t node);
  /// Remove every point of a node; no-op when absent.
  void remove(std::uint32_t node);

  bool contains(std::uint32_t node) const { return nodes_.count(node) != 0; }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t vnodes_per_node() const { return vnodes_; }

  /// Owner of a hashed key: first point clockwise (wrapping).
  /// Throws std::runtime_error on an empty ring.
  std::uint32_t owner(std::uint64_t key_hash) const;

  /// First `n` distinct nodes clockwise from the key — the replica set,
  /// owner first. Returns all nodes (still in ring order) when n >= size.
  std::vector<std::uint32_t> replicas(std::uint64_t key_hash, std::size_t n) const;

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, std::uint32_t> points_;  ///< ring position -> node
  std::set<std::uint32_t> nodes_;
};

}  // namespace is2::serve
