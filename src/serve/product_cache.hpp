// Sharded LRU cache for served granule products (the RAM tier of the
// two-tier `is2::serve` product cache; the disk tier is serve/disk_cache).
// Entries are keyed by ProductKey = (granule_id, beam, config-hash) so a
// config or model change never serves stale products, and eviction is
// byte-budgeted: each shard evicts from its least-recently-used end until it
// fits, so total resident bytes stay near the budget no matter how large
// individual products are. Sharding (key-hash -> shard) keeps lock
// contention low under concurrent mixed hit/miss traffic.
//
// Ownership / threading contract: every method is thread-safe; a call locks
// exactly one shard mutex (stats()/clear() lock each in turn) and performs
// no IO, so nothing here blocks beyond a short critical section. Products
// are immutable once inserted and handed out as shared_ptr<const>, so a hit
// stays valid after eviction; callers never copy product bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "atl03/types.hpp"
#include "freeboard/freeboard.hpp"
#include "obs/registry.hpp"
#include "pipeline/kinds.hpp"
#include "resample/segmenter.hpp"
#include "seasurface/detector.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace is2::serve {

/// Cache identity of one served product. `config_hash` is the stage-prefix-
/// scoped `pipeline::product_fingerprint` — only the config inputs the
/// kind's stages read, plus classifier backend identity — so e.g. a
/// classification product keeps one identity across sea-surface methods.
/// `kind` and `backend` are additionally explicit fields: the resume probe
/// re-derives shallower keys per kind (see GranuleService::key_for_kind).
struct ProductKey {
  std::string granule_id;
  atl03::BeamId beam = atl03::BeamId::Gt1r;
  std::uint64_t config_hash = 0;
  pipeline::ProductKind kind = pipeline::ProductKind::freeboard;
  pipeline::Backend backend = pipeline::Backend::nn;

  bool operator==(const ProductKey& o) const {
    return config_hash == o.config_hash && beam == o.beam && kind == o.kind &&
           backend == o.backend && granule_id == o.granule_id;
  }
};

struct ProductKeyHash {
  std::size_t operator()(const ProductKey& key) const;
};

/// Materialized serving product for one (granule, beam, config, kind,
/// backend). How deep the artifact set goes is the key's `ProductKind`: a
/// `classification` product carries segments + classes only (sea_surface /
/// freeboard empty), and — kinds being strict stage-graph prefixes — seeds a
/// deeper build via `pipeline::Artifacts::resume`.
struct GranuleProduct {
  std::string granule_id;
  atl03::BeamId beam = atl03::BeamId::Gt1r;
  pipeline::ProductKind kind = pipeline::ProductKind::freeboard;
  std::vector<resample::Segment> segments;          ///< 2m resampled, FPB-corrected
  std::vector<atl03::SurfaceClass> classes;         ///< classifier output per segment
  seasurface::SeaSurfaceProfile sea_surface;        ///< empty below seasurface kind
  freeboard::FreeboardProduct freeboard;            ///< empty below freeboard kind

  /// Resident-size estimate used for byte-budget eviction.
  std::size_t approx_bytes() const;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::size_t bytes = 0;    ///< resident product bytes
  std::size_t entries = 0;  ///< resident product count

  double hit_rate() const {
    const std::uint64_t n = hits + misses;
    return n ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  }
};

class ProductCache {
 public:
  /// `byte_budget` is split evenly across `num_shards` independent LRU lists.
  /// With a `registry`, the cache mirrors its counters into
  /// `is2_cache_*{tier="ram"}` instruments — synced lazily inside stats()
  /// (delta of the per-shard counters since the last sync), so the hot get/
  /// put paths stay exactly one shard lock with no extra atomics.
  explicit ProductCache(std::size_t byte_budget, std::size_t num_shards = 8,
                        obs::Registry* registry = nullptr);

  ProductCache(const ProductCache&) = delete;
  ProductCache& operator=(const ProductCache&) = delete;

  /// Look up a product; a hit refreshes its LRU position.
  std::shared_ptr<const GranuleProduct> get(const ProductKey& key);

  /// Insert (or refresh) a product, then evict least-recently-used entries
  /// until the shard fits its budget again. The entry just inserted is never
  /// evicted by its own insertion, so an oversized product still serves the
  /// requests that are already waiting on it.
  void put(const ProductKey& key, std::shared_ptr<const GranuleProduct> product);

  /// Lookup without touching the hit/miss counters (a hit still refreshes
  /// LRU order — it is a real use). For speculative probes that are not
  /// client requests, e.g. the service's shallower-kind resume probe, so
  /// stats keep reporting the client-visible hit rate.
  std::shared_ptr<const GranuleProduct> peek(const ProductKey& key);

  /// Lookup without touching LRU order or hit/miss counters.
  bool contains(const ProductKey& key) const;

  CacheStats stats() const;
  void clear();

  std::size_t byte_budget() const { return byte_budget_; }
  std::size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    ProductKey key;
    std::shared_ptr<const GranuleProduct> product;
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable util::Mutex mutex;
    std::list<Entry> lru GUARDED_BY(mutex);  ///< front = most recently used
    std::unordered_map<ProductKey, std::list<Entry>::iterator, ProductKeyHash> index
        GUARDED_BY(mutex);
    std::size_t bytes GUARDED_BY(mutex) = 0;
    std::uint64_t hits GUARDED_BY(mutex) = 0, misses GUARDED_BY(mutex) = 0,
        evictions GUARDED_BY(mutex) = 0, insertions GUARDED_BY(mutex) = 0;
  };

  Shard& shard_for(const ProductKey& key) const;
  void sync_registry(const CacheStats& totals) const;

  std::size_t byte_budget_;
  std::size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Registry mirror (nullptr = off). The shard counters stay the source of
  /// truth; `exported_` remembers what has already been pushed so counter
  /// increments are exact deltas. The instrument pointers are set once at
  /// construction (stable for the registry's lifetime) — only the delta
  /// bookkeeping needs the export mutex.
  obs::Counter* hits_total_ = nullptr;
  obs::Counter* misses_total_ = nullptr;
  obs::Counter* evictions_total_ = nullptr;
  obs::Counter* insertions_total_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
  obs::Gauge* entries_gauge_ = nullptr;
  mutable util::Mutex export_mutex_;
  mutable CacheStats exported_ GUARDED_BY(export_mutex_);
};

}  // namespace is2::serve
