// Sentinel-2 raster types: a north-up multispectral image in EPSG:3976 with
// the four 10m bands the segmentation uses (B02 blue, B03 green, B04 red,
// B08 NIR), and a class raster for segmentation output.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "atl03/types.hpp"
#include "geo/polar_stereo.hpp"

namespace is2::s2 {

/// The 10m-resolution bands used by the color-based segmentation.
enum class Band : std::uint8_t { B02 = 0, B03 = 1, B04 = 2, B08 = 3 };
inline constexpr int kNumBands = 4;

/// Affine georeferencing for a north-up raster: pixel (row, col) center is at
/// x = x0 + (col + 0.5) * pixel, y = y0 - (row + 0.5) * pixel.
struct GeoTransform {
  double x0 = 0.0;      ///< west edge (projected meters)
  double y0 = 0.0;      ///< north edge
  double pixel = 10.0;  ///< pixel size [m]

  geo::Xy pixel_center(std::size_t row, std::size_t col) const {
    return {x0 + (static_cast<double>(col) + 0.5) * pixel,
            y0 - (static_cast<double>(row) + 0.5) * pixel};
  }
  /// Returns false if p is outside the raster of the given size.
  bool world_to_pixel(const geo::Xy& p, std::size_t rows, std::size_t cols, std::size_t& row,
                      std::size_t& col) const;
};

/// Top-of-atmosphere reflectance raster, band-sequential storage.
class MultispectralImage {
 public:
  MultispectralImage(std::size_t rows, std::size_t cols, GeoTransform transform);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const GeoTransform& transform() const { return transform_; }

  float& at(Band b, std::size_t row, std::size_t col) { return data_[index(b, row, col)]; }
  float at(Band b, std::size_t row, std::size_t col) const { return data_[index(b, row, col)]; }

  /// Whole-band plane access for bulk processing (rows*cols floats).
  const float* band_data(Band b) const {
    return data_.data() + static_cast<std::size_t>(b) * rows_ * cols_;
  }
  float* band_data(Band b) { return data_.data() + static_cast<std::size_t>(b) * rows_ * cols_; }

  std::size_t pixel_count() const { return rows_ * cols_; }

 private:
  std::size_t index(Band b, std::size_t row, std::size_t col) const {
    return (static_cast<std::size_t>(b) * rows_ + row) * cols_ + col;
  }

  std::size_t rows_;
  std::size_t cols_;
  GeoTransform transform_;
  std::vector<float> data_;
};

/// Per-pixel surface class raster (segmentation output / scene truth).
class ClassRaster {
 public:
  ClassRaster(std::size_t rows, std::size_t cols, GeoTransform transform);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const GeoTransform& transform() const { return transform_; }

  atl03::SurfaceClass at(std::size_t row, std::size_t col) const {
    return static_cast<atl03::SurfaceClass>(data_[row * cols_ + col]);
  }
  void set(std::size_t row, std::size_t col, atl03::SurfaceClass c) {
    data_[row * cols_ + col] = static_cast<std::uint8_t>(c);
  }

  /// Class at a projected point; Unknown outside the raster.
  atl03::SurfaceClass at_world(const geo::Xy& p) const;

  const std::vector<std::uint8_t>& data() const { return data_; }
  std::vector<std::uint8_t>& data() { return data_; }

  /// Fraction of pixels with each class (ThickIce, ThinIce, OpenWater, Unknown).
  std::array<double, 4> class_fractions() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  GeoTransform transform_;
  std::vector<std::uint8_t> data_;
};

}  // namespace is2::s2
