// Sentinel-2 scene renderer.
//
// Renders a multispectral image of the same ground-truth SurfaceModel the
// photon simulator samples, as the scene stood at the S2 acquisition time:
// sea ice drifts between the IS2 and S2 overpasses, so the renderer displaces
// surface features by the true drift vector (which the auto-labeling stage
// must estimate back — Table I's "shift of S2 images"). Thick and thin
// clouds plus their shadows overlay the surface exactly as they confound the
// real segmentation; truth rasters (class, cloud optical depth, shadow mask)
// ride along for evaluation.
#pragma once

#include <cstdint>

#include "atl03/surface_model.hpp"
#include "sentinel2/image.hpp"

namespace is2::s2 {

struct SceneConfig {
  double pixel_m = 10.0;          ///< S2 10m visible/NIR resolution
  double margin_m = 1'500.0;      ///< raster margin beyond the beam envelope
  double cross_track_halfwidth_m = 5'500.0;  ///< covers the three strong beams

  double cloud_cover = 0.22;      ///< target cloudy-pixel fraction
  double thin_cloud_fraction = 0.65;  ///< of cloudy pixels, fraction thin
  double cloud_scale_m = 4'000.0; ///< cloud field feature size
  double shadow_offset_x_m = 900.0;   ///< cloud shadow displacement (sun geometry)
  double shadow_offset_y_m = -700.0;
  double noise_sigma = 0.012;     ///< per-band sensor noise (reflectance units)
};

/// Rendered scene plus ground truth for evaluating segmentation/labeling.
struct Scene {
  MultispectralImage image;       ///< what the segmentation sees
  ClassRaster truth_class;        ///< surface class at S2 time (drift applied)
  std::vector<float> cloud_tau;   ///< optical depth per pixel (row-major)
  std::vector<std::uint8_t> shadow_mask;  ///< 1 where a cloud shadow falls
  geo::Xy drift;                  ///< true feature displacement IS2 -> S2 [m]
  double acquisition_time = 0.0;  ///< campaign-relative time [s]
};

class SceneSimulator {
 public:
  SceneSimulator(const SceneConfig& config, std::uint64_t seed);

  /// Render the scene at `acquisition_time` with the given true drift.
  /// A surface feature at projected point p at IS2 time appears at p + drift.
  Scene render(const atl03::SurfaceModel& surface, geo::Xy drift,
               double acquisition_time) const;

  const SceneConfig& config() const { return config_; }

 private:
  SceneConfig config_;
  std::uint64_t seed_;
};

}  // namespace is2::s2
