#include "sentinel2/segmentation.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sentinel2/kmeans.hpp"
#include "util/stats.hpp"

namespace is2::s2 {

using atl03::SurfaceClass;

namespace {

struct Corrected {
  // Corrected band values used for clustering.
  std::vector<float> b02, b04, b08;
  std::vector<std::uint8_t> thick_cloud;
  std::size_t thin_corrected = 0;
  std::size_t shadow_corrected = 0;
};

Corrected correct_bands(const MultispectralImage& img, const SegmentationConfig& cfg) {
  const std::size_t rows = img.rows(), cols = img.cols(), n = rows * cols;
  Corrected out;
  out.b02.resize(n);
  out.b04.resize(n);
  out.b08.resize(n);
  out.thick_cloud.assign(n, 0);

  // Pass 1: brightness map + cloud handling.
  std::vector<float> brightness(n);
  std::size_t thin_count = 0;
#pragma omp parallel for schedule(static) reduction(+ : thin_count)
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(n); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    const std::size_t r = i / cols, c = i % cols;
    float b02 = img.at(Band::B02, r, c);
    const float b03 = img.at(Band::B03, r, c);
    float b04 = img.at(Band::B04, r, c);
    float b08 = img.at(Band::B08, r, c);

    const double vis = (b02 + b03 + b04) / 3.0;
    const double nir_ratio = vis > 1e-4 ? b08 / vis : 0.0;

    if (nir_ratio > cfg.cloud_nir_ratio && vis > cfg.cloud_brightness) {
      out.thick_cloud[i] = 1;  // opaque cloud: no surface signal to recover
    } else if (nir_ratio > cfg.ice_nir_ratio && vis > 0.15) {
      // Thin-cloud inversion: pixel = (1-a)*surface + a*cloud. The NIR/VIS
      // ratio interpolates between the ice ratio and 1.0 with opacity, which
      // gives an estimate of a to unmix.
      const double denom = 1.0 - cfg.ice_nir_ratio;
      double alpha = (nir_ratio - cfg.ice_nir_ratio) / std::max(denom, 1e-6);
      alpha = std::clamp(alpha, 0.0, cfg.max_thin_alpha);
      if (alpha > 0.05) {
        const auto unmix = [&](float v) {
          return static_cast<float>(
              std::clamp((v - alpha * cfg.cloud_reflectance) / (1.0 - alpha), 0.0, 1.5));
        };
        b02 = unmix(b02);
        b04 = unmix(b04);
        b08 = unmix(b08);
        ++thin_count;
      }
    }
    out.b02[i] = b02;
    out.b04[i] = b04;
    out.b08[i] = b08;
    brightness[i] = static_cast<float>((b02 + b04) / 2.0);
  }
  out.thin_corrected = thin_count;

  // Pass 2: tile median brightness for shadow detection.
  const std::size_t t = cfg.tile_px;
  const std::size_t trows = (rows + t - 1) / t, tcols = (cols + t - 1) / t;
  std::vector<float> tile_median(trows * tcols, 0.0f);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t tii = 0; tii < static_cast<std::ptrdiff_t>(trows * tcols); ++tii) {
    const auto ti = static_cast<std::size_t>(tii);
    const std::size_t tr = ti / tcols, tc = ti % tcols;
    std::vector<double> vals;
    vals.reserve(t * t);
    for (std::size_t r = tr * t; r < std::min((tr + 1) * t, rows); ++r)
      for (std::size_t c = tc * t; c < std::min((tc + 1) * t, cols); ++c)
        if (!out.thick_cloud[r * cols + c]) vals.push_back(brightness[r * cols + c]);
    tile_median[ti] = vals.empty() ? 0.0f : static_cast<float>(util::median(vals));
  }

  // Pass 3: shadow re-gaining.
  std::size_t shadow_count = 0;
#pragma omp parallel for schedule(static) reduction(+ : shadow_count)
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(n); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    if (out.thick_cloud[i]) continue;
    const std::size_t r = i / cols, c = i % cols;
    const float med = tile_median[(r / t) * tcols + (c / t)];
    if (med < cfg.shadow_tile_brightness) continue;  // dark neighborhoods are water, not shadow
    const double gain = med > 1e-4 ? brightness[i] / med : 1.0;
    if (gain < cfg.shadow_gain_lo || gain > cfg.shadow_gain_hi) continue;
    // Ice-like spectrum check: water under shadow stays blue-dominated.
    const double nir_ratio = out.b02[i] > 1e-4 ? out.b08[i] / out.b02[i] : 0.0;
    if (nir_ratio < 0.5) continue;
    const auto regain = [&](float v) { return static_cast<float>(std::min(v / gain, 1.5)); };
    out.b02[i] = regain(out.b02[i]);
    out.b04[i] = regain(out.b04[i]);
    out.b08[i] = regain(out.b08[i]);
    ++shadow_count;
  }
  out.shadow_corrected = shadow_count;
  return out;
}

}  // namespace

SegmentationResult segment(const MultispectralImage& image, const SegmentationConfig& cfg) {
  const std::size_t rows = image.rows(), cols = image.cols(), n = rows * cols;
  Corrected corr = correct_bands(image, cfg);

  // Subsample for clustering (deterministic stride + jitter).
  util::Rng rng(cfg.seed);
  const std::size_t target = std::min(cfg.kmeans_subsample, n);
  const std::size_t stride = std::max<std::size_t>(1, n / target);
  std::vector<float> sample;
  sample.reserve(3 * (n / stride + 1));
  for (std::size_t i = rng.uniform_int(0, static_cast<std::int64_t>(stride) - 1);
       i < n; i += stride) {
    if (corr.thick_cloud[i]) continue;
    sample.push_back(corr.b02[i]);
    sample.push_back(corr.b04[i]);
    sample.push_back(corr.b08[i]);
  }

  SegmentationResult result{ClassRaster(rows, cols, image.transform()), 0, corr.thin_corrected,
                            corr.shadow_corrected};

  if (sample.size() < 9) {
    // Degenerate scene (all cloud): everything stays Unknown.
    result.thick_cloud_pixels = n;
    return result;
  }

  const std::size_t k = std::min(cfg.kmeans_k, sample.size() / 3);
  KMeansResult km = kmeans(sample, 3, k, rng, cfg.kmeans_iters);

  // Map each centroid to a class by spectral signature. The NIR/VIS ratio is
  // ~0.9 for snow ice, ~0.5 for thin ice and ~0.2 for water, and survives
  // the multiplicative dimming of shadows that brightness ordering does not.
  std::vector<SurfaceClass> cluster_class(k);
  for (std::size_t c = 0; c < k; ++c) {
    const double b02 = km.centroids[c * 3 + 0];
    const double b04 = km.centroids[c * 3 + 1];
    const double b08 = km.centroids[c * 3 + 2];
    const double brightness = (b02 + b04) / 2.0;
    const double ratio = b02 > 1e-4 ? b08 / b02 : 0.0;
    if (brightness < cfg.water_brightness_max || ratio < cfg.water_ratio_max)
      cluster_class[c] = SurfaceClass::OpenWater;
    else if (ratio < cfg.thin_ratio_max)
      cluster_class[c] = SurfaceClass::ThinIce;
    else
      cluster_class[c] = SurfaceClass::ThickIce;
  }

  // Assign every pixel.
  std::size_t cloud_pixels = 0;
#pragma omp parallel for schedule(static) reduction(+ : cloud_pixels)
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(n); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    const std::size_t r = i / cols, c = i % cols;
    if (corr.thick_cloud[i]) {
      result.labels.set(r, c, SurfaceClass::Unknown);
      ++cloud_pixels;
      continue;
    }
    const float p[3] = {corr.b02[i], corr.b04[i], corr.b08[i]};
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_c = 0;
    for (std::size_t kc = 0; kc < k; ++kc) {
      double d = 0.0;
      for (int dI = 0; dI < 3; ++dI) {
        const double diff = p[dI] - km.centroids[kc * 3 + dI];
        d += diff * diff;
      }
      if (d < best) {
        best = d;
        best_c = kc;
      }
    }
    result.labels.set(r, c, cluster_class[best_c]);
  }
  result.thick_cloud_pixels = cloud_pixels;
  return result;
}

SegmentationScore score_segmentation(const ClassRaster& prediction, const ClassRaster& truth) {
  SegmentationScore score;
  if (prediction.rows() != truth.rows() || prediction.cols() != truth.cols())
    throw std::invalid_argument("score_segmentation: raster size mismatch");
  std::size_t correct = 0;
  for (std::size_t r = 0; r < prediction.rows(); ++r) {
    for (std::size_t c = 0; c < prediction.cols(); ++c) {
      const SurfaceClass p = prediction.at(r, c);
      const SurfaceClass t = truth.at(r, c);
      if (p == SurfaceClass::Unknown || t == SurfaceClass::Unknown) continue;
      ++score.evaluated;
      ++score.confusion[static_cast<int>(t)][static_cast<int>(p)];
      if (p == t) ++correct;
    }
  }
  score.accuracy =
      score.evaluated ? static_cast<double>(correct) / static_cast<double>(score.evaluated) : 0.0;
  return score;
}

}  // namespace is2::s2
