#include "sentinel2/image.hpp"

#include <cmath>
#include <stdexcept>

namespace is2::s2 {

bool GeoTransform::world_to_pixel(const geo::Xy& p, std::size_t rows, std::size_t cols,
                                  std::size_t& row, std::size_t& col) const {
  const double fc = (p.x - x0) / pixel;
  const double fr = (y0 - p.y) / pixel;
  if (fc < 0.0 || fr < 0.0) return false;
  const auto c = static_cast<std::size_t>(fc);
  const auto r = static_cast<std::size_t>(fr);
  if (r >= rows || c >= cols) return false;
  row = r;
  col = c;
  return true;
}

MultispectralImage::MultispectralImage(std::size_t rows, std::size_t cols, GeoTransform transform)
    : rows_(rows), cols_(cols), transform_(transform),
      data_(static_cast<std::size_t>(kNumBands) * rows * cols, 0.0f) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("MultispectralImage: empty raster");
}

ClassRaster::ClassRaster(std::size_t rows, std::size_t cols, GeoTransform transform)
    : rows_(rows), cols_(cols), transform_(transform),
      data_(rows * cols, static_cast<std::uint8_t>(atl03::SurfaceClass::Unknown)) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("ClassRaster: empty raster");
}

atl03::SurfaceClass ClassRaster::at_world(const geo::Xy& p) const {
  std::size_t row, col;
  if (!transform_.world_to_pixel(p, rows_, cols_, row, col)) return atl03::SurfaceClass::Unknown;
  return at(row, col);
}

std::array<double, 4> ClassRaster::class_fractions() const {
  std::array<std::size_t, 4> counts{0, 0, 0, 0};
  for (std::uint8_t v : data_) {
    switch (static_cast<atl03::SurfaceClass>(v)) {
      case atl03::SurfaceClass::ThickIce: ++counts[0]; break;
      case atl03::SurfaceClass::ThinIce: ++counts[1]; break;
      case atl03::SurfaceClass::OpenWater: ++counts[2]; break;
      default: ++counts[3]; break;
    }
  }
  std::array<double, 4> out{};
  const auto total = static_cast<double>(data_.size());
  for (std::size_t i = 0; i < 4; ++i) out[i] = static_cast<double>(counts[i]) / total;
  return out;
}

}  // namespace is2::s2
