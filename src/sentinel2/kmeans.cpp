#include "sentinel2/kmeans.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace is2::s2 {

namespace {

double sq_dist(const float* a, const float* b, std::size_t dim) {
  double d = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    d += diff * diff;
  }
  return d;
}

}  // namespace

KMeansResult kmeans(const std::vector<float>& points, std::size_t dim, std::size_t k,
                    util::Rng rng, int max_iters, double tol) {
  if (dim == 0 || points.size() % dim != 0)
    throw std::invalid_argument("kmeans: points size not a multiple of dim");
  const std::size_t n = points.size() / dim;
  if (k == 0 || n < k) throw std::invalid_argument("kmeans: need at least k points");

  KMeansResult res;
  res.centroids.resize(k * dim);
  res.labels.assign(n, 0);

  // k-means++ seeding.
  std::vector<double> min_d(n, std::numeric_limits<double>::infinity());
  {
    const auto first = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    for (std::size_t d = 0; d < dim; ++d) res.centroids[d] = points[first * dim + d];
    for (std::size_t c = 1; c < k; ++c) {
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double d = sq_dist(&points[i * dim], &res.centroids[(c - 1) * dim], dim);
        min_d[i] = std::min(min_d[i], d);
        total += min_d[i];
      }
      double r = rng.uniform() * total;
      std::size_t chosen = n - 1;
      for (std::size_t i = 0; i < n; ++i) {
        r -= min_d[i];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
      for (std::size_t d = 0; d < dim; ++d)
        res.centroids[c * dim + d] = points[chosen * dim + d];
    }
  }

  std::vector<double> sums(k * dim);
  std::vector<std::size_t> counts(k);
  std::vector<double> best_dist(n);
  for (int iter = 0; iter < max_iters; ++iter) {
    res.iterations = iter + 1;
    // Assignment (parallel). Per-point best distances land in a scratch
    // array and are summed serially in index order below: a
    // `reduction(+:inertia)` would combine partial sums in a
    // thread-count-dependent order and perturb the float result, so the
    // inertia would differ between OpenMP on/off runs. This way it is
    // bit-identical to the serial loop for any thread count.
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(n); ++ii) {
      const auto i = static_cast<std::size_t>(ii);
      double best = std::numeric_limits<double>::infinity();
      std::uint32_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = sq_dist(&points[i * dim], &res.centroids[c * dim], dim);
        if (d < best) {
          best = d;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
      res.labels[i] = best_c;
      best_dist[i] = best;
    }
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) inertia += best_dist[i];

    // Update.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = res.labels[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c * dim + d] += points[i * dim + d];
    }
    double shift = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (std::size_t d = 0; d < dim; ++d) {
        const auto nv = static_cast<float>(sums[c * dim + d] / static_cast<double>(counts[c]));
        shift += std::abs(nv - res.centroids[c * dim + d]);
        res.centroids[c * dim + d] = nv;
      }
    }
    res.inertia = inertia;
    if (shift < tol) break;
  }
  return res;
}

std::vector<std::uint32_t> kmeans_assign(const std::vector<float>& points, std::size_t dim,
                                         const std::vector<float>& centroids) {
  if (dim == 0 || points.size() % dim != 0 || centroids.size() % dim != 0)
    throw std::invalid_argument("kmeans_assign: bad dimensions");
  const std::size_t n = points.size() / dim;
  const std::size_t k = centroids.size() / dim;
  std::vector<std::uint32_t> labels(n, 0);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(n); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      const double d = sq_dist(&points[i * dim], &centroids[c * dim], dim);
      if (d < best) {
        best = d;
        labels[i] = static_cast<std::uint32_t>(c);
      }
    }
  }
  return labels;
}

}  // namespace is2::s2
