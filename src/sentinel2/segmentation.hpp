// Color-based Sentinel-2 sea-ice segmentation with thin-cloud and shadow
// filtering (reproduces the method of paper ref [5], which auto-labels the
// S2 imagery that in turn labels the IS2 track).
//
// Stages:
//  1. thick-cloud masking  — spectrally flat bright pixels (high NIR/VIS
//     ratio) are unclassifiable and become Unknown;
//  2. thin-cloud correction — the additive haze of translucent cloud is
//     estimated from the NIR/VIS ratio and inverted out of the bands;
//  3. shadow filtering      — pixels much darker than their neighborhood tile
//     with ice-like spectra are re-gained to the tile brightness;
//  4. color classification  — k-means (k=3) in corrected (B02,B04,B08) space
//     on a subsample, clusters ordered by brightness onto
//     open water < thin ice < thick ice, all pixels assigned to centroids.
#pragma once

#include <cstdint>

#include "sentinel2/image.hpp"
#include "util/rng.hpp"

namespace is2::s2 {

struct SegmentationConfig {
  // Thick-cloud detection.
  double cloud_nir_ratio = 0.965;  ///< NIR/VIS above this looks like cloud
  double cloud_brightness = 0.55;  ///< ...if also at least this bright
  // Thin-cloud correction.
  double ice_nir_ratio = 0.905;    ///< canonical ice NIR/VIS ratio
  double max_thin_alpha = 0.75;    ///< cap on removable haze opacity
  double cloud_reflectance = 0.92; ///< assumed cloud brightness for inversion
  // Shadow filtering.
  std::size_t tile_px = 32;        ///< neighborhood tile for local brightness
  double shadow_gain_lo = 0.35;    ///< plausible shadow dimming range
  double shadow_gain_hi = 0.82;
  double shadow_tile_brightness = 0.30;  ///< only trust shadows in bright tiles
  // Clustering. k exceeds the class count so the wide thick-ice reflectance
  // range can occupy several clusters; each centroid is then mapped to a
  // class by its spectral signature (NIR/VIS ratio separates the classes
  // regardless of brightness, which shadows and thin haze rescale).
  std::size_t kmeans_k = 6;
  std::size_t kmeans_subsample = 120'000;
  int kmeans_iters = 40;
  double water_ratio_max = 0.33;   ///< centroid B08/B02 below this = open water
  double thin_ratio_max = 0.72;    ///< ...below this = thin ice, above = thick
  double water_brightness_max = 0.15;  ///< very dark centroids are water
  std::uint64_t seed = 42;
};

struct SegmentationResult {
  ClassRaster labels;
  std::size_t thick_cloud_pixels = 0;
  std::size_t thin_cloud_corrected = 0;
  std::size_t shadow_corrected = 0;
};

/// Run the full segmentation on an image.
SegmentationResult segment(const MultispectralImage& image, const SegmentationConfig& config = {});

/// Pixel-wise agreement between prediction and truth over pixels where both
/// are known (i.e. excluding cloud-masked and off-scene pixels).
struct SegmentationScore {
  double accuracy = 0.0;
  std::size_t evaluated = 0;
  /// Confusion counts indexed [truth][pred] over the three classes.
  std::uint64_t confusion[3][3] = {};
};

SegmentationScore score_segmentation(const ClassRaster& prediction, const ClassRaster& truth);

}  // namespace is2::s2
