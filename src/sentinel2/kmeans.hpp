// Lloyd's k-means with k-means++ seeding, used by the color-based
// segmentation to find the water / thin-ice / thick-ice brightness clusters.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace is2::s2 {

struct KMeansResult {
  std::vector<float> centroids;       ///< k * dim, row-major
  std::vector<std::uint32_t> labels;  ///< per input point
  double inertia = 0.0;               ///< sum of squared distances to centroids
  int iterations = 0;
};

/// Cluster `n` points of dimension `dim` stored row-major in `points`.
/// OpenMP-parallel assignment step; deterministic given the seed.
KMeansResult kmeans(const std::vector<float>& points, std::size_t dim, std::size_t k,
                    util::Rng rng, int max_iters = 50, double tol = 1e-4);

/// Assign arbitrary points to the nearest centroid from a previous run.
std::vector<std::uint32_t> kmeans_assign(const std::vector<float>& points, std::size_t dim,
                                         const std::vector<float>& centroids);

}  // namespace is2::s2
