#include "sentinel2/scene_sim.hpp"

#include <algorithm>
#include <cmath>

#include "atl03/noise.hpp"
#include "util/rng.hpp"

namespace is2::s2 {

using atl03::SurfaceClass;
using atl03::SurfaceSample;

namespace {

/// Per-class band spectra at unit reflectance scale. Snow-covered ice is
/// bright and flat across VIS with a slight NIR rolloff; thin ice is
/// grey-blue; open water is dark with a blue tint and almost no NIR return.
struct Spectrum {
  float b02, b03, b04, b08;
};

Spectrum class_spectrum(SurfaceClass c) {
  switch (c) {
    case SurfaceClass::ThickIce: return {1.00f, 1.00f, 0.98f, 0.90f};
    case SurfaceClass::ThinIce: return {1.05f, 1.00f, 0.88f, 0.55f};
    case SurfaceClass::OpenWater: return {1.25f, 1.00f, 0.70f, 0.25f};
    default: return {0.0f, 0.0f, 0.0f, 0.0f};
  }
}

}  // namespace

SceneSimulator::SceneSimulator(const SceneConfig& config, std::uint64_t seed)
    : config_(config), seed_(seed) {}

Scene SceneSimulator::render(const atl03::SurfaceModel& surface, geo::Xy drift,
                             double acquisition_time) const {
  const auto& cfg = config_;
  const geo::GroundTrack& track = surface.track();

  // Raster extent: an axis-aligned bounding box of the track corridor.
  const geo::Xy a = track.at(0.0);
  const geo::Xy b = track.at(surface.length());
  const double half = cfg.cross_track_halfwidth_m + cfg.margin_m;
  const double xmin = std::min(a.x, b.x) - half;
  const double xmax = std::max(a.x, b.x) + half;
  const double ymin = std::min(a.y, b.y) - half;
  const double ymax = std::max(a.y, b.y) + half;

  GeoTransform gt;
  gt.x0 = xmin;
  gt.y0 = ymax;
  gt.pixel = cfg.pixel_m;
  const auto cols = static_cast<std::size_t>((xmax - xmin) / cfg.pixel_m) + 1;
  const auto rows = static_cast<std::size_t>((ymax - ymin) / cfg.pixel_m) + 1;

  Scene scene{MultispectralImage(rows, cols, gt), ClassRaster(rows, cols, gt),
              std::vector<float>(rows * cols, 0.0f), std::vector<std::uint8_t>(rows * cols, 0),
              drift, acquisition_time};

  // Cloud field: thresholded fractal noise. The threshold is chosen from the
  // target cover fraction assuming fbm2d is roughly uniform in [-1, 1].
  const double cloud_threshold = 1.0 - 2.0 * cfg.cloud_cover;
  const std::uint64_t cloud_seed = seed_ ^ 0xC10DD5ull;
  // Thick-cloud cores are the highest-noise parts of each cloud.
  const double thick_threshold =
      cloud_threshold + (1.0 - cloud_threshold) * cfg.thin_cloud_fraction;

#pragma omp parallel
  {
    util::Rng rng =
        util::Rng(seed_ ^ 0x5CE11Eull).fork(static_cast<std::uint64_t>(acquisition_time * 7.0));
#pragma omp for schedule(static)
    for (std::ptrdiff_t ri = 0; ri < static_cast<std::ptrdiff_t>(rows); ++ri) {
      const auto r = static_cast<std::size_t>(ri);
      // Per-row deterministic noise stream keeps the render reproducible
      // under OpenMP scheduling.
      util::Rng row_rng = rng.fork(static_cast<std::uint64_t>(r) * 0x9E37ull + 0x11);
      for (std::size_t c = 0; c < cols; ++c) {
        const geo::Xy p = gt.pixel_center(r, c);
        // Surface feature that sits at pixel p at S2 time was at p - drift at
        // IS2 time; the surface model is defined at IS2 time.
        const geo::Xy p_is2 = {p.x - drift.x, p.y - drift.y};
        const SurfaceSample surf = surface.sample_xy(p_is2);
        const std::size_t idx = r * cols + c;

        scene.truth_class.set(r, c, surf.cls);
        if (surf.cls == SurfaceClass::Unknown) continue;

        const Spectrum spec = class_spectrum(surf.cls);
        float v[4] = {static_cast<float>(surf.reflectance * spec.b02),
                      static_cast<float>(surf.reflectance * spec.b03),
                      static_cast<float>(surf.reflectance * spec.b04),
                      static_cast<float>(surf.reflectance * spec.b08)};

        // Clouds (defined in S2-time coordinates — clouds do not drift with
        // the ice).
        const double cloud_noise = atl03::fbm2d(p.x, p.y, cfg.cloud_scale_m, cloud_seed);
        double tau = 0.0;
        if (cloud_noise > cloud_threshold) {
          const bool thick = cloud_noise > thick_threshold;
          tau = thick ? 3.0 + 4.0 * (cloud_noise - thick_threshold) / 0.2
                      : 1.2 * (cloud_noise - cloud_threshold) /
                            std::max(thick_threshold - cloud_threshold, 1e-6);
          const double alpha = 1.0 - std::exp(-tau);
          const float cloud_brightness = 0.92f;
          for (float& band : v)
            band = static_cast<float>(band * (1.0 - alpha) + cloud_brightness * alpha);
        }
        scene.cloud_tau[idx] = static_cast<float>(tau);

        // Cloud shadow: the cloud field displaced by the sun vector darkens
        // the surface. Thin clouds throw faint shadows, thick ones strong.
        // A pixel already under opaque cloud shows the cloud top, not the
        // shadowed surface, so it is exempt.
        const double shadow_noise =
            atl03::fbm2d(p.x + cfg.shadow_offset_x_m, p.y + cfg.shadow_offset_y_m,
                         cfg.cloud_scale_m, cloud_seed);
        if (tau < 1.5 && shadow_noise > cloud_threshold) {
          const double stau = shadow_noise > thick_threshold ? 3.0 : 1.0;
          const double dim = 1.0 - 0.45 * (1.0 - std::exp(-stau));
          for (float& band : v) band = static_cast<float>(band * dim);
          scene.shadow_mask[idx] = 1;
        }

        // Sensor noise.
        for (float& band : v)
          band = static_cast<float>(
              std::clamp(band + cfg.noise_sigma * row_rng.normal(), 0.0, 1.5));

        scene.image.at(Band::B02, r, c) = v[0];
        scene.image.at(Band::B03, r, c) = v[1];
        scene.image.at(Band::B04, r, c) = v[2];
        scene.image.at(Band::B08, r, c) = v[3];
      }
    }
  }
  return scene;
}

}  // namespace is2::s2
